module rooftune

go 1.24
