// Package distv1 is the rooftune distributed-sweep tier's versioned
// wire contract: the shapes that cross the HTTP boundary between the
// coordinator (roofserved -workers) and the node workers (roofworkerd).
//
// The unit of distribution is one plan-graph node — a campaign fragment:
// the full campaign (the same rooftune/serve/v1 schema the daemon
// accepts) plus the ID of the single sweep node to execute and the seed
// its incumbent starts from. A worker re-plans the campaign locally, so
// the node spec stays tiny and the worker's execution is exactly the
// Session machinery a local RunPlan would use; the Fingerprint field
// content-addresses the fragment (campaign fingerprint x node ID x
// seed), which is what makes dispatch idempotent — a requeued or
// replayed node hits the worker's completion cache instead of
// re-measuring, and duplicate completions dedupe on the coordinator.
//
// Like rooftune/serve/v1, this package is deliberately stdlib-only and
// carries no behaviour beyond JSON round-tripping, parsing and the
// fingerprint derivation both sides must agree on. Everything in it is
// contract: the struct field census and the ErrorCode enumeration are
// pinned to the committed golden api/dist_v1.txt by the wirecompat
// analyzer, so removing or retyping anything here fails CI. Additions
// must be declared by regenerating the golden with rooflint
// -write-goldens.
package distv1

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Schema identifies this contract version on every request and
// response body, so a coordinator never silently drives a worker
// speaking a different dialect.
const Schema = "rooftune/dist/v1"

// Worker endpoints. The coordinator POSTs node specs to PathRun, pushes
// monotone incumbent bounds to PathBound, and polls PathHealth to
// enroll workers and detect death.
const (
	// PathRun executes one plan-graph node: POST a NodeSpec, receive a
	// NodeOutcome (or an ErrorEnvelope).
	PathRun = "/dist/v1/run"
	// PathBound offers an incumbent bound to a running node: POST a
	// BoundUpdate, receive a BoundAck. Offers are monotone CAS-max and
	// order-insensitive, so replays and late arrivals are harmless.
	PathBound = "/dist/v1/bound"
	// PathHealth is the heartbeat: GET returns a Heartbeat snapshot.
	PathHealth = "/dist/v1/healthz"
)

// Headers the worker sets on run responses.
const (
	// WorkerHeader names the worker that produced a response.
	WorkerHeader = "X-Roofdist-Worker"
	// NodeHeader carries the node fingerprint of a run response.
	NodeHeader = "X-Roofdist-Node"
	// DedupeHeader reports whether a run response was answered from the
	// worker's completion cache ("hit") or freshly measured ("miss").
	DedupeHeader = "X-Roofdist-Dedupe"
)

// NodeSpec is the unit of dispatch: one plan-graph node of a campaign.
// The worker re-plans the campaign with the same Session machinery the
// coordinator used, runs exactly the named node, and returns its
// NodeOutcome. SeedValue pre-seeds the node's incumbent bound with its
// dependency's measured winner — the coordinator dispatches a dependent
// only after that winner arrived, which is what keeps the merged Result
// bit-identical to a local RunPlan.
type NodeSpec struct {
	// Schema must be the Schema constant; workers reject other dialects.
	Schema string `json:"schema"`
	// Campaign is the full campaign the node belongs to, in the
	// rooftune/serve/v1 wire schema (rendered as its JSON object).
	Campaign json.RawMessage `json:"campaign"`
	// NodeID names the plan-graph node to execute (e.g. "triad/L3/2s").
	NodeID string `json:"nodeId"`
	// SeedFrom names the node whose winner produced SeedValue (empty:
	// the node starts unseeded). Provenance only; the worker does not
	// resolve it.
	SeedFrom string `json:"seedFrom,omitempty"`
	// SeedValue pre-seeds the node's incumbent bound, in metric base
	// units (0: none).
	SeedValue float64 `json:"seedValue,omitempty"`
	// Fingerprint is the fragment's content address (NodeFingerprint
	// over the campaign fingerprint, NodeID and SeedValue). The worker
	// recomputes and rejects a mismatch, so a spec can never be cached
	// under an identity it does not have.
	Fingerprint string `json:"fingerprint"`
}

// NodeOutcome is a completed node: the sweep's winner plus the search
// cost and provenance the coordinator needs to merge it bit-identically
// into a local RunPlan's Result. It deliberately carries exactly what
// Result assembly and downstream seeding consume — the winning
// configuration (a rooftune/result/v1 bench.Config envelope), its
// description and mean, the salvage flag, and the virtual-clock search
// cost — not the full per-case outcome list.
type NodeOutcome struct {
	// Schema is the Schema constant.
	Schema string `json:"schema"`
	// NodeID echoes the executed node.
	NodeID string `json:"nodeId"`
	// Fingerprint echoes the fragment's content address.
	Fingerprint string `json:"fingerprint"`
	// Worker names the worker that measured the node.
	Worker string `json:"worker,omitempty"`
	// Winner is the winning configuration as a rooftune/result/v1
	// config envelope (bench.MarshalConfig).
	Winner json.RawMessage `json:"winner"`
	// Desc is the winner's human-readable description.
	Desc string `json:"desc"`
	// Value is the winning mean in metric base units.
	Value float64 `json:"value"`
	// BestPruned reports that every configuration was outer-pruned and
	// Value is the best truncated partial mean, not a measured winner —
	// the coordinator must not seed dependents from it.
	BestPruned bool `json:"bestPruned,omitempty"`
	// ElapsedNs is the node's search time on the engine's virtual
	// clock, in nanoseconds — summed into Result.SearchTime exactly as
	// a local sweep's Elapsed would be.
	ElapsedNs int64 `json:"elapsedNs"`
	// PrunedCount is how many configurations stop condition 4 abandoned.
	PrunedCount int `json:"prunedCount"`
	// TotalSamples counts all measured iterations in the node's search.
	TotalSamples int `json:"totalSamples"`
}

// BoundUpdate offers an incumbent bound to a node running on a worker,
// addressed by node fingerprint. The offer is monotone (CAS-max): a
// bound below the node's current incumbent is a no-op, so replays,
// reorders and duplicates are all harmless.
type BoundUpdate struct {
	// Schema is the Schema constant.
	Schema string `json:"schema"`
	// Fingerprint addresses the running node.
	Fingerprint string `json:"fingerprint"`
	// Value is the offered bound in metric base units.
	Value float64 `json:"value"`
}

// BoundAck answers a BoundUpdate.
type BoundAck struct {
	// Applied reports that the fingerprint named a node this worker is
	// running and the offer was delivered (false: unknown node — the
	// coordinator may be pushing to a worker that already finished or
	// never received it; not an error).
	Applied bool `json:"applied"`
}

// Heartbeat is the worker's health snapshot, returned by PathHealth.
type Heartbeat struct {
	// Schema is the Schema constant.
	Schema string `json:"schema"`
	// Worker is the worker's self-assigned name.
	Worker string `json:"worker"`
	// Running counts nodes currently executing.
	Running int `json:"running"`
	// Capacity is the worker's host-parallelism budget.
	Capacity int `json:"capacity"`
	// NodesRun counts node executions completed since the worker
	// started (completion-cache hits excluded).
	NodesRun uint64 `json:"nodesRun"`
}

// ErrorCode classifies a worker error for programmatic handling; the
// human-readable message may change freely, the code may not.
type ErrorCode string

// Error codes. The set is pinned in the api/dist_v1.txt enum section.
const (
	// CodeBadRequest: the request body failed to parse (400).
	CodeBadRequest ErrorCode = "bad_request"
	// CodeBadNode: the spec's campaign, node ID or fingerprint does not
	// resolve on this worker — wrong dialect, unknown node, or a
	// fingerprint mismatch (400). Not retryable on another worker if
	// the spec itself is wrong.
	CodeBadNode ErrorCode = "bad_node"
	// CodeNodeFailed: the node ran and failed (500). The coordinator
	// requeues elsewhere or falls back to local execution.
	CodeNodeFailed ErrorCode = "node_failed"
)

// Error is the structured error body workers send on non-2xx responses.
type Error struct {
	// Code is the stable, machine-readable classification.
	Code ErrorCode `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// Error renders the code and message.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// ErrorEnvelope is the top-level error response body.
type ErrorEnvelope struct {
	Error Error `json:"error"`
}

// ParseNodeSpec decodes a node spec, rejecting unknown fields and other
// schema dialects — a node run under a misparsed spec would be cached
// under the wrong identity.
func ParseNodeSpec(r io.Reader) (NodeSpec, error) {
	var s NodeSpec
	if err := parse(r, &s); err != nil {
		return s, fmt.Errorf("dist: parse node spec: %w", err)
	}
	if s.Schema != Schema {
		return s, fmt.Errorf("dist: parse node spec: schema %q, want %q", s.Schema, Schema)
	}
	return s, nil
}

// ParseBoundUpdate decodes a bound update, rejecting unknown fields and
// other schema dialects.
func ParseBoundUpdate(r io.Reader) (BoundUpdate, error) {
	var u BoundUpdate
	if err := parse(r, &u); err != nil {
		return u, fmt.Errorf("dist: parse bound update: %w", err)
	}
	if u.Schema != Schema {
		return u, fmt.Errorf("dist: parse bound update: schema %q, want %q", u.Schema, Schema)
	}
	return u, nil
}

func parse(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after the object")
	}
	return nil
}

// fingerprintSchema versions the canonical rendering NodeFingerprint
// hashes. Bump it whenever the rendering changes meaning: a bump
// re-keys every worker completion cache, which is exactly what must
// happen when the fragment identity contract moves.
const fingerprintSchema = "rooftune-dist-fingerprint-v1"

// NodeFingerprint derives a node fragment's content address: the hex
// SHA-256 over the campaign's session fingerprint, the plan-graph node
// ID, and the exact bits of the seed value. Both sides compute it — the
// coordinator to address dispatch, the worker to verify the spec and
// key its completion cache — so the derivation is contract, versioned
// by its embedded schema string.
func NodeFingerprint(campaignFingerprint, nodeID string, seedValue float64) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\ncampaign %s\nnode %s\nseed %016x\n",
		fingerprintSchema, campaignFingerprint, nodeID, math.Float64bits(seedValue))
	return hex.EncodeToString(h.Sum(nil))
}
