package rooftune

import (
	"math"
	"strings"
	"testing"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/units"
)

func TestSimulatedGold6148(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning run")
	}
	res, err := Simulated("Gold 6148", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SystemName != "Gold 6148" || !strings.Contains(res.Engine, "sim") {
		t.Fatalf("result header: %+v", res)
	}
	if len(res.Compute) != 2 {
		t.Fatalf("compute points: %d", len(res.Compute))
	}
	// Single-socket peak must match Table IV within 2%.
	c1 := res.Compute[0]
	if c1.Sockets != 1 {
		t.Fatalf("first compute point sockets = %d", c1.Sockets)
	}
	if math.Abs(c1.Flops.GFLOPS()-1422.24)/1422.24 > 0.02 {
		t.Fatalf("S1 peak = %v", c1.Flops)
	}
	if c1.Dims != (core.Dims{N: 4000, M: 512, K: 128}) {
		t.Fatalf("S1 dims = %v", c1.Dims)
	}
	if c1.Theoretical.GFLOPS() != 1536 {
		t.Fatalf("S1 theoretical = %v", c1.Theoretical)
	}
	// Memory points: both regions for both socket configs.
	regions := map[string]int{}
	for _, m := range res.Memory {
		regions[m.Region]++
		if m.Bandwidth <= 0 || m.Elements <= 0 {
			t.Fatalf("memory point %+v", m)
		}
	}
	if regions["DRAM"] != 2 || regions["L3"] != 2 {
		t.Fatalf("memory regions: %v", regions)
	}
	if res.Roofline == nil || res.Roofline.Validate() != nil {
		t.Fatal("roofline must validate")
	}
	if res.SearchTime <= 0 {
		t.Fatal("search time must be positive (virtual)")
	}
	summary := res.Summary()
	for _, frag := range []string{"Gold 6148", "compute 1 socket", "DRAM"} {
		if !strings.Contains(summary, frag) {
			t.Fatalf("summary missing %q:\n%s", frag, summary)
		}
	}
}

func TestSimulatedUnknownSystem(t *testing.T) {
	if _, err := Simulated("warp-drive", nil); err == nil {
		t.Fatal("unknown system must error")
	}
}

func TestSimulatedCustomSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning run")
	}
	sys := hw.System{
		Name: "tiny", FreqGHz: 3, CoresPerSocket: 4, Vector: hw.AVX2,
		FMAUnits: 2, Sockets: 1, DRAMFreqMHz: 3200, DRAMChannels: 2,
		BytesPerCycle: 8, L3PerSocket: 8 * units.MiB,
		L2PerCore: 256 * units.KiB, L1PerCore: 32 * units.KiB,
	}
	// Small space for speed.
	opt := &Options{Space: []core.Dims{
		{N: 512, M: 512, K: 128}, {N: 1024, M: 1024, K: 128},
		{N: 2048, M: 2048, K: 128},
	}}
	res, err := SimulatedSystem(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compute) != 1 { // single socket system
		t.Fatalf("compute points: %d", len(res.Compute))
	}
	if res.Compute[0].Flops <= 0 {
		t.Fatal("tuned peak must be positive")
	}
}

func TestNativeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("real kernels")
	}
	budget := bench.DefaultBudget().WithFlags(true, true, true)
	budget.Invocations = 1
	budget.MaxIterations = 2
	budget.MaxTime = time.Second
	res, err := Native(&Options{
		Budget:  &budget,
		Threads: 2,
		Space: []core.Dims{
			{N: 64, M: 64, K: 64}, {N: 128, M: 128, K: 64},
		},
		TriadLo:    24 * units.KiB,
		TriadHi:    3 * units.MiB,
		AssumedLLC: 256 * units.KiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compute) != 1 || res.Compute[0].Flops <= 0 {
		t.Fatalf("native compute: %+v", res.Compute)
	}
	if len(res.Memory) == 0 {
		t.Fatal("native memory points missing")
	}
	if res.Roofline.Validate() != nil {
		t.Fatal("native roofline must validate")
	}
}

func TestNativeQuickSpaceShape(t *testing.T) {
	space := NativeQuickSpace()
	if len(space) != 4*3*3 {
		t.Fatalf("|space| = %d", len(space))
	}
	for _, d := range space {
		if d.N > 1024 || d.M > 1024 || d.K > 256 {
			t.Fatalf("native quick space too large: %v", d)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o *Options
	d := o.withDefaults(false)
	if d.Seed != 1021 || d.Budget == nil || len(d.Space) != 384 {
		t.Fatalf("simulated defaults: %+v", d)
	}
	if !d.Budget.UseConfidence || !d.Budget.UseInnerBound || !d.Budget.UseOuterBound {
		t.Fatal("default budget must be the paper's best technique")
	}
	n := o.withDefaults(true)
	if n.Budget.Invocations != 3 || len(n.Space) != len(NativeQuickSpace()) {
		t.Fatalf("native defaults: %+v", n.Budget)
	}
	if n.TriadHi != 256*units.MiB || d.TriadHi != 768*units.MiB {
		t.Fatal("triad range defaults")
	}
}
