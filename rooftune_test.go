package rooftune

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/units"
)

func TestSimulatedGold6148(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning run")
	}
	res, err := Simulated("Gold 6148", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SystemName != "Gold 6148" || !strings.Contains(res.Engine, "sim") {
		t.Fatalf("result header: %+v", res)
	}
	if len(res.Compute) != 2 {
		t.Fatalf("compute points: %d", len(res.Compute))
	}
	// Single-socket peak must match Table IV within 2%.
	c1 := res.Compute[0]
	if c1.Sockets != 1 {
		t.Fatalf("first compute point sockets = %d", c1.Sockets)
	}
	if math.Abs(c1.Flops.GFLOPS()-1422.24)/1422.24 > 0.02 {
		t.Fatalf("S1 peak = %v", c1.Flops)
	}
	if c1.Dims != (core.Dims{N: 4000, M: 512, K: 128}) {
		t.Fatalf("S1 dims = %v", c1.Dims)
	}
	if c1.Theoretical.GFLOPS() != 1536 {
		t.Fatalf("S1 theoretical = %v", c1.Theoretical)
	}
	// Memory points: both regions for both socket configs.
	regions := map[string]int{}
	for _, m := range res.Memory {
		regions[m.Region]++
		if m.Bandwidth <= 0 || m.Elements <= 0 {
			t.Fatalf("memory point %+v", m)
		}
	}
	if regions["DRAM"] != 2 || regions["L3"] != 2 {
		t.Fatalf("memory regions: %v", regions)
	}
	if res.Roofline == nil || res.Roofline.Validate() != nil {
		t.Fatal("roofline must validate")
	}
	if res.SearchTime <= 0 {
		t.Fatal("search time must be positive (virtual)")
	}
	summary := res.Summary()
	for _, frag := range []string{"Gold 6148", "DGEMM   1 socket", "DRAM"} {
		if !strings.Contains(summary, frag) {
			t.Fatalf("summary missing %q:\n%s", frag, summary)
		}
	}
}

func TestSimulatedUnknownSystem(t *testing.T) {
	if _, err := Simulated("warp-drive", nil); err == nil {
		t.Fatal("unknown system must error")
	}
}

func TestSimulatedCustomSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning run")
	}
	sys := hw.System{
		Name: "tiny", FreqGHz: 3, CoresPerSocket: 4, Vector: hw.AVX2,
		FMAUnits: 2, Sockets: 1, DRAMFreqMHz: 3200, DRAMChannels: 2,
		BytesPerCycle: 8, L3PerSocket: 8 * units.MiB,
		L2PerCore: 256 * units.KiB, L1PerCore: 32 * units.KiB,
	}
	// Small space for speed.
	opt := &Options{Space: []core.Dims{
		{N: 512, M: 512, K: 128}, {N: 1024, M: 1024, K: 128},
		{N: 2048, M: 2048, K: 128},
	}}
	res, err := SimulatedSystem(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compute) != 1 { // single socket system
		t.Fatalf("compute points: %d", len(res.Compute))
	}
	if res.Compute[0].Flops <= 0 {
		t.Fatal("tuned peak must be positive")
	}
}

func TestNativeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("real kernels")
	}
	budget := bench.DefaultBudget().WithFlags(true, true, true)
	budget.Invocations = 1
	budget.MaxIterations = 2
	budget.MaxTime = time.Second
	res, err := Native(&Options{
		Budget:  &budget,
		Threads: 2,
		Space: []core.Dims{
			{N: 64, M: 64, K: 64}, {N: 128, M: 128, K: 64},
		},
		TriadLo:    24 * units.KiB,
		TriadHi:    3 * units.MiB,
		AssumedLLC: 256 * units.KiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compute) != 1 || res.Compute[0].Flops <= 0 {
		t.Fatalf("native compute: %+v", res.Compute)
	}
	if (res.Compute[0].Dims == core.Dims{}) {
		t.Fatal("native winning dims must not be zero")
	}
	if len(res.Memory) == 0 {
		t.Fatal("native memory points missing")
	}
	for _, m := range res.Memory {
		if m.Elements <= 0 {
			t.Fatalf("native memory point %s has no vector length: %+v", m.Region, m)
		}
	}
	if res.Roofline.Validate() != nil {
		t.Fatal("native roofline must validate")
	}
	summary := res.Summary()
	for _, frag := range []string{"host (engine native)", "DGEMM   1 socket"} {
		if !strings.Contains(summary, frag) {
			t.Fatalf("native summary missing %q:\n%s", frag, summary)
		}
	}
}

// tinySystem is a single-socket machine small enough for fast sweeps.
func tinySystem() hw.System {
	return hw.System{
		Name: "tiny", FreqGHz: 3, CoresPerSocket: 4, Vector: hw.AVX2,
		FMAUnits: 2, Sockets: 1, DRAMFreqMHz: 3200, DRAMChannels: 2,
		BytesPerCycle: 8, L3PerSocket: 8 * units.MiB,
		L2PerCore: 256 * units.KiB, L1PerCore: 32 * units.KiB,
	}
}

func tinyOptions(serial bool) *Options {
	return &Options{
		Space: []core.Dims{
			{N: 512, M: 512, K: 128}, {N: 1024, M: 1024, K: 128},
			{N: 2048, M: 2048, K: 128},
		},
		TriadLo: 16 * units.KiB,
		TriadHi: 256 * units.MiB,
		Serial:  serial,
	}
}

func TestSimulatedParallelDeterminism(t *testing.T) {
	serial, err := SimulatedSystem(tinySystem(), tinyOptions(true))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SimulatedSystem(tinySystem(), tinyOptions(false))
	if err != nil {
		t.Fatal(err)
	}
	// The concurrent sweeps must be bit-identical to the serial path:
	// same winners, same peaks, same virtual search time, same roofline.
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel result diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if serial.SearchTime <= 0 {
		t.Fatal("virtual search time must be positive")
	}
}

// TestSimulatedWinningDims is the regression for the silently-zero Dims
// bug: the dims reported in Result.Compute must be the actual best case's
// typed configuration, never a zero value from a failed key re-parse.
func TestSimulatedWinningDims(t *testing.T) {
	sys := tinySystem()
	o := tinyOptions(true)
	res, err := SimulatedSystem(sys, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compute) != 1 {
		t.Fatalf("compute points: %d", len(res.Compute))
	}
	got := res.Compute[0].Dims
	if (got == core.Dims{}) {
		t.Fatal("winning dims must not be zero")
	}
	// Re-run the same sweep independently and compare against the typed
	// winner of the tuner itself.
	eng := bench.NewSimEngine(sys, 1021)
	cases := make([]bench.Case, len(o.Space))
	for i, d := range o.Space {
		cases[i] = eng.DGEMMCase(d.N, d.M, d.K, 1)
	}
	b := bench.DefaultBudget().WithFlags(true, true, true)
	r, err := core.NewTuner(eng.Clock, b, core.OrderForward).Run(context.Background(), cases)
	if err != nil {
		t.Fatal(err)
	}
	want := core.ConfigDims(r.Best.Config.(bench.DGEMMConfig))
	if got != want {
		t.Fatalf("reported dims %v, actual best case %v", got, want)
	}
	for _, m := range res.Memory {
		if m.Elements <= 0 {
			t.Fatalf("memory point %s has no winning vector length: %+v", m.Region, m)
		}
	}
}

func TestResultSummary(t *testing.T) {
	res := &Result{
		SystemName: "demo",
		Engine:     "sim:demo",
		SearchTime: 90 * time.Second,
		Compute: []ComputePoint{{
			Sockets: 1, Dims: core.Dims{N: 4000, M: 512, K: 128},
			Flops: 1400e9, Theoretical: 1536e9,
		}},
		Memory: []MemoryPoint{
			{Sockets: 1, Region: "DRAM", Elements: 1 << 24, Bandwidth: 60e9, Theoretical: 76.8e9},
			{Sockets: 1, Region: "L3", Elements: 1 << 18, Bandwidth: 300e9},
		},
	}
	s := res.Summary()
	for _, frag := range []string{
		"demo (engine sim:demo), search time 90.00s",
		"compute 1 socket(s)",
		"n,m,k=4000,512,128",
		"of theoretical", // percent-of-theoretical rendering
		"DRAM",
		"L3",
		"N=16777216",
	} {
		if !strings.Contains(s, frag) {
			t.Fatalf("summary missing %q:\n%s", frag, s)
		}
	}
	// The L3 point has no theoretical peak, so exactly two points render
	// a percent-of-theoretical clause (compute + DRAM).
	if got := strings.Count(s, "of theoretical"); got != 2 {
		t.Fatalf("theoretical clauses = %d, want 2:\n%s", got, s)
	}
}

func TestNativeQuickSpaceShape(t *testing.T) {
	space := NativeQuickSpace()
	if len(space) != 4*3*3 {
		t.Fatalf("|space| = %d", len(space))
	}
	for _, d := range space {
		if d.N > 1024 || d.M > 1024 || d.K > 256 {
			t.Fatalf("native quick space too large: %v", d)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o *Options
	d := o.withDefaults(false)
	if d.Seed != 1021 || d.Budget == nil || len(d.Space) != 384 {
		t.Fatalf("simulated defaults: %+v", d)
	}
	if !d.Budget.UseConfidence || !d.Budget.UseInnerBound || !d.Budget.UseOuterBound {
		t.Fatal("default budget must be the paper's best technique")
	}
	n := o.withDefaults(true)
	if n.Budget.Invocations != 3 || len(n.Space) != len(NativeQuickSpace()) {
		t.Fatalf("native defaults: %+v", n.Budget)
	}
	if n.TriadHi != 256*units.MiB || d.TriadHi != 768*units.MiB {
		t.Fatal("triad range defaults")
	}
}
