package rooftune

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/units"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestShimEquivalence pins the deprecation contract: the legacy entry
// points are thin shims over Session, with bit-identical Results — same
// winners, same means, same virtual search times, same roofline.
func TestShimEquivalence(t *testing.T) {
	ctx := context.Background()

	t.Run("SimulatedSystem", func(t *testing.T) {
		legacy, err := SimulatedSystem(tinySystem(), &Options{
			Space: []core.Dims{
				{N: 512, M: 512, K: 128}, {N: 1024, M: 1024, K: 128},
				{N: 2048, M: 2048, K: 128},
			},
			TriadLo: 16 * units.KiB,
			TriadHi: 256 * units.MiB,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The shims pin strictly serial case evaluation (the original
		// implementation's loop), so the equivalent Session does too —
		// the adaptive default may shard on a large host, which changes
		// search cost, never winners.
		sess, err := New(append(tinySessionOptions(), WithCaseShards(1))...)
		if err != nil {
			t.Fatal(err)
		}
		modern, err := sess.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, modern) {
			t.Fatalf("shim diverged from Session:\nshim:    %+v\nsession: %+v", legacy, modern)
		}
	})

	t.Run("Simulated", func(t *testing.T) {
		if testing.Short() {
			t.Skip("full tuning run")
		}
		legacy, err := Simulated("Gold 6148", nil)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := New(WithSystem("Gold 6148"), WithCaseShards(1))
		if err != nil {
			t.Fatal(err)
		}
		modern, err := sess.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, modern) {
			t.Fatalf("shim diverged from Session:\nshim:    %+v\nsession: %+v", legacy, modern)
		}
	})
}

// TestShimErrorPropagation: construction-time validation reaches legacy
// callers as plain errors.
func TestShimErrorPropagation(t *testing.T) {
	if _, err := SimulatedSystem(tinySystem(), &Options{TriadLo: 2 * units.GiB}); err == nil {
		t.Fatal("inverted TRIAD bounds must error through the shim")
	}
	if _, err := Native(&Options{Threads: -1}); err == nil {
		t.Fatal("negative threads must error through the shim")
	}
	if _, err := Simulated("warp-drive", nil); err == nil {
		t.Fatal("unknown system must error through the shim")
	}
}

// TestSummaryGolden pins Result.Summary's exact rendering against
// testdata/summary.golden (regenerate with -update).
func TestSummaryGolden(t *testing.T) {
	res := &Result{
		SystemName: "demo",
		Engine:     "sim:demo",
		SearchTime: 90 * time.Second,
		Compute: []ComputePoint{
			{
				// No Label: pins the legacy fallback rendering.
				Sockets: 1, Dims: core.Dims{N: 4000, M: 512, K: 128},
				Flops: 1400e9, Theoretical: 1536e9,
			},
			{
				Label: "SpMV", Sockets: 1,
				Config: bench.SpMVConfig{N: 1 << 18, NNZPerRow: 16, ChunkRows: 512, Sockets: 1},
				Desc:   "n=262144 nnz/row=16 chunk=512 sockets=1",
				Flops:  9.6e9, Intensity: 0.155,
			},
		},
		Memory: []MemoryPoint{
			// Per-level ceilings in decreasing-bandwidth order, the
			// WithTriadLevels presentation shape.
			{Sockets: 1, Region: "L1", Elements: 1 << 12, Bandwidth: 1500e9},
			{Sockets: 1, Region: "L2", Elements: 1 << 16, Bandwidth: 860e9},
			{Sockets: 1, Region: "L3", Elements: 1 << 18, Bandwidth: 300e9},
			{Sockets: 1, Region: "DRAM", Elements: 1 << 24, Bandwidth: 60e9, Theoretical: 76.8e9},
		},
		// Warnings arrive workload-attributed from the session layer.
		Warnings: []string{"workload triad: TRIAD L2 (1 sockets): no working-set sizes fall in the region"},
	}
	got := res.Summary()
	golden := filepath.Join("testdata", "summary.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("summary drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}
