package rooftune

import (
	"context"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/units"
)

// This file is the compatibility layer over the Session API: the original
// package entry points (Simulated, SimulatedSystem, Native) and their
// Options struct, kept as thin shims whose results are bit-identical to
// New(...).Run(ctx) with the equivalent options (asserted by
// TestShimEquivalence). New code should use New directly.

// Options configures a roofline build. The zero value (or nil) means:
// paper defaults for simulated builds, quick defaults for native builds.
//
// Deprecated: use New with functional options (WithSeed, WithBudget,
// WithSpace, WithThreads, WithAssumedLLC, WithTriadRange, WithSerial).
type Options struct {
	// Seed drives the simulated engines' noise streams (default 1021).
	Seed uint64
	// Budget is the evaluation budget; defaults to Table I with the
	// paper's best technique (Confidence + Inner + Outer bounds).
	Budget *bench.Budget
	// Space is the DGEMM search space (default: the paper's union space
	// for simulated builds, a laptop-scale space for native builds).
	Space []core.Dims
	// Threads is the native engines' parallelism (default GOMAXPROCS).
	Threads int
	// AssumedLLC is the native build's last-level-cache estimate used to
	// split the TRIAD sweep into cache and DRAM regions (default 32 MiB).
	AssumedLLC units.ByteSize
	// TriadLo/TriadHi bound the TRIAD working-set sweep (default: the
	// paper's 3 KiB .. 768 MiB for simulated builds; 3 KiB .. 256 MiB
	// native).
	TriadLo, TriadHi units.ByteSize
	// Serial disables the concurrent sweep execution of simulated builds.
	Serial bool
}

// options converts the legacy struct to functional options: only fields
// the old withDefaults treated as "set" (non-zero) become options, so the
// Session resolves the exact same defaults the struct API did.
func (o *Options) options() []Option {
	if o == nil {
		return nil
	}
	var opts []Option
	if o.Seed != 0 {
		opts = append(opts, WithSeed(o.Seed))
	}
	if o.Budget != nil {
		opts = append(opts, WithBudget(*o.Budget))
	}
	if o.Space != nil {
		opts = append(opts, WithSpace(o.Space))
	}
	if o.Threads != 0 {
		opts = append(opts, WithThreads(o.Threads))
	}
	if o.AssumedLLC != 0 {
		opts = append(opts, WithAssumedLLC(o.AssumedLLC))
	}
	if o.TriadLo != 0 || o.TriadHi != 0 {
		opts = append(opts, WithTriadRange(o.TriadLo, o.TriadHi))
	}
	if o.Serial {
		opts = append(opts, WithSerial())
	}
	return opts
}

// shimOptions are the legacy entry points' fixed settings on top of the
// struct conversion: the original implementation evaluated each sweep's
// cases strictly serially, so the shims pin the adaptive case-shard
// default off to stay bit-identical (search cost included) on any host.
func shimOptions(opt *Options) []Option {
	return append(opt.options(), WithCaseShards(1))
}

// withDefaults resolves the legacy defaults. It survives for
// TestOptionsDefaults, which pins the struct API's documented defaults;
// the Session applies the same values in New.
func (o *Options) withDefaults(native bool) Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Seed == 0 {
		out.Seed = 1021
	}
	if out.Budget == nil {
		b := bench.DefaultBudget().WithFlags(true, true, true)
		if native {
			b.Invocations = 3
			b.MaxIterations = 30
			b.MaxTime = 2 * time.Second
		}
		out.Budget = &b
	}
	if out.Space == nil {
		if native {
			out.Space = NativeQuickSpace()
		} else {
			out.Space = core.UnionDGEMMSpace()
		}
	}
	if out.AssumedLLC == 0 {
		out.AssumedLLC = 32 * units.MiB
	}
	if out.TriadLo == 0 {
		out.TriadLo = 3 * units.KiB
	}
	if out.TriadHi == 0 {
		if native {
			out.TriadHi = 256 * units.MiB
		} else {
			out.TriadHi = 768 * units.MiB
		}
	}
	return out
}

func runShim(opt *Options, target Option) (*Result, error) {
	sess, err := New(append(shimOptions(opt), target)...)
	if err != nil {
		return nil, err
	}
	return sess.Run(context.Background())
}

// Simulated autotunes DGEMM and TRIAD on the named system's calibrated
// models and assembles the roofline. Known names: "2650v4", "2695v4",
// "Gold 6132", "Gold 6148", "Silver 4110", plus anything registered via
// hw.Register.
//
// Deprecated: use New(WithSystem(name), ...) and Session.Run, which adds
// context cancellation and progress events. This shim's Result is
// bit-identical to the Session's.
func Simulated(systemName string, opt *Options) (*Result, error) {
	return runShim(opt, WithSystem(systemName))
}

// SimulatedSystem is Simulated for an explicit system description.
//
// Deprecated: use New(WithSystemSpec(sys), ...) and Session.Run. This
// shim's Result is bit-identical to the Session's.
func SimulatedSystem(sys hw.System, opt *Options) (*Result, error) {
	return runShim(opt, WithSystemSpec(sys))
}

// Native autotunes the real Go kernels on the host machine. Sweeps always
// run serially: concurrent wall-clock measurement would contend on the
// host and corrupt every sample.
//
// Deprecated: use New(WithNative(), ...) and Session.Run. This shim's
// Result is bit-identical to the Session's.
func Native(opt *Options) (*Result, error) {
	return runShim(opt, WithNative())
}
