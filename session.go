package rooftune

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/sweep"
	"rooftune/internal/units"
	"rooftune/internal/workload"
)

// settings is the resolved configuration of a Session. Options mutate it;
// New fills defaults and validates the final state.
type settings struct {
	// target
	sys       *hw.System
	native    bool
	targetSet bool

	seed       uint64
	budget     *bench.Budget
	space      []core.Dims
	spaceSet   bool
	threads    int
	llc        units.ByteSize
	triadLo    units.ByteSize
	triadHi    units.ByteSize
	spmvN      int
	spmvNNZ    int
	stencilNX  int
	stencilNY  int
	serial     bool
	caseShards int
	progress   func(Event)
	workloads  []string
}

// Option configures a Session under construction. Options are applied in
// order; an option error aborts New immediately.
type Option func(*settings) error

// WithSystem targets the named simulated system. Known names: "2650v4",
// "2695v4", "Gold 6132", "Gold 6148", "Silver 4110", plus anything
// registered via hw.Register.
func WithSystem(name string) Option {
	return func(s *settings) error {
		sys, err := hw.Get(name)
		if err != nil {
			return err
		}
		return WithSystemSpec(sys)(s)
	}
}

// WithSystemSpec targets an explicit simulated system description. The
// description is validated: an internally inconsistent system errors here
// rather than producing a meaningless calibration.
func WithSystemSpec(sys hw.System) Option {
	return func(s *settings) error {
		if err := sys.Validate(); err != nil {
			return err
		}
		if s.targetSet {
			return fmt.Errorf("rooftune: target already set; WithSystem/WithSystemSpec/WithNative are mutually exclusive")
		}
		s.sys = &sys
		s.targetSet = true
		return nil
	}
}

// WithNative targets the host machine: the real pure-Go kernels measured
// with the wall clock. Native sessions always run their sweeps serially —
// concurrent wall-clock measurement would contend on the host.
func WithNative() Option {
	return func(s *settings) error {
		if s.targetSet {
			return fmt.Errorf("rooftune: target already set; WithSystem/WithSystemSpec/WithNative are mutually exclusive")
		}
		s.native = true
		s.targetSet = true
		return nil
	}
}

// WithSeed sets the simulated engines' noise seed (default 1021, the
// paper seed; 0 means the default).
func WithSeed(seed uint64) Option {
	return func(s *settings) error {
		s.seed = seed
		return nil
	}
}

// WithBudget sets the evaluation budget. The default is Table I with the
// paper's best technique (Confidence + Inner + Outer bounds), shrunk to
// interactive sizes on native targets.
func WithBudget(b bench.Budget) Option {
	return func(s *settings) error {
		s.budget = &b
		return nil
	}
}

// WithSpace sets the DGEMM search space. An empty space is rejected:
// there is nothing to tune. The default is the paper's union space for
// simulated targets and NativeQuickSpace for native ones.
func WithSpace(space []core.Dims) Option {
	return func(s *settings) error {
		if len(space) == 0 {
			return fmt.Errorf("rooftune: WithSpace: empty search space")
		}
		s.space = space
		s.spaceSet = true
		return nil
	}
}

// WithThreads sets the native engines' parallelism (default GOMAXPROCS;
// 0 means the default). Negative counts are rejected.
func WithThreads(threads int) Option {
	return func(s *settings) error {
		if threads < 0 {
			return fmt.Errorf("rooftune: WithThreads: negative thread count %d", threads)
		}
		s.threads = threads
		return nil
	}
}

// WithAssumedLLC sets the native target's last-level-cache estimate used
// to split the TRIAD sweep into cache and DRAM regions (default 32 MiB).
func WithAssumedLLC(size units.ByteSize) Option {
	return func(s *settings) error {
		s.llc = size
		return nil
	}
}

// WithTriadRange bounds the TRIAD working-set sweep (defaults: the
// paper's 3 KiB .. 768 MiB simulated, 3 KiB .. 256 MiB native; a zero
// bound keeps its default). Inverted bounds are rejected at New once
// defaults are resolved.
func WithTriadRange(lo, hi units.ByteSize) Option {
	return func(s *settings) error {
		s.triadLo, s.triadHi = lo, hi
		return nil
	}
}

// WithSpMVShape sets the SpMV workload's synthetic matrix: an n x n CSR
// matrix with nnzPerRow stored elements per row (defaults: n = 262144
// simulated / 65536 native, nnzPerRow = 16; a zero keeps its default).
// The shape fixes the kernel's operational intensity, so changing it
// moves the SpMV point along the roofline's intensity axis.
func WithSpMVShape(n, nnzPerRow int) Option {
	return func(s *settings) error {
		if n < 0 || nnzPerRow < 0 {
			return fmt.Errorf("rooftune: WithSpMVShape: negative shape n=%d nnz/row=%d", n, nnzPerRow)
		}
		s.spmvN, s.spmvNNZ = n, nnzPerRow
		return nil
	}
}

// WithStencilGrid sets the stencil workload's grid dimensions (defaults:
// 2048x2048 simulated, 1024x1024 native; a zero keeps its default).
func WithStencilGrid(nx, ny int) Option {
	return func(s *settings) error {
		if nx < 0 || ny < 0 {
			return fmt.Errorf("rooftune: WithStencilGrid: negative grid %dx%d", nx, ny)
		}
		s.stencilNX, s.stencilNY = nx, ny
		return nil
	}
}

// WithSerial disables concurrent sweep execution on simulated targets.
// Every sweep owns its engine, clock and noise streams, so parallel
// results are bit-identical to serial ones (asserted by
// TestSimulatedParallelDeterminism); WithSerial exists for debugging.
func WithSerial() Option {
	return func(s *settings) error {
		s.serial = true
		return nil
	}
}

// WithProgress installs a live progress callback. Events arrive from the
// sweeps as they execute; each Run fans them into one buffered channel
// drained by a single goroutine, so fn needs no locking of its own and is
// off the sweep workers' critical path — a briefly slow callback only
// costs buffer space, though a persistently slow one eventually
// back-pressures the sweeps. Within one Run, events are delivered one at
// a time in the order they were emitted (case-evaluated events from
// concurrent sweeps or shard workers interleave in completion order);
// delivery across concurrent Runs of one Session is serialised too. The
// drainer is closed and joined before Run returns, so no event arrives
// after Run.
func WithProgress(fn func(Event)) Option {
	return func(s *settings) error {
		s.progress = fn
		return nil
	}
}

// WithCaseShards sets how many workers evaluate configurations
// concurrently within each sweep (default 0 = strictly serial, the
// paper's evaluation process; 1 also means serial). Sharded workers share
// a monotone atomic incumbent bound, so stop condition 4 keeps pruning
// conservatively and the winning configuration and value match serial
// execution exactly on the simulated engines — only PrunedCount and
// TotalSamples may differ (toward less pruning, never more). Case
// sharding requires a simulated target: native wall-clock measurement
// would contend on the host, so New rejects it with WithNative.
func WithCaseShards(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("rooftune: WithCaseShards: negative shard count %d", n)
		}
		s.caseShards = n
		return nil
	}
}

// WithWorkloads selects which registered workloads the session runs, in
// order (default: "dgemm", "triad"). Unknown names are rejected at New.
func WithWorkloads(names ...string) Option {
	return func(s *settings) error {
		if len(names) == 0 {
			return fmt.Errorf("rooftune: WithWorkloads: no workloads named")
		}
		s.workloads = names
		return nil
	}
}

// Session is a configured roofline build: a target (simulated system or
// the native host), a set of workloads, and the tuning parameters their
// sweeps run under. Sessions are created by New and executed by Run; a
// Session may be Run any number of times — every run plans fresh engines,
// so simulated runs with equal seeds are bit-identical.
type Session struct {
	cfg       settings
	workloads []Workload
	// progressMu serialises progress-event delivery across concurrent
	// Runs of one Session: each Run drains its own event channel with one
	// goroutine, and that drainer holds this mutex around the WithProgress
	// callback so the callback never runs twice at once.
	progressMu sync.Mutex
}

// New builds a Session from functional options. It fails fast: unknown
// systems and workloads, inverted TRIAD bounds, negative thread counts
// and empty search spaces are construction errors, not degenerate sweeps
// discovered minutes into a run.
func New(opts ...Option) (*Session, error) {
	var s settings
	for _, opt := range opts {
		if err := opt(&s); err != nil {
			return nil, err
		}
	}
	if !s.targetSet {
		return nil, fmt.Errorf("rooftune: no target: pass WithSystem, WithSystemSpec or WithNative")
	}
	// Defaults mirror the deprecated Options.withDefaults exactly, so the
	// compatibility shims stay bit-identical.
	if s.seed == 0 {
		s.seed = 1021
	}
	if s.budget == nil {
		b := bench.DefaultBudget().WithFlags(true, true, true)
		if s.native {
			b.Invocations = 3
			b.MaxIterations = 30
			b.MaxTime = 2 * time.Second
		}
		s.budget = &b
	}
	if !s.spaceSet {
		if s.native {
			s.space = NativeQuickSpace()
		} else {
			s.space = core.UnionDGEMMSpace()
		}
	}
	if s.llc == 0 {
		s.llc = 32 * units.MiB
	}
	if s.triadLo == 0 {
		s.triadLo = 3 * units.KiB
	}
	if s.triadHi == 0 {
		if s.native {
			s.triadHi = 256 * units.MiB
		} else {
			s.triadHi = 768 * units.MiB
		}
	}
	if s.triadLo > s.triadHi {
		return nil, fmt.Errorf("rooftune: inverted TRIAD working-set bounds (lo %v > hi %v)", s.triadLo, s.triadHi)
	}
	if s.spmvN == 0 {
		if s.native {
			s.spmvN = 1 << 16
		} else {
			s.spmvN = 1 << 18
		}
	}
	if s.spmvNNZ == 0 {
		s.spmvNNZ = 16
	}
	if s.spmvNNZ > s.spmvN {
		return nil, fmt.Errorf("rooftune: SpMV nnz/row %d exceeds matrix dimension %d", s.spmvNNZ, s.spmvN)
	}
	if s.stencilNX == 0 {
		s.stencilNX = 2048
		if s.native {
			s.stencilNX = 1024
		}
	}
	if s.stencilNY == 0 {
		s.stencilNY = 2048
		if s.native {
			s.stencilNY = 1024
		}
	}
	if s.stencilNX < 3 || s.stencilNY < 3 {
		return nil, fmt.Errorf("rooftune: stencil grid %dx%d too small for a 5-point stencil", s.stencilNX, s.stencilNY)
	}
	if s.native && s.caseShards > 1 {
		return nil, fmt.Errorf("rooftune: WithCaseShards(%d) requires a simulated target: concurrent wall-clock measurement would contend on the host", s.caseShards)
	}
	if len(s.workloads) == 0 {
		s.workloads = []string{"dgemm", "triad"}
	}
	sess := &Session{cfg: s}
	for _, name := range s.workloads {
		w, err := workload.Get(name)
		if err != nil {
			return nil, fmt.Errorf("rooftune: %w", err)
		}
		sess.workloads = append(sess.workloads, w)
	}
	return sess, nil
}

// Run plans every workload's sweeps, executes them, and assembles the
// tuned roofline. Cancelling ctx aborts the run between kernel executions
// and returns ctx.Err(); no partial Result is produced, and no sweep
// goroutine outlives the call.
func (s *Session) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	emit, stopEvents := s.startEvents()
	// Every sweep goroutine is joined before runner.Run returns, so by the
	// time this defer closes the channel no sender remains; the join below
	// it guarantees the last event is delivered before Run returns.
	defer stopEvents()

	target, res := s.target()
	params := workload.Params{
		Seed:          s.cfg.seed,
		Space:         s.cfg.space,
		TriadLo:       s.cfg.triadLo,
		TriadHi:       s.cfg.triadHi,
		AssumedLLC:    s.cfg.llc,
		Threads:       s.cfg.threads,
		SpMVN:         s.cfg.spmvN,
		SpMVNNZPerRow: s.cfg.spmvNNZ,
		StencilNX:     s.cfg.stencilNX,
		StencilNY:     s.cfg.stencilNY,
	}

	var (
		specs  []sweep.Spec
		points []Point
	)
	for _, w := range s.workloads {
		plan, err := w.Plan(target, params)
		if err != nil {
			return nil, fmt.Errorf("rooftune: workload %s: %w", w.Name(), err)
		}
		for _, warning := range plan.Warnings {
			res.Warnings = append(res.Warnings, warning)
			emit(Event{Kind: EventRegionEmpty, Warning: warning})
		}
		for _, pl := range plan.Sweeps {
			specs = append(specs, pl.Spec)
			points = append(points, pl.Point)
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("rooftune: every planned sweep is empty: %v", res.Warnings)
	}

	runner := &sweep.Runner{
		Budget:     *s.cfg.budget,
		Order:      core.OrderForward,
		Serial:     s.cfg.serial || s.cfg.native,
		CaseShards: s.cfg.caseShards,
	}
	if s.cfg.progress != nil {
		runner.Hooks = sweep.Hooks{
			SweepStarted: func(name string, cases int) {
				emit(Event{Kind: EventSweepStarted, Sweep: name, Cases: cases})
			},
			CaseEvaluated: func(sweepName string, out *bench.Outcome) {
				emit(Event{
					Kind:   EventCaseEvaluated,
					Sweep:  sweepName,
					Case:   out.Describe,
					Value:  out.Metric.Scale(out.Mean),
					Unit:   out.Metric.Unit(),
					Pruned: out.Pruned,
				})
			},
			SweepWon: func(o *sweep.Outcome) {
				ev := Event{Kind: EventSweepWon, Sweep: o.Name, Elapsed: o.Result.Elapsed}
				if o.Result.Best != nil {
					ev.Case = o.Result.Best.Describe
					ev.Value = o.Result.Best.Metric.Scale(o.BestValue())
					ev.Unit = o.Result.Best.Metric.Unit()
				}
				emit(ev)
			},
		}
	}

	outs, err := runner.Run(ctx, specs)
	if err != nil {
		// Report a cancellation as the bare ctx.Err(); a genuine engine
		// failure that merely raced with cancellation keeps its
		// diagnostic (it still satisfies errors.Is(err, ctx.Err())
		// when the failure IS the cancellation, since the sweep layer
		// wraps with %w).
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			return nil, cerr
		}
		return nil, fmt.Errorf("rooftune: %w", err)
	}
	return assembleResult(res, outs, points)
}

// target resolves the session's tuning target and the Result header that
// describes it. Engines are created here, per Run, never cached: a fresh
// native engine per run keeps thread pools from leaking across runs, and
// simulated engines are created inside each planned sweep anyway.
func (s *Session) target() (workload.Target, *Result) {
	if s.cfg.native {
		eng := bench.NewNativeEngine(s.cfg.threads)
		return workload.Target{Native: eng}, &Result{SystemName: "host", Engine: eng.Name()}
	}
	sys := s.cfg.sys
	return workload.Target{Sys: sys}, &Result{SystemName: sys.Name, Engine: bench.SimEngineName(*sys)}
}

// assembleResult turns the sweeps' typed winners into Result points.
// Winning configurations come from bench.Config carried on the outcome —
// no key string is ever parsed, so a key-format change can no longer
// silently zero the reported dimensions. Compute-side winners dispatch on
// the configuration variant; an unknown variant is an assembly error
// (the config round-trip test enumerates the bench.Config sum and fails
// before a user can hit this).
func assembleResult(res *Result, outs []sweep.Outcome, points []Point) (*Result, error) {
	for i, out := range outs {
		pt := points[i]
		if out.Result.BestPruned {
			// The sweep's every configuration was outer-pruned (a
			// pre-seeded incumbent, routine once shard workers race
			// ahead), so its "winner" is the highest truncated partial
			// mean — a salvage value, not a measurement. Say so next to
			// the numbers it taints.
			res.Warnings = append(res.Warnings, fmt.Sprintf(
				"sweep %s: every configuration was outer-pruned; reporting the best truncated partial mean, not a measured winner", out.Name))
		}
		if pt.Compute {
			cp := ComputePoint{
				Label:       pt.Label,
				Sockets:     pt.Sockets,
				Config:      out.Best,
				Flops:       units.Flops(out.BestValue()),
				Intensity:   pt.Intensity,
				Theoretical: pt.TheoreticalFlops,
			}
			if cp.Label == "" {
				cp.Label = "DGEMM"
			}
			if out.Result.Best != nil {
				cp.Desc = out.Result.Best.Describe
			}
			switch cfg := out.Best.(type) {
			case bench.DGEMMConfig:
				cp.Dims = core.ConfigDims(cfg)
			case bench.SpMVConfig, bench.StencilConfig:
				// Identity carried generically by Config and Desc.
			default:
				return nil, fmt.Errorf("rooftune: sweep %s: compute winner has unsupported config %T", out.Name, out.Best)
			}
			res.Compute = append(res.Compute, cp)
		} else {
			cfg, err := out.Triad()
			if err != nil {
				return nil, fmt.Errorf("rooftune: %w", err)
			}
			res.Memory = append(res.Memory, MemoryPoint{
				Sockets:     pt.Sockets,
				Region:      pt.Region,
				Elements:    cfg.Elements,
				Bandwidth:   units.Bandwidth(out.BestValue()),
				Theoretical: pt.TheoreticalBandwidth,
			})
		}
		res.SearchTime += out.Result.Elapsed
	}
	res.Roofline = assembleRoofline(res)
	return res, nil
}

// EventKind classifies a progress event.
type EventKind int

// Event kinds.
const (
	// EventSweepStarted fires when one sweep's search begins.
	EventSweepStarted EventKind = iota
	// EventCaseEvaluated fires after each configuration's evaluation.
	EventCaseEvaluated
	// EventSweepWon fires when one sweep finishes with its winner.
	EventSweepWon
	// EventRegionEmpty warns, before any sweep runs, that a planned
	// residency region filtered to zero cases under the session's bounds:
	// the roofline will be missing that ceiling.
	EventRegionEmpty
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventSweepStarted:
		return "sweep-started"
	case EventCaseEvaluated:
		return "case-evaluated"
	case EventSweepWon:
		return "sweep-won"
	case EventRegionEmpty:
		return "region-empty"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one live progress notification from a running session.
// Delivery is serialised; fields beyond Kind and Sweep are set per kind.
type Event struct {
	Kind EventKind
	// Sweep names the sweep (empty for EventRegionEmpty, whose region
	// never became a sweep — see Warning).
	Sweep string
	// Cases is the sweep's search-space size (EventSweepStarted).
	Cases int
	// Case describes the evaluated configuration (EventCaseEvaluated) or
	// the winner (EventSweepWon).
	Case string
	// Value is the configuration's mean performance in Unit
	// (EventCaseEvaluated, EventSweepWon).
	Value float64
	// Unit is Value's reporting unit, "GFLOP/s" or "GB/s".
	Unit string
	// Pruned reports that the outer bound abandoned the configuration
	// (EventCaseEvaluated).
	Pruned bool
	// Elapsed is the sweep's total search time (EventSweepWon).
	Elapsed time.Duration
	// Warning is the full empty-region description (EventRegionEmpty).
	Warning string
}

// startEvents starts this Run's progress fan-in: emit enqueues an event
// on a buffered channel, and a single drainer goroutine delivers events
// to the WithProgress callback one at a time, in emission order. The
// channel decouples sweep and shard workers from the callback — with case
// sharding, EventCaseEvaluated volume multiplies, and a mutex straight
// into user code would serialise every shard worker behind it. stop
// closes the channel and joins the drainer; Run defers it, so no event is
// delivered after Run returns. A nil callback costs one nil check.
func (s *Session) startEvents() (emit func(Event), stop func()) {
	fn := s.cfg.progress
	if fn == nil {
		return func(Event) {}, func() {}
	}
	ch := make(chan Event, eventBuffer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range ch {
			// The mutex only serialises against other Runs of this
			// Session; within one Run this drainer is the sole deliverer.
			s.progressMu.Lock()
			fn(ev)
			s.progressMu.Unlock()
		}
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			close(ch)
			<-done
		})
	}
	return func(ev Event) { ch <- ev }, stop
}

// eventBuffer is the per-Run progress channel capacity: deep enough that
// bursts of case-evaluated events from concurrent shard workers almost
// never block a sweep on the callback, small enough to bound memory and
// keep a stuck callback visible as back-pressure rather than unbounded
// growth.
const eventBuffer = 256
