package rooftune

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/sweep"
	"rooftune/internal/units"
	"rooftune/internal/workload"
)

// settings is the resolved configuration of a Session. Options mutate it;
// New fills defaults and validates the final state.
type settings struct {
	// target
	sys       *hw.System
	native    bool
	targetSet bool

	seed        uint64
	budget      *bench.Budget
	space       []core.Dims
	spaceSet    bool
	threads     int
	llc         units.ByteSize
	triadLo     units.ByteSize
	triadHi     units.ByteSize
	triadLevels []string
	chain       bool
	spmvN       int
	spmvNNZ     int
	stencilNX   int
	stencilNY   int
	serial      bool
	caseShards  int
	hostPar     int
	progress    func(Event)
	workloads   []string
}

// Option configures a Session under construction. Options are applied in
// order; an option error aborts New immediately.
type Option func(*settings) error

// WithSystem targets the named simulated system. Known names: "2650v4",
// "2695v4", "Gold 6132", "Gold 6148", "Silver 4110", plus anything
// registered via hw.Register.
func WithSystem(name string) Option {
	return func(s *settings) error {
		sys, err := hw.Get(name)
		if err != nil {
			return err
		}
		return WithSystemSpec(sys)(s)
	}
}

// WithSystemSpec targets an explicit simulated system description. The
// description is validated: an internally inconsistent system errors here
// rather than producing a meaningless calibration.
func WithSystemSpec(sys hw.System) Option {
	return func(s *settings) error {
		if err := sys.Validate(); err != nil {
			return err
		}
		if s.targetSet {
			return fmt.Errorf("rooftune: target already set; WithSystem/WithSystemSpec/WithNative are mutually exclusive")
		}
		s.sys = &sys
		s.targetSet = true
		return nil
	}
}

// WithNative targets the host machine: the real pure-Go kernels measured
// with the wall clock. Native sessions always run their sweeps serially —
// concurrent wall-clock measurement would contend on the host.
func WithNative() Option {
	return func(s *settings) error {
		if s.targetSet {
			return fmt.Errorf("rooftune: target already set; WithSystem/WithSystemSpec/WithNative are mutually exclusive")
		}
		s.native = true
		s.targetSet = true
		return nil
	}
}

// WithSeed sets the simulated engines' noise seed (default 1021, the
// paper seed; 0 means the default).
func WithSeed(seed uint64) Option {
	return func(s *settings) error {
		s.seed = seed
		return nil
	}
}

// WithBudget sets the evaluation budget. The default is Table I with the
// paper's best technique (Confidence + Inner + Outer bounds), shrunk to
// interactive sizes on native targets.
func WithBudget(b bench.Budget) Option {
	return func(s *settings) error {
		s.budget = &b
		return nil
	}
}

// WithSpace sets the DGEMM search space. An empty space is rejected:
// there is nothing to tune. The default is the paper's union space for
// simulated targets and NativeQuickSpace for native ones.
func WithSpace(space []core.Dims) Option {
	return func(s *settings) error {
		if len(space) == 0 {
			return fmt.Errorf("rooftune: WithSpace: empty search space")
		}
		s.space = space
		s.spaceSet = true
		return nil
	}
}

// WithThreads sets the native engines' parallelism (default GOMAXPROCS;
// 0 means the default). Negative counts are rejected.
func WithThreads(threads int) Option {
	return func(s *settings) error {
		if threads < 0 {
			return fmt.Errorf("rooftune: WithThreads: negative thread count %d", threads)
		}
		s.threads = threads
		return nil
	}
}

// WithAssumedLLC sets the native target's last-level-cache estimate used
// to split the TRIAD sweep into cache and DRAM regions (default 32 MiB).
func WithAssumedLLC(size units.ByteSize) Option {
	return func(s *settings) error {
		s.llc = size
		return nil
	}
}

// WithTriadRange bounds the TRIAD working-set sweep (defaults: the
// paper's 3 KiB .. 768 MiB simulated, 3 KiB .. 256 MiB native; a zero
// bound keeps its default). Inverted bounds are rejected at New once
// defaults are resolved.
func WithTriadRange(lo, hi units.ByteSize) Option {
	return func(s *settings) error {
		s.triadLo, s.triadHi = lo, hi
		return nil
	}
}

// WithTriadLevels selects the cache-residency regions the TRIAD workload
// sweeps on a simulated system, any subset of L1, L2, L3 and DRAM (the
// default is the paper's published L3+DRAM pair). Each selected level
// lands its own bandwidth ceiling in Result.Memory — the §VII/CARM-style
// cache-aware roofline — and the levels of one socket configuration form
// a chain in increasing-bandwidth order (DRAM seeds L3 seeds L2 seeds
// L1) that WithSweepChaining can exploit. Unknown or duplicate level
// names are rejected here; combining with WithNative is rejected at New
// (the host's true cache boundaries are unknown — native builds keep the
// assumed-LLC cache/DRAM split).
func WithTriadLevels(levels ...string) Option {
	return func(s *settings) error {
		if err := hw.ValidateCacheLevels(levels); err != nil {
			return fmt.Errorf("rooftune: WithTriadLevels: %w", err)
		}
		s.triadLevels = levels
		return nil
	}
}

// WithSweepChaining enables (or disables — the default) the plan graph's
// SeedFrom edges: when a sweep's dependency finishes with a measured
// winner, the dependent sweep starts with its incumbent pre-seeded by
// that value, so stop condition 4 prunes from the very first case. The
// winning configurations and values are unchanged by chaining — a seed is
// a measured mean of the same metric, so it can only prune configurations
// already known to lose — only PrunedCount and TotalSamples move (toward
// more pruning, i.e. less search cost). Each seeding is announced as an
// EventSweepSeeded progress event; a chain ordered badly enough to prune
// a whole sweep surfaces through Result.Warnings via the BestPruned
// salvage path, exactly like a caller-supplied incumbent.
func WithSweepChaining(on bool) Option {
	return func(s *settings) error {
		s.chain = on
		return nil
	}
}

// WithSpMVShape sets the SpMV workload's synthetic matrix: an n x n CSR
// matrix with nnzPerRow stored elements per row (defaults: n = 262144
// simulated / 65536 native, nnzPerRow = 16; a zero keeps its default).
// The shape fixes the kernel's operational intensity, so changing it
// moves the SpMV point along the roofline's intensity axis.
func WithSpMVShape(n, nnzPerRow int) Option {
	return func(s *settings) error {
		if n < 0 || nnzPerRow < 0 {
			return fmt.Errorf("rooftune: WithSpMVShape: negative shape n=%d nnz/row=%d", n, nnzPerRow)
		}
		s.spmvN, s.spmvNNZ = n, nnzPerRow
		return nil
	}
}

// WithStencilGrid sets the stencil workload's grid dimensions (defaults:
// 2048x2048 simulated, 1024x1024 native; a zero keeps its default).
func WithStencilGrid(nx, ny int) Option {
	return func(s *settings) error {
		if nx < 0 || ny < 0 {
			return fmt.Errorf("rooftune: WithStencilGrid: negative grid %dx%d", nx, ny)
		}
		s.stencilNX, s.stencilNY = nx, ny
		return nil
	}
}

// WithSerial disables concurrent sweep execution on simulated targets.
// Every sweep owns its engine, clock and noise streams, so parallel
// results are bit-identical to serial ones (asserted by
// TestSimulatedParallelDeterminism); WithSerial exists for debugging. A
// serial session is fully single-threaded: the adaptive case-shard
// default auto-disables too (an explicit WithCaseShards(n > 1) still
// overrides).
func WithSerial() Option {
	return func(s *settings) error {
		s.serial = true
		return nil
	}
}

// WithProgress installs a live progress callback. Events arrive from the
// sweeps as they execute; each Run fans them into one buffered channel
// drained by a single goroutine, so fn needs no locking of its own and is
// off the sweep workers' critical path — a briefly slow callback only
// costs buffer space, though a persistently slow one eventually
// back-pressures the sweeps. Within one Run, events are delivered one at
// a time in the order they were emitted (case-evaluated events from
// concurrent sweeps or shard workers interleave in completion order). The
// drainer is closed and joined before Run returns, so no event arrives
// after Run; a Session executes one Run at a time (see ErrConcurrentRun),
// so the callback never observes two runs' events interleaved.
func WithProgress(fn func(Event)) Option {
	return func(s *settings) error {
		s.progress = fn
		return nil
	}
}

// WithCaseShards pins how many workers evaluate configurations
// concurrently within each sweep: 1 forces the strictly serial loop (the
// paper's evaluation process), n > 1 fixes the shard pool, and 0 restores
// the default adaptive policy — each sweep's pool is sized from the host
// parallelism left over once sweep-level concurrency is accounted for,
// capped by the sweep's case count, and sharding auto-disables whenever
// sweep-level parallelism already saturates the host (so on most hosts
// the default is still serial evaluation). Sharded workers share a
// monotone atomic incumbent bound, so stop condition 4 keeps pruning
// conservatively and the winning configuration and value match serial
// execution exactly on the simulated engines — only PrunedCount,
// TotalSamples and SearchTime may differ (toward less pruning, never
// more). Case sharding requires a simulated target: native wall-clock
// measurement would contend on the host, so New rejects n > 1 with
// WithNative and native sessions always evaluate serially.
func WithCaseShards(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("rooftune: WithCaseShards: negative shard count %d", n)
		}
		s.caseShards = n
		return nil
	}
}

// WithHostParallelism caps the total host parallelism the session's run
// assumes it owns (default: GOMAXPROCS, i.e. the whole machine; 0 keeps
// the default). Both sweep-level concurrency and the adaptive case-shard
// policy size their pools inside the cap, so N sessions sharing one host
// under a serving tier's budget (each handed roughly GOMAXPROCS/N)
// divide the machine instead of oversubscribing it N-fold. The cap never
// changes which configurations win on a simulated target — concurrent
// sweep schedules are bit-identical to serial by construction — and with
// a pinned shard count (WithCaseShards(1) or any explicit n) the entire
// Result is invariant too. Under the adaptive shard default the shard
// pool is sized from the cap, so only the search-cost accounting
// (SearchTime, PrunedCount, TotalSamples) can shift with it; serving
// tiers that content-address Results pin the shard count for exactly
// this reason. The cap is deliberately excluded from Fingerprint. On
// native targets it also bounds the default kernel thread count when
// WithThreads is unset. Negative caps are rejected.
func WithHostParallelism(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("rooftune: WithHostParallelism: negative parallelism %d", n)
		}
		s.hostPar = n
		return nil
	}
}

// WithWorkloads selects which registered workloads the session runs, in
// order (default: "dgemm", "triad"). Unknown names are rejected at New.
func WithWorkloads(names ...string) Option {
	return func(s *settings) error {
		if len(names) == 0 {
			return fmt.Errorf("rooftune: WithWorkloads: no workloads named")
		}
		s.workloads = names
		return nil
	}
}

// Session is a configured roofline build: a target (simulated system or
// the native host), a set of workloads, and the tuning parameters their
// sweeps run under. Sessions are created by New and executed by Run; a
// Session may be Run any number of times sequentially — every run plans
// fresh engines, so simulated runs with equal seeds are bit-identical
// (TestSessionRerunDeterministic). A Session executes at most one Run at
// a time: a second Run starting while another is in flight fails loudly
// with ErrConcurrentRun rather than silently double-running (on a native
// target two concurrent runs would contend on the wall clock and corrupt
// both measurements; a serving tier that wants concurrency creates one
// Session per job).
type Session struct {
	cfg       settings
	workloads []Workload
	// running guards the one-Run-at-a-time contract; see ErrConcurrentRun.
	running atomic.Bool
}

// ErrConcurrentRun is returned by Run when the Session is already
// executing another Run. Sessions are cheap to construct — callers that
// need concurrent tuning runs build one Session per run instead of
// sharing one (shared native runs would contend on the host wall clock,
// and shared progress streams would interleave unrelated runs' events).
var ErrConcurrentRun = errors.New("rooftune: Session already has a Run in flight; create one Session per concurrent run")

// New builds a Session from functional options. It fails fast: unknown
// systems and workloads, inverted TRIAD bounds, negative thread counts
// and empty search spaces are construction errors, not degenerate sweeps
// discovered minutes into a run.
func New(opts ...Option) (*Session, error) {
	var s settings
	for _, opt := range opts {
		if err := opt(&s); err != nil {
			return nil, err
		}
	}
	if !s.targetSet {
		return nil, fmt.Errorf("rooftune: no target: pass WithSystem, WithSystemSpec or WithNative")
	}
	// Defaults mirror the deprecated Options.withDefaults exactly, so the
	// compatibility shims stay bit-identical.
	if s.seed == 0 {
		s.seed = 1021
	}
	if s.budget == nil {
		b := bench.DefaultBudget().WithFlags(true, true, true)
		if s.native {
			b.Invocations = 3
			b.MaxIterations = 30
			b.MaxTime = 2 * time.Second
		}
		s.budget = &b
	}
	if !s.spaceSet {
		if s.native {
			s.space = NativeQuickSpace()
		} else {
			s.space = core.UnionDGEMMSpace()
		}
	}
	if s.llc == 0 {
		s.llc = 32 * units.MiB
	}
	if s.triadLo == 0 {
		s.triadLo = 3 * units.KiB
	}
	if s.triadHi == 0 {
		if s.native {
			s.triadHi = 256 * units.MiB
		} else {
			s.triadHi = 768 * units.MiB
		}
	}
	if s.triadLo > s.triadHi {
		return nil, fmt.Errorf("rooftune: inverted TRIAD working-set bounds (lo %v > hi %v)", s.triadLo, s.triadHi)
	}
	if s.spmvN == 0 {
		if s.native {
			s.spmvN = 1 << 16
		} else {
			s.spmvN = 1 << 18
		}
	}
	if s.spmvNNZ == 0 {
		s.spmvNNZ = 16
	}
	if s.spmvNNZ > s.spmvN {
		return nil, fmt.Errorf("rooftune: SpMV nnz/row %d exceeds matrix dimension %d", s.spmvNNZ, s.spmvN)
	}
	if s.stencilNX == 0 {
		s.stencilNX = 2048
		if s.native {
			s.stencilNX = 1024
		}
	}
	if s.stencilNY == 0 {
		s.stencilNY = 2048
		if s.native {
			s.stencilNY = 1024
		}
	}
	if s.stencilNX < 3 || s.stencilNY < 3 {
		return nil, fmt.Errorf("rooftune: stencil grid %dx%d too small for a 5-point stencil", s.stencilNX, s.stencilNY)
	}
	if s.native && s.caseShards > 1 {
		return nil, fmt.Errorf("rooftune: WithCaseShards(%d) requires a simulated target: concurrent wall-clock measurement would contend on the host", s.caseShards)
	}
	if s.native && len(s.triadLevels) > 0 {
		return nil, fmt.Errorf("rooftune: WithTriadLevels requires a simulated target: the host's cache boundaries are unknown (native builds use the assumed-LLC cache/DRAM split)")
	}
	if len(s.workloads) == 0 {
		s.workloads = []string{"dgemm", "triad"}
	}
	sess := &Session{cfg: s}
	for _, name := range s.workloads {
		w, err := workload.Get(name)
		if err != nil {
			return nil, fmt.Errorf("rooftune: %w", err)
		}
		sess.workloads = append(sess.workloads, w)
	}
	// Validate the assembled plan graph now, while the caller can still
	// react: a custom workload with duplicate IDs, a dangling or cyclic
	// SeedFrom edge, or a cross-metric edge fails here, not minutes into
	// a run. Simulated planning is pure and cheap; native planning builds
	// a real engine and synthesises kernel inputs, so native sessions
	// defer the same check to the start of Run (still before any sweep
	// executes).
	if !s.native {
		if _, _, err := sess.plan(workload.Target{Sys: s.sys}, &Result{}, func(Event) {}); err != nil {
			return nil, err
		}
	}
	return sess, nil
}

// plan resolves every workload's contribution for the target: it runs
// each Plan, attributes and emits empty-region warnings, and validates
// the assembled plan graph (unique IDs, resolvable acyclic SeedFrom
// edges, same-metric chains) before anything executes. It is shared by
// New (construction-time validation on simulated targets) and Run.
func (s *Session) plan(target workload.Target, res *Result, emit func(Event)) ([]sweep.Node, []Point, error) {
	params := workload.Params{
		Seed:          s.cfg.seed,
		Space:         s.cfg.space,
		TriadLo:       s.cfg.triadLo,
		TriadHi:       s.cfg.triadHi,
		TriadLevels:   s.cfg.triadLevels,
		AssumedLLC:    s.cfg.llc,
		Threads:       s.cfg.threads,
		SpMVN:         s.cfg.spmvN,
		SpMVNNZPerRow: s.cfg.spmvNNZ,
		StencilNX:     s.cfg.stencilNX,
		StencilNY:     s.cfg.stencilNY,
	}
	var (
		nodes  []sweep.Node
		points []Point
	)
	for _, w := range s.workloads {
		plan, err := w.Plan(target, params)
		if err != nil {
			return nil, nil, fmt.Errorf("rooftune: workload %s: %w", w.Name(), err)
		}
		for _, warning := range plan.Warnings {
			// Attribute the line to the workload that planned the region:
			// a bare region name is ambiguous once several workloads plan
			// sweeps into one session.
			attributed := fmt.Sprintf("workload %s: %s", w.Name(), warning)
			res.Warnings = append(res.Warnings, attributed)
			emit(Event{Kind: EventRegionEmpty, Workload: w.Name(), Warning: attributed})
		}
		for _, pl := range plan.Sweeps {
			nodes = append(nodes, sweep.Node{ID: pl.ID, SeedFrom: pl.SeedFrom, Spec: pl.Spec})
			points = append(points, pl.Point)
		}
	}
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("rooftune: every planned sweep is empty: %v", res.Warnings)
	}
	if err := sweep.ValidatePlan(nodes); err != nil {
		return nil, nil, fmt.Errorf("rooftune: invalid plan graph: %w", err)
	}
	return nodes, points, nil
}

// Run plans every workload's sweeps, executes the plan graph, and
// assembles the tuned roofline. Cancelling ctx aborts the run between
// kernel executions and returns ctx.Err(); no partial Result is produced,
// and no sweep goroutine outlives the call. A Run that starts while
// another Run of the same Session is still in flight fails immediately
// with ErrConcurrentRun; sequential re-runs are always allowed and,
// on simulated targets, bit-identical.
func (s *Session) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !s.running.CompareAndSwap(false, true) {
		return nil, ErrConcurrentRun
	}
	defer s.running.Store(false)
	emit, stopEvents := s.startEvents()
	// Every sweep goroutine is joined before runner.RunPlan returns, so by
	// the time this defer closes the channel no sender remains; the join
	// below it guarantees the last event is delivered before Run returns.
	defer stopEvents()

	target, res := s.target()
	nodes, points, err := s.plan(target, res, emit)
	if err != nil {
		return nil, err
	}
	if !s.cfg.chain {
		// The graph was validated with its edges; without chaining every
		// sweep runs unseeded, exactly as the flat execution model did.
		for i := range nodes {
			nodes[i].SeedFrom = ""
		}
	}

	runner := s.newRunner(nodes, emit)

	outs, err := runner.RunPlan(ctx, nodes)
	if err != nil {
		// Report a cancellation as the bare ctx.Err(); a genuine engine
		// failure that merely raced with cancellation keeps its
		// diagnostic (it still satisfies errors.Is(err, ctx.Err())
		// when the failure IS the cancellation, since the sweep layer
		// wraps with %w).
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			return nil, cerr
		}
		return nil, fmt.Errorf("rooftune: %w", err)
	}
	return assembleResult(res, outs, points)
}

// newRunner builds the sweep runner every Run entry point (Run, RunDist,
// RunNode) executes through: one place owns the budget, order, shard
// policy and hook wiring, so a distributed run's per-node execution is
// the exact machinery a local run uses.
func (s *Session) newRunner(nodes []sweep.Node, emit func(Event)) *sweep.Runner {
	runner := &sweep.Runner{
		Budget:     *s.cfg.budget,
		Order:      core.OrderForward,
		Serial:     s.cfg.serial || s.cfg.native,
		CaseShards: s.cfg.caseShards,
		Host:       s.cfg.hostPar,
	}
	if s.cfg.native {
		// Native measurement is wall-clock: shard workers would contend
		// on the host, so the adaptive default is pinned off.
		runner.CaseShards = 1
	}
	if s.cfg.progress != nil {
		// Seeding events name sweeps, not node IDs, and report the seed
		// in the sweep's reporting unit.
		byID := make(map[string]sweep.Node, len(nodes))
		for _, n := range nodes {
			byID[n.ID] = n
		}
		runner.Hooks = sweep.Hooks{
			SweepStarted: func(name string, cases int) {
				emit(Event{Kind: EventSweepStarted, Sweep: name, Cases: cases})
			},
			CaseEvaluated: func(sweepName string, out *bench.Outcome) {
				emit(Event{
					Kind:   EventCaseEvaluated,
					Sweep:  sweepName,
					Case:   out.Describe,
					Value:  out.Metric.Scale(out.Mean),
					Unit:   out.Metric.Unit(),
					Pruned: out.Pruned,
				})
			},
			SweepWon: func(o *sweep.Outcome) {
				ev := Event{Kind: EventSweepWon, Sweep: o.Name, Elapsed: o.Result.Elapsed}
				if o.Result.Best != nil {
					ev.Case = o.Result.Best.Describe
					ev.Value = o.Result.Best.Metric.Scale(o.BestValue())
					ev.Unit = o.Result.Best.Metric.Unit()
				}
				emit(ev)
			},
			SweepSeeded: func(id, from string, value float64) {
				to, src := byID[id], byID[from]
				ev := Event{Kind: EventSweepSeeded, Sweep: to.Spec.Name, From: src.Spec.Name, Value: value}
				if len(to.Spec.Cases) > 0 {
					m := to.Spec.Cases[0].Metric()
					ev.Value = m.Scale(value)
					ev.Unit = m.Unit()
				}
				emit(ev)
			},
		}
	}
	return runner
}

// target resolves the session's tuning target and the Result header that
// describes it. Engines are created here, per Run, never cached: a fresh
// native engine per run keeps thread pools from leaking across runs, and
// simulated engines are created inside each planned sweep anyway.
func (s *Session) target() (workload.Target, *Result) {
	if s.cfg.native {
		threads := s.cfg.threads
		if threads == 0 && s.cfg.hostPar > 0 {
			// The host-parallelism budget bounds the default kernel
			// thread count too; an explicit WithThreads still wins.
			threads = s.cfg.hostPar
		}
		eng := bench.NewNativeEngine(threads)
		return workload.Target{Native: eng}, &Result{SystemName: "host", Engine: eng.Name()}
	}
	sys := s.cfg.sys
	return workload.Target{Sys: sys}, &Result{SystemName: sys.Name, Engine: bench.SimEngineName(*sys)}
}

// assembleResult turns the sweeps' typed winners into Result points.
// Winning configurations come from bench.Config carried on the outcome —
// no key string is ever parsed, so a key-format change can no longer
// silently zero the reported dimensions. Compute-side winners dispatch on
// the configuration variant; an unknown variant is an assembly error
// (the config round-trip test enumerates the bench.Config sum and fails
// before a user can hit this).
func assembleResult(res *Result, outs []sweep.Outcome, points []Point) (*Result, error) {
	for i, out := range outs {
		pt := points[i]
		if out.Result.BestPruned {
			// The sweep's every configuration was outer-pruned (a
			// pre-seeded incumbent, routine once shard workers race
			// ahead), so its "winner" is the highest truncated partial
			// mean — a salvage value, not a measurement. Say so next to
			// the numbers it taints.
			res.Warnings = append(res.Warnings, fmt.Sprintf(
				"sweep %s: every configuration was outer-pruned; reporting the best truncated partial mean, not a measured winner", out.Name))
		}
		if pt.Compute {
			cp := ComputePoint{
				Label:       pt.Label,
				Sockets:     pt.Sockets,
				Config:      out.Best,
				Flops:       units.Flops(out.BestValue()),
				Intensity:   pt.Intensity,
				Theoretical: pt.TheoreticalFlops,
			}
			if cp.Label == "" {
				cp.Label = "DGEMM"
			}
			if out.Result.Best != nil {
				cp.Desc = out.Result.Best.Describe
			}
			switch cfg := out.Best.(type) {
			case bench.DGEMMConfig:
				cp.Dims = core.ConfigDims(cfg)
			case bench.SpMVConfig, bench.StencilConfig:
				// Identity carried generically by Config and Desc.
			default:
				return nil, fmt.Errorf("rooftune: sweep %s: compute winner has unsupported config %T", out.Name, out.Best)
			}
			res.Compute = append(res.Compute, cp)
		} else {
			cfg, err := out.Triad()
			if err != nil {
				return nil, fmt.Errorf("rooftune: %w", err)
			}
			res.Memory = append(res.Memory, MemoryPoint{
				Sockets:     pt.Sockets,
				Region:      pt.Region,
				Elements:    cfg.Elements,
				Bandwidth:   units.Bandwidth(out.BestValue()),
				Theoretical: pt.TheoreticalBandwidth,
			})
		}
		res.SearchTime += out.Result.Elapsed
	}
	res.Roofline = assembleRoofline(res)
	return res, nil
}

// EventKind classifies a progress event.
type EventKind int

// Event kinds.
const (
	// EventSweepStarted fires when one sweep's search begins.
	EventSweepStarted EventKind = iota
	// EventCaseEvaluated fires after each configuration's evaluation.
	EventCaseEvaluated
	// EventSweepWon fires when one sweep finishes with its winner.
	EventSweepWon
	// EventRegionEmpty warns, before any sweep runs, that a planned
	// residency region filtered to zero cases under the session's bounds:
	// the roofline will be missing that ceiling.
	EventRegionEmpty
	// EventSweepSeeded fires, in a chained run (WithSweepChaining), when
	// a sweep is released with its incumbent pre-seeded by a finished
	// dependency's winner: From names the source sweep and Value/Unit
	// carry the seed.
	EventSweepSeeded
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventSweepStarted:
		return "sweep-started"
	case EventCaseEvaluated:
		return "case-evaluated"
	case EventSweepWon:
		return "sweep-won"
	case EventRegionEmpty:
		return "region-empty"
	case EventSweepSeeded:
		return "sweep-seeded"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one live progress notification from a running session.
// Delivery is serialised; fields beyond Kind and Sweep are set per kind.
type Event struct {
	Kind EventKind
	// Sweep names the sweep (empty for EventRegionEmpty, whose region
	// never became a sweep — see Warning).
	Sweep string
	// From names the source sweep whose winner seeded Sweep's incumbent
	// (EventSweepSeeded).
	From string
	// Workload names the workload that planned the empty region
	// (EventRegionEmpty); the Warning text carries it too.
	Workload string
	// Cases is the sweep's search-space size (EventSweepStarted).
	Cases int
	// Case describes the evaluated configuration (EventCaseEvaluated) or
	// the winner (EventSweepWon).
	Case string
	// Value is the configuration's mean performance in Unit
	// (EventCaseEvaluated, EventSweepWon), or the seed bound
	// (EventSweepSeeded).
	Value float64
	// Unit is Value's reporting unit, "GFLOP/s" or "GB/s".
	Unit string
	// Pruned reports that the outer bound abandoned the configuration
	// (EventCaseEvaluated).
	Pruned bool
	// Elapsed is the sweep's total search time (EventSweepWon).
	Elapsed time.Duration
	// Warning is the full empty-region description (EventRegionEmpty).
	Warning string
}

// startEvents starts this Run's progress fan-in: emit enqueues an event
// on a buffered channel, and a single drainer goroutine delivers events
// to the WithProgress callback one at a time, in emission order. The
// channel decouples sweep and shard workers from the callback — with case
// sharding, EventCaseEvaluated volume multiplies, and a mutex straight
// into user code would serialise every shard worker behind it. stop
// closes the channel and joins the drainer; Run defers it, so no event is
// delivered after Run returns. A nil callback costs one nil check.
func (s *Session) startEvents() (emit func(Event), stop func()) {
	fn := s.cfg.progress
	if fn == nil {
		return func(Event) {}, func() {}
	}
	ch := make(chan Event, eventBuffer)
	done := make(chan struct{})
	//rooflint:allow nogoroutine -- the documented per-Run event drainer; stop closes ch and joins it before Run returns
	go func() {
		defer close(done)
		// Within one Run this drainer is the sole deliverer, and the
		// one-Run-at-a-time guard means no other Run's drainer exists.
		for ev := range ch {
			fn(ev)
		}
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			close(ch)
			<-done
		})
	}
	return func(ev Event) { ch <- ev }, stop
}

// eventBuffer is the per-Run progress channel capacity: deep enough that
// bursts of case-evaluated events from concurrent shard workers almost
// never block a sweep on the callback, small enough to bound memory and
// keep a stuck callback visible as back-pressure rather than unbounded
// growth.
const eventBuffer = 256
