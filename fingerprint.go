package rooftune

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"rooftune/internal/bench"
)

// fingerprintSchema versions the canonical rendering Fingerprint hashes.
// Bump it whenever the rendering below changes meaning: a bumped schema
// re-keys every content-addressed cache built on fingerprints, which is
// exactly what must happen when the identity contract moves.
const fingerprintSchema = "rooftune-fingerprint-v1"

// Fingerprint returns the session's content address: the hex SHA-256 of
// a canonical rendering of everything that determines its Result —
// engine and system identity, seed, the full evaluation budget, the
// chaining mode and case-shard count, and the resolved plan graph down
// to every planned case's typed configuration (bench.ConfigCanonical).
// Two sessions with equal fingerprints produce byte-identical Results on
// simulated targets, which is what lets a serving tier memoize outcomes:
// a cache keyed on the fingerprint returns a stored Result only to
// requests that would have re-measured exactly the same thing.
//
// Execution-schedule knobs that do not move the Result are excluded on
// purpose: WithSerial and WithHostParallelism change which hardware runs
// the schedule, never which configurations win (asserted by the
// determinism suites), so a loaded daemon sharing its host budget across
// sessions still hits the cache entries an idle one wrote. The case-shard
// count is included — sharded evaluation may legitimately prune less and
// therefore report a different SearchTime — and a caching tier must pin
// it (WithCaseShards(1)), because under the adaptive default (0) the
// shard pool is sized from the host cap and the search-cost accounting
// would vary across hosts sharing a fingerprint.
//
// Native sessions fingerprint too (the engine identity and thread count
// distinguish them from every simulated build), but two hosts sharing a
// fingerprint are not comparable hardware: memoize native results only
// within one machine.
func (s *Session) Fingerprint() (string, error) {
	target, res := s.target()
	nodes, _, err := s.plan(target, &Result{}, func(Event) {})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString(fingerprintSchema)
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "engine=%s\n", res.Engine)
	fmt.Fprintf(&sb, "system=%s\n", res.SystemName)
	fmt.Fprintf(&sb, "seed=%d\n", s.cfg.seed)
	fmt.Fprintf(&sb, "threads=%d\n", s.cfg.threads)
	fmt.Fprintf(&sb, "budget=%s\n", s.cfg.budget.Canonical())
	fmt.Fprintf(&sb, "chain=%t\n", s.cfg.chain)
	fmt.Fprintf(&sb, "caseShards=%d\n", s.cfg.caseShards)
	for _, n := range nodes {
		seedFrom := n.SeedFrom
		if !s.cfg.chain {
			// Without chaining the edges are stripped before execution,
			// so they are not part of what the run measures.
			seedFrom = ""
		}
		fmt.Fprintf(&sb, "node=%s seedFrom=%s sweep=%s\n", n.ID, seedFrom, n.Spec.Name)
		for _, c := range n.Spec.Cases {
			cfg := c.Config()
			if cfg == nil {
				return "", fmt.Errorf("rooftune: Fingerprint: sweep %s case %s carries no typed config", n.Spec.Name, c.Key())
			}
			canon, err := bench.ConfigCanonical(cfg)
			if err != nil {
				return "", fmt.Errorf("rooftune: Fingerprint: sweep %s: %w", n.Spec.Name, err)
			}
			fmt.Fprintf(&sb, "case=%s metric=%s\n", canon, c.Metric().Unit())
		}
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:]), nil
}
