package rooftune

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/units"
)

// TestResultJSONRoundTrip runs a real simulated session and pins the
// serving tier's core guarantee: a Result survives JSON encode/decode
// with every field intact and an identical rebuilt Roofline model, so
// the decoded Summary is byte-identical to the in-process one.
func TestResultJSONRoundTrip(t *testing.T) {
	sess, err := New(append(tinySessionOptions(), WithWorkloads("dgemm", "triad"))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res, got) {
		t.Fatalf("Result round trip diverged:\nin  %+v\nout %+v", *res, got)
	}
	if res.Summary() != got.Summary() {
		t.Fatalf("Summary diverged after round trip:\nin:\n%s\nout:\n%s", res.Summary(), got.Summary())
	}

	// The encoding itself must be deterministic — content-addressed cache
	// entries are compared byte for byte.
	again, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatalf("marshalling the same Result twice produced different bytes")
	}
}

// TestResultJSONSyntheticRoundTrip covers wire fields a tiny run may not
// exercise: application points with intensity, SpMV/stencil configs,
// warnings, and theoretical peaks.
func TestResultJSONSyntheticRoundTrip(t *testing.T) {
	in := Result{
		SystemName: "Gold 6148",
		Engine:     "sim",
		Compute: []ComputePoint{
			{
				Label: "DGEMM", Sockets: 2,
				Dims:   core.Dims{N: 4096, M: 4096, K: 256},
				Config: bench.DGEMMConfig{N: 4096, M: 4096, K: 256, Sockets: 2},
				Desc:   "n,m,k=4096x4096x256",
				Flops:  1.23456789e12, Theoretical: 2.4e12,
			},
			{
				Label: "SpMV", Sockets: 1,
				Config: bench.SpMVConfig{N: 262144, NNZPerRow: 16, ChunkRows: 512, Sockets: 1},
				Desc:   "n=262144 nnz/row=16 chunk=512 sockets=1",
				Flops:  8.9e9, Intensity: 0.16,
			},
		},
		Memory: []MemoryPoint{
			{Sockets: 2, Region: "DRAM", Elements: 1 << 24, Bandwidth: 1.9e11, Theoretical: 2.56e11},
			{Sockets: 1, Region: "L3", Elements: 1 << 18, Bandwidth: 4.2e11},
		},
		SearchTime: 137*time.Second + 41*time.Nanosecond,
		Warnings:   []string{"workload triad: region L1 is empty under the session bounds"},
	}
	in.Roofline = assembleRoofline(&in)

	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("synthetic Result round trip diverged:\nin  %+v\nout %+v", in, got)
	}
	if got.Compute[1].Intensity != units.Intensity(0.16) {
		t.Fatalf("intensity lost: %v", got.Compute[1].Intensity)
	}
}

func TestResultJSONRejectsWrongSchema(t *testing.T) {
	for _, raw := range []string{
		`{"systemName":"x","engine":"y"}`,
		`{"schema":"rooftune/result/v2","systemName":"x","engine":"y"}`,
	} {
		var r Result
		err := json.Unmarshal([]byte(raw), &r)
		if err == nil || !strings.Contains(err.Error(), "schema") {
			t.Fatalf("decoding %s: error %v, want schema rejection", raw, err)
		}
	}
}

// TestEventJSONRoundTrip enumerates every EventKind: each serializes
// with its kind by name and round-trips exactly — the SSE stream's
// per-event contract.
func TestEventJSONRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: EventSweepStarted, Sweep: "dgemm/2s", Cases: 42},
		{Kind: EventCaseEvaluated, Sweep: "dgemm/2s", Case: "n,m,k=512x512x128", Value: 812.5, Unit: "GFLOP/s", Pruned: true},
		{Kind: EventSweepWon, Sweep: "dgemm/2s", Case: "n,m,k=2048x2048x128", Value: 1204.25, Unit: "GFLOP/s", Elapsed: 3 * time.Second},
		{Kind: EventRegionEmpty, Workload: "triad", Warning: "workload triad: region L1 is empty"},
		{Kind: EventSweepSeeded, Sweep: "triad/L3/1s", From: "triad/DRAM/1s", Value: 96.5, Unit: "GB/s"},
	}
	if len(events) != len(eventKindNames) {
		t.Fatalf("test covers %d kinds, wire table has %d — extend both together", len(events), len(eventKindNames))
	}
	for _, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("%v: %v", ev.Kind, err)
		}
		if want := `"kind":"` + eventKindNames[ev.Kind] + `"`; !strings.Contains(string(data), want) {
			t.Fatalf("%v encodes as %s, missing %s", ev.Kind, data, want)
		}
		var got Event
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%v: %v", ev.Kind, err)
		}
		if got != ev {
			t.Fatalf("event round trip diverged:\nin  %+v\nout %+v", ev, got)
		}
	}
}

func TestEventJSONRejectsUnknownKind(t *testing.T) {
	var ev Event
	err := json.Unmarshal([]byte(`{"kind":"sweep-exploded"}`), &ev)
	if err == nil || !strings.Contains(err.Error(), "sweep-exploded") {
		t.Fatalf("error %v, want unknown-kind rejection naming it", err)
	}
	if _, err := json.Marshal(Event{Kind: EventKind(99)}); err == nil {
		t.Fatal("marshalling an unknown kind must error")
	}
}
