#!/usr/bin/env bash
# dist-smoke: black-box check of the roofdist coordinator/worker tier
# over real HTTP.
#
# Starts two roofworkerd daemons and a roofserved coordinator wired to
# them, then asserts the distributed contract end to end:
#   1. a chained TRIAD-levels campaign run through the coordinator
#      renders a summary bit-identical to the same campaign run
#      in-process by RunPlan,
#   2. the coordinator actually dispatched (roofdist_nodes_dispatched_total
#      > 0, zero local fallbacks) and both workers enrolled live,
#   3. with a slow campaign in flight, SIGKILL-ing the worker that is
#      running a node forces a requeue: the job still completes, the
#      requeue and worker-error counters tick on the coordinator's
#      /metrics, and the dead worker shows up in roofdist_workers.
# The in-process variant of the byte-identity and failure-path claims
# lives in internal/dist's -race tests; this script proves them across
# process boundaries and real TCP sockets.
# Run from the repository root: ./scripts/dist-smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${pids[@]}"; do
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/roofserved" ./cmd/roofserved
go build -o "$workdir/roofworkerd" ./cmd/roofworkerd
go build -o "$workdir/rooftool" ./cmd/rooftool

# start_proc <banner> <logname> <var> <cmd...>: launch a daemon, wait for
# its "<banner> listening on http://host:port" line, record the pid and
# assign the base URL to <var>.
start_proc() {
  banner=$1 logname=$2 var=$3
  shift 3
  "$@" >"$workdir/$logname.out" 2>"$workdir/$logname.err" &
  pid=$!
  pids+=("$pid")
  url=""
  for _ in $(seq 1 50); do
    url=$(sed -n "s/^$banner listening on \(http:\/\/.*\)$/\1/p" "$workdir/$logname.out")
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "$logname died:"; cat "$workdir/$logname.err"; exit 1; }
    sleep 0.1
  done
  [ -n "$url" ] || { echo "$logname never reported its address"; cat "$workdir/$logname.err"; exit 1; }
  printf -v "$var" '%s' "$url"
  printf -v "${var}_pid" '%s' "$pid"
  echo "$logname at $url (pid $pid)"
}

echo "== start two workers + coordinator"
start_proc roofworkerd worker1 w1 "$workdir/roofworkerd" -addr 127.0.0.1:0 -name worker1 -parallelism 2
start_proc roofworkerd worker2 w2 "$workdir/roofworkerd" -addr 127.0.0.1:0 -name worker2 -parallelism 2
start_proc roofserved coord base "$workdir/roofserved" -addr 127.0.0.1:0 \
  -workers "$w1,$w2" -worker-heartbeat 100ms -worker-lease 30s

# metric <file> <sample> <want>: assert one exact sample value in a scrape.
metric() {
  got=$(grep -v '^#' "$1" | grep -F "$2 " | awk '{print $2}')
  [ "$got" = "$3" ] \
    || { echo "metric $2 = '$got', want '$3'"; cat "$1"; exit 1; }
}
# metric_ge <file> <sample> <min>: assert a sample is at least <min>.
metric_ge() {
  got=$(grep -v '^#' "$1" | grep -F "$2 " | awk '{print $2}')
  [ -n "$got" ] && awk -v g="$got" -v m="$3" 'BEGIN { exit !(g+0 >= m+0) }' \
    || { echo "metric $2 = '$got', want >= $3"; cat "$1"; exit 1; }
}

echo "== both workers enroll live"
live=""
for _ in $(seq 1 50); do
  curl -sS -f -o "$workdir/m0.txt" "$base/metrics"
  live=$(grep -v '^#' "$workdir/m0.txt" | grep -F 'roofdist_workers{state="live"} ' | awk '{print $2}')
  [ "$live" = 2 ] && break
  sleep 0.1
done
[ "$live" = 2 ] || { echo "workers never enrolled: live=$live"; cat "$workdir/m0.txt"; exit 1; }

echo "== chained TRIAD-levels campaign: coordinator summary == in-process summary"
"$workdir/rooftool" -remote "$base" -system "Gold 6148" -workloads dgemm,triad \
  -triad-levels L2,L3,DRAM -chain -format summary >"$workdir/remote.txt" 2>/dev/null
"$workdir/rooftool" -system "Gold 6148" -workloads dgemm,triad \
  -triad-levels L2,L3,DRAM -chain -case-shards 1 -format summary >"$workdir/local.txt"
cmp "$workdir/remote.txt" "$workdir/local.txt" \
  || { echo "distributed summary differs from in-process summary"; diff "$workdir/remote.txt" "$workdir/local.txt" || true; exit 1; }

echo "== coordinator dispatched every node remotely (no local fallback)"
curl -sS -f -o "$workdir/m1.txt" "$base/metrics"
metric_ge "$workdir/m1.txt" 'roofdist_nodes_dispatched_total' 4
metric "$workdir/m1.txt" 'roofdist_local_fallback_total' 0

echo "== workers actually ran nodes"
curl -sS -f -o "$workdir/wm1.txt" "$w1/metrics"
curl -sS -f -o "$workdir/wm2.txt" "$w2/metrics"
n1=$(grep -v '^#' "$workdir/wm1.txt" | grep -F 'roofdist_worker_nodes_total ' | awk '{print $2}')
n2=$(grep -v '^#' "$workdir/wm2.txt" | grep -F 'roofdist_worker_nodes_total ' | awk '{print $2}')
total=$((n1 + n2))
[ "$total" -ge 4 ] || { echo "workers ran $n1 + $n2 nodes, want >= 4"; exit 1; }
echo "worker1 ran $n1 node(s), worker2 ran $n2"

# A deliberately slow chained campaign (serial sweeps, high iteration
# floor, all early-exit bounds disabled) so a worker can be killed while
# a node is demonstrably in flight.
cat >"$workdir/slow.json" <<'EOF'
{"system": "Gold 6148", "workloads": ["triad"], "seed": 7,
 "triadLevels": ["L2", "L3", "DRAM"], "chain": true, "serial": true,
 "budget": {"maxIterations": 20000, "minCount": 20000, "invocations": 9,
            "confidence": false, "innerBound": false, "outerBound": false}}
EOF

echo "== submit slow campaign, SIGKILL whichever worker is mid-node"
code=$(curl -sS -D "$workdir/jh" -o "$workdir/jb.json" -w '%{http_code}' \
  -H 'Content-Type: application/json' -d @"$workdir/slow.json" "$base/v1/jobs")
[ "$code" = 202 ] || { echo "job not accepted (HTTP $code)"; cat "$workdir/jb.json"; exit 1; }
id=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$workdir/jb.json")
[ -n "$id" ] || { echo "submission returned no job id:"; cat "$workdir/jb.json"; exit 1; }

killed=""
for _ in $(seq 1 100); do
  for w in 1 2; do
    url_var="w$w" pid_var="w${w}_pid"
    running=$(curl -sS "${!url_var}/dist/v1/healthz" 2>/dev/null \
      | sed -n 's/.*"running":\([0-9]*\).*/\1/p')
    if [ -n "$running" ] && [ "$running" -gt 0 ]; then
      echo "worker$w is running $running node(s) -> SIGKILL pid ${!pid_var}"
      kill -KILL "${!pid_var}"
      killed=$w
      break 2
    fi
  done
  sleep 0.05
done
[ -n "$killed" ] || { echo "never caught a worker mid-node"; exit 1; }

echo "== the job still completes on the surviving worker"
state=""
for _ in $(seq 1 300); do
  state=$(curl -sS -f "$base/v1/jobs/$id" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
  case "$state" in done | failed | shed) break ;; esac
  sleep 0.2
done
[ "$state" = done ] || { echo "job $id ended in state '$state', want done"; exit 1; }

echo "== requeue and failure counters ticked on the coordinator"
curl -sS -f -o "$workdir/m2.txt" "$base/metrics"
metric_ge "$workdir/m2.txt" 'roofdist_nodes_requeued_total' 1
metric_ge "$workdir/m2.txt" 'roofdist_worker_errors_total' 1
metric "$workdir/m2.txt" 'roofdist_local_fallback_total' 0

echo "== the killed worker is marked dead by the heartbeat"
dead=""
for _ in $(seq 1 50); do
  curl -sS -f -o "$workdir/m3.txt" "$base/metrics"
  dead=$(grep -v '^#' "$workdir/m3.txt" | grep -F 'roofdist_workers{state="dead"} ' | awk '{print $2}')
  [ "$dead" = 1 ] && break
  sleep 0.1
done
[ "$dead" = 1 ] || { echo "killed worker never marked dead: dead=$dead"; cat "$workdir/m3.txt"; exit 1; }

echo "== graceful shutdown"
kill -TERM "${pids[@]}" 2>/dev/null || true
for pid in "${pids[@]}"; do
  wait "$pid" 2>/dev/null || true
done
pids=()

echo "dist-smoke: OK"
