#!/usr/bin/env bash
# serve-smoke: black-box check of the roofserved daemon over real HTTP.
#
# Starts roofserved on an ephemeral port, submits the same simulated
# DGEMM campaign twice, and asserts the contract the serving tier is
# built around:
#   1. the second response is a cache hit (X-Roofserve-Cache: hit),
#   2. its body is byte-identical to the first response,
#   3. the /metrics hit/miss counters reconcile exactly with the
#      X-Roofserve-Cache headers the daemon sent,
#   4. rooftool -remote renders a summary bit-identical to the same
#      campaign run in-process.
# Then restarts the daemon with -max-jobs=2 -queue-depth=2 and floods it
# with five distinct slow campaigns: four must be accepted (two running,
# two queued), the fifth must be shed with 429 + the exact configured
# Retry-After and the structured "overloaded" envelope, and after the
# flood drains the admission counters on /metrics must reconcile with
# exactly that traffic.
# Run from the repository root: ./scripts/serve-smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  [ -n "$daemon_pid" ] && wait "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/roofserved" ./cmd/roofserved
go build -o "$workdir/rooftool" ./cmd/rooftool

# start_daemon <logname> [flags...]: launch roofserved, wait for the
# "roofserved listening on http://host:port" line and set base/daemon_pid.
start_daemon() {
  logname=$1; shift
  "$workdir/roofserved" "$@" >"$workdir/$logname.out" 2>"$workdir/$logname.err" &
  daemon_pid=$!
  base=""
  for _ in $(seq 1 50); do
    base=$(sed -n 's/^roofserved listening on \(http:\/\/.*\)$/\1/p' "$workdir/$logname.out")
    [ -n "$base" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "daemon died:"; cat "$workdir/$logname.err"; exit 1; }
    sleep 0.1
  done
  [ -n "$base" ] || { echo "daemon never reported its address"; cat "$workdir/$logname.err"; exit 1; }
  echo "daemon at $base"
}

echo "== start daemon (ephemeral port)"
start_daemon daemon -addr 127.0.0.1:0

campaign='{"system": "Gold 6148", "workloads": ["dgemm"], "seed": 1021}'

echo "== first request (must run the campaign)"
curl -sS -f -D "$workdir/h1" -o "$workdir/r1.json" \
  -H 'Content-Type: application/json' -d "$campaign" "$base/v1/tune"
grep -i '^x-roofserve-cache: miss' "$workdir/h1" >/dev/null \
  || { echo "first response was not a cache miss:"; cat "$workdir/h1"; exit 1; }

echo "== second request (must be a byte-identical cache hit)"
curl -sS -f -D "$workdir/h2" -o "$workdir/r2.json" \
  -H 'Content-Type: application/json' -d "$campaign" "$base/v1/tune"
grep -i '^x-roofserve-cache: hit' "$workdir/h2" >/dev/null \
  || { echo "second response was not a cache hit:"; cat "$workdir/h2"; exit 1; }
cmp "$workdir/r1.json" "$workdir/r2.json" \
  || { echo "cache hit is not byte-identical to the original response"; exit 1; }

# metric <file> <sample> <want>: assert one exact sample value in a scrape.
metric() {
  got=$(grep -v '^#' "$1" | grep -F "$2 " | awk '{print $2}')
  [ "$got" = "$3" ] \
    || { echo "metric $2 = '$got', want '$3'"; cat "$1"; exit 1; }
}

echo "== /metrics reconciles with the cache headers (1 miss, 1 hit)"
curl -sS -f -o "$workdir/m1.txt" "$base/metrics"
metric "$workdir/m1.txt" 'roofserve_cache_misses_total' 1
metric "$workdir/m1.txt" 'roofserve_cache_hits_total' 1
metric "$workdir/m1.txt" 'roofserve_cache_entries' 1

echo "== rooftool -remote matches in-process summary bit for bit"
"$workdir/rooftool" -remote "$base" -system "Gold 6148" -workloads dgemm \
  -format summary >"$workdir/remote.txt" 2>/dev/null
"$workdir/rooftool" -system "Gold 6148" -workloads dgemm -case-shards 1 \
  -format summary >"$workdir/local.txt"
cmp "$workdir/remote.txt" "$workdir/local.txt" \
  || { echo "remote summary differs from in-process summary"; diff "$workdir/remote.txt" "$workdir/local.txt" || true; exit 1; }

echo "== graceful shutdown"
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""

echo "== start admission-limited daemon (-max-jobs 2 -queue-depth 2)"
start_daemon flood -addr 127.0.0.1:0 -parallelism 1 \
  -max-jobs 2 -queue-depth 2 -retry-after 1s

# A deliberately slow campaign (~2s of simulated measurement under
# -parallelism 1): four workloads over a 10-point space, serial sweeps,
# high iteration floor, all early-exit bounds disabled. Each flood
# submission varies the seed so the five campaigns are distinct
# fingerprints — no singleflight collapse, no cache hits.
heavy() {
  cat <<EOF
{"system": "Gold 6148", "workloads": ["dgemm", "triad", "spmv", "stencil"], "seed": $1,
 "space": [{"n": 256, "m": 256, "k": 256}, {"n": 512, "m": 512, "k": 512},
           {"n": 1024, "m": 1024, "k": 1024}, {"n": 2048, "m": 2048, "k": 2048},
           {"n": 4096, "m": 4096, "k": 4096}, {"n": 8192, "m": 8192, "k": 512},
           {"n": 1024, "m": 2048, "k": 4096}, {"n": 4096, "m": 2048, "k": 1024},
           {"n": 512, "m": 8192, "k": 512}, {"n": 2048, "m": 512, "k": 2048}],
 "triadLevels": ["L1", "L2", "L3", "DRAM"], "serial": true,
 "budget": {"maxIterations": 20000, "minCount": 20000, "invocations": 9,
            "confidence": false, "innerBound": false, "outerBound": false}}
EOF
}

echo "== flood: 5 distinct submissions against 2 run slots + 2 queue slots"
for i in 1 2 3 4 5; do
  heavy "$i" >"$workdir/c$i.json"
  code=$(curl -sS -D "$workdir/fh$i" -o "$workdir/fb$i.json" -w '%{http_code}' \
    -H 'Content-Type: application/json' -d @"$workdir/c$i.json" "$base/v1/jobs")
  echo "submission $i -> HTTP $code"
  case "$i" in
  5)
    [ "$code" = 429 ] || { echo "submission 5 not shed (HTTP $code)"; cat "$workdir/fb$i.json"; exit 1; }
    grep -i '^retry-after: 1' "$workdir/fh$i" >/dev/null \
      || { echo "shed response lacks the configured Retry-After: 1"; cat "$workdir/fh$i"; exit 1; }
    grep -F '"code":"overloaded"' "$workdir/fb$i.json" >/dev/null \
      || { echo "shed body lacks the overloaded envelope:"; cat "$workdir/fb$i.json"; exit 1; }
    ;;
  *)
    [ "$code" = 202 ] || { echo "submission $i not accepted (HTTP $code)"; cat "$workdir/fb$i.json"; exit 1; }
    ;;
  esac
done

echo "== shed is immediate and deterministic under load"
curl -sS -f -o "$workdir/m2.txt" "$base/metrics"
metric "$workdir/m2.txt" 'roofserve_admission_shed_total{reason="queue_full"}' 1
metric "$workdir/m2.txt" 'roofserve_admission_shed_total{reason="client_quota"}' 0

echo "== drain: the four admitted jobs all finish"
for i in 1 2 3 4; do
  id=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$workdir/fb$i.json")
  [ -n "$id" ] || { echo "submission $i returned no job id:"; cat "$workdir/fb$i.json"; exit 1; }
  state=""
  for _ in $(seq 1 300); do
    state=$(curl -sS -f "$base/v1/jobs/$id" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    case "$state" in done | failed | shed) break ;; esac
    sleep 0.2
  done
  [ "$state" = done ] || { echo "job $id ended in state '$state', want done"; exit 1; }
done

echo "== post-drain /metrics reconciles with the flood"
curl -sS -f -o "$workdir/m3.txt" "$base/metrics"
metric "$workdir/m3.txt" 'roofserve_admission_granted_total' 4
metric "$workdir/m3.txt" 'roofserve_admission_shed_total{reason="queue_full"}' 1
metric "$workdir/m3.txt" 'roofserve_admission_queue_depth' 0
metric "$workdir/m3.txt" 'roofserve_jobs{state="done"}' 4
metric "$workdir/m3.txt" 'roofserve_jobs{state="shed"}' 1
metric "$workdir/m3.txt" 'roofserve_jobs{state="running"}' 0
metric "$workdir/m3.txt" 'roofserve_budget_active' 0

echo "== graceful shutdown (admission-limited daemon)"
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""

echo "serve-smoke: OK"
