#!/usr/bin/env bash
# serve-smoke: black-box check of the roofserved daemon over real HTTP.
#
# Starts roofserved on an ephemeral port, submits the same simulated
# DGEMM campaign twice, and asserts the contract the serving tier is
# built around:
#   1. the second response is a cache hit (X-Roofserve-Cache: hit),
#   2. its body is byte-identical to the first response,
#   3. rooftool -remote renders a summary bit-identical to the same
#      campaign run in-process.
# Run from the repository root: ./scripts/serve-smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  [ -n "$daemon_pid" ] && wait "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/roofserved" ./cmd/roofserved
go build -o "$workdir/rooftool" ./cmd/rooftool

echo "== start daemon (ephemeral port)"
"$workdir/roofserved" -addr 127.0.0.1:0 >"$workdir/daemon.out" 2>"$workdir/daemon.err" &
daemon_pid=$!

# The daemon prints "roofserved listening on http://host:port" once the
# listener is bound; poll for it rather than sleeping a fixed time.
base=""
for _ in $(seq 1 50); do
  base=$(sed -n 's/^roofserved listening on \(http:\/\/.*\)$/\1/p' "$workdir/daemon.out")
  [ -n "$base" ] && break
  kill -0 "$daemon_pid" 2>/dev/null || { echo "daemon died:"; cat "$workdir/daemon.err"; exit 1; }
  sleep 0.1
done
[ -n "$base" ] || { echo "daemon never reported its address"; cat "$workdir/daemon.err"; exit 1; }
echo "daemon at $base"

campaign='{"system": "Gold 6148", "workloads": ["dgemm"], "seed": 1021}'

echo "== first request (must run the campaign)"
curl -sS -f -D "$workdir/h1" -o "$workdir/r1.json" \
  -H 'Content-Type: application/json' -d "$campaign" "$base/v1/tune"
grep -i '^x-roofserve-cache: miss' "$workdir/h1" >/dev/null \
  || { echo "first response was not a cache miss:"; cat "$workdir/h1"; exit 1; }

echo "== second request (must be a byte-identical cache hit)"
curl -sS -f -D "$workdir/h2" -o "$workdir/r2.json" \
  -H 'Content-Type: application/json' -d "$campaign" "$base/v1/tune"
grep -i '^x-roofserve-cache: hit' "$workdir/h2" >/dev/null \
  || { echo "second response was not a cache hit:"; cat "$workdir/h2"; exit 1; }
cmp "$workdir/r1.json" "$workdir/r2.json" \
  || { echo "cache hit is not byte-identical to the original response"; exit 1; }

echo "== rooftool -remote matches in-process summary bit for bit"
"$workdir/rooftool" -remote "$base" -system "Gold 6148" -workloads dgemm \
  -format summary >"$workdir/remote.txt" 2>/dev/null
"$workdir/rooftool" -system "Gold 6148" -workloads dgemm -case-shards 1 \
  -format summary >"$workdir/local.txt"
cmp "$workdir/remote.txt" "$workdir/local.txt" \
  || { echo "remote summary differs from in-process summary"; diff "$workdir/remote.txt" "$workdir/local.txt" || true; exit 1; }

echo "== graceful shutdown"
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""

echo "serve-smoke: OK"
