#!/usr/bin/env bash
# apicheck.sh — the contract-stability gate, runnable locally exactly as
# CI runs it (the contract-check job calls this script).
#
# Two phases:
#
#   1. Check: run the full rooflint suite (which includes apisurface and
#      wirecompat) against the committed goldens under api/. Any drift —
#      a removed or retyped export, a removed or retyped wire field, or
#      an addition not yet recorded — is a finding and fails here.
#
#   2. Freshness: regenerate the goldens with -write-goldens and require
#      `git diff` to come back empty. This catches the complementary
#      failure mode: goldens that were hand-edited into a state the
#      renderer would never produce, which phase 1 alone cannot see.
#
# To accept a deliberate, additive surface change:
#
#   go run ./cmd/rooflint -write-goldens ./...
#   git add api/ && git commit
#
# Removals and retypes are breaking by policy (see README "Static
# analysis"); regenerating the golden does not make them less breaking,
# it records that a human decided to break the contract.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== apicheck: rooflint suite against committed goldens =="
go run ./cmd/rooflint ./...

echo "== apicheck: goldens regenerate byte-identically =="
go run ./cmd/rooflint -write-goldens ./... >/dev/null
if ! git diff --exit-code -- api/; then
    echo "apicheck: committed goldens are stale — commit the regenerated api/ files" >&2
    exit 1
fi

echo "apicheck: contract surface stable"
