package stats

import (
	"math"
	"testing"

	"rooftune/internal/xrand"
)

func TestSteadyDetectorConstantStream(t *testing.T) {
	d := NewSteadyDetector(5, 0.02)
	for i := 0; i < 4; i++ {
		if d.Add(10) {
			t.Fatalf("steady before window filled at %d", i)
		}
	}
	if !d.Add(10) {
		t.Fatal("constant stream must be steady once the window fills")
	}
	if !d.Steady() {
		t.Fatal("Steady() must latch")
	}
}

func TestSteadyDetectorRamp(t *testing.T) {
	// A warm-up ramp (the paper's §III-C4 scenario): values climb toward
	// 100. The detector must hold off during the climb and fire after.
	d := NewSteadyDetector(8, 0.02)
	firedAt := -1
	for i := 0; i < 200; i++ {
		v := 100 * (1 - 0.4*math.Exp(-float64(i)/10))
		if d.Add(v) && firedAt < 0 {
			firedAt = i
		}
	}
	if firedAt < 0 {
		t.Fatal("ramp never declared steady")
	}
	if firedAt < 15 {
		t.Fatalf("declared steady at %d, during the ramp", firedAt)
	}
	if firedAt > 80 {
		t.Fatalf("declared steady only at %d, far past the ramp", firedAt)
	}
}

func TestSteadyDetectorLatches(t *testing.T) {
	d := NewSteadyDetector(3, 0.05)
	for i := 0; i < 3; i++ {
		d.Add(1)
	}
	if !d.Steady() {
		t.Fatal("setup")
	}
	// Even a wild sample cannot un-latch (one-shot decision).
	if !d.Add(1e9) {
		t.Fatal("detector must stay steady once declared")
	}
}

func TestSteadyDetectorReset(t *testing.T) {
	d := NewSteadyDetector(3, 0.05)
	for i := 0; i < 3; i++ {
		d.Add(1)
	}
	d.Reset()
	if d.Steady() {
		t.Fatal("Reset must clear the latch")
	}
	if d.Add(1) {
		t.Fatal("window must refill after Reset")
	}
}

func TestSteadyDetectorNoisyNeverSteady(t *testing.T) {
	rng := xrand.New(77)
	d := NewSteadyDetector(10, 0.01)
	fired := false
	for i := 0; i < 500; i++ {
		// 30% CoV noise can never pass a 1% threshold.
		if d.Add(100 + 30*rng.Normal()) {
			fired = true
		}
	}
	if fired {
		t.Fatal("high-variance stream must not be declared steady at 1%")
	}
}

func TestSteadyDetectorDefaults(t *testing.T) {
	d := NewSteadyDetector(0, 0)
	if d.Window != 10 || d.Threshold != 0.02 {
		t.Fatalf("defaults: %+v", d)
	}
}

func TestLag1Autocorrelation(t *testing.T) {
	// Alternating series: strong negative lag-1 correlation.
	alt := make([]float64, 100)
	for i := range alt {
		alt[i] = float64(i % 2)
	}
	if r := Lag1Autocorrelation(alt); r > -0.8 {
		t.Fatalf("alternating series lag-1 = %v, want strongly negative", r)
	}
	// Slowly ramping series: strong positive correlation.
	ramp := make([]float64, 100)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	if r := Lag1Autocorrelation(ramp); r < 0.9 {
		t.Fatalf("ramp lag-1 = %v, want ~1", r)
	}
	// Independent noise: near zero.
	rng := xrand.New(11)
	noise := make([]float64, 5000)
	for i := range noise {
		noise[i] = rng.Normal()
	}
	if r := Lag1Autocorrelation(noise); math.Abs(r) > 0.05 {
		t.Fatalf("white noise lag-1 = %v, want ~0", r)
	}
	if Lag1Autocorrelation([]float64{1, 2}) != 0 {
		t.Fatal("n<3 must return 0")
	}
	if Lag1Autocorrelation([]float64{5, 5, 5, 5}) != 0 {
		t.Fatal("zero variance must return 0")
	}
}

func TestEffectiveSampleSize(t *testing.T) {
	// Independent samples: ESS == n.
	if got := EffectiveSampleSize(100, 0); got != 100 {
		t.Fatalf("ESS(rho=0) = %v", got)
	}
	// Positive correlation shrinks, negative grows (clamped to n).
	if got := EffectiveSampleSize(100, 0.5); math.Abs(got-100.0/3) > 1e-9 {
		t.Fatalf("ESS(rho=0.5) = %v, want 33.3", got)
	}
	if got := EffectiveSampleSize(100, -0.5); got != 100 {
		t.Fatalf("ESS(rho=-0.5) = %v, want clamp at n", got)
	}
	// Degenerate cases.
	if EffectiveSampleSize(0, 0) != 0 {
		t.Fatal("n=0")
	}
	if EffectiveSampleSize(100, 1) != 1 {
		t.Fatal("rho=1 must collapse to 1")
	}
	if EffectiveSampleSize(100, 0.9999) < 1 {
		t.Fatal("ESS must clamp at 1")
	}
}
