// Package stats implements the statistical machinery behind the paper's
// adaptive stop conditions: Welford's online mean/variance (Eqs. 5-7),
// normal-theory and Student-t confidence intervals, coefficient of
// variation, order statistics, bootstrap confidence intervals, and the
// nonparametric comparisons suggested in the paper's future-work section.
package stats

import (
	"fmt"
	"math"
)

// Welford accumulates a sample mean and corrected sum of squares online,
// one observation at a time, without storing the observations. This is the
// algorithm of Welford (1962) referenced by the paper (Eqs. 6-7):
//
//	m_n = ((n-1)/n) m_{n-1} + x_n / n
//	C_n = C_{n-1} + ((n-1)/n) (x_n - m_{n-1})^2
//
// The zero value is an empty accumulator ready for use.
type Welford struct {
	n    int64   // number of observations
	mean float64 // running mean m_n
	c    float64 // corrected sum of squares C_n
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.mean = x
		w.c = 0
		w.min, w.max = x, x
		return
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	// C_n = C_{n-1} + ((n-1)/n) * delta^2  ==  C_{n-1} + delta*(x - new mean)
	w.c += delta * (x - w.mean)
	if x < w.min {
		w.min = x
	}
	if x > w.max {
		w.max = x
	}
}

// N returns the number of observations accumulated.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation, or 0 for an empty accumulator.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 for an empty accumulator.
func (w *Welford) Max() float64 { return w.max }

// SumSquares returns the corrected sum of squares C_n.
func (w *Welford) SumSquares() float64 { return w.c }

// Variance returns the unbiased sample variance S^2 = C_n/(n-1) (Eq. 5).
// It returns 0 when fewer than two observations have been added.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.c / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean, S/sqrt(n).
func (w *Welford) StdErr() float64 {
	if w.n < 1 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// CoV returns the coefficient of variation S/|mean|, the statistic Georges
// et al. use to detect steady state. It returns +Inf for a zero mean with
// nonzero spread, and 0 for an empty accumulator.
func (w *Welford) CoV() float64 {
	if w.n < 2 {
		return 0
	}
	if w.mean == 0 {
		if w.c == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return w.StdDev() / math.Abs(w.mean)
}

// Reset empties the accumulator for reuse.
func (w *Welford) Reset() { *w = Welford{} }

// Merge combines another accumulator into w as if all of its observations
// had been added to w, using the parallel variant of Welford's update
// (Chan et al.). This supports combining per-invocation statistics into the
// outer-loop aggregate.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	nA, nB := float64(w.n), float64(o.n)
	delta := o.mean - w.mean
	total := nA + nB
	w.mean += delta * nB / total
	w.c += o.c + delta*delta*nA*nB/total
	w.n += o.n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// String summarises the accumulator for debugging.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%g sd=%g", w.n, w.Mean(), w.StdDev())
}

// TwoPassMeanVariance computes the sample mean and unbiased variance of xs
// with the classical two-pass formula. It exists as the numerically
// trustworthy oracle that the property tests compare Welford against, and
// as the baseline for the Welford-vs-two-pass ablation benchmark.
func TwoPassMeanVariance(xs []float64) (mean, variance float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, ss / float64(n-1)
}
