package stats

import "math"

// SteadyDetector implements the steady-state detection rule of Georges et
// al. (§II of the paper): a measurement stream is considered steady once
// the coefficient of variation of the last Window observations falls
// below Threshold. The paper's warm-up ramps (§III-C4) are exactly the
// non-steady phase this detects; internal/bench uses it to exclude
// warm-up samples from the stop-condition statistics.
type SteadyDetector struct {
	Window    int     // observations considered (Georges et al. use ~10)
	Threshold float64 // CoV bound, e.g. 0.02

	buf    []float64
	next   int
	filled int
	steady bool
}

// NewSteadyDetector returns a detector with the given window and
// threshold; non-positive arguments get the conventional defaults
// (window 10, threshold 0.02).
func NewSteadyDetector(window int, threshold float64) *SteadyDetector {
	if window <= 1 {
		window = 10
	}
	if threshold <= 0 {
		threshold = 0.02
	}
	return &SteadyDetector{Window: window, Threshold: threshold}
}

// Add records one observation and reports whether the stream is steady as
// of this observation. Once steady, the detector stays steady (the
// decision is one-shot, as in Georges et al.'s protocol: measurement
// starts after warm-up ends).
func (d *SteadyDetector) Add(x float64) bool {
	if d.steady {
		return true
	}
	if d.buf == nil {
		d.buf = make([]float64, d.Window)
	}
	d.buf[d.next] = x
	d.next = (d.next + 1) % d.Window
	if d.filled < d.Window {
		d.filled++
		if d.filled < d.Window {
			return false
		}
	}
	if d.windowCoV() < d.Threshold {
		d.steady = true
	}
	return d.steady
}

// Steady reports whether steady state has been declared.
func (d *SteadyDetector) Steady() bool { return d.steady }

// Reset returns the detector to its initial state.
func (d *SteadyDetector) Reset() {
	d.steady = false
	d.filled = 0
	d.next = 0
}

func (d *SteadyDetector) windowCoV() float64 {
	var sum float64
	for _, v := range d.buf {
		sum += v
	}
	mean := sum / float64(d.Window)
	if mean == 0 {
		return math.Inf(1)
	}
	var ss float64
	for _, v := range d.buf {
		diff := v - mean
		ss += diff * diff
	}
	sd := math.Sqrt(ss / float64(d.Window-1))
	return sd / math.Abs(mean)
}

// EffectiveSampleSize returns the AR(1)-adjusted effective sample size
// n * (1-rho)/(1+rho) for lag-1 autocorrelation rho — the number of
// independent observations n correlated samples are worth. Confidence
// intervals computed from autocorrelated benchmark iterations are too
// narrow by sqrt(n/ESS); the distribution study reports this factor.
func EffectiveSampleSize(n int, rho float64) float64 {
	if n <= 0 {
		return 0
	}
	if rho >= 1 {
		return 1
	}
	if rho <= -1 {
		return float64(n)
	}
	ess := float64(n) * (1 - rho) / (1 + rho)
	if ess > float64(n) {
		return float64(n)
	}
	if ess < 1 {
		return 1
	}
	return ess
}

// Lag1Autocorrelation estimates the lag-1 autocorrelation of xs, the
// independence diagnostic behind Kalibera & Jones' "independent state"
// criterion (§II). Values near zero indicate the iteration-level samples
// can be treated as independent; strong positive values indicate the
// benchmark has not reached an independent state.
func Lag1Autocorrelation(xs []float64) float64 {
	n := len(xs)
	if n < 3 {
		return 0
	}
	mean, variance := TwoPassMeanVariance(xs)
	if variance == 0 {
		return 0
	}
	var num float64
	for i := 1; i < n; i++ {
		num += (xs[i] - mean) * (xs[i-1] - mean)
	}
	// Denominator uses the sample variance times (n-1) = corrected SS.
	return num / (variance * float64(n-1))
}
