package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (the R-7 definition used by most
// statistics packages). It panics on an empty sample or q outside [0,1].
// xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q=%g out of [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return s[n-1]
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs. The paper's future-work section
// proposes median-based stop conditions; internal/bench implements one on
// top of this.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// IQR returns the interquartile range, a robust spread estimate used by the
// median-based stop condition.
func IQR(xs []float64) float64 { return Quantile(xs, 0.75) - Quantile(xs, 0.25) }

// Skewness returns the adjusted Fisher-Pearson sample skewness of xs,
// or 0 for samples smaller than 3 or with zero variance.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	mean, variance := TwoPassMeanVariance(xs)
	if variance == 0 {
		return 0
	}
	sd := math.Sqrt(variance)
	var m3 float64
	for _, x := range xs {
		d := (x - mean) / sd
		m3 += d * d * d
	}
	return n / ((n - 1) * (n - 2)) * m3
}

// ExcessKurtosis returns the sample excess kurtosis (normal = 0) of xs, or
// 0 for samples smaller than 4 or with zero variance.
func ExcessKurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return 0
	}
	mean, variance := TwoPassMeanVariance(xs)
	if variance == 0 {
		return 0
	}
	var m4 float64
	for _, x := range xs {
		d := x - mean
		m4 += d * d * d * d
	}
	m4 /= n
	g2 := m4/(variance*variance*(n-1)/n*(n-1)/n) - 3
	// small-sample adjustment
	return ((n+1)*g2 + 6) * (n - 1) / ((n - 2) * (n - 3))
}

// JarqueBera returns the Jarque-Bera normality statistic of xs and an
// approximate p-value from its asymptotic chi-squared(2) distribution.
// The paper notes measured runtime distributions are "usually non-normal";
// the reporting layer uses this to flag such configurations.
func JarqueBera(xs []float64) (stat, pValue float64) {
	n := float64(len(xs))
	if n < 4 {
		return 0, 1
	}
	s := Skewness(xs)
	k := ExcessKurtosis(xs)
	stat = n / 6 * (s*s + k*k/4)
	// chi^2(2) survival function is exp(-x/2).
	pValue = math.Exp(-stat / 2)
	return stat, pValue
}

// Histogram is a fixed-bin histogram over a closed range.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	Under  int64 // observations below Lo
	Over   int64 // observations above Hi
}

// NewHistogram builds an empty histogram with the given bin count over
// [lo, hi]. It panics if bins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: NewHistogram with bins < 1")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x > h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // x == Hi
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range
// ones.
func (h *Histogram) Total() int64 {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mode returns the midpoint of the fullest bin, or 0 if empty.
func (h *Histogram) Mode() float64 {
	best, bestCount := -1, int64(-1)
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 || bestCount <= 0 {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(best)+0.5)*w
}
