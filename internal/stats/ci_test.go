package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829}, // the paper's 99% two-sided z
		{0.841344746, 1.0},
		{0.025, -1.959964},
		{0.0005, -3.290527},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileCDFInverse(t *testing.T) {
	f := func(raw uint16) bool {
		p := (float64(raw) + 1) / 65538 // in (0,1)
		z := NormalQuantile(p)
		return math.Abs(NormalCDF(z)-p) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v): want panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestStudentQuantileKnownValues(t *testing.T) {
	// Standard t-table values, two-sided 95% and 99%.
	cases := []struct {
		p    float64
		df   int
		want float64
	}{
		{0.975, 1, 12.7062},
		{0.975, 2, 4.30265},
		{0.975, 10, 2.22814},
		{0.995, 10, 3.16927},
		{0.995, 30, 2.74999},
		{0.975, 120, 1.97993},
		{0.95, 5, 2.01505},
	}
	for _, c := range cases {
		got := StudentQuantile(c.p, c.df)
		if math.Abs(got-c.want) > 2e-3 {
			t.Errorf("StudentQuantile(%v, %d) = %v, want %v", c.p, c.df, got, c.want)
		}
	}
}

func TestStudentQuantileSymmetry(t *testing.T) {
	for _, df := range []int{1, 2, 5, 30} {
		if got := StudentQuantile(0.5, df); got != 0 {
			t.Errorf("median of t(%d) = %v", df, got)
		}
		a, b := StudentQuantile(0.9, df), StudentQuantile(0.1, df)
		if math.Abs(a+b) > 1e-9 {
			t.Errorf("t(%d) not symmetric: %v vs %v", df, a, b)
		}
	}
}

func TestStudentApproachesNormal(t *testing.T) {
	z := NormalQuantile(0.995)
	tq := StudentQuantile(0.995, 2000)
	if math.Abs(z-tq) > 5e-3 {
		t.Fatalf("t with high df %v should approach z %v", tq, z)
	}
}

func TestStudentCDFQuantileRoundTrip(t *testing.T) {
	for _, df := range []int{1, 3, 7, 29, 100} {
		for _, p := range []float64{0.05, 0.3, 0.5, 0.9, 0.995} {
			q := StudentQuantile(p, df)
			back := StudentCDF(q, df)
			if math.Abs(back-p) > 1e-6 {
				t.Errorf("CDF(Quantile(%v, %d)) = %v", p, df, back)
			}
		}
	}
}

func TestStudentWiderThanNormal(t *testing.T) {
	// Student intervals must be wider for small n (the reason the
	// UseStudentT extension is more conservative).
	for df := 1; df <= 50; df++ {
		if StudentQuantile(0.995, df) <= NormalQuantile(0.995) {
			t.Fatalf("t quantile not wider than z at df=%d", df)
		}
	}
}

func TestNormalCIKnown(t *testing.T) {
	var w Welford
	for _, x := range []float64{8, 9, 10, 11, 12} {
		w.Add(x)
	}
	iv := NormalCI(&w, 0.99)
	// mean 10, sd sqrt(2.5), se sqrt(0.5); marg = 2.5758 * 0.7071
	wantMarg := 2.575829 * math.Sqrt(2.5/5)
	if iv.Mean != 10 {
		t.Fatalf("CI mean %v", iv.Mean)
	}
	if math.Abs(iv.Margin()-wantMarg) > 1e-4 {
		t.Fatalf("CI margin %v, want %v", iv.Margin(), wantMarg)
	}
	if !iv.Contains(10) || iv.Contains(20) {
		t.Fatal("Contains broken")
	}
}

func TestCISmallSampleInfinite(t *testing.T) {
	var w Welford
	w.Add(5)
	iv := NormalCI(&w, 0.99)
	if !math.IsInf(iv.Lower, -1) || !math.IsInf(iv.Upper, 1) {
		t.Fatalf("n=1 interval must be infinite: %v", iv)
	}
	ivT := StudentCI(&w, 0.99)
	if !math.IsInf(ivT.Upper, 1) {
		t.Fatalf("n=1 t-interval must be infinite: %v", ivT)
	}
}

func TestCIShrinksWithN(t *testing.T) {
	// Adding more samples from the same population must (statistically)
	// shrink the margin; with a deterministic repeating pattern it is
	// guaranteed.
	var w Welford
	pattern := []float64{9, 10, 11}
	for i := 0; i < 9; i++ {
		w.Add(pattern[i%3])
	}
	m9 := NormalCI(&w, 0.99).Margin()
	for i := 0; i < 90; i++ {
		w.Add(pattern[i%3])
	}
	m99 := NormalCI(&w, 0.99).Margin()
	if m99 >= m9 {
		t.Fatalf("margin did not shrink: %v -> %v", m9, m99)
	}
}

func TestCILevelOrdering(t *testing.T) {
	var w Welford
	for i := 0; i < 30; i++ {
		w.Add(float64(i % 7))
	}
	if NormalCI(&w, 0.99).Margin() <= NormalCI(&w, 0.95).Margin() {
		t.Fatal("99% CI must be wider than 95% CI")
	}
	if StudentCI(&w, 0.99).Margin() <= NormalCI(&w, 0.99).Margin() {
		t.Fatal("t CI must be wider than z CI at n=30")
	}
}

func TestIntervalOverlaps(t *testing.T) {
	a := Interval{Mean: 5, Lower: 4, Upper: 6}
	b := Interval{Mean: 6.5, Lower: 5.5, Upper: 7.5}
	c := Interval{Mean: 10, Lower: 9, Upper: 11}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("a and b overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("a and c do not overlap")
	}
}

func TestRelativeHalfWidth(t *testing.T) {
	iv := Interval{Mean: 100, Lower: 99, Upper: 101}
	if got := iv.RelativeHalfWidth(); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("RelativeHalfWidth = %v, want 0.01 (the paper's ±1%% rule)", got)
	}
	zero := Interval{Mean: 0, Lower: -1, Upper: 1}
	if !math.IsInf(zero.RelativeHalfWidth(), 1) {
		t.Fatal("zero mean with nonzero margin must be +Inf")
	}
}

func TestStudentQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for df=0")
		}
	}()
	StudentQuantile(0.9, 0)
}
