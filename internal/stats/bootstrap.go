package stats

import (
	"math"
	"sort"

	"rooftune/internal/xrand"
)

// BootstrapCI computes a percentile bootstrap confidence interval for the
// mean of xs with the given number of resamples. The paper (§III-C3)
// discusses bootstrapping as the principled alternative for non-normal
// runtime distributions but rejects it for online use because each update
// would resample the whole history; we implement it offline both to
// quantify that cost (BenchmarkAblationBootstrap) and to validate the
// normal-theory intervals in tests.
//
// The generator is supplied by the caller so results are reproducible.
func BootstrapCI(xs []float64, level float64, resamples int, rng *xrand.Rand) Interval {
	iv := Interval{Level: level}
	n := len(xs)
	if n == 0 {
		return iv
	}
	mean, _ := TwoPassMeanVariance(xs)
	iv.Mean = mean
	if n == 1 || resamples < 2 {
		iv.Lower, iv.Upper = mean, mean
		return iv
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += xs[rng.Intn(n)]
		}
		means[r] = sum / float64(n)
	}
	alpha := 1 - level
	iv.Lower = Quantile(means, alpha/2)
	iv.Upper = Quantile(means, 1-alpha/2)
	return iv
}

// MannWhitneyU performs the two-sided Mann-Whitney U test (Wilcoxon
// rank-sum) on samples a and b, returning the U statistic for a and an
// approximate two-sided p-value from the normal approximation with tie
// correction. This is one of the nonparametric comparisons the paper's
// future-work section proposes for deciding whether one configuration
// outperforms another without a normality assumption.
func MannWhitneyU(a, b []float64) (u float64, pValue float64) {
	nA, nB := len(a), len(b)
	if nA == 0 || nB == 0 {
		return 0, 1
	}
	type obs struct {
		v     float64
		fromA bool
	}
	all := make([]obs, 0, nA+nB)
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Assign mid-ranks, accumulating the tie correction term.
	ranks := make([]float64, len(all))
	var tieCorr float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		avg := float64(i+1+j) / 2 // ranks are 1-based; ties share the average
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		t := float64(j - i)
		tieCorr += t*t*t - t
		i = j
	}
	var rA float64
	for i, o := range all {
		if o.fromA {
			rA += ranks[i]
		}
	}
	fA, fB := float64(nA), float64(nB)
	u = rA - fA*(fA+1)/2
	muU := fA * fB / 2
	n := fA + fB
	sigma2 := fA * fB / 12 * ((n + 1) - tieCorr/(n*(n-1)))
	if sigma2 <= 0 {
		return u, 1 // all observations identical: no evidence of difference
	}
	sigma := math.Sqrt(sigma2)
	// Continuity correction of 0.5 toward the mean.
	z := u - muU
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= sigma
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	if p > 1 {
		p = 1
	}
	return u, p
}
