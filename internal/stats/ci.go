package stats

import (
	"fmt"
	"math"
)

// Interval is a two-sided confidence interval for a mean.
type Interval struct {
	Mean  float64
	Lower float64
	Upper float64
	Level float64 // confidence level in (0,1), e.g. 0.99
}

// Margin returns the half-width of the interval — the quantity the paper
// calls "marg" in Listing 1.
func (iv Interval) Margin() float64 { return iv.Upper - iv.Mean }

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lower && x <= iv.Upper }

// Overlaps reports whether two intervals overlap, the comparison rule
// Georges et al. recommend when deciding whether two alternatives differ.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Lower <= o.Upper && o.Lower <= iv.Upper
}

// RelativeHalfWidth returns Margin/|Mean|, the quantity compared against
// the ±1% threshold of stop condition 3. Returns +Inf for a zero mean with
// a nonzero margin.
func (iv Interval) RelativeHalfWidth() float64 {
	if iv.Mean == 0 {
		if iv.Margin() == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return iv.Margin() / math.Abs(iv.Mean)
}

func (iv Interval) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g] @%.0f%%", iv.Mean, iv.Lower, iv.Upper, iv.Level*100)
}

// NormalCI returns the confidence interval of the mean accumulated in w,
// assuming normality as the paper does (§III-C3): mean ± z * S/sqrt(n).
// With fewer than two observations the interval has infinite width.
func NormalCI(w *Welford, level float64) Interval {
	iv := Interval{Mean: w.Mean(), Level: level}
	if w.N() < 2 {
		iv.Lower, iv.Upper = math.Inf(-1), math.Inf(1)
		return iv
	}
	z := NormalQuantile(0.5 + level/2)
	marg := z * w.StdErr()
	iv.Lower, iv.Upper = iv.Mean-marg, iv.Mean+marg
	return iv
}

// StudentCI returns the Student-t confidence interval of the mean, the
// small-sample-correct alternative (Georges et al. recommend t for n < 30).
func StudentCI(w *Welford, level float64) Interval {
	iv := Interval{Mean: w.Mean(), Level: level}
	if w.N() < 2 {
		iv.Lower, iv.Upper = math.Inf(-1), math.Inf(1)
		return iv
	}
	t := StudentQuantile(0.5+level/2, int(w.N()-1))
	marg := t * w.StdErr()
	iv.Lower, iv.Upper = iv.Mean-marg, iv.Mean+marg
	return iv
}

// NormalQuantile returns the p-quantile of the standard normal
// distribution using the Acklam rational approximation (relative error
// below 1.15e-9 over the full domain), sufficient for CI construction.
// It panics for p outside (0,1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: NormalQuantile p=%g out of (0,1)", p))
	}
	// Coefficients of Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// NormalCDF returns the standard normal cumulative distribution function,
// used by the nonparametric tests.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// StudentQuantile returns the p-quantile of Student's t distribution with
// df degrees of freedom. It uses the Hill (1970) inversion via the
// relationship with the incomplete beta function, refined with one
// Newton step; accuracy is better than 1e-6 for df >= 1, ample for CI
// construction. It panics for p outside (0,1) or df < 1.
func StudentQuantile(p float64, df int) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: StudentQuantile p=%g out of (0,1)", p))
	}
	if df < 1 {
		panic(fmt.Sprintf("stats: StudentQuantile df=%d < 1", df))
	}
	if p == 0.5 {
		return 0
	}
	if p < 0.5 {
		return -StudentQuantile(1-p, df)
	}
	n := float64(df)
	// Special closed forms.
	switch df {
	case 1:
		return math.Tan(math.Pi * (p - 0.5))
	case 2:
		a := 2*p - 1
		return a * math.Sqrt(2/(1-a*a))
	}
	// Cornish-Fisher style expansion around the normal quantile
	// (Abramowitz & Stegun 26.7.5), then polish with Newton iterations on
	// the CDF. The expansion alone is good to ~1e-4; two Newton steps take
	// it to ~1e-9 in the regions CI construction uses.
	z := NormalQuantile(p)
	g1 := (z*z*z + z) / 4
	g2 := (5*math.Pow(z, 5) + 16*z*z*z + 3*z) / 96
	g3 := (3*math.Pow(z, 7) + 19*math.Pow(z, 5) + 17*z*z*z - 15*z) / 384
	g4 := (79*math.Pow(z, 9) + 776*math.Pow(z, 7) + 1482*math.Pow(z, 5) - 1920*z*z*z - 945*z) / 92160
	t := z + g1/n + g2/(n*n) + g3/(n*n*n) + g4/(n*n*n*n)
	for i := 0; i < 3; i++ {
		cdf := StudentCDF(t, df)
		pdf := studentPDF(t, n)
		if pdf == 0 {
			break
		}
		step := (cdf - p) / pdf
		t -= step
		if math.Abs(step) < 1e-12*(1+math.Abs(t)) {
			break
		}
	}
	return t
}

func studentPDF(t, n float64) float64 {
	lg := lgamma((n+1)/2) - lgamma(n/2)
	return math.Exp(lg) / math.Sqrt(n*math.Pi) * math.Pow(1+t*t/n, -(n+1)/2)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// StudentCDF returns the cumulative distribution function of Student's t
// with df degrees of freedom, via the regularized incomplete beta function.
func StudentCDF(t float64, df int) float64 {
	if df < 1 {
		panic("stats: StudentCDF df < 1")
	}
	n := float64(df)
	if t == 0 {
		return 0.5
	}
	x := n / (n + t*t)
	ib := regIncBeta(n/2, 0.5, x)
	if t > 0 {
		return 1 - 0.5*ib
	}
	return 0.5 * ib
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
