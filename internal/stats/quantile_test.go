package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"rooftune/internal/xrand"
)

func TestQuantileKnown(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Quantile(xs, 0); got != 15 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 50 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 35 {
		t.Fatalf("median = %v", got)
	}
	// R-7: q(0.4) with n=5: h = 1.6 -> 20 + 0.6*(35-20) = 29.
	if got := Quantile(xs, 0.4); math.Abs(got-29) > 1e-12 {
		t.Fatalf("q0.4 = %v, want 29", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw)+1)
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		xs = append(xs, 0)
		qa := float64(a) / 255
		qb := float64(b) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}

func TestMedianIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if Median(xs) != 5 {
		t.Fatalf("median = %v", Median(xs))
	}
	if got := IQR(xs); got != 4 {
		t.Fatalf("IQR = %v, want 4", got)
	}
}

func TestSkewnessSigns(t *testing.T) {
	rightSkewed := []float64{1, 1, 1, 2, 2, 3, 10, 20}
	if Skewness(rightSkewed) <= 0 {
		t.Fatalf("right-skewed sample has skewness %v", Skewness(rightSkewed))
	}
	symmetric := []float64{-3, -2, -1, 0, 1, 2, 3}
	if math.Abs(Skewness(symmetric)) > 1e-9 {
		t.Fatalf("symmetric sample has skewness %v", Skewness(symmetric))
	}
	if Skewness([]float64{1, 2}) != 0 {
		t.Fatal("n<3 must return 0")
	}
	if Skewness([]float64{5, 5, 5, 5}) != 0 {
		t.Fatal("zero-variance must return 0")
	}
}

func TestJarqueBeraDiscriminates(t *testing.T) {
	// Normal data should get a high p-value; strongly lognormal
	// (right-skewed, like benchmark runtimes per the paper §III-C3) a
	// very low one.
	rng := xrand.New(99)
	normal := make([]float64, 2000)
	skewed := make([]float64, 2000)
	for i := range normal {
		normal[i] = rng.Normal()
		skewed[i] = rng.LogNormal(0, 1)
	}
	_, pNormal := JarqueBera(normal)
	_, pSkewed := JarqueBera(skewed)
	if pNormal < 0.01 {
		t.Fatalf("normal sample rejected: p=%v", pNormal)
	}
	if pSkewed > 1e-6 {
		t.Fatalf("lognormal sample not rejected: p=%v", pSkewed)
	}
}

func TestExcessKurtosisHeavyTails(t *testing.T) {
	rng := xrand.New(7)
	heavy := make([]float64, 5000)
	for i := range heavy {
		heavy[i] = rng.LogNormal(0, 1.2)
	}
	if ExcessKurtosis(heavy) <= 1 {
		t.Fatalf("lognormal(0,1.2) kurtosis %v should be clearly positive", ExcessKurtosis(heavy))
	}
	if ExcessKurtosis([]float64{1, 2, 3}) != 0 {
		t.Fatal("n<4 must return 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1, 3, 5, 7, 9, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 9 {
		t.Fatalf("total = %d", h.Total())
	}
	// bin 0 holds {0, 1}; x=10 lands in the last bin by the closed-range rule.
	if h.Counts[0] != 2 {
		t.Fatalf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9 and 10
		t.Fatalf("bin 4 = %d", h.Counts[4])
	}
	if mode := h.Mode(); mode != 1 && mode != 9 {
		t.Fatalf("mode = %v (bins 0 and 4 tie; either midpoint acceptable)", mode)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for hi <= lo")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestBootstrapCICoversTrueMean(t *testing.T) {
	rng := xrand.New(2024)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 50 + rng.Normal()*5
	}
	iv := BootstrapCI(xs, 0.99, 2000, xrand.New(1))
	mean, _ := TwoPassMeanVariance(xs)
	if iv.Mean != mean {
		t.Fatalf("bootstrap center %v != sample mean %v", iv.Mean, mean)
	}
	if !iv.Contains(50) {
		t.Fatalf("99%% bootstrap CI %v should cover the true mean 50", iv)
	}
	if iv.Margin() <= 0 || iv.Margin() > 3 {
		t.Fatalf("implausible margin %v", iv.Margin())
	}
}

func TestBootstrapAgreesWithNormalCI(t *testing.T) {
	// For well-behaved data the bootstrap and normal-theory intervals
	// should nearly coincide — the paper's justification for using the
	// cheap normal interval online.
	rng := xrand.New(5)
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = 100 + rng.Normal()*3
		w.Add(xs[i])
	}
	nb := NormalCI(&w, 0.95)
	bs := BootstrapCI(xs, 0.95, 4000, xrand.New(2))
	if math.Abs(nb.Margin()-bs.Margin())/nb.Margin() > 0.15 {
		t.Fatalf("normal margin %v vs bootstrap margin %v differ too much",
			nb.Margin(), bs.Margin())
	}
}

func TestBootstrapEdgeCases(t *testing.T) {
	iv := BootstrapCI(nil, 0.9, 100, xrand.New(1))
	if iv.Mean != 0 {
		t.Fatal("empty sample")
	}
	iv = BootstrapCI([]float64{7}, 0.9, 100, xrand.New(1))
	if iv.Lower != 7 || iv.Upper != 7 {
		t.Fatalf("singleton CI = %v", iv)
	}
}

func TestMannWhitneyIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	_, p := MannWhitneyU(a, a)
	if p < 0.9 {
		t.Fatalf("identical samples: p = %v, want ~1", p)
	}
}

func TestMannWhitneySeparatedSamples(t *testing.T) {
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i) + 1000
	}
	_, p := MannWhitneyU(a, b)
	if p > 1e-6 {
		t.Fatalf("fully separated samples: p = %v, want ~0", p)
	}
}

func TestMannWhitneyUStatisticRange(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		clean := func(xs []float64) []float64 {
			out := []float64{}
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) {
					out = append(out, x)
				}
			}
			return out
		}
		a, b := clean(rawA), clean(rawB)
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		u, p := MannWhitneyU(a, b)
		return u >= 0 && u <= float64(len(a)*len(b))+1e-9 && p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMannWhitneySymmetric(t *testing.T) {
	rng := xrand.New(3)
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = rng.Normal()
		b[i] = rng.Normal()
	}
	uA, pA := MannWhitneyU(a, b)
	uB, pB := MannWhitneyU(b, a)
	if math.Abs((uA+uB)-float64(len(a)*len(b))) > 1e-9 {
		t.Fatalf("U_a + U_b = %v, want n_a*n_b", uA+uB)
	}
	if math.Abs(pA-pB) > 1e-9 {
		t.Fatalf("two-sided p must be symmetric: %v vs %v", pA, pB)
	}
}

func TestQuantileSortedAgainstSort(t *testing.T) {
	// Quantile(xs, i/(n-1)) must equal the i-th order statistic.
	xs := []float64{9, 1, 7, 3, 5}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(xs)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		if got := Quantile(xs, q); got != sorted[i] {
			t.Fatalf("order statistic %d: got %v want %v", i, got, sorted[i])
		}
	}
}
