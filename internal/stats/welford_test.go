package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return true
	}
	return math.Abs(a-b) <= tol*scale
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 || w.CoV() != 0 {
		t.Fatal("empty accumulator must be all zeros")
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 || w.Min() != 42 || w.Max() != 42 {
		t.Fatalf("single observation: %+v", w)
	}
}

func TestWelfordKnownValues(t *testing.T) {
	// Hand-computed: {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population var 4,
	// sample var 32/7.
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Mean() != 5 {
		t.Fatalf("mean = %v", w.Mean())
	}
	if !almostEq(w.Variance(), 32.0/7, 1e-12) {
		t.Fatalf("variance = %v, want %v", w.Variance(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	// The property the paper relies on: Welford's online update (Eqs.
	// 6-7) equals the definitional two-pass computation.
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		var w Welford
		for _, x := range clean {
			w.Add(x)
		}
		mean, variance := TwoPassMeanVariance(clean)
		return almostEq(w.Mean(), mean, 1e-9) && almostEq(w.Variance(), variance, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Large offset: naive sum-of-squares would lose all precision here;
	// Welford must not.
	var w Welford
	const offset = 1e9
	for _, x := range []float64{4, 7, 13, 16} {
		w.Add(offset + x)
	}
	if !almostEq(w.Variance(), 30, 1e-6) {
		t.Fatalf("variance with offset: %v, want 30", w.Variance())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := make([]float64, 0, len(xs))
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
					out = append(out, x)
				}
			}
			return out
		}
		ca, cb := clean(a), clean(b)
		var wa, wb, all Welford
		for _, x := range ca {
			wa.Add(x)
			all.Add(x)
		}
		for _, x := range cb {
			wb.Add(x)
			all.Add(x)
		}
		wa.Merge(&wb)
		return wa.N() == all.N() &&
			almostEq(wa.Mean(), all.Mean(), 1e-9) &&
			almostEq(wa.Variance(), all.Variance(), 1e-6) &&
			wa.Min() == all.Min() && wa.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(2)
	before := a
	a.Merge(&b) // merging empty changes nothing
	if a != before {
		t.Fatal("merge with empty changed state")
	}
	b.Merge(&a) // merging into empty copies
	if b.Mean() != a.Mean() || b.N() != a.N() {
		t.Fatal("merge into empty lost data")
	}
}

func TestWelfordCoV(t *testing.T) {
	var w Welford
	for _, x := range []float64{10, 10, 10} {
		w.Add(x)
	}
	if w.CoV() != 0 {
		t.Fatalf("CoV of constant sample = %v", w.CoV())
	}
	w.Reset()
	for _, x := range []float64{-1, 1} {
		w.Add(x)
	}
	if !math.IsInf(w.CoV(), 1) {
		t.Fatalf("CoV with zero mean = %v, want +Inf", w.CoV())
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(5)
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestWelfordStdErrShrinks(t *testing.T) {
	// StdErr must scale as 1/sqrt(n) for i.i.d.-like data.
	var w Welford
	for i := 0; i < 100; i++ {
		w.Add(float64(i % 10))
	}
	se100 := w.StdErr()
	for i := 0; i < 300; i++ {
		w.Add(float64(i % 10))
	}
	if w.StdErr() >= se100 {
		t.Fatalf("standard error did not shrink: %v -> %v", se100, w.StdErr())
	}
}

func TestTwoPassEdgeCases(t *testing.T) {
	if m, v := TwoPassMeanVariance(nil); m != 0 || v != 0 {
		t.Fatal("nil sample")
	}
	if m, v := TwoPassMeanVariance([]float64{3}); m != 3 || v != 0 {
		t.Fatal("singleton sample")
	}
}
