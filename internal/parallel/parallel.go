// Package parallel provides the goroutine-based substitute for the paper's
// OpenMP layer: a static partitioner that divides index ranges into
// contiguous blocks of N/threads elements (OpenMP `schedule(static)` with
// the default chunk, as the paper's TRIAD uses), and a reusable worker
// pool that executes the partitions.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by RunContext when the pool was closed before the
// batch could be enqueued.
var ErrClosed = errors.New("parallel: pool closed")

// Range is a half-open index interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// StaticPartition divides [0, n) into at most p contiguous blocks whose
// sizes differ by at most one — the OpenMP static schedule with default
// chunking ("the block size was left to the default value of N/cores",
// §III-B). Fewer than p ranges are returned when n < p. p < 1 panics.
func StaticPartition(n, p int) []Range {
	if p < 1 {
		panic("parallel: StaticPartition with p < 1")
	}
	if n <= 0 {
		return nil
	}
	if p > n {
		p = n
	}
	ranges := make([]Range, p)
	base := n / p
	rem := n % p
	lo := 0
	for i := 0; i < p; i++ {
		size := base
		if i < rem {
			size++
		}
		ranges[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return ranges
}

// For runs body(lo, hi) over a static partition of [0, n) using p
// goroutines and waits for completion. With p <= 1 the body runs inline.
func For(n, p int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	ranges := StaticPartition(n, p)
	if len(ranges) == 1 {
		body(ranges[0].Lo, ranges[0].Hi)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ranges) - 1)
	for _, r := range ranges[1:] {
		go func(r Range) {
			defer wg.Done()
			body(r.Lo, r.Hi)
		}(r)
	}
	body(ranges[0].Lo, ranges[0].Hi)
	wg.Wait()
}

// DefaultThreads returns the degree of parallelism used by the native
// kernels: GOMAXPROCS, the Go analogue of OMP_NUM_THREADS.
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }

// Pool is a fixed set of workers that repeatedly execute task batches.
// It amortises goroutine startup across benchmark iterations, like an
// OpenMP thread team persisting across parallel regions.
type Pool struct {
	workers int
	tasks   chan task
	wg      sync.WaitGroup // tracks in-flight tasks of the current batch
	closeMu sync.Mutex
	closed  bool
}

// task is one partition's work item. Batches enqueue plain structs
// rather than per-partition closures, so Run allocates nothing per
// range: the body function value is shared and the bounds travel by
// value through the channel buffer.
type task struct {
	body   func(lo, hi int)
	lo, hi int
}

// NewPool starts a pool with the given worker count (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, tasks: make(chan task, workers)}
	for i := 0; i < workers; i++ {
		go func() {
			for t := range p.tasks {
				t.body(t.lo, t.hi)
				p.wg.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes body(lo, hi) over a static partition of [0, n) on the pool
// and blocks until every block has finished. It reports whether the batch
// ran: false means the pool was already closed and no work executed — the
// guard keeps a late caller from sending on the closed task channel and
// panicking, and the return value keeps the dropped batch detectable so a
// measurement site never silently records work that did not happen.
//
//rooflint:hotpath
func (p *Pool) Run(n int, body func(lo, hi int)) bool {
	if n <= 0 {
		return true
	}
	// Hold the close lock while enqueueing so Close cannot close the task
	// channel mid-batch; the workers keep draining, so the sends finish.
	p.closeMu.Lock()
	if p.closed {
		p.closeMu.Unlock()
		return false
	}
	ranges := StaticPartition(n, p.workers)
	p.wg.Add(len(ranges))
	for _, r := range ranges {
		//rooflint:allow lockorder -- the workers keep draining tasks while closeMu blocks Close, so the send cannot park forever
		p.tasks <- task{body: body, lo: r.Lo, hi: r.Hi}
	}
	p.closeMu.Unlock()
	p.wg.Wait()
	return true
}

// RunContext is Run with cancellation between partitions: a partition
// whose task starts after ctx is done is skipped rather than executed, so
// a large batch aborts after at most one in-flight partition per worker.
// It always waits for the batch to drain before returning — no task ever
// touches the partitioned data after RunContext returns. It reports
// ErrClosed if the pool was closed before the batch could start, and
// ctx.Err() only when cancellation actually cost work: a cancellation
// that lands after every partition has executed is not a failure, and
// RunContext returns nil so a fully-completed batch is never discarded.
func (p *Pool) RunContext(ctx context.Context, n int, body func(lo, hi int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var skipped atomic.Bool
	ran := p.Run(n, func(lo, hi int) {
		if ctx.Err() != nil {
			skipped.Store(true)
			return
		}
		body(lo, hi)
	})
	if !ran {
		return ErrClosed
	}
	if skipped.Load() {
		// skipped implies ctx was done at the skip, and ctx errors are
		// sticky, so this is never nil.
		return ctx.Err()
	}
	return nil
}

// Close shuts the workers down once in-flight batches finish enqueueing.
// Close is idempotent, and Run after Close is a safe no-op.
func (p *Pool) Close() {
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
}
