package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestStaticPartitionProperties(t *testing.T) {
	// OpenMP static schedule invariants: blocks cover [0, n) exactly
	// once, in order, with sizes differing by at most one.
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw % 10000)
		p := int(pRaw%64) + 1
		ranges := StaticPartition(n, p)
		if n == 0 {
			return len(ranges) == 0
		}
		lo := 0
		minLen, maxLen := 1<<30, 0
		for _, r := range ranges {
			if r.Lo != lo || r.Hi <= r.Lo {
				return false
			}
			lo = r.Hi
			if l := r.Len(); l < minLen {
				minLen = l
			}
			if l := r.Len(); l > maxLen {
				maxLen = l
			}
		}
		return lo == n && maxLen-minLen <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticPartitionMoreWorkersThanWork(t *testing.T) {
	ranges := StaticPartition(3, 16)
	if len(ranges) != 3 {
		t.Fatalf("got %d ranges, want 3 (no empty blocks)", len(ranges))
	}
}

func TestStaticPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p < 1 must panic")
		}
	}()
	StaticPartition(10, 0)
}

func TestForSums(t *testing.T) {
	const n = 100000
	var sum int64
	For(n, 8, func(lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		atomic.AddInt64(&sum, local)
	})
	want := int64(n) * (n - 1) / 2
	if sum != want {
		t.Fatalf("For sum = %d, want %d", sum, want)
	}
}

func TestForSerialEquivalence(t *testing.T) {
	out1 := make([]int, 1000)
	out8 := make([]int, 1000)
	body := func(out []int) func(lo, hi int) {
		return func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = i * i
			}
		}
	}
	For(1000, 1, body(out1))
	For(1000, 8, body(out8))
	for i := range out1 {
		if out1[i] != out8[i] {
			t.Fatalf("parallel result differs at %d", i)
		}
	}
}

func TestForZeroWork(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body must not run for n=0")
	}
}

func TestPoolRun(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	if pool.Workers() != 4 {
		t.Fatalf("Workers = %d", pool.Workers())
	}
	var sum int64
	for round := 0; round < 10; round++ { // reuse across batches
		atomic.StoreInt64(&sum, 0)
		pool.Run(5000, func(lo, hi int) {
			atomic.AddInt64(&sum, int64(hi-lo))
		})
		if sum != 5000 {
			t.Fatalf("round %d: covered %d of 5000", round, sum)
		}
	}
}

func TestPoolMinimumOneWorker(t *testing.T) {
	pool := NewPool(0)
	defer pool.Close()
	if pool.Workers() != 1 {
		t.Fatalf("Workers = %d, want clamp to 1", pool.Workers())
	}
	ran := false
	pool.Run(1, func(lo, hi int) { ran = true })
	if !ran {
		t.Fatal("single worker pool did not run")
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	pool := NewPool(2)
	pool.Close()
	pool.Close() // must not panic
}

func TestPoolRunAfterCloseIsNoOp(t *testing.T) {
	pool := NewPool(2)
	pool.Run(100, func(lo, hi int) {})
	pool.Close()
	ran := false
	ok := pool.Run(100, func(lo, hi int) { ran = true }) // must not panic
	if ran {
		t.Fatal("Run on a closed pool must not execute the body")
	}
	if ok {
		t.Fatal("Run on a closed pool must report the dropped batch")
	}
}

func TestPoolConcurrentRunAndClose(t *testing.T) {
	// Close racing an in-flight Run must neither panic nor lose work:
	// either the batch fully runs (enqueued before the close) or it is
	// dropped whole (pool already closed).
	for trial := 0; trial < 50; trial++ {
		pool := NewPool(4)
		var sum int64
		done := make(chan struct{})
		go func() {
			defer close(done)
			pool.Run(1000, func(lo, hi int) {
				atomic.AddInt64(&sum, int64(hi-lo))
			})
		}()
		pool.Close()
		<-done
		if got := atomic.LoadInt64(&sum); got != 0 && got != 1000 {
			t.Fatalf("trial %d: partial batch ran: covered %d of 1000", trial, got)
		}
	}
}

func TestDefaultThreadsPositive(t *testing.T) {
	if DefaultThreads() < 1 {
		t.Fatal("DefaultThreads must be >= 1")
	}
}

func TestPoolRunContext(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	var ran atomic.Int64
	if err := p.RunContext(context.Background(), 64, func(lo, hi int) {
		ran.Add(int64(hi - lo))
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 64 {
		t.Fatalf("ran %d of 64 indices", ran.Load())
	}

	// A pre-canceled context runs nothing and reports the cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran.Store(0)
	if err := p.RunContext(ctx, 64, func(lo, hi int) { ran.Add(int64(hi - lo)) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-canceled batch still ran %d indices", ran.Load())
	}
}

func TestPoolRunContextCancelSkipsQueuedTask(t *testing.T) {
	// Occupy the pool's only worker, queue a second batch behind it, then
	// cancel before the worker frees up: the queued task must be skipped,
	// not executed, and RunContext must still drain and report ctx.Err().
	p := NewPool(1)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	release := make(chan struct{})
	go p.Run(1, func(int, int) { close(started); <-release })
	<-started

	var ran atomic.Bool
	errc := make(chan error, 1)
	go func() { errc <- p.RunContext(ctx, 1, func(int, int) { ran.Store(true) }) }()
	// Whether the second batch has enqueued yet or not, cancelling now is
	// correct either way: pre-check or in-task skip, the body never runs.
	cancel()
	close(release)
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Fatal("queued task ran after cancellation")
	}
}

func TestPoolRunContextCompletedBatchSurvivesLateCancel(t *testing.T) {
	// Regression: RunContext used to report ctx.Err() even when every
	// partition had already executed, so a caller discarded a
	// fully-completed batch as a failure. A cancellation that costs no
	// work is not a failure.
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var ran atomic.Int64
	last := int64(16)
	err := p.RunContext(ctx, int(last), func(lo, hi int) {
		if n := ran.Add(int64(hi - lo)); n == last {
			// The final partition cancels after its work is done: by the
			// time RunContext inspects the context, the batch is complete.
			cancel()
		}
	})
	if err != nil {
		t.Fatalf("fully-completed batch reported %v, want nil", err)
	}
	if ran.Load() != last {
		t.Fatalf("ran %d of %d indices", ran.Load(), last)
	}
}

func TestPoolRunContextClosed(t *testing.T) {
	p := NewPool(2)
	p.Close()
	if err := p.RunContext(context.Background(), 8, func(int, int) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
