package blas

import (
	"fmt"
	"testing"

	"rooftune/internal/units"
)

// Micro-benchmarks of the native DGEMM substrate: the blocked kernel
// against the naive oracle across sizes, and the threading scaling the
// native engine relies on.

func benchDGEMM(b *testing.B, n, threads int) {
	a := NewMatrix(n, n)
	bb := NewMatrix(n, n)
	c := NewMatrix(n, n)
	a.FillPattern(1)
	bb.FillPattern(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DGEMM(1, a, bb, 0, c, threads)
	}
	b.ReportMetric(units.DGEMMFlops(n, n, n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkDGEMMBlocked(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		b.Run(fmt.Sprintf("n%d-serial", n), func(b *testing.B) { benchDGEMM(b, n, 1) })
		b.Run(fmt.Sprintf("n%d-parallel", n), func(b *testing.B) { benchDGEMM(b, n, 0) })
	}
}

func BenchmarkDGEMMNaive(b *testing.B) {
	const n = 256
	a := NewMatrix(n, n)
	bb := NewMatrix(n, n)
	c := NewMatrix(n, n)
	a.FillPattern(1)
	bb.FillPattern(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DGEMMNaive(1, a, bb, 0, c)
	}
	b.ReportMetric(units.DGEMMFlops(n, n, n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// Rectangular shapes of the paper's optimal configurations (scaled down
// 4x to stay benchmark-friendly).
func BenchmarkDGEMMPaperShapes(b *testing.B) {
	shapes := []struct{ n, m, k int }{
		{250, 1024, 32}, // 1000,4096,128 / 4
		{500, 512, 16},  // 2000,2048,64 / 4
		{1000, 128, 32}, // 4000,512,128 / 4
	}
	for _, s := range shapes {
		b.Run(fmt.Sprintf("%dx%dx%d", s.n, s.m, s.k), func(b *testing.B) {
			a := NewMatrix(s.n, s.k)
			bb := NewMatrix(s.k, s.m)
			c := NewMatrix(s.n, s.m)
			a.FillPattern(1)
			bb.FillPattern(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				DGEMM(1, a, bb, 0, c, 0)
			}
			b.ReportMetric(units.DGEMMFlops(s.n, s.m, s.k)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}
