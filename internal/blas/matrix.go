// Package blas is the native compute substrate: a pure-Go, cache-blocked,
// goroutine-parallel double-precision GEMM together with a naive reference
// implementation used as a correctness oracle. It plays the role the vendor
// BLAS (MKL/OpenBLAS) plays in the paper: the kernel whose performance the
// autotuner measures when rooftune runs against real hardware.
package blas

import "fmt"

// Matrix is a dense row-major matrix of float64. Data holds Rows*Stride
// elements with Stride >= Cols; element (i, j) is Data[i*Stride+j]. The
// explicit stride models the BLAS "leading dimension" parameter whose
// alignment effects (§IV-A: multiples of 2 vs. powers of 2) the paper
// tunes around.
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// NewMatrix allocates a Rows x Cols matrix with Stride == Cols.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("blas: NewMatrix(%d, %d) with negative dimension", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixStrided allocates a matrix with an explicit leading dimension.
func NewMatrixStrided(rows, cols, stride int) *Matrix {
	if stride < cols {
		panic(fmt.Sprintf("blas: stride %d < cols %d", stride, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: stride, Data: make([]float64, rows*stride)}
}

// At returns element (i, j) without bounds checking beyond the slice's own.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set stores v at element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = v
		}
	}
}

// FillPattern initialises the matrix with a cheap deterministic pattern,
// matching the paper's "test matrix initialization" stage. The pattern
// avoids denormals and keeps values O(1) so accumulation error stays small.
func (m *Matrix) FillPattern(seed float64) {
	for i := 0; i < m.Rows; i++ {
		base := seed + float64(i%13)*0.125
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = base + float64(j%7)*0.0625
		}
	}
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{Rows: m.Rows, Cols: m.Cols, Stride: m.Stride,
		Data: make([]float64, len(m.Data))}
	copy(c.Data, m.Data)
	return c
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// two equally-shaped matrices; it panics on shape mismatch.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("blas: MaxAbsDiff shape mismatch %dx%d vs %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var worst float64
	for i := 0; i < a.Rows; i++ {
		ra := a.Data[i*a.Stride : i*a.Stride+a.Cols]
		rb := b.Data[i*b.Stride : i*b.Stride+b.Cols]
		for j := range ra {
			d := ra[j] - rb[j]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}
