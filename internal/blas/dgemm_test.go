package blas

import (
	"math"
	"testing"
	"testing/quick"

	"rooftune/internal/xrand"
)

func randomMatrix(rng *xrand.Rand, rows, cols, extraStride int) *Matrix {
	m := NewMatrixStrided(rows, cols, cols+extraStride)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.Normal())
		}
	}
	return m
}

func TestDGEMMKnownProduct(t *testing.T) {
	// [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float64{5, 6, 7, 8})
	c := NewMatrix(2, 2)
	DGEMM(1, a, b, 0, c, 1)
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("c[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestDGEMMMatchesNaive(t *testing.T) {
	// The blocked, packed, parallel kernel must agree with the
	// triple-loop oracle for arbitrary shapes, strides and scalars.
	rng := xrand.New(1)
	f := func(nRaw, mRaw, kRaw uint8, alphaRaw, betaRaw int8, strideA, strideB uint8) bool {
		n := int(nRaw%70) + 1
		m := int(mRaw%70) + 1
		k := int(kRaw%70) + 1
		alpha := float64(alphaRaw) / 16
		beta := float64(betaRaw) / 16
		a := randomMatrix(rng, n, k, int(strideA%5))
		b := randomMatrix(rng, k, m, int(strideB%5))
		c0 := randomMatrix(rng, n, m, 0)
		c1 := c0.Clone()
		DGEMMNaive(alpha, a, b, beta, c0)
		DGEMM(alpha, a, b, beta, c1, 3)
		return MaxAbsDiff(c0, c1) < 1e-10*float64(k+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDGEMMLargerThanBlocks(t *testing.T) {
	// Dimensions exceeding the kernel's internal block sizes exercise
	// the full panel loop structure.
	rng := xrand.New(2)
	n, m, k := 200, 600, 300
	a := randomMatrix(rng, n, k, 0)
	b := randomMatrix(rng, k, m, 0)
	c0 := NewMatrix(n, m)
	c1 := NewMatrix(n, m)
	DGEMMNaive(1, a, b, 0, c0)
	DGEMM(1, a, b, 0, c1, 4)
	if d := MaxAbsDiff(c0, c1); d > 1e-9 {
		t.Fatalf("blocked kernel diverges from oracle: max diff %v", d)
	}
}

func TestDGEMMBetaSemantics(t *testing.T) {
	rng := xrand.New(3)
	a := randomMatrix(rng, 8, 8, 0)
	b := randomMatrix(rng, 8, 8, 0)

	// beta=0 must overwrite even NaN-poisoned C (BLAS convention).
	c := NewMatrix(8, 8)
	for i := range c.Data {
		c.Data[i] = math.NaN()
	}
	DGEMM(1, a, b, 0, c, 2)
	for i, v := range c.Data {
		if math.IsNaN(v) {
			t.Fatalf("beta=0 must clear NaN at %d", i)
		}
	}

	// beta=1 accumulates.
	c1 := NewMatrix(8, 8)
	c1.Fill(2)
	c2 := c1.Clone()
	DGEMM(1, a, b, 1, c1, 2)
	DGEMMNaive(1, a, b, 1, c2)
	if d := MaxAbsDiff(c1, c2); d > 1e-12 {
		t.Fatalf("beta=1 mismatch: %v", d)
	}
}

func TestDGEMMAlphaZeroScalesOnly(t *testing.T) {
	a := NewMatrix(4, 4)
	a.Fill(math.Inf(1)) // must never be touched when alpha == 0
	b := NewMatrix(4, 4)
	b.Fill(1)
	c := NewMatrix(4, 4)
	c.Fill(3)
	DGEMM(0, a, b, 0.5, c, 1)
	for i, v := range c.Data {
		if v != 1.5 {
			t.Fatalf("c[%d] = %v, want 1.5", i, v)
		}
	}
}

func TestDGEMMShapePanic(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 2) // k mismatch
	c := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	DGEMM(1, a, b, 0, c, 1)
}

func TestDGEMMThreadCountIrrelevantToResult(t *testing.T) {
	rng := xrand.New(4)
	a := randomMatrix(rng, 33, 65, 0)
	b := randomMatrix(rng, 65, 47, 0)
	ref := NewMatrix(33, 47)
	DGEMM(1, a, b, 0, ref, 1)
	for _, threads := range []int{2, 5, 16} {
		c := NewMatrix(33, 47)
		DGEMM(1, a, b, 0, c, threads)
		if d := MaxAbsDiff(ref, c); d != 0 {
			t.Fatalf("threads=%d changed the result by %v", threads, d)
		}
	}
}

func TestMatrixHelpers(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At")
	}
	m.FillPattern(1)
	c := m.Clone()
	if MaxAbsDiff(m, c) != 0 {
		t.Fatal("Clone differs")
	}
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone must be deep")
	}
	m.Fill(0.5)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0.5 {
				t.Fatal("Fill")
			}
		}
	}
}

func TestMatrixStridePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("stride < cols must panic")
		}
	}()
	NewMatrixStrided(2, 4, 3)
}

func TestMaxAbsDiffShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	MaxAbsDiff(NewMatrix(2, 2), NewMatrix(2, 3))
}

func TestZeroDimensionNoPanic(t *testing.T) {
	a := NewMatrix(0, 5)
	b := NewMatrix(5, 0)
	c := NewMatrix(0, 0)
	DGEMM(1, a, b, 0, c, 2) // must not panic
}
