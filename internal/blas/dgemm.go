package blas

import (
	"fmt"

	"rooftune/internal/parallel"
)

// DGEMM computes C <- alpha*A*B + beta*C (Eq. 3 of the paper) with A of
// shape n x k, B of k x m and C of n x m, using a cache-blocked,
// goroutine-parallel algorithm with `threads` workers (0 means
// parallel.DefaultThreads). It panics on shape mismatch, mirroring the
// contract of cblas_dgemm with invalid arguments.
func DGEMM(alpha float64, a, b *Matrix, beta float64, c *Matrix, threads int) {
	checkShapes(a, b, c)
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	n, m, k := a.Rows, b.Cols, a.Cols

	scaleC(beta, c)
	if alpha == 0 || n == 0 || m == 0 || k == 0 {
		return
	}

	// Block sizes chosen so one A-panel (mcxkc) plus one B-panel (kcxnc)
	// sit comfortably in L2, with the micro-kernel streaming C through
	// registers. These are generic values; the whole point of the paper is
	// that the *problem* dimensions get autotuned on top of them.
	const (
		mc = 128 // rows of A per panel
		kc = 256 // depth per panel
		nc = 512 // columns of B per panel
	)

	// Parallelise over row panels of C: each worker owns disjoint C rows,
	// so no synchronisation on output is needed.
	rowPanels := (n + mc - 1) / mc
	parallel.For(rowPanels, threads, func(lo, hi int) {
		// Per-worker packed buffers, reused across panels.
		packedA := make([]float64, mc*kc)
		packedB := make([]float64, kc*nc)
		for pi := lo; pi < hi; pi++ {
			i0 := pi * mc
			ib := min(mc, n-i0)
			for p0 := 0; p0 < k; p0 += kc {
				pb := min(kc, k-p0)
				packA(packedA, a, i0, p0, ib, pb)
				for j0 := 0; j0 < m; j0 += nc {
					jb := min(nc, m-j0)
					packB(packedB, b, p0, j0, pb, jb)
					macroKernel(alpha, packedA, packedB, c, i0, j0, ib, jb, pb)
				}
			}
		}
	})
}

func checkShapes(a, b, c *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("blas: DGEMM shape mismatch: A %dx%d, B %dx%d, C %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
}

func scaleC(beta float64, c *Matrix) {
	if beta == 1 {
		return
	}
	for i := 0; i < c.Rows; i++ {
		row := c.Data[i*c.Stride : i*c.Stride+c.Cols]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		for j := range row {
			row[j] *= beta
		}
	}
}

// packA copies the ib x pb block of A at (i0, p0) into buf in row-major
// order with contiguous rows, so the micro-kernel reads it with unit
// stride.
func packA(buf []float64, a *Matrix, i0, p0, ib, pb int) {
	for i := 0; i < ib; i++ {
		src := a.Data[(i0+i)*a.Stride+p0 : (i0+i)*a.Stride+p0+pb]
		copy(buf[i*pb:(i+1)*pb], src)
	}
}

// packB copies the pb x jb block of B at (p0, j0) into buf row-major.
func packB(buf []float64, b *Matrix, p0, j0, pb, jb int) {
	for p := 0; p < pb; p++ {
		src := b.Data[(p0+p)*b.Stride+j0 : (p0+p)*b.Stride+j0+jb]
		copy(buf[p*jb:(p+1)*jb], src)
	}
}

// macroKernel multiplies the packed ib x pb A-panel by the packed pb x jb
// B-panel and accumulates alpha times the product into C at (i0, j0).
// The inner loops are structured as a 4-row outer-product update so the
// compiler keeps the four accumulator rows' bases in registers and the
// B row access is a single streaming read.
func macroKernel(alpha float64, pa, pb []float64, c *Matrix, i0, j0, ib, jb, kb int) {
	i := 0
	for ; i+4 <= ib; i += 4 {
		r0 := c.Data[(i0+i+0)*c.Stride+j0 : (i0+i+0)*c.Stride+j0+jb]
		r1 := c.Data[(i0+i+1)*c.Stride+j0 : (i0+i+1)*c.Stride+j0+jb]
		r2 := c.Data[(i0+i+2)*c.Stride+j0 : (i0+i+2)*c.Stride+j0+jb]
		r3 := c.Data[(i0+i+3)*c.Stride+j0 : (i0+i+3)*c.Stride+j0+jb]
		a0 := pa[(i+0)*kb : (i+1)*kb]
		a1 := pa[(i+1)*kb : (i+2)*kb]
		a2 := pa[(i+2)*kb : (i+3)*kb]
		a3 := pa[(i+3)*kb : (i+4)*kb]
		for p := 0; p < kb; p++ {
			brow := pb[p*jb : (p+1)*jb]
			s0 := alpha * a0[p]
			s1 := alpha * a1[p]
			s2 := alpha * a2[p]
			s3 := alpha * a3[p]
			for j, bv := range brow {
				r0[j] += s0 * bv
				r1[j] += s1 * bv
				r2[j] += s2 * bv
				r3[j] += s3 * bv
			}
		}
	}
	for ; i < ib; i++ {
		row := c.Data[(i0+i)*c.Stride+j0 : (i0+i)*c.Stride+j0+jb]
		arow := pa[i*kb : (i+1)*kb]
		for p := 0; p < kb; p++ {
			s := alpha * arow[p]
			if s == 0 {
				continue
			}
			brow := pb[p*jb : (p+1)*jb]
			for j, bv := range brow {
				row[j] += s * bv
			}
		}
	}
}

// DGEMMNaive is the triple-loop reference implementation, the oracle the
// test suite checks the blocked kernel against. It is deliberately simple
// and single-threaded.
func DGEMMNaive(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	checkShapes(a, b, c)
	n, m, k := a.Rows, b.Cols, a.Cols
	for i := 0; i < n; i++ {
		crow := c.Data[i*c.Stride : i*c.Stride+m]
		if beta == 0 {
			for j := range crow {
				crow[j] = 0
			}
		} else if beta != 1 {
			for j := range crow {
				crow[j] *= beta
			}
		}
		arow := a.Data[i*a.Stride : i*a.Stride+k]
		for p := 0; p < k; p++ {
			s := alpha * arow[p]
			if s == 0 {
				continue
			}
			brow := b.Data[p*b.Stride : p*b.Stride+m]
			for j, bv := range brow {
				crow[j] += s * bv
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
