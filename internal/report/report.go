// Package report renders experiment artifacts the way the paper presents
// them: numbered tables with aligned columns (text, Markdown, CSV) and
// figure data series (TSV for plotting tools, ASCII bar charts for
// terminals).
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) *Table {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
	return t
}

// AddNote appends a footnote (the paper uses these for the min-count
// blocks of Table IX).
func (t *Table) AddNote(note string) *Table {
	t.Notes = append(t.Notes, note)
	return t
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Text renders the table with aligned columns for terminal output.
func (t *Table) Text() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	w := t.widths()
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", w[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, x := range w {
		total += x + 2
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// Markdown renders a GitHub-flavoured Markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("### " + t.Title + "\n\n")
	}
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	sb.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		sb.WriteString("\n*" + n + "*\n")
	}
	return sb.String()
}

// CSV renders comma-separated values with minimal quoting.
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = esc(h)
	}
	sb.WriteString(strings.Join(cells, ",") + "\n")
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		sb.WriteString(strings.Join(cells, ",") + "\n")
	}
	return sb.String()
}

// Series is one named data series of a figure.
type Series struct {
	Name   string
	Labels []string  // categorical X (bar charts); empty for numeric X
	X      []float64 // numeric X (line plots)
	Y      []float64
}

// Figure is a titled collection of series.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Series []Series
}

// NewFigure creates a figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends a series.
func (f *Figure) Add(s Series) *Figure {
	f.Series = append(f.Series, s)
	return f
}

// TSV emits the figure as tab-separated columns: one X column followed by
// one column per series — directly consumable by gnuplot or pandas.
func (f *Figure) TSV() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", f.Title)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	sb.WriteString(strings.Join(header, "\t") + "\n")
	rows := 0
	for _, s := range f.Series {
		if n := len(s.Y); n > rows {
			rows = n
		}
	}
	for r := 0; r < rows; r++ {
		var cells []string
		switch {
		case len(f.Series) > 0 && r < len(f.Series[0].Labels):
			cells = append(cells, f.Series[0].Labels[r])
		case len(f.Series) > 0 && r < len(f.Series[0].X):
			cells = append(cells, fmt.Sprintf("%g", f.Series[0].X[r]))
		default:
			cells = append(cells, fmt.Sprintf("%d", r))
		}
		for _, s := range f.Series {
			if r < len(s.Y) {
				cells = append(cells, fmt.Sprintf("%g", s.Y[r]))
			} else {
				cells = append(cells, "")
			}
		}
		sb.WriteString(strings.Join(cells, "\t") + "\n")
	}
	return sb.String()
}

// BarChartASCII renders grouped horizontal bars, one group per label —
// the terminal rendition of the paper's bar figures (Figs. 3-5).
func (f *Figure) BarChartASCII(width int) string {
	if width < 30 {
		width = 30
	}
	var maxY float64
	for _, s := range f.Series {
		for _, y := range s.Y {
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	var sb strings.Builder
	if f.Title != "" {
		sb.WriteString(f.Title + "\n")
	}
	labels := f.groupLabels()
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	nameW := 0
	for _, s := range f.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for gi, label := range labels {
		for si, s := range f.Series {
			if gi >= len(s.Y) {
				continue
			}
			bar := int(s.Y[gi] / maxY * float64(width))
			if bar < 0 {
				bar = 0
			}
			rowLabel := ""
			if si == 0 {
				rowLabel = label
			}
			fmt.Fprintf(&sb, "%-*s  %-*s |%s %.4g\n", labelW, rowLabel, nameW, s.Name,
				strings.Repeat("#", bar), s.Y[gi])
		}
	}
	fmt.Fprintf(&sb, "(%s; max = %.4g)\n", f.YLabel, maxY)
	return sb.String()
}

func (f *Figure) groupLabels() []string {
	var labels []string
	for _, s := range f.Series {
		if len(s.Labels) > len(labels) {
			labels = s.Labels
		}
	}
	if labels == nil {
		rows := 0
		for _, s := range f.Series {
			if len(s.Y) > rows {
				rows = len(s.Y)
			}
		}
		for i := 0; i < rows; i++ {
			labels = append(labels, fmt.Sprintf("%d", i))
		}
	}
	return labels
}
