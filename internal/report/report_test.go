package report

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("Table T: demo", "System", "FS1", "FS2")
	t.AddRow("2650v4", "408.71 (96.76%)", "773.51 (91.56%)")
	t.AddRow("Gold 6148", "1422.24", "2407.33")
	t.AddNote("a footnote")
	return t
}

func TestTableText(t *testing.T) {
	out := sampleTable().Text()
	for _, frag := range []string{"Table T: demo", "System", "2650v4", "Gold 6148", "note: a footnote"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("text table missing %q:\n%s", frag, out)
		}
	}
	// Columns are aligned: every data line has the second column starting
	// at the same offset.
	lines := strings.Split(out, "\n")
	idx := strings.Index(lines[1], "FS1")
	if idx < 0 {
		t.Fatal("header line")
	}
	if !strings.HasPrefix(lines[3][idx:], "408.71") {
		t.Fatalf("misaligned column:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	out := sampleTable().Markdown()
	if !strings.Contains(out, "| System | FS1 | FS2 |") {
		t.Fatalf("markdown header:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Fatal("markdown separator")
	}
	if !strings.Contains(out, "*a footnote*") {
		t.Fatal("markdown note")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("x", "a", "b")
	tbl.AddRow(`has,comma`, `has"quote`)
	out := tbl.CSV()
	if !strings.Contains(out, `"has,comma"`) {
		t.Fatalf("comma not quoted: %s", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Fatalf("quote not escaped: %s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Fatalf("CSV line count %d", lines)
	}
}

func TestTableShortRowPadding(t *testing.T) {
	tbl := NewTable("x", "a", "b", "c")
	tbl.AddRow("only-one")
	if got := len(tbl.Rows[0]); got != 3 {
		t.Fatalf("row padded to %d cells", got)
	}
}

func TestFigureTSV(t *testing.T) {
	f := NewFigure("fig", "x", "y")
	f.Add(Series{Name: "s1", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}})
	f.Add(Series{Name: "s2", X: []float64{1, 2, 3}, Y: []float64{5, 6, 7}})
	out := f.TSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "# fig" {
		t.Fatalf("TSV title: %q", lines[0])
	}
	if lines[1] != "x\ts1\ts2" {
		t.Fatalf("TSV header: %q", lines[1])
	}
	if lines[2] != "1\t10\t5" {
		t.Fatalf("TSV row: %q", lines[2])
	}
	if len(lines) != 5 {
		t.Fatalf("TSV rows: %d", len(lines))
	}
}

func TestFigureTSVLabels(t *testing.T) {
	f := NewFigure("fig", "sys", "v")
	f.Add(Series{Name: "s", Labels: []string{"a", "b"}, Y: []float64{1, 2}})
	out := f.TSV()
	if !strings.Contains(out, "a\t1") || !strings.Contains(out, "b\t2") {
		t.Fatalf("labelled TSV:\n%s", out)
	}
}

func TestBarChartASCII(t *testing.T) {
	f := NewFigure("speedups", "technique", "x")
	f.Add(Series{Name: "2650v4", Labels: []string{"C", "C+I"}, Y: []float64{3.3, 20.1}})
	f.Add(Series{Name: "Gold 6148", Labels: []string{"C", "C+I"}, Y: []float64{4.9, 9.8}})
	out := f.BarChartASCII(40)
	for _, frag := range []string{"speedups", "2650v4", "Gold 6148", "C+I", "#", "20.1"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("bar chart missing %q:\n%s", frag, out)
		}
	}
	// The largest value must render the longest bar.
	longest := strings.Repeat("#", 40)
	if !strings.Contains(out, longest) {
		t.Fatalf("max bar not full width:\n%s", out)
	}
}

func TestBarChartEmptySeries(t *testing.T) {
	f := NewFigure("empty", "x", "y")
	if out := f.BarChartASCII(10); !strings.Contains(out, "empty") {
		t.Fatal("empty figure render")
	}
}
