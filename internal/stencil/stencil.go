// Package stencil is the native structured-grid substrate: a 2D 5-point
// Jacobi sweep (the heat-equation relaxation kernel) parallelised over
// tile-row bands, tuned by tile dimensions. Four FLOPs against sixteen
// bytes of stream traffic put its arithmetic intensity a factor of three
// above TRIAD's yet far below DGEMM's — the second of the two §VII
// roofline gaps this repository closes.
package stencil

import (
	"fmt"

	"rooftune/internal/parallel"
	"rooftune/internal/units"
)

// Grid is a dense NX x NY grid of doubles, row-major with NX columns per
// row (x is the contiguous axis).
type Grid struct {
	NX, NY int
	Data   []float64
}

// NewGrid allocates an nx x ny grid initialised to a deterministic
// pattern: a hot boundary (1.0) around a cold interior (0.0), the classic
// Dirichlet setup whose relaxation Jacobi5 performs.
func NewGrid(nx, ny int) *Grid {
	if nx < 3 || ny < 3 {
		panic(fmt.Sprintf("stencil: grid %dx%d too small for a 5-point stencil", nx, ny))
	}
	g := &Grid{NX: nx, NY: ny, Data: make([]float64, nx*ny)}
	for x := 0; x < nx; x++ {
		g.Data[x] = 1           // y = 0 edge
		g.Data[(ny-1)*nx+x] = 1 // y = ny-1 edge
	}
	for y := 0; y < ny; y++ {
		g.Data[y*nx] = 1      // x = 0 edge
		g.Data[y*nx+nx-1] = 1 // x = nx-1 edge
	}
	return g
}

// At returns the value at (x, y); test helper.
func (g *Grid) At(x, y int) float64 { return g.Data[y*g.NX+x] }

// Points returns the number of interior points one sweep updates.
func (g *Grid) Points() float64 { return float64(g.NX-2) * float64(g.NY-2) }

// Flops returns the floating-point work of one Jacobi sweep: three adds
// and one multiply per interior point.
func (g *Grid) Flops() float64 { return 4 * g.Points() }

// Bytes returns the minimum memory traffic of one sweep in bytes: each
// source cell read once (the cache-reuse lower bound — the three-row
// window makes neighbour loads hits) and each destination cell written
// once. Like spmv.CSR.Bytes, the lower bound is what fixes the kernel's
// position on the roofline's intensity axis.
func (g *Grid) Bytes() float64 { return 16 * float64(g.NX) * float64(g.NY) }

// Intensity returns the kernel's operational intensity I = W/Q: 0.25
// FLOP/B in the large-grid limit, three times TRIAD's 1/12.
func (g *Grid) Intensity() units.Intensity {
	return units.Intensity(g.Flops() / g.Bytes())
}

// Jacobi5 performs one serial 5-point Jacobi sweep: every interior cell of
// dst becomes the average of its four src neighbours; boundary cells copy
// through unchanged. It is the reference the tiled kernel is tested
// against. Panics on shape mismatch or aliased grids.
func Jacobi5(dst, src *Grid) {
	checkShapes(dst, src)
	copyBoundary(dst, src)
	sweepRows(dst, src, 1, src.NY-1, 1, src.NX-1)
}

// Jacobi5Tiled performs one Jacobi sweep traversing the interior in
// tileX x tileY tiles, parallelised over bands of tile rows on the pool.
// The tile shape is the kernel's tuning knob: tileX bounds the contiguous
// run streamed per row (cache-line reuse of the three-row window), tileY
// the band height each task owns (balance versus loop overhead) — the
// autotuner picks, as it picks SpMV's chunk. Every task owns disjoint
// dst rows, so no synchronisation on output is needed. A closed pool
// panics, like stream.RunPool: a measurement site must fail loudly.
func Jacobi5Tiled(dst, src *Grid, tileX, tileY int, pool *parallel.Pool) {
	checkShapes(dst, src)
	if tileX < 1 {
		tileX = 1
	}
	if tileY < 1 {
		tileY = 1
	}
	copyBoundary(dst, src)
	nx, ny := src.NX, src.NY
	bands := (ny - 2 + tileY - 1) / tileY
	ran := pool.Run(bands, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			y0 := 1 + b*tileY
			y1 := minInt(y0+tileY, ny-1)
			for x0 := 1; x0 < nx-1; x0 += tileX {
				x1 := minInt(x0+tileX, nx-1)
				sweepRows(dst, src, y0, y1, x0, x1)
			}
		}
	})
	if !ran {
		panic("stencil: Jacobi5Tiled on a closed pool")
	}
}

// sweepRows updates dst over the interior rectangle [x0,x1) x [y0,y1).
func sweepRows(dst, src *Grid, y0, y1, x0, x1 int) {
	nx := src.NX
	for y := y0; y < y1; y++ {
		up := src.Data[(y-1)*nx:]
		mid := src.Data[y*nx:]
		down := src.Data[(y+1)*nx:]
		out := dst.Data[y*nx:]
		for x := x0; x < x1; x++ {
			out[x] = 0.25 * (up[x] + down[x] + mid[x-1] + mid[x+1])
		}
	}
}

// copyBoundary carries src's Dirichlet boundary into dst so ping-pong
// buffers stay consistent.
func copyBoundary(dst, src *Grid) {
	nx, ny := src.NX, src.NY
	copy(dst.Data[:nx], src.Data[:nx])
	copy(dst.Data[(ny-1)*nx:], src.Data[(ny-1)*nx:])
	for y := 1; y < ny-1; y++ {
		dst.Data[y*nx] = src.Data[y*nx]
		dst.Data[y*nx+nx-1] = src.Data[y*nx+nx-1]
	}
}

func checkShapes(dst, src *Grid) {
	if dst.NX != src.NX || dst.NY != src.NY {
		panic(fmt.Sprintf("stencil: shape mismatch: dst %dx%d, src %dx%d", dst.NX, dst.NY, src.NX, src.NY))
	}
	if &dst.Data[0] == &src.Data[0] {
		panic("stencil: Jacobi5 requires distinct ping-pong buffers")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
