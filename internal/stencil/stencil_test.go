package stencil

import (
	"math"
	"testing"

	"rooftune/internal/parallel"
	"rooftune/internal/units"
)

func TestNewGridBoundary(t *testing.T) {
	g := NewGrid(8, 5)
	for x := 0; x < 8; x++ {
		if g.At(x, 0) != 1 || g.At(x, 4) != 1 {
			t.Fatalf("horizontal boundary not hot at x=%d", x)
		}
	}
	for y := 0; y < 5; y++ {
		if g.At(0, y) != 1 || g.At(7, y) != 1 {
			t.Fatalf("vertical boundary not hot at y=%d", y)
		}
	}
	if g.At(3, 2) != 0 {
		t.Fatal("interior not cold")
	}
}

func TestJacobi5RelaxesTowardBoundary(t *testing.T) {
	src, dst := NewGrid(16, 16), NewGrid(16, 16)
	// 50 ping-pong sweeps: the interior must monotonically approach the
	// hot boundary value 1 and every value must stay in [0, 1].
	var prev float64
	for it := 0; it < 50; it++ {
		Jacobi5(dst, src)
		src, dst = dst, src
		c := src.At(8, 8)
		if c < prev-1e-15 || c < 0 || c > 1 {
			t.Fatalf("iteration %d: centre %g regressed below %g or left [0,1]", it, c, prev)
		}
		prev = c
	}
	if prev <= 0.1 {
		t.Fatalf("centre %g did not heat up after 50 sweeps", prev)
	}
}

func TestJacobi5TiledMatchesSerial(t *testing.T) {
	src := NewGrid(67, 43) // odd sizes: ragged last tiles on both axes
	for i := range src.Data {
		src.Data[i] = float64(i%13) / 13
	}
	want := NewGrid(67, 43)
	Jacobi5(want, src)

	pool := parallel.NewPool(4)
	defer pool.Close()
	for _, tile := range [][2]int{{1, 1}, {8, 4}, {16, 16}, {128, 128}, {5, 3}} {
		got := NewGrid(67, 43)
		Jacobi5Tiled(got, src, tile[0], tile[1], pool)
		for i := range got.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-15 {
				t.Fatalf("tile %v: cell %d = %g, want %g", tile, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestJacobi5TiledClosedPoolPanics(t *testing.T) {
	src, dst := NewGrid(8, 8), NewGrid(8, 8)
	pool := parallel.NewPool(1)
	pool.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Jacobi5Tiled on a closed pool must panic, not record phantom work")
		}
	}()
	Jacobi5Tiled(dst, src, 4, 4, pool)
}

func TestJacobi5AliasedBuffersPanic(t *testing.T) {
	g := NewGrid(8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("aliased ping-pong buffers must panic")
		}
	}()
	Jacobi5(g, g)
}

func TestIntensityBetweenTriadAndDGEMM(t *testing.T) {
	g := NewGrid(1024, 1024)
	i := g.Intensity()
	if i <= units.TriadIntensity {
		t.Fatalf("stencil intensity %v not above TRIAD's %v", i, units.TriadIntensity)
	}
	if dg := units.DGEMMIntensity(500, 500, 64); i >= dg {
		t.Fatalf("stencil intensity %v not below DGEMM's %v", i, dg)
	}
}

func BenchmarkJacobi5Tiled(b *testing.B) {
	src, dst := NewGrid(1024, 1024), NewGrid(1024, 1024)
	pool := parallel.NewPool(parallel.DefaultThreads())
	defer pool.Close()
	b.SetBytes(int64(src.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Jacobi5Tiled(dst, src, 256, 32, pool)
		src, dst = dst, src
	}
}

func BenchmarkJacobi5Serial(b *testing.B) {
	src, dst := NewGrid(1024, 1024), NewGrid(1024, 1024)
	b.SetBytes(int64(src.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Jacobi5(dst, src)
		src, dst = dst, src
	}
}
