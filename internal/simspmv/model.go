// Package simspmv models CSR SpMV performance on the paper's systems: the
// substitute for hardware we do not have, exactly as simblas stands in for
// MKL DGEMM and simstream for the Xeon memory hierarchies. The paper
// publishes no SpMV table, so the model is calibrated *derivatively*: its
// service rate is simstream's Table VI residency curve evaluated at the
// kernel's working set, scaled by a documented gather efficiency (an
// irregular 8-byte gather cannot saturate the streaming bandwidth the
// STREAM kernels reach), and shaped over the tuning axis — the row-chunk
// size — by a scheduling-overhead-versus-load-imbalance response surface:
//
//   - tiny chunks pay a per-task dispatch cost (the pool hands out more
//     tasks than rows can amortise),
//   - huge chunks starve cores (fewer chunks than workers leaves the team
//     partially idle and the tail chunk ragged),
//
// so the surface has an interior argmax, which is what gives the
// autotuner something real to find. The same noise family as the other
// models (lognormal body, rare spikes, per-invocation shift, warm-up
// ramp) drives the adaptive stop conditions.
package simspmv

import (
	"math"
	"time"

	"rooftune/internal/hw"
	"rooftune/internal/simstream"
	"rooftune/internal/units"
	"rooftune/internal/vclock"
	"rooftune/internal/xrand"
)

// Params calibrates one system's SpMV behaviour.
type Params struct {
	// GatherEff is the fraction of the streaming bandwidth the CSR gather
	// sustains at the ideal chunk size. Measured SpMV on Xeons typically
	// lands at 70-90% of STREAM; the default is 0.82.
	GatherEff float64
	// OverheadRows is the per-task dispatch cost expressed in equivalent
	// rows of work; chunks much smaller than this are overhead-dominated.
	OverheadRows float64

	// Noise model, same family as simblas/simstream.
	IterSigma, InvSigma   float64
	SpikeProb, SpikeScale float64
	RampDepth, RampTau    float64
}

// Model is a calibrated SpMV performance model for one system.
type Model struct {
	Sys hw.System
	// BW is the system's calibrated residency curve (Table VI), the
	// service rate every streaming kernel shares.
	BW     *simstream.Model
	params map[int]Params
}

// NewModel builds the SpMV model for a system. Like the other simulated
// models it never fails: systems without a calibration entry get the
// documented generic parameters.
func NewModel(sys hw.System) *Model {
	m := &Model{Sys: sys, BW: simstream.NewModel(sys), params: map[int]Params{}}
	calib, ok := spmvCalibrations[sys.Name]
	if !ok {
		calib = genericCalibration(sys)
	}
	for s, p := range calib {
		m.params[s] = p
	}
	return m
}

// ParamsFor returns the calibration for a socket count, falling back to
// the nearest calibrated count like the sibling models.
func (m *Model) ParamsFor(sockets int) Params {
	if sockets < 1 {
		sockets = 1
	}
	if sockets > m.Sys.Sockets {
		sockets = m.Sys.Sockets
	}
	if p, ok := m.params[sockets]; ok {
		return p
	}
	for s := sockets; s >= 1; s-- {
		if p, ok := m.params[s]; ok {
			return p
		}
	}
	return genericCalibration(m.Sys)[1]
}

// Traffic returns the kernel's minimum memory traffic in bytes for an
// n x n matrix with nnzPerRow stored elements per row; it mirrors
// spmv.CSR.Bytes exactly so the simulated and native kernels land at the
// same operational intensity.
func Traffic(n, nnzPerRow int) float64 {
	nnz := float64(n) * float64(nnzPerRow)
	return 12*nnz + 8*float64(n+1) + 16*float64(n)
}

// Flops returns the floating-point work of one y = A*x, mirroring
// spmv.CSR.Flops.
func Flops(n, nnzPerRow int) float64 { return 2 * float64(n) * float64(nnzPerRow) }

// Intensity returns the kernel's operational intensity.
func Intensity(n, nnzPerRow int) units.Intensity {
	return units.Intensity(Flops(n, nnzPerRow) / Traffic(n, nnzPerRow))
}

// ChunkEff returns the deterministic efficiency of a row-chunk size on
// the given socket count: dispatch overhead times load balance, both in
// [0, 1], with an interior maximum. Exported so tests can assert the
// argmax the tuner must find.
func (m *Model) ChunkEff(n, chunk, sockets int) float64 {
	if chunk < 1 {
		chunk = 1
	}
	if chunk > n {
		chunk = n
	}
	p := m.ParamsFor(sockets)
	cores := float64(m.Sys.Cores(sockets))
	tasks := math.Ceil(float64(n) / float64(chunk))
	// Dispatch overhead: each task costs OverheadRows rows' worth of time.
	overhead := float64(chunk) / (float64(chunk) + p.OverheadRows)
	// Load balance: the busiest core owns ceil(tasks/cores) chunks; the
	// ideal share is n/cores rows.
	busiest := math.Ceil(tasks/cores) * float64(chunk)
	balance := float64(n) / cores / busiest
	if balance > 1 {
		balance = 1
	}
	return overhead * balance
}

// SteadyFlops returns the deterministic steady-state SpMV throughput for
// an n x n matrix with nnzPerRow stored elements per row, evaluated at
// the given row-chunk size and socket count. Multi-socket runs use spread
// affinity, engaging every socket's channels, matching how the workload
// plans its sweeps.
func (m *Model) SteadyFlops(n, nnzPerRow, chunk, sockets int) units.Flops {
	if n <= 0 || nnzPerRow <= 0 {
		return 0
	}
	p := m.ParamsFor(sockets)
	aff := hw.AffinityClose
	if sockets > 1 {
		aff = hw.AffinitySpread
	}
	bw := float64(m.BW.SteadyBandwidthBytes(Traffic(n, nnzPerRow), aff, sockets))
	flops := bw * float64(Intensity(n, nnzPerRow)) * p.GatherEff * m.ChunkEff(n, chunk, sockets)
	return units.Flops(flops)
}

// Invocation simulates one SpMV benchmark process invocation.
type Invocation struct {
	model   *Model
	n, nnz  int // nnz is per-row
	chunk   int
	sockets int
	rng     *xrand.Rand
	steadyT float64
	params  Params
	iter    int
}

// NewInvocation creates the deterministic per-invocation state. As in the
// sibling models, noise streams are derived by hashing (seed,
// configuration, invocation) so evaluation order never changes a sample.
func (m *Model) NewInvocation(n, nnzPerRow, chunk, sockets, inv int, seed uint64) *Invocation {
	p := m.ParamsFor(sockets)
	rng := xrand.New(xrand.Mix(seed, 0x5b317, uint64(n), uint64(nnzPerRow),
		uint64(chunk), uint64(sockets), uint64(inv)))
	steady := Flops(n, nnzPerRow) / float64(m.SteadyFlops(n, nnzPerRow, chunk, sockets))
	steady *= rng.LogNormal(0, p.InvSigma)
	return &Invocation{model: m, n: n, nnz: nnzPerRow, chunk: chunk,
		sockets: sockets, rng: rng, steadyT: steady, params: p}
}

// SetupTime models process start, synthetic-matrix construction (a few
// nanoseconds per stored element) and first-touch of the arrays at half
// DRAM speed.
func (inv *Invocation) SetupTime() time.Duration {
	const startup = 3 * time.Millisecond
	const buildPerNNZ = 25e-9 // column draw + sort amortised
	nnz := float64(inv.n) * float64(inv.nnz)
	bw := float64(inv.model.Sys.TheoreticalBandwidth(inv.sockets)) * 0.5
	build := nnz * buildPerNNZ
	touch := Traffic(inv.n, inv.nnz) / bw
	return startup + time.Duration((build+touch)*float64(time.Second))
}

// WarmupTime is one unmeasured pass (it also warms the page tables and
// the x-vector's cache state).
func (inv *Invocation) WarmupTime() time.Duration { return inv.stepRaw() }

// StepTime returns the next measured pass, at gettimeofday resolution.
func (inv *Invocation) StepTime() time.Duration {
	return vclock.QuantizeMicro(inv.stepRaw())
}

func (inv *Invocation) stepRaw() time.Duration {
	p := inv.params
	ramp := 1 - p.RampDepth*math.Exp(-float64(inv.iter+1)/p.RampTau)
	inv.iter++
	t := inv.steadyT / ramp
	t *= inv.rng.LogNormal(0, p.IterSigma)
	if inv.rng.Bernoulli(p.SpikeProb) {
		t *= 1 + inv.rng.Gamma(2, p.SpikeScale/2)
	}
	// Parallel-region overhead per pass, as in simstream.
	const overhead = 5e-7
	d := time.Duration((t + overhead) * float64(time.Second))
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

// Work returns the FLOPs of one pass.
func (inv *Invocation) Work() float64 { return Flops(inv.n, inv.nnz) }

// spmvCalibrations holds per-system overrides. The gather efficiencies
// are slightly higher on the Skylake Golds (larger out-of-order windows
// hide more gather latency) than on the Broadwells; noise mirrors each
// system's TRIAD character, with a deeper ramp — SpMV's warm-up faults
// both the matrix and the index streams.
var spmvCalibrations = map[string]map[int]Params{
	"2650v4":    {1: broadwellSpMV(), 2: broadwellSpMV()},
	"2695v4":    {1: noisyBroadwellSpMV(), 2: noisyBroadwellSpMV()},
	"Gold 6132": {1: skylakeSpMV(), 2: skylakeSpMV()},
	"Gold 6148": {1: skylakeSpMV(), 2: skylakeSpMV()},
}

func broadwellSpMV() Params {
	return Params{
		GatherEff: 0.80, OverheadRows: 24,
		IterSigma: 0.015, InvSigma: 0.006,
		SpikeProb: 0.008, SpikeScale: 0.12,
		RampDepth: 0.12, RampTau: 1.6,
	}
}

func noisyBroadwellSpMV() Params {
	p := broadwellSpMV()
	p.IterSigma, p.InvSigma = 0.024, 0.009
	p.SpikeProb, p.SpikeScale = 0.012, 0.16
	return p
}

func skylakeSpMV() Params {
	return Params{
		GatherEff: 0.84, OverheadRows: 24,
		IterSigma: 0.014, InvSigma: 0.005,
		SpikeProb: 0.007, SpikeScale: 0.11,
		RampDepth: 0.10, RampTau: 1.5,
	}
}

// genericCalibration gives uncalibrated systems the Broadwell defaults on
// every socket count.
func genericCalibration(sys hw.System) map[int]Params {
	out := make(map[int]Params, sys.Sockets)
	for s := 1; s <= sys.Sockets; s++ {
		out[s] = broadwellSpMV()
	}
	return out
}
