package simspmv

import (
	"testing"

	"rooftune/internal/hw"
	"rooftune/internal/spmv"
	"rooftune/internal/units"
)

func sys(t *testing.T, name string) hw.System {
	t.Helper()
	s, err := hw.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTrafficMirrorsNativeKernel pins the simulated intensity to the
// native kernel's: if spmv.CSR.Bytes ever changes its traffic accounting,
// the two engines would land the workload at different roofline
// intensities — this is the tripwire.
func TestTrafficMirrorsNativeKernel(t *testing.T) {
	for _, cfg := range [][2]int{{1024, 8}, {4096, 16}, {513, 3}} {
		n, nnz := cfg[0], cfg[1]
		a := spmv.Synthetic(n, nnz, 1)
		if got, want := Traffic(n, nnz), a.Bytes(); got != want {
			t.Fatalf("Traffic(%d, %d) = %g, native CSR says %g", n, nnz, got, want)
		}
		if got, want := Flops(n, nnz), a.Flops(); got != want {
			t.Fatalf("Flops(%d, %d) = %g, native CSR says %g", n, nnz, got, want)
		}
		if got, want := Intensity(n, nnz), a.Intensity(); got != want {
			t.Fatalf("Intensity(%d, %d) = %v, native CSR says %v", n, nnz, got, want)
		}
	}
}

func TestIntensityBetweenTriadAndDGEMM(t *testing.T) {
	i := Intensity(1<<18, 16)
	if i <= units.TriadIntensity || i >= units.DGEMMIntensity(500, 500, 64) {
		t.Fatalf("SpMV intensity %v outside (TRIAD, DGEMM)", i)
	}
}

// TestChunkArgmaxInterior: the chunk response must peak strictly inside
// the workload's sweep grid on every paper system and socket count —
// otherwise the autotuner is just reading off a boundary.
func TestChunkArgmaxInterior(t *testing.T) {
	grid := []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}
	const n, nnz = 1 << 18, 16
	for _, name := range []string{"2650v4", "2695v4", "Gold 6132", "Gold 6148"} {
		m := NewModel(sys(t, name))
		for _, sockets := range m.Sys.SocketConfigs() {
			best, bestFlops := -1, units.Flops(0)
			for i, c := range grid {
				f := m.SteadyFlops(n, nnz, c, sockets)
				if f <= 0 {
					t.Fatalf("%s s%d chunk %d: non-positive flops", name, sockets, c)
				}
				if f > bestFlops {
					best, bestFlops = i, f
				}
			}
			if best == 0 || best == len(grid)-1 {
				t.Fatalf("%s s%d: argmax at grid boundary (chunk %d)", name, sockets, grid[best])
			}
		}
	}
}

// TestSteadyFlopsBelowBandwidthBound: the modelled throughput can never
// exceed the system's own streaming bandwidth times the kernel intensity.
func TestSteadyFlopsBelowBandwidthBound(t *testing.T) {
	m := NewModel(sys(t, "Gold 6148"))
	const n, nnz = 1 << 18, 16
	for _, sockets := range m.Sys.SocketConfigs() {
		aff := hw.AffinityClose
		if sockets > 1 {
			aff = hw.AffinitySpread
		}
		bound := float64(m.BW.SteadyBandwidthBytes(Traffic(n, nnz), aff, sockets)) * float64(Intensity(n, nnz))
		for _, c := range []int{32, 512, 8192} {
			if f := float64(m.SteadyFlops(n, nnz, c, sockets)); f >= bound {
				t.Fatalf("s%d chunk %d: %g FLOP/s >= streaming bound %g", sockets, c, f, bound)
			}
		}
	}
}

// TestInvocationDeterminism: equal (configuration, invocation, seed)
// triples must replay identical measurement streams regardless of
// model instance — the property every simulated engine's scheduling
// freedom rests on.
func TestInvocationDeterminism(t *testing.T) {
	s := sys(t, "2650v4")
	a, b := NewModel(s), NewModel(s)
	for inv := 0; inv < 3; inv++ {
		ia := a.NewInvocation(1<<16, 16, 512, 2, inv, 1021)
		ib := b.NewInvocation(1<<16, 16, 512, 2, inv, 1021)
		if ia.SetupTime() != ib.SetupTime() {
			t.Fatal("setup times diverge")
		}
		if ia.WarmupTime() != ib.WarmupTime() {
			t.Fatal("warmup times diverge")
		}
		for i := 0; i < 20; i++ {
			if ta, tb := ia.StepTime(), ib.StepTime(); ta != tb {
				t.Fatalf("invocation %d step %d: %v != %v", inv, i, ta, tb)
			}
		}
		if ia.Work() != Flops(1<<16, 16) {
			t.Fatalf("work = %g", ia.Work())
		}
	}
	// A different seed must produce a different stream.
	ia := a.NewInvocation(1<<16, 16, 512, 2, 0, 1021)
	ib := b.NewInvocation(1<<16, 16, 512, 2, 0, 1022)
	same := true
	for i := 0; i < 10; i++ {
		if ia.StepTime() != ib.StepTime() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds replayed an identical stream")
	}
}

// TestUncalibratedSystemWorks: user-defined systems fall back to the
// generic calibration instead of panicking.
func TestUncalibratedSystemWorks(t *testing.T) {
	s := sys(t, "Gold 6148")
	s.Name = "my-custom-box"
	m := NewModel(s)
	if f := m.SteadyFlops(1<<16, 16, 512, 1); f <= 0 {
		t.Fatalf("generic calibration gave %v", f)
	}
}
