package experiments

import (
	"fmt"
	"strings"
	"time"
)

// GenerateMarkdown runs the complete experiment campaign and renders
// EXPERIMENTS.md: every table and figure of the paper with measured
// values side by side with the published ones, plus the deviations and
// their causes. This is the function cmd/experiments -write-md calls; the
// checked-in EXPERIMENTS.md is its output.
func (r *Runner) GenerateMarkdown() (string, error) {
	var sb strings.Builder
	started := time.Now() //rooflint:allow nodeterminism -- generation wall time lands in a footer line, not in any measured value

	sb.WriteString("# EXPERIMENTS — paper vs. measured\n\n")
	sb.WriteString("Reproduction of *Autotuning Benchmarking Techniques: A Roofline Model\n")
	sb.WriteString("Case Study* (Tørring, Meyer, Elster; arXiv:2103.08716). Every artifact\n")
	sb.WriteString("below regenerates with `go run ./cmd/experiments -artifact all` (seed ")
	sb.WriteString(fmt.Sprintf("%d).\n\n", r.Seed))
	sb.WriteString("The hardware substrate is simulated (see DESIGN.md §2): *paper* columns\n")
	sb.WriteString("are the published measurements on real Xeon nodes, *measured* columns\n")
	sb.WriteString("are this repository's calibrated simulation. Absolute GFLOP/s match by\n")
	sb.WriteString("calibration; the reproduction claims under test are the *relationships*:\n")
	sb.WriteString("which configuration wins, the <2% accuracy of adaptive techniques, the\n")
	sb.WriteString("speedup ordering, and the min-count anomaly on the 2695v4.\n\n")

	// Tables I-III are configuration/derivation artifacts.
	sb.WriteString("## Table I — auto-tuner configuration\n\n")
	sb.WriteString(r.Table1().Markdown() + "\n")
	sb.WriteString("Identical to the paper by construction (it is the tool's default budget).\n\n")

	sb.WriteString("## Table II — hardware specifications\n\n")
	sb.WriteString(r.Table2().Markdown() + "\n")
	sb.WriteString("Deviation: the paper prints `AVXUnits 1` for the two Broadwell systems,\n")
	sb.WriteString("but its own Table III peaks (422.4 / 604.8 GFLOP/s) require 16 DP\n")
	sb.WriteString("FLOP/cycle/core — two 256-bit FMA units, the physically correct value\n")
	sb.WriteString("for Broadwell. We encode 2 so Eq. 9 reproduces Table III exactly.\n\n")

	sb.WriteString("## Table III — theoretical peaks (Eqs. 9-11)\n\n")
	sb.WriteString(r.Table3().Markdown() + "\n")
	sb.WriteString("| System | Ft paper | Ft measured | Bt paper | Bt measured |\n|---|---|---|---|---|\n")
	for _, sys := range r.Systems {
		p := PaperTable3[sys.Name]
		sb.WriteString(fmt.Sprintf("| %s | %.1f | %.1f | %.3f | %.3f |\n",
			sys.Name, p.Ft, sys.TheoreticalFlops(1).GFLOPS(),
			p.Bt, sys.TheoreticalBandwidth(sys.Sockets).GBps()))
	}
	sb.WriteString("\nExact. Note the paper's Bt is a per-node figure while Ft is per-socket;\n")
	sb.WriteString("we follow its convention (see `hw.TheoreticalBandwidth`).\n\n")

	// Tables IV & V.
	runs, err := r.Table4Data()
	if err != nil {
		return "", err
	}
	sb.WriteString("## Tables IV & V — peak DGEMM performance and winning dimensions\n\n")
	sb.WriteString(Table4(runs).Markdown() + "\n")
	t5, err := Table5(runs)
	if err != nil {
		return "", err
	}
	sb.WriteString(t5.Markdown() + "\n")
	sb.WriteString("| System | FS1 paper | FS1 measured | FS2 paper | FS2 measured | dims match |\n|---|---|---|---|---|---|\n")
	for _, run := range runs {
		p := PaperTable4[run.System.Name]
		d5 := PaperTable5[run.System.Name]
		d1, _ := BestDims(run.S1)
		d2, _ := BestDims(run.S2)
		match := "yes"
		if d1 != d5.S1 || d2 != d5.S2 {
			match = fmt.Sprintf("no (%v / %v)", d1, d2)
		}
		sb.WriteString(fmt.Sprintf("| %s | %.2f | %.2f | %.2f | %.2f | %s |\n",
			run.System.Name, p.FS1, run.S1.BestValue()/1e9, p.FS2, run.S2.BestValue()/1e9, match))
	}
	sb.WriteString("\nEvery system's exhaustive search finds the paper's exact optimal\n")
	sb.WriteString("dimensions; peaks agree within 0.5% (measurement noise + warm-up ramp).\n\n")

	// Table VI.
	triads, err := r.Table6Data()
	if err != nil {
		return "", err
	}
	sb.WriteString("## Table VI — peak memory bandwidth\n\n")
	sb.WriteString(Table6(triads).Markdown() + "\n")
	sb.WriteString("| System | DRAM S1 p/m | DRAM S2 p/m | L3 S1 p/m | L3 S2 p/m |\n|---|---|---|---|---|\n")
	for _, run := range triads {
		p := PaperTable6[run.System.Name]
		sb.WriteString(fmt.Sprintf("| %s | %.2f / %.2f | %.2f / %.2f | %.2f / %.2f | %.2f / %.2f |\n",
			run.System.Name,
			p.DramS1, run.Peak(1, RegionDRAM),
			p.DramS2, run.Peak(run.System.Sockets, RegionDRAM),
			p.L3S1, run.Peak(1, RegionL3),
			p.L3S2, run.Peak(run.System.Sockets, RegionL3)))
	}
	sb.WriteString("\nAll within ~2% (L3 values sit ~1-2% low: the measured mean includes\n")
	sb.WriteString("loop overhead and the first post-warm-up iterations). DRAM exceeding\n")
	sb.WriteString("theoretical peak — the paper's L3-noise observation — reproduces via\n")
	sb.WriteString("the model's residual-L3-hit blend.\n\n")

	// Table VII.
	sb.WriteString("## Table VII — hand-tuned iteration counts\n\n")
	sb.WriteString(r.Table7().Markdown() + "\n")
	sb.WriteString("Inputs taken from the paper (they parameterise the hand-tuned rows below).\n\n")

	// Tables VIII-XI.
	var optTables []*OptTable
	for _, sys := range r.Systems {
		tbl, err := r.OptimizationTable(sys.Name)
		if err != nil {
			return "", err
		}
		optTables = append(optTables, tbl)
		sb.WriteString(fmt.Sprintf("## Table %s — evaluation optimisations, %s\n\n",
			OptTableNumbers[sys.Name], sys.Name))
		sb.WriteString(tbl.Render(OptTableNumbers[sys.Name]).Markdown() + "\n")
		sb.WriteString("| Technique | FS1 p/m | FS2 p/m | Time p/m (s) | Speedup p/m |\n|---|---|---|---|---|\n")
		paper := PaperTablesOpt[sys.Name]
		for _, row := range append(append([]OptRow{}, tbl.Rows...), tbl.MinCountRows...) {
			p, ok := paper[row.Technique]
			if !ok {
				continue
			}
			sb.WriteString(fmt.Sprintf("| %s | %.2f / %.2f | %.2f / %.2f | %.2f / %.2f | %.2fx / %.2fx |\n",
				row.Technique, p.FS1, row.FS1, p.FS2, row.FS2,
				p.TimeSec, row.Time.Seconds(), p.Speedup, row.Speedup))
		}
		sb.WriteString("\n")
	}
	sb.WriteString(optDeviationNotes())

	// Figures.
	sb.WriteString("## Fig. 1 — example roofline\n\n")
	fig1, err := Fig1(runs[3], triads[3])
	if err != nil {
		return "", err
	}
	sb.WriteString("```\n" + fig1.RenderASCII(72, 18) + "```\n\n")
	sb.WriteString("Four memory subsystems and two compute configurations, as in the paper\n")
	sb.WriteString("(`cmd/experiments -artifact fig1 -format svg` renders the SVG version).\n\n")

	sb.WriteString("## Fig. 2 — benchmarking process\n\n```\n" + Fig2() + "\n```\n\n")

	sb.WriteString("## Fig. 3 — DGEMM vs. theoretical (data)\n\n```\n" + Fig3(runs).BarChartASCII(40) + "```\n\n")
	sb.WriteString("## Fig. 4 — TRIAD vs. theoretical (data)\n\n```\n" + Fig4(triads).BarChartASCII(40) + "```\n\n")
	sb.WriteString("## Fig. 5 — speedup per technique (data)\n\n```\n" + Fig5(optTables).BarChartASCII(40) + "```\n\n")

	fig6pts, err := r.Fig6Data("2650v4")
	if err != nil {
		return "", err
	}
	sb.WriteString("## Fig. 6 — iteration time & performance vs. matrix size\n\n")
	sb.WriteString("First and last points of the sweep (full series via `-artifact fig6`):\n\n")
	sb.WriteString("| work (FLOPs) | sec/iter | GFLOP/s |\n|---|---|---|\n")
	for i, p := range fig6pts {
		if i%48 == 0 || i == len(fig6pts)-1 {
			sb.WriteString(fmt.Sprintf("| %.3g | %.6f | %.1f |\n", p.Work, p.SecPerIter, p.GFLOPS))
		}
	}
	sb.WriteString("\nCost grows ~linearly with FLOPs while the performance peaks are spread\n")
	sb.WriteString("across the size spectrum — the structure that makes search-order reversal\n")
	sb.WriteString("expensive (the paper's Fig. 6 observation).\n\n")

	// Intel comparison.
	ic, err := r.RunIntelComparison(runs[2])
	if err != nil {
		return "", err
	}
	sb.WriteString("## §VI-A — comparison with Intel's square-only tuning\n\n")
	sb.WriteString(ic.Render().Markdown() + "\n")
	p := PaperIntelComparison
	sb.WriteString(fmt.Sprintf("Paper: %.2f GFLOP/s (%.2f%%) on the 4110; %.2f (%.2f%%) square vs. %.2f (%.2f%%) autotuned on the 6132.\n\n",
		p.Silver4110SquareGFLOPS, p.Silver4110UtilPct,
		p.Gold6132SquareGFLOPS, p.Gold6132SquareUtilPct,
		p.Gold6132AutotunedGFLOPS, p.Gold6132AutotunedPct))

	// Extensions beyond the paper.
	sb.WriteString("## Extensions (the paper's §VII future-work list)\n\n")
	cs, err := r.ConstraintStudy()
	if err != nil {
		return "", err
	}
	sb.WriteString(RenderConstraintStudy(cs).Markdown() + "\n")
	sb.WriteString(Table6Extended(triads).Markdown() + "\n")
	scr, err := r.SecondChanceStudy()
	if err != nil {
		return "", err
	}
	sb.WriteString(scr.Render().Markdown() + "\n")
	dist, err := r.DistributionStudy()
	if err != nil {
		return "", err
	}
	sb.WriteString(RenderDistributionStudy(dist).Markdown() + "\n")
	sb.WriteString("The second-chance pass (steady-state exclusion + conservative\n")
	sb.WriteString("re-evaluation of near-miss pruned configurations) recovers the exact\n")
	sb.WriteString("Table V optimum on the 2695v4 even with min_count=2 — the remedy the\n")
	sb.WriteString("paper sketches in §VII, implemented and measured.\n\n")

	sb.WriteString(fmt.Sprintf("---\nGenerated in %.1fs wall time (all searches run in virtual time).\n",
		//rooflint:allow nodeterminism -- footer wall time, explicitly labelled as such in the output
		time.Since(started).Seconds()))
	return sb.String(), nil
}

func optDeviationNotes() string {
	return `### Deviations and their causes (Tables VIII-XI)

* **Default absolute time** runs 1.3-2x the paper's. The paper's budget
  wording is ambiguous (per-invocation vs. per-configuration timeout; we
  default to per-configuration, which matches the published "Single" and
  "Confidence" speedup magnitudes best), and our simulated iteration cost
  is not the authors' wall clock. Speedups are self-normalised against our
  own Default, so orderings are comparable.
* **Orderings reproduce**: Single > C+I+O > C+I > C > 1 on every system;
  reversal ("R") slows the Inner-bound techniques; Confidence is the
  smallest win; adaptive techniques match Default within 2% on the three
  stable systems.
* **2695v4 anomaly reproduces**: with min_count=2 the stop-condition-4
  techniques prune top configurations during their warm-up ramp and
  return degraded results (e.g. C+Inner FS2 ~9% low; the paper saw 14%);
  with min_count=100 every technique finds the exact Table V optimum —
  the paper's fix, same mechanism.
* **C+I/C+I+O speedups** on the stable systems are up to ~2x larger than
  published: our noise floor lets the bound prune after 2-3 iterations
  where the authors' machines needed more. Same direction, same ranking.
`
}
