package experiments

import (
	"fmt"
	"time"

	"rooftune/internal/core"
	"rooftune/internal/report"
)

// OptRow is one row of an optimisation-comparison table (Tables VIII-XI):
// the technique's found peaks, its total search time, and its speedup
// over the Default technique.
type OptRow struct {
	Technique string
	FS1, FS2  float64 // GFLOP/s
	Time      time.Duration
	Speedup   float64
	// S1Dims/S2Dims record which configuration each sweep selected, used
	// to verify that optimised techniques find the Default's optimum.
	S1Dims, S2Dims core.Dims
}

// OptTable is a full optimisation-comparison table for one system.
type OptTable struct {
	System string
	Rows   []OptRow
	// MinCountRows is the extra block the paper adds for the 2695v4:
	// the stop-condition-4 techniques re-run with min_count=100.
	MinCountRows []OptRow
}

// RelativeErrorVsDefault returns the worst relative deviation of a
// technique's found peaks from the Default row's — the paper's "< 2%
// error" claim. Hand-tuned Time and Single are excluded by the caller if
// desired (the paper's claim covers the CI-based techniques).
func (t *OptTable) RelativeErrorVsDefault(techName string) (float64, error) {
	var def, row *OptRow
	for i := range t.Rows {
		switch t.Rows[i].Technique {
		case "Default":
			def = &t.Rows[i]
		case techName:
			row = &t.Rows[i]
		}
	}
	if def == nil || row == nil {
		return 0, fmt.Errorf("experiments: technique %q or Default missing", techName)
	}
	e1 := core.RelativeError(row.FS1, def.FS1)
	e2 := core.RelativeError(row.FS2, def.FS2)
	if e2 > e1 {
		e1 = e2
	}
	return e1, nil
}

// OptimizationTable reproduces the system's Tables VIII-XI row set. For
// the 2695v4 it also fills MinCountRows (the paper's min_count=100
// block). The Default row always runs first: its time is the speedup
// denominator and its result the accuracy reference.
func (r *Runner) OptimizationTable(sys string) (*OptTable, error) {
	system, err := r.SystemByName(sys)
	if err != nil {
		return nil, err
	}
	out := &OptTable{System: sys}
	var defaultTime time.Duration

	for _, tech := range core.Techniques(sys, 2) {
		run, err := r.RunDGEMMTechnique(system, tech)
		if err != nil {
			return nil, err
		}
		row, err := makeOptRow(run, tech.Name, defaultTime)
		if err != nil {
			return nil, err
		}
		if tech.Name == "Default" {
			defaultTime = run.Total
			row.Speedup = 1
		}
		out.Rows = append(out.Rows, row)
	}

	if sys == "2695v4" {
		for _, name := range []string{"C+Inner", "C+Inner+R", "C+I+Outer", "C+I+O+R"} {
			tech, ok := core.TechniqueByName(sys, name, 100)
			if !ok {
				return nil, fmt.Errorf("experiments: unknown technique %q", name)
			}
			run, err := r.RunDGEMMTechnique(system, tech)
			if err != nil {
				return nil, err
			}
			row, err := makeOptRow(run, name+" (min100)", defaultTime)
			if err != nil {
				return nil, err
			}
			out.MinCountRows = append(out.MinCountRows, row)
		}
	}
	return out, nil
}

func makeOptRow(run *DGEMMRun, name string, defaultTime time.Duration) (OptRow, error) {
	d1, err := BestDims(run.S1)
	if err != nil {
		return OptRow{}, err
	}
	d2, err := BestDims(run.S2)
	if err != nil {
		return OptRow{}, err
	}
	row := OptRow{
		Technique: name,
		FS1:       run.S1.BestValue() / 1e9,
		FS2:       run.S2.BestValue() / 1e9,
		Time:      run.Total,
		S1Dims:    d1,
		S2Dims:    d2,
	}
	if defaultTime > 0 {
		row.Speedup = defaultTime.Seconds() / run.Total.Seconds()
	}
	return row, nil
}

// Render formats the table in the paper's layout.
func (t *OptTable) Render(tableNumber string) *report.Table {
	rt := report.NewTable(
		fmt.Sprintf("Table %s: Comparison of evaluation optimizations for %s", tableNumber, t.System),
		"Technique", "FS1 Perf", "FS2 Perf", "Time", "Speedup")
	add := func(rows []OptRow) {
		for _, row := range rows {
			rt.AddRow(row.Technique,
				fmt.Sprintf("%.2f", row.FS1),
				fmt.Sprintf("%.2f", row.FS2),
				fmt.Sprintf("%.2fs", row.Time.Seconds()),
				fmt.Sprintf("%.2fx", row.Speedup),
			)
		}
	}
	add(t.Rows)
	if len(t.MinCountRows) > 0 {
		rt.AddNote("Rows below use minimum count=100 for stop condition 4 (see §III-C).")
		add(t.MinCountRows)
	}
	return rt
}

// OptTableNumbers maps system name to the paper's table numbering.
var OptTableNumbers = map[string]string{
	"2650v4":    "VIII",
	"2695v4":    "IX",
	"Gold 6132": "X",
	"Gold 6148": "XI",
}
