package experiments

import (
	"context"
	"fmt"
	"sort"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/report"
	"rooftune/internal/roofline"
)

// Fig1 builds the example roofline of the paper's Fig. 1: four memory
// subsystems (single/dual-socket DRAM and L3) and two compute
// configurations (single/dual-socket DGEMM peak) for one system. It uses
// measured results when runs are supplied, falling back to theoretical
// ceilings otherwise.
func Fig1(dgemm *DGEMMRun, triad *TriadRun) (*roofline.Model, error) {
	if dgemm == nil || triad == nil {
		return nil, fmt.Errorf("experiments: Fig1 needs both DGEMM and TRIAD runs")
	}
	sys := dgemm.System
	m := &roofline.Model{Title: fmt.Sprintf("Roofline model: %s (measured)", sys.Name)}
	m.AddMemory("DRAM, 1 socket", bwOf(triad, 1, RegionDRAM))
	m.AddMemory("L3 cache, 1 socket", bwOf(triad, 1, RegionL3))
	if sys.Sockets > 1 {
		m.AddMemory(fmt.Sprintf("DRAM, %d sockets", sys.Sockets), bwOf(triad, sys.Sockets, RegionDRAM))
		m.AddMemory(fmt.Sprintf("L3 cache, %d sockets", sys.Sockets), bwOf(triad, sys.Sockets, RegionL3))
	}
	m.AddCompute("DGEMM peak, 1 socket", flopsOf(dgemm.S1))
	if sys.Sockets > 1 {
		m.AddCompute(fmt.Sprintf("DGEMM peak, %d sockets", sys.Sockets), flopsOf(dgemm.S2))
	}
	// Application points: TRIAD at I = 1/12, DGEMM at its (high) intensity.
	m.AddPoint("TRIAD", 1.0/12, flopsFromBandwidth(bwOf(triad, sys.Sockets, RegionDRAM)))
	if d, err := BestDims(dgemm.S2); err == nil {
		m.AddPoint("DGEMM", dgemmIntensity(d), flopsOf(dgemm.S2))
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Fig3 builds the grouped bar chart of DGEMM achieved vs. theoretical
// performance for all systems (Fig. 3).
func Fig3(runs []*DGEMMRun) *report.Figure {
	f := report.NewFigure("Fig. 3: DGEMM compute performance vs. theoretical maximum",
		"System", "GFLOP/s")
	var labels []string
	var m1, t1, m2, t2 []float64
	for _, run := range runs {
		labels = append(labels, run.System.Name)
		m1 = append(m1, run.S1.BestValue()/1e9)
		t1 = append(t1, run.System.TheoreticalFlops(1).GFLOPS())
		m2 = append(m2, run.S2.BestValue()/1e9)
		t2 = append(t2, run.System.TheoreticalFlops(run.System.Sockets).GFLOPS())
	}
	f.Add(report.Series{Name: "measured S1", Labels: labels, Y: m1})
	f.Add(report.Series{Name: "theoretical S1", Labels: labels, Y: t1})
	f.Add(report.Series{Name: "measured S2", Labels: labels, Y: m2})
	f.Add(report.Series{Name: "theoretical S2", Labels: labels, Y: t2})
	return f
}

// Fig4 builds the TRIAD counterpart (Fig. 4): measured vs. theoretical
// DRAM bandwidth plus measured L3 bandwidth.
func Fig4(runs []*TriadRun) *report.Figure {
	f := report.NewFigure("Fig. 4: TRIAD memory performance vs. theoretical maximum",
		"System", "GB/s")
	var labels []string
	var d1, t1, d2, t2, l1, l2 []float64
	for _, run := range runs {
		sys := run.System
		labels = append(labels, sys.Name)
		d1 = append(d1, run.Peak(1, RegionDRAM))
		t1 = append(t1, sys.TheoreticalBandwidth(1).GBps())
		d2 = append(d2, run.Peak(sys.Sockets, RegionDRAM))
		t2 = append(t2, sys.TheoreticalBandwidth(sys.Sockets).GBps())
		l1 = append(l1, run.Peak(1, RegionL3))
		l2 = append(l2, run.Peak(sys.Sockets, RegionL3))
	}
	f.Add(report.Series{Name: "DRAM S1", Labels: labels, Y: d1})
	f.Add(report.Series{Name: "theoretical S1", Labels: labels, Y: t1})
	f.Add(report.Series{Name: "DRAM S2", Labels: labels, Y: d2})
	f.Add(report.Series{Name: "theoretical S2", Labels: labels, Y: t2})
	f.Add(report.Series{Name: "L3 S1", Labels: labels, Y: l1})
	f.Add(report.Series{Name: "L3 S2", Labels: labels, Y: l2})
	return f
}

// Fig5 builds the speedup-over-default bar chart across systems and
// techniques (Fig. 5).
func Fig5(tables []*OptTable) *report.Figure {
	f := report.NewFigure("Fig. 5: Search-time speedup over Default per technique",
		"Technique", "speedup (x)")
	techniques := []string{"Hand-tuned Time", "Hand-tuned Accuracy", "Single",
		"Confidence", "C+Inner", "C+Inner+R", "C+I+Outer", "C+I+O+R"}
	for _, t := range tables {
		ys := make([]float64, len(techniques))
		for i, name := range techniques {
			for _, row := range t.Rows {
				if row.Technique == name {
					ys[i] = row.Speedup
				}
			}
		}
		f.Add(report.Series{Name: t.System, Labels: techniques, Y: ys})
	}
	return f
}

// Fig6Point is one configuration of the Fig. 6 sweep.
type Fig6Point struct {
	Dims        core.Dims
	Work        float64 // FLOPs of one execution
	SecPerIter  float64 // mean measured time per iteration
	GFLOPS      float64 // mean performance
	TotalSec    float64 // total evaluation cost of the configuration
	Pruned      bool
	SampleCount int
}

// Fig6Data sweeps one system (single socket) with the Default budget and
// records per-configuration iteration time and performance, ordered by
// configuration size — the data behind Fig. 6 ("time spent on each
// iteration and performance as a function of matrix sizes").
func (r *Runner) Fig6Data(sysName string) ([]Fig6Point, error) {
	system, err := r.SystemByName(sysName)
	if err != nil {
		return nil, err
	}
	// A single invocation suffices for the shape; the figure is about the
	// cost/performance landscape, not about statistics.
	budget := bench.DefaultBudget()
	budget.Invocations = 1
	budget.MaxIterations = 20

	eng := bench.NewSimEngine(system, r.Seed)
	tuner := core.NewTuner(eng.Clock, budget, core.OrderForward)
	res, err := tuner.Run(context.Background(), DGEMMCases(eng, r.Space, 1))
	if err != nil {
		return nil, err
	}
	points := make([]Fig6Point, 0, len(res.All))
	for i, out := range res.All {
		d := r.Space[i]
		var measured float64
		var samples int
		for _, inv := range out.Invocations {
			measured += inv.Measured.Seconds()
			samples += inv.Samples
		}
		p := Fig6Point{
			Dims:        d,
			Work:        d.Flops(),
			GFLOPS:      out.Mean / 1e9,
			TotalSec:    out.Elapsed.Seconds(),
			Pruned:      out.Pruned,
			SampleCount: samples,
		}
		if samples > 0 {
			p.SecPerIter = measured / float64(samples)
		}
		points = append(points, p)
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Work < points[j].Work })
	return points, nil
}

// Fig6 renders the sweep as a two-series figure over configuration size.
func Fig6(points []Fig6Point) *report.Figure {
	f := report.NewFigure("Fig. 6: per-iteration time and performance vs. matrix size",
		"work (FLOPs)", "seconds / GFLOP/s")
	f.LogX = true
	var xs, times, perfs []float64
	for _, p := range points {
		xs = append(xs, p.Work)
		times = append(times, p.SecPerIter)
		perfs = append(perfs, p.GFLOPS)
	}
	f.Add(report.Series{Name: "sec/iteration", X: xs, Y: times})
	f.Add(report.Series{Name: "GFLOP/s", X: xs, Y: perfs})
	return f
}
