package experiments

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"rooftune/internal/bench"
)

// Campaign is the complete reproduction run: every table's data for every
// system, machine-readable. cmd/experiments and the EXPERIMENTS.md
// generator both consume it; the JSON form feeds external plotting.
type Campaign struct {
	Seed      uint64
	DGEMM     []*DGEMMRun
	Triad     []*TriadRun
	Opt       []*OptTable
	Intel     *IntelComparison
	StartedAt time.Time
	WallTime  time.Duration
}

// RunCampaign executes the full campaign. With parallel=true the
// per-system work runs concurrently — each system uses its own engine,
// clock and noise streams, so results are bit-identical to the serial
// run (asserted by TestCampaignParallelDeterminism).
func (r *Runner) RunCampaign(parallel bool) (*Campaign, error) {
	//rooflint:allow nodeterminism -- campaign wall time is reporting metadata, never a measured result
	c := &Campaign{Seed: r.Seed, StartedAt: time.Now()}
	n := len(r.Systems)
	c.DGEMM = make([]*DGEMMRun, n)
	c.Triad = make([]*TriadRun, n)
	c.Opt = make([]*OptTable, n)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	record := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	runSystem := func(i int) {
		defer wg.Done()
		sys := r.Systems[i]
		dg, err := r.ExhaustiveDefault(sys)
		if err != nil {
			record(fmt.Errorf("campaign %s dgemm: %w", sys.Name, err))
			return
		}
		tr, err := r.RunTriad(sys, bench.DefaultBudget().WithFlags(true, true, false))
		if err != nil {
			record(fmt.Errorf("campaign %s triad: %w", sys.Name, err))
			return
		}
		opt, err := r.OptimizationTable(sys.Name)
		if err != nil {
			record(fmt.Errorf("campaign %s opt: %w", sys.Name, err))
			return
		}
		c.DGEMM[i], c.Triad[i], c.Opt[i] = dg, tr, opt
	}

	wg.Add(n)
	for i := 0; i < n; i++ {
		if parallel {
			//rooflint:allow nogoroutine -- per-system fan-out joined by wg.Wait below; determinism asserted by TestCampaignParallelDeterminism
			go runSystem(i)
		} else {
			runSystem(i)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// The Intel comparison depends on the Gold 6132 run.
	for i, sys := range r.Systems {
		if sys.Name == "Gold 6132" {
			ic, err := r.RunIntelComparison(c.DGEMM[i])
			if err != nil {
				return nil, err
			}
			c.Intel = ic
		}
	}
	c.WallTime = time.Since(c.StartedAt) //rooflint:allow nodeterminism -- wall time of the whole campaign, reporting metadata
	return c, nil
}

// MarshalJSON exports the campaign's headline numbers.
func (c *Campaign) MarshalJSON() ([]byte, error) {
	type dgemmJSON struct {
		System  string  `json:"system"`
		FS1     float64 `json:"fs1_gflops"`
		FS2     float64 `json:"fs2_gflops"`
		S1Dims  string  `json:"s1_dims"`
		S2Dims  string  `json:"s2_dims"`
		TimeSec float64 `json:"search_time_s"`
	}
	type triadJSON struct {
		System string  `json:"system"`
		DramS1 float64 `json:"dram_s1_gbps"`
		DramS2 float64 `json:"dram_s2_gbps"`
		L3S1   float64 `json:"l3_s1_gbps"`
		L3S2   float64 `json:"l3_s2_gbps"`
	}
	type optJSON struct {
		System    string  `json:"system"`
		Technique string  `json:"technique"`
		FS1       float64 `json:"fs1_gflops"`
		FS2       float64 `json:"fs2_gflops"`
		TimeSec   float64 `json:"time_s"`
		Speedup   float64 `json:"speedup"`
	}
	out := struct {
		Seed     uint64      `json:"seed"`
		DGEMM    []dgemmJSON `json:"dgemm"`
		Triad    []triadJSON `json:"triad"`
		Opt      []optJSON   `json:"optimizations"`
		WallSecs float64     `json:"wall_time_s"`
	}{Seed: c.Seed, WallSecs: c.WallTime.Seconds()}
	for _, run := range c.DGEMM {
		d1, err := BestDims(run.S1)
		if err != nil {
			return nil, err
		}
		d2, err := BestDims(run.S2)
		if err != nil {
			return nil, err
		}
		out.DGEMM = append(out.DGEMM, dgemmJSON{
			System: run.System.Name,
			FS1:    run.S1.BestValue() / 1e9, FS2: run.S2.BestValue() / 1e9,
			S1Dims: d1.String(), S2Dims: d2.String(),
			TimeSec: run.Total.Seconds(),
		})
	}
	for _, run := range c.Triad {
		out.Triad = append(out.Triad, triadJSON{
			System: run.System.Name,
			DramS1: run.Peak(1, RegionDRAM),
			DramS2: run.Peak(run.System.Sockets, RegionDRAM),
			L3S1:   run.Peak(1, RegionL3),
			L3S2:   run.Peak(run.System.Sockets, RegionL3),
		})
	}
	for _, tbl := range c.Opt {
		for _, row := range append(append([]OptRow{}, tbl.Rows...), tbl.MinCountRows...) {
			out.Opt = append(out.Opt, optJSON{
				System: tbl.System, Technique: row.Technique,
				FS1: row.FS1, FS2: row.FS2,
				TimeSec: row.Time.Seconds(), Speedup: row.Speedup,
			})
		}
	}
	return json.MarshalIndent(out, "", "  ")
}
