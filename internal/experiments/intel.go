package experiments

import (
	"context"
	"fmt"

	"rooftune/internal/bench"
	"rooftune/internal/hw"
	"rooftune/internal/report"
	"rooftune/internal/units"
)

// IntelComparison reproduces §VI-A: Intel's tuning guide (Hu & Story)
// benchmarked square matrices only and reported m=n=k=1000 as optimal on
// a Silver 4110 at 559.93 GFLOP/s — 52.08% of the single-precision peak
// of Eq. 12. The paper contrasts that with running the same square
// configuration on the Gold 6132 (55.69% of peak) versus its autotuned
// non-square configuration (75.13%).
type IntelComparison struct {
	Silver4110Square    float64 // GFLOP/s, m=n=k=1000 on the 4110 (SP)
	Silver4110Peak      float64 // Eq. 12 SP peak
	Gold6132Square      float64 // GFLOP/s, m=n=k=1000 dual-socket
	Gold6132Peak        float64 // DP dual-socket peak
	Gold6132Autotuned   float64 // GFLOP/s, the Table IV dual-socket result
	Gold6132AutotunedAt string  // the winning dimensions
}

// RunIntelComparison measures the three data points of §VI-A on the
// simulated engines: a square-only evaluation on the Silver 4110, the
// same square configuration on the Gold 6132, and the autotuned optimum
// from the given Table IV run (pass the Gold 6132 entry of Table4Data).
func (r *Runner) RunIntelComparison(gold6132 *DGEMMRun) (*IntelComparison, error) {
	out := &IntelComparison{}

	// Intel's run: square 1000 on the Silver 4110 (single precision).
	silver := hw.Silver4110
	eng := bench.NewSimEngine(silver, r.Seed)
	eval := bench.NewEvaluator(eng.Clock, bench.DefaultBudget())
	o, err := eval.Evaluate(context.Background(), eng.DGEMMCase(1000, 1000, 1000, silver.Sockets), bench.None)
	if err != nil {
		return nil, fmt.Errorf("experiments: Silver 4110 square run: %w", err)
	}
	out.Silver4110Square = o.Mean / 1e9
	out.Silver4110Peak = silver.TheoreticalFlopsSP(silver.Sockets).GFLOPS()

	// The paper's counter-run: square 1000 on the Gold 6132, dual socket.
	if gold6132 == nil {
		return nil, fmt.Errorf("experiments: IntelComparison needs the Gold 6132 Table IV run")
	}
	g := gold6132.System
	eng2 := bench.NewSimEngine(g, r.Seed)
	eval2 := bench.NewEvaluator(eng2.Clock, bench.DefaultBudget())
	o2, err := eval2.Evaluate(context.Background(), eng2.DGEMMCase(1000, 1000, 1000, g.Sockets), bench.None)
	if err != nil {
		return nil, fmt.Errorf("experiments: Gold 6132 square run: %w", err)
	}
	out.Gold6132Square = o2.Mean / 1e9
	out.Gold6132Peak = g.TheoreticalFlops(g.Sockets).GFLOPS()
	out.Gold6132Autotuned = gold6132.S2.BestValue() / 1e9
	if d, err := BestDims(gold6132.S2); err == nil {
		out.Gold6132AutotunedAt = d.String()
	}
	return out, nil
}

// Render formats the comparison as a table.
func (c *IntelComparison) Render() *report.Table {
	t := report.NewTable("§VI-A: square-only tuning (Intel guide) vs. autotuned non-square",
		"Run", "GFLOP/s", "Peak", "Utilisation")
	t.AddRow("Silver 4110, m=n=k=1000 (SP, Intel's space)",
		fmt.Sprintf("%.2f", c.Silver4110Square),
		fmt.Sprintf("%.1f", c.Silver4110Peak),
		units.Percent(c.Silver4110Square, c.Silver4110Peak))
	t.AddRow("Gold 6132, m=n=k=1000 (DP, dual socket)",
		fmt.Sprintf("%.2f", c.Gold6132Square),
		fmt.Sprintf("%.1f", c.Gold6132Peak),
		units.Percent(c.Gold6132Square, c.Gold6132Peak))
	t.AddRow(fmt.Sprintf("Gold 6132, autotuned (%s)", c.Gold6132AutotunedAt),
		fmt.Sprintf("%.2f", c.Gold6132Autotuned),
		fmt.Sprintf("%.1f", c.Gold6132Peak),
		units.Percent(c.Gold6132Autotuned, c.Gold6132Peak))
	return t
}

// Fig2 renders the benchmarking-process diagram of the paper's Fig. 2 as
// ASCII art: the outer invocation loop, the inner iteration loop, and the
// four stop conditions. The code in internal/bench *is* this diagram; the
// rendering documents the correspondence.
func Fig2() string {
	return `Fig. 2: the autotuning benchmarking process
+--------------------------------------------------------------------+
| autotuner: for each configuration in the (possibly reversed) space |
|                                                                    |
|   +-- invocation loop (outer, default 10x) ---------------------+  |
|   | start benchmark program: init inputs, init matrices,        |  |
|   | pre-heat (one unmeasured kernel call)                       |  |
|   |                                                             |  |
|   |   +-- iteration loop (inner, max 200x) -------------------+ |  |
|   |   | t0 = gettimeofday(); kernel(); t1 = gettimeofday()    | |  |
|   |   | metric = work / (t1 - t0); Welford update (Eqs. 5-7)  | |  |
|   |   | stop 1: accumulated measured time >= timeout          | |  |
|   |   | stop 2: iteration count >= max count                  | |  |
|   |   | stop 3: 99% CI within +-1% of mean        ["C"]       | |  |
|   |   | stop 4: mean + marg < best, count >= min  ["Inner"]   | |  |
|   |   +--------------------------------------------------------+ |  |
|   |                                                             |  |
|   | invocation mean -> outer Welford                            |  |
|   | stop 4 (outer): outer mean + marg < best     ["Outer"]      |  |
|   +-------------------------------------------------------------+  |
|                                                                    |
| configuration mean = mean of invocation means; best = max          |
+--------------------------------------------------------------------+`
}
