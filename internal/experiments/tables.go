package experiments

import (
	"fmt"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/report"
	"rooftune/internal/units"
)

// Table1 renders the autotuner configuration (Table I).
func (r *Runner) Table1() *report.Table {
	b := bench.DefaultBudget()
	t := report.NewTable("Table I: Auto-tuner configuration for the experiments",
		"Invocations", "Iterations", "Timeout", "Error")
	t.AddRow(
		fmt.Sprintf("%d", b.Invocations),
		fmt.Sprintf("%d", b.MaxIterations),
		b.MaxTime.String(),
		fmt.Sprintf("%.0f", b.ErrorInverse),
	)
	t.AddNote("Error is the inverse relative CI half-width target: 100 -> ±1% of the mean at 99% confidence.")
	return t
}

// Table2 renders the hardware specifications (Table II).
func (r *Runner) Table2() *report.Table {
	t := report.NewTable("Table II: Hardware specification for the benchmarked systems",
		"System", "FreqCPU", "Cores", "AVXType", "AVXUnits", "FreqD", "ChannelsD", "L3Size", "Sockets")
	for _, s := range r.Systems {
		t.AddRow(
			s.Name,
			fmt.Sprintf("%.1fGHz", s.FreqGHz),
			fmt.Sprintf("%d", s.CoresPerSocket),
			s.Vector.String(),
			fmt.Sprintf("%d", s.FMAUnits),
			fmt.Sprintf("%.0fMHz", s.DRAMFreqMHz),
			fmt.Sprintf("%d", s.DRAMChannels),
			s.L3PerSocket.String(),
			fmt.Sprintf("%d", s.Sockets),
		)
	}
	t.AddNote("AVXUnits for the Broadwell systems is 2, the physically correct value implied by the paper's own Table III peaks (its Table II prints 1).")
	return t
}

// Table3 renders theoretical peaks via Eqs. 9-11 (Table III).
func (r *Runner) Table3() *report.Table {
	t := report.NewTable("Table III: Theoretical maximum DP performance and DRAM bandwidth",
		"System", "Ft", "Bt")
	for _, s := range r.Systems {
		t.AddRow(s.Name,
			fmt.Sprintf("%.1f GFLOP/s", s.TheoreticalFlops(1).GFLOPS()),
			fmt.Sprintf("%.3f GB/s", s.TheoreticalBandwidth(s.Sockets).GBps()),
		)
	}
	t.AddNote("Ft is per socket and Bt per node, matching the paper's own (inconsistent) Table III convention.")
	return t
}

// Table4Data runs the exhaustive Default search for every system and
// returns the per-system runs (shared by Tables IV and V and Fig. 3).
func (r *Runner) Table4Data() ([]*DGEMMRun, error) {
	var runs []*DGEMMRun
	for _, sys := range r.Systems {
		run, err := r.ExhaustiveDefault(sys)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// Table4 renders peak compute performance with utilisation (Table IV).
func Table4(runs []*DGEMMRun) *report.Table {
	t := report.NewTable("Table IV: Peak double-precision compute performance",
		"System", "FS1", "FS2")
	for _, run := range runs {
		ft1 := float64(run.System.TheoreticalFlops(1))
		ft2 := float64(run.System.TheoreticalFlops(run.System.Sockets))
		t.AddRow(run.System.Name,
			fmt.Sprintf("%.2f (%s)", run.S1.BestValue()/1e9, units.Percent(run.S1.BestValue(), ft1)),
			fmt.Sprintf("%.2f (%s)", run.S2.BestValue()/1e9, units.Percent(run.S2.BestValue(), ft2)),
		)
	}
	return t
}

// Table5 renders the winning dimensions (Table V).
func Table5(runs []*DGEMMRun) (*report.Table, error) {
	t := report.NewTable("Table V: Dimensions for the corresponding results from Table IV",
		"System", "FS1: n,m,k", "FS2: n,m,k")
	for _, run := range runs {
		d1, err := BestDims(run.S1)
		if err != nil {
			return nil, err
		}
		d2, err := BestDims(run.S2)
		if err != nil {
			return nil, err
		}
		t.AddRow(run.System.Name, d1.String(), d2.String())
	}
	return t, nil
}

// Table6Data runs the TRIAD campaign for every system.
func (r *Runner) Table6Data() ([]*TriadRun, error) {
	budget := bench.DefaultBudget().WithFlags(true, true, false)
	var runs []*TriadRun
	for _, sys := range r.Systems {
		run, err := r.RunTriad(sys, budget)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// Table6 renders peak memory bandwidth per subsystem (Table VI).
func Table6(runs []*TriadRun) *report.Table {
	t := report.NewTable("Table VI: Peak memory bandwidth per memory subsystem",
		"System", "B_DRAM,S1", "B_DRAM,S2", "B_L3,S1", "B_L3,S2")
	for _, run := range runs {
		sys := run.System
		bt1 := sys.TheoreticalBandwidth(1).GBps()
		bt2 := sys.TheoreticalBandwidth(sys.Sockets).GBps()
		d1 := run.Peak(1, RegionDRAM)
		d2 := run.Peak(sys.Sockets, RegionDRAM)
		t.AddRow(sys.Name,
			fmt.Sprintf("%.2f (%s)", d1, units.Percent(d1, bt1)),
			fmt.Sprintf("%.2f (%s)", d2, units.Percent(d2, bt2)),
			fmt.Sprintf("%.2f", run.Peak(1, RegionL3)),
			fmt.Sprintf("%.2f", run.Peak(sys.Sockets, RegionL3)),
		)
	}
	t.AddNote("DRAM percentages exceed 100%: residual L3 hits assist DRAM-resident sweeps, as the paper observes.")
	return t
}

// Table7 renders the hand-tuned iteration counts (Table VII).
func (r *Runner) Table7() *report.Table {
	t := report.NewTable("Table VII: Iteration count for the hand-tuned examples",
		"System", "Iter T", "Iter A")
	for _, sys := range r.Systems {
		ht, ok := core.HandTuned[sys.Name]
		if !ok {
			continue
		}
		t.AddRow(sys.Name, fmt.Sprintf("%d", ht.Time), fmt.Sprintf("%d", ht.Accuracy))
	}
	return t
}

// SystemByName finds a runner system.
func (r *Runner) SystemByName(name string) (hw.System, error) {
	for _, s := range r.Systems {
		if s.Name == name {
			return s, nil
		}
	}
	return hw.System{}, fmt.Errorf("experiments: system %q not in runner", name)
}
