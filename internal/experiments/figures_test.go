package experiments

import (
	"strings"
	"testing"
)

func TestFiguresStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign data needed")
	}
	r := New()
	dgemm, err := r.Table4Data()
	if err != nil {
		t.Fatal(err)
	}
	triad, err := r.Table6Data()
	if err != nil {
		t.Fatal(err)
	}

	f3 := Fig3(dgemm)
	if len(f3.Series) != 4 {
		t.Fatalf("Fig3 series: %d", len(f3.Series))
	}
	for _, s := range f3.Series {
		if len(s.Y) != 4 || len(s.Labels) != 4 {
			t.Fatalf("Fig3 series %q shape: %d/%d", s.Name, len(s.Y), len(s.Labels))
		}
	}
	// Measured must sit below theoretical for every system (compute).
	for i := range f3.Series[0].Y {
		if f3.Series[0].Y[i] >= f3.Series[1].Y[i] {
			t.Errorf("Fig3: measured S1 %.1f >= theoretical %.1f at %s",
				f3.Series[0].Y[i], f3.Series[1].Y[i], f3.Series[0].Labels[i])
		}
	}

	f4 := Fig4(triad)
	if len(f4.Series) != 6 {
		t.Fatalf("Fig4 series: %d", len(f4.Series))
	}
	// Measured DRAM must sit above theoretical (the paper's Table VI).
	for i := range f4.Series[0].Y {
		if f4.Series[0].Y[i] <= f4.Series[1].Y[i] {
			t.Errorf("Fig4: DRAM S1 %.1f <= theoretical %.1f at %s",
				f4.Series[0].Y[i], f4.Series[1].Y[i], f4.Series[0].Labels[i])
		}
	}

	m, err := Fig1(dgemm[3], triad[3])
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Memory) != 4 || len(m.Compute) != 2 {
		t.Fatalf("Fig1 must have 4 memory + 2 compute ceilings: %d/%d",
			len(m.Memory), len(m.Compute))
	}
	ascii := m.RenderASCII(72, 18)
	if !strings.Contains(ascii, "DRAM") || !strings.Contains(ascii, "TRIAD") {
		t.Fatal("Fig1 render incomplete")
	}
	if _, err := Fig1(nil, nil); err == nil {
		t.Fatal("Fig1 with nil runs must error")
	}
}

func TestFig5Structure(t *testing.T) {
	tables := []*OptTable{
		{System: "A", Rows: []OptRow{
			{Technique: "Default", Speedup: 1},
			{Technique: "Confidence", Speedup: 3.3},
			{Technique: "C+I+Outer", Speedup: 64},
		}},
		{System: "B", Rows: []OptRow{
			{Technique: "Confidence", Speedup: 5},
		}},
	}
	f := Fig5(tables)
	if len(f.Series) != 2 {
		t.Fatalf("series: %d", len(f.Series))
	}
	// 8 techniques on the label axis; missing ones are zero.
	if len(f.Series[0].Labels) != 8 {
		t.Fatalf("labels: %d", len(f.Series[0].Labels))
	}
	foundC, foundCIO := false, false
	for i, l := range f.Series[0].Labels {
		switch l {
		case "Confidence":
			foundC = f.Series[0].Y[i] == 3.3 && f.Series[1].Y[i] == 5
		case "C+I+Outer":
			foundCIO = f.Series[0].Y[i] == 64 && f.Series[1].Y[i] == 0
		}
	}
	if !foundC || !foundCIO {
		t.Fatalf("speedup placement wrong: %+v", f.Series)
	}
}

func TestPaperUtilisationTranscription(t *testing.T) {
	// Cross-check our transcription of the paper: Table IV's GFLOP/s and
	// utilisation percentages must agree with Table III's peaks.
	r := New()
	for _, sys := range r.Systems {
		p4 := PaperTable4[sys.Name]
		util := PaperTable4Util[sys.Name]
		ft1 := sys.TheoreticalFlops(1).GFLOPS()
		ft2 := sys.TheoreticalFlops(sys.Sockets).GFLOPS()
		if got := 100 * p4.FS1 / ft1; got < util.S1-0.02 || got > util.S1+0.02 {
			t.Errorf("%s: FS1/Ft = %.2f%%, paper prints %.2f%%", sys.Name, got, util.S1)
		}
		if got := 100 * p4.FS2 / ft2; got < util.S2-0.02 || got > util.S2+0.02 {
			t.Errorf("%s: FS2/Ft = %.2f%%, paper prints %.2f%%", sys.Name, got, util.S2)
		}
	}
}
