package experiments

import "rooftune/internal/core"

// This file records the paper's published numbers, used two ways: the
// test suite asserts our reproductions fall within tolerance of them, and
// EXPERIMENTS.md prints paper-vs-measured side by side.

// PaperTable3 holds theoretical peaks: Ft (GFLOP/s, single socket... the
// paper's Table III lists the per-socket figure for compute and the
// per-socket DRAM bandwidth) and Bt (GB/s).
var PaperTable3 = map[string]struct{ Ft, Bt float64 }{
	"2650v4":    {422.4, 76.8},
	"2695v4":    {604.8, 76.8},
	"Gold 6132": {1164.8, 127.968},
	"Gold 6148": {1536, 127.968},
}

// PaperTable4 holds measured peak DGEMM performance in GFLOP/s for
// single- and dual-socket configurations.
var PaperTable4 = map[string]struct{ FS1, FS2 float64 }{
	"2650v4":    {408.71, 773.51},
	"2695v4":    {593.06, 1112.08},
	"Gold 6132": {1015.68, 1750.24},
	"Gold 6148": {1422.24, 2407.33},
}

// PaperTable4Util holds the corresponding utilisation percentages.
var PaperTable4Util = map[string]struct{ S1, S2 float64 }{
	"2650v4":    {96.76, 91.56},
	"2695v4":    {98.06, 91.93},
	"Gold 6132": {87.20, 75.13},
	"Gold 6148": {92.59, 78.36},
}

// PaperTable5 holds the optimal dimensions found for Table IV.
var PaperTable5 = map[string]struct{ S1, S2 core.Dims }{
	"2650v4":    {core.Dims{N: 1000, M: 4096, K: 128}, core.Dims{N: 2000, M: 2048, K: 64}},
	"2695v4":    {core.Dims{N: 2000, M: 4096, K: 128}, core.Dims{N: 4000, M: 2048, K: 128}},
	"Gold 6132": {core.Dims{N: 1000, M: 4096, K: 128}, core.Dims{N: 4000, M: 512, K: 128}},
	"Gold 6148": {core.Dims{N: 4000, M: 512, K: 128}, core.Dims{N: 4000, M: 1024, K: 128}},
}

// PaperTable6 holds peak memory bandwidth in GB/s: DRAM and L3 for
// single- and dual-socket configurations.
var PaperTable6 = map[string]struct{ DramS1, DramS2, L3S1, L3S2 float64 }{
	"2650v4":    {40.42, 80.65, 256.07, 452.05},
	"2695v4":    {43.29, 76.32, 371.41, 661.68},
	"Gold 6132": {68.32, 132.18, 422.87, 814.82},
	"Gold 6148": {74.16, 139.80, 547.11, 1000.10},
}

// PaperOptRow is one published row of Tables VIII-XI.
type PaperOptRow struct {
	FS1, FS2 float64 // GFLOP/s
	TimeSec  float64
	Speedup  float64
}

// PaperTablesOpt holds the optimisation-comparison tables, keyed by
// system then technique. The 2695v4 min-count=100 block is keyed with a
// " (min100)" suffix.
var PaperTablesOpt = map[string]map[string]PaperOptRow{
	"2650v4": {
		"Default":             {408.47, 776.02, 3435.73, 1},
		"Hand-tuned Time":     {404.92, 765.58, 30.12, 114.07},
		"Hand-tuned Accuracy": {407.29, 772.53, 56.45, 60.86},
		"Single":              {398.56, 719.72, 15.34, 223.91},
		"Confidence":          {407.26, 775.24, 1039.03, 3.31},
		"C+Inner":             {406.96, 775.65, 170.99, 20.09},
		"C+Inner+R":           {406.99, 774.92, 344.92, 9.96},
		"C+I+Outer":           {407.57, 771.19, 29.53, 116.33},
		"C+I+O+R":             {406.84, 775.08, 208.61, 16.47},
	},
	"2695v4": {
		"Default":             {590.47, 1089.00, 2531.58, 1},
		"Hand-tuned Time":     {529.64, 872.70, 37.55, 67.42},
		"Hand-tuned Accuracy": {581.87, 1064.24, 237.84, 10.64},
		"Single":              {436.35, 634.16, 19.24, 131.58},
		"Confidence":          {587.26, 1080.56, 882.14, 2.87},
		"C+Inner":             {467.48, 931.81, 201.34, 12.57},
		"C+Inner+R":           {550.95, 1018.42, 338.02, 7.49},
		"C+I+Outer":           {436.40, 1011.02, 35.94, 70.44},
		"C+I+O+R":             {546.77, 1013.77, 174.81, 14.48},
		"C+Inner (min100)":    {587.10, 1064.12, 845.43, 2.99},
		"C+Inner+R (min100)":  {587.05, 1087.98, 887.88, 2.85},
		"C+I+Outer (min100)":  {587.11, 1070.98, 157.13, 16.11},
		"C+I+O+R (min100)":    {586.77, 1089.67, 282.26, 8.97},
	},
	"Gold 6132": {
		"Default":             {1009.56, 1756.06, 1696.37, 1},
		"Hand-tuned Time":     {992.36, 1740.20, 27.19, 62.39},
		"Hand-tuned Accuracy": {1005.34, 1744.63, 207.23, 8.19},
		"Single":              {919.83, 1401.98, 12.78, 132.74},
		"Confidence":          {1007.89, 1748.46, 325.34, 5.21},
		"C+Inner":             {1007.27, 1747.95, 139.09, 12.20},
		"C+Inner+R":           {1004.44, 1745.84, 160.50, 10.57},
		"C+I+Outer":           {1006.51, 1747.42, 26.43, 64.17},
		"C+I+O+R":             {1002.06, 1745.60, 54.26, 31.27},
	},
	"Gold 6148": {
		"Default":             {1408.14, 2373.35, 1409.28, 1},
		"Hand-tuned Time":     {1342.37, 2336.03, 32.46, 43.42},
		"Hand-tuned Accuracy": {1405.02, 2363.48, 109.59, 12.86},
		"Single":              {1221.08, 1957.92, 13.86, 101.68},
		"Confidence":          {1403.46, 2370.84, 288.84, 4.88},
		"C+Inner":             {1405.47, 2368.21, 144.08, 9.78},
		"C+Inner+R":           {1402.60, 2369.58, 161.81, 8.71},
		"C+I+Outer":           {1403.92, 2373.57, 32.43, 43.45},
		"C+I+O+R":             {1403.13, 2372.15, 52.49, 26.85},
	},
}

// PaperIntelComparison records §VI-A: Intel's published Silver 4110
// result and the paper's square-vs-autotuned Gold 6132 comparison.
var PaperIntelComparison = struct {
	Silver4110SquareGFLOPS  float64 // Hu & Story's best (SP, m=n=k=1000)
	Silver4110SPPeak        float64 // Eq. 12
	Silver4110UtilPct       float64
	Gold6132SquareGFLOPS    float64 // paper's run of m=n=k=1000, dual socket
	Gold6132SquareUtilPct   float64
	Gold6132AutotunedGFLOPS float64
	Gold6132AutotunedPct    float64
}{
	Silver4110SquareGFLOPS:  559.93,
	Silver4110SPPeak:        1075.2,
	Silver4110UtilPct:       52.08,
	Gold6132SquareGFLOPS:    1297.48,
	Gold6132SquareUtilPct:   55.69,
	Gold6132AutotunedGFLOPS: 1750.24,
	Gold6132AutotunedPct:    75.13,
}
