package experiments

import (
	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/units"
)

func bwOf(run *TriadRun, sockets int, region TriadRegion) units.Bandwidth {
	return units.GBps(run.Peak(sockets, region))
}

func flopsOf(res *core.Result) units.Flops {
	return units.Flops(res.BestValue())
}

// flopsFromBandwidth places the TRIAD point on the roofline: at I = 1/12,
// attainable performance is B * I (memory-bound).
func flopsFromBandwidth(b units.Bandwidth) units.Flops {
	return units.Flops(float64(b) / 12)
}

func dgemmIntensity(d core.Dims) units.Intensity {
	return units.DGEMMIntensity(d.N, d.M, d.K)
}

// Outcomes extracts the outcomes of a result (test helper shared across
// experiment tests).
func Outcomes(res *core.Result) []*bench.Outcome { return res.All }
