package experiments

import (
	"math"
	"strings"
	"testing"

	"rooftune/internal/core"
)

// The tests in this file assert the paper-reproduction claims end to end:
// full searches through the real tuner against the calibrated engines.
// They are the repository's acceptance suite.

func TestTable4And5Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full exhaustive searches")
	}
	r := New()
	runs, err := r.Table4Data()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("%d systems", len(runs))
	}
	for _, run := range runs {
		name := run.System.Name
		paper4 := PaperTable4[name]
		paper5 := PaperTable5[name]

		// Peaks within 1.5% of Table IV.
		fs1 := run.S1.BestValue() / 1e9
		fs2 := run.S2.BestValue() / 1e9
		if math.Abs(fs1-paper4.FS1)/paper4.FS1 > 0.015 {
			t.Errorf("%s FS1 = %.2f, paper %.2f", name, fs1, paper4.FS1)
		}
		if math.Abs(fs2-paper4.FS2)/paper4.FS2 > 0.02 {
			t.Errorf("%s FS2 = %.2f, paper %.2f", name, fs2, paper4.FS2)
		}

		// Exact winning dimensions of Table V.
		d1, err := BestDims(run.S1)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := BestDims(run.S2)
		if err != nil {
			t.Fatal(err)
		}
		if d1 != paper5.S1 {
			t.Errorf("%s S1 dims = %v, paper %v", name, d1, paper5.S1)
		}
		if d2 != paper5.S2 {
			t.Errorf("%s S2 dims = %v, paper %v", name, d2, paper5.S2)
		}

		// The paper's qualitative findings.
		ft1 := run.System.TheoreticalFlops(1).GFLOPS()
		ft2 := run.System.TheoreticalFlops(run.System.Sockets).GFLOPS()
		if fs1/ft1 <= fs2/ft2 {
			t.Errorf("%s: single-socket utilisation must exceed dual-socket", name)
		}
	}
	// AVX2-era systems show higher utilisation than AVX-512 ones (§VI-A).
	util := func(i int) float64 {
		return runs[i].S1.BestValue() / float64(runs[i].System.TheoreticalFlops(1))
	}
	if !(util(0) > util(2) && util(1) > util(2) && util(0) > util(3)) {
		t.Error("AVX2 systems must utilise better than AVX-512 systems")
	}
}

func TestTable6Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full TRIAD campaigns")
	}
	r := New()
	runs, err := r.Table6Data()
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range runs {
		name := run.System.Name
		paper := PaperTable6[name]
		check := func(label string, got, want, tol float64) {
			if math.Abs(got-want)/want > tol {
				t.Errorf("%s %s = %.2f GB/s, paper %.2f", name, label, got, want)
			}
		}
		check("DRAM S1", run.Peak(1, RegionDRAM), paper.DramS1, 0.02)
		check("DRAM S2", run.Peak(run.System.Sockets, RegionDRAM), paper.DramS2, 0.02)
		// L3 means include loop overhead and warm-up: 3% tolerance.
		check("L3 S1", run.Peak(1, RegionL3), paper.L3S1, 0.03)
		check("L3 S2", run.Peak(run.System.Sockets, RegionL3), paper.L3S2, 0.03)

		// The paper's headline: measured DRAM beats theoretical.
		if run.Peak(1, RegionDRAM) <= run.System.TheoreticalBandwidth(1).GBps()*0.99 {
			t.Errorf("%s: DRAM S1 should be at or above theoretical", name)
		}
	}
}

func TestOptimizationTableStableSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("nine full searches")
	}
	r := New()
	tbl, err := r.OptimizationTable("Gold 6148")
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]OptRow{}
	for _, row := range tbl.Rows {
		rows[row.Technique] = row
	}
	def := rows["Default"]
	paper5 := PaperTable5["Gold 6148"]

	// Every CI-based technique matches Default within the paper's 2%
	// and finds the exact optimum configuration.
	for _, name := range []string{"Confidence", "C+Inner", "C+Inner+R", "C+I+Outer", "C+I+O+R"} {
		row := rows[name]
		if e := core.RelativeError(row.FS1, def.FS1); e > 0.02 {
			t.Errorf("%s FS1 error %.3f > 2%%", name, e)
		}
		if e := core.RelativeError(row.FS2, def.FS2); e > 0.02 {
			t.Errorf("%s FS2 error %.3f > 2%%", name, e)
		}
		if row.S1Dims != paper5.S1 || row.S2Dims != paper5.S2 {
			t.Errorf("%s found %v/%v, want %v/%v", name, row.S1Dims, row.S2Dims, paper5.S1, paper5.S2)
		}
		if row.Speedup <= 1 {
			t.Errorf("%s speedup %.2f must exceed 1", name, row.Speedup)
		}
	}

	// Speedup ordering of the paper: C < C+I < C+I+O, reversal slower.
	if !(rows["Confidence"].Speedup < rows["C+Inner"].Speedup &&
		rows["C+Inner"].Speedup < rows["C+I+Outer"].Speedup) {
		t.Errorf("speedup ordering violated: C %.1f, C+I %.1f, C+I+O %.1f",
			rows["Confidence"].Speedup, rows["C+Inner"].Speedup, rows["C+I+Outer"].Speedup)
	}
	if rows["C+Inner+R"].Speedup >= rows["C+Inner"].Speedup {
		t.Error("reversal must slow C+Inner down")
	}
	if rows["C+I+O+R"].Speedup >= rows["C+I+Outer"].Speedup {
		t.Error("reversal must slow C+I+Outer down")
	}
	// Single is fast but inaccurate relative to the adaptive techniques.
	if rows["Single"].Speedup < rows["C+I+Outer"].Speedup {
		t.Error("Single must be the fastest")
	}
}

func TestMinCountAnomaly2695v4(t *testing.T) {
	if testing.Short() {
		t.Skip("thirteen full searches")
	}
	r := New()
	tbl, err := r.OptimizationTable("2695v4")
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]OptRow{}
	for _, row := range append(append([]OptRow{}, tbl.Rows...), tbl.MinCountRows...) {
		rows[row.Technique] = row
	}
	def := rows["Default"]
	paper5 := PaperTable5["2695v4"]

	// §VI-C: with min_count=2, the Inner-bound techniques degrade on
	// this noisy system (the paper's C+Inner lost 21% on FS1).
	deg := core.RelativeError(rows["C+Inner"].FS1, def.FS1)
	if deg < 0.02 {
		t.Errorf("anomaly missing: C+Inner FS1 within %.3f of Default", deg)
	}

	// With min_count=100 every technique recovers the exact optimum
	// within 2% (the paper's remedy).
	for _, name := range []string{"C+Inner (min100)", "C+Inner+R (min100)",
		"C+I+Outer (min100)", "C+I+O+R (min100)"} {
		row, ok := rows[name]
		if !ok {
			t.Fatalf("missing min100 row %q", name)
		}
		if e := core.RelativeError(row.FS1, def.FS1); e > 0.02 {
			t.Errorf("%s FS1 error %.3f > 2%%", name, e)
		}
		if row.S1Dims != paper5.S1 || row.S2Dims != paper5.S2 {
			t.Errorf("%s found %v/%v, want Table V optima", name, row.S1Dims, row.S2Dims)
		}
		if row.Speedup <= 1 {
			t.Errorf("%s speedup %.2f must still exceed 1", name, row.Speedup)
		}
	}
	// min100 must cost more time than min2 for the same flags.
	if rows["C+Inner (min100)"].Time <= rows["C+Inner"].Time {
		t.Error("min_count=100 must be slower than min_count=2")
	}
}

func TestRelativeErrorVsDefaultHelper(t *testing.T) {
	tbl := &OptTable{System: "x", Rows: []OptRow{
		{Technique: "Default", FS1: 100, FS2: 200},
		{Technique: "C+Inner", FS1: 99, FS2: 196},
	}}
	e, err := tbl.RelativeErrorVsDefault("C+Inner")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-0.02) > 1e-9 {
		t.Fatalf("worst error = %v, want 0.02", e)
	}
	if _, err := tbl.RelativeErrorVsDefault("nope"); err == nil {
		t.Fatal("unknown technique must error")
	}
}

func TestIntelComparisonReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search on the Gold 6132")
	}
	r := New()
	g, err := r.ExhaustiveDefault(r.Systems[2])
	if err != nil {
		t.Fatal(err)
	}
	ic, err := r.RunIntelComparison(g)
	if err != nil {
		t.Fatal(err)
	}
	p := PaperIntelComparison
	if math.Abs(ic.Silver4110Square-p.Silver4110SquareGFLOPS)/p.Silver4110SquareGFLOPS > 0.02 {
		t.Errorf("Silver 4110 square = %.2f, paper %.2f", ic.Silver4110Square, p.Silver4110SquareGFLOPS)
	}
	if math.Abs(ic.Silver4110Peak-p.Silver4110SPPeak) > 1e-6 {
		t.Errorf("Eq. 12 peak = %.1f, want %.1f", ic.Silver4110Peak, p.Silver4110SPPeak)
	}
	if math.Abs(ic.Gold6132Square-p.Gold6132SquareGFLOPS)/p.Gold6132SquareGFLOPS > 0.02 {
		t.Errorf("Gold 6132 square = %.2f, paper %.2f", ic.Gold6132Square, p.Gold6132SquareGFLOPS)
	}
	// The autotuned configuration must beat the square run by the
	// paper's margin (75.13% vs 55.69% of peak).
	if ic.Gold6132Autotuned <= ic.Gold6132Square*1.25 {
		t.Errorf("autotuned %.2f should beat square %.2f by >25%%",
			ic.Gold6132Autotuned, ic.Gold6132Square)
	}
	out := ic.Render().Text()
	if !strings.Contains(out, "Silver 4110") {
		t.Error("render")
	}
}

func TestFig6DataShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := New()
	pts, err := r.Fig6Data("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(r.Space) {
		t.Fatalf("%d points for %d configs", len(pts), len(r.Space))
	}
	// Work-sorted; iteration cost must grow ~monotonically with work
	// (Fig. 6's "time consumption increases exponentially" observation —
	// compare decade averages to tolerate noise).
	first, last := 0.0, 0.0
	for i := 0; i < 20; i++ {
		first += pts[i].SecPerIter
		last += pts[len(pts)-1-i].SecPerIter
	}
	if last < first*50 {
		t.Errorf("cost must grow strongly with size: first-20 avg %.3g, last-20 avg %.3g", first/20, last/20)
	}
	// Performance peaks are "spread out over the entire spectrum": the
	// best config must NOT be the largest one.
	bestIdx := 0
	for i, p := range pts {
		if p.GFLOPS > pts[bestIdx].GFLOPS {
			bestIdx = i
		}
	}
	if bestIdx > len(pts)-10 {
		t.Error("optimum should not sit at the extreme end of the size spectrum")
	}
}
