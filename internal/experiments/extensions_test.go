package experiments

import (
	"strings"
	"testing"
)

func TestConstraintStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("twelve searches")
	}
	r := New()
	rows, err := r.ConstraintStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d systems", len(rows))
	}
	for _, row := range rows {
		// §IV-A: non-square beats square on every system, significantly.
		if row.Full <= row.Square*1.05 {
			t.Errorf("%s: full %.2f should beat square %.2f by >5%%",
				row.System, row.Full, row.Square)
		}
		// m=n sits between: more freedom than square, less than full.
		if row.MNConstrained < row.Square*0.999 {
			t.Errorf("%s: m=n (%.2f) must not lose to m=n=k (%.2f)",
				row.System, row.MNConstrained, row.Square)
		}
		if row.MNConstrained > row.Full*1.001 {
			t.Errorf("%s: m=n (%.2f) cannot beat unconstrained (%.2f)",
				row.System, row.MNConstrained, row.Full)
		}
		if row.FullDims.N == row.FullDims.M && row.FullDims.M == row.FullDims.K {
			t.Errorf("%s: unconstrained optimum is square (%v)?", row.System, row.FullDims)
		}
	}
	out := RenderConstraintStudy(rows).Text()
	if !strings.Contains(out, "square loss") {
		t.Fatal("render")
	}
}

func TestTable6Extended(t *testing.T) {
	if testing.Short() {
		t.Skip("TRIAD campaigns")
	}
	r := New()
	runs, err := r.Table6Data()
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range runs {
		l1 := run.Peak(1, RegionL1)
		l2 := run.Peak(1, RegionL2)
		l3 := run.Peak(1, RegionL3)
		dram := run.Peak(1, RegionDRAM)
		if !(l2 > l3 && l3 > dram) {
			t.Errorf("%s: hierarchy not ordered: L2 %.0f L3 %.0f DRAM %.0f",
				run.System.Name, l2, l3, dram)
		}
		// L1 working sets are so small that one pass completes under the
		// gettimeofday resolution: the measurement clips at W/1µs. This
		// is the honest reason the paper stops at L3 ("lower levels are
		// outside the scope of this technique", §IV-B).
		if l1 <= dram {
			t.Errorf("%s: L1 measurement %.0f must still beat DRAM", run.System.Name, l1)
		}
		wL1 := float64(run.System.L1PerCore) * float64(run.System.Cores(1))
		quantFloor := wL1 / 1e-6 / 1e9 // largest L1-resident grid point over 1µs
		if l1 > quantFloor*1.3 {
			t.Errorf("%s: L1 %.0f GB/s exceeds the gettimeofday quantisation ceiling %.0f",
				run.System.Name, l1, quantFloor*1.3)
		}
	}
	out := Table6Extended(runs).Text()
	for _, frag := range []string{"B_L1,S1", "B_L2,S1", "2650v4"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("extended table missing %q:\n%s", frag, out)
		}
	}
}

func TestSecondChanceStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("two full searches on the 2695v4")
	}
	r := New()
	row, err := r.SecondChanceStudy()
	if err != nil {
		t.Fatal(err)
	}
	// The plain min_count=2 run is the anomaly: degraded result.
	// The second-chance pass must recover performance close to Table IV
	// (593.06 GFLOP/s) and find the exact Table V configuration.
	if row.FS1Fixed < row.FS1 {
		t.Fatalf("second chance made things worse: %.2f -> %.2f", row.FS1, row.FS1Fixed)
	}
	want := PaperTable5["2695v4"].S1
	if row.DimsFixed != want {
		t.Errorf("second chance found %v, want %v", row.DimsFixed, want)
	}
	if row.FS1Fixed < PaperTable4["2695v4"].FS1*0.97 {
		t.Errorf("second chance FS1 %.2f too far below Table IV %.2f",
			row.FS1Fixed, PaperTable4["2695v4"].FS1)
	}
	out := row.Render().Text()
	if !strings.Contains(out, "second chance") {
		t.Fatal("render")
	}
}

func TestGenerateMarkdown(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	r := New()
	md, err := r.GenerateMarkdown()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"# EXPERIMENTS", "Table I", "Table III", "Tables IV & V",
		"Table VI", "Table VIII", "Fig. 1", "Fig. 6",
		"min_count", "Intel", "2695v4",
	} {
		if !strings.Contains(md, frag) {
			t.Errorf("EXPERIMENTS.md missing %q", frag)
		}
	}
	if len(md) < 10000 {
		t.Fatalf("document suspiciously short: %d bytes", len(md))
	}
}

func TestDistributionStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full default invocation sets")
	}
	r := New()
	rows, err := r.DistributionStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d systems", len(rows))
	}
	nonNormal := 0
	for _, row := range rows {
		if row.Samples < 500 {
			t.Errorf("%s: only %d samples", row.System, row.Samples)
		}
		// Runtime distributions are right-skewed (spikes lengthen, never
		// shorten, an iteration).
		if row.Skewness < 0 {
			t.Errorf("%s: skewness %.2f, want positive", row.System, row.Skewness)
		}
		if row.NonNormal {
			nonNormal++
		}
		if row.ESS <= 0 || row.ESS > float64(row.Samples) {
			t.Errorf("%s: ESS %.0f out of range", row.System, row.ESS)
		}
	}
	// "the distribution is usually non-normal" (§III-C3).
	if nonNormal < 3 {
		t.Errorf("only %d of 4 systems non-normal; paper says 'usually'", nonNormal)
	}
	out := RenderDistributionStudy(rows).Text()
	if !strings.Contains(out, "normal?") {
		t.Fatal("render")
	}
}
