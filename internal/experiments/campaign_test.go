package experiments

import (
	"encoding/json"
	"testing"
)

func TestCampaignParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full campaigns")
	}
	r := New()
	serial, err := r.RunCampaign(false)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := r.RunCampaign(true)
	if err != nil {
		t.Fatal(err)
	}
	// Engines and noise streams are per-system and hash-derived, so the
	// parallel campaign must be bit-identical to the serial one.
	for i := range serial.DGEMM {
		s, p := serial.DGEMM[i], parallel.DGEMM[i]
		if s.S1.BestValue() != p.S1.BestValue() || s.S2.BestValue() != p.S2.BestValue() {
			t.Errorf("%s: parallel DGEMM diverged", s.System.Name)
		}
		if s.Total != p.Total {
			t.Errorf("%s: virtual time diverged: %v vs %v", s.System.Name, s.Total, p.Total)
		}
	}
	for i := range serial.Opt {
		s, p := serial.Opt[i], parallel.Opt[i]
		for j := range s.Rows {
			if s.Rows[j].FS1 != p.Rows[j].FS1 || s.Rows[j].Time != p.Rows[j].Time {
				t.Errorf("%s %s: parallel opt row diverged", s.System, s.Rows[j].Technique)
			}
		}
	}
	if serial.Intel == nil || parallel.Intel == nil {
		t.Fatal("Intel comparison missing")
	}
}

func TestCampaignJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	r := New()
	c, err := r.RunCampaign(true)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Seed  uint64 `json:"seed"`
		DGEMM []struct {
			System string  `json:"system"`
			FS1    float64 `json:"fs1_gflops"`
			S1Dims string  `json:"s1_dims"`
		} `json:"dgemm"`
		Triad []struct {
			DramS1 float64 `json:"dram_s1_gbps"`
		} `json:"triad"`
		Opt []struct {
			Technique string  `json:"technique"`
			Speedup   float64 `json:"speedup"`
		} `json:"optimizations"`
	}
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Seed != DefaultSeed || len(decoded.DGEMM) != 4 || len(decoded.Triad) != 4 {
		t.Fatalf("decoded header: %+v", decoded)
	}
	if decoded.DGEMM[0].System != "2650v4" || decoded.DGEMM[0].S1Dims != "1000,4096,128" {
		t.Fatalf("dgemm[0]: %+v", decoded.DGEMM[0])
	}
	// 9 techniques x 4 systems + 4 min100 rows on the 2695v4.
	if len(decoded.Opt) != 9*4+4 {
		t.Fatalf("opt rows: %d", len(decoded.Opt))
	}
}
