package experiments

import (
	"context"
	"fmt"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/report"
	"rooftune/internal/units"
)

// ConstraintStudyRow summarises one system's §IV-A constraint comparison:
// the best achievable performance when the search space is constrained to
// square matrices (Intel's guide), to m = n, and unconstrained.
type ConstraintStudyRow struct {
	System        string
	Square        float64 // GFLOP/s, m=n=k space
	SquareDims    core.Dims
	MNConstrained float64 // GFLOP/s, m=n space
	MNDims        core.Dims
	Full          float64 // GFLOP/s, union space
	FullDims      core.Dims
}

// ConstraintStudy reproduces the paper's constraint-specification
// experiment (§IV-A): "in most cases non-square matrices yield
// significantly higher performance compared to square matrices". Each
// space is searched exhaustively with the C+I+O technique on the
// single-socket configuration.
func (r *Runner) ConstraintStudy() ([]ConstraintStudyRow, error) {
	budget := bench.DefaultBudget().WithFlags(true, true, true)
	spaces := []struct {
		name  string
		space []core.Dims
	}{
		{"square", core.SquareDGEMMSpace()},
		{"m=n", core.ConstrainedMNSpace()},
		{"full", r.Space},
	}
	var rows []ConstraintStudyRow
	for _, sys := range r.Systems {
		row := ConstraintStudyRow{System: sys.Name}
		for _, sp := range spaces {
			eng := bench.NewSimEngine(sys, r.Seed)
			tuner := core.NewTuner(eng.Clock, budget, core.OrderForward)
			res, err := tuner.Run(context.Background(), DGEMMCases(eng, sp.space, 1))
			if err != nil {
				return nil, fmt.Errorf("experiments: constraint study %s/%s: %w", sys.Name, sp.name, err)
			}
			d, err := BestDims(res)
			if err != nil {
				return nil, err
			}
			v := res.BestValue() / 1e9
			switch sp.name {
			case "square":
				row.Square, row.SquareDims = v, d
			case "m=n":
				row.MNConstrained, row.MNDims = v, d
			default:
				row.Full, row.FullDims = v, d
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderConstraintStudy formats the study as a table.
func RenderConstraintStudy(rows []ConstraintStudyRow) *report.Table {
	t := report.NewTable("§IV-A constraint study: best GFLOP/s per search-space constraint (single socket)",
		"System", "m=n=k (square)", "m=n", "unconstrained", "square loss")
	for _, row := range rows {
		t.AddRow(row.System,
			fmt.Sprintf("%.2f @ %v", row.Square, row.SquareDims),
			fmt.Sprintf("%.2f @ %v", row.MNConstrained, row.MNDims),
			fmt.Sprintf("%.2f @ %v", row.Full, row.FullDims),
			units.Percent(row.Full-row.Square, row.Full),
		)
	}
	t.AddNote("Non-square optima beat the square constraint on every system (§IV-A).")
	return t
}

// Table6Extended adds the paper's §VII future-work rows to Table VI: L2
// and L1 cache bandwidth measured by the same TRIAD sweep at smaller
// working sets.
func Table6Extended(runs []*TriadRun) *report.Table {
	t := report.NewTable("Table VI (extended): peak bandwidth incl. L1/L2 (future work, §VII)",
		"System", "B_L1,S1", "B_L2,S1", "B_L3,S1", "B_DRAM,S1")
	for _, run := range runs {
		t.AddRow(run.System.Name,
			fmt.Sprintf("%.2f", run.Peak(1, RegionL1)),
			fmt.Sprintf("%.2f", run.Peak(1, RegionL2)),
			fmt.Sprintf("%.2f", run.Peak(1, RegionL3)),
			fmt.Sprintf("%.2f", run.Peak(1, RegionDRAM)),
		)
	}
	t.AddNote("L1/L2 figures are model extrapolations (no published calibration data).")
	t.AddNote("L1 readings clip at the gettimeofday resolution: one pass over an L1-sized set completes in under a microsecond — the reason the paper stops at L3 (§IV-B).")
	return t
}

// SecondChanceStudyRow records the outcome of applying the §VII
// late-bloomer remedy to the 2695v4's min_count anomaly.
type SecondChanceStudyRow struct {
	Technique string
	FS1       float64 // GFLOP/s found by the plain technique
	FS1Fixed  float64 // GFLOP/s after the second-chance pass
	Dims      core.Dims
	DimsFixed core.Dims
	TimeSec   float64
	FixedSec  float64
	Promoted  bool
}

// SecondChanceStudy runs C+Inner with min_count=2 on the 2695v4 — the
// configuration the paper shows failing (§VI-C) — with and without the
// second-chance pass, demonstrating that the late-bloomer remedy recovers
// the true optimum at a fraction of the min_count=100 cost.
func (r *Runner) SecondChanceStudy() (*SecondChanceStudyRow, error) {
	sys, err := r.SystemByName("2695v4")
	if err != nil {
		return nil, err
	}
	tech, ok := core.TechniqueByName("2695v4", "C+Inner", 2)
	if !ok {
		return nil, fmt.Errorf("experiments: C+Inner technique missing")
	}

	// Plain run (single-socket sweep, where the anomaly shows).
	eng := bench.NewSimEngine(sys, r.Seed)
	tuner := core.NewTuner(eng.Clock, tech.Budget, tech.Order)
	plain, err := tuner.Run(context.Background(), DGEMMCases(eng, r.Space, 1))
	if err != nil {
		return nil, err
	}
	plainDims, err := BestDims(plain)
	if err != nil {
		return nil, err
	}

	// Second-chance run on a fresh engine (same seed: identical noise).
	eng2 := bench.NewSimEngine(sys, r.Seed)
	tuner2 := core.NewTuner(eng2.Clock, tech.Budget, tech.Order)
	fixed, err := tuner2.RunWithSecondChance(context.Background(), DGEMMCases(eng2, r.Space, 1), core.DefaultSecondChance())
	if err != nil {
		return nil, err
	}
	fixedDims, err := BestDims(fixed.Result)
	if err != nil {
		return nil, err
	}

	return &SecondChanceStudyRow{
		Technique: "C+Inner (min_count=2)",
		FS1:       plain.BestValue() / 1e9,
		FS1Fixed:  fixed.BestValue() / 1e9,
		Dims:      plainDims,
		DimsFixed: fixedDims,
		TimeSec:   plain.Elapsed.Seconds(),
		FixedSec:  fixed.Elapsed.Seconds(),
		Promoted:  fixed.Promoted,
	}, nil
}

// RenderSecondChanceStudy formats the study.
func (s *SecondChanceStudyRow) Render() *report.Table {
	t := report.NewTable("§VII late-bloomer remedy on the 2695v4 anomaly (single socket)",
		"Variant", "FS1", "Dims", "Time")
	t.AddRow(s.Technique, fmt.Sprintf("%.2f", s.FS1), s.Dims.String(),
		fmt.Sprintf("%.2fs", s.TimeSec))
	t.AddRow(s.Technique+" + second chance", fmt.Sprintf("%.2f", s.FS1Fixed),
		s.DimsFixed.String(), fmt.Sprintf("%.2fs", s.FixedSec))
	if s.Promoted {
		t.AddNote("The second-chance pass promoted a configuration the bound had truncated.")
	}
	return t
}
