// Package experiments contains one driver per table and figure of the
// paper's evaluation, regenerating each artifact from the simulated
// engines (or, where meaningful, the native engine). The drivers return
// report.Table / report.Figure values plus the raw data, so tests can
// assert reproduction tolerances and cmd/experiments can render any
// format.
package experiments

import (
	"context"
	"fmt"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/units"
)

// DefaultSeed is the noise seed used for all published-artifact
// reproductions. The calibration tests pin the headline behaviours under
// this seed.
const DefaultSeed uint64 = 1021

// Runner holds the shared configuration of all experiment drivers.
type Runner struct {
	Seed    uint64
	Space   []core.Dims
	Systems []hw.System
}

// New returns a runner with the paper's defaults: the union DGEMM space
// and the four Idun systems.
func New() *Runner {
	return &Runner{
		Seed:    DefaultSeed,
		Space:   core.UnionDGEMMSpace(),
		Systems: hw.IdunSystems(),
	}
}

// DGEMMCases binds the runner's dimension space to an engine for one
// socket configuration.
func DGEMMCases(eng *bench.SimEngine, space []core.Dims, sockets int) []bench.Case {
	cases := make([]bench.Case, len(space))
	for i, d := range space {
		cases[i] = eng.DGEMMCase(d.N, d.M, d.K, sockets)
	}
	return cases
}

// DGEMMRun is the result of applying one technique to one system: the
// single-socket and dual-socket sweeps and their combined cost.
type DGEMMRun struct {
	System    hw.System
	Technique core.Technique
	S1, S2    *core.Result
	// Total is the combined virtual search time of both sweeps — the
	// paper's "Time" column.
	Total time.Duration
}

// BestDims recovers the winning configuration of a sweep result from its
// typed identity.
func BestDims(res *core.Result) (core.Dims, error) {
	var d core.Dims
	if res == nil || res.Best == nil {
		return d, fmt.Errorf("experiments: sweep has no best outcome")
	}
	cfg, ok := res.Best.Config.(bench.DGEMMConfig)
	if !ok {
		return d, fmt.Errorf("experiments: best outcome %q carries %T, want DGEMM config",
			res.Best.Key, res.Best.Config)
	}
	return core.ConfigDims(cfg), nil
}

// RunDGEMMTechnique runs one technique's full DGEMM search (single-socket
// sweep then dual-socket sweep on the same engine and clock, like the
// paper's per-system benchmark campaign).
func (r *Runner) RunDGEMMTechnique(sys hw.System, tech core.Technique) (*DGEMMRun, error) {
	eng := bench.NewSimEngine(sys, r.Seed)
	run := &DGEMMRun{System: sys, Technique: tech}

	t1 := core.NewTuner(eng.Clock, tech.Budget, tech.Order)
	s1, err := t1.Run(context.Background(), DGEMMCases(eng, r.Space, 1))
	if err != nil {
		return nil, fmt.Errorf("experiments: %s S1 sweep: %w", sys.Name, err)
	}
	run.S1 = s1

	t2 := core.NewTuner(eng.Clock, tech.Budget, tech.Order)
	s2, err := t2.Run(context.Background(), DGEMMCases(eng, r.Space, sys.Sockets))
	if err != nil {
		return nil, fmt.Errorf("experiments: %s S2 sweep: %w", sys.Name, err)
	}
	run.S2 = s2
	run.Total = eng.Clock.Now()
	return run, nil
}

// ExhaustiveDefault runs the Default technique (Table I budget, no
// optimisations) — the run that defines Tables IV and V.
func (r *Runner) ExhaustiveDefault(sys hw.System) (*DGEMMRun, error) {
	return r.RunDGEMMTechnique(sys, core.Technique{
		Name:   "Default",
		Budget: bench.DefaultBudget(),
		Order:  core.OrderForward,
	})
}

// TriadRegion identifies a residency class of the TRIAD sweep.
type TriadRegion int

// Residency regions of the TRIAD working-set sweep. The paper measures
// DRAM and L3 (§IV-B); L1 and L2 are the future-work extension (§VII).
const (
	RegionDRAM TriadRegion = iota
	RegionL3
	RegionL2
	RegionL1
)

// String names the region.
func (tr TriadRegion) String() string {
	switch tr {
	case RegionDRAM:
		return "DRAM"
	case RegionL3:
		return "L3"
	case RegionL2:
		return "L2"
	default:
		return "L1"
	}
}

// triadRegionOf classifies a working set against the system's hierarchy,
// mirroring the boundaries used by the bandwidth model.
func triadRegionOf(sys hw.System, elems, sockets int) TriadRegion {
	w := float64(units.TriadBytes(elems))
	cores := float64(sys.Cores(sockets))
	l1 := float64(sys.L1PerCore) * cores
	l2 := float64(sys.L2PerCore) * cores
	l3 := float64(sys.L3Total(sockets))
	switch {
	case w <= l1:
		return RegionL1
	case w <= l2:
		return RegionL2
	case w <= 0.9*l3:
		return RegionL3
	case w >= 4*l3:
		return RegionDRAM
	default:
		// Transition zone around the L3 capacity edge: excluded from both
		// regions' reported peaks, as the paper does by picking sizes that
		// clearly fit or clearly spill.
		return TriadRegion(-1)
	}
}

// TriadRun holds one system's TRIAD results: the per-region peak outcome
// for each socket configuration.
type TriadRun struct {
	System hw.System
	// Peaks[sockets][region] is the best outcome of that region's search.
	Peaks map[int]map[TriadRegion]*bench.Outcome
	Total time.Duration
}

// Peak returns the region peak in GB/s, or 0 when absent.
func (t *TriadRun) Peak(sockets int, region TriadRegion) float64 {
	if m, ok := t.Peaks[sockets]; ok {
		if o, ok := m[region]; ok && o != nil {
			return o.Mean / 1e9
		}
	}
	return 0
}

// RunTriad performs the TRIAD autotuning campaign for a system: for each
// socket configuration, a separate search per residency region (searching
// globally would let stop condition 4 prune every DRAM-resident size
// against the faster L3 sizes). Affinity follows §III-B: close for
// single-socket runs, spread across sockets otherwise.
func (r *Runner) RunTriad(sys hw.System, budget bench.Budget) (*TriadRun, error) {
	eng := bench.NewSimEngine(sys, r.Seed)
	run := &TriadRun{System: sys, Peaks: map[int]map[TriadRegion]*bench.Outcome{}}
	space := core.TriadSpace()

	for _, sockets := range sys.SocketConfigs() {
		aff := hw.AffinityClose
		if sockets > 1 {
			aff = hw.AffinitySpread
		}
		regions := map[TriadRegion][]bench.Case{}
		for _, elems := range space {
			region := triadRegionOf(sys, elems, sockets)
			if region < 0 {
				continue
			}
			regions[region] = append(regions[region], eng.TriadCase(elems, aff, sockets))
		}
		run.Peaks[sockets] = map[TriadRegion]*bench.Outcome{}
		for region, cases := range regions {
			tuner := core.NewTuner(eng.Clock, budget, core.OrderForward)
			res, err := tuner.Run(context.Background(), cases)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s TRIAD %v S%d: %w", sys.Name, region, sockets, err)
			}
			run.Peaks[sockets][region] = res.Best
		}
	}
	run.Total = eng.Clock.Now()
	return run, nil
}
