package experiments

import (
	"context"
	"fmt"
	"math"

	"rooftune/internal/bench"
	"rooftune/internal/report"
	"rooftune/internal/stats"
)

// DistributionRow summarises the shape of one system's per-iteration
// runtime distribution at its optimal configuration.
type DistributionRow struct {
	System    string
	Samples   int
	MeanSec   float64
	CoV       float64
	Skewness  float64
	Kurtosis  float64 // excess
	JBStat    float64
	JBPValue  float64
	Lag1      float64 // lag-1 autocorrelation of the sample stream
	ESS       float64 // effective sample size given Lag1
	NonNormal bool
}

// DistributionStudy reproduces the paper's §III-C3 observation: "when the
// distribution of runtimes of our benchmarks is graphed, we find that the
// distribution is usually non-normal". For each system it collects the
// iteration times of a full Default invocation set at the Table V optimal
// configuration and tests normality (Jarque-Bera) and independence
// (lag-1 autocorrelation; Kalibera & Jones).
func (r *Runner) DistributionStudy() ([]DistributionRow, error) {
	var rows []DistributionRow
	for _, sys := range r.Systems {
		opt, ok := PaperTable5[sys.Name]
		if !ok {
			continue
		}
		eng := bench.NewSimEngine(sys, r.Seed)
		trace := bench.NewTraceBuffer(0)
		eval := bench.NewEvaluator(eng.Clock, bench.DefaultBudget())
		eval.Sampler = trace
		c := eng.DGEMMCase(opt.S1.N, opt.S1.M, opt.S1.K, 1)
		if _, err := eval.Evaluate(context.Background(), c, bench.None); err != nil {
			return nil, fmt.Errorf("experiments: distribution study %s: %w", sys.Name, err)
		}
		pts := trace.Trace(c.Key())
		times := make([]float64, len(pts))
		for i, p := range pts {
			times[i] = p.Elapsed.Seconds()
		}
		mean, variance := stats.TwoPassMeanVariance(times)
		jb, pv := stats.JarqueBera(times)
		lag1 := stats.Lag1Autocorrelation(times)
		row := DistributionRow{
			System:    sys.Name,
			Samples:   len(times),
			MeanSec:   mean,
			Skewness:  stats.Skewness(times),
			Kurtosis:  stats.ExcessKurtosis(times),
			JBStat:    jb,
			JBPValue:  pv,
			Lag1:      lag1,
			ESS:       stats.EffectiveSampleSize(len(times), lag1),
			NonNormal: pv < 0.01,
		}
		if mean > 0 && variance > 0 {
			row.CoV = math.Sqrt(variance) / mean
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderDistributionStudy formats the study.
func RenderDistributionStudy(rows []DistributionRow) *report.Table {
	t := report.NewTable("§III-C3 runtime-distribution study (Default run at the Table V optimum, single socket)",
		"System", "n", "CoV", "skew", "ex.kurt", "JB p", "lag-1", "ESS", "normal?")
	for _, row := range rows {
		normal := "yes"
		if row.NonNormal {
			normal = "no"
		}
		t.AddRow(row.System,
			fmt.Sprintf("%d", row.Samples),
			fmt.Sprintf("%.3f", row.CoV),
			fmt.Sprintf("%.2f", row.Skewness),
			fmt.Sprintf("%.2f", row.Kurtosis),
			fmt.Sprintf("%.2g", row.JBPValue),
			fmt.Sprintf("%.2f", row.Lag1),
			fmt.Sprintf("%.0f", row.ESS),
			normal,
		)
	}
	t.AddNote("Right-skewed, heavy-tailed runtimes — the paper's justification for discussing bootstrap and median alternatives (§III-C3, §VII).")
	return t
}
