package experiments

import (
	"context"
	"strings"
	"testing"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/units"
)

func TestTable1Render(t *testing.T) {
	out := New().Table1().Text()
	for _, frag := range []string{"10", "200", "10s", "100"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Table I missing %q:\n%s", frag, out)
		}
	}
}

func TestTable2Render(t *testing.T) {
	out := New().Table2().Text()
	for _, frag := range []string{"2650v4", "AVX2", "Gold 6148", "AVX512", "30 MiB", "2.2GHz"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Table II missing %q:\n%s", frag, out)
		}
	}
}

func TestTable3Render(t *testing.T) {
	out := New().Table3().Text()
	// Exact Table III numbers.
	for _, frag := range []string{"422.4", "604.8", "1164.8", "1536.0", "76.800", "127.968"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Table III missing %q:\n%s", frag, out)
		}
	}
}

func TestTable7Render(t *testing.T) {
	out := New().Table7().Text()
	for _, frag := range []string{"2650v4", "7", "20", "180", "150"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Table VII missing %q:\n%s", frag, out)
		}
	}
}

func TestSystemByName(t *testing.T) {
	r := New()
	if _, err := r.SystemByName("2695v4"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SystemByName("nope"); err == nil {
		t.Fatal("unknown system must error")
	}
}

func TestTriadRegionClassification(t *testing.T) {
	sys := hw.IdunE52650v4 // L1 384 KiB, L2 3 MiB, L3 30 MiB (S1 aggregates)
	cases := []struct {
		bytes  units.ByteSize
		region TriadRegion
	}{
		{100 * units.KiB, RegionL1},
		{units.MiB, RegionL2},
		{12 * units.MiB, RegionL3},
		{units.ByteSize(28 * float64(units.MiB)), TriadRegion(-1)}, // transition zone
		{256 * units.MiB, RegionDRAM},
	}
	for _, c := range cases {
		elems := int(c.bytes / 24)
		if got := triadRegionOf(sys, elems, 1); got != c.region {
			t.Errorf("region of %v = %v, want %v", c.bytes, got, c.region)
		}
	}
}

func TestTriadRegionNames(t *testing.T) {
	for region, want := range map[TriadRegion]string{
		RegionDRAM: "DRAM", RegionL3: "L3", RegionL2: "L2", RegionL1: "L1",
	} {
		if region.String() != want {
			t.Errorf("region name %v", region)
		}
	}
}

func TestBestDimsParsing(t *testing.T) {
	r := New()
	sys := r.Systems[0]
	eng := bench.NewSimEngine(sys, r.Seed)
	// Construct a result by evaluating one case.
	eval := bench.NewEvaluator(eng.Clock, bench.Budget{Invocations: 1, MaxIterations: 2})
	out, err := eval.Evaluate(context.Background(), eng.DGEMMCase(1000, 4096, 128, 1), bench.None)
	if err != nil {
		t.Fatal(err)
	}
	d, err := BestDims(&core.Result{Best: out})
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 1000 || d.M != 4096 || d.K != 128 {
		t.Fatalf("parsed %v", d)
	}
	if _, err := BestDims(nil); err == nil {
		t.Fatal("nil result must error")
	}
	if _, err := BestDims(&core.Result{}); err == nil {
		t.Fatal("result without best must error")
	}
	// A key-only outcome (no typed config) must be a loud error, never
	// silently-zero dims — the bug the typed identity removed.
	keyOnly := &bench.Outcome{Key: "dgemm/1/1000x4096x128"}
	if d, err := BestDims(&core.Result{Best: keyOnly}); err == nil {
		t.Fatalf("config-less outcome returned dims %v, want error", d)
	}
}

func TestFig2ContainsStopConditions(t *testing.T) {
	d := Fig2()
	for _, frag := range []string{"invocation loop", "iteration loop", "stop 1",
		"stop 2", "stop 3", "stop 4", "Welford", "gettimeofday"} {
		if !strings.Contains(d, frag) {
			t.Fatalf("Fig. 2 missing %q", frag)
		}
	}
}

func TestPaperDataConsistency(t *testing.T) {
	// Paper reference tables must cover the four systems consistently.
	for _, sys := range hw.IdunSystems() {
		if _, ok := PaperTable3[sys.Name]; !ok {
			t.Errorf("PaperTable3 missing %s", sys.Name)
		}
		if _, ok := PaperTable4[sys.Name]; !ok {
			t.Errorf("PaperTable4 missing %s", sys.Name)
		}
		if _, ok := PaperTable5[sys.Name]; !ok {
			t.Errorf("PaperTable5 missing %s", sys.Name)
		}
		if _, ok := PaperTable6[sys.Name]; !ok {
			t.Errorf("PaperTable6 missing %s", sys.Name)
		}
		rows, ok := PaperTablesOpt[sys.Name]
		if !ok {
			t.Errorf("PaperTablesOpt missing %s", sys.Name)
			continue
		}
		if def, ok := rows["Default"]; !ok || def.Speedup != 1 {
			t.Errorf("%s: Default row must exist with speedup 1", sys.Name)
		}
		// Speedup columns must equal DefaultTime/TechTime as printed
		// (cross-check of our transcription, 1% rounding slack).
		defTime := rows["Default"].TimeSec
		for name, row := range rows {
			if name == "Default" {
				continue
			}
			implied := defTime / row.TimeSec
			if implied/row.Speedup > 1.02 || implied/row.Speedup < 0.98 {
				t.Errorf("%s %s: printed speedup %.2f vs implied %.2f",
					sys.Name, name, row.Speedup, implied)
			}
		}
	}
}
