package xrand

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws of 1000", same)
	}
}

func TestMixIsPure(t *testing.T) {
	x := Mix(1, 2, 3)
	for i := 0; i < 10; i++ {
		if Mix(1, 2, 3) != x {
			t.Fatal("Mix not deterministic")
		}
	}
	if Mix(1, 2, 3) == Mix(3, 2, 1) {
		t.Fatal("Mix should be order-sensitive")
	}
	if Mix(1) == Mix(2) {
		t.Fatal("Mix collision on trivially different inputs")
	}
}

func TestMixAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Mix(0xDEADBEEF, 7)
	var totalFlips int
	const trials = 64
	for b := 0; b < trials; b++ {
		flipped := Mix(0xDEADBEEF^(1<<uint(b)), 7)
		totalFlips += popcount(base ^ flipped)
	}
	avg := float64(totalFlips) / trials
	if avg < 24 || avg > 40 {
		t.Fatalf("poor avalanche: average %.1f bits flipped (want ~32)", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := New(11)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Fatalf("uniform variance %v, want ~1/12", variance)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestNormalScaled(t *testing.T) {
	r := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormalScaled(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("scaled normal mean %v, want ~10", mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(19)
	const n = 50001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(0, 0.5)
		if vals[i] <= 0 {
			t.Fatal("lognormal must be positive")
		}
	}
	sort.Float64s(vals)
	med := vals[n/2]
	if math.Abs(med-1) > 0.03 {
		t.Fatalf("lognormal(0, 0.5) median %v, want ~e^0 = 1", med)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(23)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exponential(3)
		if v < 0 {
			t.Fatal("exponential must be non-negative")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.1 {
		t.Fatalf("exponential mean %v, want ~3", mean)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(29)
	const (
		shape = 2.0
		scale = 0.5
		n     = 100000
	)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Gamma(shape, scale)
		if v < 0 {
			t.Fatal("gamma must be non-negative")
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-shape*scale) > 0.02 {
		t.Fatalf("gamma mean %v, want %v", mean, shape*scale)
	}
	if math.Abs(variance-shape*scale*scale) > 0.03 {
		t.Fatalf("gamma variance %v, want %v", variance, shape*scale*scale)
	}
}

func TestGammaSmallShape(t *testing.T) {
	r := New(31)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Gamma(0.5, 1)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.03 {
		t.Fatalf("gamma(0.5,1) mean %v, want ~0.5", mean)
	}
}

func TestGammaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for non-positive shape")
		}
	}()
	New(1).Gamma(0, 1)
}

func TestBernoulli(t *testing.T) {
	r := New(37)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(41)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for Intn(0)")
		}
	}()
	r.Intn(0)
}

func TestSplitIndependence(t *testing.T) {
	// Children with different ids should produce different streams.
	parent := New(5)
	a := parent.Split(1)
	parent2 := New(5)
	b := parent2.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children correlated: %d matches", same)
	}
}
