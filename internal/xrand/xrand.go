// Package xrand provides the deterministic random-number machinery used by
// the simulated hardware substrate. Every simulated measurement in rooftune
// is a draw from a seeded generator, so whole paper experiments replay
// bit-identically given the same seed — a property the test suite relies on.
//
// The generator is SplitMix64 feeding xoshiro256**, both public-domain
// algorithms by Blackman and Vigna. We implement them locally instead of
// using math/rand so that (a) streams can be split hierarchically per
// (system, benchmark, configuration, invocation) without correlation and
// (b) the sequence is stable across Go releases.
package xrand

import "math"

// splitmix64 advances a 64-bit state and returns the next output. It is
// used for seeding and stream splitting.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix hashes any number of 64-bit parts into one seed with SplitMix64
// steps. It is the pure (non-mutating) way to derive independent stream
// seeds per (configuration, invocation): the same parts always yield the
// same stream, regardless of evaluation order.
func Mix(parts ...uint64) uint64 {
	state := uint64(0x6a09e667f3bcc909)
	out := splitmix64(&state)
	for _, p := range parts {
		state ^= p
		out ^= splitmix64(&state)
	}
	return out
}

// Rand is a deterministic xoshiro256** generator.
type Rand struct {
	s [4]uint64
	// cached spare normal variate for the Box-Muller transform
	spare    float64
	hasSpare bool
}

// New returns a generator seeded from seed via SplitMix64, per the xoshiro
// authors' recommendation (never seed xoshiro state directly).
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// A generator whose state is all zero would be stuck; SplitMix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

// Split derives an independent child generator identified by id. Children
// with distinct ids have uncorrelated streams, which lets the simulator give
// every (configuration, invocation) pair its own noise source.
func (r *Rand) Split(id uint64) *Rand {
	base := r.Uint64()
	return New(base ^ (id * 0x9e3779b97f4a7c15) ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method would be overkill here; modulo
	// bias is negligible for the small n used in shuffles.
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n), used by the random-search
// strategy.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Normal returns a standard normal variate via the Box-Muller transform
// (polar form is avoided to keep the draw count per call deterministic at
// one uniform pair per two normals).
func (r *Rand) Normal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u float64
	for u == 0 { // avoid log(0)
		u = r.Float64()
	}
	v := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// NormalScaled returns a normal variate with the given mean and standard
// deviation.
func (r *Rand) NormalScaled(mean, sigma float64) float64 {
	return mean + sigma*r.Normal()
}

// LogNormal returns a variate whose logarithm is normal with parameters mu
// and sigma. Benchmark runtimes are right-skewed; the paper observes that
// "the distribution is usually non-normal", and a lognormal body captures
// that shape.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Exponential returns an exponential variate with the given mean.
func (r *Rand) Exponential(mean float64) float64 {
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Gamma returns a Gamma(shape, scale) variate using the Marsaglia-Tsang
// method. Used for modelling OS-jitter bursts in the measurement noise.
func (r *Rand) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("xrand: Gamma with non-positive parameter")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool { return r.Float64() < p }
