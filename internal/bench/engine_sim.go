package bench

import (
	"fmt"
	"time"

	"rooftune/internal/hw"
	"rooftune/internal/simblas"
	"rooftune/internal/simspmv"
	"rooftune/internal/simstencil"
	"rooftune/internal/simstream"
	"rooftune/internal/units"
	"rooftune/internal/vclock"
)

// SimEngine executes benchmark cases against the calibrated performance
// models of a paper system, advancing a virtual clock. Identical seeds
// replay identical experiments.
type SimEngine struct {
	Sys     hw.System
	Clock   *vclock.Virtual
	DGEMM   *simblas.Model
	Triad   *simstream.Model
	SpMV    *simspmv.Model
	Stencil *simstencil.Model
	Seed    uint64
}

// NewSimEngine builds a simulated engine for the system with the given
// noise seed. Engines with the same seed observe identical measurements
// for identical (configuration, invocation, iteration) triples.
func NewSimEngine(sys hw.System, seed uint64) *SimEngine {
	return &SimEngine{
		Sys:     sys,
		Clock:   vclock.NewVirtual(),
		DGEMM:   simblas.NewModel(sys),
		Triad:   simstream.NewModel(sys),
		SpMV:    simspmv.NewModel(sys),
		Stencil: simstencil.NewModel(sys),
		Seed:    seed,
	}
}

// SimEngineName is the report name of a simulated engine for the system.
// It is the single owner of the "sim:" format; callers that never hold an
// engine (the sweep planner builds one per sweep) use it directly.
func SimEngineName(sys hw.System) string { return "sim:" + sys.Name }

// Name identifies the engine in reports.
func (e *SimEngine) Name() string { return SimEngineName(e.Sys) }

// DGEMMCase returns the benchmark case for one matrix-dimension
// configuration on the given socket count.
func (e *SimEngine) DGEMMCase(n, m, k, sockets int) Case {
	return &simDGEMMCase{engine: e, n: n, m: m, k: k, sockets: sockets}
}

// TriadCase returns the benchmark case for one TRIAD vector length.
func (e *SimEngine) TriadCase(elems int, aff hw.Affinity, sockets int) Case {
	return &simTriadCase{engine: e, elems: elems, aff: aff, sockets: sockets}
}

type simDGEMMCase struct {
	engine  *SimEngine
	n, m, k int
	sockets int
}

func (c *simDGEMMCase) Key() string {
	return fmt.Sprintf("dgemm/%d/%dx%dx%d", c.sockets, c.n, c.m, c.k)
}

func (c *simDGEMMCase) Config() Config {
	return DGEMMConfig{N: c.n, M: c.m, K: c.k, Sockets: c.sockets}
}

func (c *simDGEMMCase) Describe() string {
	return fmt.Sprintf("n=%d m=%d k=%d sockets=%d", c.n, c.m, c.k, c.sockets)
}

func (c *simDGEMMCase) Metric() Metric { return MetricFlops }

func (c *simDGEMMCase) NewInvocation(inv int) (Instance, error) {
	if c.n <= 0 || c.m <= 0 || c.k <= 0 {
		return nil, fmt.Errorf("bench: invalid DGEMM dims %s", c.Describe())
	}
	si := c.engine.DGEMM.NewInvocation(c.n, c.m, c.k, c.sockets, inv, c.engine.Seed)
	c.engine.Clock.Advance(si.SetupTime())
	return &simDGEMMInstance{clock: c.engine.Clock, inv: si}, nil
}

type simDGEMMInstance struct {
	clock *vclock.Virtual
	inv   *simblas.Invocation
}

func (i *simDGEMMInstance) Warmup() { i.clock.Advance(i.inv.WarmupTime()) }

func (i *simDGEMMInstance) Step() time.Duration {
	d := i.inv.StepTime()
	i.clock.Advance(d)
	return d
}

func (i *simDGEMMInstance) Work() float64 { return i.inv.Work() }
func (i *simDGEMMInstance) Close()        {}

type simTriadCase struct {
	engine  *SimEngine
	elems   int
	aff     hw.Affinity
	sockets int
}

func (c *simTriadCase) Key() string {
	return fmt.Sprintf("triad/%d/%s/%d", c.sockets, c.aff, c.elems)
}

func (c *simTriadCase) Config() Config {
	return TriadConfig{Elements: c.elems, Affinity: c.aff, Sockets: c.sockets}
}

func (c *simTriadCase) Describe() string {
	return fmt.Sprintf("N=%d (W=%v) affinity=%s sockets=%d",
		c.elems, units.ByteSize(units.TriadBytes(c.elems)), c.aff, c.sockets)
}

func (c *simTriadCase) Metric() Metric { return MetricBandwidth }

func (c *simTriadCase) NewInvocation(inv int) (Instance, error) {
	if c.elems <= 0 {
		return nil, fmt.Errorf("bench: invalid TRIAD length %d", c.elems)
	}
	si := c.engine.Triad.NewInvocation(c.elems, c.aff, c.sockets, inv, c.engine.Seed)
	c.engine.Clock.Advance(si.SetupTime())
	return &simTriadInstance{clock: c.engine.Clock, inv: si}, nil
}

type simTriadInstance struct {
	clock *vclock.Virtual
	inv   *simstream.Invocation
}

func (i *simTriadInstance) Warmup() { i.clock.Advance(i.inv.WarmupTime()) }

func (i *simTriadInstance) Step() time.Duration {
	d := i.inv.StepTime()
	i.clock.Advance(d)
	return d
}

func (i *simTriadInstance) Work() float64 { return i.inv.Work() }
func (i *simTriadInstance) Close()        {}
