// Package bench implements the benchmarking process of the paper's Fig. 2:
// an inner iteration loop measuring one kernel execution at a time and an
// outer invocation loop that re-runs the whole benchmark program, governed
// by four stop conditions (§III-C):
//
//  1. a per-invocation measured-time budget (Max time),
//  2. an iteration-count cap (Max count),
//  3. convergence of the confidence interval of the mean to ±1% (stop
//     condition 3, "Confidence"),
//  4. early termination when the CI upper bound cannot beat the best
//     known configuration (stop condition 4, "Inner"/"Outer" — Listing 1).
//
// The same loops run against simulated engines (virtual time) and native
// engines (real kernels, wall-clock time).
package bench

import (
	"time"
)

// TimeoutScope selects what the MaxTime budget applies to. The paper's
// wording ("the maximum time threshold for each invocation is set to 10s
// for each configuration", §V) is ambiguous between the two readings; the
// per-configuration reading reproduces the published Single and
// Confidence speedup magnitudes far better (see EXPERIMENTS.md), so it is
// the default. Both are implemented.
type TimeoutScope int

// Timeout scopes.
const (
	// ScopePerConfig caps the total measured time across all of a
	// configuration's invocations; once exhausted, remaining invocations
	// are skipped.
	ScopePerConfig TimeoutScope = iota
	// ScopePerInvocation caps each invocation's measured time separately.
	ScopePerInvocation
)

// String names the scope.
func (s TimeoutScope) String() string {
	if s == ScopePerInvocation {
		return "per-invocation"
	}
	return "per-config"
}

// Budget is the evaluation budget and stop-condition configuration —
// Table I of the paper plus the optimisation flags of §VI-C.
type Budget struct {
	// Invocations is the outer-loop repetition count (Table I: 10).
	Invocations int
	// MaxIterations caps the inner loop (Table I: 200) — stop condition 2.
	MaxIterations int
	// MaxTime caps the accumulated *measured* iteration-loop time (Table
	// I: 10 s) — stop condition 1. See TimeoutScope.
	MaxTime time.Duration
	// Scope selects per-configuration (default) or per-invocation
	// accounting for MaxTime.
	Scope TimeoutScope
	// ErrorInverse is Table I's "Error" parameter: the confidence
	// interval is considered converged when its half-width is within
	// 1/ErrorInverse of the mean (100 -> +-1%).
	ErrorInverse float64
	// CILevel is the confidence level for every interval (the paper uses
	// 99%).
	CILevel float64

	// UseConfidence enables stop condition 3 on the iteration loop ("C").
	UseConfidence bool
	// UseInnerBound enables stop condition 4 on the iteration loop ("I").
	UseInnerBound bool
	// UseOuterBound enables stop condition 4 on the invocation loop ("O").
	UseOuterBound bool
	// MinCount is the minimum iteration count before stop condition 4 may
	// trigger (default 2; the paper raises it to 100 on the 2695v4).
	MinCount int
	// MinCISamples is the minimum sample count before stop condition 3
	// may trigger; guards the normality assumption for tiny n.
	MinCISamples int

	// UseStudentT switches interval construction from the paper's normal
	// z-interval to Student's t (an extension; more conservative for
	// small n).
	UseStudentT bool
	// UseMedian switches the convergence test of stop condition 3 to a
	// median/IQR based rule (future-work extension, §VII).
	UseMedian bool

	// UseSteadyState enables Georges et al.'s warm-up exclusion (§II):
	// samples before the CoV of the last SteadyWindow observations drops
	// below SteadyThreshold are excluded from the stop-condition
	// statistics. This addresses the paper's §VII concern about
	// configurations "that achieve a high performance late into the
	// iteration-count" being pruned prematurely.
	UseSteadyState bool
	// SteadyWindow is the detection window (default 10).
	SteadyWindow int
	// SteadyThreshold is the CoV bound declaring steadiness (default
	// 0.02).
	SteadyThreshold float64
}

// DefaultBudget returns Table I's configuration with every optimisation
// disabled: the "Default" fixed-sample-size technique of Tables VIII-XI.
func DefaultBudget() Budget {
	return Budget{
		Invocations:   10,
		MaxIterations: 200,
		MaxTime:       10 * time.Second,
		ErrorInverse:  100,
		CILevel:       0.99,
		MinCount:      2,
		MinCISamples:  5,
	}
}

// normalized returns the budget with zero fields replaced by safe
// defaults.
func (b Budget) normalized() Budget {
	if b.Invocations <= 0 {
		b.Invocations = 1
	}
	if b.MaxIterations <= 0 {
		b.MaxIterations = 1
	}
	if b.MaxTime <= 0 {
		b.MaxTime = 10 * time.Second
	}
	if b.ErrorInverse <= 0 {
		b.ErrorInverse = 100
	}
	if b.CILevel <= 0 || b.CILevel >= 1 {
		b.CILevel = 0.99
	}
	if b.MinCount < 2 {
		b.MinCount = 2
	}
	if b.MinCISamples < 2 {
		b.MinCISamples = 2
	}
	if b.SteadyWindow <= 1 {
		b.SteadyWindow = 10
	}
	if b.SteadyThreshold <= 0 {
		b.SteadyThreshold = 0.02
	}
	return b
}

// RelWidthTarget returns the convergence threshold for stop condition 3.
func (b Budget) RelWidthTarget() float64 { return 1 / b.ErrorInverse }

// WithFlags returns a copy of the budget with the optimisation flags set;
// a convenience for building the technique matrix of Tables VIII-XI.
func (b Budget) WithFlags(confidence, inner, outer bool) Budget {
	b.UseConfidence = confidence
	b.UseInnerBound = inner
	b.UseOuterBound = outer
	return b
}

// WithMinCount returns a copy with the stop-condition-4 minimum count.
func (b Budget) WithMinCount(n int) Budget {
	b.MinCount = n
	return b
}

// StopReason says which condition ended an invocation's iteration loop.
type StopReason int

// Stop reasons, in the numbering of §III-C.
const (
	StopNone       StopReason = iota
	StopMaxTime               // condition 1
	StopMaxCount              // condition 2
	StopConfidence            // condition 3
	StopBound                 // condition 4 (pruned against best)
)

// String names the stop reason.
func (r StopReason) String() string {
	switch r {
	case StopMaxTime:
		return "max-time"
	case StopMaxCount:
		return "max-count"
	case StopConfidence:
		return "confidence"
	case StopBound:
		return "bound-pruned"
	default:
		return "none"
	}
}
