package bench

import (
	"time"
)

// Metric identifies what a benchmark maximises.
type Metric int

// Metrics.
const (
	MetricFlops     Metric = iota // FLOP/s (DGEMM)
	MetricBandwidth               // bytes/s (TRIAD)
)

// Unit returns the reporting unit of the metric.
func (m Metric) Unit() string {
	if m == MetricBandwidth {
		return "GB/s"
	}
	return "GFLOP/s"
}

// Scale converts a metric value in base units to its reporting unit.
func (m Metric) Scale(v float64) float64 { return v / 1e9 }

// Case is one benchmark configuration: a point in the autotuner's search
// space bound to an engine that can execute (or simulate) it. The
// evaluator repeatedly creates invocations of it, mirroring the paper's
// outer loop which re-executes the benchmark program.
type Case interface {
	// Key uniquely identifies the configuration within a search space.
	Key() string
	// Describe returns a human-readable parameter description, e.g.
	// "n=1000 m=4096 k=128".
	Describe() string
	// Metric says what the per-iteration measurements mean.
	Metric() Metric
	// NewInvocation starts invocation number inv (0-based). The engine
	// accounts any startup/initialisation cost to its clock before
	// returning.
	NewInvocation(inv int) (Instance, error)
}

// Instance is one live invocation of a benchmark case. Implementations
// advance their engine's clock as a side effect of Warmup and Step, so
// the evaluator's wall-clock accounting works identically for real and
// simulated engines.
type Instance interface {
	// Warmup performs the unmeasured pre-heat execution (§III-A).
	Warmup()
	// Step executes the kernel once and returns the measured elapsed
	// time, quantised to the timer's resolution.
	Step() time.Duration
	// Work returns the work per execution in the case's metric base
	// units (FLOPs for DGEMM, bytes for TRIAD).
	Work() float64
	// Close releases invocation resources.
	Close()
}
