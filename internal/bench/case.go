package bench

import (
	"time"

	"rooftune/internal/hw"
)

// Metric identifies what a benchmark maximises.
type Metric int

// Metrics.
const (
	MetricFlops     Metric = iota // FLOP/s (DGEMM)
	MetricBandwidth               // bytes/s (TRIAD)
)

// Unit returns the reporting unit of the metric.
func (m Metric) Unit() string {
	if m == MetricBandwidth {
		return "GB/s"
	}
	return "GFLOP/s"
}

// Scale converts a metric value in base units to its reporting unit.
func (m Metric) Scale(v float64) float64 { return v / 1e9 }

// Config is the typed identity of a benchmark configuration. The
// evaluator copies it from Case onto Outcome, so search winners are
// recovered as structured values instead of being re-parsed out of the
// string Key — key-format drift can no longer silently zero a result.
// It is a closed sum: DGEMMConfig, TriadConfig, SpMVConfig and
// StencilConfig. Adding a variant means teaching the session's result
// assembly about it; the root package's config round-trip test counts
// the benchConfig methods declared here and fails if the two drift.
type Config interface {
	benchConfig()
}

// DGEMMConfig identifies a DGEMM configuration: the matrix dimensions
// plus the core-allocation policy (sockets for the simulated engines,
// worker threads for the native one).
type DGEMMConfig struct {
	N, M, K int
	// Sockets is the simulated socket count (1 for native builds, where
	// placement is not controllable from pure Go).
	Sockets int
	// Threads is the native engine's parallelism (0 for simulated builds).
	Threads int
}

func (DGEMMConfig) benchConfig() {}

// TriadConfig identifies a TRIAD configuration: the vector length plus
// the thread-placement policy.
type TriadConfig struct {
	// Elements is the TRIAD vector length N.
	Elements int
	// Affinity is the simulated thread-placement policy.
	Affinity hw.Affinity
	// Sockets is the simulated socket count (1 for native builds).
	Sockets int
	// Threads is the native engine's parallelism (0 for simulated builds).
	Threads int
}

func (TriadConfig) benchConfig() {}

// SpMVConfig identifies a CSR SpMV configuration: the synthetic matrix's
// shape plus the tuned scheduling parameters.
type SpMVConfig struct {
	// N is the matrix dimension and NNZPerRow the stored elements per
	// row; together they fix the kernel's operational intensity.
	N, NNZPerRow int
	// ChunkRows is the tuned rows-per-task granularity.
	ChunkRows int
	// Sockets is the simulated socket count (1 for native builds).
	Sockets int
	// Threads is the tuned native worker count (0 for simulated builds,
	// where core allocation is the socket count).
	Threads int
}

func (SpMVConfig) benchConfig() {}

// StencilConfig identifies a 2D 5-point Jacobi configuration: the grid
// shape plus the tuned tile dimensions.
type StencilConfig struct {
	// NX and NY are the grid dimensions.
	NX, NY int
	// TileX and TileY are the tuned tile dimensions.
	TileX, TileY int
	// Sockets is the simulated socket count (1 for native builds).
	Sockets int
	// Threads is the tuned native worker count (0 for simulated builds).
	Threads int
}

func (StencilConfig) benchConfig() {}

// Case is one benchmark configuration: a point in the autotuner's search
// space bound to an engine that can execute (or simulate) it. The
// evaluator repeatedly creates invocations of it, mirroring the paper's
// outer loop which re-executes the benchmark program.
type Case interface {
	// Key uniquely identifies the configuration within a search space.
	Key() string
	// Config returns the configuration's typed identity, carried onto the
	// evaluation Outcome.
	Config() Config
	// Describe returns a human-readable parameter description, e.g.
	// "n=1000 m=4096 k=128".
	Describe() string
	// Metric says what the per-iteration measurements mean.
	Metric() Metric
	// NewInvocation starts invocation number inv (0-based). The engine
	// accounts any startup/initialisation cost to its clock before
	// returning.
	NewInvocation(inv int) (Instance, error)
}

// Instance is one live invocation of a benchmark case. Implementations
// advance their engine's clock as a side effect of Warmup and Step, so
// the evaluator's wall-clock accounting works identically for real and
// simulated engines.
type Instance interface {
	// Warmup performs the unmeasured pre-heat execution (§III-A).
	Warmup()
	// Step executes the kernel once and returns the measured elapsed
	// time, quantised to the timer's resolution.
	Step() time.Duration
	// Work returns the work per execution in the case's metric base
	// units (FLOPs for DGEMM, bytes for TRIAD).
	Work() float64
	// Close releases invocation resources.
	Close()
}
