package bench

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"rooftune/internal/hw"
	"rooftune/internal/lint"
	"rooftune/internal/lint/configsum"
	"rooftune/internal/stats"
)

// wireConfigs is one representative value per Config variant, with every
// field nonzero so a dropped field shows up as a round-trip diff. The
// exhaustiveness test below asserts this table tracks the configsum
// variant census, so a new variant without wire coverage fails here.
var wireConfigs = map[string]Config{
	"DGEMMConfig":   DGEMMConfig{N: 1000, M: 4096, K: 128, Sockets: 2, Threads: 8},
	"TriadConfig":   TriadConfig{Elements: 1 << 20, Affinity: hw.AffinitySpread, Sockets: 2, Threads: 4},
	"SpMVConfig":    SpMVConfig{N: 1 << 18, NNZPerRow: 16, ChunkRows: 512, Sockets: 1, Threads: 6},
	"StencilConfig": StencilConfig{NX: 2048, NY: 1024, TileX: 256, TileY: 8, Sockets: 1, Threads: 3},
}

func TestConfigJSONRoundTrip(t *testing.T) {
	for name, cfg := range wireConfigs {
		t.Run(name, func(t *testing.T) {
			data, err := MarshalConfig(cfg)
			if err != nil {
				t.Fatal(err)
			}
			back, err := UnmarshalConfig(data)
			if err != nil {
				t.Fatalf("decoding %s: %v", data, err)
			}
			if !reflect.DeepEqual(back, cfg) {
				t.Fatalf("round trip changed the config:\nsent: %#v\ngot:  %#v", cfg, back)
			}
		})
	}
}

func TestConfigDigestStable(t *testing.T) {
	for name, cfg := range wireConfigs {
		t.Run(name, func(t *testing.T) {
			d1, err := ConfigDigest(cfg)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := ConfigDigest(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if d1 != d2 {
				t.Fatalf("digest not deterministic: %s vs %s", d1, d2)
			}
			if len(d1) != 64 {
				t.Fatalf("digest %q is not hex SHA-256", d1)
			}
		})
	}
}

// TestConfigDigestDistinguishes checks the content-address property on
// the mutations that matter: a changed field value and a different
// variant with coincidentally similar fields must digest differently.
func TestConfigDigestDistinguishes(t *testing.T) {
	base := DGEMMConfig{N: 1000, M: 4096, K: 128, Sockets: 1}
	mutants := []Config{
		DGEMMConfig{N: 1001, M: 4096, K: 128, Sockets: 1},
		DGEMMConfig{N: 1000, M: 4096, K: 128, Sockets: 2},
		DGEMMConfig{N: 1000, M: 4096, K: 128, Sockets: 1, Threads: 1},
		TriadConfig{Elements: 1000, Sockets: 1},
	}
	baseDigest, err := ConfigDigest(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mutants {
		d, err := ConfigDigest(m)
		if err != nil {
			t.Fatal(err)
		}
		if d == baseDigest {
			t.Fatalf("%#v digests equal to %#v", m, base)
		}
	}
}

func TestConfigWireRejectsUnknownVariant(t *testing.T) {
	if _, err := UnmarshalConfig([]byte(`{"variant":"FFTConfig","fields":{}}`)); err == nil {
		t.Fatal("unknown variant must fail decoding")
	} else if !strings.Contains(err.Error(), "FFTConfig") {
		t.Fatalf("error %q does not name the variant", err)
	}
	type fake struct{ DGEMMConfig }
	if _, err := MarshalConfig(fake{}); err == nil {
		t.Fatal("unknown variant must fail encoding")
	}
	if _, err := ConfigDigest(fake{}); err == nil {
		t.Fatal("unknown variant must fail digesting")
	}
}

// TestWireVariantsExhaustive is the digest/serialization analogue of the
// root config round-trip test: it takes the bench.Config variant census
// from the configsum analyzer (the same census rooflint enforces
// tree-wide) and asserts the wire layer — decoder table, canonical
// digest and the representative table above — covers every variant. A
// fifth variant added without wire support fails here, not in a
// daemon's cache layer.
func TestWireVariantsExhaustive(t *testing.T) {
	pkgs, err := lint.Load("../..", "./internal/bench")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want exactly internal/bench", len(pkgs))
	}
	variants, err := configsum.VariantNames(pkgs[0].Types)
	if err != nil {
		t.Fatal(err)
	}
	decodable := map[string]bool{}
	for _, name := range WireVariants() {
		decodable[name] = true
	}
	for _, name := range variants {
		if !decodable[name] {
			t.Errorf("bench.Config variant %s has no wire decoder: add it to configDecoders, MarshalConfig and ConfigCanonical", name)
		}
		if _, ok := wireConfigs[name]; !ok {
			t.Errorf("bench.Config variant %s has no representative in wireConfigs: digest and round-trip coverage is incomplete", name)
		}
	}
	declared := map[string]bool{}
	for _, name := range variants {
		declared[name] = true
	}
	for _, name := range WireVariants() {
		if !declared[name] {
			t.Errorf("wire decoder covers %s, which internal/bench no longer declares", name)
		}
	}
}

func TestOutcomeJSONRoundTrip(t *testing.T) {
	out := Outcome{
		Key:      "n1000m4096k128s1",
		Describe: "n=1000 m=4096 k=128",
		Metric:   MetricFlops,
		Config:   DGEMMConfig{N: 1000, M: 4096, K: 128, Sockets: 1},
		Mean:     408.71e9,
		Invocations: []InvocationResult{
			{
				Mean:     408.91e9,
				Samples:  37,
				Measured: 1274 * time.Millisecond,
				Reason:   StopConfidence,
				CI:       stats.Interval{Mean: 408.91e9, Lower: 405e9, Upper: 412.8e9, Level: 0.99},
			},
			{
				Mean:     408.51e9,
				Samples:  12,
				Measured: 410 * time.Millisecond,
				Reason:   StopBound,
				CI:       stats.Interval{Mean: 408.51e9, Lower: 404e9, Upper: 413e9, Level: 0.99},
			},
		},
		InnerStops:   1,
		Pruned:       true,
		Elapsed:      3141592653 * time.Nanosecond,
		TotalSamples: 49,
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	var back Outcome
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, out) {
		t.Fatalf("round trip changed the outcome:\nsent: %#v\ngot:  %#v", out, back)
	}
}

// TestOutcomeJSONWithoutConfig pins the test-fake path: an outcome with
// no typed config must round-trip as nil, not error or zero-value.
func TestOutcomeJSONWithoutConfig(t *testing.T) {
	out := Outcome{Key: "fake", Metric: MetricBandwidth, Mean: 42e9}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	var back Outcome
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Config != nil {
		t.Fatalf("config = %#v, want nil", back.Config)
	}
	if !reflect.DeepEqual(back, out) {
		t.Fatalf("round trip changed the outcome: %#v vs %#v", back, out)
	}
}

// BenchmarkDigest measures the content-address computation over every
// Config variant — the per-request fingerprint cost the serving tier
// pays before it can consult its cache.
func BenchmarkDigest(b *testing.B) {
	configs := make([]Config, 0, len(wireConfigs))
	for _, c := range wireConfigs {
		configs = append(configs, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range configs {
			if _, err := ConfigDigest(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}
