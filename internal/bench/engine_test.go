package bench

import (
	"context"
	"strings"
	"testing"
	"time"

	"rooftune/internal/hw"
	"rooftune/internal/units"
)

func TestSimEngineDGEMMCase(t *testing.T) {
	eng := NewSimEngine(hw.IdunE52650v4, 1)
	c := eng.DGEMMCase(1000, 4096, 128, 1)
	if c.Metric() != MetricFlops {
		t.Fatal("DGEMM metric must be FLOPS")
	}
	if !strings.Contains(c.Key(), "1000x4096x128") {
		t.Fatalf("Key = %q", c.Key())
	}
	if !strings.Contains(c.Describe(), "n=1000") {
		t.Fatalf("Describe = %q", c.Describe())
	}
	before := eng.Clock.Now()
	inst, err := c.NewInvocation(0)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if eng.Clock.Now() <= before {
		t.Fatal("NewInvocation must account setup time on the clock")
	}
	if inst.Work() != units.DGEMMFlops(1000, 4096, 128) {
		t.Fatalf("Work = %v", inst.Work())
	}
	mid := eng.Clock.Now()
	inst.Warmup()
	if eng.Clock.Now() <= mid {
		t.Fatal("Warmup must advance the clock")
	}
	d := inst.Step()
	if d <= 0 {
		t.Fatalf("Step elapsed %v", d)
	}
	// Step result must be at microsecond resolution (gettimeofday).
	if d != d.Truncate(time.Microsecond) {
		t.Fatalf("Step not quantised: %v", d)
	}
}

func TestSimEngineMeasuredPerfNearModel(t *testing.T) {
	// The full loop through the Case interface must produce the model's
	// calibrated performance (Table IV values) within noise.
	eng := NewSimEngine(hw.IdunE52650v4, 1021)
	eval := NewEvaluator(eng.Clock, DefaultBudget())
	out, err := eval.Evaluate(context.Background(), eng.DGEMMCase(1000, 4096, 128, 1), None)
	if err != nil {
		t.Fatal(err)
	}
	gflops := out.Mean / 1e9
	if gflops < 408.71*0.985 || gflops > 408.71*1.015 {
		t.Fatalf("measured %f GFLOP/s, want ~408.71 (Table IV)", gflops)
	}
}

func TestSimEngineInvalidDims(t *testing.T) {
	eng := NewSimEngine(hw.IdunE52650v4, 1)
	if _, err := eng.DGEMMCase(0, 10, 10, 1).NewInvocation(0); err == nil {
		t.Fatal("invalid dims must error")
	}
	if _, err := eng.TriadCase(0, hw.AffinityClose, 1).NewInvocation(0); err == nil {
		t.Fatal("invalid TRIAD length must error")
	}
}

func TestSimEngineTriadCase(t *testing.T) {
	eng := NewSimEngine(hw.IdunGold6148, 7)
	c := eng.TriadCase(1<<20, hw.AffinitySpread, 2)
	if c.Metric() != MetricBandwidth {
		t.Fatal("TRIAD metric must be bandwidth")
	}
	if !strings.Contains(c.Describe(), "spread") {
		t.Fatalf("Describe = %q", c.Describe())
	}
	inst, err := c.NewInvocation(0)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.Work() != units.TriadBytes(1<<20) {
		t.Fatalf("Work = %v", inst.Work())
	}
	inst.Warmup()
	if d := inst.Step(); d <= 0 {
		t.Fatal("Step must advance")
	}
}

func TestSimEngineSeedReplay(t *testing.T) {
	run := func(seed uint64) float64 {
		eng := NewSimEngine(hw.IdunGold6132, seed)
		eval := NewEvaluator(eng.Clock, Budget{Invocations: 2, MaxIterations: 20,
			MaxTime: time.Hour, ErrorInverse: 100, CILevel: 0.99})
		out, err := eval.Evaluate(context.Background(), eng.DGEMMCase(2000, 2048, 256, 2), None)
		if err != nil {
			t.Fatal(err)
		}
		return out.Mean
	}
	if run(5) != run(5) {
		t.Fatal("same seed must replay exactly")
	}
	if run(5) == run(6) {
		t.Fatal("different seeds must differ")
	}
}

func TestNativeEngineDGEMM(t *testing.T) {
	if testing.Short() {
		t.Skip("native kernel run")
	}
	eng := NewNativeEngine(2)
	b := Budget{Invocations: 2, MaxIterations: 3, MaxTime: time.Minute,
		ErrorInverse: 100, CILevel: 0.99}
	eval := NewEvaluator(eng.Clock, b)
	out, err := eval.Evaluate(context.Background(), eng.DGEMMCase(64, 64, 64), None)
	if err != nil {
		t.Fatal(err)
	}
	if out.Mean <= 0 {
		t.Fatalf("native DGEMM metric %v", out.Mean)
	}
	if out.TotalSamples != 6 {
		t.Fatalf("samples = %d", out.TotalSamples)
	}
}

func TestNativeEngineTriad(t *testing.T) {
	if testing.Short() {
		t.Skip("native kernel run")
	}
	eng := NewNativeEngine(2)
	b := Budget{Invocations: 1, MaxIterations: 3, MaxTime: time.Minute,
		ErrorInverse: 100, CILevel: 0.99}
	eval := NewEvaluator(eng.Clock, b)
	out, err := eval.Evaluate(context.Background(), eng.TriadCase(1<<16), None)
	if err != nil {
		t.Fatal(err)
	}
	if out.Mean <= 0 {
		t.Fatalf("native TRIAD bandwidth %v", out.Mean)
	}
}

func TestMetricHelpers(t *testing.T) {
	if MetricFlops.Unit() != "GFLOP/s" || MetricBandwidth.Unit() != "GB/s" {
		t.Fatal("metric units")
	}
	if MetricFlops.Scale(2e9) != 2 {
		t.Fatal("metric scaling")
	}
}

func TestTimeoutScopeString(t *testing.T) {
	if ScopePerConfig.String() != "per-config" || ScopePerInvocation.String() != "per-invocation" {
		t.Fatal("scope names")
	}
}
