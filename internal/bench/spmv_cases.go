package bench

import (
	"fmt"
	"time"

	"rooftune/internal/parallel"
	"rooftune/internal/simspmv"
	"rooftune/internal/spmv"
	"rooftune/internal/vclock"
)

// SpMVCase returns the simulated benchmark case for one CSR SpMV
// configuration: an n x n matrix with nnzPerRow stored elements per row,
// evaluated at the given row-chunk size on the given socket count.
func (e *SimEngine) SpMVCase(n, nnzPerRow, chunk, sockets int) Case {
	return &simSpMVCase{engine: e, n: n, nnz: nnzPerRow, chunk: chunk, sockets: sockets}
}

type simSpMVCase struct {
	engine  *SimEngine
	n, nnz  int
	chunk   int
	sockets int
}

func (c *simSpMVCase) Key() string {
	return fmt.Sprintf("spmv/%d/%dx%d/%d", c.sockets, c.n, c.nnz, c.chunk)
}

func (c *simSpMVCase) Config() Config {
	return SpMVConfig{N: c.n, NNZPerRow: c.nnz, ChunkRows: c.chunk, Sockets: c.sockets}
}

func (c *simSpMVCase) Describe() string {
	return fmt.Sprintf("n=%d nnz/row=%d chunk=%d sockets=%d", c.n, c.nnz, c.chunk, c.sockets)
}

func (c *simSpMVCase) Metric() Metric { return MetricFlops }

func (c *simSpMVCase) NewInvocation(inv int) (Instance, error) {
	if c.n <= 0 || c.nnz <= 0 || c.chunk <= 0 {
		return nil, fmt.Errorf("bench: invalid SpMV configuration %s", c.Describe())
	}
	si := c.engine.SpMV.NewInvocation(c.n, c.nnz, c.chunk, c.sockets, inv, c.engine.Seed)
	c.engine.Clock.Advance(si.SetupTime())
	return &simSpMVInstance{clock: c.engine.Clock, inv: si}, nil
}

type simSpMVInstance struct {
	clock *vclock.Virtual
	inv   *simspmv.Invocation
}

func (i *simSpMVInstance) Warmup() { i.clock.Advance(i.inv.WarmupTime()) }

func (i *simSpMVInstance) Step() time.Duration {
	d := i.inv.StepTime()
	i.clock.Advance(d)
	return d
}

func (i *simSpMVInstance) Work() float64 { return i.inv.Work() }
func (i *simSpMVInstance) Close()        {}

// SpMVCase returns a real CSR SpMV case over a shared read-only matrix.
// The matrix is built once per sweep by the workload (synthesising it per
// invocation would dominate the measurement); the x and y vectors and the
// worker pool are still allocated per invocation, modelling the paper's
// process-level repetition. A non-positive threads falls back to the
// engine's parallelism, so thread count joins chunk size as a tunable.
func (e *NativeEngine) SpMVCase(a *spmv.CSR, chunk, threads int) Case {
	if threads <= 0 {
		threads = e.Threads
	}
	return &nativeSpMVCase{engine: e, a: a, chunk: chunk, threads: threads}
}

type nativeSpMVCase struct {
	engine  *NativeEngine
	a       *spmv.CSR
	chunk   int
	threads int
}

func (c *nativeSpMVCase) Key() string {
	return fmt.Sprintf("native-spmv/%dx%d/%d/t%d", c.a.N, c.a.NNZ(), c.chunk, c.threads)
}

func (c *nativeSpMVCase) Config() Config {
	nnzPerRow := 0
	if c.a.N > 0 {
		nnzPerRow = c.a.NNZ() / c.a.N
	}
	return SpMVConfig{N: c.a.N, NNZPerRow: nnzPerRow, ChunkRows: c.chunk, Sockets: 1, Threads: c.threads}
}

func (c *nativeSpMVCase) Describe() string {
	return fmt.Sprintf("n=%d nnz=%d chunk=%d threads=%d", c.a.N, c.a.NNZ(), c.chunk, c.threads)
}

func (c *nativeSpMVCase) Metric() Metric { return MetricFlops }

func (c *nativeSpMVCase) NewInvocation(inv int) (Instance, error) {
	if c.chunk <= 0 {
		return nil, fmt.Errorf("bench: invalid SpMV chunk %d", c.chunk)
	}
	if err := c.a.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	x := make([]float64, c.a.N)
	y := make([]float64, c.a.N)
	for i := range x {
		x[i] = 1 + float64(i%7)*0.25 + float64(inv)*0.01
	}
	return &nativeSpMVInstance{c: c, x: x, y: y, pool: parallel.NewPool(c.threads)}, nil
}

type nativeSpMVInstance struct {
	c    *nativeSpMVCase
	x, y []float64
	pool *parallel.Pool
}

func (i *nativeSpMVInstance) run() { spmv.MulChunked(i.y, i.c.a, i.x, i.c.chunk, i.pool) }

func (i *nativeSpMVInstance) Warmup() { i.run() }

func (i *nativeSpMVInstance) Step() time.Duration {
	return vclock.Time(i.run)
}

func (i *nativeSpMVInstance) Work() float64 { return i.c.a.Flops() }

func (i *nativeSpMVInstance) Close() {
	i.pool.Close()
	i.x, i.y = nil, nil
}
