package bench

import (
	"math"
	"sync/atomic"
)

// Incumbent is the incumbent-best bound that stop condition 4 prunes
// against. The evaluator loads it exactly once, at evaluation entry, so a
// whole evaluation sees one consistent bound; implementations therefore
// only need Bound to be safe for concurrent use, not stable over time.
//
// The serial search carries a plain scalar (Fixed). Sharded searches share
// one AtomicIncumbent across workers: its bound is monotone — it only ever
// rises to means that some configuration actually achieved — so pruning
// stays conservative no matter how evaluations interleave.
type Incumbent interface {
	// Bound returns the current incumbent metric value in base units, or
	// NoBest when no configuration has finished yet.
	Bound() float64
}

// Fixed is the serial Incumbent: a snapshot bound that never changes
// during the evaluation. It is what the one-case-at-a-time search loops
// pass, preserving the original scalar-`best` semantics bit-for-bit.
type Fixed float64

// Bound implements Incumbent.
func (f Fixed) Bound() float64 { return float64(f) }

// None is the Incumbent to pass when no incumbent configuration exists;
// stop condition 4 never fires against it.
var None Incumbent = Fixed(NoBest)

// AtomicIncumbent is a monotone incumbent bound shared by concurrent
// shard workers: readers load it before each evaluation, writers CAS-max
// it after. The bound only ever increases, and only to values some
// configuration's finished (non-pruned) evaluation actually reported, so
// any pruning decision taken against it is conservative — the pruned
// configuration lost to a true incumbent, never to a speculative value.
//
// The zero value is not ready for use; call NewAtomicIncumbent.
type AtomicIncumbent struct {
	bits atomic.Uint64
}

// NewAtomicIncumbent returns a shared bound holding NoBest.
func NewAtomicIncumbent() *AtomicIncumbent {
	a := &AtomicIncumbent{}
	a.bits.Store(math.Float64bits(NoBest))
	return a
}

// Bound implements Incumbent.
func (a *AtomicIncumbent) Bound() float64 {
	return math.Float64frombits(a.bits.Load())
}

// Offer raises the bound to v if v beats it. NaN offers are ignored; the
// bound stays a totally ordered maximum.
func (a *AtomicIncumbent) Offer(v float64) {
	if math.IsNaN(v) {
		return
	}
	for {
		old := a.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
