package bench

import (
	"fmt"
	"time"

	"rooftune/internal/blas"
	"rooftune/internal/parallel"
	"rooftune/internal/stream"
	"rooftune/internal/units"
	"rooftune/internal/vclock"
)

// NativeEngine executes benchmark cases with the real pure-Go kernels on
// the host machine, measuring wall-clock time. It demonstrates that the
// tool is not simulator-only: the same tuner builds a genuine roofline of
// whatever machine runs it.
type NativeEngine struct {
	Clock   vclock.Clock
	Threads int // worker goroutines; 0 means GOMAXPROCS
}

// NewNativeEngine builds a native engine with a real clock.
func NewNativeEngine(threads int) *NativeEngine {
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	return &NativeEngine{Clock: vclock.NewReal(), Threads: threads}
}

// Name identifies the engine in reports.
func (e *NativeEngine) Name() string { return "native" }

// DGEMMCase returns a real DGEMM case. Socket placement is not
// controllable from pure Go, so the threads parameter plays the role of
// the paper's core-allocation policy.
func (e *NativeEngine) DGEMMCase(n, m, k int) Case {
	return &nativeDGEMMCase{engine: e, n: n, m: m, k: k}
}

// TriadCase returns a real TRIAD case.
func (e *NativeEngine) TriadCase(elems int) Case {
	return &nativeTriadCase{engine: e, elems: elems}
}

type nativeDGEMMCase struct {
	engine  *NativeEngine
	n, m, k int
}

func (c *nativeDGEMMCase) Key() string {
	return fmt.Sprintf("native-dgemm/%dx%dx%d", c.n, c.m, c.k)
}

func (c *nativeDGEMMCase) Config() Config {
	return DGEMMConfig{N: c.n, M: c.m, K: c.k, Sockets: 1, Threads: c.engine.Threads}
}

func (c *nativeDGEMMCase) Describe() string {
	return fmt.Sprintf("n=%d m=%d k=%d threads=%d", c.n, c.m, c.k, c.engine.Threads)
}

func (c *nativeDGEMMCase) Metric() Metric { return MetricFlops }

func (c *nativeDGEMMCase) NewInvocation(inv int) (Instance, error) {
	if c.n <= 0 || c.m <= 0 || c.k <= 0 {
		return nil, fmt.Errorf("bench: invalid DGEMM dims %s", c.Describe())
	}
	// Fresh allocations model the paper's invocation-level repetition:
	// new process, new memory layout.
	a := blas.NewMatrix(c.n, c.k)
	b := blas.NewMatrix(c.k, c.m)
	out := blas.NewMatrix(c.n, c.m)
	a.FillPattern(1.0 + float64(inv)*0.01)
	b.FillPattern(2.0 + float64(inv)*0.01)
	return &nativeDGEMMInstance{c: c, a: a, b: b, out: out}, nil
}

type nativeDGEMMInstance struct {
	c         *nativeDGEMMCase
	a, b, out *blas.Matrix
}

func (i *nativeDGEMMInstance) run() {
	// alpha=1, beta=0 as in the paper's benchmark (§III-A).
	blas.DGEMM(1.0, i.a, i.b, 0.0, i.out, i.c.engine.Threads)
}

func (i *nativeDGEMMInstance) Warmup() { i.run() }

func (i *nativeDGEMMInstance) Step() time.Duration {
	return vclock.Time(i.run)
}

func (i *nativeDGEMMInstance) Work() float64 {
	return units.DGEMMFlops(i.c.n, i.c.m, i.c.k)
}

func (i *nativeDGEMMInstance) Close() { i.a, i.b, i.out = nil, nil, nil }

type nativeTriadCase struct {
	engine *NativeEngine
	elems  int
}

func (c *nativeTriadCase) Key() string {
	return fmt.Sprintf("native-triad/%d", c.elems)
}

func (c *nativeTriadCase) Config() Config {
	return TriadConfig{Elements: c.elems, Sockets: 1, Threads: c.engine.Threads}
}

func (c *nativeTriadCase) Describe() string {
	return fmt.Sprintf("N=%d (W=%v) threads=%d",
		c.elems, units.ByteSize(units.TriadBytes(c.elems)), c.engine.Threads)
}

func (c *nativeTriadCase) Metric() Metric { return MetricBandwidth }

func (c *nativeTriadCase) NewInvocation(inv int) (Instance, error) {
	if c.elems <= 0 {
		return nil, fmt.Errorf("bench: invalid TRIAD length %d", c.elems)
	}
	v := stream.NewVectors(c.elems)
	pool := parallel.NewPool(c.engine.Threads)
	return &nativeTriadInstance{c: c, v: v, pool: pool}, nil
}

type nativeTriadInstance struct {
	c    *nativeTriadCase
	v    *stream.Vectors
	pool *parallel.Pool
}

func (i *nativeTriadInstance) Warmup() { i.v.RunPool(stream.Triad, i.pool) }

func (i *nativeTriadInstance) Step() time.Duration {
	return vclock.Time(func() { i.v.RunPool(stream.Triad, i.pool) })
}

func (i *nativeTriadInstance) Work() float64 { return units.TriadBytes(i.c.elems) }

func (i *nativeTriadInstance) Close() {
	i.pool.Close()
	i.v = nil
}
