package bench

import (
	"context"
	"fmt"
	"math"
	"time"

	"rooftune/internal/stats"
	"rooftune/internal/vclock"
)

// NoBest is the bound to pass when no incumbent configuration exists yet;
// stop condition 4 never fires against it.
var NoBest = math.Inf(-1)

// InvocationResult summarises one completed invocation.
type InvocationResult struct {
	Mean     float64       // mean metric over the invocation's iterations
	Samples  int           // iterations measured
	Measured time.Duration // accumulated measured kernel time
	Reason   StopReason    // which condition ended the iteration loop
	CI       stats.Interval
}

// Outcome is the full evaluation result of one configuration.
type Outcome struct {
	Key      string
	Describe string
	Metric   Metric
	// Config is the evaluated configuration's typed identity, copied from
	// the Case so winners are recovered without parsing Key.
	Config Config

	// Mean is the grand mean over invocation means — the configuration's
	// reported performance.
	Mean float64
	// Invocations holds per-invocation details in execution order.
	Invocations []InvocationResult
	// InnerStops counts invocations that stop condition 4 ended early
	// ("Inner"): their means are truncated low, never above the incumbent.
	InnerStops int
	// Pruned reports that the invocation loop itself was abandoned by the
	// outer bound ("Outer"): the configuration provably could not beat
	// the incumbent, so remaining invocations were skipped.
	Pruned bool
	// Elapsed is the evaluation's total clock cost: setup, warm-up,
	// measurement and overheads — the quantity the paper's "Time"
	// columns accumulate.
	Elapsed time.Duration
	// TotalSamples counts measured iterations across invocations.
	TotalSamples int
}

// Better reports whether this outcome beats the given metric value.
// Outer-pruned outcomes never do: their data is partial by construction,
// and inner-stopped invocations only ever truncate the mean downward, so
// a higher mean is always a sound improvement signal.
func (o *Outcome) Better(best float64) bool {
	return !o.Pruned && o.Mean > best
}

// Evaluator runs the Fig. 2 benchmarking process for one configuration at
// a time against a clock.
type Evaluator struct {
	Clock  vclock.Clock
	Budget Budget
	// Sampler, when non-nil, observes every measured iteration (the
	// §VII time-series hook).
	Sampler Sampler
}

// NewEvaluator builds an evaluator with the budget's defaults normalised.
func NewEvaluator(clock vclock.Clock, budget Budget) *Evaluator {
	return &Evaluator{Clock: clock, Budget: budget.normalized()}
}

// Evaluate runs the full invocation/iteration process for case c, pruning
// against the incumbent bound inc (use None if no incumbent exists). The
// bound is loaded exactly once, on entry, so the whole evaluation prunes
// against one consistent value — sharded searches snapshot their shared
// AtomicIncumbent the same way a serial search carries its scalar. The
// returned outcome's Elapsed is measured on the evaluator's clock, so it
// includes setup and warm-up cost — everything the search pays for.
// (Under case sharding the clock is shared by concurrent evaluations, so
// Elapsed then spans the evaluation's concurrent window; see core.Tuner.)
//
// Cancelling ctx aborts the evaluation between kernel executions — after
// at most one more Step — and returns ctx.Err(); the partial outcome is
// discarded, never reported as a measurement.
//
//rooflint:hotpath
func (e *Evaluator) Evaluate(ctx context.Context, c Case, inc Incumbent) (*Outcome, error) {
	best := inc.Bound()
	b := e.Budget.normalized()
	out := &Outcome{Key: c.Key(), Config: c.Config(), Describe: c.Describe(), Metric: c.Metric()}
	out.Invocations = make([]InvocationResult, 0, b.Invocations)
	watch := vclock.NewStopwatch(e.Clock)

	var (
		outer          stats.Welford
		configMeasured time.Duration
	)
	for inv := 0; inv < b.Invocations; inv++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if b.Scope == ScopePerConfig && configMeasured >= b.MaxTime {
			break // stop condition 1 at configuration scope
		}
		inst, err := c.NewInvocation(inv)
		if err != nil {
			return nil, fmt.Errorf("bench: invocation %d of %s: %w", inv, c.Key(), err)
		}
		timeLeft := b.MaxTime
		if b.Scope == ScopePerConfig {
			timeLeft = b.MaxTime - configMeasured
		}
		res := e.runIteration(ctx, c.Key(), inv, inst, b, best, timeLeft)
		inst.Close()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out.Invocations = append(out.Invocations, res)
		out.TotalSamples += res.Samples
		configMeasured += res.Measured
		if res.Reason == StopBound {
			out.InnerStops++
		}
		outer.Add(res.Mean)

		// Stop condition 4 on the invocation loop ("Outer"): if even the
		// upper confidence bound of the invocation-level mean cannot reach
		// the incumbent, drop the configuration without the remaining
		// invocations.
		if b.UseOuterBound && outer.N() >= 2 && !math.IsInf(best, -1) {
			iv := e.interval(&outer, b)
			if iv.Mean+iv.Margin() < best {
				out.Pruned = true
				break
			}
		}
	}
	out.Mean = outer.Mean()
	out.Elapsed = watch.Elapsed()
	return out, nil
}

// runIteration executes one invocation's iteration loop under the budget.
// timeLeft is the remaining measured-time allowance for this invocation
// (already scoped by the caller). At least one iteration always runs, so
// every invocation produces a mean.
//
//rooflint:hotpath
func (e *Evaluator) runIteration(ctx context.Context, key string, invocation int, inst Instance, b Budget, best float64, timeLeft time.Duration) InvocationResult {
	inst.Warmup()

	var (
		w        stats.Welford
		measured time.Duration
		reason   = StopNone
		samples  []float64 // retained only for the median extension
		detector *stats.SteadyDetector
	)
	if b.UseMedian {
		// Sized to the iteration cap up front: the median rule keeps every
		// steady sample, and growing the slice mid-loop would charge
		// allocator time to the measured stream.
		samples = make([]float64, 0, b.MaxIterations)
	}
	if b.UseSteadyState {
		detector = stats.NewSteadyDetector(b.SteadyWindow, b.SteadyThreshold)
	}
	work := inst.Work()
	for count := 0; ; {
		if ctx.Err() != nil {
			break // Evaluate discards the partial outcome and reports ctx.Err()
		}
		if count >= b.MaxIterations {
			reason = StopMaxCount // stop condition 2
			break
		}
		if count > 0 && measured >= timeLeft {
			reason = StopMaxTime // stop condition 1
			break
		}
		elapsed := inst.Step()
		if elapsed <= 0 {
			elapsed = time.Nanosecond
		}
		measured += elapsed
		metric := work / elapsed.Seconds()
		if e.Sampler != nil {
			e.Sampler.Sample(key, invocation, count, elapsed, metric)
		}
		count++

		// Steady-state warm-up exclusion: the sample on which the stream
		// is first declared steady restarts the statistics, so the
		// stop-condition decisions below only ever see steady samples.
		if detector != nil && !detector.Steady() {
			if detector.Add(metric) {
				w.Reset()
				samples = samples[:0]
			}
		}
		w.Add(metric)
		if b.UseMedian {
			samples = append(samples, metric)
		}
		n := int(w.N())
		// During warm-up (steady-state mode, detector not yet latched) no
		// statistical stop decision is sound: the mean is still drifting.
		if detector != nil && !detector.Steady() {
			continue
		}

		// Stop condition 3: the confidence interval of the mean has
		// converged to within +-1/ErrorInverse of the mean.
		if b.UseConfidence && n >= b.MinCISamples {
			if b.UseMedian {
				if medianConverged(samples, b) {
					reason = StopConfidence
					break
				}
			} else {
				iv := e.interval(&w, b)
				if iv.RelativeHalfWidth() <= b.RelWidthTarget() {
					reason = StopConfidence
					break
				}
			}
		}

		// Stop condition 4 (Listing 1): mean + marg < best, after at
		// least MinCount iterations. This ends the *iteration loop*; the
		// invocation loop continues (the "Outer" flag handles that level).
		if b.UseInnerBound && n >= b.MinCount && !math.IsInf(best, -1) {
			iv := e.interval(&w, b)
			if iv.Mean+iv.Margin() < best {
				reason = StopBound
				break
			}
		}
	}

	res := InvocationResult{
		Mean:     w.Mean(),
		Samples:  int(w.N()),
		Measured: measured,
		Reason:   reason,
	}
	res.CI = e.intervalFinal(&w, b)
	return res
}

func (e *Evaluator) interval(w *stats.Welford, b Budget) stats.Interval {
	if b.UseStudentT {
		return stats.StudentCI(w, b.CILevel)
	}
	return stats.NormalCI(w, b.CILevel)
}

func (e *Evaluator) intervalFinal(w *stats.Welford, b Budget) stats.Interval {
	if w.N() < 2 {
		return stats.Interval{Mean: w.Mean(), Lower: w.Mean(), Upper: w.Mean(), Level: b.CILevel}
	}
	return e.interval(w, b)
}

// medianConverged implements the future-work median rule: the notched
// boxplot confidence interval of the median (1.58*IQR/sqrt(n)) relative
// to the median is within the budget's target.
func medianConverged(samples []float64, b Budget) bool {
	med := stats.Median(samples)
	if med == 0 {
		return false
	}
	marg := 1.58 * stats.IQR(samples) / math.Sqrt(float64(len(samples)))
	return marg/math.Abs(med) <= b.RelWidthTarget()
}
