package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"rooftune/internal/vclock"
)

// scriptedCase is a deterministic fake benchmark whose iteration times
// follow a script, letting every stop condition be tested in isolation.
type scriptedCase struct {
	key   string
	clock *vclock.Virtual
	work  float64
	// times returns the duration of iteration i for invocation inv.
	times func(inv, i int) time.Duration
	// invocationsStarted counts NewInvocation calls.
	invocationsStarted int
}

func (s *scriptedCase) Key() string      { return s.key }
func (s *scriptedCase) Config() Config   { return nil }
func (s *scriptedCase) Describe() string { return "scripted " + s.key }
func (s *scriptedCase) Metric() Metric   { return MetricFlops }

func (s *scriptedCase) NewInvocation(inv int) (Instance, error) {
	s.invocationsStarted++
	return &scriptedInstance{c: s, inv: inv}, nil
}

type scriptedInstance struct {
	c      *scriptedCase
	inv, i int
	warmed bool
}

func (si *scriptedInstance) Warmup() { si.warmed = true }

func (si *scriptedInstance) Step() time.Duration {
	if !si.warmed {
		panic("Step before Warmup")
	}
	d := si.c.times(si.inv, si.i)
	si.i++
	si.c.clock.Advance(d)
	return d
}

func (si *scriptedInstance) Work() float64 { return si.c.work }
func (si *scriptedInstance) Close()        {}

func constantCase(clock *vclock.Virtual, d time.Duration) *scriptedCase {
	return &scriptedCase{
		key: "const", clock: clock, work: 1e9,
		times: func(inv, i int) time.Duration { return d },
	}
}

func TestStopMaxCount(t *testing.T) {
	clock := vclock.NewVirtual()
	b := DefaultBudget()
	b.Invocations = 2
	b.MaxIterations = 7
	e := NewEvaluator(clock, b)
	out, err := e.Evaluate(context.Background(), constantCase(clock, time.Millisecond), None)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Invocations) != 2 {
		t.Fatalf("invocations = %d", len(out.Invocations))
	}
	for _, inv := range out.Invocations {
		if inv.Samples != 7 || inv.Reason != StopMaxCount {
			t.Fatalf("invocation: %+v", inv)
		}
	}
	if out.TotalSamples != 14 {
		t.Fatalf("TotalSamples = %d", out.TotalSamples)
	}
	// metric = 1e9 work / 1ms = 1e12.
	if math.Abs(out.Mean-1e12) > 1 {
		t.Fatalf("Mean = %v", out.Mean)
	}
}

func TestStopMaxTimePerInvocation(t *testing.T) {
	clock := vclock.NewVirtual()
	b := DefaultBudget()
	b.Invocations = 3
	b.MaxIterations = 1000
	b.MaxTime = 10 * time.Millisecond
	b.Scope = ScopePerInvocation
	e := NewEvaluator(clock, b)
	out, err := e.Evaluate(context.Background(), constantCase(clock, 3*time.Millisecond), None)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Invocations) != 3 {
		t.Fatalf("per-invocation scope must run all invocations: %d", len(out.Invocations))
	}
	for _, inv := range out.Invocations {
		// 4 iterations reach 12ms >= 10ms.
		if inv.Samples != 4 || inv.Reason != StopMaxTime {
			t.Fatalf("invocation: %+v", inv)
		}
	}
}

func TestStopMaxTimePerConfig(t *testing.T) {
	clock := vclock.NewVirtual()
	b := DefaultBudget()
	b.Invocations = 10
	b.MaxIterations = 1000
	b.MaxTime = 10 * time.Millisecond
	b.Scope = ScopePerConfig
	e := NewEvaluator(clock, b)
	out, err := e.Evaluate(context.Background(), constantCase(clock, 3*time.Millisecond), None)
	if err != nil {
		t.Fatal(err)
	}
	// Invocation 1 burns 12ms >= 10ms total: remaining 9 are skipped.
	if len(out.Invocations) != 1 {
		t.Fatalf("per-config scope must skip remaining invocations: got %d", len(out.Invocations))
	}
}

func TestStopConfidenceConstantSamples(t *testing.T) {
	clock := vclock.NewVirtual()
	b := DefaultBudget()
	b.Invocations = 1
	b.UseConfidence = true
	b.MinCISamples = 5
	e := NewEvaluator(clock, b)
	// Constant samples: zero variance, CI collapses at the first check.
	out, err := e.Evaluate(context.Background(), constantCase(clock, time.Millisecond), None)
	if err != nil {
		t.Fatal(err)
	}
	inv := out.Invocations[0]
	if inv.Reason != StopConfidence {
		t.Fatalf("reason = %v", inv.Reason)
	}
	if inv.Samples != b.MinCISamples {
		t.Fatalf("should stop at the first permitted check: n=%d", inv.Samples)
	}
}

func TestConfidenceRespectsMinCISamples(t *testing.T) {
	clock := vclock.NewVirtual()
	b := DefaultBudget()
	b.Invocations = 1
	b.UseConfidence = true
	b.MinCISamples = 17
	e := NewEvaluator(clock, b)
	out, _ := e.Evaluate(context.Background(), constantCase(clock, time.Millisecond), None)
	if out.Invocations[0].Samples != 17 {
		t.Fatalf("stopped at n=%d, want 17", out.Invocations[0].Samples)
	}
}

func TestInnerBoundEndsInvocationNotConfig(t *testing.T) {
	clock := vclock.NewVirtual()
	// Slow case: metric 1e11; incumbent best is 1e12 — hopeless.
	c := constantCase(clock, 10*time.Millisecond)
	b := DefaultBudget()
	b.Invocations = 4
	b.UseInnerBound = true
	b.MinCount = 2
	e := NewEvaluator(clock, b)
	out, err := e.Evaluate(context.Background(), c, Fixed(1e12))
	if err != nil {
		t.Fatal(err)
	}
	// Every invocation stops at MinCount via the bound, but the
	// invocation loop itself continues (that is the Outer flag's job).
	if len(out.Invocations) != 4 {
		t.Fatalf("inner bound must not abandon the config: %d invocations", len(out.Invocations))
	}
	if out.InnerStops != 4 {
		t.Fatalf("InnerStops = %d", out.InnerStops)
	}
	for _, inv := range out.Invocations {
		if inv.Reason != StopBound || inv.Samples != 2 {
			t.Fatalf("invocation: %+v", inv)
		}
	}
	if out.Pruned {
		t.Fatal("inner stops alone must not set Pruned")
	}
	if out.Better(1e12) {
		t.Fatal("a bound-stopped config must never beat the incumbent")
	}
}

func TestInnerBoundRespectsMinCount(t *testing.T) {
	clock := vclock.NewVirtual()
	c := constantCase(clock, 10*time.Millisecond)
	b := DefaultBudget()
	b.Invocations = 1
	b.MaxIterations = 300
	b.UseInnerBound = true
	b.MinCount = 100 // the paper's 2695v4 remedy
	e := NewEvaluator(clock, b)
	out, _ := e.Evaluate(context.Background(), c, Fixed(1e12))
	if got := out.Invocations[0].Samples; got != 100 {
		t.Fatalf("bound fired at n=%d, want exactly min_count=100", got)
	}
}

func TestOuterBoundPrunesConfig(t *testing.T) {
	clock := vclock.NewVirtual()
	c := constantCase(clock, 10*time.Millisecond)
	b := DefaultBudget()
	b.Invocations = 10
	b.MaxIterations = 5
	b.UseOuterBound = true
	e := NewEvaluator(clock, b)
	out, err := e.Evaluate(context.Background(), c, Fixed(1e12))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Pruned {
		t.Fatal("outer bound must prune")
	}
	if len(out.Invocations) != 2 {
		t.Fatalf("outer bound needs exactly 2 invocation means: got %d", len(out.Invocations))
	}
}

func TestOuterBoundNeedsTwoInvocations(t *testing.T) {
	clock := vclock.NewVirtual()
	c := constantCase(clock, 10*time.Millisecond)
	b := DefaultBudget()
	b.Invocations = 1
	b.MaxIterations = 5
	b.UseOuterBound = true
	e := NewEvaluator(clock, b)
	out, _ := e.Evaluate(context.Background(), c, Fixed(1e12))
	if out.Pruned {
		t.Fatal("outer bound must not fire with a single invocation mean")
	}
}

func TestNoBoundWithoutIncumbent(t *testing.T) {
	clock := vclock.NewVirtual()
	c := constantCase(clock, time.Millisecond)
	b := DefaultBudget()
	b.Invocations = 2
	b.MaxIterations = 5
	b.UseInnerBound = true
	b.UseOuterBound = true
	e := NewEvaluator(clock, b)
	out, _ := e.Evaluate(context.Background(), c, None)
	if out.Pruned || out.InnerStops > 0 {
		t.Fatal("stop condition 4 must never fire against NoBest")
	}
}

func TestListing1Semantics(t *testing.T) {
	// Listing 1: break when mean + marg < best. A case whose metric sits
	// just *below* best but whose CI still reaches best must keep
	// running; one far below stops at MinCount.
	clock := vclock.NewVirtual()
	jitter := []time.Duration{
		1000 * time.Microsecond, 1040 * time.Microsecond,
		960 * time.Microsecond, 1020 * time.Microsecond,
		980 * time.Microsecond, 1010 * time.Microsecond,
	}
	c := &scriptedCase{
		key: "near", clock: clock, work: 1e9,
		times: func(inv, i int) time.Duration { return jitter[i%len(jitter)] },
	}
	b := DefaultBudget()
	b.Invocations = 1
	b.MaxIterations = 6
	b.UseInnerBound = true
	e := NewEvaluator(clock, b)
	// mean metric ~1e12; best just 0.5% above: CI (wide, n small) covers it.
	out, _ := e.Evaluate(context.Background(), c, Fixed(1.005e12))
	if out.Invocations[0].Reason == StopBound {
		t.Fatal("bound fired although the CI still covered the incumbent")
	}
	// best 40% above: hopeless, prune at MinCount.
	clock2 := vclock.NewVirtual()
	c.clock = clock2
	e2 := NewEvaluator(clock2, b)
	out2, _ := e2.Evaluate(context.Background(), c, Fixed(1.4e12))
	if out2.Invocations[0].Reason != StopBound {
		t.Fatalf("bound must fire against a hopeless incumbent: %+v", out2.Invocations[0])
	}
}

func TestElapsedTracksClock(t *testing.T) {
	clock := vclock.NewVirtual()
	b := DefaultBudget()
	b.Invocations = 2
	b.MaxIterations = 10
	e := NewEvaluator(clock, b)
	out, _ := e.Evaluate(context.Background(), constantCase(clock, time.Millisecond), None)
	if out.Elapsed != clock.Now() {
		t.Fatalf("Elapsed %v != clock %v", out.Elapsed, clock.Now())
	}
	if out.Elapsed < 20*time.Millisecond {
		t.Fatalf("Elapsed %v implausibly small", out.Elapsed)
	}
}

func TestMeanOverInvocationMeans(t *testing.T) {
	clock := vclock.NewVirtual()
	// Invocation 0 runs at 1ms, invocation 1 at 2ms: metrics 1e12 and
	// 5e11; the config mean is their average.
	c := &scriptedCase{
		key: "two-speeds", clock: clock, work: 1e9,
		times: func(inv, i int) time.Duration {
			return time.Duration(inv+1) * time.Millisecond
		},
	}
	b := DefaultBudget()
	b.Invocations = 2
	b.MaxIterations = 4
	e := NewEvaluator(clock, b)
	out, _ := e.Evaluate(context.Background(), c, None)
	want := (1e12 + 5e11) / 2
	if math.Abs(out.Mean-want)/want > 1e-9 {
		t.Fatalf("Mean = %v, want %v", out.Mean, want)
	}
}

func TestStudentTBudget(t *testing.T) {
	clock := vclock.NewVirtual()
	b := DefaultBudget()
	b.Invocations = 1
	b.MaxIterations = 12
	b.UseConfidence = true
	b.UseStudentT = true
	b.MinCISamples = 5
	e := NewEvaluator(clock, b)
	out, _ := e.Evaluate(context.Background(), constantCase(clock, time.Millisecond), None)
	if out.Invocations[0].Reason != StopConfidence {
		t.Fatal("t-interval must also converge on constant data")
	}
}

func TestMedianStopCondition(t *testing.T) {
	clock := vclock.NewVirtual()
	b := DefaultBudget()
	b.Invocations = 1
	b.UseConfidence = true
	b.UseMedian = true
	b.MinCISamples = 5
	e := NewEvaluator(clock, b)
	out, _ := e.Evaluate(context.Background(), constantCase(clock, time.Millisecond), None)
	if out.Invocations[0].Reason != StopConfidence {
		t.Fatal("median rule must converge on constant data")
	}
}

func TestBudgetNormalization(t *testing.T) {
	var b Budget // all zero
	n := b.normalized()
	if n.Invocations != 1 || n.MaxIterations != 1 || n.MaxTime <= 0 ||
		n.ErrorInverse != 100 || n.CILevel != 0.99 || n.MinCount != 2 || n.MinCISamples != 2 {
		t.Fatalf("normalized zero budget: %+v", n)
	}
}

func TestDefaultBudgetIsTableI(t *testing.T) {
	b := DefaultBudget()
	if b.Invocations != 10 || b.MaxIterations != 200 ||
		b.MaxTime != 10*time.Second || b.ErrorInverse != 100 || b.CILevel != 0.99 {
		t.Fatalf("Table I mismatch: %+v", b)
	}
	if b.RelWidthTarget() != 0.01 {
		t.Fatalf("Error=100 must mean ±1%%: %v", b.RelWidthTarget())
	}
	if b.UseConfidence || b.UseInnerBound || b.UseOuterBound {
		t.Fatal("Default technique must have every optimisation off")
	}
}

func TestWithFlagsAndMinCount(t *testing.T) {
	b := DefaultBudget().WithFlags(true, true, false).WithMinCount(100)
	if !b.UseConfidence || !b.UseInnerBound || b.UseOuterBound || b.MinCount != 100 {
		t.Fatalf("WithFlags/WithMinCount: %+v", b)
	}
}

func TestStopReasonStrings(t *testing.T) {
	for r, want := range map[StopReason]string{
		StopNone: "none", StopMaxTime: "max-time", StopMaxCount: "max-count",
		StopConfidence: "confidence", StopBound: "bound-pruned",
	} {
		if r.String() != want {
			t.Errorf("StopReason(%d) = %q", int(r), r.String())
		}
	}
}

func TestEvaluateErrorPropagation(t *testing.T) {
	clock := vclock.NewVirtual()
	e := NewEvaluator(clock, DefaultBudget())
	_, err := e.Evaluate(context.Background(), &failingCase{}, None)
	if err == nil {
		t.Fatal("engine errors must propagate")
	}
}

type failingCase struct{}

func (f *failingCase) Key() string      { return "fail" }
func (f *failingCase) Config() Config   { return nil }
func (f *failingCase) Describe() string { return "fail" }
func (f *failingCase) Metric() Metric   { return MetricFlops }
func (f *failingCase) NewInvocation(int) (Instance, error) {
	return nil, fmt.Errorf("boom")
}

func TestEvaluateCancellation(t *testing.T) {
	clock := vclock.NewVirtual()
	b := DefaultBudget()
	b.Invocations = 5
	b.MaxIterations = 1000
	e := NewEvaluator(clock, b)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Evaluate(ctx, constantCase(clock, time.Millisecond), None); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Cancel mid-evaluation: the sampler observes iterations, so cancel
	// from the measurement path itself and count how far the loop ran.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	e.Sampler = samplerFunc(func() {
		if seen.Add(1) == 3 {
			cancel()
		}
	})
	out, err := e.Evaluate(ctx, constantCase(clock, time.Millisecond), None)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatalf("canceled evaluation leaked a partial outcome: %+v", out)
	}
	if got := seen.Load(); got != 3 {
		t.Fatalf("iterations after cancel: %d samples, want exactly 3", got)
	}
}

// samplerFunc adapts a closure to the Sampler interface for tests.
type samplerFunc func()

func (f samplerFunc) Sample(string, int, int, time.Duration, float64) { f() }
