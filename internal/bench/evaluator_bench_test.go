package bench

import (
	"context"
	"testing"
	"time"

	"rooftune/internal/vclock"
)

// The BenchmarkEvaluate family pins the evaluator's harness overhead:
// ns/op for the fixed-shape evaluation below and — via b.ReportAllocs —
// allocs/op, the runtime counterpart of the noalloc analyzer. CI diffs
// both against the committed BENCH_main.json baseline, so an allocation
// creeping into the invocation/iteration loops fails the bench job even
// if it slips past the static pattern check. The scripted case runs on
// a virtual clock: every run measures exactly Invocations x
// MaxIterations scripted steps, so the counters are stable.

// benchEvaluateBudget is a deterministic evaluation shape: statistical
// stops off, so every invocation runs its full iteration count.
func benchEvaluateBudget(median, steady bool) Budget {
	b := DefaultBudget()
	b.Invocations = 10
	b.MaxIterations = 100
	b.UseMedian = median
	b.UseSteadyState = steady
	return b
}

func benchmarkEvaluate(b *testing.B, budget Budget) {
	clock := vclock.NewVirtual()
	e := NewEvaluator(clock, budget)
	c := constantCase(clock, time.Millisecond)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Evaluate(ctx, c, None); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	benchmarkEvaluate(b, benchEvaluateBudget(false, false))
}

func BenchmarkEvaluateMedian(b *testing.B) {
	benchmarkEvaluate(b, benchEvaluateBudget(true, false))
}

func BenchmarkEvaluateSteadyState(b *testing.B) {
	benchmarkEvaluate(b, benchEvaluateBudget(false, true))
}

// BenchmarkEvaluatePruned exercises the bound-pruned path: an incumbent
// far above the case's performance stops every invocation at MinCount
// iterations and outer-prunes the configuration.
func BenchmarkEvaluatePruned(b *testing.B) {
	budget := benchEvaluateBudget(false, false)
	budget.UseInnerBound = true
	budget.UseOuterBound = true
	clock := vclock.NewVirtual()
	e := NewEvaluator(clock, budget)
	c := constantCase(clock, time.Millisecond)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Evaluate(ctx, c, Fixed(1e15)); err != nil {
			b.Fatal(err)
		}
	}
}
