package bench

import (
	"fmt"
	"time"

	"rooftune/internal/parallel"
	"rooftune/internal/simstencil"
	"rooftune/internal/stencil"
	"rooftune/internal/vclock"
)

// StencilCase returns the simulated benchmark case for one 2D 5-point
// Jacobi configuration: an nx x ny grid swept in tileX x tileY tiles on
// the given socket count.
func (e *SimEngine) StencilCase(nx, ny, tileX, tileY, sockets int) Case {
	return &simStencilCase{engine: e, nx: nx, ny: ny, tx: tileX, ty: tileY, sockets: sockets}
}

type simStencilCase struct {
	engine  *SimEngine
	nx, ny  int
	tx, ty  int
	sockets int
}

func (c *simStencilCase) Key() string {
	return fmt.Sprintf("stencil/%d/%dx%d/%dx%d", c.sockets, c.nx, c.ny, c.tx, c.ty)
}

func (c *simStencilCase) Config() Config {
	return StencilConfig{NX: c.nx, NY: c.ny, TileX: c.tx, TileY: c.ty, Sockets: c.sockets}
}

func (c *simStencilCase) Describe() string {
	return fmt.Sprintf("grid=%dx%d tile=%dx%d sockets=%d", c.nx, c.ny, c.tx, c.ty, c.sockets)
}

func (c *simStencilCase) Metric() Metric { return MetricFlops }

func (c *simStencilCase) NewInvocation(inv int) (Instance, error) {
	if c.nx < 3 || c.ny < 3 || c.tx <= 0 || c.ty <= 0 {
		return nil, fmt.Errorf("bench: invalid stencil configuration %s", c.Describe())
	}
	si := c.engine.Stencil.NewInvocation(c.nx, c.ny, c.tx, c.ty, c.sockets, inv, c.engine.Seed)
	c.engine.Clock.Advance(si.SetupTime())
	return &simStencilInstance{clock: c.engine.Clock, inv: si}, nil
}

type simStencilInstance struct {
	clock *vclock.Virtual
	inv   *simstencil.Invocation
}

func (i *simStencilInstance) Warmup() { i.clock.Advance(i.inv.WarmupTime()) }

func (i *simStencilInstance) Step() time.Duration {
	d := i.inv.StepTime()
	i.clock.Advance(d)
	return d
}

func (i *simStencilInstance) Work() float64 { return i.inv.Work() }
func (i *simStencilInstance) Close()        {}

// StencilCase returns a real Jacobi case. Fresh ping-pong grids are
// allocated per invocation (process-level repetition); a non-positive
// threads falls back to the engine's parallelism, so thread count joins
// the tile shape as a tunable.
func (e *NativeEngine) StencilCase(nx, ny, tileX, tileY, threads int) Case {
	if threads <= 0 {
		threads = e.Threads
	}
	return &nativeStencilCase{engine: e, nx: nx, ny: ny, tx: tileX, ty: tileY, threads: threads}
}

type nativeStencilCase struct {
	engine  *NativeEngine
	nx, ny  int
	tx, ty  int
	threads int
}

func (c *nativeStencilCase) Key() string {
	return fmt.Sprintf("native-stencil/%dx%d/%dx%d/t%d", c.nx, c.ny, c.tx, c.ty, c.threads)
}

func (c *nativeStencilCase) Config() Config {
	return StencilConfig{NX: c.nx, NY: c.ny, TileX: c.tx, TileY: c.ty, Sockets: 1, Threads: c.threads}
}

func (c *nativeStencilCase) Describe() string {
	return fmt.Sprintf("grid=%dx%d tile=%dx%d threads=%d", c.nx, c.ny, c.tx, c.ty, c.threads)
}

func (c *nativeStencilCase) Metric() Metric { return MetricFlops }

func (c *nativeStencilCase) NewInvocation(inv int) (Instance, error) {
	if c.nx < 3 || c.ny < 3 {
		return nil, fmt.Errorf("bench: stencil grid %dx%d too small", c.nx, c.ny)
	}
	if c.tx <= 0 || c.ty <= 0 {
		return nil, fmt.Errorf("bench: invalid stencil tile %dx%d", c.tx, c.ty)
	}
	src := stencil.NewGrid(c.nx, c.ny)
	dst := stencil.NewGrid(c.nx, c.ny)
	// A deterministic interior perturbation varying per invocation, so
	// repeated invocations model fresh process state.
	for i := range src.Data {
		src.Data[i] += float64((i+inv)%5) * 1e-3
	}
	return &nativeStencilInstance{c: c, src: src, dst: dst, pool: parallel.NewPool(c.threads)}, nil
}

type nativeStencilInstance struct {
	c        *nativeStencilCase
	src, dst *stencil.Grid
	pool     *parallel.Pool
}

func (i *nativeStencilInstance) run() {
	stencil.Jacobi5Tiled(i.dst, i.src, i.c.tx, i.c.ty, i.pool)
	i.src, i.dst = i.dst, i.src
}

func (i *nativeStencilInstance) Warmup() { i.run() }

func (i *nativeStencilInstance) Step() time.Duration {
	return vclock.Time(i.run)
}

func (i *nativeStencilInstance) Work() float64 { return i.src.Flops() }

func (i *nativeStencilInstance) Close() {
	i.pool.Close()
	i.src, i.dst = nil, nil
}
