package bench

import (
	"context"
	"encoding/csv"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"rooftune/internal/vclock"
)

func TestCSVSampler(t *testing.T) {
	var sb strings.Builder
	s := NewCSVSampler(&sb)
	s.Sample("k1", 0, 0, 1500*time.Microsecond, 2.5e11)
	s.Sample("k1", 0, 1, 1400*time.Microsecond, 2.6e11)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("rows: %d\n%s", len(lines), out)
	}
	if lines[0] != "key,invocation,iteration,elapsed_ns,metric" {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "k1,0,0,1500000,") {
		t.Fatalf("row 1: %q", lines[1])
	}
}

func TestCSVSamplerConcurrent(t *testing.T) {
	// Shard workers reach one sampler concurrently (directly or through
	// MultiSampler); every emitted row must stay intact — interleaving is
	// allowed only at row granularity. Run under -race in CI.
	var sb strings.Builder
	s := NewCSVSampler(&sb)
	const workers, rows = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", w)
			for i := 0; i < rows; i++ {
				s.Sample(key, 0, i, time.Millisecond, 1e9)
			}
		}(w)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("concurrent writes corrupted the CSV stream: %v", err)
	}
	if len(recs) != workers*rows+1 {
		t.Fatalf("rows: %d, want %d plus header", len(recs)-1, workers*rows)
	}
	perKey := map[string]int{}
	for _, rec := range recs[1:] {
		if len(rec) != 5 {
			t.Fatalf("malformed row: %v", rec)
		}
		perKey[rec[0]]++
	}
	for w := 0; w < workers; w++ {
		if got := perKey[fmt.Sprintf("k%d", w)]; got != rows {
			t.Fatalf("worker %d: %d rows, want %d", w, got, rows)
		}
	}
}

func TestTraceBuffer(t *testing.T) {
	b := NewTraceBuffer(0)
	b.Sample("a", 0, 0, time.Millisecond, 1)
	b.Sample("a", 0, 1, time.Millisecond, 2)
	b.Sample("b", 1, 0, time.Millisecond, 3)
	if b.Len("a") != 2 || b.Len("b") != 1 {
		t.Fatalf("lens: %d %d", b.Len("a"), b.Len("b"))
	}
	tr := b.Trace("a")
	if tr[1].Metric != 2 || tr[1].Iteration != 1 {
		t.Fatalf("trace: %+v", tr)
	}
	if len(b.Keys()) != 2 {
		t.Fatalf("keys: %v", b.Keys())
	}
	// Returned slices are copies.
	tr[0].Metric = 99
	if b.Trace("a")[0].Metric == 99 {
		t.Fatal("Trace must copy")
	}
}

func TestTraceBufferCap(t *testing.T) {
	b := NewTraceBuffer(3)
	for i := 0; i < 10; i++ {
		b.Sample("k", 0, i, time.Millisecond, float64(i))
	}
	if b.Len("k") != 3 {
		t.Fatalf("cap not enforced: %d", b.Len("k"))
	}
	// The earliest points (the ramp) are the ones retained.
	if b.Trace("k")[0].Metric != 0 {
		t.Fatal("cap must keep the oldest points")
	}
}

func TestEvaluatorSamplerWiring(t *testing.T) {
	clock := vclock.NewVirtual()
	buf := NewTraceBuffer(0)
	b := DefaultBudget()
	b.Invocations = 2
	b.MaxIterations = 5
	e := NewEvaluator(clock, b)
	e.Sampler = buf
	out, err := e.Evaluate(context.Background(), constantCase(clock, time.Millisecond), None)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len(out.Key) != out.TotalSamples {
		t.Fatalf("sampler saw %d of %d samples", buf.Len(out.Key), out.TotalSamples)
	}
	tr := buf.Trace(out.Key)
	if tr[0].Invocation != 0 || tr[len(tr)-1].Invocation != 1 {
		t.Fatal("invocation indices wrong")
	}
	if tr[0].String() == "" {
		t.Fatal("TracePoint.String")
	}
}

func TestMultiSampler(t *testing.T) {
	a, b := NewTraceBuffer(0), NewTraceBuffer(0)
	m := MultiSampler{a, b}
	m.Sample("k", 0, 0, time.Millisecond, 1)
	if a.Len("k") != 1 || b.Len("k") != 1 {
		t.Fatal("fan-out broken")
	}
}

// rampCase emits a rising metric (falling duration) that stabilises after
// rampLen iterations — the §III-C4 late-bloomer shape.
type rampCase struct {
	clock   *vclock.Virtual
	rampLen int
}

func (r *rampCase) Key() string      { return "ramp" }
func (r *rampCase) Config() Config   { return nil }
func (r *rampCase) Describe() string { return "ramp" }
func (r *rampCase) Metric() Metric   { return MetricFlops }
func (r *rampCase) NewInvocation(inv int) (Instance, error) {
	return &rampInstance{c: r}, nil
}

type rampInstance struct {
	c *rampCase
	i int
}

func (ri *rampInstance) Warmup() {}
func (ri *rampInstance) Step() time.Duration {
	// Duration falls from 2ms toward 1ms over rampLen iterations.
	frac := float64(ri.i) / float64(ri.c.rampLen)
	if frac > 1 {
		frac = 1
	}
	d := time.Duration((2 - frac) * float64(time.Millisecond))
	ri.i++
	ri.c.clock.Advance(d)
	return d
}
func (ri *rampInstance) Work() float64 { return 1e9 }
func (ri *rampInstance) Close()        {}

func TestSteadyStateExcludesRamp(t *testing.T) {
	// Without steady-state handling, the inner bound prunes this late
	// bloomer against an incumbent equal to its steady value; with
	// steady-state exclusion it survives and measures correctly.
	steadyMetric := 1e9 / 0.001 // 1e12 once warmed up
	best := steadyMetric * 0.97 // incumbent 3% below the steady value

	run := func(useSteady bool) *Outcome {
		clock := vclock.NewVirtual()
		c := &rampCase{clock: clock, rampLen: 40}
		b := DefaultBudget()
		b.Invocations = 1
		b.MaxIterations = 150
		b.UseInnerBound = true
		b.UseSteadyState = useSteady
		b.SteadyWindow = 8
		b.SteadyThreshold = 0.01
		e := NewEvaluator(clock, b)
		out, err := e.Evaluate(context.Background(), c, Fixed(best))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	plain := run(false)
	if plain.InnerStops != 1 {
		t.Fatalf("without steady-state the ramp must be pruned (got %+v)", plain.Invocations[0])
	}
	fixed := run(true)
	if fixed.InnerStops != 0 {
		t.Fatalf("steady-state exclusion must save the late bloomer (got %+v)", fixed.Invocations[0])
	}
	// And its measured mean must reflect the steady value, not the ramp.
	if math.Abs(fixed.Mean-steadyMetric)/steadyMetric > 0.02 {
		t.Fatalf("steady mean %.3g, want ~%.3g", fixed.Mean, steadyMetric)
	}
}

func TestSteadyStateFallbackWhenNeverSteady(t *testing.T) {
	clock := vclock.NewVirtual()
	c := &rampCase{clock: clock, rampLen: 10000} // never stabilises
	b := DefaultBudget()
	b.Invocations = 1
	b.MaxIterations = 50
	b.UseSteadyState = true
	b.SteadyThreshold = 1e-9 // unreachable
	e := NewEvaluator(clock, b)
	out, err := e.Evaluate(context.Background(), c, None)
	if err != nil {
		t.Fatal(err)
	}
	// All samples retained (no reset ever happened).
	if out.Invocations[0].Samples != 50 {
		t.Fatalf("fallback must keep all samples: %d", out.Invocations[0].Samples)
	}
}
