package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Sampler observes every measured iteration of an evaluation — the
// time-series hook the paper's future-work section asks for ("having a
// time series of the performance of many configurations", §VII). Attach
// one to an Evaluator to record traces for offline analysis or to drive
// the late-bloomer diagnostics in internal/core.
type Sampler interface {
	// Sample is called once per measured iteration with the case key,
	// invocation index, iteration index within the invocation, the
	// measured elapsed time and the derived metric value (base units).
	Sample(key string, invocation, iteration int, elapsed time.Duration, metric float64)
}

// CSVSampler streams samples as CSV rows:
//
//	key,invocation,iteration,elapsed_ns,metric
//
// It is safe for concurrent use: sharded searches reach one sampler from
// several shard workers at once (directly or via MultiSampler), and the
// mutex keeps every row intact — concurrent evaluations interleave at row
// granularity, never within a row. Flush must be called before reading
// the underlying writer.
type CSVSampler struct {
	mu     sync.Mutex
	w      *csv.Writer
	header bool
}

// NewCSVSampler wraps w. The header row is emitted before the first
// sample.
func NewCSVSampler(w io.Writer) *CSVSampler {
	return &CSVSampler{w: csv.NewWriter(w)}
}

// Sample implements Sampler.
func (s *CSVSampler) Sample(key string, invocation, iteration int, elapsed time.Duration, metric float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.header {
		s.header = true
		_ = s.w.Write([]string{"key", "invocation", "iteration", "elapsed_ns", "metric"})
	}
	_ = s.w.Write([]string{
		key,
		strconv.Itoa(invocation),
		strconv.Itoa(iteration),
		strconv.FormatInt(elapsed.Nanoseconds(), 10),
		strconv.FormatFloat(metric, 'g', -1, 64),
	})
}

// Flush writes buffered rows to the underlying writer and returns any
// write error the csv layer recorded.
func (s *CSVSampler) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.Flush()
	return s.w.Error()
}

// TracePoint is one recorded iteration.
type TracePoint struct {
	Invocation int
	Iteration  int
	Elapsed    time.Duration
	Metric     float64
}

// TraceBuffer retains samples in memory, grouped per case key. It is
// safe for concurrent use (parallel campaigns record into one buffer).
type TraceBuffer struct {
	mu     sync.Mutex
	traces map[string][]TracePoint
	// Cap bounds the points retained per key (0 = unbounded); when full,
	// older points are kept and new ones dropped, preserving the ramp.
	Cap int
}

// NewTraceBuffer returns an empty buffer retaining at most capPerKey
// points per configuration (0 for unbounded).
func NewTraceBuffer(capPerKey int) *TraceBuffer {
	return &TraceBuffer{traces: make(map[string][]TracePoint), Cap: capPerKey}
}

// Sample implements Sampler.
func (t *TraceBuffer) Sample(key string, invocation, iteration int, elapsed time.Duration, metric float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pts := t.traces[key]
	if t.Cap > 0 && len(pts) >= t.Cap {
		return
	}
	t.traces[key] = append(pts, TracePoint{
		Invocation: invocation, Iteration: iteration,
		Elapsed: elapsed, Metric: metric,
	})
}

// Trace returns the recorded points for a key (nil if none).
func (t *TraceBuffer) Trace(key string) []TracePoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TracePoint(nil), t.traces[key]...)
}

// Keys lists the recorded configuration keys.
func (t *TraceBuffer) Keys() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]string, 0, len(t.traces))
	for k := range t.traces {
		keys = append(keys, k)
	}
	return keys
}

// Len returns the number of points recorded for a key.
func (t *TraceBuffer) Len(key string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces[key])
}

// MultiSampler fans samples out to several samplers.
type MultiSampler []Sampler

// Sample implements Sampler.
func (m MultiSampler) Sample(key string, invocation, iteration int, elapsed time.Duration, metric float64) {
	for _, s := range m {
		s.Sample(key, invocation, iteration, elapsed, metric)
	}
}

// String diagnostics for TracePoint.
func (p TracePoint) String() string {
	return fmt.Sprintf("inv %d iter %d: %v (%.4g)", p.Invocation, p.Iteration, p.Elapsed, p.Metric)
}
