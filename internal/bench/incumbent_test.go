package bench

import (
	"math"
	"sync"
	"testing"
)

func TestFixedIncumbent(t *testing.T) {
	if None.Bound() != NoBest {
		t.Fatalf("None bound = %v, want NoBest", None.Bound())
	}
	if got := Fixed(42).Bound(); got != 42 {
		t.Fatalf("Fixed bound = %v", got)
	}
}

func TestAtomicIncumbentMonotone(t *testing.T) {
	a := NewAtomicIncumbent()
	if a.Bound() != NoBest {
		t.Fatalf("fresh bound = %v, want NoBest", a.Bound())
	}
	a.Offer(10)
	a.Offer(5) // lower offers never regress the bound
	if a.Bound() != 10 {
		t.Fatalf("bound = %v, want 10", a.Bound())
	}
	a.Offer(math.NaN()) // NaN never poisons the maximum
	if a.Bound() != 10 {
		t.Fatalf("bound after NaN offer = %v, want 10", a.Bound())
	}
	a.Offer(11)
	if a.Bound() != 11 {
		t.Fatalf("bound = %v, want 11", a.Bound())
	}
}

func TestAtomicIncumbentConcurrentOffers(t *testing.T) {
	// CAS-max under contention: whatever the interleaving, the final
	// bound is the maximum ever offered, and every intermediate load is a
	// value someone actually offered (run under -race in CI).
	a := NewAtomicIncumbent()
	const workers, offers = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < offers; i++ {
				a.Offer(float64(w*offers + i))
				if b := a.Bound(); b < float64(w*offers+i) {
					t.Errorf("bound %v below own offer %d", b, w*offers+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if want := float64(workers*offers - 1); a.Bound() != want {
		t.Fatalf("final bound = %v, want %v", a.Bound(), want)
	}
}
