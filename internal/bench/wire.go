package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"

	"rooftune/internal/hw"
	"rooftune/internal/stats"
)

// This file is the wire layer of the bench package: a canonical,
// content-addressable rendering of every Config variant (the serving
// tier's cache key) and a versioned JSON encoding of Config and Outcome
// (the serving tier's result payload). Both encodings dispatch on the
// closed Config sum with exhaustive type switches — the configsum
// analyzer machine-checks the switches, and TestWireVariantsExhaustive
// asserts the census here tracks configsum.Variants, so a new variant
// without wire support fails the build and the tests, never a daemon.

// ConfigCanonical renders a configuration's typed identity as a
// canonical string: the variant name followed by every field in its
// declared order. Two configurations render equal strings iff they are
// equal values of the same variant — the property that makes the string
// (and its digest) a sound content address. The rendering is part of
// the wire contract: changing it invalidates every persisted cache
// entry keyed on ConfigDigest.
func ConfigCanonical(c Config) (string, error) {
	switch cfg := c.(type) {
	case DGEMMConfig:
		return fmt.Sprintf("DGEMMConfig{n=%d,m=%d,k=%d,sockets=%d,threads=%d}",
			cfg.N, cfg.M, cfg.K, cfg.Sockets, cfg.Threads), nil
	case TriadConfig:
		return fmt.Sprintf("TriadConfig{elements=%d,affinity=%s,sockets=%d,threads=%d}",
			cfg.Elements, cfg.Affinity, cfg.Sockets, cfg.Threads), nil
	case SpMVConfig:
		return fmt.Sprintf("SpMVConfig{n=%d,nnzPerRow=%d,chunkRows=%d,sockets=%d,threads=%d}",
			cfg.N, cfg.NNZPerRow, cfg.ChunkRows, cfg.Sockets, cfg.Threads), nil
	case StencilConfig:
		return fmt.Sprintf("StencilConfig{nx=%d,ny=%d,tileX=%d,tileY=%d,sockets=%d,threads=%d}",
			cfg.NX, cfg.NY, cfg.TileX, cfg.TileY, cfg.Sockets, cfg.Threads), nil
	case nil:
		return "", fmt.Errorf("bench: ConfigCanonical(nil)")
	default:
		return "", fmt.Errorf("bench: ConfigCanonical: unsupported config variant %T", c)
	}
}

// ConfigDigest returns the canonical content digest of a configuration:
// the hex SHA-256 of its ConfigCanonical rendering. The serving tier
// composes these per-case digests (with system, space and engine
// identity) into its cache key, so a million identical tuning requests
// cost one measurement.
func ConfigDigest(c Config) (string, error) {
	s, err := ConfigCanonical(c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:]), nil
}

// Canonical renders the budget with every field in declared order — the
// evaluation-process identity the session fingerprint hashes. Two
// budgets render equal strings iff every stop-condition parameter is
// equal, so a cache key built on it never serves a Confidence-technique
// result to a Default-technique request.
func (b Budget) Canonical() string {
	return fmt.Sprintf(
		"Budget{invocations=%d,maxIterations=%d,maxTime=%d,scope=%s,errorInverse=%s,ciLevel=%s,"+
			"confidence=%t,innerBound=%t,outerBound=%t,minCount=%d,minCISamples=%d,"+
			"studentT=%t,median=%t,steadyState=%t,steadyWindow=%d,steadyThreshold=%s}",
		b.Invocations, b.MaxIterations, int64(b.MaxTime), b.Scope,
		strconv.FormatFloat(b.ErrorInverse, 'g', -1, 64),
		strconv.FormatFloat(b.CILevel, 'g', -1, 64),
		b.UseConfidence, b.UseInnerBound, b.UseOuterBound, b.MinCount, b.MinCISamples,
		b.UseStudentT, b.UseMedian, b.UseSteadyState, b.SteadyWindow,
		strconv.FormatFloat(b.SteadyThreshold, 'g', -1, 64))
}

// configWire is the JSON envelope for the Config sum: the variant name
// selects the decoder, so an unknown variant fails loudly on both ends.
type configWire struct {
	Variant string          `json:"variant"`
	Fields  json.RawMessage `json:"fields"`
}

// dgemmConfigWire mirrors DGEMMConfig field for field. The wire structs
// exist so the in-memory types can evolve (unexported fields, renamed
// Go identifiers) without silently changing the persisted schema.
type dgemmConfigWire struct {
	N       int `json:"n"`
	M       int `json:"m"`
	K       int `json:"k"`
	Sockets int `json:"sockets"`
	Threads int `json:"threads,omitempty"`
}

type triadConfigWire struct {
	Elements int    `json:"elements"`
	Affinity string `json:"affinity"`
	Sockets  int    `json:"sockets"`
	Threads  int    `json:"threads,omitempty"`
}

type spmvConfigWire struct {
	N         int `json:"n"`
	NNZPerRow int `json:"nnzPerRow"`
	ChunkRows int `json:"chunkRows"`
	Sockets   int `json:"sockets"`
	Threads   int `json:"threads,omitempty"`
}

type stencilConfigWire struct {
	NX      int `json:"nx"`
	NY      int `json:"ny"`
	TileX   int `json:"tileX"`
	TileY   int `json:"tileY"`
	Sockets int `json:"sockets"`
	Threads int `json:"threads,omitempty"`
}

// affinityWire renders the affinity policy by its stable name; decoding
// rejects unknown names rather than guessing.
func affinityWire(a hw.Affinity) string { return a.String() }

func parseAffinity(s string) (hw.Affinity, error) {
	switch s {
	case "close":
		return hw.AffinityClose, nil
	case "spread":
		return hw.AffinitySpread, nil
	default:
		return 0, fmt.Errorf("bench: unknown affinity %q", s)
	}
}

// MarshalConfig encodes a configuration as its versioned JSON envelope.
func MarshalConfig(c Config) ([]byte, error) {
	var (
		variant string
		fields  any
	)
	switch cfg := c.(type) {
	case DGEMMConfig:
		variant = "DGEMMConfig"
		fields = dgemmConfigWire{N: cfg.N, M: cfg.M, K: cfg.K, Sockets: cfg.Sockets, Threads: cfg.Threads}
	case TriadConfig:
		variant = "TriadConfig"
		fields = triadConfigWire{Elements: cfg.Elements, Affinity: affinityWire(cfg.Affinity), Sockets: cfg.Sockets, Threads: cfg.Threads}
	case SpMVConfig:
		variant = "SpMVConfig"
		fields = spmvConfigWire{N: cfg.N, NNZPerRow: cfg.NNZPerRow, ChunkRows: cfg.ChunkRows, Sockets: cfg.Sockets, Threads: cfg.Threads}
	case StencilConfig:
		variant = "StencilConfig"
		fields = stencilConfigWire{NX: cfg.NX, NY: cfg.NY, TileX: cfg.TileX, TileY: cfg.TileY, Sockets: cfg.Sockets, Threads: cfg.Threads}
	case nil:
		return nil, fmt.Errorf("bench: MarshalConfig(nil)")
	default:
		return nil, fmt.Errorf("bench: MarshalConfig: unsupported config variant %T", c)
	}
	raw, err := json.Marshal(fields)
	if err != nil {
		return nil, err
	}
	return json.Marshal(configWire{Variant: variant, Fields: raw})
}

// configDecoders maps variant names to decoders. UnmarshalConfig and the
// wire tests iterate it; TestWireVariantsExhaustive asserts its key set
// equals the configsum variant census.
var configDecoders = map[string]func(json.RawMessage) (Config, error){
	"DGEMMConfig": func(raw json.RawMessage) (Config, error) {
		var w dgemmConfigWire
		if err := json.Unmarshal(raw, &w); err != nil {
			return nil, err
		}
		return DGEMMConfig{N: w.N, M: w.M, K: w.K, Sockets: w.Sockets, Threads: w.Threads}, nil
	},
	"TriadConfig": func(raw json.RawMessage) (Config, error) {
		var w triadConfigWire
		if err := json.Unmarshal(raw, &w); err != nil {
			return nil, err
		}
		aff, err := parseAffinity(w.Affinity)
		if err != nil {
			return nil, err
		}
		return TriadConfig{Elements: w.Elements, Affinity: aff, Sockets: w.Sockets, Threads: w.Threads}, nil
	},
	"SpMVConfig": func(raw json.RawMessage) (Config, error) {
		var w spmvConfigWire
		if err := json.Unmarshal(raw, &w); err != nil {
			return nil, err
		}
		return SpMVConfig{N: w.N, NNZPerRow: w.NNZPerRow, ChunkRows: w.ChunkRows, Sockets: w.Sockets, Threads: w.Threads}, nil
	},
	"StencilConfig": func(raw json.RawMessage) (Config, error) {
		var w stencilConfigWire
		if err := json.Unmarshal(raw, &w); err != nil {
			return nil, err
		}
		return StencilConfig{NX: w.NX, NY: w.NY, TileX: w.TileX, TileY: w.TileY, Sockets: w.Sockets, Threads: w.Threads}, nil
	},
}

// WireVariants returns the sorted variant names the wire layer can
// decode — the census the exhaustiveness test compares against
// configsum.Variants.
func WireVariants() []string {
	names := make([]string, 0, len(configDecoders))
	for name := range configDecoders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// UnmarshalConfig decodes a configuration envelope. An empty envelope
// decodes to a nil Config (an Outcome from a test fake may carry none);
// an unknown variant is an error, never a silently dropped winner.
func UnmarshalConfig(data []byte) (Config, error) {
	var w configWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("bench: config envelope: %w", err)
	}
	if w.Variant == "" && w.Fields == nil {
		return nil, nil
	}
	dec, ok := configDecoders[w.Variant]
	if !ok {
		return nil, fmt.Errorf("bench: unknown config variant %q on the wire", w.Variant)
	}
	c, err := dec(w.Fields)
	if err != nil {
		return nil, fmt.Errorf("bench: decoding %s: %w", w.Variant, err)
	}
	return c, nil
}

// metricWire names each metric stably on the wire.
var metricNames = map[Metric]string{
	MetricFlops:     "flops",
	MetricBandwidth: "bandwidth",
}

// MarshalJSON encodes the metric by name.
func (m Metric) MarshalJSON() ([]byte, error) {
	name, ok := metricNames[m]
	if !ok {
		return nil, fmt.Errorf("bench: unknown metric %d", int(m))
	}
	return json.Marshal(name)
}

// UnmarshalJSON decodes a metric name.
func (m *Metric) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for metric, n := range metricNames {
		if n == name {
			*m = metric
			return nil
		}
	}
	return fmt.Errorf("bench: unknown metric %q", name)
}

// stopReasonNames names each stop reason stably on the wire.
var stopReasonNames = map[StopReason]string{
	StopNone:       "none",
	StopMaxTime:    "max-time",
	StopMaxCount:   "max-count",
	StopConfidence: "confidence",
	StopBound:      "bound",
}

// MarshalJSON encodes the stop reason by name.
func (r StopReason) MarshalJSON() ([]byte, error) {
	name, ok := stopReasonNames[r]
	if !ok {
		return nil, fmt.Errorf("bench: unknown stop reason %d", int(r))
	}
	return json.Marshal(name)
}

// UnmarshalJSON decodes a stop reason name.
func (r *StopReason) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for reason, n := range stopReasonNames {
		if n == name {
			*r = reason
			return nil
		}
	}
	return fmt.Errorf("bench: unknown stop reason %q", name)
}

// invocationWire mirrors InvocationResult on the wire. Durations travel
// as integer nanoseconds and floats as JSON numbers — both encodings
// round-trip exactly, which is what lets a cached Result render
// byte-identically to the run that produced it.
type invocationWire struct {
	Mean     float64        `json:"mean"`
	Samples  int            `json:"samples"`
	Measured int64          `json:"measuredNs"`
	Reason   StopReason     `json:"reason"`
	CI       stats.Interval `json:"ci"`
}

// outcomeWire mirrors Outcome on the wire.
type outcomeWire struct {
	Key          string           `json:"key"`
	Describe     string           `json:"describe"`
	Metric       Metric           `json:"metric"`
	Config       json.RawMessage  `json:"config,omitempty"`
	Mean         float64          `json:"mean"`
	Invocations  []invocationWire `json:"invocations,omitempty"`
	InnerStops   int              `json:"innerStops,omitempty"`
	Pruned       bool             `json:"pruned,omitempty"`
	Elapsed      int64            `json:"elapsedNs"`
	TotalSamples int              `json:"totalSamples"`
}

// MarshalJSON encodes the outcome with its typed config in the variant
// envelope, so a winner crosses the wire as structured identity rather
// than a parsed key string.
func (o Outcome) MarshalJSON() ([]byte, error) {
	w := outcomeWire{
		Key:          o.Key,
		Describe:     o.Describe,
		Metric:       o.Metric,
		Mean:         o.Mean,
		InnerStops:   o.InnerStops,
		Pruned:       o.Pruned,
		Elapsed:      int64(o.Elapsed),
		TotalSamples: o.TotalSamples,
	}
	if o.Config != nil {
		raw, err := MarshalConfig(o.Config)
		if err != nil {
			return nil, err
		}
		w.Config = raw
	}
	for _, inv := range o.Invocations {
		w.Invocations = append(w.Invocations, invocationWire{
			Mean:     inv.Mean,
			Samples:  inv.Samples,
			Measured: int64(inv.Measured),
			Reason:   inv.Reason,
			CI:       inv.CI,
		})
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes an outcome, rejecting unknown config variants.
func (o *Outcome) UnmarshalJSON(data []byte) error {
	var w outcomeWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	out := Outcome{
		Key:          w.Key,
		Describe:     w.Describe,
		Metric:       w.Metric,
		Mean:         w.Mean,
		InnerStops:   w.InnerStops,
		Pruned:       w.Pruned,
		Elapsed:      time.Duration(w.Elapsed),
		TotalSamples: w.TotalSamples,
	}
	if len(w.Config) > 0 {
		cfg, err := UnmarshalConfig(w.Config)
		if err != nil {
			return err
		}
		out.Config = cfg
	}
	for _, inv := range w.Invocations {
		out.Invocations = append(out.Invocations, InvocationResult{
			Mean:     inv.Mean,
			Samples:  inv.Samples,
			Measured: time.Duration(inv.Measured),
			Reason:   inv.Reason,
			CI:       inv.CI,
		})
	}
	*o = out
	return nil
}
