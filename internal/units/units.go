// Package units provides typed quantities and formatting helpers for the
// performance domains used throughout rooftune: floating-point throughput
// (GFLOP/s), memory bandwidth (GB/s), byte sizes, and operational intensity
// (FLOP/byte). Keeping these as distinct types prevents the classic
// benchmarking bug of mixing binary and decimal prefixes or bytes and FLOPs.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Flops is a floating-point throughput in FLOP per second.
type Flops float64

// GFLOPS constructs a Flops value from a number expressed in GFLOP/s,
// the unit used by every table in the paper.
func GFLOPS(g float64) Flops { return Flops(g * 1e9) }

// GFLOPS reports the throughput in GFLOP/s.
func (f Flops) GFLOPS() float64 { return float64(f) / 1e9 }

// String renders the throughput in GFLOP/s with two decimals, matching the
// precision of the paper's tables (e.g. "408.71 GFLOP/s").
func (f Flops) String() string { return fmt.Sprintf("%.2f GFLOP/s", f.GFLOPS()) }

// Bandwidth is a memory bandwidth in bytes per second (decimal, as used by
// STREAM and by vendor DRAM specifications).
type Bandwidth float64

// GBps constructs a Bandwidth from a number expressed in GB/s (1e9 bytes/s).
func GBps(g float64) Bandwidth { return Bandwidth(g * 1e9) }

// GBps reports the bandwidth in GB/s.
func (b Bandwidth) GBps() float64 { return float64(b) / 1e9 }

// String renders the bandwidth in GB/s with two decimals ("76.80 GB/s").
func (b Bandwidth) String() string { return fmt.Sprintf("%.2f GB/s", b.GBps()) }

// ByteSize is a memory capacity in bytes. Binary prefixes (KiB, MiB, GiB)
// are used for capacities such as cache and working-set sizes; the paper's
// TRIAD sweep runs from 3 KiB to 768 MiB.
type ByteSize int64

// Binary-prefix capacity units.
const (
	KiB ByteSize = 1 << 10
	MiB ByteSize = 1 << 20
	GiB ByteSize = 1 << 30
)

// String renders the size with the largest exact-enough binary prefix:
// "3 KiB", "768 MiB", "1.5 GiB".
func (s ByteSize) String() string {
	switch {
	case s >= GiB:
		return trimUnit(float64(s)/float64(GiB), "GiB")
	case s >= MiB:
		return trimUnit(float64(s)/float64(MiB), "MiB")
	case s >= KiB:
		return trimUnit(float64(s)/float64(KiB), "KiB")
	default:
		return fmt.Sprintf("%d B", int64(s))
	}
}

func trimUnit(v float64, unit string) string {
	str := strconv.FormatFloat(v, 'f', 2, 64)
	str = strings.TrimRight(str, "0")
	str = strings.TrimRight(str, ".")
	return str + " " + unit
}

// ParseByteSize parses strings such as "3KiB", "768 MiB", "45MB" (decimal MB
// is accepted and treated as 1e6 bytes), or a bare integer byte count.
func ParseByteSize(s string) (ByteSize, error) {
	str := strings.TrimSpace(s)
	if str == "" {
		return 0, fmt.Errorf("units: empty byte size")
	}
	// Split numeric prefix from unit suffix.
	i := 0
	for i < len(str) && (str[i] == '.' || str[i] == '-' || (str[i] >= '0' && str[i] <= '9')) {
		i++
	}
	num, unit := strings.TrimSpace(str[:i]), strings.TrimSpace(str[i:])
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad byte size %q: %v", s, err)
	}
	var mult float64
	switch strings.ToLower(unit) {
	case "", "b":
		mult = 1
	case "kib", "k":
		mult = float64(KiB)
	case "mib", "m":
		mult = float64(MiB)
	case "gib", "g":
		mult = float64(GiB)
	case "kb":
		mult = 1e3
	case "mb":
		mult = 1e6
	case "gb":
		mult = 1e9
	default:
		return 0, fmt.Errorf("units: unknown unit %q in %q", unit, s)
	}
	bytes := v * mult
	if bytes < 0 || bytes > math.MaxInt64 {
		return 0, fmt.Errorf("units: byte size %q out of range", s)
	}
	return ByteSize(bytes), nil
}

// Intensity is an operational intensity in FLOP per byte (Eq. 1 of the
// paper: I = W/Q).
type Intensity float64

// TriadIntensity is the operational intensity of the STREAM TRIAD kernel:
// 2 FLOPs per 24 bytes moved = 1/12 FLOP/byte (paper §I and §III-B).
const TriadIntensity Intensity = 1.0 / 12.0

// String renders the intensity ("0.083 FLOP/B").
func (i Intensity) String() string { return fmt.Sprintf("%.3g FLOP/B", float64(i)) }

// DGEMMFlops returns the floating-point work of one C <- alpha*A*B + beta*C
// with A of n x k, B of k x m: 2*n*m*k FLOPs (one multiply and one add per
// inner-product step), the count used by the paper's FLOPS computation.
func DGEMMFlops(n, m, k int) float64 { return 2 * float64(n) * float64(m) * float64(k) }

// DGEMMBytes returns the minimum memory traffic of one DGEMM in bytes
// assuming each matrix element is touched once from memory: (n*k + k*m +
// 2*n*m) doubles. Real traffic is higher; this lower bound is what places
// DGEMM far into the compute-bound region of the roofline.
func DGEMMBytes(n, m, k int) float64 {
	return 8 * (float64(n)*float64(k) + float64(k)*float64(m) + 2*float64(n)*float64(m))
}

// DGEMMIntensity is the operational intensity of the DGEMM benchmark for
// given dimensions.
func DGEMMIntensity(n, m, k int) Intensity {
	return Intensity(DGEMMFlops(n, m, k) / DGEMMBytes(n, m, k))
}

// TriadBytes returns the memory traffic of one TRIAD pass over vectors of
// length n doubles: 3 streams (2 loads + 1 store) of 8 bytes each.
func TriadBytes(n int) float64 { return 24 * float64(n) }

// TriadFlops returns the floating-point work of one TRIAD pass: a multiply
// and an add per element.
func TriadFlops(n int) float64 { return 2 * float64(n) }

// Percent formats the ratio a/b as a percentage with two decimals, the
// "(96.76%)" notation of Tables IV and VI. It returns "n/a" when b is zero.
func Percent(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*a/b)
}
