package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFlopsFormatting(t *testing.T) {
	f := GFLOPS(408.71)
	if got := f.GFLOPS(); math.Abs(got-408.71) > 1e-9 {
		t.Fatalf("GFLOPS round-trip: got %v", got)
	}
	if got := f.String(); got != "408.71 GFLOP/s" {
		t.Fatalf("String: got %q", got)
	}
}

func TestBandwidthFormatting(t *testing.T) {
	b := GBps(76.8)
	if got := b.GBps(); math.Abs(got-76.8) > 1e-9 {
		t.Fatalf("GBps round-trip: got %v", got)
	}
	if got := b.String(); got != "76.80 GB/s" {
		t.Fatalf("String: got %q", got)
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		in   ByteSize
		want string
	}{
		{3 * KiB, "3 KiB"},
		{768 * MiB, "768 MiB"},
		{GiB + GiB/2, "1.5 GiB"},
		{512, "512 B"},
		{ByteSize(19.25 * float64(MiB)), "19.25 MiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("ByteSize(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want ByteSize
	}{
		{"3KiB", 3 * KiB},
		{"768 MiB", 768 * MiB},
		{"1g", GiB},
		{"2kb", 2000},
		{"1MB", 1000000},
		{"100", 100},
		{"1.5 GiB", GiB + GiB/2},
	}
	for _, c := range cases {
		got, err := ParseByteSize(c.in)
		if err != nil {
			t.Errorf("ParseByteSize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseByteSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseByteSizeErrors(t *testing.T) {
	for _, in := range []string{"", "x", "12 xb", "-5notaunit", "12..5KiB"} {
		if _, err := ParseByteSize(in); err == nil {
			t.Errorf("ParseByteSize(%q): want error", in)
		}
	}
}

func TestParseByteSizeRoundTrip(t *testing.T) {
	// String() renders with two decimals, so parse(String()) must land
	// within 0.5% of the original for any size (and exactly for sizes
	// the two-decimal form represents exactly).
	f := func(kib uint16) bool {
		s := ByteSize(int64(kib)+1) * KiB
		back, err := ParseByteSize(s.String())
		if err != nil {
			return false
		}
		diff := math.Abs(float64(back-s)) / float64(s)
		return diff < 0.005
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Exact for sub-MiB KiB multiples.
	for _, k := range []ByteSize{1, 3, 17, 512, 1023} {
		s := k * KiB
		back, err := ParseByteSize(s.String())
		if err != nil || back != s {
			t.Fatalf("exact round-trip failed for %v: %v %v", s, back, err)
		}
	}
}

func TestTriadIntensity(t *testing.T) {
	if math.Abs(float64(TriadIntensity)-1.0/12) > 1e-15 {
		t.Fatalf("TriadIntensity = %v, want 1/12", TriadIntensity)
	}
	if got := TriadIntensity.String(); !strings.Contains(got, "FLOP/B") {
		t.Fatalf("Intensity.String() = %q", got)
	}
}

func TestDGEMMWork(t *testing.T) {
	// 2*n*m*k for the paper's canonical square: 2e9 FLOPs at 1000^3.
	if got := DGEMMFlops(1000, 1000, 1000); got != 2e9 {
		t.Fatalf("DGEMMFlops(1000^3) = %g, want 2e9", got)
	}
	// Bytes: (n*k + k*m + 2*n*m) doubles.
	if got := DGEMMBytes(2, 3, 4); got != 8*(2*4+4*3+2*2*3) {
		t.Fatalf("DGEMMBytes = %g", got)
	}
	i := DGEMMIntensity(1000, 1000, 1000)
	want := 2e9 / (8 * 4e6)
	if math.Abs(float64(i)-want) > 1e-12 {
		t.Fatalf("DGEMMIntensity = %v, want %v", i, want)
	}
}

func TestTriadWork(t *testing.T) {
	if got := TriadBytes(1000); got != 24000 {
		t.Fatalf("TriadBytes = %g", got)
	}
	if got := TriadFlops(1000); got != 2000 {
		t.Fatalf("TriadFlops = %g", got)
	}
	// Intensity identity: flops/bytes == 1/12 for every n.
	f := func(n uint16) bool {
		v := int(n) + 1
		return math.Abs(TriadFlops(v)/TriadBytes(v)-float64(TriadIntensity)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(408.71, 422.4); got != "96.76%" {
		t.Fatalf("Percent = %q", got)
	}
	if got := Percent(1, 0); got != "n/a" {
		t.Fatalf("Percent div by zero = %q", got)
	}
}

func TestWorkingSetGrid(t *testing.T) {
	lo, hi := DefaultTriadRange()
	grid := WorkingSetGrid(lo, hi)
	if len(grid) != 19 {
		t.Fatalf("paper sweep has 19 doubling points, got %d", len(grid))
	}
	if grid[0] != 3*KiB || grid[len(grid)-1] != 768*MiB {
		t.Fatalf("grid endpoints: %v .. %v", grid[0], grid[len(grid)-1])
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] != grid[i-1]*2 {
			t.Fatalf("grid not doubling at %d: %v -> %v", i, grid[i-1], grid[i])
		}
	}
}

func TestWorkingSetGridDense(t *testing.T) {
	lo, hi := DefaultTriadRange()
	grid := WorkingSetGridDense(lo, hi, 4)
	if len(grid) < 4*18 {
		t.Fatalf("dense grid too small: %d points", len(grid))
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] <= grid[i-1] {
			t.Fatalf("dense grid not strictly increasing at %d", i)
		}
		ratio := float64(grid[i]) / float64(grid[i-1])
		if ratio > 1.20 {
			t.Fatalf("dense grid gap too wide at %d: ratio %.3f", i, ratio)
		}
	}
	if grid[0] != lo {
		t.Fatalf("dense grid must start at lo, got %v", grid[0])
	}
}

func TestWorkingSetGridDenseInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on invalid range")
		}
	}()
	WorkingSetGridDense(0, KiB, 1)
}

func TestTriadGridElements(t *testing.T) {
	elems := TriadGridElements([]ByteSize{3 * KiB, 10, 24 * 1000})
	if len(elems) != 2 {
		t.Fatalf("sizes under one element must be dropped: %v", elems)
	}
	if elems[0] != 128 {
		t.Fatalf("3 KiB / 24 B = 128 elements, got %d", elems[0])
	}
	if elems[1] != 1000 {
		t.Fatalf("24000 B = 1000 elements, got %d", elems[1])
	}
}

func TestCanonicalTriadGridCoversPaperRange(t *testing.T) {
	grid := CanonicalTriadGrid()
	lo, hi := DefaultTriadRange()
	if grid[0] != lo {
		t.Fatalf("canonical grid starts at %v, want %v", grid[0], lo)
	}
	if grid[len(grid)-1] != hi {
		t.Fatalf("canonical grid ends at %v, want %v", grid[len(grid)-1], hi)
	}
}
