package units

// WorkingSetGrid returns the canonical power-of-two sweep of working-set
// sizes from lo to hi inclusive (each point doubling), the shape of the
// paper's TRIAD search range "starting at 3 KiB and ending at 768 MiB"
// (§IV-B): 3 KiB, 6 KiB, ..., 768 MiB. lo must be positive and no larger
// than hi.
func WorkingSetGrid(lo, hi ByteSize) []ByteSize {
	return WorkingSetGridDense(lo, hi, 1)
}

// WorkingSetGridDense sweeps with perOctave points per doubling
// (perOctave=1 reproduces WorkingSetGrid). A denser grid is needed on
// systems whose L3 window is narrow: the Skylake Golds have an aggregate
// L2 close to their victim L3, and a pure doubling sweep can step right
// over the L3-resident band.
func WorkingSetGridDense(lo, hi ByteSize, perOctave int) []ByteSize {
	if lo <= 0 || hi < lo || perOctave < 1 {
		panic("units: WorkingSetGridDense with invalid arguments")
	}
	var grid []ByteSize
	for octave := lo; octave <= hi; octave *= 2 {
		for i := 0; i < perOctave; i++ {
			w := ByteSize(float64(octave) * pow2frac(i, perOctave))
			if w > hi {
				break
			}
			grid = append(grid, w)
		}
	}
	// The loop may overshoot hi on the last octave; ensure hi itself is
	// present when it is an exact doubling of lo.
	if len(grid) == 0 || grid[len(grid)-1] != hi {
		for w := lo; w <= hi; w *= 2 {
			if w == hi {
				grid = append(grid, hi)
			}
		}
	}
	return dedupSorted(grid)
}

func pow2frac(i, per int) float64 {
	f := 1.0
	for j := 0; j < i; j++ {
		f *= root2(per)
	}
	return f
}

func root2(per int) float64 {
	// 2^(1/per) via repeated square root of 2 for per in {1,2,4}; general
	// case uses exp/log-free Newton iteration to stay dependency-light.
	switch per {
	case 1:
		return 2
	case 2:
		return 1.4142135623730951
	case 4:
		return 1.189207115002721
	default:
		// Newton for x^per = 2.
		x := 1.0 + 0.7/float64(per)
		for it := 0; it < 40; it++ {
			p := 1.0
			for j := 0; j < per-1; j++ {
				p *= x
			}
			x -= (p*x - 2) / (float64(per) * p)
		}
		return x
	}
}

func dedupSorted(in []ByteSize) []ByteSize {
	out := in[:0]
	var last ByteSize = -1
	for _, v := range in {
		if v != last {
			out = append(out, v)
			last = v
		}
	}
	return out
}

// CanonicalTriadGrid is the sweep the TRIAD experiments use: the paper's
// 3 KiB - 768 MiB range at four points per octave.
func CanonicalTriadGrid() []ByteSize {
	lo, hi := DefaultTriadRange()
	return WorkingSetGridDense(lo, hi, 4)
}

// TriadGridElements converts a working-set grid into TRIAD vector lengths:
// three double-precision vectors occupy 24 bytes per element, so
// N = W / 24. Sizes smaller than one element are dropped.
func TriadGridElements(grid []ByteSize) []int {
	elems := make([]int, 0, len(grid))
	for _, w := range grid {
		n := int(w / 24)
		if n >= 1 {
			elems = append(elems, n)
		}
	}
	return elems
}

// DefaultTriadRange is the paper's TRIAD sweep: 3 KiB to 768 MiB.
func DefaultTriadRange() (lo, hi ByteSize) { return 3 * KiB, 768 * MiB }
