// Package workload defines the pluggable benchmark contract of the
// public API: a Workload turns a tuning target (a simulated system or the
// native host) and the session's resolved parameters into the independent
// autotuning sweeps that measure one family of roofline points.
//
// The package exists below the repository root so that workload
// implementations — internal/workloads/dgemm, internal/workloads/triad,
// and any future SpMV/stencil/per-cache-level package — can implement the
// interface without importing package rooftune (which would cycle: the
// root registers the built-ins). The root package re-exports every type
// here under the same name via type aliases, so rooftune.Workload and
// workload.Workload are one type.
package workload

import (
	"fmt"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/sweep"
	"rooftune/internal/units"
)

// Target identifies what a workload plans sweeps for. Exactly one of Sys
// and Native is set: Sys for simulated builds (each sweep should create
// its own bench.SimEngine so sweeps stay schedulable in any order),
// Native for native builds (the host is the engine; there is nothing to
// split, and all sweeps share it).
type Target struct {
	Sys    *hw.System
	Native *bench.NativeEngine
}

// IsNative reports whether the target is the native host.
func (t Target) IsNative() bool { return t.Native != nil }

// Params are the session's resolved tuning parameters, passed to every
// workload's Plan. All fields are defaulted and validated by rooftune.New
// before planning starts.
type Params struct {
	// Seed drives the simulated engines' noise streams.
	Seed uint64
	// Space is the DGEMM search space.
	Space []core.Dims
	// TriadLo and TriadHi bound the TRIAD working-set sweep.
	TriadLo, TriadHi units.ByteSize
	// AssumedLLC is the native build's last-level-cache estimate used to
	// split memory sweeps into cache and DRAM residency regions.
	AssumedLLC units.ByteSize
	// Threads is the native engines' parallelism.
	Threads int
	// SpMVN and SpMVNNZPerRow shape the SpMV workload's synthetic matrix:
	// an SpMVN x SpMVN CSR matrix with SpMVNNZPerRow stored elements per
	// row (density SpMVNNZPerRow/SpMVN), which fixes where the kernel
	// lands on the intensity axis.
	SpMVN, SpMVNNZPerRow int
	// StencilNX and StencilNY are the stencil workload's grid dimensions.
	StencilNX, StencilNY int
	// TriadLevels selects the residency regions the TRIAD workload plans
	// on simulated systems, a subset of hw.CacheLevels (nil means the
	// paper's L3+DRAM pair). Native targets ignore it: the host's cache
	// boundaries are unknown, so only the assumed-LLC cache/DRAM split is
	// available.
	TriadLevels []string
}

// Point says how one sweep's winning outcome lands in the session Result:
// as a compute ceiling (rooftune.ComputePoint) or a bandwidth ceiling
// (rooftune.MemoryPoint). It is the public successor of the root
// package's former unexported pointMeta.
type Point struct {
	// Compute selects the result side: true for a ComputePoint, false for
	// a MemoryPoint.
	Compute bool
	// Label names the benchmark family on compute points ("DGEMM",
	// "SpMV", "stencil"); empty defaults to "DGEMM", the original
	// compute workload.
	Label string
	// Sockets is the socket count the sweep tuned (1 for native builds).
	Sockets int
	// Region names the memory residency region ("DRAM", "L3", "cache",
	// ...); empty for compute points.
	Region string
	// Intensity is the kernel's operational intensity. A compute point
	// with nonzero Intensity is an application point — a measured kernel
	// plotted at its position on the roofline's intensity axis (SpMV,
	// stencil) — rather than a horizontal compute ceiling (DGEMM, whose
	// Intensity stays zero).
	Intensity units.Intensity
	// TheoreticalFlops is Eq. 9's peak for compute sweeps on simulated
	// systems (zero for native builds, where no spec is assumed).
	TheoreticalFlops units.Flops
	// TheoreticalBandwidth is Eq. 11's peak for simulated DRAM sweeps
	// (zero otherwise).
	TheoreticalBandwidth units.Bandwidth
}

// Planned pairs one sweep spec with the point its winner becomes, under
// a stable plan-graph identity.
//
// ID names the sweep in the session's plan graph; it must be non-empty
// and unique across every sweep the session plans, so the convention is
// "<workload>/<region-or-axis>/<target>" (e.g. "triad/L3/2s"). SeedFrom
// optionally names another planned sweep of the same metric: when that
// sweep finishes with a measured winner, this sweep's incumbent bound is
// pre-seeded with the winner's value, so stop condition 4 prunes from the
// very first case. Cycles, unknown IDs and cross-metric edges are
// construction-time errors (rooftune.New validates the assembled graph;
// the conformance harness rejects them per workload), never mid-run
// surprises.
type Planned struct {
	ID       string
	SeedFrom string
	Spec     sweep.Spec
	Point    Point
}

// Plan is a workload's full contribution to a session run.
type Plan struct {
	Sweeps []Planned
	// Warnings name planned-but-empty sweeps: regions whose case list
	// filtered to nothing under the session's parameters. The session
	// surfaces each as a progress event and on Result.Warnings — prefixed
	// with the planning workload's name so the line is attributable — and
	// a missing roofline ceiling is never silent.
	Warnings []string
}

// Add appends one sweep to the plan under its plan-graph ID.
func (p *Plan) Add(id string, s sweep.Spec, pt Point) {
	p.Sweeps = append(p.Sweeps, Planned{ID: id, Spec: s, Point: pt})
}

// Chain appends one sweep whose incumbent is pre-seeded by the winner of
// the previously planned sweep seedFrom (same metric; the edge is
// validated with the rest of the graph). Sessions only honour the edge
// under rooftune.WithSweepChaining; otherwise the sweep runs unseeded.
func (p *Plan) Chain(id, seedFrom string, s sweep.Spec, pt Point) {
	p.Sweeps = append(p.Sweeps, Planned{ID: id, SeedFrom: seedFrom, Spec: s, Point: pt})
}

// Warnf records one formatted warning.
func (p *Plan) Warnf(format string, args ...any) {
	p.Warnings = append(p.Warnings, fmt.Sprintf(format, args...))
}

// Nodes converts the plan's sweeps into the sweep layer's graph nodes.
func (p *Plan) Nodes() []sweep.Node {
	nodes := make([]sweep.Node, len(p.Sweeps))
	for i, pl := range p.Sweeps {
		nodes[i] = sweep.Node{ID: pl.ID, SeedFrom: pl.SeedFrom, Spec: pl.Spec}
	}
	return nodes
}

// NativeThreadGrid returns the native thread-count search axis shared by
// the thread-tuning workloads (SpMV, stencil): powers of two up to the
// engine's parallelism, always including the engine's own count — the
// paper tunes core allocation, and worker threads are the native
// analogue. Keeping the policy here keeps every workload's native
// sweep on the same axis.
func NativeThreadGrid(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for t := 1; t < max; t *= 2 {
		out = append(out, t)
	}
	return append(out, max)
}

// Workload produces the autotuning sweeps of one benchmark family.
// Implementations must be safe for concurrent use by multiple sessions:
// Plan is a pure function of its arguments (engines are created inside
// the plan, never stored on the workload).
type Workload interface {
	// Name is the workload's registry key, e.g. "dgemm" or "triad".
	Name() string
	// Plan builds the workload's sweeps for the target under the given
	// parameters. Plans whose regions filter empty must record a warning
	// naming the region rather than silently dropping the sweep. An error
	// aborts the session before anything runs.
	Plan(t Target, p Params) (Plan, error)
}
