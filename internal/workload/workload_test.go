package workload

import (
	"strings"
	"testing"
)

type fake struct{ name string }

func (f fake) Name() string                      { return f.name }
func (f fake) Plan(Target, Params) (Plan, error) { return Plan{}, nil }

func TestRegistry(t *testing.T) {
	if err := Register(fake{name: "reg-a"}); err != nil {
		t.Fatal(err)
	}
	if err := Register(fake{name: "reg-a"}); err == nil {
		t.Fatal("duplicate name must error")
	}
	if err := Register(nil); err == nil {
		t.Fatal("nil workload must error")
	}
	if err := Register(fake{}); err == nil {
		t.Fatal("empty name must error")
	}

	w, err := Get("reg-a")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "reg-a" {
		t.Fatalf("Get returned %q", w.Name())
	}
	if _, err := Get("reg-missing"); err == nil || !strings.Contains(err.Error(), "reg-missing") {
		t.Fatalf("unknown lookup error must name the workload, got %v", err)
	}

	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	found := false
	for _, n := range names {
		found = found || n == "reg-a"
	}
	if !found {
		t.Fatalf("registered name missing from %v", names)
	}
}

func TestPlanHelpers(t *testing.T) {
	var p Plan
	p.Warnf("region %s empty", "L3")
	if len(p.Warnings) != 1 || p.Warnings[0] != "region L3 empty" {
		t.Fatalf("warnings: %v", p.Warnings)
	}
}
