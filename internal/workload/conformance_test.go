package workload

import (
	"errors"
	"strings"
	"testing"

	"rooftune/internal/bench"
	"rooftune/internal/sweep"
	"rooftune/internal/vclock"
)

// fakeCase is a minimal conforming bench.Case.
type fakeCase struct {
	key    string
	metric bench.Metric
	cfg    bench.Config
}

func (c fakeCase) Key() string          { return c.key }
func (c fakeCase) Config() bench.Config { return c.cfg }
func (c fakeCase) Describe() string     { return "fake " + c.key }
func (c fakeCase) Metric() bench.Metric { return c.metric }
func (c fakeCase) NewInvocation(int) (bench.Instance, error) {
	return nil, nil
}

// fakeWorkload plans whatever the test installs.
type fakeWorkload struct {
	name string
	plan Plan
	err  error
}

func (w fakeWorkload) Name() string                      { return w.name }
func (w fakeWorkload) Plan(Target, Params) (Plan, error) { return w.plan, w.err }

func goodSweep(metric bench.Metric, keys ...string) sweep.Spec {
	cases := make([]bench.Case, len(keys))
	for i, k := range keys {
		cases[i] = fakeCase{key: k, metric: metric, cfg: bench.TriadConfig{Elements: i + 1}}
	}
	return sweep.Spec{Name: "fake sweep", Clock: vclock.NewVirtual(), Cases: cases}
}

func TestConformAcceptsWellFormedPlans(t *testing.T) {
	var plan Plan
	plan.Add("fake/DRAM/1s", goodSweep(bench.MetricBandwidth, "a", "b"), Point{Sockets: 1, Region: "DRAM"})
	plan.Chain("fake/L3/1s", "fake/DRAM/1s", goodSweep(bench.MetricBandwidth, "l3"), Point{Sockets: 1, Region: "L3"})
	plan.Add("fake/compute/1s", goodSweep(bench.MetricFlops, "c"), Point{Compute: true, Sockets: 1, Label: "fake"})
	plan.Warnf("a region filtered empty")
	if errs := Conform(fakeWorkload{name: "ok", plan: plan}, Target{}, Params{}); len(errs) != 0 {
		t.Fatalf("well-formed plan rejected: %v", errs)
	}
}

func TestConformCatchesViolations(t *testing.T) {
	dupe := goodSweep(bench.MetricFlops, "x", "x")
	noClock := goodSweep(bench.MetricFlops, "y")
	noClock.Clock = nil
	empty := sweep.Spec{Name: "empty", Clock: vclock.NewVirtual()}
	mixed := sweep.Spec{Name: "mixed", Clock: vclock.NewVirtual(), Cases: []bench.Case{
		fakeCase{key: "f", metric: bench.MetricFlops, cfg: bench.DGEMMConfig{}},
		fakeCase{key: "b", metric: bench.MetricBandwidth, cfg: bench.TriadConfig{}},
	}}
	nilCfg := sweep.Spec{Name: "nilcfg", Clock: vclock.NewVirtual(), Cases: []bench.Case{
		fakeCase{key: "n", metric: bench.MetricFlops, cfg: nil},
	}}

	chained := func(edit func(p *Plan)) Plan {
		var p Plan
		p.Add("g/a", goodSweep(bench.MetricFlops, "a"), Point{Compute: true, Sockets: 1})
		p.Chain("g/b", "g/a", goodSweep(bench.MetricFlops, "b"), Point{Compute: true, Sockets: 1})
		edit(&p)
		return p
	}
	tests := []struct {
		name string
		plan Plan
		want string
	}{
		{"silent no-op", Plan{}, "no sweeps and no warnings"},
		{"duplicate keys", planOf(dupe, Point{Compute: true, Sockets: 1}), "share key"},
		{"missing clock", planOf(noClock, Point{Compute: true, Sockets: 1}), "no clock"},
		{"empty case list", planOf(empty, Point{Compute: true, Sockets: 1}), "no cases"},
		{"mixed metrics", planOf(mixed, Point{Compute: true, Sockets: 1}), "mixes metrics"},
		{"nil config", planOf(nilCfg, Point{Compute: true, Sockets: 1}), "nil Config"},
		{"unlabelled memory point", planOf(goodSweep(bench.MetricBandwidth, "m"), Point{Sockets: 1}), "no Region"},
		{"compute point with region", planOf(goodSweep(bench.MetricFlops, "m"), Point{Compute: true, Sockets: 1, Region: "L3"}), "with Region"},
		{"metric/side mismatch", planOf(goodSweep(bench.MetricBandwidth, "m"), Point{Compute: true, Sockets: 1}), "lands on the compute side"},
		{"zero sockets", planOf(goodSweep(bench.MetricFlops, "m"), Point{Compute: true}), "socket count 0"},
		// Plan-graph invariants.
		{"empty plan-graph id", chained(func(p *Plan) { p.Sweeps[0].ID = "" }), "empty plan-graph ID"},
		{"duplicate plan-graph id", chained(func(p *Plan) { p.Sweeps[1].ID = "g/a"; p.Sweeps[1].SeedFrom = "" }), "share plan-graph ID"},
		{"dangling seed edge", chained(func(p *Plan) { p.Sweeps[1].SeedFrom = "ghost" }), "unknown node"},
		{"seed cycle", chained(func(p *Plan) { p.Sweeps[0].SeedFrom = "g/b" }), "cycle"},
		{"cross-metric edge", chained(func(p *Plan) {
			p.Sweeps[1].Spec = goodSweep(bench.MetricBandwidth, "bw")
			p.Sweeps[1].Point = Point{Sockets: 1, Region: "DRAM"}
		}), "cross-metric"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			errs := Conform(fakeWorkload{name: tc.name, plan: tc.plan}, Target{}, Params{})
			if len(errs) == 0 {
				t.Fatalf("violation not caught")
			}
			found := false
			for _, err := range errs {
				if strings.Contains(err.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no error mentions %q: %v", tc.want, errs)
			}
		})
	}
}

func TestConformReportsPlanError(t *testing.T) {
	w := fakeWorkload{name: "broken", err: errTest}
	errs := Conform(w, Target{}, Params{})
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "Plan failed") {
		t.Fatalf("errs = %v", errs)
	}
}

var errTest = errors.New("synthetic failure")

func planOf(s sweep.Spec, pt Point) Plan {
	var p Plan
	p.Add("fake/"+s.Name, s, pt)
	return p
}
