package workload

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps workload names to implementations. The built-ins
// (dgemm, triad) self-register from their packages' init functions; user
// packages register through rooftune.RegisterWorkload.
var (
	regMu    sync.RWMutex
	registry = map[string]Workload{}
)

// Register adds a workload under its Name. Registering a nil workload,
// an empty name, or a name that is already taken is an error: silently
// replacing a workload would change what an unrelated session measures.
func Register(w Workload) error {
	if w == nil {
		return fmt.Errorf("workload: Register(nil)")
	}
	name := w.Name()
	if name == "" {
		return fmt.Errorf("workload: %T has an empty name", w)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("workload: %q already registered", name)
	}
	registry[name] = w
	return nil
}

// MustRegister is Register that panics on error, for init-time use.
func MustRegister(w Workload) {
	if err := Register(w); err != nil {
		panic(err)
	}
}

// Get returns the named workload.
func Get(name string) (Workload, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (registered: %v)", name, namesLocked())
	}
	return w, nil
}

// Names returns the registered workload names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
