package workload

import (
	"fmt"

	"rooftune/internal/bench"
	"rooftune/internal/sweep"
)

// Conform runs one workload through the registry's behavioural contract
// for one target and reports every violation. It is the check behind the
// CI workload-conformance job (cmd/workloadcheck): a workload that
// registers but plans malformed sweeps — empty case lists, duplicate
// keys, configs missing their typed identity, points that land nowhere —
// would otherwise only fail deep inside a user's session run.
//
// The contract, per target:
//
//   - Plan must succeed and contribute something: at least one sweep, or
//     a warning naming each region that filtered empty.
//   - The plan graph is well-formed: every sweep has a non-empty unique
//     ID, SeedFrom edges reference planned IDs, form no cycles, and stay
//     within one metric (sweep.PlanViolations).
//   - Every planned sweep has a name, a clock, and at least one case.
//   - Every case has a unique non-empty Key, a non-empty Describe, and a
//     non-nil typed Config — the identity the session recovers winners
//     through.
//   - Cases within a sweep agree on the Metric, and the Metric matches
//     the sweep's Point: FLOP/s winners land on the compute side,
//     bandwidth winners need a Region to land in.
func Conform(w Workload, t Target, p Params) []error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	name := w.Name()
	if name == "" {
		fail("workload %T: empty name", w)
		name = fmt.Sprintf("%T", w)
	}

	plan, err := w.Plan(t, p)
	if err != nil {
		fail("%s: Plan failed: %v", name, err)
		return errs
	}
	if len(plan.Sweeps) == 0 && len(plan.Warnings) == 0 {
		fail("%s: Plan contributed no sweeps and no warnings — a silent no-op", name)
	}
	// Plan-graph invariants: a malformed graph would otherwise only fail
	// at rooftune.New once this workload is combined into a session.
	for _, gerr := range sweep.PlanViolations(plan.Nodes()) {
		fail("%s: %v", name, gerr)
	}
	for i, pl := range plan.Sweeps {
		sweepName := pl.Spec.Name
		if sweepName == "" {
			fail("%s: sweep %d has no name", name, i)
			sweepName = fmt.Sprintf("sweep %d", i)
		}
		if pl.Spec.Clock == nil {
			fail("%s: %s has no clock — its search cost would be unaccounted", name, sweepName)
		}
		if len(pl.Spec.Cases) == 0 {
			fail("%s: %s has no cases — empty regions must Warnf instead", name, sweepName)
			continue
		}
		pt := pl.Point
		if !pt.Compute && pt.Region == "" {
			fail("%s: %s plans a memory point with no Region — its winner would land unlabelled", name, sweepName)
		}
		if pt.Compute && pt.Region != "" {
			fail("%s: %s plans a compute point with Region %q", name, sweepName, pt.Region)
		}
		if pt.Sockets < 1 {
			fail("%s: %s point has socket count %d", name, sweepName, pt.Sockets)
		}
		if pt.Intensity < 0 {
			fail("%s: %s point has negative intensity %v", name, sweepName, pt.Intensity)
		}
		keys := make(map[string]int, len(pl.Spec.Cases))
		metric := pl.Spec.Cases[0].Metric()
		wantFlops := pt.Compute
		for j, c := range pl.Spec.Cases {
			key := c.Key()
			if key == "" {
				fail("%s: %s case %d has an empty key", name, sweepName, j)
			} else if prev, dup := keys[key]; dup {
				fail("%s: %s cases %d and %d share key %q", name, sweepName, prev, j, key)
			} else {
				keys[key] = j
			}
			if c.Describe() == "" {
				fail("%s: %s case %d has no description", name, sweepName, j)
			}
			if c.Config() == nil {
				fail("%s: %s case %q has a nil Config — its win could not be recovered", name, sweepName, key)
			}
			if c.Metric() != metric {
				fail("%s: %s mixes metrics (%v and %v)", name, sweepName, metric, c.Metric())
			}
		}
		if isFlops := metric == bench.MetricFlops; isFlops != wantFlops {
			fail("%s: %s measures %s but its point lands on the %s side",
				name, sweepName, metric.Unit(), side(pt.Compute))
		}
	}
	return errs
}

func side(compute bool) string {
	if compute {
		return "compute"
	}
	return "memory"
}
