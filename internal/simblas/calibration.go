package simblas

import (
	"math"

	"rooftune/internal/hw"
)

// calibrations holds the per-system, per-socket-count response-surface
// parameters fitted to the paper's published measurements:
//
//   - targets and efficiencies: Tables IV and V,
//   - square-matrix anchor: §VI-A (n=m=k=1000 at 55.69% on Gold 6132 S2,
//     and Intel's 52.08% on the Silver 4110 in single precision),
//   - noise levels: §V notes clock-frequency scaling could not be
//     disabled, making results less stable — most visible on the 2695v4,
//     whose optimisation tables (Table IX) show technique-to-technique
//     spread an order of magnitude larger than the other systems. The
//     2695v4 therefore gets a deep, slow warm-up ramp and a larger
//     iteration/invocation sigma; that combination is what reproduces the
//     paper's min_count anomaly (§VI-C).
//
// The kernel widths were chosen so the square-matrix anchors fall out
// correctly; the calibration tests in calibration_test.go pin all of
// these properties.
var calibrations = map[string]map[int]Params{
	"2650v4": {
		1: {
			TargetN: 1000, TargetM: 4096, TargetK: 128, TargetEff: 0.9676,
			WN: 0.045, WM: 0.040, WK: 0.065, Floor: 0.62,
			IterSigma: 0.010, InvSigma: 0.004,
			SpikeProb: 0.004, SpikeScale: 0.08,
			RampDepth: 0.06, RampTau: 2,
		},
		2: {
			TargetN: 2000, TargetM: 2048, TargetK: 64, TargetEff: 0.9156,
			WN: 0.045, WM: 0.040, WK: 0.060, Floor: 0.60,
			IterSigma: 0.012, InvSigma: 0.005,
			SpikeProb: 0.004, SpikeScale: 0.08,
			RampDepth: 0.06, RampTau: 2,
		},
	},
	// The 2695v4's steady efficiencies carry a x1.005 compensation for
	// its warm-up ramp (depth 0.28, tau 5): the mean over a full
	// 200-iteration invocation is ~0.5% below steady state, and Table IV
	// reports that ramp-inclusive mean. The deep ramp plus the larger
	// noise sigma reproduce the paper's §VI-C anomaly: with min_count=2,
	// stop condition 4 prunes the top configurations during their ramp.
	"2695v4": {
		1: {
			TargetN: 2000, TargetM: 4096, TargetK: 128, TargetEff: 0.9857,
			WN: 0.050, WM: 0.042, WK: 0.070, Floor: 0.60,
			IterSigma: 0.026, InvSigma: 0.010,
			SpikeProb: 0.010, SpikeScale: 0.15,
			RampDepth: 0.28, RampTau: 5,
		},
		2: {
			TargetN: 4000, TargetM: 2048, TargetK: 128, TargetEff: 0.9241,
			WN: 0.050, WM: 0.042, WK: 0.070, Floor: 0.58,
			IterSigma: 0.028, InvSigma: 0.012,
			SpikeProb: 0.012, SpikeScale: 0.15,
			RampDepth: 0.28, RampTau: 5,
		},
	},
	"Gold 6132": {
		1: {
			TargetN: 1000, TargetM: 4096, TargetK: 128, TargetEff: 0.8720,
			WN: 0.050, WM: 0.045, WK: 0.070, Floor: 0.60,
			IterSigma: 0.012, InvSigma: 0.005,
			SpikeProb: 0.005, SpikeScale: 0.10,
			RampDepth: 0.06, RampTau: 2,
		},
		2: {
			// Square anchor: eff(1000,1000,1000) must be 0.5569 (§VI-A)
			// while the target is 0.7513; with these widths the square
			// point sits at kern*u = 0.741 of target. See
			// TestGold6132SquareAnchor.
			TargetN: 4000, TargetM: 512, TargetK: 128, TargetEff: 0.7513,
			WN: 0.088, WM: 0.082, WK: 0.105, Floor: 0.58,
			IterSigma: 0.014, InvSigma: 0.006,
			SpikeProb: 0.005, SpikeScale: 0.10,
			RampDepth: 0.06, RampTau: 2,
		},
	},
	"Gold 6148": {
		1: {
			TargetN: 4000, TargetM: 512, TargetK: 128, TargetEff: 0.9259,
			WN: 0.050, WM: 0.045, WK: 0.070, Floor: 0.60,
			IterSigma: 0.012, InvSigma: 0.005,
			SpikeProb: 0.005, SpikeScale: 0.10,
			RampDepth: 0.06, RampTau: 2,
		},
		2: {
			TargetN: 4000, TargetM: 1024, TargetK: 128, TargetEff: 0.7836,
			WN: 0.050, WM: 0.045, WK: 0.065, Floor: 0.58,
			IterSigma: 0.014, InvSigma: 0.006,
			SpikeProb: 0.005, SpikeScale: 0.10,
			RampDepth: 0.06, RampTau: 2,
		},
	},
	// Intel's own benchmark of the Silver 4110 (Hu & Story) only swept
	// square matrices and found m=n=k=1000 best, at 52.08% of the
	// single-precision peak (Eq. 12). Calibrated in SP with a square
	// target so the Intel comparison experiment recovers their number.
	"Silver 4110": {
		2: {
			TargetN: 1000, TargetM: 1000, TargetK: 1000, TargetEff: 0.5208,
			WN: 0.050, WM: 0.045, WK: 0.060, Floor: 0.60,
			IterSigma: 0.015, InvSigma: 0.006,
			SpikeProb: 0.005, SpikeScale: 0.10,
			RampDepth: 0.06, RampTau: 2,
			SinglePrecision: true,
		},
	},
}

// genericCalibration builds a reasonable surface for systems without a
// published calibration: the target sits at (2048, 2048, 128) — a large
// slab with the near-universal k=128 sweet spot the paper observes — with
// efficiency scaled by vector generation (AVX-512 machines are harder to
// feed, §VI-A) and socket count (interconnect overhead, §VII).
func genericCalibration(sys hw.System) map[int]Params {
	out := make(map[int]Params, sys.Sockets)
	for s := 1; s <= sys.Sockets; s++ {
		eff := 0.95
		if sys.Vector == hw.AVX512 {
			eff = 0.90
		}
		// Multi-socket scaling loses ~8% per extra socket.
		eff *= math.Pow(0.92, float64(s-1))
		out[s] = Params{
			TargetN: 2048, TargetM: 2048, TargetK: 128, TargetEff: eff,
			WN: 0.050, WM: 0.045, WK: 0.065, Floor: 0.60,
			IterSigma: 0.012, InvSigma: 0.005,
			SpikeProb: 0.005, SpikeScale: 0.10,
			RampDepth: 0.15, RampTau: 3,
		}
	}
	return out
}

// CalibratedSystems lists the systems with published-data calibrations.
func CalibratedSystems() []string {
	return []string{"2650v4", "2695v4", "Gold 6132", "Gold 6148", "Silver 4110"}
}
