package simblas

import (
	"math"
	"testing"
	"time"

	"rooftune/internal/hw"
	"rooftune/internal/units"
)

// unionSpace mirrors core.UnionDGEMMSpace without importing core (which
// would invert the dependency direction).
func unionSpace() [][3]int {
	axis := []int{500, 512, 1000, 1024, 2000, 2048, 4000, 4096}
	ks := []int{64, 128, 256, 512, 1024, 2048}
	var out [][3]int
	for _, n := range axis {
		for _, m := range axis {
			for _, k := range ks {
				out = append(out, [3]int{n, m, k})
			}
		}
	}
	return out
}

func TestSurfaceArgmaxMatchesTableV(t *testing.T) {
	// The calibrated response surface's argmax over the paper's search
	// space must be the optimal configuration of Table V, for every
	// system and socket configuration.
	want := map[string]map[int][3]int{
		"2650v4":    {1: {1000, 4096, 128}, 2: {2000, 2048, 64}},
		"2695v4":    {1: {2000, 4096, 128}, 2: {4000, 2048, 128}},
		"Gold 6132": {1: {1000, 4096, 128}, 2: {4000, 512, 128}},
		"Gold 6148": {1: {4000, 512, 128}, 2: {4000, 1024, 128}},
	}
	space := unionSpace()
	for _, sys := range hw.IdunSystems() {
		m := NewModel(sys)
		for sockets, target := range want[sys.Name] {
			best, bestEff := [3]int{}, -1.0
			second := -1.0
			for _, d := range space {
				eff := m.SteadyEff(d[0], d[1], d[2], sockets)
				if eff > bestEff {
					second = bestEff
					best, bestEff = d, eff
				} else if eff > second {
					second = eff
				}
			}
			if best != target {
				t.Errorf("%s S%d: argmax %v, want %v", sys.Name, sockets, best, target)
			}
			if margin := (bestEff - second) / bestEff; margin < 0.005 {
				t.Errorf("%s S%d: argmax margin %.4f too thin for noisy search", sys.Name, sockets, margin)
			}
		}
	}
}

func TestSurfaceEffMatchesTableIV(t *testing.T) {
	// Steady efficiency at the target equals the calibrated Table IV
	// utilisation (up to the documented ramp compensation).
	want := map[string]map[int]float64{
		"2650v4":    {1: 0.9676, 2: 0.9156},
		"2695v4":    {1: 0.9806, 2: 0.9193}, // ramp-inclusive values
		"Gold 6132": {1: 0.8720, 2: 0.7513},
		"Gold 6148": {1: 0.9259, 2: 0.7836},
	}
	for _, sys := range hw.IdunSystems() {
		m := NewModel(sys)
		for sockets, eff := range want[sys.Name] {
			p := m.ParamsFor(sockets)
			got := m.SteadyEff(p.TargetN, p.TargetM, p.TargetK, sockets)
			// Allow the 2695v4's +1.5% steady-state compensation.
			if got < eff-1e-9 || got > eff*1.02 {
				t.Errorf("%s S%d: eff at target %.4f, want ~%.4f", sys.Name, sockets, got, eff)
			}
		}
	}
}

func TestGold6132SquareAnchor(t *testing.T) {
	// §VI-A: n=m=k=1000 on the dual-socket Gold 6132 ran at 55.69% of
	// theoretical peak (1297.48 / 2329.6 GFLOP/s).
	m := NewModel(hw.IdunGold6132)
	got := m.SteadyEff(1000, 1000, 1000, 2)
	if math.Abs(got-0.5569) > 0.01 {
		t.Fatalf("square anchor eff = %.4f, want 0.5569 +- 0.01", got)
	}
	gflops := m.SteadyFlops(1000, 1000, 1000, 2).GFLOPS()
	if math.Abs(gflops-1297.48) > 1297.48*0.015 {
		t.Fatalf("square anchor = %.2f GFLOP/s, want ~1297.48", gflops)
	}
}

func TestSilver4110IntelAnchor(t *testing.T) {
	// Hu & Story: 559.93 GFLOP/s at m=n=k=1000, 52.08% of the SP peak.
	m := NewModel(hw.Silver4110)
	if p := m.ParamsFor(2); !p.SinglePrecision {
		t.Fatal("Silver 4110 must be calibrated in single precision")
	}
	got := m.SteadyFlops(1000, 1000, 1000, 2).GFLOPS()
	if math.Abs(got-559.93) > 559.93*0.01 {
		t.Fatalf("Silver 4110 square = %.2f GFLOP/s, want ~559.93", got)
	}
}

func TestSmallDimensionsPerformPoorly(t *testing.T) {
	// §IV-A's justification for the search-space reduction: low values
	// of n, m, k perform poorly. The smallest initial-space corner must
	// sit far below the optimum on every system.
	for _, sys := range hw.IdunSystems() {
		m := NewModel(sys)
		p := m.ParamsFor(1)
		tiny := m.SteadyEff(64, 64, 2, 1)
		best := m.SteadyEff(p.TargetN, p.TargetM, p.TargetK, 1)
		if tiny > 0.25*best {
			t.Errorf("%s: 64x64x2 at %.3f of optimum — should be poor", sys.Name, tiny/best)
		}
	}
}

func TestEffBounds(t *testing.T) {
	// Efficiency stays in (0, 1] over a wide sweep, including absurd
	// inputs.
	m := NewModel(hw.IdunGold6148)
	for _, d := range unionSpace() {
		for _, sockets := range []int{1, 2} {
			eff := m.SteadyEff(d[0], d[1], d[2], sockets)
			if eff <= 0 || eff > 1 {
				t.Fatalf("eff(%v, S%d) = %v out of (0, 1]", d, sockets, eff)
			}
		}
	}
	if m.SteadyEff(0, 10, 10, 1) != 0 || m.SteadyEff(10, -1, 10, 1) != 0 {
		t.Fatal("non-positive dims must give zero efficiency")
	}
}

func TestInvocationDeterminism(t *testing.T) {
	m := NewModel(hw.IdunE52650v4)
	a := m.NewInvocation(1000, 4096, 128, 1, 3, 42)
	b := m.NewInvocation(1000, 4096, 128, 1, 3, 42)
	if a.SetupTime() != b.SetupTime() || a.WarmupTime() != b.WarmupTime() {
		t.Fatal("same (config, invocation, seed) must replay identically")
	}
	for i := 0; i < 50; i++ {
		if a.StepTime() != b.StepTime() {
			t.Fatalf("step %d diverged", i)
		}
	}
}

func TestInvocationStreamsDiffer(t *testing.T) {
	m := NewModel(hw.IdunE52650v4)
	a := m.NewInvocation(1000, 4096, 128, 1, 0, 42)
	b := m.NewInvocation(1000, 4096, 128, 1, 1, 42) // different invocation
	c := m.NewInvocation(1000, 4096, 128, 1, 0, 43) // different seed
	same := 0
	for i := 0; i < 100; i++ {
		ta, tb, tc := a.StepTime(), b.StepTime(), c.StepTime()
		if ta == tb {
			same++
		}
		if ta == tc {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("noise streams correlated: %d collisions", same)
	}
}

func TestWarmupRampImprovesPerformance(t *testing.T) {
	// Later iterations must be faster than the first post-warm-up ones
	// (on average), and converge toward steady state — the behaviour
	// behind §III-C4's min_count discussion.
	m := NewModel(hw.IdunE52695v4)
	inv := m.NewInvocation(2000, 4096, 128, 1, 0, 7)
	inv.WarmupTime()
	var early, late time.Duration
	const batch = 5
	for i := 0; i < batch; i++ {
		early += inv.StepTime()
	}
	for i := 0; i < 150; i++ {
		inv.StepTime()
	}
	for i := 0; i < batch; i++ {
		late += inv.StepTime()
	}
	if late >= early {
		t.Fatalf("no warm-up ramp: early %v, late %v", early, late)
	}
	steady := time.Duration(units.DGEMMFlops(2000, 4096, 128) /
		float64(m.SteadyFlops(2000, 4096, 128, 1)) * float64(time.Second))
	if late < steady*batch*95/100 {
		t.Fatalf("late iterations faster than steady state: %v vs %v", late/batch, steady)
	}
}

func TestGenericCalibrationForUnknownSystem(t *testing.T) {
	sys := hw.System{
		Name: "mystery", FreqGHz: 3.0, CoresPerSocket: 8, Vector: hw.AVX2,
		FMAUnits: 2, Sockets: 1, DRAMFreqMHz: 3200, DRAMChannels: 2,
		BytesPerCycle: 8, L3PerSocket: 16 * units.MiB,
		L2PerCore: 512 * units.KiB, L1PerCore: 32 * units.KiB,
	}
	m := NewModel(sys)
	p := m.ParamsFor(1)
	if p.TargetK != 128 {
		t.Fatalf("generic calibration should use the k=128 sweet spot, got %d", p.TargetK)
	}
	eff := m.SteadyEff(p.TargetN, p.TargetM, p.TargetK, 1)
	if eff < 0.85 || eff > 1 {
		t.Fatalf("generic AVX2 target eff = %v", eff)
	}
}

func TestGenericMultiSocketScaling(t *testing.T) {
	sys := hw.IdunGold6148
	sys.Name = "uncalibrated-clone"
	m := NewModel(sys)
	e1 := m.ParamsFor(1).TargetEff
	e2 := m.ParamsFor(2).TargetEff
	if e2 >= e1 {
		t.Fatalf("dual-socket efficiency must degrade: %v vs %v", e1, e2)
	}
}

func TestPeakUsesVectorGeneration(t *testing.T) {
	m := NewModel(hw.IdunGold6148)
	if got := m.Peak(1).GFLOPS(); math.Abs(got-1536) > 1e-9 {
		t.Fatalf("Peak(1) = %v", got)
	}
	if got := m.Peak(2).GFLOPS(); math.Abs(got-3072) > 1e-9 {
		t.Fatalf("Peak(2) = %v", got)
	}
}

func TestSetupTimeScalesWithSize(t *testing.T) {
	m := NewModel(hw.IdunE52650v4)
	small := m.NewInvocation(500, 512, 64, 1, 0, 1).SetupTime()
	big := m.NewInvocation(4096, 4096, 2048, 1, 0, 1).SetupTime()
	if big <= small {
		t.Fatalf("setup time must grow with matrix size: %v vs %v", small, big)
	}
}

func TestCalibratedSystemsList(t *testing.T) {
	for _, name := range CalibratedSystems() {
		if _, ok := calibrations[name]; !ok {
			t.Errorf("CalibratedSystems lists %q without calibration", name)
		}
	}
}
