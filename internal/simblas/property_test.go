package simblas

import (
	"testing"
	"testing/quick"
	"time"

	"rooftune/internal/hw"
)

func TestEffBoundedForArbitraryDims(t *testing.T) {
	// The response surface must stay in (0, 1] for any positive input,
	// on every calibrated system and socket count.
	models := make([]*Model, 0, 4)
	for _, sys := range hw.IdunSystems() {
		models = append(models, NewModel(sys))
	}
	f := func(nRaw, mRaw, kRaw uint16, s uint8) bool {
		n := int(nRaw)%16384 + 1
		m := int(mRaw)%16384 + 1
		k := int(kRaw)%8192 + 1
		sockets := int(s)%2 + 1
		for _, model := range models {
			eff := model.SteadyEff(n, m, k, sockets)
			if eff <= 0 || eff > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestStepTimesPositiveAndFinite(t *testing.T) {
	m := NewModel(hw.IdunE52695v4)
	f := func(nRaw, mRaw, kRaw uint16, inv uint8, seed uint64) bool {
		n := int(nRaw)%4096 + 1
		mm := int(mRaw)%4096 + 1
		k := int(kRaw)%2048 + 1
		si := m.NewInvocation(n, mm, k, 2, int(inv), seed)
		if si.SetupTime() <= 0 || si.WarmupTime() <= 0 {
			return false
		}
		for i := 0; i < 5; i++ {
			d := si.StepTime()
			if d < time.Microsecond || d > time.Hour {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanTimeTracksWork(t *testing.T) {
	// Doubling k roughly doubles the step time (same efficiency regime):
	// the simulator's cost model scales with FLOPs, the property Fig. 6
	// depends on.
	m := NewModel(hw.IdunGold6148)
	avg := func(k int) float64 {
		si := m.NewInvocation(2000, 2048, k, 1, 0, 9)
		si.WarmupTime()
		var total time.Duration
		const n = 50
		for i := 0; i < n; i++ {
			total += si.StepTime()
		}
		return total.Seconds() / n
	}
	t512, t1024 := avg(512), avg(1024)
	ratio := t1024 / t512
	if ratio < 1.6 || ratio > 2.6 {
		t.Fatalf("doubling k scaled time by %.2f, want ~2 (modulo efficiency shift)", ratio)
	}
}

func TestRampCompensationBudget(t *testing.T) {
	// The 2695v4 calibration encodes steady efficiencies above the
	// Table IV values to compensate the warm-up ramp; the compensation
	// must stay small (< 2%) and the steady value physical (< 1).
	m := NewModel(hw.IdunE52695v4)
	for _, sockets := range []int{1, 2} {
		p := m.ParamsFor(sockets)
		if p.TargetEff >= 1 {
			t.Fatalf("S%d steady efficiency %.4f not physical", sockets, p.TargetEff)
		}
		paper := map[int]float64{1: 0.9806, 2: 0.9193}[sockets]
		comp := p.TargetEff / paper
		if comp < 1.0 || comp > 1.02 {
			t.Fatalf("S%d ramp compensation %.4f out of the documented 0-2%% band", sockets, comp)
		}
	}
}
