// Package simblas models the performance of a vendor-optimised DGEMM
// (Intel MKL in the paper) on the paper's four Xeon systems. It is the
// substitute for hardware we do not have: the autotuner only ever sees
// `(n, m, k, sockets) -> stream of timed samples`, so a model that
// reproduces the paper's efficiency surface exercises the identical
// tuner and stop-condition code paths.
//
// The model is an empirical response surface calibrated per system and
// socket count to the published results:
//
//   - the surface's argmax over the paper's search space is the optimal
//     configuration of Table V,
//   - efficiency at the argmax matches Table IV (e.g. 96.76% of the
//     2650v4 single-socket theoretical peak),
//   - square matrices n=m=k=1000 land near the 55.69% the paper measures
//     on the Gold 6132 (§VI-A),
//   - small dimensions perform poorly (§IV-A), which is what justifies
//     the paper's search-space reduction,
//
// combined with a measurement-noise model (lognormal body, rare spikes,
// per-invocation shifts, a warm-up ramp) that drives the statistical stop
// conditions the paper studies.
package simblas

import (
	"fmt"
	"math"
	"time"

	"rooftune/internal/hw"
	"rooftune/internal/units"
	"rooftune/internal/vclock"
	"rooftune/internal/xrand"
)

// Params is the per-(system, sockets) calibration of the response surface
// and noise model.
type Params struct {
	// Target is the optimal configuration (Table V) and its efficiency
	// relative to theoretical peak (Table IV).
	TargetN, TargetM, TargetK int
	TargetEff                 float64

	// Anisotropic kernel widths in log2 space. Larger width = faster
	// efficiency decay away from the target along that axis.
	WN, WM, WK float64

	// Floor is the kernel's asymptotic efficiency fraction far from the
	// target (before the utilisation terms), as a fraction of TargetEff.
	Floor float64

	// IterSigma is the lognormal sigma of per-iteration noise;
	// InvSigma the lognormal sigma of the per-invocation multiplier.
	IterSigma, InvSigma float64

	// SpikeProb is the per-iteration probability of an OS-jitter spike;
	// SpikeScale its mean relative magnitude.
	SpikeProb, SpikeScale float64

	// RampDepth and RampTau describe the warm-up transient: iteration i
	// runs at steady performance scaled by 1 - RampDepth*exp(-(i+1)/RampTau).
	// The paper's 2695v4 exhibits configurations that "increase
	// substantially during the evaluation process" (§III-C4) — a deep,
	// slow ramp — which is what makes min_count=2 unsafe there.
	RampDepth, RampTau float64

	// SinglePrecision switches the peak to the SP figure (Eq. 12); used
	// for the Silver 4110 comparison against Intel's own numbers.
	SinglePrecision bool
}

// Model is a calibrated DGEMM performance model for one system.
type Model struct {
	Sys    hw.System
	params map[int]Params // keyed by socket count
	// utilisation scale: grain per core for the parallel-slab term
	utilGrain float64
}

// NewModel builds the model for a calibrated system. Systems without a
// calibration entry get a generic surface (documented defaults), so
// user-defined systems still work.
func NewModel(sys hw.System) *Model {
	m := &Model{Sys: sys, params: map[int]Params{}, utilGrain: 2048}
	calib, ok := calibrations[sys.Name]
	if !ok {
		calib = genericCalibration(sys)
	}
	for s, p := range calib {
		m.params[s] = p
	}
	return m
}

// ParamsFor returns the calibration used for the given socket count,
// clamped to the system's socket range.
func (m *Model) ParamsFor(sockets int) Params {
	if sockets < 1 {
		sockets = 1
	}
	if sockets > m.Sys.Sockets {
		sockets = m.Sys.Sockets
	}
	if p, ok := m.params[sockets]; ok {
		return p
	}
	// Fall back to the nearest calibrated socket count.
	for s := sockets; s >= 1; s-- {
		if p, ok := m.params[s]; ok {
			return p
		}
	}
	for s := sockets; s <= m.Sys.Sockets; s++ {
		if p, ok := m.params[s]; ok {
			return p
		}
	}
	panic(fmt.Sprintf("simblas: no calibration for %s", m.Sys.Name))
}

// Peak returns the theoretical peak the model's efficiencies are relative
// to (DP by default, SP for SinglePrecision calibrations).
func (m *Model) Peak(sockets int) units.Flops {
	p := m.ParamsFor(sockets)
	if p.SinglePrecision {
		return m.Sys.TheoreticalFlopsSP(sockets)
	}
	return m.Sys.TheoreticalFlops(sockets)
}

// SteadyEff returns the deterministic steady-state efficiency (fraction of
// theoretical peak) for a configuration. It is the noise-free response
// surface; the argmax over any grid containing the calibrated target is
// the target itself, with at least a 1% margin over every other point.
func (m *Model) SteadyEff(n, mm, k, sockets int) float64 {
	p := m.ParamsFor(sockets)
	if n <= 0 || mm <= 0 || k <= 0 {
		return 0
	}
	dn := math.Log2(float64(n) / float64(p.TargetN))
	dm := math.Log2(float64(mm) / float64(p.TargetM))
	dk := math.Log2(float64(k) / float64(p.TargetK))
	d2 := p.WN*dn*dn + p.WM*dm*dm + p.WK*dk*dk
	kern := p.Floor + (1-p.Floor)*math.Exp(-d2)

	// Utilisation: a small slab starves the cores (parallel grain), and a
	// shallow k starves the micro-kernel pipeline. Normalised so the
	// target sits at 1.
	u := m.util(n, mm, k, sockets) / m.util(p.TargetN, p.TargetM, p.TargetK, sockets)

	raw := kern * u
	if d2 > 1e-12 {
		// Preserve a strict argmax at the calibrated target: no competitor
		// exceeds 96% of it, leaving headroom for the deterministic jitter
		// and the stochastic measurement noise. The paper's own data shows
		// this gap scale: its Default searches land within a fraction of a
		// percent of the exhaustive optimum on every system (Tables IV vs
		// VIII-XI), implying a clear winner.
		if raw > 0.96 {
			raw = 0.96
		}
		// Deterministic per-configuration fingerprint (±0.25%), modelling
		// alignment and association effects the smooth surface misses.
		// Zero at the target by construction of the scale factor.
		raw *= 1 + 0.0025*m.jitter(n, mm, k, sockets)*(1-math.Exp(-d2))
	}
	eff := p.TargetEff * raw
	if eff < 0.002 {
		eff = 0.002
	}
	return eff
}

// util is the generic utilisation term: slab parallelism times pipeline
// depth.
func (m *Model) util(n, mm, k, sockets int) float64 {
	cores := float64(m.Sys.Cores(sockets))
	slab := float64(n) * float64(mm)
	u1 := slab / (slab + cores*m.utilGrain)
	u2 := float64(k) / (float64(k) + 16)
	return u1 * u2
}

// jitter returns a deterministic value in [-1, 1] derived from the
// configuration, stable across runs.
func (m *Model) jitter(n, mm, k, sockets int) float64 {
	h := uint64(2166136261)
	for _, v := range []int{n, mm, k, sockets} {
		h ^= uint64(v)
		h *= 16777619
		h ^= h >> 13
	}
	for _, c := range m.Sys.Name {
		h ^= uint64(c)
		h *= 16777619
	}
	return float64(int64(h%2000001)-1000000) / 1e6
}

// SteadyFlops returns the deterministic steady-state throughput for a
// configuration.
func (m *Model) SteadyFlops(n, mm, k, sockets int) units.Flops {
	return units.Flops(float64(m.Peak(sockets)) * m.SteadyEff(n, mm, k, sockets))
}

// Invocation simulates one benchmark process invocation for a fixed
// configuration: deterministic given the seed, with its own invocation-
// level performance shift and warm-up state, mirroring the
// invocation-level repetition of Georges et al. that the paper adopts.
type Invocation struct {
	model   *Model
	n, m, k int
	sockets int
	rng     *xrand.Rand
	steadyT float64 // seconds per op at steady state for this invocation
	params  Params
	iter    int
}

// NewInvocation creates the simulator state for invocation number inv of
// the given configuration. Noise streams are derived by hashing
// (seed, configuration, invocation), so evaluation order never changes a
// sample: two techniques that measure the same iteration of the same
// invocation see the same value, exactly as if replaying a recorded
// machine.
func (m *Model) NewInvocation(n, mm, k, sockets, inv int, seed uint64) *Invocation {
	p := m.ParamsFor(sockets)
	rng := xrand.New(xrand.Mix(seed, 0xd6e8, uint64(n), uint64(mm), uint64(k),
		uint64(sockets), uint64(inv)))
	work := units.DGEMMFlops(n, mm, k)
	steady := work / float64(m.SteadyFlops(n, mm, k, sockets))
	// Invocation-level multiplicative shift (allocation layout, thread
	// placement): lognormal around 1.
	steady *= rng.LogNormal(0, p.InvSigma)
	return &Invocation{
		model: m, n: n, m: mm, k: k, sockets: sockets,
		rng: rng, steadyT: steady, params: p,
	}
}

// SetupTime returns the virtual cost of process start plus matrix
// initialisation: a fixed startup latency plus first-touch of the three
// matrices at half the socket-local DRAM bandwidth.
func (inv *Invocation) SetupTime() time.Duration {
	const startup = 3 * time.Millisecond
	bytes := 8 * (float64(inv.n)*float64(inv.k) +
		float64(inv.k)*float64(inv.m) +
		float64(inv.n)*float64(inv.m))
	bw := float64(inv.model.Sys.TheoreticalBandwidth(inv.sockets)) * 0.5
	return startup + time.Duration(bytes/bw*float64(time.Second))
}

// WarmupTime simulates the pre-heat DGEMM call (§III-A): it advances the
// warm-up state and returns the elapsed time of one unmeasured execution.
func (inv *Invocation) WarmupTime() time.Duration {
	t := inv.stepRaw()
	return t
}

// StepTime returns the elapsed time of the next measured iteration,
// quantised to gettimeofday resolution.
func (inv *Invocation) StepTime() time.Duration {
	return vclock.QuantizeMicro(inv.stepRaw())
}

func (inv *Invocation) stepRaw() time.Duration {
	p := inv.params
	ramp := 1 - p.RampDepth*math.Exp(-float64(inv.iter+1)/p.RampTau)
	inv.iter++
	t := inv.steadyT / ramp
	// Lognormal noise body.
	t *= inv.rng.LogNormal(0, p.IterSigma)
	// Rare OS-jitter spikes lengthen an iteration.
	if inv.rng.Bernoulli(p.SpikeProb) {
		t *= 1 + inv.rng.Gamma(2, p.SpikeScale/2)
	}
	// Loop and timer overhead.
	const overhead = 2e-6
	d := time.Duration((t + overhead) * float64(time.Second))
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

// Work returns the FLOPs of one DGEMM execution of this configuration.
func (inv *Invocation) Work() float64 { return units.DGEMMFlops(inv.n, inv.m, inv.k) }
