// Package hw describes the hardware systems the paper benchmarks: clock
// frequencies, core counts, vector units, cache hierarchy, memory channels
// and socket topology (Table II), and derives the theoretical peak compute
// and bandwidth figures of Table III via Eqs. 9-11.
//
// The four Idun-cluster systems from the paper are predefined, together
// with the Intel Xeon Silver 4110 used for the comparison against Intel's
// own DGEMM tuning guide (§VI-A), and a generic builder for user-defined
// systems.
package hw

import (
	"fmt"
	"sort"
	"sync"

	"rooftune/internal/units"
)

// Vector identifies the widest SIMD instruction set of a core.
type Vector int

// Supported vector instruction sets.
const (
	SSE    Vector = iota // 128-bit
	AVX                  // 256-bit, no FMA
	AVX2                 // 256-bit with FMA
	AVX512               // 512-bit with FMA
)

// String returns the conventional name of the instruction set.
func (v Vector) String() string {
	switch v {
	case SSE:
		return "SSE"
	case AVX:
		return "AVX"
	case AVX2:
		return "AVX2"
	case AVX512:
		return "AVX512"
	default:
		return fmt.Sprintf("Vector(%d)", int(v))
	}
}

// Bits returns the vector register width in bits.
func (v Vector) Bits() int {
	switch v {
	case SSE:
		return 128
	case AVX, AVX2:
		return 256
	case AVX512:
		return 512
	default:
		return 0
	}
}

// DPOpsPerCycle returns double-precision FLOPs per cycle per FMA unit for
// the instruction set, per Eq. 10 of the paper generalised to any width:
//
//	ops/cycle = |vector| * ops_per_element / |DP|
//
// where ops_per_element is 2 for fused multiply-add sets (AVX2, AVX512)
// and 1 otherwise. AVX512: 512 bits * 2 / 64 bits = 16.
func (v Vector) DPOpsPerCycle() float64 {
	lanes := float64(v.Bits()) / 64
	if v == AVX2 || v == AVX512 {
		return lanes * 2
	}
	return lanes
}

// SPOpsPerCycle returns single-precision FLOPs per cycle per FMA unit,
// used to reproduce the paper's Eq. 12 calculation for the Silver 4110.
func (v Vector) SPOpsPerCycle() float64 { return 2 * v.DPOpsPerCycle() }

// System is a complete description of one benchmarkable machine.
//
// Note on Table II fidelity: the paper prints "AVXUnits 1" for the
// Broadwell (v4) systems, yet its own Table III peak of 422.4 GFLOP/s for
// the 2650v4 requires 16 DP FLOP/cycle/core = two 256-bit FMA units, which
// is the physically correct figure for Broadwell. We encode FMAUnits=2 so
// that Eq. 9 reproduces Table III exactly, and record the discrepancy in
// EXPERIMENTS.md.
type System struct {
	Name           string
	FreqGHz        float64 // base core clock, GHz (Table II Freq_CPU)
	CoresPerSocket int
	Vector         Vector
	FMAUnits       int     // AVX units per core (Table II AVX_Units, corrected)
	Sockets        int     // CPUs in the node
	DRAMFreqMHz    float64 // memory clock (Table II Freq_D)
	DRAMChannels   int     // channels per socket
	BytesPerCycle  float64 // per channel transfer width; 8 for DDR4

	// Cache hierarchy. L3 is shared per socket; L1/L2 are per core.
	L3PerSocket units.ByteSize
	L2PerCore   units.ByteSize
	L1PerCore   units.ByteSize
}

// Validate reports whether the description is internally consistent.
func (s *System) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("hw: system has no name")
	case s.FreqGHz <= 0:
		return fmt.Errorf("hw: %s: non-positive core frequency", s.Name)
	case s.CoresPerSocket <= 0:
		return fmt.Errorf("hw: %s: non-positive core count", s.Name)
	case s.FMAUnits <= 0:
		return fmt.Errorf("hw: %s: non-positive FMA unit count", s.Name)
	case s.Sockets <= 0:
		return fmt.Errorf("hw: %s: non-positive socket count", s.Name)
	case s.DRAMFreqMHz <= 0:
		return fmt.Errorf("hw: %s: non-positive DRAM frequency", s.Name)
	case s.DRAMChannels <= 0:
		return fmt.Errorf("hw: %s: non-positive DRAM channel count", s.Name)
	case s.BytesPerCycle <= 0:
		return fmt.Errorf("hw: %s: non-positive bytes per cycle", s.Name)
	case s.L3PerSocket <= 0:
		return fmt.Errorf("hw: %s: non-positive L3 size", s.Name)
	}
	return nil
}

// Cores returns the number of cores available when using the given number
// of sockets, clamped to the system's socket count.
func (s *System) Cores(sockets int) int {
	return s.CoresPerSocket * s.clampSockets(sockets)
}

// SocketConfigs returns the socket counts the paper measures on this
// system: a single socket always, plus the full machine when it has more.
// Both the library sweeps and the experiment campaigns iterate this list.
func (s *System) SocketConfigs() []int {
	out := []int{1}
	if s.Sockets > 1 {
		out = append(out, s.Sockets)
	}
	return out
}

func (s *System) clampSockets(sockets int) int {
	if sockets < 1 {
		sockets = 1
	}
	if sockets > s.Sockets {
		sockets = s.Sockets
	}
	return sockets
}

// TheoreticalFlops evaluates Eq. 9 for the given socket count:
//
//	Ft = freq * cores * AVX_type * AVX_units * CPUs
//
// in double precision.
func (s *System) TheoreticalFlops(sockets int) units.Flops {
	n := s.clampSockets(sockets)
	return units.Flops(s.FreqGHz * 1e9 * float64(s.CoresPerSocket) *
		s.Vector.DPOpsPerCycle() * float64(s.FMAUnits) * float64(n))
}

// TheoreticalFlopsSP is Eq. 9 in single precision (the paper's Eq. 12 uses
// the 32 ops/cycle SP multiplier for the Silver 4110).
func (s *System) TheoreticalFlopsSP(sockets int) units.Flops {
	n := s.clampSockets(sockets)
	return units.Flops(s.FreqGHz * 1e9 * float64(s.CoresPerSocket) *
		s.Vector.SPOpsPerCycle() * float64(s.FMAUnits) * float64(n))
}

// TheoreticalBandwidth evaluates Eq. 11:
//
//	Bt = freq * channels * bytes/cycle
//
// DRAMChannels follows the paper's Table II convention: the channel count
// is the figure Eq. 11 multiplies to get the *node* bandwidth of Table
// III (76.8 GB/s for the v4 systems), and the paper's Table VI rates
// single-socket runs against half that. TheoreticalBandwidth therefore
// scales the node figure by sockets/Sockets.
func (s *System) TheoreticalBandwidth(sockets int) units.Bandwidth {
	n := s.clampSockets(sockets)
	node := s.DRAMFreqMHz * 1e6 * float64(s.DRAMChannels) * s.BytesPerCycle
	return units.Bandwidth(node * float64(n) / float64(s.Sockets))
}

// L3Total returns the aggregate L3 capacity across the given sockets.
func (s *System) L3Total(sockets int) units.ByteSize {
	return s.L3PerSocket * units.ByteSize(s.clampSockets(sockets))
}

// L2Total returns the aggregate L2 capacity across the given sockets'
// cores. L2 is private per core, so the aggregate scales with the engaged
// core count — the capacity bound the per-level TRIAD residency sweeps
// classify working sets against.
func (s *System) L2Total(sockets int) units.ByteSize {
	return s.L2PerCore * units.ByteSize(s.Cores(sockets))
}

// L1Total returns the aggregate L1 data-cache capacity across the given
// sockets' cores.
func (s *System) L1Total(sockets int) units.ByteSize {
	return s.L1PerCore * units.ByteSize(s.Cores(sockets))
}

// CacheLevels returns the residency-region names of the memory hierarchy
// in decreasing-bandwidth order: L1, L2, L3, DRAM. It is the vocabulary
// of the per-level TRIAD sweeps (rooftune.WithTriadLevels) and of
// MemoryPoint.Region on simulated systems.
func CacheLevels() []string { return []string{"L1", "L2", "L3", "DRAM"} }

// ValidateCacheLevels checks that levels is a non-empty, duplicate-free
// subset of CacheLevels — the one validator behind both the session
// option and the TRIAD workload, so they can never disagree on what a
// level name is.
func ValidateCacheLevels(levels []string) error {
	if len(levels) == 0 {
		return fmt.Errorf("hw: no residency levels named")
	}
	seen := map[string]bool{}
	for _, lv := range levels {
		known := false
		for _, k := range CacheLevels() {
			known = known || k == lv
		}
		if !known {
			return fmt.Errorf("hw: unknown residency level %q (known: %v)", lv, CacheLevels())
		}
		if seen[lv] {
			return fmt.Errorf("hw: residency level %q named twice", lv)
		}
		seen[lv] = true
	}
	return nil
}

// String returns a one-line summary of the system.
func (s *System) String() string {
	return fmt.Sprintf("%s: %dx%d cores @ %.1f GHz %s x%d, %d ch DDR-%d, L3 %v/socket",
		s.Name, s.Sockets, s.CoresPerSocket, s.FreqGHz, s.Vector, s.FMAUnits,
		s.DRAMChannels, int(s.DRAMFreqMHz), s.L3PerSocket)
}

// Affinity is the thread-placement policy, modelling KMP_AFFINITY.
type Affinity int

const (
	// AffinityClose packs threads onto consecutive core IDs, filling one
	// socket before spilling to the next — the policy the paper uses for
	// DGEMM (keep data close to the cores) and for single-socket TRIAD.
	AffinityClose Affinity = iota
	// AffinitySpread distributes threads across sockets round-robin,
	// maximising aggregate memory channels — the paper's policy for
	// multi-socket TRIAD.
	AffinitySpread
)

// String returns the KMP_AFFINITY-style name of the policy.
func (a Affinity) String() string {
	if a == AffinitySpread {
		return "spread"
	}
	return "close"
}

// SocketsUsed returns how many sockets the policy touches when running
// `threads` threads on system s: close packing fills sockets one by one,
// spread touches all requested sockets immediately.
func (a Affinity) SocketsUsed(s *System, threads, socketsAvail int) int {
	avail := s.clampSockets(socketsAvail)
	if threads <= 0 {
		return 1
	}
	if a == AffinitySpread {
		if threads < avail {
			return threads
		}
		return avail
	}
	used := (threads + s.CoresPerSocket - 1) / s.CoresPerSocket
	if used > avail {
		used = avail
	}
	if used < 1 {
		used = 1
	}
	return used
}

// Predefined systems. These are package-level immutable templates; use
// Get to obtain a copy safe for mutation.
var (
	// IdunE52650v4 is the Intel Xeon E5-2650 v4 node (Broadwell, AVX2).
	IdunE52650v4 = System{
		Name: "2650v4", FreqGHz: 2.2, CoresPerSocket: 12, Vector: AVX2,
		FMAUnits: 2, Sockets: 2, DRAMFreqMHz: 2400, DRAMChannels: 4,
		BytesPerCycle: 8, L3PerSocket: 30 * units.MiB,
		L2PerCore: 256 * units.KiB, L1PerCore: 32 * units.KiB,
	}
	// IdunE52695v4 is the Intel Xeon E5-2695 v4 node (Broadwell, AVX2).
	IdunE52695v4 = System{
		Name: "2695v4", FreqGHz: 2.1, CoresPerSocket: 18, Vector: AVX2,
		FMAUnits: 2, Sockets: 2, DRAMFreqMHz: 2400, DRAMChannels: 4,
		BytesPerCycle: 8, L3PerSocket: 45 * units.MiB,
		L2PerCore: 256 * units.KiB, L1PerCore: 32 * units.KiB,
	}
	// IdunGold6132 is the Intel Xeon Gold 6132 node (Skylake-SP, AVX-512).
	IdunGold6132 = System{
		Name: "Gold 6132", FreqGHz: 2.6, CoresPerSocket: 14, Vector: AVX512,
		FMAUnits: 2, Sockets: 2, DRAMFreqMHz: 2666, DRAMChannels: 6,
		BytesPerCycle: 8, L3PerSocket: units.ByteSize(19.25 * float64(units.MiB)),
		L2PerCore: units.MiB, L1PerCore: 32 * units.KiB,
	}
	// IdunGold6148 is the Intel Xeon Gold 6148 node (Skylake-SP, AVX-512).
	IdunGold6148 = System{
		Name: "Gold 6148", FreqGHz: 2.4, CoresPerSocket: 20, Vector: AVX512,
		FMAUnits: 2, Sockets: 2, DRAMFreqMHz: 2666, DRAMChannels: 6,
		BytesPerCycle: 8, L3PerSocket: units.ByteSize(31.75 * float64(units.MiB)),
		L2PerCore: units.MiB, L1PerCore: 32 * units.KiB,
	}
	// Silver4110 is the Intel Xeon Silver 4110 that Intel's MKL tuning
	// guide (Hu & Story) benchmarked; the paper compares against it in
	// §VI-A. Silver SKUs have a single 512-bit FMA unit.
	Silver4110 = System{
		Name: "Silver 4110", FreqGHz: 2.1, CoresPerSocket: 8, Vector: AVX512,
		FMAUnits: 1, Sockets: 2, DRAMFreqMHz: 2400, DRAMChannels: 6,
		BytesPerCycle: 8, L3PerSocket: 11 * units.MiB,
		L2PerCore: units.MiB, L1PerCore: 32 * units.KiB,
	}
)

// IdunSystems returns the four paper systems in Table II order.
func IdunSystems() []System {
	return []System{IdunE52650v4, IdunE52695v4, IdunGold6132, IdunGold6148}
}

var (
	registryMu sync.RWMutex
	registry   = map[string]System{
		"2650v4":      IdunE52650v4,
		"2695v4":      IdunE52695v4,
		"gold6132":    IdunGold6132,
		"gold6148":    IdunGold6148,
		"silver4110":  Silver4110,
		"Gold 6132":   IdunGold6132,
		"Gold 6148":   IdunGold6148,
		"Silver 4110": Silver4110,
	}
)

// Register adds (or replaces) a named system in the lookup registry used by
// the command-line tools. The system is validated first.
func Register(s System) error {
	if err := s.Validate(); err != nil {
		return err
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[s.Name] = s
	return nil
}

// Get returns a copy of the registered system with the given name.
func Get(name string) (System, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	if s, ok := registry[name]; ok {
		return s, nil
	}
	return System{}, fmt.Errorf("hw: unknown system %q (known: %v)", name, knownLocked())
}

// Known lists registered system names, sorted.
func Known() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return knownLocked()
}

func knownLocked() []string {
	names := make([]string, 0, len(registry))
	seen := make(map[string]bool)
	for _, s := range registry {
		if !seen[s.Name] {
			seen[s.Name] = true
			names = append(names, s.Name)
		}
	}
	sort.Strings(names)
	return names
}
