package hw

import (
	"math"
	"strings"
	"testing"

	"rooftune/internal/units"
)

func TestTableIIITheoreticalFlops(t *testing.T) {
	// Eq. 9 must reproduce the paper's Table III exactly (per socket).
	cases := []struct {
		sys  System
		want float64 // GFLOP/s single socket
	}{
		{IdunE52650v4, 422.4},
		{IdunE52695v4, 604.8},
		{IdunGold6132, 1164.8},
		{IdunGold6148, 1536},
	}
	for _, c := range cases {
		got := c.sys.TheoreticalFlops(1).GFLOPS()
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Ft = %v, want %v", c.sys.Name, got, c.want)
		}
		// Dual socket doubles.
		if got2 := c.sys.TheoreticalFlops(2).GFLOPS(); math.Abs(got2-2*c.want) > 1e-9 {
			t.Errorf("%s: Ft(2) = %v, want %v", c.sys.Name, got2, 2*c.want)
		}
	}
}

func TestTableIIITheoreticalBandwidth(t *testing.T) {
	// Eq. 11 per the paper's node-level convention: Table III prints the
	// node figure; single-socket runs are rated against half of it
	// (Table VI's percentages).
	cases := []struct {
		sys  System
		want float64 // GB/s node
	}{
		{IdunE52650v4, 76.8},
		{IdunE52695v4, 76.8},
		{IdunGold6132, 127.968},
		{IdunGold6148, 127.968},
	}
	for _, c := range cases {
		got := c.sys.TheoreticalBandwidth(c.sys.Sockets).GBps()
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Bt = %v, want %v", c.sys.Name, got, c.want)
		}
		if got1 := c.sys.TheoreticalBandwidth(1).GBps(); math.Abs(got1-c.want/2) > 1e-9 {
			t.Errorf("%s: Bt(1) = %v, want %v", c.sys.Name, got1, c.want/2)
		}
	}
}

func TestEq12Silver4110SinglePrecision(t *testing.T) {
	// Eq. 12: Ft = 2.1 * 8 * 32 * 1 * 2 = 1075.2 GFLOP/s (SP, 2 CPUs).
	got := Silver4110.TheoreticalFlopsSP(2).GFLOPS()
	if math.Abs(got-1075.2) > 1e-9 {
		t.Fatalf("Silver 4110 SP peak = %v, want 1075.2", got)
	}
}

func TestEq10AVX512DP(t *testing.T) {
	// Eq. 10: 512 bits * 2 ops / 8 bytes = 16 DP ops/cycle per unit.
	if got := AVX512.DPOpsPerCycle(); got != 16 {
		t.Fatalf("AVX512 DP ops/cycle = %v, want 16", got)
	}
	if got := AVX2.DPOpsPerCycle(); got != 8 {
		t.Fatalf("AVX2 DP ops/cycle = %v, want 8", got)
	}
	if got := SSE.DPOpsPerCycle(); got != 2 {
		t.Fatalf("SSE DP ops/cycle = %v, want 2 (no FMA)", got)
	}
	if got := AVX512.SPOpsPerCycle(); got != 32 {
		t.Fatalf("AVX512 SP ops/cycle = %v, want 32", got)
	}
}

func TestVectorNames(t *testing.T) {
	for v, want := range map[Vector]string{SSE: "SSE", AVX: "AVX", AVX2: "AVX2", AVX512: "AVX512"} {
		if v.String() != want {
			t.Errorf("Vector(%d).String() = %q", int(v), v.String())
		}
	}
	if Vector(99).Bits() != 0 {
		t.Error("unknown vector width must be 0")
	}
}

func TestSocketClamping(t *testing.T) {
	s := IdunE52650v4
	if s.Cores(0) != 12 || s.Cores(1) != 12 || s.Cores(2) != 24 || s.Cores(5) != 24 {
		t.Fatalf("core clamping broken: %d %d %d %d",
			s.Cores(0), s.Cores(1), s.Cores(2), s.Cores(5))
	}
	if s.L3Total(3) != 60*units.MiB {
		t.Fatalf("L3Total clamped = %v", s.L3Total(3))
	}
}

func TestValidate(t *testing.T) {
	good := IdunGold6148
	if err := good.Validate(); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
	bads := []func(*System){
		func(s *System) { s.Name = "" },
		func(s *System) { s.FreqGHz = 0 },
		func(s *System) { s.CoresPerSocket = -1 },
		func(s *System) { s.FMAUnits = 0 },
		func(s *System) { s.Sockets = 0 },
		func(s *System) { s.DRAMFreqMHz = 0 },
		func(s *System) { s.DRAMChannels = 0 },
		func(s *System) { s.BytesPerCycle = 0 },
		func(s *System) { s.L3PerSocket = 0 },
	}
	for i, mutate := range bads {
		s := IdunGold6148
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: invalid system accepted", i)
		}
	}
}

func TestAffinity(t *testing.T) {
	if AffinityClose.String() != "close" || AffinitySpread.String() != "spread" {
		t.Fatal("affinity names")
	}
	s := IdunE52650v4 // 12 cores/socket, 2 sockets
	if got := AffinityClose.SocketsUsed(&s, 12, 2); got != 1 {
		t.Fatalf("close with one socket's worth of threads: %d sockets", got)
	}
	if got := AffinityClose.SocketsUsed(&s, 13, 2); got != 2 {
		t.Fatalf("close spilling: %d sockets", got)
	}
	if got := AffinitySpread.SocketsUsed(&s, 2, 2); got != 2 {
		t.Fatalf("spread with 2 threads: %d sockets", got)
	}
	if got := AffinitySpread.SocketsUsed(&s, 1, 2); got != 1 {
		t.Fatalf("spread with 1 thread: %d sockets", got)
	}
	if got := AffinityClose.SocketsUsed(&s, 0, 2); got != 1 {
		t.Fatalf("zero threads: %d sockets", got)
	}
}

func TestRegistry(t *testing.T) {
	names := Known()
	for _, want := range []string{"2650v4", "2695v4", "Gold 6132", "Gold 6148", "Silver 4110"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Known() missing %q: %v", want, names)
		}
	}
	if _, err := Get("no-such-system"); err == nil {
		t.Fatal("Get of unknown system must fail")
	}
	custom := IdunGold6148
	custom.Name = "test-system"
	if err := Register(custom); err != nil {
		t.Fatal(err)
	}
	got, err := Get("test-system")
	if err != nil || got.Name != "test-system" {
		t.Fatalf("Get after Register: %v %v", got, err)
	}
	bad := custom
	bad.FreqGHz = 0
	if err := Register(bad); err == nil {
		t.Fatal("Register must validate")
	}
}

func TestIdunSystemsOrder(t *testing.T) {
	sys := IdunSystems()
	if len(sys) != 4 {
		t.Fatalf("IdunSystems: %d systems", len(sys))
	}
	want := []string{"2650v4", "2695v4", "Gold 6132", "Gold 6148"}
	for i, s := range sys {
		if s.Name != want[i] {
			t.Fatalf("Table II order: got %q at %d", s.Name, i)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", s.Name, err)
		}
	}
}

func TestSocketConfigs(t *testing.T) {
	dual := IdunGold6132
	if got := dual.SocketConfigs(); len(got) != 2 || got[0] != 1 || got[1] != dual.Sockets {
		t.Fatalf("dual-socket configs = %v", got)
	}
	single := dual
	single.Sockets = 1
	if got := single.SocketConfigs(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("single-socket configs = %v", got)
	}
}

func TestSystemString(t *testing.T) {
	s := IdunGold6132.String()
	for _, frag := range []string{"Gold 6132", "AVX512", "2x14", "19.25 MiB"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q: %s", frag, s)
		}
	}
}

func TestPerLevelCacheTotals(t *testing.T) {
	s := IdunGold6148 // 20 cores/socket, 32 KiB L1, 1 MiB L2
	if got, want := s.L1Total(1), 20*32*units.KiB; got != want {
		t.Fatalf("L1Total(1) = %v, want %v", got, want)
	}
	if got, want := s.L2Total(2), 40*units.MiB; got != want {
		t.Fatalf("L2Total(2) = %v, want %v", got, want)
	}
	// Clamping follows Cores: out-of-range socket counts behave.
	if s.L1Total(0) != s.L1Total(1) || s.L2Total(99) != s.L2Total(2) {
		t.Fatal("per-level totals must clamp socket counts")
	}
	levels := CacheLevels()
	if len(levels) != 4 || levels[0] != "L1" || levels[3] != "DRAM" {
		t.Fatalf("CacheLevels() = %v", levels)
	}
}
