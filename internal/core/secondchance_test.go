package core

import (
	"context"
	"testing"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/vclock"
)

// bloomerCase ramps slowly toward a steady value, so the inner bound
// truncates it against a strong incumbent; its steady value is higher
// than the incumbent's.
type bloomerCase struct {
	id      int
	clock   *vclock.Virtual
	steady  time.Duration // duration once warmed up
	rampLen int
}

func (c *bloomerCase) Key() string          { return "bloomer" }
func (c *bloomerCase) Config() bench.Config { return nil }
func (c *bloomerCase) Describe() string     { return "bloomer" }
func (c *bloomerCase) Metric() bench.Metric { return bench.MetricFlops }

func (c *bloomerCase) NewInvocation(inv int) (bench.Instance, error) {
	return &bloomerInstance{c: c}, nil
}

type bloomerInstance struct {
	c *bloomerCase
	i int
}

func (bi *bloomerInstance) Warmup() {}
func (bi *bloomerInstance) Step() time.Duration {
	frac := float64(bi.i) / float64(bi.c.rampLen)
	if frac > 1 {
		frac = 1
	}
	// Starts 30% slower, converges to steady — slow enough to be
	// truncated by the bound, close enough to pass the margin filter.
	d := time.Duration(float64(bi.c.steady) * (1.3 - 0.3*frac))
	bi.i++
	bi.c.clock.Advance(d)
	return d
}
func (bi *bloomerInstance) Work() float64 { return 1e9 }
func (bi *bloomerInstance) Close()        {}

func TestSecondChancePromotesLateBloomer(t *testing.T) {
	clock := vclock.NewVirtual()
	// Incumbent: constant 1.1ms -> metric ~9.09e11.
	incumbent := &valueCase{id: 0, value: 9.09e11, clock: clock, cost: 1100 * time.Microsecond}
	// Late bloomer: steady 1.0ms -> metric 1e12 (better), but ramps over
	// 60 iterations and gets truncated by the bound.
	bloomer := &bloomerCase{id: 1, clock: clock, steady: time.Millisecond, rampLen: 20}

	budget := bench.DefaultBudget().WithFlags(true, true, false)
	budget.Invocations = 3
	budget.MaxIterations = 100
	tuner := NewTuner(clock, budget, OrderForward)

	// Plain run: the bloomer's truncated mean loses.
	plain, err := tuner.Run(context.Background(), []bench.Case{incumbent, bloomer})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Best.Key != "case-0" {
		t.Skipf("scenario did not truncate the bloomer (best=%s); model changed", plain.Best.Key)
	}

	// Second chance: the bloomer is revisited with a conservative budget
	// and promoted.
	clock2 := vclock.NewVirtual()
	incumbent2 := &valueCase{id: 0, value: 9.09e11, clock: clock2, cost: 1100 * time.Microsecond}
	bloomer2 := &bloomerCase{id: 1, clock: clock2, steady: time.Millisecond, rampLen: 20}
	tuner2 := NewTuner(clock2, budget, OrderForward)
	sc := DefaultSecondChance()
	sc.Budget.Invocations = 2
	res, err := tuner2.RunWithSecondChance(context.Background(), []bench.Case{incumbent2, bloomer2}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("second chance did not promote the late bloomer: best=%s mean=%.3g",
			res.Best.Key, res.Best.Mean)
	}
	if res.Best.Key != "bloomer" {
		t.Fatalf("best = %s", res.Best.Key)
	}
	if len(res.Revisited) == 0 {
		t.Fatal("revisited list empty")
	}
	if res.Elapsed <= plain.Elapsed {
		t.Fatal("second pass must add search time")
	}
}

func TestSecondChanceNoCandidates(t *testing.T) {
	clock := vclock.NewVirtual()
	cases := makeCases(clock, []float64{1, 5, 3})
	budget := quickBudget() // no bounds: nothing pruned, no candidates
	tuner := NewTuner(clock, budget, OrderForward)
	res, err := tuner.RunWithSecondChance(context.Background(), cases, DefaultSecondChance())
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted || len(res.Revisited) != 0 {
		t.Fatalf("nothing should be revisited: %+v", res.Revisited)
	}
	if res.Best.Key != "case-1" {
		t.Fatalf("best = %s", res.Best.Key)
	}
}

func TestSecondChanceMarginFilters(t *testing.T) {
	clock := vclock.NewVirtual()
	// Strong incumbent first, then far-below cases that get outer-pruned;
	// with a tight margin none qualify for a second chance.
	values := []float64{100, 10, 20}
	b := quickBudget()
	b.Invocations = 6
	b.UseOuterBound = true
	tuner := NewTuner(clock, b, OrderForward)
	sc := SecondChance{Margin: 0.05, Budget: quickBudget()}
	res, err := tuner.RunWithSecondChance(context.Background(), makeCases(clock, values), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Revisited) != 0 {
		t.Fatalf("margin filter failed: revisited %d", len(res.Revisited))
	}
	// With a huge margin they all qualify (but none promote).
	clock2 := vclock.NewVirtual()
	tuner2 := NewTuner(clock2, b, OrderForward)
	sc2 := SecondChance{Margin: 0.999, Budget: quickBudget()}
	res2, err := tuner2.RunWithSecondChance(context.Background(), makeCases(clock2, values), sc2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Revisited) != 2 {
		t.Fatalf("wide margin should revisit both pruned cases: %d", len(res2.Revisited))
	}
	if res2.Promoted {
		t.Fatal("inferior cases must not be promoted")
	}
}
