package core

import (
	"context"
	"math"
	"time"

	"rooftune/internal/bench"
)

// SecondChance implements the paper's §VII proposal for handling
// configurations "that achieve a high performance late into the
// iteration-count": after the main (aggressively pruning) search, any
// configuration whose truncated evidence still reached within Margin of
// the incumbent is re-evaluated with a conservative budget, and the best
// is updated if a late bloomer wins.
type SecondChance struct {
	// Margin is the relative closeness to the incumbent that qualifies a
	// pruned or inner-stopped configuration for re-evaluation (default
	// 0.25: anything within 25%).
	Margin float64
	// Budget is the conservative re-evaluation budget; zero value means
	// the Table I budget with only the confidence stop enabled (accurate
	// but far cheaper than Default thanks to stop condition 3).
	Budget bench.Budget
}

// DefaultSecondChance returns the recommended configuration: a
// confidence-stopped re-evaluation with steady-state warm-up exclusion,
// so a late bloomer's ramp neither biases its mean nor delays CI
// convergence.
func DefaultSecondChance() SecondChance {
	b := bench.DefaultBudget().WithFlags(true, false, false)
	b.UseSteadyState = true
	return SecondChance{Margin: 0.25, Budget: b}
}

// SecondChanceResult extends a search result with the re-evaluation pass.
type SecondChanceResult struct {
	*Result
	// Revisited holds the re-evaluated outcomes in pass order.
	Revisited []*bench.Outcome
	// Promoted reports whether the re-evaluation changed the winner.
	Promoted bool
}

// RunWithSecondChance performs the tuner's normal search, then gives
// near-miss pruned configurations a second, conservative evaluation.
// The engine cost of the second pass accrues on the same clock, so the
// combined Result.Elapsed remains the true total search time.
func (t *Tuner) RunWithSecondChance(ctx context.Context, cases []bench.Case, sc SecondChance) (*SecondChanceResult, error) {
	if sc.Margin <= 0 {
		sc.Margin = 0.25
	}
	if sc.Budget.Invocations == 0 {
		sc.Budget = DefaultSecondChance().Budget
	}
	first, err := t.Run(ctx, cases)
	if err != nil {
		return nil, err
	}
	out := &SecondChanceResult{Result: first}
	if first.Best == nil {
		return out, nil
	}

	byKey := make(map[string]bench.Case, len(cases))
	for _, c := range cases {
		byKey[c.Key()] = c
	}
	best := first.Best.Mean
	reEval := bench.NewEvaluator(t.Evaluator.Clock, sc.Budget)
	reEval.Sampler = t.Evaluator.Sampler
	for _, o := range first.All {
		if o == first.Best {
			continue
		}
		// Candidates: configurations whose evaluation was cut short by
		// stop condition 4 (either level) yet whose partial mean came
		// close to the incumbent — exactly the late-bloomer signature.
		if !o.Pruned && o.InnerStops == 0 {
			continue
		}
		if o.Mean < best*(1-sc.Margin) {
			continue
		}
		c, ok := byKey[o.Key]
		if !ok {
			continue
		}
		re, err := reEval.Evaluate(ctx, c, bench.None)
		if err != nil {
			return nil, err
		}
		out.Revisited = append(out.Revisited, re)
		if re.Mean > best && !math.IsInf(re.Mean, 0) {
			best = re.Mean
			out.Result.Best = re
			// The re-evaluation ran to completion, so even if the first
			// pass only salvaged a pruned partial mean, Best is now a
			// genuine measured winner.
			out.Result.BestPruned = false
			out.Promoted = true
		}
	}
	// Extend the total search time with the second pass's cost so
	// Elapsed remains the true combined cost.
	var extra time.Duration
	for _, o := range out.Revisited {
		extra += o.Elapsed
		out.Result.TotalSamples += o.TotalSamples
	}
	out.Result.Elapsed = first.Elapsed + extra
	return out, nil
}
