package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/vclock"
	"rooftune/internal/xrand"
)

// Order is the traversal order of the search space.
type Order int

// Traversal orders. The paper studies Forward (cheap configurations
// first) and Reverse ("R" in Tables VIII-XI); Random is the standard
// baseline for larger spaces (§IV-C).
const (
	OrderForward Order = iota
	OrderReverse
	OrderRandom
)

// String names the order.
func (o Order) String() string {
	switch o {
	case OrderReverse:
		return "reverse"
	case OrderRandom:
		return "random"
	default:
		return "forward"
	}
}

// Result is the outcome of one search over a space.
type Result struct {
	// Best is the winning configuration's outcome (highest mean metric
	// among non-pruned evaluations).
	Best *bench.Outcome
	// All holds every configuration's outcome in evaluation order.
	All []*bench.Outcome
	// Elapsed is the total search time on the engine's clock — virtual
	// seconds for simulated engines, the paper's "Time" column.
	Elapsed time.Duration
	// PrunedCount is how many configurations stop condition 4 abandoned.
	PrunedCount int
	// TotalSamples counts all measured iterations in the search.
	TotalSamples int
}

// BestValue returns the winning mean in metric base units, or 0 if the
// search found nothing.
func (r *Result) BestValue() float64 {
	if r.Best == nil {
		return 0
	}
	return r.Best.Mean
}

// Tuner performs exhaustive search over a benchmark case list with the
// adaptive evaluation process. Simple search techniques are the right
// tool at this cardinality (§IV-C): the spaces are small and sample cost
// dominates, so the win comes from cutting samples per configuration,
// not from clever traversal.
type Tuner struct {
	Evaluator *bench.Evaluator
	Order     Order
	// Seed drives the random order shuffle (only used for OrderRandom).
	Seed uint64
	// OnOutcome, when non-nil, observes every evaluated configuration —
	// used by experiment drivers to stream per-configuration series
	// (Fig. 6) without retaining engine internals.
	OnOutcome func(*bench.Outcome)
}

// NewTuner builds a tuner with the given evaluation budget on the clock.
func NewTuner(clock vclock.Clock, budget bench.Budget, order Order) *Tuner {
	return &Tuner{
		Evaluator: bench.NewEvaluator(clock, budget),
		Order:     order,
		Seed:      1,
	}
}

// Run evaluates every case in the tuner's order, carrying the incumbent
// best value into each evaluation so stop condition 4 can prune against
// it. It returns an error only on engine failure or context cancellation;
// statistical pruning is not an error. A canceled ctx aborts the search
// between kernel executions and returns ctx.Err().
func (t *Tuner) Run(ctx context.Context, cases []bench.Case) (*Result, error) {
	if len(cases) == 0 {
		return nil, fmt.Errorf("core: empty search space")
	}
	ordered := t.ordered(cases)
	res := &Result{}
	watch := vclock.NewStopwatch(t.Evaluator.Clock)
	best := bench.NoBest
	for _, c := range ordered {
		out, err := t.Evaluator.Evaluate(ctx, c, best)
		if err != nil {
			return nil, err
		}
		res.All = append(res.All, out)
		res.TotalSamples += out.TotalSamples
		if out.Pruned {
			res.PrunedCount++
		}
		if out.Better(best) {
			best = out.Mean
			res.Best = out
		}
		if t.OnOutcome != nil {
			t.OnOutcome(out)
		}
	}
	if res.Best == nil && len(res.All) > 0 {
		// Everything was pruned (can only happen with a pre-seeded bound);
		// fall back to the highest partial mean so callers get an answer.
		for _, out := range res.All {
			if res.Best == nil || out.Mean > res.Best.Mean {
				res.Best = out
			}
		}
	}
	res.Elapsed = watch.Elapsed()
	return res, nil
}

func (t *Tuner) ordered(cases []bench.Case) []bench.Case {
	out := make([]bench.Case, len(cases))
	copy(out, cases)
	switch t.Order {
	case OrderReverse:
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	case OrderRandom:
		rng := xrand.New(t.Seed)
		perm := rng.Perm(len(out))
		shuffled := make([]bench.Case, len(out))
		for i, p := range perm {
			shuffled[i] = out[p]
		}
		out = shuffled
	}
	return out
}

// RelativeError returns |a-b| / |b|, the paper's error measure when
// comparing an optimised search's result against the default's (the
// abstract claims < 2%). Returns +Inf for b == 0 with a != b.
func RelativeError(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / math.Abs(b)
}
