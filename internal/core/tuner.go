package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/vclock"
	"rooftune/internal/xrand"
)

// Order is the traversal order of the search space.
type Order int

// Traversal orders. The paper studies Forward (cheap configurations
// first) and Reverse ("R" in Tables VIII-XI); Random is the standard
// baseline for larger spaces (§IV-C).
const (
	OrderForward Order = iota
	OrderReverse
	OrderRandom
)

// String names the order.
func (o Order) String() string {
	switch o {
	case OrderReverse:
		return "reverse"
	case OrderRandom:
		return "random"
	default:
		return "forward"
	}
}

// Result is the outcome of one search over a space.
type Result struct {
	// Best is the winning configuration's outcome (highest mean metric
	// among non-pruned evaluations). When BestPruned is set, no
	// configuration survived pruning and Best is a salvage value instead —
	// see BestPruned.
	Best *bench.Outcome
	// BestPruned reports that every configuration was outer-pruned (only
	// possible when the incumbent bound was pre-seeded, e.g. by shard
	// workers racing ahead or by a caller-supplied bound) and Best holds
	// the highest *truncated partial* mean rather than a measured winner.
	// Callers reporting Best as a measurement should surface this.
	BestPruned bool
	// All holds every configuration's outcome in traversal order — the
	// order the tuner's Order dictates, independent of how many shards
	// evaluated it.
	All []*bench.Outcome
	// Elapsed is the total search time on the engine's clock — virtual
	// seconds for simulated engines, the paper's "Time" column. Sharded
	// searches advance the same clock from every worker, so Elapsed
	// remains the summed virtual cost of all evaluations, not the
	// wall-clock of the concurrent schedule.
	Elapsed time.Duration
	// PrunedCount is how many configurations stop condition 4 abandoned.
	PrunedCount int
	// TotalSamples counts all measured iterations in the search.
	TotalSamples int
}

// BestValue returns the winning mean in metric base units, or 0 if the
// search found nothing.
func (r *Result) BestValue() float64 {
	if r.Best == nil {
		return 0
	}
	return r.Best.Mean
}

// Tuner performs exhaustive search over a benchmark case list with the
// adaptive evaluation process. Simple search techniques are the right
// tool at this cardinality (§IV-C): the spaces are small and sample cost
// dominates, so the win comes from cutting samples per configuration,
// not from clever traversal.
type Tuner struct {
	Evaluator *bench.Evaluator
	Order     Order
	// Seed drives the random order shuffle (only used for OrderRandom).
	Seed uint64
	// OnOutcome, when non-nil, observes every evaluated configuration —
	// used by experiment drivers to stream per-configuration series
	// (Fig. 6) without retaining engine internals. A serial tuner calls it
	// in traversal order; a sharded tuner (Shards > 1) calls it from the
	// shard workers in completion order, so it must then be safe for
	// concurrent use.
	OnOutcome func(*bench.Outcome)
	// Shards is the number of workers evaluating cases concurrently
	// within this one search (0 or 1 = the strictly serial loop). Workers
	// claim cases from the ordered list in traversal order and share a
	// monotone atomic incumbent bound, so pruning is always conservative
	// and the winner is shard-count-invariant; see Run. Sharding is meant
	// for simulated engines — concurrent wall-clock measurement on a
	// native engine would contend on the host.
	Shards int
	// Incumbent pre-seeds the incumbent bound (<= 0 means none): a caller
	// that already knows a reference performance — a previous sweep's
	// winner over the same metric, say — makes stop condition 4 prune
	// from the very first case. With a pre-seeded bound every
	// configuration can end up outer-pruned; Result.BestPruned reports
	// when the returned Best is such a salvage value.
	Incumbent float64
	// Shared, when non-nil, is an externally owned monotone incumbent
	// the search both reads and feeds: each evaluation prunes against
	// the higher of the local incumbent and the shared bound at that
	// moment, and every non-pruned mean is offered back. It exists for
	// distributed execution — a coordinator pushes bounds into a
	// worker's running search mid-sweep — and inherits the CAS-max
	// protocol's guarantees: offers only ever raise the bound, so
	// replayed, reordered or duplicate pushes are harmless, and a bound
	// is only ever a measured mean of the same metric, so the winner is
	// unchanged — only PrunedCount/TotalSamples can move (toward more
	// pruning). A sharded run (Shards > 1) uses Shared directly as its
	// workers' incumbent.
	Shared *bench.AtomicIncumbent
}

// NewTuner builds a tuner with the given evaluation budget on the clock.
func NewTuner(clock vclock.Clock, budget bench.Budget, order Order) *Tuner {
	return &Tuner{
		Evaluator: bench.NewEvaluator(clock, budget),
		Order:     order,
		Seed:      1,
	}
}

// Run evaluates every case in the tuner's order, carrying the incumbent
// best value into each evaluation so stop condition 4 can prune against
// it. It returns an error only on engine failure or context cancellation;
// statistical pruning is not an error. A canceled ctx aborts the search
// between kernel executions and returns ctx.Err().
//
// With Shards > 1 the ordered case list is evaluated by that many
// concurrent workers under an order-insensitive incumbent protocol:
//
//   - Workers claim cases from the ordered list one at a time, in
//     traversal order (a shared queue, not static blocks), and share one
//     monotone bench.AtomicIncumbent. Each worker snapshots the bound
//     immediately before claiming its next case and evaluates against the
//     snapshot. Claims are handed out in traversal order, so every value
//     in the snapshot came from a case at an earlier traversal index —
//     the sharded search never knows more than the serial search did at
//     the same case, and a case is pruned only against a mean some
//     earlier-in-traversal configuration truly achieved. Pruning is
//     therefore conservative: typically PrunedCount stays or drops
//     relative to serial (workers race ahead of incumbent discovery) and
//     TotalSamples stays or grows. That direction is a consequence of
//     the subset property, not a hard theorem: outer pruning is itself a
//     statistical decision, so a case serial pruned early can, under
//     sharding, run to completion and offer a slightly different mean.
//   - The winner is selected after all workers join, by replaying the
//     serial selection scan over Result.All in traversal order: first
//     non-pruned outcome with the strictly highest mean wins, so ties
//     break by traversal-order index, never by completion order. Given
//     the same per-case outcomes, winner selection is provably schedule-
//     independent; per-case outcomes themselves match serial whenever the
//     outer bound never misprunes, which holds on the calibrated
//     simulated engines — there the winning configuration and its value
//     are shard-count-invariant, asserted for every seed/order/space in
//     the determinism suite (the sweep package's shard-invariance
//     tests).
//
// Result.All is reassembled in traversal order regardless of completion
// order. Per-outcome Elapsed under sharding spans the evaluation's
// concurrent window on the shared clock; Result.Elapsed stays the exact
// summed virtual cost.
func (t *Tuner) Run(ctx context.Context, cases []bench.Case) (*Result, error) {
	if len(cases) == 0 {
		return nil, fmt.Errorf("core: empty search space")
	}
	ordered := t.ordered(cases)
	watch := vclock.NewStopwatch(t.Evaluator.Clock)
	var (
		outs []*bench.Outcome
		err  error
	)
	if t.Shards > 1 && len(ordered) > 1 {
		outs, err = t.runSharded(ctx, ordered)
	} else {
		outs, err = t.runSerial(ctx, ordered)
	}
	if err != nil {
		return nil, err
	}
	res := assembleResult(outs)
	res.Elapsed = watch.Elapsed()
	return res, nil
}

// runSerial is the strictly serial evaluation loop: the incumbent is a
// plain scalar carried case to case, bit-identical to the original
// implementation (the compatibility shims ride on this path).
//
//rooflint:hotpath
func (t *Tuner) runSerial(ctx context.Context, ordered []bench.Case) ([]*bench.Outcome, error) {
	outs := make([]*bench.Outcome, 0, len(ordered))
	best := t.seedBound()
	for _, c := range ordered {
		bound := best
		if t.Shared != nil {
			// An externally pushed bound is a measured mean of the same
			// metric, so pruning against it is as sound as pruning
			// against a local win — see Shared.
			if sb := t.Shared.Bound(); sb > bound {
				bound = sb
			}
		}
		out, err := t.Evaluator.Evaluate(ctx, c, bench.Fixed(bound))
		if err != nil {
			return nil, err
		}
		outs = append(outs, out)
		if out.Better(best) {
			best = out.Mean
		}
		if t.Shared != nil && !out.Pruned {
			t.Shared.Offer(out.Mean)
		}
		if t.OnOutcome != nil {
			t.OnOutcome(out)
		}
	}
	return outs, nil
}

// runSharded evaluates the ordered cases with t.Shards concurrent workers
// sharing a monotone atomic incumbent. See Run for the protocol and its
// guarantees. The first error in traversal order wins; on cancellation
// every worker is joined before the ctx error is reported.
func (t *Tuner) runSharded(ctx context.Context, ordered []bench.Case) ([]*bench.Outcome, error) {
	shards := t.Shards
	if shards > len(ordered) {
		shards = len(ordered)
	}
	var (
		outs   = make([]*bench.Outcome, len(ordered))
		errs   = make([]error, len(ordered))
		inc    = t.Shared
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	if inc == nil {
		inc = bench.NewAtomicIncumbent()
	}
	inc.Offer(t.seedBound())
	for w := 0; w < shards; w++ {
		wg.Add(1)
		//rooflint:allow nogoroutine -- shard workers under the documented order-insensitive incumbent protocol; joined by wg.Wait before Run returns
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil || failed.Load() {
					return
				}
				// Snapshot the bound BEFORE claiming: everything in it was
				// offered by a case claimed earlier, i.e. at a lower
				// traversal index — the invariant that keeps sharded
				// pruning a subset of serial pruning knowledge.
				bound := bench.Fixed(inc.Bound())
				i := int(next.Add(1)) - 1
				if i >= len(ordered) {
					return
				}
				out, err := t.Evaluator.Evaluate(ctx, ordered[i], bound)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				outs[i] = out
				if !out.Pruned {
					inc.Offer(out.Mean)
				}
				if t.OnOutcome != nil {
					t.OnOutcome(out)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// A nil slot means a worker stopped claiming before reaching that
	// case, which (absent an error above) only cancellation causes. A
	// cancellation that lands after the last case finished is not a
	// failure: the batch ran to completion.
	for _, out := range outs {
		if out == nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("core: sharded run lost an outcome without an error")
		}
	}
	return outs, nil
}

// assembleResult replays the serial winner-selection scan over the
// outcomes in traversal order. Keeping selection in one place is what
// makes the sharded search's winner provably tie-break like the serial
// one: the first outcome with the strictly highest non-pruned mean wins,
// whatever order evaluations completed in.
//
//rooflint:hotpath
func assembleResult(outs []*bench.Outcome) *Result {
	res := &Result{All: outs}
	best := bench.NoBest
	for _, out := range outs {
		res.TotalSamples += out.TotalSamples
		if out.Pruned {
			res.PrunedCount++
		}
		if out.Better(best) {
			best = out.Mean
			res.Best = out
		}
	}
	if res.Best == nil && len(res.All) > 0 {
		// Everything was outer-pruned (requires a pre-seeded bound; shard
		// workers pre-seed it routinely). Fall back to the highest partial
		// mean so callers get an answer, but flag it: a truncated partial
		// mean is a salvage value, not a measured winner.
		for _, out := range res.All {
			if res.Best == nil || out.Mean > res.Best.Mean {
				res.Best = out
			}
		}
		res.BestPruned = true
	}
	return res
}

// seedBound resolves the pre-seeded incumbent: NoBest unless the caller
// supplied a positive reference value.
func (t *Tuner) seedBound() float64 {
	if t.Incumbent > 0 {
		return t.Incumbent
	}
	return bench.NoBest
}

func (t *Tuner) ordered(cases []bench.Case) []bench.Case {
	out := make([]bench.Case, len(cases))
	copy(out, cases)
	switch t.Order {
	case OrderReverse:
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	case OrderRandom:
		rng := xrand.New(t.Seed)
		perm := rng.Perm(len(out))
		shuffled := make([]bench.Case, len(out))
		for i, p := range perm {
			shuffled[i] = out[p]
		}
		out = shuffled
	}
	return out
}

// RelativeError returns |a-b| / |b|, the paper's error measure when
// comparing an optimised search's result against the default's (the
// abstract claims < 2%). Returns +Inf for b == 0 with a != b.
func RelativeError(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / math.Abs(b)
}
