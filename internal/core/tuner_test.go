package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/vclock"
)

// valueCase is a fake benchmark with a fixed metric value.
type valueCase struct {
	id    int
	value float64 // metric in base units
	clock *vclock.Virtual
	cost  time.Duration
}

func (v *valueCase) Key() string          { return fmt.Sprintf("case-%d", v.id) }
func (v *valueCase) Config() bench.Config { return nil }
func (v *valueCase) Describe() string     { return v.Key() }
func (v *valueCase) Metric() bench.Metric {
	return bench.MetricFlops
}

func (v *valueCase) NewInvocation(inv int) (bench.Instance, error) {
	return &valueInstance{c: v}, nil
}

type valueInstance struct{ c *valueCase }

func (i *valueInstance) Warmup() {}
func (i *valueInstance) Step() time.Duration {
	i.c.clock.Advance(i.c.cost)
	return i.c.cost
}
func (i *valueInstance) Work() float64 {
	return i.c.value * i.c.cost.Seconds()
}
func (i *valueInstance) Close() {}

func makeCases(clock *vclock.Virtual, values []float64) []bench.Case {
	cases := make([]bench.Case, len(values))
	for i, v := range values {
		cases[i] = &valueCase{id: i, value: v, clock: clock, cost: time.Millisecond}
	}
	return cases
}

func quickBudget() bench.Budget {
	return bench.Budget{Invocations: 2, MaxIterations: 4,
		MaxTime: time.Hour, ErrorInverse: 100, CILevel: 0.99}
}

func TestTunerFindsMaximum(t *testing.T) {
	clock := vclock.NewVirtual()
	values := []float64{3, 9, 1, 7, 9.5, 2}
	tuner := NewTuner(clock, quickBudget(), OrderForward)
	res, err := tuner.Run(context.Background(), makeCases(clock, values))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Key != "case-4" {
		t.Fatalf("best = %s", res.Best.Key)
	}
	if math.Abs(res.BestValue()-9.5) > 1e-9 {
		t.Fatalf("best value = %v", res.BestValue())
	}
	if len(res.All) != 6 {
		t.Fatalf("evaluated %d of 6", len(res.All))
	}
}

func TestTunerOrderings(t *testing.T) {
	clock := vclock.NewVirtual()
	values := []float64{1, 2, 3, 4}
	var visited []string
	tuner := NewTuner(clock, quickBudget(), OrderReverse)
	tuner.OnOutcome = func(o *bench.Outcome) { visited = append(visited, o.Key) }
	if _, err := tuner.Run(context.Background(), makeCases(clock, values)); err != nil {
		t.Fatal(err)
	}
	if visited[0] != "case-3" || visited[3] != "case-0" {
		t.Fatalf("reverse order visited %v", visited)
	}

	visited = nil
	tuner = NewTuner(clock, quickBudget(), OrderRandom)
	tuner.Seed = 3
	tuner.OnOutcome = func(o *bench.Outcome) { visited = append(visited, o.Key) }
	if _, err := tuner.Run(context.Background(), makeCases(clock, values)); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, k := range visited {
		seen[k] = true
	}
	if len(seen) != 4 {
		t.Fatalf("random order must visit each case once: %v", visited)
	}

	// Random order is deterministic per shuffle seed.
	var again []string
	tuner2 := NewTuner(clock, quickBudget(), OrderRandom)
	tuner2.Seed = 3
	tuner2.OnOutcome = func(o *bench.Outcome) { again = append(again, o.Key) }
	if _, err := tuner2.Run(context.Background(), makeCases(clock, values)); err != nil {
		t.Fatal(err)
	}
	for i := range visited {
		if visited[i] != again[i] {
			t.Fatal("random order not reproducible for the same seed")
		}
	}
}

func TestTunerOrderIndependentOptimum(t *testing.T) {
	values := []float64{5, 8, 2, 10, 7, 1, 9}
	for _, order := range []Order{OrderForward, OrderReverse, OrderRandom} {
		clock := vclock.NewVirtual()
		tuner := NewTuner(clock, quickBudget(), order)
		res, err := tuner.Run(context.Background(), makeCases(clock, values))
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Key != "case-3" {
			t.Fatalf("%v order found %s", order, res.Best.Key)
		}
	}
}

func TestTunerPruningWithOuterBound(t *testing.T) {
	clock := vclock.NewVirtual()
	// Strong first case; the rest are hopeless and must be outer-pruned.
	values := []float64{100, 10, 20, 30}
	b := quickBudget()
	b.Invocations = 6
	b.UseOuterBound = true
	tuner := NewTuner(clock, b, OrderForward)
	res, err := tuner.Run(context.Background(), makeCases(clock, values))
	if err != nil {
		t.Fatal(err)
	}
	if res.PrunedCount != 3 {
		t.Fatalf("pruned %d of 3 hopeless cases", res.PrunedCount)
	}
	if res.Best.Key != "case-0" {
		t.Fatalf("best = %s", res.Best.Key)
	}
	// Pruned cases must have stopped after exactly 2 invocations.
	for _, o := range res.All[1:] {
		if len(o.Invocations) != 2 {
			t.Fatalf("pruned case ran %d invocations", len(o.Invocations))
		}
	}
}

func TestTunerSamplesAndElapsed(t *testing.T) {
	clock := vclock.NewVirtual()
	values := []float64{1, 2}
	tuner := NewTuner(clock, quickBudget(), OrderForward)
	res, err := tuner.Run(context.Background(), makeCases(clock, values))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSamples != 2*2*4 {
		t.Fatalf("TotalSamples = %d", res.TotalSamples)
	}
	if res.Elapsed != clock.Now() {
		t.Fatalf("Elapsed %v != clock %v", res.Elapsed, clock.Now())
	}
}

// runOrdered is a helper running one tuner over fresh cases.
func runOrdered(t *testing.T, b bench.Budget, order Order, shards int, incumbent float64, values []float64) *Result {
	t.Helper()
	clock := vclock.NewVirtual()
	tuner := NewTuner(clock, b, order)
	tuner.Shards = shards
	tuner.Incumbent = incumbent
	res, err := tuner.Run(context.Background(), makeCases(clock, values))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTunerShardedMatchesSerial(t *testing.T) {
	values := []float64{5, 8, 2, 10, 7, 1, 9, 9.5, 3, 6, 4, 8.5}
	budgets := map[string]bench.Budget{
		"plain": quickBudget(),
		"outer": func() bench.Budget {
			b := quickBudget()
			b.Invocations = 4
			b.UseOuterBound = true
			return b
		}(),
	}
	for name, b := range budgets {
		for _, order := range []Order{OrderForward, OrderReverse, OrderRandom} {
			serial := runOrdered(t, b, order, 1, 0, values)
			for _, shards := range []int{2, 3, 4, 16} {
				res := runOrdered(t, b, order, shards, 0, values)
				if res.Best.Key != serial.Best.Key || res.Best.Mean != serial.Best.Mean {
					t.Fatalf("%s/%v/shards=%d: winner %s (%v), serial %s (%v)",
						name, order, shards, res.Best.Key, res.Best.Mean,
						serial.Best.Key, serial.Best.Mean)
				}
				// Result.All must be reassembled in traversal order.
				for i := range res.All {
					if res.All[i].Key != serial.All[i].Key {
						t.Fatalf("%s/%v/shards=%d: All[%d] = %s, serial %s",
							name, order, shards, i, res.All[i].Key, serial.All[i].Key)
					}
				}
				// Conservativeness: shard workers race ahead of incumbent
				// discovery, so they can only prune less than serial, never
				// more — and so only ever measure more, never less.
				if res.PrunedCount > serial.PrunedCount {
					t.Fatalf("%s/%v/shards=%d: pruned %d > serial %d",
						name, order, shards, res.PrunedCount, serial.PrunedCount)
				}
				if res.TotalSamples < serial.TotalSamples {
					t.Fatalf("%s/%v/shards=%d: samples %d < serial %d",
						name, order, shards, res.TotalSamples, serial.TotalSamples)
				}
			}
		}
	}
}

func TestTunerShardedTieBreaksByTraversalIndex(t *testing.T) {
	// Two exactly tied maxima: the winner must be the one earlier in
	// traversal order — case-1 forward, case-2 reverse — for every shard
	// count, never a completion-order accident.
	values := []float64{7, 9, 9, 3}
	want := map[Order]string{OrderForward: "case-1", OrderReverse: "case-2"}
	for order, key := range want {
		for _, shards := range []int{1, 2, 4} {
			res := runOrdered(t, quickBudget(), order, shards, 0, values)
			if res.Best.Key != key {
				t.Fatalf("%v/shards=%d: winner %s, want %s", order, shards, res.Best.Key, key)
			}
		}
	}
}

func TestTunerPreSeededIncumbent(t *testing.T) {
	b := quickBudget()
	b.Invocations = 4
	b.UseOuterBound = true
	values := []float64{10, 100, 20, 30}
	for _, shards := range []int{1, 4} {
		// A seed below the best: the winner survives, hopeless cases are
		// prunable from the very first evaluation, and the result is a
		// real measurement.
		res := runOrdered(t, b, OrderForward, shards, 50, values)
		if res.Best.Key != "case-1" || res.BestPruned {
			t.Fatalf("shards=%d: best %s, BestPruned %v", shards, res.Best.Key, res.BestPruned)
		}
		// A seed above everything: every configuration is outer-pruned and
		// Best degrades to a salvage value, which must be flagged.
		res = runOrdered(t, b, OrderForward, shards, 1000, values)
		if res.PrunedCount != len(values) {
			t.Fatalf("shards=%d: pruned %d of %d", shards, res.PrunedCount, len(values))
		}
		if res.Best == nil || !res.BestPruned {
			t.Fatalf("shards=%d: all-pruned salvage not flagged: best %v, BestPruned %v",
				shards, res.Best, res.BestPruned)
		}
		if !res.Best.Pruned {
			t.Fatalf("shards=%d: salvage Best must itself be a pruned outcome", shards)
		}
	}
}

func TestTunerShardedOnOutcomeAndErrors(t *testing.T) {
	// OnOutcome fires once per case from the shard workers; engine
	// failures propagate out of the sharded run like the serial one.
	clock := vclock.NewVirtual()
	tuner := NewTuner(clock, quickBudget(), OrderForward)
	tuner.Shards = 4
	var (
		mu   sync.Mutex
		seen []string
	)
	tuner.OnOutcome = func(o *bench.Outcome) {
		mu.Lock()
		defer mu.Unlock()
		seen = append(seen, o.Key)
	}
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := tuner.Run(context.Background(), makeCases(clock, values)); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(values) {
		t.Fatalf("OnOutcome fired %d times for %d cases", len(seen), len(values))
	}

	failing := NewTuner(vclock.NewVirtual(), quickBudget(), OrderForward)
	failing.Shards = 4
	if _, err := failing.Run(context.Background(), []bench.Case{&errCase{}, &errCase{}}); err == nil {
		t.Fatal("sharded run must propagate engine failure")
	}
}

// errCase always fails to start an invocation.
type errCase struct{}

func (errCase) Key() string          { return "err" }
func (errCase) Config() bench.Config { return nil }
func (errCase) Describe() string     { return "err" }
func (errCase) Metric() bench.Metric { return bench.MetricFlops }
func (errCase) NewInvocation(int) (bench.Instance, error) {
	return nil, fmt.Errorf("engine failure")
}

func TestTunerShardedCancellation(t *testing.T) {
	clock := vclock.NewVirtual()
	tuner := NewTuner(clock, quickBudget(), OrderForward)
	tuner.Shards = 2
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from the first completed outcome: the remaining claims are
	// skipped and the run reports the cancellation, joined cleanly.
	tuner.OnOutcome = func(*bench.Outcome) { cancel() }
	values := make([]float64, 64)
	for i := range values {
		values[i] = float64(i + 1)
	}
	if _, err := tuner.Run(ctx, makeCases(clock, values)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	cancel()
}

func TestTunerEmptySpace(t *testing.T) {
	tuner := NewTuner(vclock.NewVirtual(), quickBudget(), OrderForward)
	if _, err := tuner.Run(context.Background(), nil); err == nil {
		t.Fatal("empty space must error")
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(102, 100) != 0.02 {
		t.Fatalf("RelativeError = %v", RelativeError(102, 100))
	}
	if RelativeError(0, 0) != 0 {
		t.Fatal("0/0 must be 0")
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Fatal("x/0 must be +Inf")
	}
}

func TestOrderString(t *testing.T) {
	if OrderForward.String() != "forward" || OrderReverse.String() != "reverse" || OrderRandom.String() != "random" {
		t.Fatal("order names")
	}
}
