package core

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/vclock"
)

// valueCase is a fake benchmark with a fixed metric value.
type valueCase struct {
	id    int
	value float64 // metric in base units
	clock *vclock.Virtual
	cost  time.Duration
}

func (v *valueCase) Key() string          { return fmt.Sprintf("case-%d", v.id) }
func (v *valueCase) Config() bench.Config { return nil }
func (v *valueCase) Describe() string     { return v.Key() }
func (v *valueCase) Metric() bench.Metric {
	return bench.MetricFlops
}

func (v *valueCase) NewInvocation(inv int) (bench.Instance, error) {
	return &valueInstance{c: v}, nil
}

type valueInstance struct{ c *valueCase }

func (i *valueInstance) Warmup() {}
func (i *valueInstance) Step() time.Duration {
	i.c.clock.Advance(i.c.cost)
	return i.c.cost
}
func (i *valueInstance) Work() float64 {
	return i.c.value * i.c.cost.Seconds()
}
func (i *valueInstance) Close() {}

func makeCases(clock *vclock.Virtual, values []float64) []bench.Case {
	cases := make([]bench.Case, len(values))
	for i, v := range values {
		cases[i] = &valueCase{id: i, value: v, clock: clock, cost: time.Millisecond}
	}
	return cases
}

func quickBudget() bench.Budget {
	return bench.Budget{Invocations: 2, MaxIterations: 4,
		MaxTime: time.Hour, ErrorInverse: 100, CILevel: 0.99}
}

func TestTunerFindsMaximum(t *testing.T) {
	clock := vclock.NewVirtual()
	values := []float64{3, 9, 1, 7, 9.5, 2}
	tuner := NewTuner(clock, quickBudget(), OrderForward)
	res, err := tuner.Run(context.Background(), makeCases(clock, values))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Key != "case-4" {
		t.Fatalf("best = %s", res.Best.Key)
	}
	if math.Abs(res.BestValue()-9.5) > 1e-9 {
		t.Fatalf("best value = %v", res.BestValue())
	}
	if len(res.All) != 6 {
		t.Fatalf("evaluated %d of 6", len(res.All))
	}
}

func TestTunerOrderings(t *testing.T) {
	clock := vclock.NewVirtual()
	values := []float64{1, 2, 3, 4}
	var visited []string
	tuner := NewTuner(clock, quickBudget(), OrderReverse)
	tuner.OnOutcome = func(o *bench.Outcome) { visited = append(visited, o.Key) }
	if _, err := tuner.Run(context.Background(), makeCases(clock, values)); err != nil {
		t.Fatal(err)
	}
	if visited[0] != "case-3" || visited[3] != "case-0" {
		t.Fatalf("reverse order visited %v", visited)
	}

	visited = nil
	tuner = NewTuner(clock, quickBudget(), OrderRandom)
	tuner.Seed = 3
	tuner.OnOutcome = func(o *bench.Outcome) { visited = append(visited, o.Key) }
	if _, err := tuner.Run(context.Background(), makeCases(clock, values)); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, k := range visited {
		seen[k] = true
	}
	if len(seen) != 4 {
		t.Fatalf("random order must visit each case once: %v", visited)
	}

	// Random order is deterministic per shuffle seed.
	var again []string
	tuner2 := NewTuner(clock, quickBudget(), OrderRandom)
	tuner2.Seed = 3
	tuner2.OnOutcome = func(o *bench.Outcome) { again = append(again, o.Key) }
	if _, err := tuner2.Run(context.Background(), makeCases(clock, values)); err != nil {
		t.Fatal(err)
	}
	for i := range visited {
		if visited[i] != again[i] {
			t.Fatal("random order not reproducible for the same seed")
		}
	}
}

func TestTunerOrderIndependentOptimum(t *testing.T) {
	values := []float64{5, 8, 2, 10, 7, 1, 9}
	for _, order := range []Order{OrderForward, OrderReverse, OrderRandom} {
		clock := vclock.NewVirtual()
		tuner := NewTuner(clock, quickBudget(), order)
		res, err := tuner.Run(context.Background(), makeCases(clock, values))
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Key != "case-3" {
			t.Fatalf("%v order found %s", order, res.Best.Key)
		}
	}
}

func TestTunerPruningWithOuterBound(t *testing.T) {
	clock := vclock.NewVirtual()
	// Strong first case; the rest are hopeless and must be outer-pruned.
	values := []float64{100, 10, 20, 30}
	b := quickBudget()
	b.Invocations = 6
	b.UseOuterBound = true
	tuner := NewTuner(clock, b, OrderForward)
	res, err := tuner.Run(context.Background(), makeCases(clock, values))
	if err != nil {
		t.Fatal(err)
	}
	if res.PrunedCount != 3 {
		t.Fatalf("pruned %d of 3 hopeless cases", res.PrunedCount)
	}
	if res.Best.Key != "case-0" {
		t.Fatalf("best = %s", res.Best.Key)
	}
	// Pruned cases must have stopped after exactly 2 invocations.
	for _, o := range res.All[1:] {
		if len(o.Invocations) != 2 {
			t.Fatalf("pruned case ran %d invocations", len(o.Invocations))
		}
	}
}

func TestTunerSamplesAndElapsed(t *testing.T) {
	clock := vclock.NewVirtual()
	values := []float64{1, 2}
	tuner := NewTuner(clock, quickBudget(), OrderForward)
	res, err := tuner.Run(context.Background(), makeCases(clock, values))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSamples != 2*2*4 {
		t.Fatalf("TotalSamples = %d", res.TotalSamples)
	}
	if res.Elapsed != clock.Now() {
		t.Fatalf("Elapsed %v != clock %v", res.Elapsed, clock.Now())
	}
}

func TestTunerEmptySpace(t *testing.T) {
	tuner := NewTuner(vclock.NewVirtual(), quickBudget(), OrderForward)
	if _, err := tuner.Run(context.Background(), nil); err == nil {
		t.Fatal("empty space must error")
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(102, 100) != 0.02 {
		t.Fatalf("RelativeError = %v", RelativeError(102, 100))
	}
	if RelativeError(0, 0) != 0 {
		t.Fatal("0/0 must be 0")
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Fatal("x/0 must be +Inf")
	}
}

func TestOrderString(t *testing.T) {
	if OrderForward.String() != "forward" || OrderReverse.String() != "reverse" || OrderRandom.String() != "random" {
		t.Fatal("order names")
	}
}
