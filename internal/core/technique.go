package core

import (
	"time"

	"rooftune/internal/bench"
)

// Technique is one row of the optimisation-comparison tables
// (Tables VIII-XI): a named combination of evaluation budget and search
// order.
type Technique struct {
	Name   string
	Budget bench.Budget
	Order  Order
}

// HandTunedIters holds the per-system hand-tuned iteration counts of
// Table VII: Time-matched (tuned until total runtime matches the most
// optimised technique) and Accuracy-matched (tuned upward until the
// result matches the optimised techniques' accuracy).
type HandTunedIters struct {
	Time, Accuracy int
}

// HandTuned reproduces Table VII.
var HandTuned = map[string]HandTunedIters{
	"2650v4":    {Time: 7, Accuracy: 20},
	"2695v4":    {Time: 15, Accuracy: 180},
	"Gold 6132": {Time: 18, Accuracy: 180},
	"Gold 6148": {Time: 30, Accuracy: 150},
}

// TechniqueNames lists the Tables VIII-XI rows in paper order.
var TechniqueNames = []string{
	"Default",
	"Hand-tuned Time",
	"Hand-tuned Accuracy",
	"Single",
	"Confidence",
	"C+Inner",
	"C+Inner+R",
	"C+I+Outer",
	"C+I+O+R",
}

// Techniques builds the full technique matrix for a system. minCount is
// the stop-condition-4 lower bound (2 by default; the paper re-runs the
// 2695v4 with 100). Hand-tuned techniques use Table VII's iteration
// counts for the system; unknown systems default to 10/100.
func Techniques(system string, minCount int) []Technique {
	ht, ok := HandTuned[system]
	if !ok {
		ht = HandTunedIters{Time: 10, Accuracy: 100}
	}
	def := bench.DefaultBudget()

	handTimeB := def
	handTimeB.Invocations = 1
	handTimeB.MaxIterations = ht.Time

	handAccB := def
	handAccB.Invocations = 1
	handAccB.MaxIterations = ht.Accuracy

	singleB := def
	singleB.Invocations = 1
	singleB.MaxIterations = 1
	singleB.MaxTime = time.Hour // a single iteration never times out

	mk := func(confidence, inner, outer bool) bench.Budget {
		b := def.WithFlags(confidence, inner, outer)
		b.MinCount = minCount
		return b
	}

	return []Technique{
		{Name: "Default", Budget: def, Order: OrderForward},
		{Name: "Hand-tuned Time", Budget: handTimeB, Order: OrderForward},
		{Name: "Hand-tuned Accuracy", Budget: handAccB, Order: OrderForward},
		{Name: "Single", Budget: singleB, Order: OrderForward},
		{Name: "Confidence", Budget: mk(true, false, false), Order: OrderForward},
		{Name: "C+Inner", Budget: mk(true, true, false), Order: OrderForward},
		{Name: "C+Inner+R", Budget: mk(true, true, false), Order: OrderReverse},
		{Name: "C+I+Outer", Budget: mk(true, true, true), Order: OrderForward},
		{Name: "C+I+O+R", Budget: mk(true, true, true), Order: OrderReverse},
	}
}

// TechniqueByName returns the named technique for a system, or false.
func TechniqueByName(system, name string, minCount int) (Technique, bool) {
	for _, t := range Techniques(system, minCount) {
		if t.Name == name {
			return t, true
		}
	}
	return Technique{}, false
}
