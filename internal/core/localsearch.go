package core

import (
	"context"
	"fmt"

	"rooftune/internal/bench"
	"rooftune/internal/vclock"
	"rooftune/internal/xrand"
)

// The paper argues (§IV-C) that for low-cardinality, low-sample-cost
// spaces, exhaustive or random search beats advanced autotuning
// techniques, whose overhead outweighs smarter sampling. This file
// implements the comparison point: a hill-climbing local search with
// random restarts over an indexed space. BenchmarkAblationSearch measures
// both sides of that argument.

// Neighborhood defines adjacency over a case list: Neighbors(i) returns
// the indices adjacent to case i. For the DGEMM grid, neighbours differ
// by one step along one axis.
type Neighborhood interface {
	Neighbors(i int) []int
}

// GridNeighborhood is the ±1-step-per-axis adjacency of a cartesian grid
// laid out in row-major order (the layout produced by the space
// constructors in this package).
type GridNeighborhood struct {
	// AxisSizes are the lengths of each axis, outermost first; their
	// product must equal the case count.
	AxisSizes []int
}

// Neighbors implements Neighborhood.
func (g GridNeighborhood) Neighbors(i int) []int {
	coords := g.coords(i)
	var out []int
	for axis := range coords {
		for _, delta := range []int{-1, 1} {
			c := append([]int(nil), coords...)
			c[axis] += delta
			if c[axis] < 0 || c[axis] >= g.AxisSizes[axis] {
				continue
			}
			out = append(out, g.index(c))
		}
	}
	return out
}

func (g GridNeighborhood) coords(i int) []int {
	coords := make([]int, len(g.AxisSizes))
	for axis := len(g.AxisSizes) - 1; axis >= 0; axis-- {
		coords[axis] = i % g.AxisSizes[axis]
		i /= g.AxisSizes[axis]
	}
	return coords
}

func (g GridNeighborhood) index(coords []int) int {
	i := 0
	for axis, c := range coords {
		i = i*g.AxisSizes[axis] + c
	}
	return i
}

// Size returns the number of grid points.
func (g GridNeighborhood) Size() int {
	n := 1
	for _, s := range g.AxisSizes {
		n *= s
	}
	return n
}

// UnionSpaceNeighborhood returns the adjacency of UnionDGEMMSpace's
// 8 x 8 x 6 grid.
func UnionSpaceNeighborhood() GridNeighborhood {
	return GridNeighborhood{AxisSizes: []int{8, 8, 6}}
}

// LocalSearch is hill climbing with random restarts over an indexed case
// list. Each evaluation uses the same adaptive budget as the exhaustive
// tuner, pruning against the global best.
type LocalSearch struct {
	Evaluator *bench.Evaluator
	Hood      Neighborhood
	// Restarts is the number of random starting points (minimum 1).
	Restarts int
	// Seed drives start-point selection.
	Seed uint64
	// MaxSteps caps the climb length per restart (0 = unlimited).
	MaxSteps int
}

// NewLocalSearch builds a local search with the given budget.
func NewLocalSearch(clock vclock.Clock, budget bench.Budget, hood Neighborhood, restarts int, seed uint64) *LocalSearch {
	if restarts < 1 {
		restarts = 1
	}
	return &LocalSearch{
		Evaluator: bench.NewEvaluator(clock, budget),
		Hood:      hood,
		Restarts:  restarts,
		Seed:      seed,
	}
}

// Run climbs from each restart point, memoising evaluations: a case is
// measured at most once even if multiple climbs visit it.
func (l *LocalSearch) Run(ctx context.Context, cases []bench.Case) (*Result, error) {
	if len(cases) == 0 {
		return nil, fmt.Errorf("core: empty search space")
	}
	watch := vclock.NewStopwatch(l.Evaluator.Clock)
	rng := xrand.New(l.Seed)
	res := &Result{}
	memo := make(map[int]*bench.Outcome, len(cases))
	best := bench.NoBest

	eval := func(i int) (*bench.Outcome, error) {
		if o, ok := memo[i]; ok {
			return o, nil
		}
		o, err := l.Evaluator.Evaluate(ctx, cases[i], bench.Fixed(best))
		if err != nil {
			return nil, err
		}
		memo[i] = o
		res.All = append(res.All, o)
		res.TotalSamples += o.TotalSamples
		if o.Pruned {
			res.PrunedCount++
		}
		if o.Better(best) {
			best = o.Mean
			res.Best = o
		}
		return o, nil
	}

	for r := 0; r < l.Restarts; r++ {
		cur := rng.Intn(len(cases))
		curOut, err := eval(cur)
		if err != nil {
			return nil, err
		}
		for step := 0; l.MaxSteps == 0 || step < l.MaxSteps; step++ {
			improved := false
			for _, nb := range l.Hood.Neighbors(cur) {
				o, err := eval(nb)
				if err != nil {
					return nil, err
				}
				// Move to the first strictly better, non-pruned neighbour.
				if !o.Pruned && o.Mean > curOut.Mean {
					cur, curOut = nb, o
					improved = true
					break
				}
			}
			if !improved {
				break // local optimum
			}
		}
	}
	res.Elapsed = watch.Elapsed()
	return res, nil
}

// Evaluations returns how many distinct configurations a finished run
// measured (the coverage metric the §IV-C comparison cares about).
func (r *Result) Evaluations() int { return len(r.All) }
