package core
