package core

import (
	"testing"
	"time"
)

func TestTechniqueMatrix(t *testing.T) {
	techs := Techniques("2650v4", 2)
	if len(techs) != len(TechniqueNames) {
		t.Fatalf("technique count %d", len(techs))
	}
	byName := map[string]Technique{}
	for i, tech := range techs {
		if tech.Name != TechniqueNames[i] {
			t.Fatalf("technique order: %q at %d", tech.Name, i)
		}
		byName[tech.Name] = tech
	}

	def := byName["Default"]
	if def.Budget.UseConfidence || def.Budget.UseInnerBound || def.Budget.UseOuterBound {
		t.Fatal("Default must be the fixed-sample technique")
	}
	if def.Budget.Invocations != 10 || def.Budget.MaxIterations != 200 {
		t.Fatal("Default must use Table I")
	}

	c := byName["Confidence"]
	if !c.Budget.UseConfidence || c.Budget.UseInnerBound || c.Budget.UseOuterBound {
		t.Fatal("Confidence = stop condition 3 only")
	}
	ci := byName["C+Inner"]
	if !ci.Budget.UseConfidence || !ci.Budget.UseInnerBound || ci.Budget.UseOuterBound {
		t.Fatal("C+Inner flags")
	}
	cio := byName["C+I+Outer"]
	if !cio.Budget.UseConfidence || !cio.Budget.UseInnerBound || !cio.Budget.UseOuterBound {
		t.Fatal("C+I+Outer flags")
	}
	if byName["C+Inner+R"].Order != OrderReverse || byName["C+I+O+R"].Order != OrderReverse {
		t.Fatal("R techniques must reverse the search")
	}
	if byName["C+Inner"].Order != OrderForward {
		t.Fatal("non-R techniques must search forward")
	}

	// Hand-tuned rows use Table VII's iteration counts with a single
	// invocation.
	ht := byName["Hand-tuned Time"]
	if ht.Budget.Invocations != 1 || ht.Budget.MaxIterations != 7 {
		t.Fatalf("Hand-tuned Time for 2650v4: %+v", ht.Budget)
	}
	ha := byName["Hand-tuned Accuracy"]
	if ha.Budget.MaxIterations != 20 {
		t.Fatalf("Hand-tuned Accuracy for 2650v4: %+v", ha.Budget)
	}
	single := byName["Single"]
	if single.Budget.Invocations != 1 || single.Budget.MaxIterations != 1 {
		t.Fatal("Single = one invocation, one iteration")
	}
	if single.Budget.MaxTime < time.Minute {
		t.Fatal("Single must not be time-capped")
	}
}

func TestTechniquesMinCount(t *testing.T) {
	for _, tech := range Techniques("2695v4", 100) {
		switch tech.Name {
		case "C+Inner", "C+Inner+R", "C+I+Outer", "C+I+O+R", "Confidence":
			if tech.Budget.MinCount != 100 {
				t.Errorf("%s: MinCount = %d, want 100", tech.Name, tech.Budget.MinCount)
			}
		}
	}
}

func TestHandTunedTableVII(t *testing.T) {
	want := map[string]HandTunedIters{
		"2650v4":    {7, 20},
		"2695v4":    {15, 180},
		"Gold 6132": {18, 180},
		"Gold 6148": {30, 150},
	}
	for sys, w := range want {
		if HandTuned[sys] != w {
			t.Errorf("Table VII for %s: %+v, want %+v", sys, HandTuned[sys], w)
		}
	}
}

func TestHandTunedFallback(t *testing.T) {
	techs := Techniques("unknown-system", 2)
	for _, tech := range techs {
		if tech.Name == "Hand-tuned Time" && tech.Budget.MaxIterations != 10 {
			t.Fatalf("unknown system fallback: %+v", tech.Budget)
		}
	}
}

func TestTechniqueByName(t *testing.T) {
	tech, ok := TechniqueByName("Gold 6148", "C+I+Outer", 2)
	if !ok || tech.Name != "C+I+Outer" {
		t.Fatal("TechniqueByName lookup")
	}
	if _, ok := TechniqueByName("Gold 6148", "nope", 2); ok {
		t.Fatal("unknown technique must return false")
	}
}
