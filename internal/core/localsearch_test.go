package core

import (
	"context"
	"testing"
	"testing/quick"

	"rooftune/internal/bench"
	"rooftune/internal/hw"
	"rooftune/internal/vclock"
)

func TestGridNeighborhoodShape(t *testing.T) {
	g := GridNeighborhood{AxisSizes: []int{3, 4, 5}}
	if g.Size() != 60 {
		t.Fatalf("size = %d", g.Size())
	}
	// Interior point: six neighbours (±1 on each of 3 axes).
	interior := g.index([]int{1, 2, 2})
	if n := len(g.Neighbors(interior)); n != 6 {
		t.Fatalf("interior degree %d, want 6", n)
	}
	// Corner: three neighbours.
	if n := len(g.Neighbors(0)); n != 3 {
		t.Fatalf("corner degree %d, want 3", n)
	}
}

func TestGridNeighborhoodSymmetric(t *testing.T) {
	// Adjacency must be symmetric and never self-referential.
	g := UnionSpaceNeighborhood()
	f := func(raw uint16) bool {
		i := int(raw) % g.Size()
		for _, nb := range g.Neighbors(i) {
			if nb == i || nb < 0 || nb >= g.Size() {
				return false
			}
			back := false
			for _, nn := range g.Neighbors(nb) {
				if nn == i {
					back = true
				}
			}
			if !back {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGridCoordsRoundTrip(t *testing.T) {
	g := GridNeighborhood{AxisSizes: []int{8, 8, 6}}
	f := func(raw uint16) bool {
		i := int(raw) % g.Size()
		return g.index(g.coords(i)) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// unimodalValues builds a value surface over a 4x4x4 grid with a single
// peak, so hill climbing from anywhere must find it.
func unimodalValues(peak [3]int) []float64 {
	g := GridNeighborhood{AxisSizes: []int{4, 4, 4}}
	vals := make([]float64, g.Size())
	for i := range vals {
		c := g.coords(i)
		d := abs(c[0]-peak[0]) + abs(c[1]-peak[1]) + abs(c[2]-peak[2])
		vals[i] = 100 - float64(d)
	}
	return vals
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestLocalSearchFindsUnimodalPeak(t *testing.T) {
	clock := vclock.NewVirtual()
	vals := unimodalValues([3]int{2, 1, 3})
	cases := makeCases(clock, vals)
	g := GridNeighborhood{AxisSizes: []int{4, 4, 4}}
	ls := NewLocalSearch(clock, quickBudget(), g, 1, 7)
	res, err := ls.Run(context.Background(), cases)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue() != 100 {
		t.Fatalf("local search found %v, want the peak 100", res.BestValue())
	}
	// It must have evaluated far fewer points than the whole grid.
	if res.Evaluations() >= g.Size() {
		t.Fatalf("local search evaluated everything (%d)", res.Evaluations())
	}
}

func TestLocalSearchMemoises(t *testing.T) {
	clock := vclock.NewVirtual()
	vals := unimodalValues([3]int{0, 0, 0})
	cases := makeCases(clock, vals)
	g := GridNeighborhood{AxisSizes: []int{4, 4, 4}}
	// Many restarts revisit cells; All must stay deduplicated.
	ls := NewLocalSearch(clock, quickBudget(), g, 20, 3)
	res, err := ls.Run(context.Background(), cases)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, o := range res.All {
		if seen[o.Key] {
			t.Fatalf("case %s evaluated twice", o.Key)
		}
		seen[o.Key] = true
	}
}

func TestLocalSearchEmptySpace(t *testing.T) {
	ls := NewLocalSearch(vclock.NewVirtual(), quickBudget(), GridNeighborhood{AxisSizes: []int{1}}, 1, 1)
	if _, err := ls.Run(context.Background(), nil); err == nil {
		t.Fatal("empty space must error")
	}
}

func TestLocalSearchMaxSteps(t *testing.T) {
	clock := vclock.NewVirtual()
	vals := unimodalValues([3]int{3, 3, 3})
	cases := makeCases(clock, vals)
	g := GridNeighborhood{AxisSizes: []int{4, 4, 4}}
	ls := NewLocalSearch(clock, quickBudget(), g, 1, 1)
	ls.MaxSteps = 1 // a single step cannot reach the far corner...
	res, err := ls.Run(context.Background(), cases)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations() > 1+6+6 { // start + its hood + one more hood
		t.Fatalf("MaxSteps not honoured: %d evaluations", res.Evaluations())
	}
}

func TestUnionSpaceNeighborhoodMatchesSpace(t *testing.T) {
	if UnionSpaceNeighborhood().Size() != len(UnionDGEMMSpace()) {
		t.Fatal("neighbourhood size must equal the union space cardinality")
	}
	// Row-major layout agreement: index 0 is the first Dims; moving +1 on
	// the k axis moves to the next space entry.
	space := UnionDGEMMSpace()
	g := UnionSpaceNeighborhood()
	i := g.index([]int{2, 3, 1})
	d := space[i]
	if d.N != 1000 || d.M != 1024 || d.K != 128 {
		t.Fatalf("layout mismatch at (2,3,1): %v", d)
	}
}

func TestLocalSearchOnSimulatedSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated climb")
	}
	// On the real (simulated) DGEMM surface, restarts + memoisation must
	// find a configuration within a few percent of the exhaustive
	// optimum at a fraction of the evaluations.
	eng := bench.NewSimEngine(hw.IdunGold6148, 1021)
	budget := bench.DefaultBudget().WithFlags(true, true, true)
	space := UnionDGEMMSpace()
	cases := make([]bench.Case, len(space))
	for i, d := range space {
		cases[i] = eng.DGEMMCase(d.N, d.M, d.K, 1)
	}
	ls := NewLocalSearch(eng.Clock, budget, UnionSpaceNeighborhood(), 6, 11)
	res, err := ls.Run(context.Background(), cases)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue()/1e9 < 1422.24*0.96 {
		t.Fatalf("local search best %.2f too far from the exhaustive 1422.24", res.BestValue()/1e9)
	}
	if res.Evaluations() > len(space)*3/4 {
		t.Fatalf("local search evaluated %d of %d — no saving", res.Evaluations(), len(space))
	}
}
