package core

import (
	"testing"
)

func TestInitialSpaceCardinality(t *testing.T) {
	// Eq. 8: |S| = 7 * 7 * 11 = 539.
	s := InitialDGEMMSpace()
	if len(s) != 539 {
		t.Fatalf("initial space |S| = %d, want 539 (Eq. 8)", len(s))
	}
	for _, d := range s {
		if d.N < 64 || d.N > 4096 || d.M < 64 || d.M > 4096 || d.K < 2 || d.K > 2048 {
			t.Fatalf("initial space out of range: %v", d)
		}
	}
}

func TestReducedSpaceCardinality(t *testing.T) {
	// §IV-A: 4 * 4 * 6 = 96 after narrowing.
	s := ReducedDGEMMSpace()
	if len(s) != 96 {
		t.Fatalf("reduced space |S| = %d, want 96", len(s))
	}
	for _, d := range s {
		if d.N < 512 || d.M < 512 || d.K < 64 {
			t.Fatalf("reduced space must exclude low values: %v", d)
		}
	}
}

func TestMult2Space(t *testing.T) {
	s := Mult2DGEMMSpace()
	if len(s) != 4*4*6 {
		t.Fatalf("mult2 space |S| = %d", len(s))
	}
	want := map[int]bool{500: true, 1000: true, 2000: true, 4000: true}
	for _, d := range s {
		if !want[d.N] || !want[d.M] {
			t.Fatalf("mult2 space has non-guideline value: %v", d)
		}
	}
}

func TestUnionSpaceCardinalityAndContents(t *testing.T) {
	s := UnionDGEMMSpace()
	if len(s) != 8*8*6 {
		t.Fatalf("union space |S| = %d, want 384", len(s))
	}
	// The union space must contain every Table V optimum.
	tableV := []Dims{
		{1000, 4096, 128}, {2000, 2048, 64},
		{2000, 4096, 128}, {4000, 2048, 128},
		{4000, 512, 128}, {4000, 1024, 128},
	}
	index := map[Dims]bool{}
	for _, d := range s {
		if index[d] {
			t.Fatalf("duplicate configuration %v", d)
		}
		index[d] = true
	}
	for _, d := range tableV {
		if !index[d] {
			t.Fatalf("union space missing Table V optimum %v", d)
		}
	}
}

func TestSquareAndConstrainedSpaces(t *testing.T) {
	sq := SquareDGEMMSpace()
	if len(sq) != 8 {
		t.Fatalf("square space |S| = %d", len(sq))
	}
	for _, d := range sq {
		if d.N != d.M || d.M != d.K {
			t.Fatalf("square space has non-square %v", d)
		}
	}
	mn := ConstrainedMNSpace()
	if len(mn) != 8*6 {
		t.Fatalf("m=n space |S| = %d", len(mn))
	}
	for _, d := range mn {
		if d.N != d.M {
			t.Fatalf("m=n constraint violated: %v", d)
		}
	}
}

func TestTriadSpace(t *testing.T) {
	s := TriadSpace()
	if len(s) < 60 {
		t.Fatalf("TRIAD sweep too sparse: %d points", len(s))
	}
	if s[0] != 128 {
		t.Fatalf("sweep must start at 3 KiB = 128 elements, got %d", s[0])
	}
	last := s[len(s)-1]
	if w := 24 * int64(last); w != 768<<20 {
		t.Fatalf("sweep must end at 768 MiB, got %d bytes", w)
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatal("sweep must be strictly increasing")
		}
	}
}

func TestDimsString(t *testing.T) {
	d := Dims{N: 1000, M: 4096, K: 128}
	if d.String() != "1000,4096,128" {
		t.Fatalf("Dims.String() = %q (Table V format)", d.String())
	}
	if d.Flops() != 2*1000*4096*128 {
		t.Fatalf("Flops = %v", d.Flops())
	}
}
