// Package core is the autotuner — the paper's primary contribution. It
// defines the DGEMM and TRIAD search spaces with the paper's state-space
// reductions (§IV-A/B), the search orderings (forward, reverse, random),
// and the exhaustive-search tuner whose evaluation loop applies the
// adaptive stop conditions of internal/bench to terminate measurement as
// early as the statistics allow.
package core

import (
	"fmt"

	"rooftune/internal/bench"
	"rooftune/internal/units"
)

// Dims is one DGEMM configuration: C (n x m) <- A (n x k) * B (k x m).
type Dims struct {
	N, M, K int
}

// ConfigDims extracts the matrix dimensions of a typed DGEMM benchmark
// configuration.
func ConfigDims(cfg bench.DGEMMConfig) Dims {
	return Dims{N: cfg.N, M: cfg.M, K: cfg.K}
}

// String formats the dimensions the way the paper's Table V does.
func (d Dims) String() string { return fmt.Sprintf("%d,%d,%d", d.N, d.M, d.K) }

// Flops returns the work of one DGEMM with these dimensions.
func (d Dims) Flops() float64 { return units.DGEMMFlops(d.N, d.M, d.K) }

// pow2Range returns {lo, 2*lo, ..., hi}; lo and hi must be powers of two
// with lo <= hi.
func pow2Range(lo, hi int) []int {
	var out []int
	for v := lo; v <= hi; v *= 2 {
		out = append(out, v)
	}
	return out
}

// cross builds the cartesian product of the axis value sets in row-major
// (n-outer, k-inner) order — the paper's forward search order, which
// visits small-n configurations first (Fig. 6 shows cost growing with
// size, making this the cheap-first order).
func cross(ns, ms, ks []int) []Dims {
	out := make([]Dims, 0, len(ns)*len(ms)*len(ks))
	for _, n := range ns {
		for _, m := range ms {
			for _, k := range ks {
				out = append(out, Dims{N: n, M: m, K: k})
			}
		}
	}
	return out
}

// InitialDGEMMSpace is the paper's first proposal (§IV-A): powers of two,
// n,m in 64..4096 and k in 2..2048, cardinality 7*7*11 = 539 (Eq. 8).
func InitialDGEMMSpace() []Dims {
	return cross(pow2Range(64, 4096), pow2Range(64, 4096), pow2Range(2, 2048))
}

// ReducedDGEMMSpace narrows the ranges after the observation that low
// values perform poorly: n,m in 512..4096 and k in 64..2048, cardinality
// 4*4*6 = 96.
func ReducedDGEMMSpace() []Dims {
	return cross(pow2Range(512, 4096), pow2Range(512, 4096), pow2Range(64, 2048))
}

// Mult2Values are the leading dimensions adjusted per Intel's guideline to
// multiples of 2 instead of powers of 2 (§IV-A): 500, 1000, 2000, 4000.
func Mult2Values() []int { return []int{500, 1000, 2000, 4000} }

// Mult2DGEMMSpace uses only the Intel-guideline multiples for n and m.
func Mult2DGEMMSpace() []Dims {
	return cross(Mult2Values(), Mult2Values(), pow2Range(64, 2048))
}

// UnionDGEMMSpace is the space the paper's own Table V results imply: its
// optima mix powers of two (512, 1024, 2048, 4096) with the Intel
// multiples (500, 1000, 2000, 4000) in the same configuration, so the
// n and m axes must have contained both families. Cardinality 8*8*6 = 384.
// The paper's text claims |S| = 96 after the adjustment; the discrepancy
// is recorded in DESIGN.md §4 and EXPERIMENTS.md. This is the default
// space for reproducing Tables IV, V and VIII-XI.
func UnionDGEMMSpace() []Dims {
	axis := []int{500, 512, 1000, 1024, 2000, 2048, 4000, 4096}
	return cross(axis, axis, pow2Range(64, 2048))
}

// SquareDGEMMSpace constrains m = n = k — the space Intel's benchmarking
// guide searched (§IV-A); the paper's constraint-specification study shows
// non-square configurations beat every point in it.
func SquareDGEMMSpace() []Dims {
	var out []Dims
	for _, v := range []int{500, 512, 1000, 1024, 2000, 2048, 4000, 4096} {
		out = append(out, Dims{N: v, M: v, K: v})
	}
	return out
}

// ConstrainedMNSpace applies the m = n constraint specification studied in
// §IV-A (k still free), reducing cardinality by a factor of the m-axis.
func ConstrainedMNSpace() []Dims {
	var out []Dims
	for _, v := range []int{500, 512, 1000, 1024, 2000, 2048, 4000, 4096} {
		for _, k := range pow2Range(64, 2048) {
			out = append(out, Dims{N: v, M: v, K: k})
		}
	}
	return out
}

// TriadSpace returns the TRIAD vector lengths for the paper's sweep:
// working sets from 3 KiB to 768 MiB (§IV-B), refined to four points per
// octave so every system's L3 window — razor-thin on the Skylake Golds,
// whose aggregate L2 nearly matches their victim L3 — contains sweep
// points.
func TriadSpace() []int {
	return units.TriadGridElements(units.CanonicalTriadGrid())
}
