// Package sweep is the engine-agnostic autotuning sweep layer: it runs a
// set of independent tuning sweeps — one per (socket configuration x
// residency region) in the roofline reproduction — and recovers each
// winner as a typed bench.Config instead of re-parsing outcome keys.
//
// Specs are independent by construction: each owns its engine and clock,
// and the simulated engines derive every noise sample by hashing
// (seed, configuration, invocation) rather than engine state. The runner
// may therefore execute specs concurrently with results bit-identical to
// serial execution (asserted by TestRunParallelDeterminism), mirroring
// the guarantee experiments.RunCampaign already makes per system.
//
// Orthogonally, CaseShards parallelises *within* one sweep: shard workers
// evaluate the ordered case list concurrently under core.Tuner's
// order-insensitive incumbent protocol. That is a weaker guarantee than
// across-sweep concurrency — the winner and its value are invariant, but
// pruning counts and sample totals may differ from serial (only ever
// toward less pruning). The default policy sizes shard pools adaptively
// from spare host parallelism; pin CaseShards to 1 for the strictly
// serial evaluation loop.
//
// Sweeps stop being fully independent when a plan graph says so: RunPlan
// executes Nodes whose SeedFrom edges chain same-metric sweeps, seeding a
// dependent sweep's incumbent with its dependency's measured winner so
// cross-sweep knowledge pre-prunes the search (see Node and RunPlan).
package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/parallel"
	"rooftune/internal/vclock"
)

// Spec is one independent autotuning sweep: a named case list measured on
// its own engine clock. The clock must be the one the cases' engine
// advances, so the outcome's Elapsed accounts the sweep's full cost.
type Spec struct {
	Name  string
	Clock vclock.Clock
	Cases []bench.Case
	// CaseShards overrides the Runner's case-shard policy for this sweep
	// (0 = use the Runner's, which may size adaptively; 1 = force serial
	// evaluation). See Runner.CaseShards.
	CaseShards int
}

// Outcome pairs a finished sweep with its typed winning configuration.
type Outcome struct {
	Name string
	// ID is the sweep's plan-graph identity (empty under the flat Run
	// entry point, which has no graph).
	ID string
	// Result is the tuner's full search result.
	Result *core.Result
	// Best is the winner's typed identity (nil only if the winning Case
	// itself carried no config, e.g. a test fake).
	Best bench.Config
	// SeededFrom names the plan-graph sweep whose measured winner
	// pre-seeded this sweep's incumbent bound (empty when the sweep
	// started unseeded). Only RunPlan sets it.
	SeededFrom string
	// SeedValue is the pre-seeded incumbent in metric base units (zero
	// when SeededFrom is empty).
	SeedValue float64
}

// BestValue returns the winning mean in metric base units.
func (o *Outcome) BestValue() float64 { return o.Result.BestValue() }

// DGEMM returns the winner as a DGEMM configuration.
func (o *Outcome) DGEMM() (bench.DGEMMConfig, error) {
	cfg, ok := o.Best.(bench.DGEMMConfig)
	if !ok {
		return cfg, fmt.Errorf("sweep: %s winner has config %T, want DGEMM", o.Name, o.Best)
	}
	return cfg, nil
}

// Triad returns the winner as a TRIAD configuration.
func (o *Outcome) Triad() (bench.TriadConfig, error) {
	cfg, ok := o.Best.(bench.TriadConfig)
	if !ok {
		return cfg, fmt.Errorf("sweep: %s winner has config %T, want TRIAD", o.Name, o.Best)
	}
	return cfg, nil
}

// SpMV returns the winner as an SpMV configuration.
func (o *Outcome) SpMV() (bench.SpMVConfig, error) {
	cfg, ok := o.Best.(bench.SpMVConfig)
	if !ok {
		return cfg, fmt.Errorf("sweep: %s winner has config %T, want SpMV", o.Name, o.Best)
	}
	return cfg, nil
}

// Stencil returns the winner as a stencil configuration.
func (o *Outcome) Stencil() (bench.StencilConfig, error) {
	cfg, ok := o.Best.(bench.StencilConfig)
	if !ok {
		return cfg, fmt.Errorf("sweep: %s winner has config %T, want stencil", o.Name, o.Best)
	}
	return cfg, nil
}

// Hooks observe sweep execution. Sweeps may run concurrently, so every
// callback must be safe for concurrent use; all callbacks are optional.
// They exist to drive live progress output (the session layer adapts them
// into its public event stream) and carry no results — outcomes still
// arrive only through Run's return value.
type Hooks struct {
	// SweepStarted fires when a sweep's search begins.
	SweepStarted func(name string, cases int)
	// CaseEvaluated fires after each configuration's evaluation.
	CaseEvaluated func(sweep string, out *bench.Outcome)
	// SweepWon fires when a sweep finishes with its winner.
	SweepWon func(o *Outcome)
	// SweepSeeded fires when RunPlan releases a dependent sweep with its
	// incumbent pre-seeded by a finished dependency's winner. id and from
	// are plan-graph IDs; value is the seed in metric base units.
	SweepSeeded func(id, from string, value float64)
}

// Runner executes sweeps with a shared budget and traversal order.
type Runner struct {
	Budget bench.Budget
	Order  core.Order
	// Serial forces one-sweep-at-a-time execution. Native builds set it:
	// concurrent wall-clock measurement would contend on the host. For
	// simulated builds it exists for debugging and the determinism tests —
	// parallel results are bit-identical either way.
	Serial bool
	// Workers caps sweep-level concurrency (default: the host budget —
	// see Host).
	Workers int
	// Host is the host-parallelism budget this runner may assume it owns
	// (default GOMAXPROCS). It bounds both sweep-level concurrency and the
	// adaptive case-shard policy's notion of spare capacity, so N runners
	// sharing one machine under a serving tier's budget (each handed
	// capacity/N) divide the host instead of each sizing pools as if it
	// ran alone. Explicit Workers settings are clamped to it. Host never
	// changes results on simulated engines — sweep-level schedules are
	// bit-identical by construction — only how much hardware the schedule
	// occupies.
	Host int
	// CaseShards is the number of workers evaluating cases concurrently
	// *within* each sweep. 1 forces strictly serial case evaluation (the
	// paper's loop); n > 1 fixes the shard pool; 0 (the default) sizes it
	// adaptively: each sweep gets the host parallelism left over once
	// sweep-level concurrency is accounted for, capped so no shard owns
	// fewer than a handful of cases, and auto-disables (serial) whenever
	// sweep-level parallelism already saturates the host or the Runner is
	// Serial (a Serial runner stays fully single-threaded). Sharded sweeps
	// share a monotone atomic incumbent, so stop condition 4 keeps pruning
	// conservatively and the winner is shard-count-invariant on the
	// simulated engines; see core.Tuner. Search cost (PrunedCount,
	// TotalSamples, Elapsed) may differ between shard counts — callers
	// asserting bit-identical search cost must pin CaseShards to 1. Like
	// sweep-level concurrency, case sharding is for simulated engines
	// only — native callers must pin 1: concurrent wall-clock measurement
	// would contend on the host. A Spec may override the count per sweep
	// via Spec.CaseShards.
	CaseShards int
	// Hooks observe execution; see Hooks.
	Hooks Hooks
	// Exec, when non-nil, lets RunPlan delegate whole plan nodes to an
	// external executor — the distributed tier's coordinator dispatches
	// them to remote workers. The executor receives the node plus the
	// exact seed RunPlan would have applied locally, and returns the
	// node's Outcome (Name, ID, SeededFrom and SeedValue are filled in
	// by RunPlan). Returning ErrExecUnavailable falls the node back to
	// local execution — same seed, same shard policy — so a plan
	// completes whether or not any executor capacity exists. Exec is
	// called from node goroutines and must be safe for concurrent use.
	Exec ExecFunc
}

// ExecFunc executes one plan-graph node out-of-process. seedValue is
// the incumbent pre-seed in metric base units (0: unseeded), seedFrom
// the plan-graph ID it came from.
type ExecFunc func(ctx context.Context, n Node, seedFrom string, seedValue float64) (Outcome, error)

// ErrExecUnavailable, returned (or wrapped) by an ExecFunc, tells
// RunPlan to run that node locally instead — the graceful fallback when
// no remote worker is live.
var ErrExecUnavailable = errors.New("sweep: node executor unavailable")

// Run executes every spec and returns outcomes in spec order. Specs run
// concurrently unless Serial is set; outcomes and the reported error
// (always the first failing spec in spec order) never depend on
// scheduling. Serial runs additionally fail fast — no sweep starts after
// a failure, so a broken first sweep on the native path never pays for
// minutes of doomed wall-clock benchmarking. Parallel runs finish every
// in-flight spec instead: skipping by a racy flag would make which error
// surfaces depend on timing. An empty case list is an error, as is an
// empty spec slice.
//
// Cancelling ctx aborts the run: no new sweep starts, in-flight sweeps
// stop between kernel executions, and Run reports an error satisfying
// errors.Is(err, ctx.Err()) — unless the cancellation cost nothing
// because every spec had already completed, in which case the finished
// outcomes are returned with a nil error rather than discarded. Worker
// goroutines are always joined before Run returns — cancellation leaks
// nothing.
func (r *Runner) Run(ctx context.Context, specs []Spec) ([]Outcome, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("sweep: no specs")
	}
	outs := make([]Outcome, len(specs))
	errs := make([]error, len(specs))
	workers := r.workerCount()
	failFast := workers == 1
	var failed atomic.Bool
	pool := parallel.NewPool(workers)
	poolErr := pool.RunContext(ctx, len(specs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				// Record the skip on the spec itself: RunContext reports
				// nil when every partition executed, so a spec this loop
				// skipped mid-partition must carry its own cancellation
				// error rather than ride on the pool's.
				errs[i] = fmt.Errorf("sweep: %s: %w", specs[i].Name, err)
				continue
			}
			if failFast && failed.Load() {
				return
			}
			outs[i], errs[i] = r.runOne(ctx, specs[i], r.shardsFor(specs[i], len(specs)), seedNone)
			if errs[i] != nil {
				failed.Store(true)
			}
		}
	})
	pool.Close()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if poolErr != nil {
		return nil, fmt.Errorf("sweep: %w", poolErr)
	}
	return outs, nil
}

// hostThreads resolves the runner's host-parallelism budget: the Host
// cap when set, otherwise the whole machine.
func (r *Runner) hostThreads() int {
	if r.Host > 0 {
		return r.Host
	}
	return parallel.DefaultThreads()
}

// workerCount resolves sweep-level concurrency: Workers clamped to the
// host budget, Serial pinning it to one.
func (r *Runner) workerCount() int {
	host := r.hostThreads()
	workers := r.Workers
	if workers <= 0 || workers > host {
		workers = host
	}
	if r.Serial {
		workers = 1
	}
	return workers
}

// minShardCases is the smallest case count worth giving an adaptive shard
// worker: below it, shard startup and incumbent traffic outweigh the
// concurrency, so small sweeps stay serial on their own.
const minShardCases = 8

// shardsFor resolves one sweep's case-shard count: the Spec's override
// first, then the Runner's fixed count, then the adaptive policy — spare
// host parallelism divided across the sweeps that can run concurrently,
// capped by the sweep's case count. The policy is a pure function of the
// run's shape (never of live load), so re-runs of one configuration stay
// deterministic on a given host.
func (r *Runner) shardsFor(s Spec, concurrent int) int {
	if s.CaseShards != 0 {
		return s.CaseShards
	}
	if r.CaseShards != 0 {
		return r.CaseShards
	}
	if r.Serial {
		// Serial means serial: callers set it for debugging and for
		// bit-exact baselines, so the adaptive policy must not sneak
		// concurrency back in through shard workers.
		return 1
	}
	host := r.hostThreads()
	sweepWorkers := r.Workers
	if sweepWorkers <= 0 || sweepWorkers > host {
		sweepWorkers = host
	}
	if concurrent > 0 && sweepWorkers > concurrent {
		sweepWorkers = concurrent
	}
	spare := host / sweepWorkers
	if spare <= 1 {
		return 1 // sweep-level parallelism already saturates the host
	}
	if most := (len(s.Cases) + minShardCases - 1) / minShardCases; spare > most {
		spare = most
	}
	if spare < 1 {
		spare = 1
	}
	return spare
}

// seedNone marks an unseeded runOne call.
var seedNone = seed{}

// seed carries a pre-seeded incumbent into runOne.
type seed struct {
	from  string  // plan-graph ID of the sweep whose winner is the bound
	value float64 // bound in metric base units (0 = none)
	// shared, when non-nil, is an externally owned monotone incumbent
	// wired into the node's tuner (core.Tuner.Shared) so bounds pushed
	// mid-sweep — the distributed tier's async incumbent sharing —
	// reach a running search.
	shared *bench.AtomicIncumbent
}

// execOne runs one plan node through the Runner's external executor,
// falling back to local execution when the executor declines with
// ErrExecUnavailable. A remotely executed node fires SweepStarted and
// SweepWon (after completion — the remote search is opaque here, so the
// two arrive back to back); CaseEvaluated hooks fire only for locally
// run nodes.
func (r *Runner) execOne(ctx context.Context, n Node, shards int, sd seed) (Outcome, error) {
	if r.Exec == nil {
		return r.runOne(ctx, n.Spec, shards, sd)
	}
	out, err := r.Exec(ctx, n, sd.from, sd.value)
	if errors.Is(err, ErrExecUnavailable) {
		return r.runOne(ctx, n.Spec, shards, sd)
	}
	if err != nil {
		return Outcome{}, fmt.Errorf("sweep: %s: %w", n.Spec.Name, err)
	}
	out.Name = n.Spec.Name
	out.SeededFrom, out.SeedValue = sd.from, sd.value
	if r.Hooks.SweepStarted != nil {
		r.Hooks.SweepStarted(n.Spec.Name, len(n.Spec.Cases))
	}
	if r.Hooks.SweepWon != nil {
		r.Hooks.SweepWon(&out)
	}
	return out, nil
}

// RunNode executes exactly one node of a validated plan graph, exactly
// as a local RunPlan executing the whole graph would have run it: the
// same adaptive shard policy (sized from the full graph's concurrent
// width), the same incumbent pre-seed, the same hooks. It is the worker
// side of the distributed tier — the coordinator honors the graph's
// seed edges and dispatches one node at a time; the worker replays just
// that node. shared, when non-nil, additionally wires an externally
// owned monotone incumbent into the search so bounds pushed mid-sweep
// reach it (see core.Tuner.Shared).
func (r *Runner) RunNode(ctx context.Context, nodes []Node, id string, seedValue float64, shared *bench.AtomicIncumbent) (Outcome, error) {
	if err := ValidatePlan(nodes); err != nil {
		return Outcome{}, err
	}
	edges := 0
	target := -1
	for i, n := range nodes {
		if n.SeedFrom != "" {
			edges++
		}
		if n.ID == id {
			target = i
		}
	}
	if target < 0 {
		return Outcome{}, fmt.Errorf("sweep: plan has no node %q", id)
	}
	// Mirror RunPlan's adaptive-shard width: nodes minus edges is the
	// graph's concurrent chain count (see RunPlan).
	width := len(nodes) - edges
	if width < 1 {
		width = 1
	}
	n := nodes[target]
	sd := seed{value: seedValue, shared: shared}
	if seedValue > 0 {
		// Provenance mirrors RunPlan: SeededFrom is recorded only when a
		// seed was actually applied (a dependency that finished with a
		// salvage value releases its dependents unseeded).
		sd.from = n.SeedFrom
	}
	out, err := r.runOne(ctx, n.Spec, r.shardsFor(n.Spec, width), sd)
	if err != nil {
		return out, err
	}
	out.ID = n.ID
	return out, nil
}

func (r *Runner) runOne(ctx context.Context, s Spec, shards int, sd seed) (Outcome, error) {
	if len(s.Cases) == 0 {
		return Outcome{}, fmt.Errorf("sweep: %s: empty case list", s.Name)
	}
	if r.Hooks.SweepStarted != nil {
		r.Hooks.SweepStarted(s.Name, len(s.Cases))
	}
	tuner := core.NewTuner(s.Clock, r.Budget, r.Order)
	tuner.Shards = shards
	tuner.Incumbent = sd.value
	tuner.Shared = sd.shared
	if r.Hooks.CaseEvaluated != nil {
		tuner.OnOutcome = func(out *bench.Outcome) { r.Hooks.CaseEvaluated(s.Name, out) }
	}
	res, err := tuner.Run(ctx, s.Cases)
	if err != nil {
		return Outcome{}, fmt.Errorf("sweep: %s: %w", s.Name, err)
	}
	out := Outcome{Name: s.Name, Result: res, SeededFrom: sd.from, SeedValue: sd.value}
	if res.Best != nil {
		out.Best = res.Best.Config
	}
	if r.Hooks.SweepWon != nil {
		r.Hooks.SweepWon(&out)
	}
	return out, nil
}
