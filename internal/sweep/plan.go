package sweep

import (
	"context"
	"fmt"
	"sort"
)

// Node is one sweep in a plan graph: a Spec under a stable ID, with an
// optional SeedFrom dependency edge. When the sweep named by SeedFrom
// finishes with a measured (non-salvage) winner, this sweep's incumbent
// bound is pre-seeded with that winner's value before it starts, so stop
// condition 4 prunes from the very first case — the cross-sweep analogue
// of the paper's search-cost-reduction techniques. Edges must stay inside
// one metric: a FLOP/s bound is meaningless to a bandwidth sweep.
type Node struct {
	// ID is the sweep's stable identity, unique within the plan. By
	// convention "<workload>/<region-or-axis>/<target>", e.g.
	// "triad/L3/2s".
	ID string
	// SeedFrom optionally names the node whose winner pre-seeds this
	// sweep's incumbent. Empty means the sweep starts unseeded.
	SeedFrom string
	// Spec is the sweep itself.
	Spec Spec
}

// PlanViolations checks a plan graph's structural invariants and returns
// every violation: non-empty unique IDs, SeedFrom edges that reference
// known IDs, no self-edges or cycles, and same-metric edges only. It is
// shared by ValidatePlan (which callers use as a gate) and the workload
// conformance harness (which wants the full list).
func PlanViolations(nodes []Node) []error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	index := make(map[string]int, len(nodes))
	for i, n := range nodes {
		if n.ID == "" {
			fail("sweep: node %d (%s) has an empty plan-graph ID", i, n.Spec.Name)
			continue
		}
		if prev, dup := index[n.ID]; dup {
			fail("sweep: nodes %d and %d share plan-graph ID %q", prev, i, n.ID)
			continue
		}
		index[n.ID] = i
	}
	for _, n := range nodes {
		if n.SeedFrom == "" {
			continue
		}
		if n.SeedFrom == n.ID {
			fail("sweep: node %q seeds from itself", n.ID)
			continue
		}
		j, ok := index[n.SeedFrom]
		if !ok {
			fail("sweep: node %q seeds from unknown node %q", n.ID, n.SeedFrom)
			continue
		}
		// Cross-metric edge: a winner in one unit cannot bound a search
		// in another. Only checkable when both sides have cases (empty
		// case lists are their own violation elsewhere).
		if len(n.Spec.Cases) > 0 && len(nodes[j].Spec.Cases) > 0 {
			if m, sm := n.Spec.Cases[0].Metric(), nodes[j].Spec.Cases[0].Metric(); m != sm {
				fail("sweep: node %q (%s) seeds from %q (%s): cross-metric edges are invalid",
					n.ID, m.Unit(), n.SeedFrom, sm.Unit())
			}
		}
	}
	// Cycle detection over the (at most one per node) SeedFrom edges:
	// walk each chain with a colour map.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[string]int, len(nodes))
	for _, n := range nodes {
		var path []string
		for at := n.ID; at != ""; {
			i, ok := index[at]
			if !ok || colour[at] == black {
				break
			}
			if colour[at] == grey {
				fail("sweep: SeedFrom cycle through %q (%v)", at, path)
				break
			}
			colour[at] = grey
			path = append(path, at)
			at = nodes[i].SeedFrom
		}
		for _, id := range path {
			colour[id] = black
		}
	}
	return errs
}

// ValidatePlan reports the first structural violation of a plan graph, or
// nil for a well-formed one. See PlanViolations for the invariant list.
func ValidatePlan(nodes []Node) error {
	if errs := PlanViolations(nodes); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// RunPlan executes a plan graph: independent nodes run concurrently under
// the Runner's worker cap exactly like Run, while a node with a SeedFrom
// edge waits for its dependency and starts with its incumbent pre-seeded
// by the dependency's winner (core.Tuner.Incumbent). A dependency that
// finishes with only a salvage value (Result.BestPruned) releases its
// dependents unseeded — a truncated partial mean is not a bound worth
// pruning against. Outcomes are returned in node order and record their
// seeding (Outcome.SeededFrom, Outcome.SeedValue).
//
// Seeding never changes which configuration wins a well-ordered chain:
// the seed is a measured mean of the same metric, so any configuration it
// prunes was provably below an already-measured winner elsewhere — only
// PrunedCount, TotalSamples and per-case truncation can differ from an
// unchained run. A seed above the dependent sweep's true best over-prunes
// everything; Result.BestPruned then flags the salvage value, exactly as
// with a caller-supplied incumbent.
//
// With an Exec hook installed, each ready node is delegated to the
// external executor instead of running in-process — the distributed
// tier's coordinator — with the exact seed the local schedule would
// have applied, and falls back to local execution per node when the
// executor declines (see Exec, ExecFunc). The topological schedule,
// seeding rules and outcome order are identical either way.
//
// Error and cancellation semantics mirror Run: the first failing node in
// node order is reported; serial runs (Workers 1 or Serial) fail fast;
// parallel runs finish in-flight sweeps. A node whose dependency failed
// never starts. Cancellation aborts between kernel executions, joins
// every worker, and reports an error satisfying errors.Is(err, ctx.Err())
// — unless every node had already completed.
func (r *Runner) RunPlan(ctx context.Context, nodes []Node) ([]Outcome, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("sweep: empty plan")
	}
	if err := ValidatePlan(nodes); err != nil {
		return nil, err
	}
	workers := r.workerCount()
	failFast := workers == 1

	index := make(map[string]int, len(nodes))
	for i, n := range nodes {
		index[n.ID] = i
	}
	children := make([][]int, len(nodes))
	indeg := make([]int, len(nodes))
	edges := 0
	for i, n := range nodes {
		if n.SeedFrom != "" {
			p := index[n.SeedFrom]
			children[p] = append(children[p], i)
			indeg[i]++
			edges++
		}
	}
	// The adaptive shard policy wants to know how many sweeps compete for
	// the host at once. For a plan graph that is not the node count: a
	// chained run executes one node per chain at a time. Each node has at
	// most one SeedFrom parent, so the graph is a forest and nodes minus
	// edges is its component (chain) count — exact for the linear chains
	// the workloads plan, a deterministic underestimate for branchier
	// trees (which merely shards a little more than strictly fair).
	width := len(nodes) - edges
	if width < 1 {
		width = 1
	}

	var (
		outs    = make([]Outcome, len(nodes))
		errs    = make([]error, len(nodes))
		started = make([]bool, len(nodes))
		seeds   = make([]seed, len(nodes))
		ready   []int
		running int
		failed  bool
		done    = make(chan int)
	)
	for i := range nodes {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for completed := 0; completed < len(nodes); {
		for len(ready) > 0 && running < workers &&
			ctx.Err() == nil && !(failFast && failed) {
			i := ready[0]
			ready = ready[1:]
			started[i] = true
			running++
			//rooflint:allow nogoroutine -- plan-graph dispatcher; every node goroutine reports on done and is drained by the completion loop below
			go func(i int) {
				n := nodes[i]
				out, err := r.execOne(ctx, n, r.shardsFor(n.Spec, width), seeds[i])
				out.ID = n.ID
				outs[i], errs[i] = out, err
				done <- i
			}(i)
		}
		if running == 0 {
			// Nothing runnable: remaining nodes are blocked on a failed
			// dependency, a failure under fail-fast, or cancellation.
			break
		}
		i := <-done
		running--
		completed++
		if errs[i] != nil {
			failed = true
			continue // children of a failed node never become ready
		}
		for _, c := range children[i] {
			indeg[c]--
			if indeg[c] > 0 {
				continue
			}
			if res := outs[i].Result; res != nil && res.Best != nil && !res.BestPruned {
				seeds[c] = seed{from: nodes[i].ID, value: res.BestValue()}
				if r.Hooks.SweepSeeded != nil {
					r.Hooks.SweepSeeded(nodes[c].ID, nodes[i].ID, seeds[c].value)
				}
			}
			// Keep the ready queue in node order so serial schedules are
			// the stable topological order of the input.
			ready = append(ready, c)
			sort.Ints(ready)
		}
	}
	// Attribute never-started nodes: a cancelled run's skipped nodes must
	// carry the ctx error themselves (mirroring Run), and a node whose
	// dependency failed names it. Fail-fast skips stay error-free — the
	// root failure is what gets reported.
	for i := range nodes {
		if started[i] || errs[i] != nil {
			continue
		}
		if err := ctx.Err(); err != nil {
			errs[i] = fmt.Errorf("sweep: %s: %w", nodes[i].Spec.Name, err)
		} else if !failed {
			errs[i] = fmt.Errorf("sweep: %s: dependency %s never completed", nodes[i].Spec.Name, nodes[i].SeedFrom)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}
