package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/hw"
	"rooftune/internal/parallel"
	"rooftune/internal/vclock"
)

// testSpace is a small DGEMM space that keeps the sim sweeps fast while
// still having a non-trivial winner.
var testSpace = []core.Dims{
	{N: 512, M: 512, K: 128},
	{N: 1024, M: 512, K: 128},
	{N: 1024, M: 1024, K: 256},
	{N: 2048, M: 1024, K: 128},
}

// buildSpecs creates one independent DGEMM sweep per socket configuration
// plus one TRIAD sweep, each with its own engine and clock.
func buildSpecs(t *testing.T, sys hw.System, seed uint64) []Spec {
	t.Helper()
	var specs []Spec
	for _, sockets := range []int{1, sys.Sockets} {
		eng := bench.NewSimEngine(sys, seed)
		cases := make([]bench.Case, len(testSpace))
		for i, d := range testSpace {
			cases[i] = eng.DGEMMCase(d.N, d.M, d.K, sockets)
		}
		specs = append(specs, Spec{
			Name:  fmt.Sprintf("dgemm-%d", sockets),
			Clock: eng.Clock,
			Cases: cases,
		})
	}
	eng := bench.NewSimEngine(sys, seed)
	var triad []bench.Case
	for _, elems := range []int{1 << 14, 1 << 18, 1 << 22} {
		triad = append(triad, eng.TriadCase(elems, hw.AffinityClose, 1))
	}
	specs = append(specs, Spec{Name: "triad", Clock: eng.Clock, Cases: triad})
	return specs
}

func testRunner(serial bool) *Runner {
	b := bench.DefaultBudget().WithFlags(true, true, true)
	b.Invocations = 2
	b.MaxIterations = 20
	// CaseShards is pinned to 1 (strictly serial evaluation): the
	// bit-exactness baselines below compare search cost, which the
	// adaptive default may legitimately change on a multi-core host.
	return &Runner{Budget: b, Order: core.OrderForward, Serial: serial, CaseShards: 1}
}

func TestRunParallelDeterminism(t *testing.T) {
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := testRunner(true).Run(context.Background(), buildSpecs(t, sys, 1021))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := testRunner(false).Run(context.Background(), buildSpecs(t, sys, 1021))
	if err != nil {
		t.Fatal(err)
	}
	// Bit-identical: every outcome — winner configs, all means, sample
	// counts, virtual elapsed times — must match exactly, mirroring
	// RunCampaign's serial/parallel guarantee.
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel sweep diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestRunTypedWinners(t *testing.T) {
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	outs, err := testRunner(false).Run(context.Background(), buildSpecs(t, sys, 1021))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("outcomes: %d", len(outs))
	}
	for _, out := range outs[:2] {
		cfg, err := out.DGEMM()
		if err != nil {
			t.Fatal(err)
		}
		if (core.ConfigDims(cfg) == core.Dims{}) {
			t.Fatalf("%s: zero dims from typed config", out.Name)
		}
		if _, err := out.Triad(); err == nil {
			t.Fatalf("%s: DGEMM winner must not convert to TRIAD", out.Name)
		}
		// The typed config must identify the same case the tuner ranked
		// best, not a re-parse of the key.
		if want := out.Result.Best.Config; cfg != want {
			t.Fatalf("%s: Best = %+v, outcome config %+v", out.Name, cfg, want)
		}
	}
	tcfg, err := outs[2].Triad()
	if err != nil {
		t.Fatal(err)
	}
	if tcfg.Elements <= 0 {
		t.Fatalf("triad winner elements = %d", tcfg.Elements)
	}
}

func TestRunEmptySpecs(t *testing.T) {
	if _, err := testRunner(false).Run(context.Background(), nil); err == nil {
		t.Fatal("no specs must error")
	}
	spec := Spec{Name: "empty", Clock: vclock.NewVirtual()}
	if _, err := testRunner(false).Run(context.Background(), []Spec{spec}); err == nil {
		t.Fatal("empty case list must error")
	}
}

type failingCase struct{}

func (failingCase) Key() string          { return "fail" }
func (failingCase) Config() bench.Config { return nil }
func (failingCase) Describe() string     { return "fail" }
func (failingCase) Metric() bench.Metric { return bench.MetricFlops }
func (failingCase) NewInvocation(int) (bench.Instance, error) {
	return nil, fmt.Errorf("boom")
}

func TestRunErrorPropagation(t *testing.T) {
	specs := []Spec{{
		Name:  "broken",
		Clock: vclock.NewVirtual(),
		Cases: []bench.Case{failingCase{}},
	}}
	_, err := testRunner(false).Run(context.Background(), specs)
	if err == nil {
		t.Fatal("engine failure must propagate")
	}
}

func TestRunSerialFailsFast(t *testing.T) {
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	eng := bench.NewSimEngine(sys, 1021)
	specs := []Spec{
		{Name: "broken", Clock: vclock.NewVirtual(), Cases: []bench.Case{failingCase{}}},
		{Name: "after", Clock: eng.Clock, Cases: []bench.Case{eng.DGEMMCase(512, 512, 128, 1)}},
	}
	if _, err := testRunner(true).Run(context.Background(), specs); err == nil {
		t.Fatal("engine failure must propagate")
	}
	// Serial execution must not keep benchmarking doomed sweeps after the
	// failure: the second spec's engine clock never advanced.
	if eng.Clock.Now() != 0 {
		t.Fatalf("sweep after failure still ran: clock = %v", eng.Clock.Now())
	}
}

func TestOutcomeElapsedAccountsSweepCost(t *testing.T) {
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	outs, err := testRunner(true).Run(context.Background(), buildSpecs(t, sys, 1021))
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	for _, out := range outs {
		if out.Result.Elapsed <= 0 {
			t.Fatalf("%s: elapsed = %v", out.Name, out.Result.Elapsed)
		}
		total += out.Result.Elapsed
	}
	if total <= 0 {
		t.Fatal("total sweep time must be positive virtual time")
	}
}

// shardSpace is a mid-size DGEMM space: big enough that sharding has
// real interleavings and stop condition 4 has real work, small enough to
// keep the table test fast.
func shardSpace() []core.Dims {
	var out []core.Dims
	for _, n := range []int{256, 512, 1024, 2048} {
		for _, m := range []int{256, 1024, 4096} {
			for _, k := range []int{64, 128, 256} {
				out = append(out, core.Dims{N: n, M: m, K: k})
			}
		}
	}
	return out
}

// buildShardSpecs is buildSpecs over the larger shardSpace plus a denser
// TRIAD sweep, fresh engines per call.
func buildShardSpecs(t *testing.T, sys hw.System, seed uint64) []Spec {
	t.Helper()
	var specs []Spec
	for _, sockets := range []int{1, sys.Sockets} {
		eng := bench.NewSimEngine(sys, seed)
		var cases []bench.Case
		for _, d := range shardSpace() {
			cases = append(cases, eng.DGEMMCase(d.N, d.M, d.K, sockets))
		}
		specs = append(specs, Spec{Name: fmt.Sprintf("dgemm-%d", sockets), Clock: eng.Clock, Cases: cases})
	}
	eng := bench.NewSimEngine(sys, seed)
	var triad []bench.Case
	for elems := 1 << 12; elems <= 1<<24; elems <<= 2 {
		triad = append(triad, eng.TriadCase(elems, hw.AffinityClose, 1))
	}
	specs = append(specs, Spec{Name: "triad", Clock: eng.Clock, Cases: triad})
	return specs
}

// TestCaseShardInvariance is the determinism suite for within-sweep case
// sharding: for every traversal order and shard count, each sweep's
// winning configuration and best value must be bit-identical to strictly
// serial evaluation, pruning must stay conservative (never more pruning
// than serial), and sample totals must never shrink. It mirrors
// TestRunParallelDeterminism one level down.
func TestCaseShardInvariance(t *testing.T) {
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	const seed = 1021
	shardCounts := []int{1, 2, 4, parallel.DefaultThreads()}
	for _, order := range []core.Order{core.OrderForward, core.OrderReverse, core.OrderRandom} {
		base := testRunner(false)
		base.Order = order
		serial, err := base.Run(context.Background(), buildShardSpecs(t, sys, seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range shardCounts {
			r := testRunner(false)
			r.Order = order
			r.CaseShards = shards
			outs, err := r.Run(context.Background(), buildShardSpecs(t, sys, seed))
			if err != nil {
				t.Fatal(err)
			}
			for i, out := range outs {
				want := serial[i]
				if out.Result.Best.Key != want.Result.Best.Key {
					t.Fatalf("%v/shards=%d/%s: winner %s, serial %s",
						order, shards, out.Name, out.Result.Best.Key, want.Result.Best.Key)
				}
				if out.BestValue() != want.BestValue() {
					t.Fatalf("%v/shards=%d/%s: best value %v, serial %v (must be bit-identical)",
						order, shards, out.Name, out.BestValue(), want.BestValue())
				}
				if out.Best != want.Best {
					t.Fatalf("%v/shards=%d/%s: typed winner %+v, serial %+v",
						order, shards, out.Name, out.Best, want.Best)
				}
				if out.Result.PrunedCount > want.Result.PrunedCount {
					t.Fatalf("%v/shards=%d/%s: pruned %d > serial %d (sharded pruning must be conservative)",
						order, shards, out.Name, out.Result.PrunedCount, want.Result.PrunedCount)
				}
				if out.Result.TotalSamples < want.Result.TotalSamples {
					t.Fatalf("%v/shards=%d/%s: samples %d < serial %d",
						order, shards, out.Name, out.Result.TotalSamples, want.Result.TotalSamples)
				}
				if len(out.Result.All) != len(want.Result.All) {
					t.Fatalf("%v/shards=%d/%s: %d outcomes, serial %d",
						order, shards, out.Name, len(out.Result.All), len(want.Result.All))
				}
				// Traversal-order reassembly: outcome i is the same
				// configuration in both runs.
				for j := range out.Result.All {
					if out.Result.All[j].Key != want.Result.All[j].Key {
						t.Fatalf("%v/shards=%d/%s: All[%d] = %s, serial %s",
							order, shards, out.Name, j, out.Result.All[j].Key, want.Result.All[j].Key)
					}
				}
			}
		}
	}
}

func TestSpecCaseShardsOverride(t *testing.T) {
	// A Spec-level shard count overrides the Runner's; winners stay
	// identical either way (that is the whole invariance contract), so
	// the override is observable only as a green run across mixed specs.
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := testRunner(true).Run(context.Background(), buildSpecs(t, sys, 1021))
	if err != nil {
		t.Fatal(err)
	}
	r := testRunner(false)
	r.CaseShards = 4
	specs := buildSpecs(t, sys, 1021)
	specs[0].CaseShards = 1  // force this sweep serial
	specs[1].CaseShards = -1 // negative behaves as serial too
	outs, err := r.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out.Result.Best.Key != serial[i].Result.Best.Key || out.BestValue() != serial[i].BestValue() {
			t.Fatalf("%s: winner %s (%v), serial %s (%v)", out.Name,
				out.Result.Best.Key, out.BestValue(),
				serial[i].Result.Best.Key, serial[i].BestValue())
		}
	}
}

func TestCaseShardsHooksConcurrent(t *testing.T) {
	// Case-evaluated hooks fire from shard workers; this exercises the
	// fan-in under -race and checks nothing is lost or duplicated.
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu    sync.Mutex
		cases = map[string]int{}
	)
	r := testRunner(false)
	r.CaseShards = parallel.DefaultThreads()
	r.Hooks.CaseEvaluated = func(sweep string, out *bench.Outcome) {
		mu.Lock()
		defer mu.Unlock()
		cases[sweep+"/"+out.Key]++
	}
	specs := buildSpecs(t, sys, 1021)
	if _, err := r.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, s := range specs {
		want += len(s.Cases)
	}
	if len(cases) != want {
		t.Fatalf("hook saw %d distinct cases, want %d", len(cases), want)
	}
	for key, n := range cases {
		if n != 1 {
			t.Fatalf("case %s evaluated %d times", key, n)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	for _, serial := range []bool{true, false} {
		ctx, cancel := context.WithCancel(context.Background())
		r := testRunner(serial)
		var once sync.Once
		r.Hooks.CaseEvaluated = func(string, *bench.Outcome) { once.Do(cancel) }
		_, err := r.Run(ctx, buildSpecs(t, sys, 1021))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("serial=%v: err = %v, want context.Canceled", serial, err)
		}
		cancel()
	}
}

func TestRunPreCanceled(t *testing.T) {
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := buildSpecs(t, sys, 1021)
	if _, err := testRunner(false).Run(ctx, specs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Nothing may have run: every engine clock is still at zero.
	for _, s := range specs {
		if s.Clock.Now() != 0 {
			t.Fatalf("sweep %s ran under a pre-canceled context", s.Name)
		}
	}
}

func TestRunHooks(t *testing.T) {
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu      sync.Mutex
		started []string
		cases   int
		won     []string
	)
	r := testRunner(false)
	r.Hooks = Hooks{
		SweepStarted: func(name string, n int) {
			mu.Lock()
			defer mu.Unlock()
			started = append(started, name)
			if n <= 0 {
				t.Errorf("sweep %s started with %d cases", name, n)
			}
		},
		CaseEvaluated: func(name string, out *bench.Outcome) {
			mu.Lock()
			defer mu.Unlock()
			cases++
			if out == nil || out.Describe == "" {
				t.Errorf("sweep %s delivered a malformed outcome", name)
			}
		},
		SweepWon: func(o *Outcome) {
			mu.Lock()
			defer mu.Unlock()
			won = append(won, o.Name)
			if o.Best == nil {
				t.Errorf("sweep %s won without a typed config", o.Name)
			}
		},
	}
	specs := buildSpecs(t, sys, 1021)
	if _, err := r.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if len(started) != len(specs) || len(won) != len(specs) {
		t.Fatalf("started %d, won %d, want %d each", len(started), len(won), len(specs))
	}
	if cases < len(specs) {
		t.Fatalf("case hook fired %d times for %d sweeps", cases, len(specs))
	}
}
