package sweep

import (
	"testing"

	"rooftune/internal/parallel"
)

// TestRunnerHostClamp pins the Host budget's worker arithmetic: Host
// substitutes for the machine's thread count everywhere the Runner sizes
// a pool, so a serving tier handing each run a slice of the host bounds
// its sweep-level concurrency without touching results.
func TestRunnerHostClamp(t *testing.T) {
	def := parallel.DefaultThreads()
	tests := []struct {
		name string
		r    Runner
		want int
	}{
		{"host caps default workers", Runner{Host: 2}, 2},
		{"host caps explicit workers", Runner{Host: 2, Workers: 8}, 2},
		{"workers below host kept", Runner{Host: 4, Workers: 3}, 3},
		{"serial wins over host", Runner{Host: 4, Serial: true}, 1},
		{"zero host falls back to machine", Runner{Workers: def + 5}, def},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.r.workerCount(); got != tc.want {
				t.Fatalf("workerCount() = %d, want %d", got, tc.want)
			}
		})
	}
	if got := (&Runner{Host: 3}).hostThreads(); got != 3 {
		t.Fatalf("hostThreads() = %d, want 3", got)
	}
	if got := (&Runner{}).hostThreads(); got != def {
		t.Fatalf("hostThreads() default = %d, want %d", got, def)
	}
}
