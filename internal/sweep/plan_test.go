package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"rooftune/internal/bench"
	"rooftune/internal/hw"
	"rooftune/internal/vclock"
)

// flopsSpec builds a tiny FLOP/s sweep for graph-shape tests (the cases
// are never executed by the validation tests).
func flopsSpec(name string) Spec {
	sys, err := hw.Get("2650v4")
	if err != nil {
		panic(err)
	}
	eng := bench.NewSimEngine(sys, 1021)
	return Spec{Name: name, Clock: eng.Clock, Cases: []bench.Case{
		eng.DGEMMCase(512, 512, 128, 1),
	}}
}

func bandwidthSpec(name string, elems int) Spec {
	sys, err := hw.Get("2650v4")
	if err != nil {
		panic(err)
	}
	eng := bench.NewSimEngine(sys, 1021)
	return Spec{Name: name, Clock: eng.Clock, Cases: []bench.Case{
		eng.TriadCase(elems, hw.AffinityClose, 1),
	}}
}

func TestPlanViolations(t *testing.T) {
	tests := []struct {
		name  string
		nodes []Node
		want  string
	}{
		{"empty id", []Node{{ID: "", Spec: flopsSpec("a")}}, "empty plan-graph ID"},
		{"duplicate id", []Node{
			{ID: "a", Spec: flopsSpec("a")}, {ID: "a", Spec: flopsSpec("b")},
		}, "share plan-graph ID"},
		{"unknown edge", []Node{
			{ID: "a", SeedFrom: "ghost", Spec: flopsSpec("a")},
		}, "unknown node"},
		{"self edge", []Node{
			{ID: "a", SeedFrom: "a", Spec: flopsSpec("a")},
		}, "seeds from itself"},
		{"cycle", []Node{
			{ID: "a", SeedFrom: "b", Spec: flopsSpec("a")},
			{ID: "b", SeedFrom: "a", Spec: flopsSpec("b")},
		}, "cycle"},
		{"cross metric", []Node{
			{ID: "flops", Spec: flopsSpec("flops")},
			{ID: "bw", SeedFrom: "flops", Spec: bandwidthSpec("bw", 1<<18)},
		}, "cross-metric"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			errs := PlanViolations(tc.nodes)
			if len(errs) == 0 {
				t.Fatalf("violation not caught")
			}
			found := false
			for _, err := range errs {
				found = found || strings.Contains(err.Error(), tc.want)
			}
			if !found {
				t.Fatalf("no violation mentions %q: %v", tc.want, errs)
			}
			if err := ValidatePlan(tc.nodes); err == nil {
				t.Fatal("ValidatePlan must reject what PlanViolations flags")
			}
		})
	}

	good := []Node{
		{ID: "a", Spec: flopsSpec("a")},
		{ID: "b", SeedFrom: "a", Spec: flopsSpec("b")},
		{ID: "c", SeedFrom: "b", Spec: flopsSpec("c")},
		{ID: "d", Spec: bandwidthSpec("d", 1<<18)},
	}
	if errs := PlanViolations(good); len(errs) != 0 {
		t.Fatalf("well-formed graph rejected: %v", errs)
	}
}

// chainNodes builds a two-level TRIAD chain on a paper system: a DRAM
// sweep seeding an L3 sweep — the increasing-bandwidth direction where a
// seed can only prune configurations below an already-measured winner.
func chainNodes(seed uint64) []Node {
	sys, err := hw.Get("2650v4")
	if err != nil {
		panic(err)
	}
	mk := func(name string, elems []int) Spec {
		eng := bench.NewSimEngine(sys, seed)
		var cases []bench.Case
		for _, n := range elems {
			cases = append(cases, eng.TriadCase(n, hw.AffinityClose, 1))
		}
		return Spec{Name: name, Clock: eng.Clock, Cases: cases}
	}
	dramElems := []int{1 << 24, 1 << 25, 1 << 26}
	l3Elems := []int{1 << 18, 1 << 19, 1 << 20}
	return []Node{
		{ID: "triad/DRAM/1s", Spec: mk("TRIAD DRAM", dramElems)},
		{ID: "triad/L3/1s", SeedFrom: "triad/DRAM/1s", Spec: mk("TRIAD L3", l3Elems)},
	}
}

// TestRunPlanChainDeterminism is the chained-plan determinism suite: the
// winners and values of a seeded chain must be bit-identical to the same
// sweeps run unchained, across serial, concurrent and case-sharded
// schedules — only pruning counts and sample totals may move, and only
// toward more pruning / fewer samples.
func TestRunPlanChainDeterminism(t *testing.T) {
	const seed = 1021
	baseline, err := testRunner(true).Run(context.Background(), []Spec{
		chainNodes(seed)[0].Spec, chainNodes(seed)[1].Spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		runner *Runner
	}{
		{"serial", testRunner(true)},
		{"concurrent", testRunner(false)},
		{"case-sharded", func() *Runner { r := testRunner(false); r.CaseShards = 4; return r }()},
	} {
		t.Run(mode.name, func(t *testing.T) {
			outs, err := mode.runner.RunPlan(context.Background(), chainNodes(seed))
			if err != nil {
				t.Fatal(err)
			}
			if len(outs) != 2 {
				t.Fatalf("outcomes: %d", len(outs))
			}
			for i, out := range outs {
				want := baseline[i]
				if out.Result.Best.Key != want.Result.Best.Key || out.BestValue() != want.BestValue() {
					t.Fatalf("%s: winner %s (%v), unchained %s (%v): chaining must not change winners",
						out.Name, out.Result.Best.Key, out.BestValue(),
						want.Result.Best.Key, want.BestValue())
				}
				if out.Result.BestPruned {
					t.Fatalf("%s: winner flagged as salvage in a well-ordered chain", out.Name)
				}
			}
			// The chain's knowledge can only add pruning, never remove it
			// (the dependent sweep starts with a measured lower bound).
			if outs[1].Result.PrunedCount < baseline[1].Result.PrunedCount {
				t.Fatalf("chained pruning %d < unchained %d", outs[1].Result.PrunedCount, baseline[1].Result.PrunedCount)
			}
			if outs[1].Result.TotalSamples > baseline[1].Result.TotalSamples {
				t.Fatalf("chained samples %d > unchained %d", outs[1].Result.TotalSamples, baseline[1].Result.TotalSamples)
			}
			// Seeding provenance.
			if outs[0].SeededFrom != "" || outs[0].ID != "triad/DRAM/1s" {
				t.Fatalf("root outcome mislabelled: %+v", outs[0])
			}
			if outs[1].SeededFrom != "triad/DRAM/1s" || outs[1].SeedValue != outs[0].BestValue() {
				t.Fatalf("dependent outcome not seeded by the root winner: SeededFrom=%q SeedValue=%v (root %v)",
					outs[1].SeededFrom, outs[1].SeedValue, outs[0].BestValue())
			}
		})
	}
}

// TestRunPlanSeedHook checks the SweepSeeded hook fires once per seeded
// edge with the dependency's winner.
func TestRunPlanSeedHook(t *testing.T) {
	r := testRunner(false)
	var (
		mu    sync.Mutex
		seeds []string
	)
	r.Hooks.SweepSeeded = func(id, from string, value float64) {
		mu.Lock()
		defer mu.Unlock()
		seeds = append(seeds, fmt.Sprintf("%s<-%s@%v", id, from, value > 0))
	}
	outs, err := r.RunPlan(context.Background(), chainNodes(1021))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 1 || seeds[0] != "triad/L3/1s<-triad/DRAM/1s@true" {
		t.Fatalf("seed hook calls: %v", seeds)
	}
	if outs[1].SeedValue <= 0 {
		t.Fatalf("seed value: %v", outs[1].SeedValue)
	}
}

// TestRunPlanOverPrunedSeed chains in the wrong direction — a fast sweep
// seeding a slow one — so every dependent configuration is outer-pruned;
// the dependent outcome must surface the salvage flag rather than posing
// as a measurement.
func TestRunPlanOverPrunedSeed(t *testing.T) {
	sys, err := hw.Get("2650v4")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, elems []int) Spec {
		eng := bench.NewSimEngine(sys, 1021)
		var cases []bench.Case
		for _, n := range elems {
			cases = append(cases, eng.TriadCase(n, hw.AffinityClose, 1))
		}
		return Spec{Name: name, Clock: eng.Clock, Cases: cases}
	}
	nodes := []Node{
		{ID: "l3", Spec: mk("L3", []int{1 << 18, 1 << 19})},
		{ID: "dram", SeedFrom: "l3", Spec: mk("DRAM", []int{1 << 24, 1 << 25})},
	}
	outs, err := testRunner(true).RunPlan(context.Background(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !outs[1].Result.BestPruned {
		t.Fatalf("DRAM sweep seeded with an L3 winner must be fully outer-pruned: %+v", outs[1].Result)
	}
	if outs[1].Result.Best == nil {
		t.Fatal("salvage value missing")
	}
}

func TestRunPlanDependencyFailure(t *testing.T) {
	nodes := []Node{
		{ID: "broken", Spec: Spec{Name: "broken", Clock: vclock.NewVirtual(), Cases: []bench.Case{failingCase{}}}},
		{ID: "child", SeedFrom: "broken", Spec: flopsSpec("child")},
	}
	_, err := testRunner(false).RunPlan(context.Background(), nodes)
	if err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("err = %v, want the root failure", err)
	}
	// The child never ran: its engine clock is still at zero.
	if nodes[1].Spec.Clock.Now() != 0 {
		t.Fatal("dependent sweep ran despite its dependency failing")
	}
}

func TestRunPlanRejectsMalformedGraph(t *testing.T) {
	nodes := []Node{{ID: "a", SeedFrom: "nope", Spec: flopsSpec("a")}}
	if _, err := testRunner(false).RunPlan(context.Background(), nodes); err == nil {
		t.Fatal("malformed graph must be rejected before anything runs")
	}
	if nodes[0].Spec.Clock.Now() != 0 {
		t.Fatal("sweep ran under a malformed graph")
	}
	if _, err := testRunner(false).RunPlan(context.Background(), nil); err == nil {
		t.Fatal("empty plan must error")
	}
}

func TestRunPlanCancellation(t *testing.T) {
	for _, serial := range []bool{true, false} {
		ctx, cancel := context.WithCancel(context.Background())
		r := testRunner(serial)
		var once sync.Once
		r.Hooks.CaseEvaluated = func(string, *bench.Outcome) { once.Do(cancel) }
		_, err := r.RunPlan(ctx, chainNodes(1021))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("serial=%v: err = %v, want context.Canceled", serial, err)
		}
		cancel()
	}
}

// TestAdaptiveShards pins the adaptive case-shard policy: explicit counts
// win, sweep-level saturation disables sharding, spare parallelism is
// split across concurrent sweeps, and tiny sweeps stay serial.
func TestAdaptiveShards(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	cases := func(n int) Spec {
		s := flopsSpec("x")
		for len(s.Cases) < n {
			s.Cases = append(s.Cases, s.Cases[0])
		}
		return s
	}
	r := func(serial bool, workers, caseShards int) *Runner {
		return &Runner{Serial: serial, Workers: workers, CaseShards: caseShards}
	}
	tests := []struct {
		name       string
		r          *Runner
		spec       Spec
		concurrent int
		want       int
	}{
		{"runner pin wins", r(false, 0, 1), cases(100), 4, 1},
		{"runner fixed wins", r(false, 0, 3), cases(100), 4, 3},
		{"saturated host stays serial", r(false, 0, 0), cases(100), 8, 1},
		{"serial runner stays fully serial", r(true, 0, 0), cases(100), 8, 1},
		{"spare split across sweeps", r(false, 2, 0), cases(100), 2, 4},
		{"tiny sweep stays serial", r(false, 1, 0), cases(4), 8, 1},
		{"case cap bounds the pool", r(false, 2, 0), cases(17), 2, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.r.shardsFor(tc.spec, tc.concurrent); got != tc.want {
				t.Fatalf("shardsFor = %d, want %d", got, tc.want)
			}
		})
	}

	spec := cases(100)
	spec.CaseShards = 2
	if got := r(false, 0, 5).shardsFor(spec, 4); got != 2 {
		t.Fatalf("spec override = %d, want 2", got)
	}
}
