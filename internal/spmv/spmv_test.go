package spmv

import (
	"math"
	"reflect"
	"testing"

	"rooftune/internal/parallel"
	"rooftune/internal/units"
)

func TestSyntheticShape(t *testing.T) {
	a := Synthetic(100, 8, 1021)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 100*8 {
		t.Fatalf("nnz = %d, want %d", a.NNZ(), 100*8)
	}
	for i := 0; i < a.N; i++ {
		if n := a.RowPtr[i+1] - a.RowPtr[i]; n != 8 {
			t.Fatalf("row %d has %d nonzeros, want 8", i, n)
		}
		diag := false
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if p > a.RowPtr[i] && a.Col[p] <= a.Col[p-1] {
				t.Fatalf("row %d columns not strictly ascending", i)
			}
			if int(a.Col[p]) == i {
				diag = true
			}
		}
		if !diag {
			t.Fatalf("row %d missing its diagonal", i)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(256, 12, 7)
	b := Synthetic(256, 12, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal (n, nnzPerRow, seed) must build identical matrices")
	}
	c := Synthetic(256, 12, 8)
	if reflect.DeepEqual(a.Col, c.Col) && reflect.DeepEqual(a.Val, c.Val) {
		t.Fatal("different seeds built identical matrices")
	}
}

func TestSyntheticClampsDensity(t *testing.T) {
	a := Synthetic(4, 100, 1) // nnzPerRow > n must clamp to a full row
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 16 {
		t.Fatalf("nnz = %d, want dense 16", a.NNZ())
	}
}

func TestMulChunkedMatchesSerial(t *testing.T) {
	a := Synthetic(513, 9, 1021) // odd size: exercises ragged last chunk
	x := make([]float64, a.N)
	for i := range x {
		x[i] = float64(i%17) - 8
	}
	want := make([]float64, a.N)
	Mul(want, a, x)

	pool := parallel.NewPool(4)
	defer pool.Close()
	for _, chunk := range []int{1, 7, 64, 513, 4096} {
		got := make([]float64, a.N)
		MulChunked(got, a, x, chunk, pool)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("chunk %d: y[%d] = %g, want %g", chunk, i, got[i], want[i])
			}
		}
	}
}

func TestMulChunkedClosedPoolPanics(t *testing.T) {
	a := Synthetic(8, 2, 1)
	x := make([]float64, a.N)
	y := make([]float64, a.N)
	pool := parallel.NewPool(1)
	pool.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("MulChunked on a closed pool must panic, not record phantom work")
		}
	}()
	MulChunked(y, a, x, 4, pool)
}

func TestIntensityBetweenTriadAndDGEMM(t *testing.T) {
	a := Synthetic(4096, 16, 1021)
	i := a.Intensity()
	if i <= units.TriadIntensity {
		t.Fatalf("SpMV intensity %v not above TRIAD's %v", i, units.TriadIntensity)
	}
	// The smallest DGEMM intensity in any built-in space (n=m=500, k=64)
	// still dwarfs a sparse kernel's.
	if dg := units.DGEMMIntensity(500, 500, 64); i >= dg {
		t.Fatalf("SpMV intensity %v not below DGEMM's %v", i, dg)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	a := Synthetic(16, 4, 1)
	a.Col[3] = 99
	if err := a.Validate(); err == nil {
		t.Fatal("out-of-range column must fail validation")
	}
}

func BenchmarkMulChunked(b *testing.B) {
	a := Synthetic(1<<15, 16, 1021)
	x := make([]float64, a.N)
	y := make([]float64, a.N)
	for i := range x {
		x[i] = 1
	}
	pool := parallel.NewPool(parallel.DefaultThreads())
	defer pool.Close()
	b.SetBytes(int64(a.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulChunked(y, a, x, 256, pool)
	}
}

func BenchmarkMulSerial(b *testing.B) {
	a := Synthetic(1<<15, 16, 1021)
	x := make([]float64, a.N)
	y := make([]float64, a.N)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(int64(a.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(y, a, x)
	}
}
