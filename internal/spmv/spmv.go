// Package spmv is the native sparse kernel substrate: a CSR sparse
// matrix-vector product (y = A*x) parallelised over row chunks, plus the
// density-parameterised synthetic matrices the SpMV workload tunes on.
// SpMV's arithmetic intensity sits between TRIAD's and DGEMM's — two
// FLOPs per stored element against twelve bytes of value+index traffic —
// which is exactly the memory-bound roofline region the paper's §VII
// names as the next benchmarking target.
package spmv

import (
	"fmt"

	"rooftune/internal/parallel"
	"rooftune/internal/units"
	"rooftune/internal/xrand"
)

// CSR is a compressed-sparse-row matrix of size N x N. Column indices are
// int32: halving the index footprint against the 8-byte values is what
// gives SpMV its characteristic 12-bytes-per-nonzero stream.
type CSR struct {
	N      int
	RowPtr []int     // len N+1; row i occupies [RowPtr[i], RowPtr[i+1])
	Col    []int32   // len NNZ, ascending within each row
	Val    []float64 // len NNZ
}

// NNZ returns the number of stored elements.
func (a *CSR) NNZ() int { return len(a.Val) }

// Validate reports whether the structure is internally consistent; the
// engines call it once per sweep so a malformed synthetic matrix fails
// loudly rather than producing an out-of-range panic mid-measurement.
func (a *CSR) Validate() error {
	switch {
	case a.N <= 0:
		return fmt.Errorf("spmv: non-positive dimension %d", a.N)
	case len(a.RowPtr) != a.N+1:
		return fmt.Errorf("spmv: RowPtr length %d, want %d", len(a.RowPtr), a.N+1)
	case a.RowPtr[0] != 0 || a.RowPtr[a.N] != len(a.Val):
		return fmt.Errorf("spmv: RowPtr bounds [%d, %d], want [0, %d]", a.RowPtr[0], a.RowPtr[a.N], len(a.Val))
	case len(a.Col) != len(a.Val):
		return fmt.Errorf("spmv: %d columns for %d values", len(a.Col), len(a.Val))
	}
	for i := 0; i < a.N; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("spmv: row %d has negative length", i)
		}
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if c := int(a.Col[p]); c < 0 || c >= a.N {
				return fmt.Errorf("spmv: row %d column %d out of range", i, c)
			}
		}
	}
	return nil
}

// Synthetic builds a deterministic n x n matrix with nnzPerRow stored
// elements per row: the diagonal plus nnzPerRow-1 pseudo-random
// off-diagonal columns drawn from a seeded stream, so equal (n, nnzPerRow,
// seed) triples build bit-identical matrices on every host. The density
// nnzPerRow/n parameterises where the workload's intensity lands; the
// scattered columns are what exercise the gather-heavy access pattern that
// separates SpMV from TRIAD.
func Synthetic(n, nnzPerRow int, seed uint64) *CSR {
	if n <= 0 {
		panic(fmt.Sprintf("spmv: Synthetic with n=%d", n))
	}
	if nnzPerRow < 1 {
		nnzPerRow = 1
	}
	if nnzPerRow > n {
		nnzPerRow = n
	}
	a := &CSR{
		N:      n,
		RowPtr: make([]int, n+1),
		Col:    make([]int32, 0, n*nnzPerRow),
		Val:    make([]float64, 0, n*nnzPerRow),
	}
	rng := xrand.New(xrand.Mix(seed, 0x59a3, uint64(n), uint64(nnzPerRow)))
	cols := make([]int32, 0, nnzPerRow)
	seen := make(map[int32]bool, nnzPerRow)
	for i := 0; i < n; i++ {
		cols = cols[:0]
		for k := range seen {
			delete(seen, k)
		}
		cols = append(cols, int32(i)) // diagonal anchors every row
		seen[int32(i)] = true
		for len(cols) < nnzPerRow {
			c := int32(rng.Intn(n))
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
		sortInt32(cols)
		for _, c := range cols {
			a.Col = append(a.Col, c)
			// Values in (0, 1], derived from the position so the product is
			// checkable without storing a dense mirror.
			a.Val = append(a.Val, 0.5+0.5*rng.Float64())
		}
		a.RowPtr[i+1] = len(a.Val)
	}
	return a
}

// sortInt32 is an insertion sort: rows hold tens of columns, below the
// crossover where sort.Slice's interface overhead wins.
func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Flops returns the floating-point work of one y = A*x: a multiply and an
// add per stored element.
func (a *CSR) Flops() float64 { return 2 * float64(a.NNZ()) }

// Bytes returns the minimum memory traffic of one y = A*x in bytes: the
// value and int32 column streams, one pass over RowPtr, x loaded once
// (the gather lower bound) and y written once. Real traffic is higher
// when the gather misses; like units.DGEMMBytes this lower bound is what
// places the kernel on the roofline's intensity axis.
func (a *CSR) Bytes() float64 {
	return 12*float64(a.NNZ()) + 8*float64(len(a.RowPtr)) + 16*float64(a.N)
}

// Intensity returns the kernel's operational intensity I = W/Q.
func (a *CSR) Intensity() units.Intensity {
	return units.Intensity(a.Flops() / a.Bytes())
}

// Mul computes y = A*x serially — the reference the parallel kernel is
// tested against. It panics on shape mismatch, mirroring blas.DGEMM.
func Mul(y []float64, a *CSR, x []float64) {
	checkShapes(y, a, x)
	mulRows(y, a, x, 0, a.N)
}

// MulChunked computes y = A*x on the pool, splitting the rows into
// chunkRows-row tasks distributed over the workers. The chunk size is the
// kernel's tuning knob: small chunks interleave finely (good balance, more
// scheduling passes), large chunks stream longer row runs (better locality,
// coarser balance) — the autotuner picks, exactly as it picks DGEMM's
// dimensions. A closed pool panics, like stream.RunPool: a measurement
// site must fail loudly, not record work that never happened.
func MulChunked(y []float64, a *CSR, x []float64, chunkRows int, pool *parallel.Pool) {
	checkShapes(y, a, x)
	if chunkRows < 1 {
		chunkRows = 1
	}
	chunks := (a.N + chunkRows - 1) / chunkRows
	ran := pool.Run(chunks, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			r0 := c * chunkRows
			r1 := min(r0+chunkRows, a.N)
			mulRows(y, a, x, r0, r1)
		}
	})
	if !ran {
		panic("spmv: MulChunked on a closed pool")
	}
}

// mulRows computes the row range [r0, r1) of y = A*x.
func mulRows(y []float64, a *CSR, x []float64, r0, r1 int) {
	for i := r0; i < r1; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		var sum float64
		cols, vals := a.Col[lo:hi], a.Val[lo:hi]
		for p, c := range cols {
			sum += vals[p] * x[c]
		}
		y[i] = sum
	}
}

func checkShapes(y []float64, a *CSR, x []float64) {
	if len(y) != a.N || len(x) != a.N {
		panic(fmt.Sprintf("spmv: shape mismatch: A %dx%d, x %d, y %d", a.N, a.N, len(x), len(y)))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
