// Package metrics is the serving tier's observability plane: a
// dependency-free Prometheus-text-format (version 0.0.4) exposition of
// counters, gauges and histograms, served at GET /metrics.
//
// Two instrument styles cover the daemon's needs without a registry of
// callbacks woven through every package. Push instruments (Counter,
// Histogram) are handed to the component that observes the event — the
// admission controller pushes every queue-wait duration into its
// histogram. Pull instruments (CounterFunc, GaugeFunc) snapshot a
// component's own counters at scrape time — the cache's hit/miss/
// eviction counts are read from cache.Stats() when /metrics is scraped,
// so the exposition always reconciles exactly with the component's
// internal accounting and no double bookkeeping can drift.
//
// Scrapes take each component's lock only inside its own Stats method
// and never hold two locks at once, which keeps the exposition path
// inside the serving tier's lockorder discipline.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// nameRE is the Prometheus metric-name grammar; labels are validated as
// a rendered `k="v"` list by labelRE.
var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*$`)
)

// Counter is a monotonically increasing push instrument.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram is a push instrument with fixed upper-bound buckets and the
// conventional cumulative rendering (+Inf bucket, _sum, _count).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds, +Inf implicit
	counts []uint64  // len(bounds)+1, last is the +Inf overflow
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// snapshot copies the histogram state for rendering.
func (h *Histogram) snapshot() (counts []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...), h.sum, h.count
}

// kind is the TYPE line a family advertises.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// series is one sample line within a family: a label set and how to
// read its current value(s).
type series struct {
	labels  string
	counter *Counter
	hist    *Histogram
	fnU     func() uint64
	fnF     func() float64
}

// family groups the series sharing one metric name: one HELP/TYPE pair,
// then each series in registration order.
type family struct {
	name   string
	help   string
	kind   kind
	series []*series
}

// Set is an ordered collection of metric families; it renders the
// exposition and serves it over HTTP.
type Set struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewSet builds an empty metric set.
func NewSet() *Set {
	return &Set{byName: make(map[string]*family)}
}

// register validates and attaches a series, creating the family on
// first sight. Mis-registration is a programming error and panics.
func (s *Set) register(name, labels, help string, k kind, sr *series) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	if labels != "" && !labelRE.MatchString(labels) {
		panic(fmt.Sprintf("metrics: invalid label rendering %q on %s", labels, name))
	}
	sr.labels = labels
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: k}
		s.byName[name] = f
		s.families = append(s.families, f)
	}
	if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.kind, k))
	}
	for _, existing := range f.series {
		if existing.labels == labels {
			panic(fmt.Sprintf("metrics: duplicate series %s{%s}", name, labels))
		}
	}
	f.series = append(f.series, sr)
}

// Counter registers and returns a push counter. labels is a rendered
// Prometheus label list (`reason="queue_full"`) or empty.
func (s *Set) Counter(name, labels, help string) *Counter {
	c := &Counter{}
	s.register(name, labels, help, kindCounter, &series{counter: c})
	return c
}

// CounterFunc registers a pull counter: fn is read at scrape time and
// must be monotonically non-decreasing (snapshot a component's own
// counter, don't compute).
func (s *Set) CounterFunc(name, labels, help string, fn func() uint64) {
	s.register(name, labels, help, kindCounter, &series{fnU: fn})
}

// GaugeFunc registers a pull gauge read at scrape time.
func (s *Set) GaugeFunc(name, labels, help string, fn func() float64) {
	s.register(name, labels, help, kindGauge, &series{fnF: fn})
}

// Histogram registers a push histogram over the given strictly
// increasing upper bounds (the +Inf bucket is implicit).
func (s *Set) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s bucket bounds not strictly increasing", name))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	s.register(name, "", help, kindHistogram, &series{hist: h})
	return h
}

// Render writes the exposition in registration order.
func (s *Set) Render(w io.Writer) error {
	s.mu.Lock()
	families := append([]*family(nil), s.families...)
	s.mu.Unlock()
	for _, f := range families {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, sr := range f.series {
			if err := renderSeries(w, f.name, sr); err != nil {
				return err
			}
		}
	}
	return nil
}

func renderSeries(w io.Writer, name string, sr *series) error {
	sample := func(suffix, labels, value string) error {
		if labels != "" {
			_, err := fmt.Fprintf(w, "%s%s{%s} %s\n", name, suffix, labels, value)
			return err
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, suffix, value)
		return err
	}
	switch {
	case sr.counter != nil:
		return sample("", sr.labels, strconv.FormatUint(sr.counter.Value(), 10))
	case sr.fnU != nil:
		return sample("", sr.labels, strconv.FormatUint(sr.fnU(), 10))
	case sr.fnF != nil:
		return sample("", sr.labels, formatFloat(sr.fnF()))
	case sr.hist != nil:
		counts, sum, count := sr.hist.snapshot()
		cum := uint64(0)
		for i, bound := range sr.hist.bounds {
			cum += counts[i]
			if err := sample("_bucket", fmt.Sprintf("le=%q", formatFloat(bound)), strconv.FormatUint(cum, 10)); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if err := sample("_bucket", `le="+Inf"`, strconv.FormatUint(cum, 10)); err != nil {
			return err
		}
		if err := sample("_sum", "", formatFloat(sum)); err != nil {
			return err
		}
		return sample("_count", "", strconv.FormatUint(count, 10))
	}
	return nil
}

// formatFloat renders values the way Prometheus expects: shortest
// round-trip representation, infinities spelled +Inf/-Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ServeHTTP serves the exposition (GET /metrics).
func (s *Set) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.Render(w)
}
