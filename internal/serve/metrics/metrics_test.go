package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, s *Set) string {
	t.Helper()
	var sb strings.Builder
	if err := s.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestCounterRendering(t *testing.T) {
	s := NewSet()
	c := s.Counter("roofserve_test_total", "", "a test counter")
	c.Inc()
	c.Add(2)

	want := "# HELP roofserve_test_total a test counter\n" +
		"# TYPE roofserve_test_total counter\n" +
		"roofserve_test_total 3\n"
	if got := render(t, s); got != want {
		t.Fatalf("rendering:\n got: %q\nwant: %q", got, want)
	}
}

// TestLabeledFamilySharesHelpType: series with distinct labels under one
// name render one HELP/TYPE pair followed by each sample, in
// registration order.
func TestLabeledFamilySharesHelpType(t *testing.T) {
	s := NewSet()
	qf := s.Counter("roofserve_shed_total", `reason="queue_full"`, "sheds by reason")
	cq := s.Counter("roofserve_shed_total", `reason="client_quota"`, "sheds by reason")
	qf.Add(5)
	cq.Inc()

	want := "# HELP roofserve_shed_total sheds by reason\n" +
		"# TYPE roofserve_shed_total counter\n" +
		"roofserve_shed_total{reason=\"queue_full\"} 5\n" +
		"roofserve_shed_total{reason=\"client_quota\"} 1\n"
	if got := render(t, s); got != want {
		t.Fatalf("rendering:\n got: %q\nwant: %q", got, want)
	}
}

// TestPullInstruments: CounterFunc and GaugeFunc read their source at
// scrape time, so two scrapes see the live value without any push.
func TestPullInstruments(t *testing.T) {
	s := NewSet()
	var hits uint64
	var depth float64
	s.CounterFunc("roofserve_hits_total", "", "pull counter", func() uint64 { return hits })
	s.GaugeFunc("roofserve_depth", "", "pull gauge", func() float64 { return depth })

	if got := render(t, s); !strings.Contains(got, "roofserve_hits_total 0\n") || !strings.Contains(got, "roofserve_depth 0\n") {
		t.Fatalf("initial scrape:\n%s", got)
	}
	hits, depth = 7, 2.5
	got := render(t, s)
	if !strings.Contains(got, "roofserve_hits_total 7\n") {
		t.Fatalf("counter did not follow source:\n%s", got)
	}
	if !strings.Contains(got, "# TYPE roofserve_depth gauge\n") || !strings.Contains(got, "roofserve_depth 2.5\n") {
		t.Fatalf("gauge did not follow source:\n%s", got)
	}
}

// TestHistogramRendering pins the conventional cumulative form: buckets
// accumulate, +Inf equals _count, _sum is the value total.
func TestHistogramRendering(t *testing.T) {
	s := NewSet()
	h := s.Histogram("roofserve_wait_seconds", "queue wait", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}

	want := "# HELP roofserve_wait_seconds queue wait\n" +
		"# TYPE roofserve_wait_seconds histogram\n" +
		"roofserve_wait_seconds_bucket{le=\"0.1\"} 1\n" +
		"roofserve_wait_seconds_bucket{le=\"1\"} 3\n" +
		"roofserve_wait_seconds_bucket{le=\"10\"} 4\n" +
		"roofserve_wait_seconds_bucket{le=\"+Inf\"} 5\n" +
		"roofserve_wait_seconds_sum 56.05\n" +
		"roofserve_wait_seconds_count 5\n"
	if got := render(t, s); got != want {
		t.Fatalf("rendering:\n got: %q\nwant: %q", got, want)
	}
}

// TestObserveOnBoundary: a value exactly on a bucket's upper bound lands
// in that bucket (le is inclusive).
func TestObserveOnBoundary(t *testing.T) {
	s := NewSet()
	h := s.Histogram("b_seconds", "boundary", []float64{1})
	h.Observe(1)
	got := render(t, s)
	if !strings.Contains(got, "b_seconds_bucket{le=\"1\"} 1\n") {
		t.Fatalf("boundary value not in its bucket:\n%s", got)
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(s *Set)
	}{
		{"invalid name", func(s *Set) { s.Counter("bad name", "", "h") }},
		{"invalid labels", func(s *Set) { s.Counter("ok_total", `not labels`, "h") }},
		{"kind mismatch", func(s *Set) {
			s.Counter("x_total", "", "h")
			s.GaugeFunc("x_total", "", "h", func() float64 { return 0 })
		}},
		{"duplicate series", func(s *Set) {
			s.Counter("y_total", `a="b"`, "h")
			s.Counter("y_total", `a="b"`, "h")
		}},
		{"non-increasing bounds", func(s *Set) { s.Histogram("h_seconds", "h", []float64{1, 1}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.f(NewSet())
		})
	}
}

func TestServeHTTPContentType(t *testing.T) {
	s := NewSet()
	s.Counter("roofserve_ok_total", "", "h").Inc()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "roofserve_ok_total 1\n") {
		t.Fatalf("body:\n%s", rec.Body.String())
	}
}

// TestConcurrentObserve hammers push instruments while scraping, under
// -race, and checks the final totals.
func TestConcurrentObserve(t *testing.T) {
	s := NewSet()
	c := s.Counter("c_total", "", "h")
	h := s.Histogram("h_seconds", "h", []float64{0.5})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			_ = s.Render(&sb)
		}()
	}
	wg.Wait()

	got := render(t, s)
	if !strings.Contains(got, "c_total 8000\n") {
		t.Fatalf("counter total:\n%s", got)
	}
	if !strings.Contains(got, "h_seconds_count 8000\n") || !strings.Contains(got, "h_seconds_bucket{le=\"0.5\"} 8000\n") {
		t.Fatalf("histogram totals:\n%s", got)
	}
}
