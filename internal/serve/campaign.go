// Package serve is the rooftune daemon: a long-lived HTTP service that
// accepts JSON campaign specs, resolves them through the same Session
// machinery the library exposes, and memoizes every completed Result in
// a content-addressed cache keyed by the session fingerprint.
//
// The contract that makes the cache sound is determinism: served
// campaigns target simulated systems only and run with the case-shard
// count pinned to one, so a campaign's Result is a pure function of its
// fingerprint and a cache hit is byte-for-byte the response a fresh run
// would have produced — with zero kernel executions. Native targets are
// rejected: wall-clock measurements are not content-addressable (the
// same campaign legitimately yields different numbers run to run).
//
// Concurrent identical submissions collapse onto one run (singleflight
// via the jobs registry), and concurrent distinct campaigns divide the
// host under a shared parallelism budget instead of each assuming the
// whole machine.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rooftune"
	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/units"
)

// DimsSpec is one DGEMM search-space point on the wire.
type DimsSpec struct {
	N int `json:"n"`
	M int `json:"m"`
	K int `json:"k"`
}

// BudgetSpec overrides parts of the default evaluation budget (Table I
// with the paper's best technique). Zero-valued fields keep defaults;
// the flag pointers distinguish "unset" from an explicit false.
type BudgetSpec struct {
	Invocations   int   `json:"invocations,omitempty"`
	MaxIterations int   `json:"maxIterations,omitempty"`
	MaxTimeMs     int64 `json:"maxTimeMs,omitempty"`
	Confidence    *bool `json:"confidence,omitempty"`
	InnerBound    *bool `json:"innerBound,omitempty"`
	OuterBound    *bool `json:"outerBound,omitempty"`
	MinCount      int   `json:"minCount,omitempty"`
}

// Campaign is the wire form of a tuning request: which simulated system
// to characterise, with which workloads, under which parameters. Every
// field except System is optional and defaults exactly as the
// corresponding rooftune option does, so an empty override set means
// "the library's default campaign for this system".
type Campaign struct {
	// System names the simulated target (hw.Get). Required: the daemon
	// serves simulated campaigns only.
	System string `json:"system"`
	// Workloads selects registered workloads, default ["dgemm","triad"].
	Workloads []string `json:"workloads,omitempty"`
	// Seed drives the simulated noise streams (default 1021, the paper
	// seed).
	Seed uint64 `json:"seed,omitempty"`
	// Space overrides the DGEMM search space.
	Space []DimsSpec `json:"space,omitempty"`
	// Budget overrides parts of the evaluation budget.
	Budget *BudgetSpec `json:"budget,omitempty"`
	// TriadLoBytes / TriadHiBytes bound the TRIAD working-set sweep.
	TriadLoBytes int64 `json:"triadLoBytes,omitempty"`
	TriadHiBytes int64 `json:"triadHiBytes,omitempty"`
	// TriadLevels selects cache-residency regions (subsets of
	// L1/L2/L3/DRAM).
	TriadLevels []string `json:"triadLevels,omitempty"`
	// Chain enables cross-sweep incumbent chaining (WithSweepChaining).
	Chain bool `json:"chain,omitempty"`
	// SpMV / stencil shapes.
	SpMVN         int `json:"spmvN,omitempty"`
	SpMVNNZPerRow int `json:"spmvNNZPerRow,omitempty"`
	StencilNX     int `json:"stencilNX,omitempty"`
	StencilNY     int `json:"stencilNY,omitempty"`
	// Serial forces serial sweep execution. Results are bit-identical
	// either way; it exists so SSE consumers get a deterministic event
	// order, not just a deterministic Result.
	Serial bool `json:"serial,omitempty"`
}

// ParseCampaign decodes a campaign, rejecting unknown fields — a typoed
// knob must fail the request, not silently run the default campaign and
// cache it under the wrong intent.
func ParseCampaign(r io.Reader) (Campaign, error) {
	var c Campaign
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return c, fmt.Errorf("serve: parse campaign: %w", err)
	}
	if dec.More() {
		return c, fmt.Errorf("serve: parse campaign: trailing data after the campaign object")
	}
	return c, nil
}

// Options resolves the campaign into session options. The case-shard
// count is always pinned to one: adaptive sharding may change the
// search-cost accounting run to run, which would break the cache's
// byte-identity guarantee (see rooftune.Session.Fingerprint).
func (c Campaign) Options() ([]rooftune.Option, error) {
	if c.System == "" {
		return nil, fmt.Errorf("serve: campaign has no system: the daemon serves simulated campaigns only")
	}
	opts := []rooftune.Option{
		rooftune.WithSystem(c.System),
		rooftune.WithCaseShards(1),
	}
	if len(c.Workloads) > 0 {
		opts = append(opts, rooftune.WithWorkloads(c.Workloads...))
	}
	if c.Seed != 0 {
		opts = append(opts, rooftune.WithSeed(c.Seed))
	}
	if len(c.Space) > 0 {
		dims := make([]core.Dims, len(c.Space))
		for i, d := range c.Space {
			dims[i] = core.Dims{N: d.N, M: d.M, K: d.K}
		}
		opts = append(opts, rooftune.WithSpace(dims))
	}
	if c.Budget != nil {
		opts = append(opts, rooftune.WithBudget(c.Budget.resolve()))
	}
	if c.TriadLoBytes != 0 || c.TriadHiBytes != 0 {
		if c.TriadLoBytes < 0 || c.TriadHiBytes < 0 {
			return nil, fmt.Errorf("serve: negative TRIAD bounds %d..%d", c.TriadLoBytes, c.TriadHiBytes)
		}
		opts = append(opts, rooftune.WithTriadRange(units.ByteSize(c.TriadLoBytes), units.ByteSize(c.TriadHiBytes)))
	}
	if len(c.TriadLevels) > 0 {
		opts = append(opts, rooftune.WithTriadLevels(c.TriadLevels...))
	}
	if c.Chain {
		opts = append(opts, rooftune.WithSweepChaining(true))
	}
	if c.SpMVN != 0 || c.SpMVNNZPerRow != 0 {
		opts = append(opts, rooftune.WithSpMVShape(c.SpMVN, c.SpMVNNZPerRow))
	}
	if c.StencilNX != 0 || c.StencilNY != 0 {
		opts = append(opts, rooftune.WithStencilGrid(c.StencilNX, c.StencilNY))
	}
	if c.Serial {
		opts = append(opts, rooftune.WithSerial())
	}
	return opts, nil
}

// resolve applies the spec's overrides on top of the session default
// budget (Table I, Confidence+Inner+Outer).
func (b BudgetSpec) resolve() bench.Budget {
	out := bench.DefaultBudget().WithFlags(true, true, true)
	if b.Invocations > 0 {
		out.Invocations = b.Invocations
	}
	if b.MaxIterations > 0 {
		out.MaxIterations = b.MaxIterations
	}
	if b.MaxTimeMs > 0 {
		out.MaxTime = time.Duration(b.MaxTimeMs) * time.Millisecond
	}
	if b.Confidence != nil {
		out.UseConfidence = *b.Confidence
	}
	if b.InnerBound != nil {
		out.UseInnerBound = *b.InnerBound
	}
	if b.OuterBound != nil {
		out.UseOuterBound = *b.OuterBound
	}
	if b.MinCount > 0 {
		out.MinCount = b.MinCount
	}
	return out
}
