// Package serve is the rooftune daemon: a long-lived HTTP service that
// accepts JSON campaign specs, resolves them through the same Session
// machinery the library exposes, and memoizes every completed Result in
// a content-addressed cache keyed by the session fingerprint.
//
// The contract that makes the cache sound is determinism: served
// campaigns target simulated systems only and run with the case-shard
// count pinned to one, so a campaign's Result is a pure function of its
// fingerprint and a cache hit is byte-for-byte the response a fresh run
// would have produced — with zero kernel executions. Native targets are
// rejected: wall-clock measurements are not content-addressable (the
// same campaign legitimately yields different numbers run to run).
//
// Concurrent identical submissions collapse onto one run (singleflight
// via the jobs registry), concurrent distinct campaigns divide the host
// under a shared parallelism budget instead of each assuming the whole
// machine, and an admission controller bounds how many runs execute and
// wait at once — excess load is shed deterministically with 429 +
// Retry-After rather than queued without bound.
//
// The wire contract itself (Campaign, JobStatus, the error envelope)
// lives in the versioned rooftune/serve/v1 package; this package keeps
// aliases for compatibility and owns only the behaviour — resolving a
// wire campaign into session options.
package serve

import (
	"fmt"
	"io"
	"time"

	"rooftune"
	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/units"
	servev1 "rooftune/serve/v1"
)

// The wire types are defined in rooftune/serve/v1 (the versioned
// contract pinned by api/serve_v1.txt); these aliases keep the serving
// tier's internal code and tests on their historical names.
type (
	// Campaign is the wire form of a tuning request.
	Campaign = servev1.Campaign
	// DimsSpec is one DGEMM search-space point on the wire.
	DimsSpec = servev1.DimsSpec
	// BudgetSpec overrides parts of the default evaluation budget.
	BudgetSpec = servev1.BudgetSpec
)

// ParseCampaign decodes a campaign, rejecting unknown fields — a typoed
// knob must fail the request, not silently run the default campaign and
// cache it under the wrong intent.
func ParseCampaign(r io.Reader) (Campaign, error) {
	return servev1.ParseCampaign(r)
}

// CampaignOptions resolves a wire campaign into session options. The
// case-shard count is always pinned to one: adaptive sharding may
// change the search-cost accounting run to run, which would break the
// cache's byte-identity guarantee (see rooftune.Session.Fingerprint).
func CampaignOptions(c Campaign) ([]rooftune.Option, error) {
	if c.System == "" {
		return nil, fmt.Errorf("serve: campaign has no system: the daemon serves simulated campaigns only")
	}
	opts := []rooftune.Option{
		rooftune.WithSystem(c.System),
		rooftune.WithCaseShards(1),
	}
	if len(c.Workloads) > 0 {
		opts = append(opts, rooftune.WithWorkloads(c.Workloads...))
	}
	if c.Seed != 0 {
		opts = append(opts, rooftune.WithSeed(c.Seed))
	}
	if len(c.Space) > 0 {
		dims := make([]core.Dims, len(c.Space))
		for i, d := range c.Space {
			dims[i] = core.Dims{N: d.N, M: d.M, K: d.K}
		}
		opts = append(opts, rooftune.WithSpace(dims))
	}
	if c.Budget != nil {
		opts = append(opts, rooftune.WithBudget(resolveBudget(*c.Budget)))
	}
	if c.TriadLoBytes != 0 || c.TriadHiBytes != 0 {
		if c.TriadLoBytes < 0 || c.TriadHiBytes < 0 {
			return nil, fmt.Errorf("serve: negative TRIAD bounds %d..%d", c.TriadLoBytes, c.TriadHiBytes)
		}
		opts = append(opts, rooftune.WithTriadRange(units.ByteSize(c.TriadLoBytes), units.ByteSize(c.TriadHiBytes)))
	}
	if len(c.TriadLevels) > 0 {
		opts = append(opts, rooftune.WithTriadLevels(c.TriadLevels...))
	}
	if c.Chain {
		opts = append(opts, rooftune.WithSweepChaining(true))
	}
	if c.SpMVN != 0 || c.SpMVNNZPerRow != 0 {
		opts = append(opts, rooftune.WithSpMVShape(c.SpMVN, c.SpMVNNZPerRow))
	}
	if c.StencilNX != 0 || c.StencilNY != 0 {
		opts = append(opts, rooftune.WithStencilGrid(c.StencilNX, c.StencilNY))
	}
	if c.Serial {
		opts = append(opts, rooftune.WithSerial())
	}
	return opts, nil
}

// resolveBudget applies the spec's overrides on top of the session
// default budget (Table I, Confidence+Inner+Outer).
func resolveBudget(b BudgetSpec) bench.Budget {
	out := bench.DefaultBudget().WithFlags(true, true, true)
	if b.Invocations > 0 {
		out.Invocations = b.Invocations
	}
	if b.MaxIterations > 0 {
		out.MaxIterations = b.MaxIterations
	}
	if b.MaxTimeMs > 0 {
		out.MaxTime = time.Duration(b.MaxTimeMs) * time.Millisecond
	}
	if b.Confidence != nil {
		out.UseConfidence = *b.Confidence
	}
	if b.InnerBound != nil {
		out.UseInnerBound = *b.InnerBound
	}
	if b.OuterBound != nil {
		out.UseOuterBound = *b.OuterBound
	}
	if b.MinCount > 0 {
		out.MinCount = b.MinCount
	}
	return out
}
