// Package serve is the rooftune daemon: a long-lived HTTP service that
// accepts JSON campaign specs, resolves them through the same Session
// machinery the library exposes, and memoizes every completed Result in
// a content-addressed cache keyed by the session fingerprint.
//
// The contract that makes the cache sound is determinism: served
// campaigns target simulated systems only and run with the case-shard
// count pinned to one, so a campaign's Result is a pure function of its
// fingerprint and a cache hit is byte-for-byte the response a fresh run
// would have produced — with zero kernel executions. Native targets are
// rejected: wall-clock measurements are not content-addressable (the
// same campaign legitimately yields different numbers run to run).
//
// Concurrent identical submissions collapse onto one run (singleflight
// via the jobs registry), concurrent distinct campaigns divide the host
// under a shared parallelism budget instead of each assuming the whole
// machine, and an admission controller bounds how many runs execute and
// wait at once — excess load is shed deterministically with 429 +
// Retry-After rather than queued without bound.
//
// With workers configured (Config.Workers), the daemon additionally
// runs as the distributed tier's coordinator: cache and admission stay
// in front, but each admitted campaign's plan-graph nodes fan out to
// roofworkerd processes over the rooftune/dist/v1 contract, with
// lease-based requeue from dead or slow workers and graceful local
// fallback — see internal/dist.
//
// The wire contract itself (Campaign, JobStatus, the error envelope)
// lives in the versioned rooftune/serve/v1 package, and resolving a
// wire campaign into session options lives in internal/serve/campaign
// (shared with the distributed workers); this package keeps aliases for
// compatibility and owns the daemon behaviour.
package serve

import (
	"io"

	"rooftune"
	"rooftune/internal/serve/campaign"
	servev1 "rooftune/serve/v1"
)

// The wire types are defined in rooftune/serve/v1 (the versioned
// contract pinned by api/serve_v1.txt); these aliases keep the serving
// tier's internal code and tests on their historical names.
type (
	// Campaign is the wire form of a tuning request.
	Campaign = servev1.Campaign
	// DimsSpec is one DGEMM search-space point on the wire.
	DimsSpec = servev1.DimsSpec
	// BudgetSpec overrides parts of the default evaluation budget.
	BudgetSpec = servev1.BudgetSpec
)

// ParseCampaign decodes a campaign, rejecting unknown fields — a typoed
// knob must fail the request, not silently run the default campaign and
// cache it under the wrong intent.
func ParseCampaign(r io.Reader) (Campaign, error) {
	return campaign.Parse(r)
}

// CampaignOptions resolves a wire campaign into session options — see
// internal/serve/campaign, which the distributed workers share so a
// node spec resolves identically on every process.
func CampaignOptions(c Campaign) ([]rooftune.Option, error) {
	return campaign.Options(c)
}
