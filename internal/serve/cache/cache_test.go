package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func key(seed int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", seed)))
	return hex.EncodeToString(sum[:])
}

// mustPut stores val and fails the test on error or rejection.
func mustPut(t *testing.T, c *Cache, k string, val []byte) {
	t.Helper()
	stored, err := c.Put(k, val, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !stored {
		t.Fatalf("Put(%s) rejected unexpectedly", k)
	}
}

func TestHitMissPromote(t *testing.T) {
	c, err := New(Config{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	mustPut(t, c, key(1), []byte("one"))
	mustPut(t, c, key(2), []byte("two"))
	if got, ok := c.Get(key(1)); !ok || string(got) != "one" {
		t.Fatalf("Get(1) = %q, %v", got, ok)
	}
	// 1 was just used, so inserting 3 must evict 2, not 1.
	mustPut(t, c, key(3), []byte("three"))
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("LRU evicted the recently used entry instead of the stale one")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("promoted entry was evicted")
	}
	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", s)
	}
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses", s)
	}
}

func TestPutValidation(t *testing.T) {
	c, err := New(Config{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("../../etc/passwd", []byte("x"), time.Hour); err == nil {
		t.Fatal("malformed key accepted")
	}
	if _, err := c.Put("ABC", []byte("x"), time.Hour); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := c.Put(key(1), nil, time.Hour); err == nil {
		t.Fatal("empty value accepted")
	}
}

func TestOverwriteRefreshes(t *testing.T) {
	c, err := New(Config{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, c, key(1), []byte("v1"))
	mustPut(t, c, key(1), []byte("v2"))
	if got, _ := c.Get(key(1)); string(got) != "v2" {
		t.Fatalf("Get = %q after overwrite", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestMinCostAdmission(t *testing.T) {
	c, err := New(Config{MaxEntries: 4, MinCost: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	stored, err := c.Put(key(1), []byte("cheap"), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stored {
		t.Fatal("sub-floor result admitted")
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("rejected result was resident")
	}
	stored, err = c.Put(key(2), []byte("costly"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !stored {
		t.Fatal("above-floor result rejected")
	}
	s := c.Stats()
	if s.Rejected != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 rejection / 1 entry", s)
	}
}

func TestTTLExpiry(t *testing.T) {
	c, err := New(Config{MaxEntries: 4, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// A controllable clock: entries written at t0 expire at t0+1m.
	t0 := time.Unix(1_700_000_000, 0)
	clock := t0
	c.now = func() time.Time { return clock }
	mustPut(t, c, key(1), []byte("fresh"))

	clock = t0.Add(30 * time.Second)
	if got, ok := c.Get(key(1)); !ok || string(got) != "fresh" {
		t.Fatalf("entry expired early: %q, %v", got, ok)
	}

	// Overwriting refreshes the deadline.
	mustPut(t, c, key(1), []byte("refreshed"))
	clock = t0.Add(75 * time.Second) // 45s after the refresh
	if got, ok := c.Get(key(1)); !ok || string(got) != "refreshed" {
		t.Fatalf("refreshed entry expired on the original deadline: %q, %v", got, ok)
	}

	clock = t0.Add(3 * time.Minute)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("expired entry served")
	}
	s := c.Stats()
	if s.Expired != 1 || s.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 expiry / 0 entries", s)
	}
	// The expiry also counts as a miss: the caller will recompute.
	if s.Misses != 1 {
		t.Fatalf("stats = %+v, want the expiry counted as a miss", s)
	}
}

func TestDirPersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{MaxEntries: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, c, key(1), []byte(`{"x":1}`))
	mustPut(t, c, key(2), []byte(`{"x":2}`))
	// A restarted daemon reloads both entries bit for bit.
	re, err := New(Config{MaxEntries: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := re.Get(key(1)); !ok || string(got) != `{"x":1}` {
		t.Fatalf("reloaded Get(1) = %q, %v", got, ok)
	}
	if got, ok := re.Get(key(2)); !ok || string(got) != `{"x":2}` {
		t.Fatalf("reloaded Get(2) = %q, %v", got, ok)
	}
	if re.Stats().Evictions != 0 {
		t.Fatalf("reload counted evictions: %+v", re.Stats())
	}
}

func TestDirReloadHonorsTTL(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{MaxEntries: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, c, key(1), []byte("stale"))
	mustPut(t, c, key(2), []byte("fresh"))
	// Age entry 1 past the reload TTL via its file mtime — on disk the
	// mtime IS the entry's write time.
	past := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(filepath.Join(dir, key(1)+fileSuffix), past, past); err != nil {
		t.Fatal(err)
	}
	re, err := New(Config{MaxEntries: 8, Dir: dir, TTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Get(key(1)); ok {
		t.Fatal("TTL-expired disk entry served after restart")
	}
	if got, ok := re.Get(key(2)); !ok || string(got) != "fresh" {
		t.Fatalf("fresh entry lost in reload: %q, %v", got, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, key(1)+fileSuffix)); !os.IsNotExist(err) {
		t.Fatalf("expired file not cleaned up: %v", err)
	}
}

func TestDirReloadKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{MaxEntries: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mustPut(t, c, key(i), []byte(fmt.Sprintf("v%d", i)))
		// Distinct mod times so age ordering is unambiguous on coarse
		// filesystem clocks.
		past := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, key(i)+fileSuffix), past, past); err != nil {
			t.Fatal(err)
		}
	}
	// Reload into a bound of 2: only the two newest survive, and the
	// directory is trimmed to match.
	re, err := New(Config{MaxEntries: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("Len = %d, want 2", re.Len())
	}
	for i := 0; i < 2; i++ {
		if _, ok := re.Get(key(i)); ok {
			t.Fatalf("old entry %d survived a bounded reload", i)
		}
	}
	for i := 2; i < 4; i++ {
		if _, ok := re.Get(key(i)); !ok {
			t.Fatalf("new entry %d lost in bounded reload", i)
		}
	}
}

func TestDirIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "nothex.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{MaxEntries: 8, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("foreign files loaded: Len = %d", c.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "README.txt")); err != nil {
		t.Fatalf("foreign file touched: %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, err := New(Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		//rooflint:allow nogoroutine -- test stressor; joined by wg.Wait below
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				k := key(j % 24)
				if j%3 == 0 {
					_, _ = c.Put(k, []byte(fmt.Sprintf("w%d", i)), time.Hour)
				} else {
					_, _ = c.Get(k)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("bound exceeded: Len = %d", c.Len())
	}
}
