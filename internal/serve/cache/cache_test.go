package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func key(seed int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", seed)))
	return hex.EncodeToString(sum[:])
}

func TestHitMissPromote(t *testing.T) {
	c, err := New(2, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Put(key(1), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key(2), []byte("two")); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get(key(1)); !ok || string(got) != "one" {
		t.Fatalf("Get(1) = %q, %v", got, ok)
	}
	// 1 was just used, so inserting 3 must evict 2, not 1.
	if err := c.Put(key(3), []byte("three")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("LRU evicted the recently used entry instead of the stale one")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("promoted entry was evicted")
	}
	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", s)
	}
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses", s)
	}
}

func TestPutValidation(t *testing.T) {
	c, err := New(4, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("../../etc/passwd", []byte("x")); err == nil {
		t.Fatal("malformed key accepted")
	}
	if err := c.Put("ABC", []byte("x")); err == nil {
		t.Fatal("short key accepted")
	}
	if err := c.Put(key(1), nil); err == nil {
		t.Fatal("empty value accepted")
	}
}

func TestOverwriteRefreshes(t *testing.T) {
	c, err := New(4, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key(1), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key(1), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get(key(1)); string(got) != "v2" {
		t.Fatalf("Get = %q after overwrite", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestDirPersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key(1), []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key(2), []byte(`{"x":2}`)); err != nil {
		t.Fatal(err)
	}
	// A restarted daemon reloads both entries bit for bit.
	re, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := re.Get(key(1)); !ok || string(got) != `{"x":1}` {
		t.Fatalf("reloaded Get(1) = %q, %v", got, ok)
	}
	if got, ok := re.Get(key(2)); !ok || string(got) != `{"x":2}` {
		t.Fatalf("reloaded Get(2) = %q, %v", got, ok)
	}
	if re.Stats().Evictions != 0 {
		t.Fatalf("reload counted evictions: %+v", re.Stats())
	}
}

func TestDirReloadKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	c, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Put(key(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		// Distinct mod times so age ordering is unambiguous on coarse
		// filesystem clocks.
		past := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, key(i)+fileSuffix), past, past); err != nil {
			t.Fatal(err)
		}
	}
	// Reload into a bound of 2: only the two newest survive, and the
	// directory is trimmed to match.
	re, err := New(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("Len = %d, want 2", re.Len())
	}
	for i := 0; i < 2; i++ {
		if _, ok := re.Get(key(i)); ok {
			t.Fatalf("old entry %d survived a bounded reload", i)
		}
	}
	for i := 2; i < 4; i++ {
		if _, ok := re.Get(key(i)); !ok {
			t.Fatalf("new entry %d lost in bounded reload", i)
		}
	}
}

func TestDirIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "nothex.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("foreign files loaded: Len = %d", c.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "README.txt")); err != nil {
		t.Fatalf("foreign file touched: %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, err := New(16, "")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		//rooflint:allow nogoroutine -- test stressor; joined by wg.Wait below
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				k := key(j % 24)
				if j%3 == 0 {
					_ = c.Put(k, []byte(fmt.Sprintf("w%d", i)))
				} else {
					_, _ = c.Get(k)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("bound exceeded: Len = %d", c.Len())
	}
}
