// Package cache is the serving tier's content-addressed result store: a
// size-bounded LRU mapping session fingerprints (hex SHA-256 content
// addresses) to serialized Result bytes, optionally persisted to a
// directory so a restarted daemon keeps its warm entries.
//
// Values are stored and returned as opaque bytes on purpose. The serve
// layer answers a cache hit with the stored bytes verbatim — no
// re-marshalling — which is what makes repeated responses byte-identical,
// and the key being a content address means a hit can only ever be
// returned to a request that would have re-measured exactly the same
// campaign.
package cache

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
)

// keyPattern is the only accepted key shape: a lowercase hex SHA-256.
// Keys double as file names under the persistence directory, so
// anything else is rejected before it can traverse a path.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

const fileSuffix = ".json"

// Stats is a point-in-time cache counter snapshot.
type Stats struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

type entry struct {
	key string
	val []byte
}

// Cache is a concurrency-safe LRU over fingerprint-keyed byte values.
type Cache struct {
	mu      sync.Mutex
	max     int
	dir     string
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions uint64
}

// New builds a cache bounded to maxEntries (values <= 0 mean the
// default 256). If dir is non-empty it is created if needed and every
// valid persisted entry in it is loaded, oldest first, so the most
// recently written entries survive if the directory holds more than the
// bound.
func New(maxEntries int, dir string) (*Cache, error) {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	c := &Cache{
		max:     maxEntries,
		dir:     dir,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: create dir: %w", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cache: read dir: %w", err)
	}
	type onDisk struct {
		key  string
		path string
		mod  int64
	}
	var found []onDisk
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if filepath.Ext(name) != fileSuffix {
			continue
		}
		key := name[:len(name)-len(fileSuffix)]
		if !keyPattern.MatchString(key) {
			continue // not ours; leave foreign files alone
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, onDisk{key: key, path: filepath.Join(dir, name), mod: info.ModTime().UnixNano()})
	}
	// Oldest first: inserting in age order makes the newest entries the
	// most recently used, so an over-full directory evicts its oldest.
	sort.Slice(found, func(i, j int) bool {
		if found[i].mod != found[j].mod {
			return found[i].mod < found[j].mod
		}
		return found[i].key < found[j].key
	})
	for _, f := range found {
		val, err := os.ReadFile(f.path)
		if err != nil || len(val) == 0 {
			continue
		}
		c.insert(f.key, val)
	}
	// Loading is a restore, not traffic: zero the eviction counter so
	// Stats reflect the daemon's own lifetime.
	c.evictions = 0
	return c, nil
}

// Get returns the stored bytes for key and whether it was present,
// promoting a hit to most recently used.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key, evicting the least recently used entries
// beyond the bound. Malformed keys and empty values are errors — an
// empty cached response would be served verbatim forever.
func (c *Cache) Put(key string, val []byte) error {
	if !keyPattern.MatchString(key) {
		return fmt.Errorf("cache: malformed key %q: want lowercase hex sha256", key)
	}
	if len(val) == 0 {
		return fmt.Errorf("cache: refusing to store an empty value under %s", key)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(key, val)
	if c.dir != "" {
		// Best effort and atomic: a torn write must never surface as a
		// truncated cached Result after a restart.
		tmp := filepath.Join(c.dir, key+".tmp")
		if err := os.WriteFile(tmp, val, 0o644); err == nil {
			_ = os.Rename(tmp, filepath.Join(c.dir, key+fileSuffix))
		}
	}
	return nil
}

// insert adds or refreshes an entry and trims to the bound. Callers hold
// the lock (or, during New, have exclusive ownership).
func (c *Cache) insert(key string, val []byte) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, val: val})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		e := oldest.Value.(*entry)
		c.order.Remove(oldest)
		delete(c.entries, e.key)
		c.evictions++
		if c.dir != "" {
			_ = os.Remove(filepath.Join(c.dir, e.key+fileSuffix))
		}
	}
}

// Len reports the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   c.order.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
