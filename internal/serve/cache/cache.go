// Package cache is the serving tier's content-addressed result store: a
// size-bounded LRU mapping session fingerprints (hex SHA-256 content
// addresses) to serialized Result bytes, optionally persisted to a
// directory so a restarted daemon keeps its warm entries.
//
// Values are stored and returned as opaque bytes on purpose. The serve
// layer answers a cache hit with the stored bytes verbatim — no
// re-marshalling — which is what makes repeated responses byte-identical,
// and the key being a content address means a hit can only ever be
// returned to a request that would have re-measured exactly the same
// campaign.
//
// Two policies refine the plain LRU for production traffic. A TTL bounds
// every entry's lifetime: expired entries answer as misses and are
// dropped lazily, and because an entry's age on disk is its file's
// modification time, persisted entries keep honoring the TTL across a
// daemon restart without any sidecar metadata (the value bytes stay raw,
// preserving byte-identity). An admission gate refuses to store results
// whose measured cost fell under a configured floor — a campaign cheaper
// to recompute than to keep is not worth an eviction slot.
package cache

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"
)

// keyPattern is the only accepted key shape: a lowercase hex SHA-256.
// Keys double as file names under the persistence directory, so
// anything else is rejected before it can traverse a path.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

const fileSuffix = ".json"

// Config bounds and parameterizes a cache.
type Config struct {
	// MaxEntries bounds the resident entries (<=0: the default 256).
	MaxEntries int
	// Dir, when non-empty, persists entries as files so a restarted
	// daemon keeps its warm cache.
	Dir string
	// TTL bounds every entry's lifetime (<=0: entries never expire). On
	// disk an entry's age runs from its file's modification time, so the
	// TTL keeps applying across a reload.
	TTL time.Duration
	// MinCost is the admission floor: a Put whose cost is below it is
	// not stored (<=0: everything is admitted).
	MinCost time.Duration
}

// Stats is a point-in-time cache counter snapshot.
type Stats struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Expired counts lookups that found only a TTL-expired entry (each
	// also counts as a miss).
	Expired uint64 `json:"expired"`
	// Rejected counts Puts refused by the MinCost admission gate.
	Rejected uint64 `json:"rejected"`
}

type entry struct {
	key string
	val []byte
	// expires is the entry's TTL deadline; zero means never.
	expires time.Time
}

// Cache is a concurrency-safe LRU over fingerprint-keyed byte values.
type Cache struct {
	mu      sync.Mutex
	cfg     Config
	now     func() time.Time
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions uint64
	expired, rejected       uint64
}

// New builds a cache. If cfg.Dir is non-empty it is created if needed
// and every valid, unexpired persisted entry in it is loaded, oldest
// first, so the most recently written entries survive if the directory
// holds more than the bound; expired files are removed rather than
// loaded.
func New(cfg Config) (*Cache, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 256
	}
	c := &Cache{
		cfg:     cfg,
		now:     time.Now,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
	if cfg.Dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: create dir: %w", err)
	}
	names, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("cache: read dir: %w", err)
	}
	type onDisk struct {
		key  string
		path string
		mod  time.Time
	}
	var found []onDisk
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if filepath.Ext(name) != fileSuffix {
			continue
		}
		key := name[:len(name)-len(fileSuffix)]
		if !keyPattern.MatchString(key) {
			continue // not ours; leave foreign files alone
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, onDisk{key: key, path: filepath.Join(cfg.Dir, name), mod: info.ModTime()})
	}
	// Oldest first: inserting in age order makes the newest entries the
	// most recently used, so an over-full directory evicts its oldest.
	sort.Slice(found, func(i, j int) bool {
		if !found[i].mod.Equal(found[j].mod) {
			return found[i].mod.Before(found[j].mod)
		}
		return found[i].key < found[j].key
	})
	now := c.now()
	for _, f := range found {
		if cfg.TTL > 0 && !f.mod.Add(cfg.TTL).After(now) {
			// Stale on disk: a restarted daemon must not resurrect what a
			// running one would no longer serve.
			_ = os.Remove(f.path)
			continue
		}
		val, err := os.ReadFile(f.path)
		if err != nil || len(val) == 0 {
			continue
		}
		c.insert(f.key, val, c.deadline(f.mod))
	}
	// Loading is a restore, not traffic: zero the eviction counter so
	// Stats reflect the daemon's own lifetime.
	c.evictions = 0
	return c, nil
}

// deadline converts a write time into the entry's expiry (zero when the
// cache has no TTL).
func (c *Cache) deadline(written time.Time) time.Time {
	if c.cfg.TTL <= 0 {
		return time.Time{}
	}
	return written.Add(c.cfg.TTL)
}

// Get returns the stored bytes for key and whether it was present and
// fresh, promoting a hit to most recently used. A TTL-expired entry is
// dropped (memory and disk) and answers as a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*entry)
	if !e.expires.IsZero() && !c.now().Before(e.expires) {
		c.order.Remove(el)
		delete(c.entries, key)
		if c.cfg.Dir != "" {
			_ = os.Remove(filepath.Join(c.cfg.Dir, key+fileSuffix))
		}
		c.expired++
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return e.val, true
}

// Put stores val under key, evicting the least recently used entries
// beyond the bound. cost is what producing val took; a cost under the
// configured MinCost floor is refused (stored=false, nil error) — the
// run succeeded, the result just is not worth caching. Malformed keys
// and empty values are errors — an empty cached response would be
// served verbatim forever.
func (c *Cache) Put(key string, val []byte, cost time.Duration) (stored bool, err error) {
	if !keyPattern.MatchString(key) {
		return false, fmt.Errorf("cache: malformed key %q: want lowercase hex sha256", key)
	}
	if len(val) == 0 {
		return false, fmt.Errorf("cache: refusing to store an empty value under %s", key)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.MinCost > 0 && cost < c.cfg.MinCost {
		c.rejected++
		return false, nil
	}
	c.insert(key, val, c.deadline(c.now()))
	if c.cfg.Dir != "" {
		// Best effort and atomic: a torn write must never surface as a
		// truncated cached Result after a restart.
		tmp := filepath.Join(c.cfg.Dir, key+".tmp")
		if err := os.WriteFile(tmp, val, 0o644); err == nil {
			_ = os.Rename(tmp, filepath.Join(c.cfg.Dir, key+fileSuffix))
		}
	}
	return true, nil
}

// insert adds or refreshes an entry and trims to the bound. Callers hold
// the lock (or, during New, have exclusive ownership).
func (c *Cache) insert(key string, val []byte, expires time.Time) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		e.val = val
		e.expires = expires
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, val: val, expires: expires})
	for c.order.Len() > c.cfg.MaxEntries {
		oldest := c.order.Back()
		e := oldest.Value.(*entry)
		c.order.Remove(oldest)
		delete(c.entries, e.key)
		c.evictions++
		if c.cfg.Dir != "" {
			_ = os.Remove(filepath.Join(c.cfg.Dir, e.key+fileSuffix))
		}
	}
}

// Len reports the number of resident entries (expired-but-unswept
// entries included; they fall out on their next lookup).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   c.order.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Expired:   c.expired,
		Rejected:  c.rejected,
	}
}
