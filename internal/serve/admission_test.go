package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rooftune"
	"rooftune/internal/bench"
	"rooftune/internal/sweep"
	"rooftune/internal/vclock"
	servev1 "rooftune/serve/v1"
)

// The stall workload gives admission tests a run whose duration the
// test controls: every kernel execution blocks on stallGate until the
// test opens it, and signals stallStarted on entry so the test can wait
// for runs to be genuinely executing. It also tracks the maximum number
// of concurrently executing runs, which must never exceed -max-jobs.
var (
	stallMu      sync.Mutex
	stallGate    chan struct{}
	stallStarted chan struct{}

	stallCur atomic.Int64
	stallMax atomic.Int64
)

// armStall installs a fresh gate and signal channel and returns the
// release function (idempotent per test via closed-channel semantics).
func armStall(t *testing.T) (started <-chan struct{}, release func()) {
	t.Helper()
	gate := make(chan struct{})
	sig := make(chan struct{}, 64)
	stallMu.Lock()
	stallGate, stallStarted = gate, sig
	stallMu.Unlock()
	stallMax.Store(0)
	var once sync.Once
	release = func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	return sig, release
}

func init() {
	if err := rooftune.RegisterWorkload(stallWorkload{}); err != nil {
		panic(err)
	}
}

type stallWorkload struct{}

func (stallWorkload) Name() string { return "stall" }

func (stallWorkload) Plan(t rooftune.Target, p rooftune.Params) (rooftune.Plan, error) {
	var plan rooftune.Plan
	if t.IsNative() {
		return plan, fmt.Errorf("stall: simulated only")
	}
	clock := vclock.NewVirtual()
	plan.Add(
		"stall/1s",
		sweep.Spec{Name: "stall", Clock: clock, Cases: []bench.Case{&stallCase{clock: clock}}},
		rooftune.Point{Sockets: 1, Region: "STALL"},
	)
	return plan, nil
}

type stallCase struct{ clock *vclock.Virtual }

func (c *stallCase) Key() string          { return "stall/1" }
func (c *stallCase) Describe() string     { return "stall" }
func (c *stallCase) Metric() bench.Metric { return bench.MetricBandwidth }
func (c *stallCase) Config() bench.Config {
	return bench.TriadConfig{Elements: 1 << 12, Sockets: 1}
}

func (c *stallCase) NewInvocation(inv int) (bench.Instance, error) {
	return &stallInstance{c: c}, nil
}

type stallInstance struct{ c *stallCase }

func (i *stallInstance) Step() time.Duration {
	stallMu.Lock()
	gate, sig := stallGate, stallStarted
	stallMu.Unlock()
	if cur := stallCur.Add(1); cur > stallMax.Load() {
		stallMax.Store(cur)
	}
	defer stallCur.Add(-1)
	if sig != nil {
		select {
		case sig <- struct{}{}:
		default:
		}
	}
	if gate != nil {
		<-gate
	}
	d := time.Millisecond
	i.c.clock.Advance(d)
	return d
}

func (i *stallInstance) Work() float64 { return 1 }
func (i *stallInstance) Warmup()       { i.Step() }
func (i *stallInstance) Close()        {}

// stallCampaign renders a distinct stall campaign per seed.
func stallCampaign(seed int) string {
	return fmt.Sprintf(`{"system": "Gold 6148", "workloads": ["stall"], "seed": %d}`, seed)
}

func newAdmitServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// submitJob POSTs an async job submission for the campaign, tagged with
// the client id, and returns the response with its decoded body.
func submitJob(t *testing.T, base, client, campaign string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/v1/jobs", strings.NewReader(campaign))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set(ClientHeader, client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := make([]byte, 0, 512)
	buf := make([]byte, 512)
	for {
		n, err := resp.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			break
		}
	}
	return resp, body
}

// waitJobState polls the job until it reaches a terminal state.
func waitJobState(t *testing.T, base, id string) servev1.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st servev1.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return servev1.JobStatus{}
}

// scrapeMetrics fetches the full /metrics exposition, asserting the
// Prometheus text-format content type.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	return body.String()
}

func parseMetric(t *testing.T, exposition, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("sample %q not in exposition:\n%s", sample, exposition)
	return 0
}

// TestAdmissionDistinctFloodSheds is the acceptance scenario: with
// -max-jobs=2 -queue-depth=2, five distinct campaigns submitted in
// order leave two running, two queued, and shed the fifth with 429, the
// exact configured Retry-After and the structured error envelope — and
// the /metrics counters reconcile exactly with that traffic.
func TestAdmissionDistinctFloodSheds(t *testing.T) {
	_, release := armStall(t)
	_, ts := newAdmitServer(t, Config{
		CacheEntries: 64, MaxJobs: 2, QueueDepth: 2, RetryAfter: 3 * time.Second,
	})

	var ids []string
	for seed := 1; seed <= 4; seed++ {
		resp, body := submitJob(t, ts.URL, "flood", stallCampaign(seed))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", seed, resp.StatusCode, body)
		}
		var st servev1.JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	// The fifth distinct campaign finds the queue full: deterministic
	// shed with the configured hint in both header and envelope.
	resp, body := submitJob(t, ts.URL, "flood", stallCampaign(5))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fifth submit: status %d, want 429: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want %q", got, "3")
	}
	var envelope servev1.ErrorEnvelope
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("shed body is not the error envelope: %v: %s", err, body)
	}
	if envelope.Error.Code != servev1.CodeOverloaded {
		t.Fatalf("shed code = %q, want %q", envelope.Error.Code, servev1.CodeOverloaded)
	}
	if envelope.Error.RetryAfterSeconds != 3 {
		t.Fatalf("shed retryAfterSeconds = %d, want 3", envelope.Error.RetryAfterSeconds)
	}
	shedID := resp.Header.Get(JobHeader)
	if st := waitJobState(t, ts.URL, shedID); st.State != servev1.StateShed || st.RetryAfterSeconds != 3 {
		t.Fatalf("shed job status: %+v", st)
	}

	// Resubmitting the shed fingerprint after load drains gets a fresh
	// admission (the shed job is terminal, not sticky).
	release()
	for _, id := range ids {
		if st := waitJobState(t, ts.URL, id); st.State != servev1.StateDone {
			t.Fatalf("job %s: state %q: %s", id, st.State, st.Error)
		}
	}
	resp, body = submitJob(t, ts.URL, "flood", stallCampaign(5))
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit after drain: status %d: %s", resp.StatusCode, body)
	}
	var st servev1.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if fin := waitJobState(t, ts.URL, st.ID); fin.State != servev1.StateDone {
		t.Fatalf("resubmitted job: %+v", fin)
	}

	// Concurrency never exceeded the -max-jobs bound.
	if got := stallMax.Load(); got > 2 {
		t.Fatalf("observed %d concurrently executing runs, want <= 2", got)
	}

	// The exposition reconciles exactly with the driven traffic: five
	// grants (four flood + one resubmission), one queue-full shed, six
	// submit-time cache misses (each submission probed the cache, the
	// shed one included), zero hits so far.
	exposition := scrapeMetrics(t, ts.URL)
	checks := map[string]float64{
		`roofserve_admission_granted_total`:                     5,
		`roofserve_admission_shed_total{reason="queue_full"}`:   1,
		`roofserve_admission_shed_total{reason="client_quota"}`: 0,
		`roofserve_admission_queue_depth`:                       0,
		`roofserve_cache_misses_total`:                          6,
		`roofserve_cache_hits_total`:                            0,
		`roofserve_cache_entries`:                               5,
		`roofserve_jobs{state="done"}`:                          5,
		`roofserve_jobs{state="shed"}`:                          1,
		`roofserve_jobs{state="running"}`:                       0,
		`roofserve_jobs{state="queued"}`:                        0,
	}
	for sample, want := range checks {
		if got := parseMetric(t, exposition, sample); got != want {
			t.Errorf("%s = %v, want %v", sample, got, want)
		}
	}

	// One cache hit via the synchronous path moves exactly one counter.
	tuneResp, tuneBody := postTune(t, ts.URL, stallCampaign(1))
	if tuneResp.StatusCode != http.StatusOK || tuneResp.Header.Get(CacheHeader) != "hit" {
		t.Fatalf("post-drain tune: status %d, %s = %q: %s",
			tuneResp.StatusCode, CacheHeader, tuneResp.Header.Get(CacheHeader), tuneBody)
	}
	exposition = scrapeMetrics(t, ts.URL)
	if got := parseMetric(t, exposition, "roofserve_cache_hits_total"); got != 1 {
		t.Errorf("hits after cached tune = %v, want 1", got)
	}
	if got := parseMetric(t, exposition, "roofserve_cache_misses_total"); got != 6 {
		t.Errorf("misses after cached tune = %v, want 6", got)
	}
}

// TestAdmissionIdenticalFloodCollapses: submissions of the same
// fingerprint join the in-flight job, so a flood of identical campaigns
// costs exactly one admission even when MaxJobs is 1 and the queue is
// disabled.
func TestAdmissionIdenticalFloodCollapses(t *testing.T) {
	started, release := armStall(t)
	_, ts := newAdmitServer(t, Config{
		CacheEntries: 16, MaxJobs: 1, QueueDepth: 0,
	})
	campaign := stallCampaign(77)

	resp, body := submitJob(t, ts.URL, "a", campaign)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, body)
	}
	var first servev1.JobStatus
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("run never started executing")
	}

	// Seven more identical submissions, from different clients, while
	// the run is blocked: all join, none is admitted, none is shed.
	for i := 0; i < 7; i++ {
		resp, body := submitJob(t, ts.URL, fmt.Sprintf("client-%d", i), campaign)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("join %d: status %d: %s", i, resp.StatusCode, body)
		}
		var st servev1.JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.ID != first.ID {
			t.Fatalf("join %d minted job %s, want singleflight join of %s", i, st.ID, first.ID)
		}
	}

	release()
	if st := waitJobState(t, ts.URL, first.ID); st.State != servev1.StateDone {
		t.Fatalf("job: %+v", st)
	}

	exposition := scrapeMetrics(t, ts.URL)
	if got := parseMetric(t, exposition, "roofserve_admission_granted_total"); got != 1 {
		t.Errorf("granted = %v, want 1 (identical flood collapses to one admission)", got)
	}
	for _, reason := range []string{"queue_full", "client_quota"} {
		if got := parseMetric(t, exposition, fmt.Sprintf("roofserve_admission_shed_total{reason=%q}", reason)); got != 0 {
			t.Errorf("shed{%s} = %v, want 0", reason, got)
		}
	}
}

// TestAdmissionPerClientFairness: with a per-client queue quota of one,
// a client that already holds a queue slot is refused (client_quota)
// while other clients still queue freely.
func TestAdmissionPerClientFairness(t *testing.T) {
	started, release := armStall(t)
	_, ts := newAdmitServer(t, Config{
		CacheEntries: 16, MaxJobs: 1, QueueDepth: 4, PerClientQueue: 1, RetryAfter: time.Second,
	})

	resp, body := submitJob(t, ts.URL, "greedy", stallCampaign(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, body)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("run never started executing")
	}

	var ids []string
	resp, body = submitJob(t, ts.URL, "greedy", stallCampaign(2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("greedy queue slot: status %d: %s", resp.StatusCode, body)
	}
	var st servev1.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	ids = append(ids, st.ID)

	// The greedy client's second distinct campaign is refused even
	// though the global queue has room.
	resp, body = submitJob(t, ts.URL, "greedy", stallCampaign(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("greedy overflow: status %d, want 429: %s", resp.StatusCode, body)
	}
	var envelope servev1.ErrorEnvelope
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != servev1.CodeOverloaded || envelope.Error.RetryAfterSeconds != 1 {
		t.Fatalf("greedy overflow envelope: %+v", envelope.Error)
	}

	// A different client still queues.
	resp, body = submitJob(t, ts.URL, "patient", stallCampaign(4))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("patient submit: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	ids = append(ids, st.ID)

	release()
	for _, id := range ids {
		if st := waitJobState(t, ts.URL, id); st.State != servev1.StateDone {
			t.Fatalf("job %s: %+v", id, st)
		}
	}

	exposition := scrapeMetrics(t, ts.URL)
	if got := parseMetric(t, exposition, `roofserve_admission_shed_total{reason="client_quota"}`); got != 1 {
		t.Errorf("shed{client_quota} = %v, want 1", got)
	}
	if got := parseMetric(t, exposition, `roofserve_admission_shed_total{reason="queue_full"}`); got != 0 {
		t.Errorf("shed{queue_full} = %v, want 0", got)
	}
	if got := parseMetric(t, exposition, "roofserve_admission_granted_total"); got != 3 {
		t.Errorf("granted = %v, want 3", got)
	}
}

// TestAdmissionCacheTTLAcrossRestart: a persisted entry older than the
// TTL is not served by a restarted daemon — the campaign re-runs and
// the expired file is gone.
func TestAdmissionCacheTTLAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	campaign := `{"system": "Gold 6148", "workloads": ["counting"], "seed": 9}`

	srv1, err := New(context.Background(), Config{CacheDir: dir, CacheTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	resp, body := postTune(t, ts1.URL, campaign)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	key := resp.Header.Get(FingerprintHeader)
	ts1.Close()

	// Age the persisted entry past the TTL.
	file := filepath.Join(dir, key+".json")
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(file, old, old); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(context.Background(), Config{CacheDir: dir, CacheTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	before := kernelExecutions.Load()
	resp, body = postTune(t, ts2.URL, campaign)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(CacheHeader); got != "miss" {
		t.Fatalf("%s = %q after TTL expiry, want miss", CacheHeader, got)
	}
	if got := kernelExecutions.Load() - before; got == 0 {
		t.Fatal("expired entry served without re-measuring")
	}

	// A third run on the same daemon is a hit again: the rerun was
	// cached fresh.
	before = kernelExecutions.Load()
	resp, _ = postTune(t, ts2.URL, campaign)
	if got := resp.Header.Get(CacheHeader); got != "hit" {
		t.Fatalf("%s = %q after refresh, want hit", CacheHeader, got)
	}
	if got := kernelExecutions.Load() - before; got != 0 {
		t.Fatalf("refreshed hit executed %d kernels, want 0", got)
	}
}

// TestAdmissionQueuedJobCancellation: cancelling a job that is waiting
// in the admission queue fails it without ever running, and the slot
// accounting drains clean.
func TestAdmissionQueuedJobCancellation(t *testing.T) {
	started, release := armStall(t)
	srv, ts := newAdmitServer(t, Config{
		CacheEntries: 16, MaxJobs: 1, QueueDepth: 2,
	})

	resp, body := submitJob(t, ts.URL, "a", stallCampaign(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, body)
	}
	var running servev1.JobStatus
	if err := json.Unmarshal(body, &running); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("run never started executing")
	}

	resp, body = submitJob(t, ts.URL, "b", stallCampaign(2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: status %d: %s", resp.StatusCode, body)
	}
	var queued servev1.JobStatus
	if err := json.Unmarshal(body, &queued); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+queued.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()

	if st := waitJobState(t, ts.URL, queued.ID); st.State != servev1.StateFailed {
		t.Fatalf("cancelled queued job: %+v", st)
	}

	release()
	if st := waitJobState(t, ts.URL, running.ID); st.State != servev1.StateDone {
		t.Fatalf("running job after queue cancel: %+v", st)
	}
	if s := srv.adm.Stats(); s.Running != 0 || s.Queued != 0 {
		t.Fatalf("admission not drained: %+v", s)
	}
}
