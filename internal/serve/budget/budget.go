// Package budget divides a fixed host-parallelism capacity among
// concurrently active tuning runs. The serving tier acquires one lease
// per run and hands the lease's share to the session as its
// WithHostParallelism cap, so N concurrent campaigns each assume roughly
// capacity/N of the machine instead of every one of them assuming the
// whole host and oversubscribing it N-fold.
//
// The budget is advisory fair-share, not admission control: Acquire
// never blocks and a lease's share is never zero (a run starved below
// one worker could not make progress at all). Shares are fixed at
// acquire time — a long-running campaign keeps the slice it started
// with; only newly admitted runs see the updated contention. That keeps
// every session's parallelism stable for its whole run, which is what
// the determinism suites assume.
package budget

import (
	"fmt"
	"sync"

	"rooftune/internal/parallel"
)

// Budget tracks how many runs share a host-parallelism capacity.
type Budget struct {
	capacity int

	mu        sync.Mutex
	active    int
	contended uint64
}

// New builds a budget over the given worker capacity; zero or negative
// means the whole machine (GOMAXPROCS at construction time).
func New(capacity int) *Budget {
	if capacity <= 0 {
		capacity = parallel.DefaultThreads()
	}
	return &Budget{capacity: capacity}
}

// Capacity reports the total worker capacity being divided.
func (b *Budget) Capacity() int { return b.capacity }

// Active reports how many leases are currently outstanding.
func (b *Budget) Active() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.active
}

// Contended counts the acquisitions that joined an already-leased host
// and therefore got less than the full capacity — the budget-contention
// counter on /metrics.
func (b *Budget) Contended() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.contended
}

// Lease is one run's slice of the host. Release it when the run ends;
// releasing more than once is a bug and panics loudly rather than
// silently inflating every later run's share.
type Lease struct {
	budget   *Budget
	share    int
	released bool
	mu       sync.Mutex
}

// Share is the lease's worker count: max(1, capacity/active) evaluated
// when the lease was acquired.
func (l *Lease) Share() int { return l.share }

// Acquire admits one run and returns its lease. The share is the fair
// split among all runs active the moment this one joins, floored at one
// worker.
func (b *Budget) Acquire() *Lease {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.active++
	if b.active > 1 {
		b.contended++
	}
	share := b.capacity / b.active
	if share < 1 {
		share = 1
	}
	return &Lease{budget: b, share: share}
}

// Release returns the lease's slice to the budget.
func (l *Lease) Release() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.released {
		panic(fmt.Sprintf("budget: lease (share %d) released twice", l.share))
	}
	l.released = true
	l.budget.mu.Lock()
	defer l.budget.mu.Unlock()
	l.budget.active--
	if l.budget.active < 0 {
		panic("budget: active count underflow")
	}
}
