package budget

import (
	"sync"
	"testing"

	"rooftune/internal/parallel"
)

func TestFairShare(t *testing.T) {
	b := New(8)
	if b.Capacity() != 8 {
		t.Fatalf("Capacity() = %d, want 8", b.Capacity())
	}
	l1 := b.Acquire()
	if l1.Share() != 8 {
		t.Fatalf("first lease share = %d, want the whole capacity 8", l1.Share())
	}
	l2 := b.Acquire()
	if l2.Share() != 4 {
		t.Fatalf("second lease share = %d, want 4", l2.Share())
	}
	l3 := b.Acquire()
	if l3.Share() != 2 {
		t.Fatalf("third lease share = %d, want 2", l3.Share())
	}
	// Shares are fixed at acquire time: l1 keeps its original slice.
	if l1.Share() != 8 {
		t.Fatalf("first lease share moved to %d after later acquires", l1.Share())
	}
	if b.Active() != 3 {
		t.Fatalf("Active() = %d, want 3", b.Active())
	}
	l2.Release()
	if b.Active() != 2 {
		t.Fatalf("Active() after release = %d, want 2", b.Active())
	}
	// A new run sees the updated contention.
	if l4 := b.Acquire(); l4.Share() != 2 {
		t.Fatalf("post-release lease share = %d, want 8/3 floored + rejoin math = 2", l4.Share())
	}
	l1.Release()
	l3.Release()
}

func TestShareNeverZero(t *testing.T) {
	b := New(2)
	var leases []*Lease
	for i := 0; i < 10; i++ {
		leases = append(leases, b.Acquire())
	}
	for i, l := range leases {
		if l.Share() < 1 {
			t.Fatalf("lease %d share = %d; shares must floor at 1", i, l.Share())
		}
	}
	for _, l := range leases {
		l.Release()
	}
	if b.Active() != 0 {
		t.Fatalf("Active() = %d after releasing everything", b.Active())
	}
}

func TestZeroCapacityMeansMachine(t *testing.T) {
	b := New(0)
	if b.Capacity() != parallel.DefaultThreads() {
		t.Fatalf("Capacity() = %d, want GOMAXPROCS %d", b.Capacity(), parallel.DefaultThreads())
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double release must panic")
		}
	}()
	l := New(4).Acquire()
	l.Release()
	l.Release()
}

func TestConcurrentAcquireRelease(t *testing.T) {
	b := New(16)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		//rooflint:allow nogoroutine -- test stressor; joined by wg.Wait below
		go func() {
			defer wg.Done()
			l := b.Acquire()
			if l.Share() < 1 || l.Share() > 16 {
				t.Errorf("share %d out of [1,16]", l.Share())
			}
			l.Release()
		}()
	}
	wg.Wait()
	if b.Active() != 0 {
		t.Fatalf("Active() = %d after all releases", b.Active())
	}
}
