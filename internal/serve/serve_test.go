package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rooftune"
	"rooftune/internal/bench"
	"rooftune/internal/serve/jobs"
	"rooftune/internal/sweep"
	"rooftune/internal/vclock"
)

// kernelExecutions counts every simulated kernel execution the counting
// workload performs, process-wide. Cache-hit assertions are deltas on
// this counter: a hit must move it by exactly zero.
var kernelExecutions atomic.Int64

func init() {
	if err := rooftune.RegisterWorkload(countingWorkload{}); err != nil {
		panic(err)
	}
}

// countingWorkload is a deterministic toy bandwidth workload (after
// examples/custom-workload) whose every kernel execution increments
// kernelExecutions. It gives the tests an observable measurement count
// without touching the real engines.
type countingWorkload struct{}

func (countingWorkload) Name() string { return "counting" }

func (countingWorkload) Plan(t rooftune.Target, p rooftune.Params) (rooftune.Plan, error) {
	var plan rooftune.Plan
	if t.IsNative() {
		return plan, fmt.Errorf("counting: simulated only")
	}
	clock := vclock.NewVirtual()
	var cases []bench.Case
	for elems := 1 << 12; elems <= 1<<16; elems *= 4 {
		cases = append(cases, &countingCase{clock: clock, elems: elems})
	}
	plan.Add(
		"counting/1s",
		sweep.Spec{Name: "counting", Clock: clock, Cases: cases},
		rooftune.Point{Sockets: 1, Region: "COUNT"},
	)
	return plan, nil
}

type countingCase struct {
	clock *vclock.Virtual
	elems int
}

func (c *countingCase) Key() string          { return fmt.Sprintf("counting/%d", c.elems) }
func (c *countingCase) Describe() string     { return fmt.Sprintf("N=%d", c.elems) }
func (c *countingCase) Metric() bench.Metric { return bench.MetricBandwidth }
func (c *countingCase) Config() bench.Config {
	return bench.TriadConfig{Elements: c.elems, Sockets: 1}
}

func (c *countingCase) NewInvocation(inv int) (bench.Instance, error) {
	return &countingInstance{c: c}, nil
}

type countingInstance struct{ c *countingCase }

func (i *countingInstance) bandwidth() float64 {
	n := float64(i.c.elems)
	return 48e9 * n / (n + 1<<14)
}

func (i *countingInstance) Work() float64 { return float64(24 * i.c.elems) }

func (i *countingInstance) Step() time.Duration {
	kernelExecutions.Add(1)
	d := time.Duration(i.Work() / i.bandwidth() * float64(time.Second))
	i.c.clock.Advance(d)
	return d
}

func (i *countingInstance) Warmup() { i.Step() }
func (i *countingInstance) Close()  {}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(context.Background(), Config{CacheEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postTune(t *testing.T, base string, campaign string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/tune", "application/json", strings.NewReader(campaign))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

const tinyCampaign = `{
	"system": "Gold 6148",
	"workloads": ["dgemm", "triad"],
	"space": [{"n":512,"m":512,"k":128}, {"n":1024,"m":1024,"k":128}],
	"triadLoBytes": 16384,
	"triadHiBytes": 268435456
}`

// TestTuneBitIdenticalToInProcess is the tentpole acceptance: the
// daemon-served DGEMM+TRIAD campaign decodes to exactly the Result an
// in-process Session.Run produces — same Summary bytes, same points.
func TestTuneBitIdenticalToInProcess(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postTune(t, ts.URL, tinyCampaign)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(CacheHeader); got != "miss" {
		t.Fatalf("first request %s = %q, want miss", CacheHeader, got)
	}
	var served rooftune.Result
	if err := json.Unmarshal(body, &served); err != nil {
		t.Fatal(err)
	}

	campaign, err := ParseCampaign(strings.NewReader(tinyCampaign))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := CampaignOptions(campaign)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := rooftune.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if served.Summary() != local.Summary() {
		t.Fatalf("served summary differs from in-process:\nserved:\n%s\nlocal:\n%s", served.Summary(), local.Summary())
	}
	if !reflect.DeepEqual(served, *local) {
		t.Fatalf("served Result differs from in-process:\nserved %+v\nlocal  %+v", served, *local)
	}
}

// TestCacheHitZeroKernelExecutions: the second identical request is a
// byte-identical response produced without executing a single kernel.
func TestCacheHitZeroKernelExecutions(t *testing.T) {
	_, ts := newTestServer(t)
	campaign := `{"system": "Gold 6148", "workloads": ["counting"]}`

	before := kernelExecutions.Load()
	resp1, body1 := postTune(t, ts.URL, campaign)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, body1)
	}
	ran := kernelExecutions.Load() - before
	if ran == 0 {
		t.Fatal("first request executed no kernels — the counter is not wired")
	}
	if got := resp1.Header.Get(CacheHeader); got != "miss" {
		t.Fatalf("first request %s = %q, want miss", CacheHeader, got)
	}

	before = kernelExecutions.Load()
	resp2, body2 := postTune(t, ts.URL, campaign)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	if got := kernelExecutions.Load() - before; got != 0 {
		t.Fatalf("cache hit executed %d kernels, want 0", got)
	}
	if got := resp2.Header.Get(CacheHeader); got != "hit" {
		t.Fatalf("second request %s = %q, want hit", CacheHeader, got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached response not byte-identical:\nfirst  %s\nsecond %s", body1, body2)
	}
	if resp1.Header.Get(FingerprintHeader) == "" ||
		resp1.Header.Get(FingerprintHeader) != resp2.Header.Get(FingerprintHeader) {
		t.Fatalf("fingerprint headers diverge: %q vs %q",
			resp1.Header.Get(FingerprintHeader), resp2.Header.Get(FingerprintHeader))
	}
}

// TestConcurrentIdenticalRequestsCollapse: N identical submissions
// racing an empty cache produce one measurement (singleflight) and N
// byte-identical responses.
func TestConcurrentIdenticalRequestsCollapse(t *testing.T) {
	campaign := `{"system": "Gold 6132", "workloads": ["counting"], "seed": 7}`

	// Calibrate one run's kernel-execution count on a throwaway server.
	_, calibration := newTestServer(t)
	before := kernelExecutions.Load()
	if resp, body := postTune(t, calibration.URL, campaign); resp.StatusCode != http.StatusOK {
		t.Fatalf("calibration status %d: %s", resp.StatusCode, body)
	}
	oneRun := kernelExecutions.Load() - before
	if oneRun == 0 {
		t.Fatal("calibration executed no kernels")
	}

	_, ts := newTestServer(t)
	const n = 8
	bodies := make([][]byte, n)
	errs := make([]error, n)
	before = kernelExecutions.Load()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		//rooflint:allow nogoroutine -- test clients; joined by wg.Wait below
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/tune", "application/json", strings.NewReader(campaign))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, buf.Bytes())
				return
			}
			bodies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := kernelExecutions.Load() - before; got != oneRun {
		t.Fatalf("%d concurrent identical requests executed %d kernels, want one run's %d", n, got, oneRun)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
}

// collectSSE reads a job's SSE stream to its end event, decoding each
// data line into a rooftune.Event.
func collectSSE(t *testing.T, url string) ([]rooftune.Event, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var (
		events   []rooftune.Event
		endState string
		inEnd    bool
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: end":
			inEnd = true
		case strings.HasPrefix(line, "data: "):
			payload := strings.TrimPrefix(line, "data: ")
			if inEnd {
				var end struct {
					State string `json:"state"`
				}
				if err := json.Unmarshal([]byte(payload), &end); err != nil {
					t.Fatalf("end payload %q: %v", payload, err)
				}
				return events, end.State
			}
			var ev rooftune.Event
			if err := json.Unmarshal([]byte(payload), &ev); err != nil {
				t.Fatalf("event payload %q: %v", payload, err)
			}
			events = append(events, ev)
		}
	}
	t.Fatalf("stream ended without an end event (read %d events): %v", len(events), sc.Err())
	return events, endState
}

// TestSSEMatchesWithProgress is the streaming acceptance: an SSE client
// observes exactly the event sequence a WithProgress callback sees for
// the same campaign. Serial pins the event order; the values are
// deterministic on the simulated engines either way.
func TestSSEMatchesWithProgress(t *testing.T) {
	campaign := `{"system": "Gold 6148", "workloads": ["counting"], "serial": true, "seed": 11}`

	// In-process reference: same campaign, progress collected directly.
	parsed, err := ParseCampaign(strings.NewReader(campaign))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := CampaignOptions(parsed)
	if err != nil {
		t.Fatal(err)
	}
	var want []rooftune.Event
	sess, err := rooftune.New(append(opts, rooftune.WithProgress(func(ev rooftune.Event) {
		want = append(want, ev)
	}))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference run emitted no events")
	}

	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(campaign))
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	got, endState := collectSSE(t, ts.URL+"/v1/jobs/"+status.ID+"/events")
	if endState != string(jobs.StateDone) {
		t.Fatalf("end state %q, want done", endState)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SSE events diverge from WithProgress:\ngot  %d events %+v\nwant %d events %+v",
			len(got), got, len(want), want)
	}

	// A second subscriber after completion replays the identical history.
	replay, _ := collectSSE(t, ts.URL+"/v1/jobs/"+status.ID+"/events")
	if !reflect.DeepEqual(replay, want) {
		t.Fatalf("post-completion replay diverges: %d events, want %d", len(replay), len(want))
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	campaign := `{"system": "Gold 6148", "workloads": ["counting"], "seed": 23}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(campaign))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, submitted.ID)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State  string          `json:"state"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st.State == string(jobs.StateDone) {
			if len(st.Result) == 0 {
				t.Fatal("done job carries no result")
			}
			var res rooftune.Result
			if err := json.Unmarshal(st.Result, &res); err != nil {
				t.Fatalf("embedded result does not decode: %v", err)
			}
			break
		}
		if st.State == string(jobs.StateFailed) {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A cache-hit resubmission is an immediately-done job.
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(campaign))
	if err != nil {
		t.Fatal(err)
	}
	var resubmitted struct {
		State  string `json:"state"`
		Cached bool   `json:"cached"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&resubmitted); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || resubmitted.State != string(jobs.StateDone) || !resubmitted.Cached {
		t.Fatalf("resubmit = status %d, %+v; want 200/done/cached", resp2.StatusCode, resubmitted)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	for name, campaign := range map[string]string{
		"empty":           `{}`,
		"unknown system":  `{"system": "warp-drive"}`,
		"unknown field":   `{"system": "Gold 6148", "warp": 9}`,
		"unknown worker":  `{"system": "Gold 6148", "workloads": ["warp-kernel"]}`,
		"negative bounds": `{"system": "Gold 6148", "triadLoBytes": -5}`,
		"not json":        `DGEMM please`,
	} {
		resp, body := postTune(t, ts.URL, campaign)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, body)
		}
	}

	r, err := http.Get(ts.URL + "/v1/jobs/j-999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", r.StatusCode)
	}
}

func TestHealthAndStats(t *testing.T) {
	srv, ts := newTestServer(t)
	r, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", r.StatusCode)
	}

	postTune(t, ts.URL, `{"system": "Gold 6148", "workloads": ["counting"], "seed": 31}`)
	postTune(t, ts.URL, `{"system": "Gold 6148", "workloads": ["counting"], "seed": 31}`)

	sr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var stats struct {
		Cache struct {
			Entries int    `json:"entries"`
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
		} `json:"cache"`
		Jobs struct {
			Total  int `json:"total"`
			Active int `json:"active"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Entries != 1 || stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 entry / 1 hit / 1 miss", stats.Cache)
	}
	if stats.Jobs.Total != 1 || stats.Jobs.Active != 0 {
		t.Fatalf("job stats = %+v, want 1 total / 0 active", stats.Jobs)
	}
	_ = srv
}

// TestCachePersistsAcrossServers: a daemon restart with the same cache
// directory serves the previous daemon's results without re-measuring.
func TestCachePersistsAcrossServers(t *testing.T) {
	dir := t.TempDir()
	campaign := `{"system": "Gold 6148", "workloads": ["counting"], "seed": 41}`

	srv1, err := New(context.Background(), Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	_, body1 := postTune(t, ts1.URL, campaign)
	ts1.Close()

	srv2, err := New(context.Background(), Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	before := kernelExecutions.Load()
	resp, body2 := postTune(t, ts2.URL, campaign)
	if got := resp.Header.Get(CacheHeader); got != "hit" {
		t.Fatalf("restarted daemon %s = %q, want hit", CacheHeader, got)
	}
	if got := kernelExecutions.Load() - before; got != 0 {
		t.Fatalf("restarted daemon executed %d kernels, want 0", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("restarted daemon's response not byte-identical")
	}
}
