package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"rooftune"
	"rooftune/internal/dist"
	"rooftune/internal/serve/admit"
	"rooftune/internal/serve/budget"
	"rooftune/internal/serve/cache"
	"rooftune/internal/serve/jobs"
	"rooftune/internal/serve/metrics"
	servev1 "rooftune/serve/v1"
)

// The daemon's wire headers, defined in the versioned contract package;
// aliased here for the serving tier's historical import paths.
const (
	// CacheHeader reports whether a response was served from the
	// content-addressed cache ("hit") or freshly measured ("miss").
	CacheHeader = servev1.CacheHeader
	// FingerprintHeader carries the campaign's content address on every
	// tuning response, so clients can correlate, pre-warm, or debug cache
	// behaviour.
	FingerprintHeader = servev1.FingerprintHeader
	// JobHeader names the job that produced (or is producing) a response.
	JobHeader = servev1.JobHeader
	// ClientHeader identifies the submitting client for per-client fair
	// queuing.
	ClientHeader = servev1.ClientHeader
)

// Config configures a Server.
type Config struct {
	// CacheEntries bounds the result cache (<=0: the cache default).
	CacheEntries int
	// CacheDir, if set, persists cache entries across daemon restarts.
	CacheDir string
	// CacheTTL bounds every cache entry's lifetime (<=0: entries never
	// expire). Disk-persisted entries honor the TTL across restarts.
	CacheTTL time.Duration
	// CacheMinRun is the cache admission floor: results measured in less
	// than this are not cached — they are cheaper to recompute than to
	// hold an eviction slot (<=0: everything is cached).
	CacheMinRun time.Duration
	// Parallelism is the host-parallelism capacity divided among
	// concurrent runs (<=0: GOMAXPROCS).
	Parallelism int
	// MaxJobs bounds concurrently running jobs (<=0: unlimited, which
	// also disables queuing and shedding).
	MaxJobs int
	// QueueDepth bounds how many admitted jobs may wait for a run slot
	// across all clients; beyond it requests are shed with 429 (<=0 with
	// MaxJobs set: no queue — every excess request is shed).
	QueueDepth int
	// PerClientQueue bounds the queue share of any one client (keyed by
	// ClientHeader, falling back to the remote address), so one flood
	// cannot fill the whole queue (<=0: only QueueDepth bounds it).
	PerClientQueue int
	// RetryAfter is the hint carried on every shed response (<=0: 1s).
	// It is fixed configuration, not an estimate, so tests and clients
	// can rely on exact values.
	RetryAfter time.Duration
	// Workers lists roofworkerd base URLs. When non-empty the daemon
	// runs as the distributed tier's coordinator: cache and admission
	// stay in front, but each admitted campaign's plan-graph nodes fan
	// out to the fleet over the rooftune/dist/v1 contract, with
	// lease-based requeue and graceful local fallback (see
	// internal/dist).
	Workers []string
	// WorkerHeartbeat is the fleet health-probe interval (<=0: 2s).
	WorkerHeartbeat time.Duration
	// WorkerLease bounds how long one node dispatch may stay unanswered
	// before it is requeued to another worker (<=0: 60s).
	WorkerLease time.Duration
}

// Server is the daemon: routing, the job registry, the result cache,
// the admission controller, the shared host budget and the metrics
// plane. Construct with New, mount via Handler, and cancel the context
// passed to New to abort every in-flight run on shutdown.
type Server struct {
	base    context.Context
	cfg     Config
	cache   *cache.Cache
	reg     *jobs.Registry
	budget  *budget.Budget
	adm     *admit.Controller
	metrics *metrics.Set
	dist    *dist.Coordinator // nil unless Config.Workers is set
}

// New builds a Server. base bounds every job the daemon starts: cancel
// it on shutdown and in-flight runs abort between kernel executions.
func New(base context.Context, cfg Config) (*Server, error) {
	if base == nil {
		base = context.Background()
	}
	c, err := cache.New(cache.Config{
		MaxEntries: cfg.CacheEntries,
		Dir:        cfg.CacheDir,
		TTL:        cfg.CacheTTL,
		MinCost:    cfg.CacheMinRun,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		base:    base,
		cfg:     cfg,
		cache:   c,
		reg:     jobs.NewRegistry(),
		budget:  budget.New(cfg.Parallelism),
		metrics: metrics.NewSet(),
	}
	waitHist := s.metrics.Histogram("roofserve_admission_wait_seconds",
		"Time admitted jobs spent queued for a run slot.",
		[]float64{0.001, 0.01, 0.1, 0.5, 1, 5, 30})
	s.adm = admit.New(admit.Config{
		MaxJobs:    cfg.MaxJobs,
		QueueDepth: cfg.QueueDepth,
		PerClient:  cfg.PerClientQueue,
		RetryAfter: cfg.RetryAfter,
	}, func(wait time.Duration) { waitHist.Observe(wait.Seconds()) })
	s.registerMetrics()
	if len(cfg.Workers) > 0 {
		s.dist = dist.NewCoordinator(dist.Config{
			Workers:   cfg.Workers,
			Heartbeat: cfg.WorkerHeartbeat,
			Lease:     cfg.WorkerLease,
			Metrics:   s.metrics,
		})
		s.dist.Start(base)
	}
	return s, nil
}

// registerMetrics wires the pull side of the metrics plane: every gauge
// and counter below reads its component's own accounting at scrape
// time, so /metrics reconciles exactly with /v1/stats and with the
// cache headers the daemon sent.
func (s *Server) registerMetrics() {
	m := s.metrics
	m.CounterFunc("roofserve_cache_hits_total", "",
		"Lookups answered from the content-addressed result cache.",
		func() uint64 { return s.cache.Stats().Hits })
	m.CounterFunc("roofserve_cache_misses_total", "",
		"Lookups that required a fresh measurement (TTL expiries included).",
		func() uint64 { return s.cache.Stats().Misses })
	m.CounterFunc("roofserve_cache_evictions_total", "",
		"Entries evicted by the LRU bound.",
		func() uint64 { return s.cache.Stats().Evictions })
	m.CounterFunc("roofserve_cache_expired_total", "",
		"Lookups that found only a TTL-expired entry.",
		func() uint64 { return s.cache.Stats().Expired })
	m.CounterFunc("roofserve_cache_rejected_total", "",
		"Results refused by the cache admission floor (cheaper to recompute).",
		func() uint64 { return s.cache.Stats().Rejected })
	m.GaugeFunc("roofserve_cache_entries", "",
		"Resident cache entries.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	for _, st := range []jobs.State{jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateShed} {
		st := st
		m.GaugeFunc("roofserve_jobs", fmt.Sprintf("state=%q", string(st)),
			"Jobs the registry remembers, by lifecycle state.",
			func() float64 { return float64(s.reg.StateCounts()[st]) })
	}
	m.GaugeFunc("roofserve_job_watchers", "",
		"Connected consumers (synchronous waits and SSE streams) across all jobs.",
		func() float64 { return float64(s.reg.Watchers()) })
	m.CounterFunc("roofserve_admission_granted_total", "",
		"Admissions that obtained a run slot (immediately or after queuing).",
		func() uint64 { return s.adm.Stats().Granted })
	m.CounterFunc("roofserve_admission_shed_total", `reason="queue_full"`,
		"Requests shed by admission control, by reason.",
		func() uint64 { return s.adm.Stats().ShedQueueFull })
	m.CounterFunc("roofserve_admission_shed_total", `reason="client_quota"`,
		"Requests shed by admission control, by reason.",
		func() uint64 { return s.adm.Stats().ShedClientQuota })
	m.GaugeFunc("roofserve_admission_queue_depth", "",
		"Admitted jobs currently waiting for a run slot.",
		func() float64 { return float64(s.adm.Stats().Queued) })
	m.GaugeFunc("roofserve_budget_capacity", "",
		"Host-parallelism capacity divided among concurrent runs.",
		func() float64 { return float64(s.budget.Capacity()) })
	m.GaugeFunc("roofserve_budget_active", "",
		"Outstanding host-parallelism leases.",
		func() float64 { return float64(s.budget.Active()) })
	m.CounterFunc("roofserve_budget_contended_total", "",
		"Lease acquisitions that shared the host with other active runs.",
		func() uint64 { return s.budget.Contended() })
}

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/tune            submit a campaign, wait, return the Result
//	POST   /v1/jobs            submit a campaign, return a job handle
//	GET    /v1/jobs/{id}        job status (+ Result when done)
//	GET    /v1/jobs/{id}/events SSE stream of the job's progress events
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/healthz          liveness
//	GET    /v1/stats            cache / admission / budget / registry counters
//	GET    /metrics             Prometheus text-format exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tune", s.handleTune)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /metrics", s.metrics)
	return mux
}

// clientID keys per-client fair queuing: the ClientHeader when the
// client identifies itself, else the connection's remote host, else a
// shared anonymous bucket.
func clientID(r *http.Request) string {
	if id := r.Header.Get(ClientHeader); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil && host != "" {
		return host
	}
	if r.RemoteAddr != "" {
		return r.RemoteAddr
	}
	return "anonymous"
}

// resolve parses a campaign and computes its fingerprint — the cache
// key and singleflight identity. The throwaway session exists only to
// fingerprint; each run builds its own (a Session executes one Run at a
// time, and the run's session carries the job's progress hook and
// budget lease). The parsed wire campaign rides along because in
// coordinator mode it crosses to the workers verbatim.
func (s *Server) resolve(r *http.Request) (key string, camp Campaign, opts []rooftune.Option, err error) {
	camp, err = ParseCampaign(r.Body)
	if err != nil {
		return "", camp, nil, err
	}
	opts, err = CampaignOptions(camp)
	if err != nil {
		return "", camp, nil, err
	}
	sess, err := rooftune.New(opts...)
	if err != nil {
		return "", camp, nil, fmt.Errorf("serve: invalid campaign: %w", err)
	}
	key, err = sess.Fingerprint()
	if err != nil {
		return "", camp, nil, fmt.Errorf("serve: fingerprint: %w", err)
	}
	return key, camp, opts, nil
}

// launch returns the in-flight job for the fingerprint, starting a run
// if none exists. Exactly one concurrent caller per fingerprint passes
// admission and starts a run; the rest join whatever admission decided
// — including a shed (an identical flood costs one admission slot, not
// N). A shed job is terminal immediately, so every joiner observes the
// refusal and a later resubmission gets a fresh admission attempt.
func (s *Server) launch(key, client string, camp Campaign, opts []rooftune.Option) *jobs.Job {
	job, created := s.reg.GetOrCreate(key)
	if !created {
		return job
	}
	ticket, err := s.adm.Admit(client)
	if err != nil {
		var shed *admit.ShedError
		if errors.As(err, &shed) {
			job.Shed(shed.RetryAfter)
		} else {
			job.Fail(fmt.Errorf("serve: job %s: admission: %w", job.ID, err))
		}
		return job
	}
	ctx, cancel := context.WithCancel(s.base)
	// Arm before the goroutine runs: a job cancelled while it waits in
	// the admission queue must release its ticket, not its run.
	job.Arm(cancel)
	//rooflint:allow nogoroutine -- job executor; bounded by s.base, joined by job.Wait/terminal state before anyone reads the result
	go s.run(ctx, cancel, job, ticket, camp, opts)
	return job
}

// run executes one job: wait out the admission queue, move the job to
// running, acquire a host-budget lease, build the job's session
// (progress wired to the job's event history, host parallelism capped
// to the lease's share), run it, serialize, cache, finish.
func (s *Server) run(ctx context.Context, cancel context.CancelFunc, job *jobs.Job, ticket *admit.Ticket, camp Campaign, opts []rooftune.Option) {
	defer cancel()
	if err := ticket.Wait(ctx); err != nil {
		job.Fail(fmt.Errorf("serve: job %s: cancelled while queued: %w", job.ID, err))
		return
	}
	defer ticket.Release()
	job.Start(cancel)
	lease := s.budget.Acquire()
	defer lease.Release()
	opts = append(opts,
		rooftune.WithHostParallelism(lease.Share()),
		rooftune.WithProgress(job.Emit),
	)
	started := time.Now()
	var res *rooftune.Result
	var err error
	if s.dist != nil {
		// Coordinator mode: the campaign's plan-graph nodes fan out to
		// the worker fleet. Neither the lease share nor the progress
		// hook enters the fingerprint, so the coordinator addresses the
		// same content the cache key names; nodes that cannot be placed
		// remotely run locally inside the same schedule.
		res, err = s.dist.Run(ctx, camp, opts)
	} else {
		var sess *rooftune.Session
		sess, err = rooftune.New(opts...)
		if err != nil {
			job.Fail(fmt.Errorf("serve: job %s: %w", job.ID, err))
			return
		}
		res, err = sess.Run(ctx)
	}
	if err != nil {
		job.Fail(fmt.Errorf("serve: job %s: %w", job.ID, err))
		return
	}
	cost := time.Since(started)
	data, err := json.Marshal(res)
	if err != nil {
		job.Fail(fmt.Errorf("serve: job %s: serialize: %w", job.ID, err))
		return
	}
	if _, err := s.cache.Put(job.Key, data, cost); err != nil {
		// The run still succeeded; an uncacheable result is the job's
		// problem to report, not to hide. (A MinCost rejection is not an
		// error — the result simply is not worth a cache slot.)
		job.Fail(fmt.Errorf("serve: job %s: cache: %w", job.ID, err))
		return
	}
	job.Finish(data, false)
}

// handleTune is the synchronous path: answer from the cache if the
// fingerprint is stored (bytes verbatim — this is the byte-identity
// guarantee), otherwise run (or join) the campaign and wait. A client
// that disconnects while waiting releases its watch; if it was the last
// watcher, the run is cancelled.
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	key, camp, opts, err := s.resolve(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, servev1.CodeBadCampaign, err, 0)
		return
	}
	w.Header().Set(FingerprintHeader, key)
	if data, ok := s.cache.Get(key); ok {
		writeResult(w, data, true)
		return
	}
	job := s.launch(key, clientID(r), camp, opts)
	w.Header().Set(JobHeader, job.ID)
	job.AddWatcher()
	defer job.RemoveWatcher()
	if err := job.Wait(r.Context()); err != nil {
		// The client is gone; nobody will read this, but be well-formed.
		writeError(w, 499, servev1.CodeClientClosed, fmt.Errorf("serve: client closed request: %w", err), 0)
		return
	}
	snap := job.Snapshot()
	switch snap.State {
	case jobs.StateShed:
		writeError(w, http.StatusTooManyRequests, servev1.CodeOverloaded,
			errors.New("serve: overloaded: admission refused, retry later"), snap.RetryAfter)
	case jobs.StateFailed:
		writeError(w, http.StatusInternalServerError, servev1.CodeJobFailed, errors.New(snap.Err), 0)
	default:
		writeResult(w, snap.Result, snap.Cached)
	}
}

// statusOf renders a registry snapshot as the versioned wire status.
func statusOf(snap jobs.Snapshot) servev1.JobStatus {
	st := servev1.JobStatus{
		ID:                snap.ID,
		Fingerprint:       snap.Key,
		State:             servev1.State(snap.State),
		Cached:            snap.Cached,
		Events:            snap.Events,
		Error:             snap.Err,
		RetryAfterSeconds: retrySeconds(snap.RetryAfter),
	}
	if snap.State == jobs.StateDone {
		st.Result = snap.Result
	}
	return st
}

// handleSubmit is the asynchronous path: the job is pinned (its client
// polls; holding no connection is its normal state) and the response is
// its handle. A cache hit mints an already-done job so clients have one
// uniform flow; a shed admission answers 429 like the synchronous path.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	key, camp, opts, err := s.resolve(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, servev1.CodeBadCampaign, err, 0)
		return
	}
	w.Header().Set(FingerprintHeader, key)
	if data, ok := s.cache.Get(key); ok {
		job, created := s.reg.GetOrCreate(key)
		job.Pin()
		if created {
			job.Start(func() {})
			job.Finish(data, true)
		}
		w.Header().Set(JobHeader, job.ID)
		writeJSON(w, http.StatusOK, statusOf(job.Snapshot()))
		return
	}
	job := s.launch(key, clientID(r), camp, opts)
	job.Pin()
	w.Header().Set(JobHeader, job.ID)
	snap := job.Snapshot()
	if snap.State == jobs.StateShed {
		writeError(w, http.StatusTooManyRequests, servev1.CodeOverloaded,
			errors.New("serve: overloaded: admission refused, retry later"), snap.RetryAfter)
		return
	}
	writeJSON(w, http.StatusAccepted, statusOf(snap))
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, servev1.CodeNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")), 0)
		return
	}
	writeJSON(w, http.StatusOK, statusOf(job.Snapshot()))
}

// handleJobEvents streams the job's progress events as SSE: the full
// recorded history replays first (a late subscriber misses nothing),
// then each new event is pushed as it is emitted, and a final "end"
// event carries the terminal state. The stream counts as a watcher:
// disconnecting the last watcher of an unpinned job cancels it.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, servev1.CodeNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")), 0)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, servev1.CodeInternal, fmt.Errorf("serve: response writer cannot stream"), 0)
		return
	}
	job.AddWatcher()
	defer job.RemoveWatcher()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set(JobHeader, job.ID)
	h.Set(FingerprintHeader, job.Key)
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	cursor := 0
	for {
		evs, terminal, notify := job.EventsSince(cursor)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return // an unencodable event ends the stream, not the job
			}
			fmt.Fprintf(w, "data: %s\n\n", data)
		}
		if len(evs) > 0 {
			cursor += len(evs)
			flusher.Flush()
		}
		if terminal {
			snap := job.Snapshot()
			fmt.Fprintf(w, "event: end\ndata: {\"state\":%q}\n\n", snap.State)
			flusher.Flush()
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, servev1.CodeNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")), 0)
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, statusOf(job.Snapshot()))
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	stats := map[string]any{
		"cache":     s.cache.Stats(),
		"admission": s.adm.Stats(),
		"budget": map[string]any{
			"capacity":  s.budget.Capacity(),
			"active":    s.budget.Active(),
			"contended": s.budget.Contended(),
		},
		"jobs": map[string]int{
			"total":  s.reg.Len(),
			"active": s.reg.Active(),
		},
	}
	if s.dist != nil {
		live, dead := s.dist.Workers()
		stats["dist"] = map[string]any{
			"workers_live": live,
			"workers_dead": dead,
			"dispatch":     s.dist.Stats(),
		}
	}
	writeJSON(w, http.StatusOK, stats)
}

// writeResult writes serialized Result bytes verbatim, tagging the
// cache disposition in the header. The body is exactly the stored
// bytes on a hit — never re-decoded or re-encoded.
func writeResult(w http.ResponseWriter, data []byte, cached bool) {
	disposition := "miss"
	if cached {
		disposition = "hit"
	}
	w.Header().Set(CacheHeader, disposition)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// retrySeconds renders a retry hint in whole seconds, rounded up so the
// header never promises an earlier retry than the hint allows.
func retrySeconds(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return int((d + time.Second - 1) / time.Second)
}

// writeError writes the versioned structured error envelope; a non-zero
// retryAfter additionally sets the standard Retry-After header.
func writeError(w http.ResponseWriter, code int, ec servev1.ErrorCode, err error, retryAfter time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	secs := retrySeconds(retryAfter)
	if secs > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(servev1.ErrorEnvelope{Error: servev1.Error{
		Code:              ec,
		Message:           err.Error(),
		RetryAfterSeconds: secs,
	}})
}
