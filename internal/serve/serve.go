package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"rooftune"
	"rooftune/internal/serve/budget"
	"rooftune/internal/serve/cache"
	"rooftune/internal/serve/jobs"
)

// CacheHeader reports whether a response was served from the
// content-addressed cache ("hit") or freshly measured ("miss").
const CacheHeader = "X-Roofserve-Cache"

// FingerprintHeader carries the campaign's content address on every
// tuning response, so clients can correlate, pre-warm, or debug cache
// behaviour.
const FingerprintHeader = "X-Roofserve-Fingerprint"

// JobHeader names the job that produced (or is producing) a response.
const JobHeader = "X-Roofserve-Job"

// Config configures a Server.
type Config struct {
	// CacheEntries bounds the result cache (<=0: the cache default).
	CacheEntries int
	// CacheDir, if set, persists cache entries across daemon restarts.
	CacheDir string
	// Parallelism is the host-parallelism capacity divided among
	// concurrent runs (<=0: GOMAXPROCS).
	Parallelism int
}

// Server is the daemon: routing, the job registry, the result cache and
// the shared host budget. Construct with New, mount via Handler, and
// cancel the context passed to New to abort every in-flight run on
// shutdown.
type Server struct {
	base   context.Context
	cache  *cache.Cache
	reg    *jobs.Registry
	budget *budget.Budget
}

// New builds a Server. base bounds every job the daemon starts: cancel
// it on shutdown and in-flight runs abort between kernel executions.
func New(base context.Context, cfg Config) (*Server, error) {
	if base == nil {
		base = context.Background()
	}
	c, err := cache.New(cfg.CacheEntries, cfg.CacheDir)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return &Server{
		base:   base,
		cache:  c,
		reg:    jobs.NewRegistry(),
		budget: budget.New(cfg.Parallelism),
	}, nil
}

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/tune            submit a campaign, wait, return the Result
//	POST   /v1/jobs            submit a campaign, return a job handle
//	GET    /v1/jobs/{id}        job status (+ Result when done)
//	GET    /v1/jobs/{id}/events SSE stream of the job's progress events
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/healthz          liveness
//	GET    /v1/stats            cache / budget / registry counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tune", s.handleTune)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// resolve parses a campaign and computes its fingerprint — the cache
// key and singleflight identity. The throwaway session exists only to
// fingerprint; each run builds its own (a Session executes one Run at a
// time, and the run's session carries the job's progress hook and
// budget lease).
func (s *Server) resolve(r *http.Request) (key string, opts []rooftune.Option, err error) {
	campaign, err := ParseCampaign(r.Body)
	if err != nil {
		return "", nil, err
	}
	opts, err = campaign.Options()
	if err != nil {
		return "", nil, err
	}
	sess, err := rooftune.New(opts...)
	if err != nil {
		return "", nil, fmt.Errorf("serve: invalid campaign: %w", err)
	}
	key, err = sess.Fingerprint()
	if err != nil {
		return "", nil, fmt.Errorf("serve: fingerprint: %w", err)
	}
	return key, opts, nil
}

// launch returns the in-flight job for the fingerprint, starting a run
// if none exists. Exactly one concurrent caller per fingerprint starts
// a run; the rest join it.
func (s *Server) launch(key string, opts []rooftune.Option) *jobs.Job {
	job, created := s.reg.GetOrCreate(key)
	if !created {
		return job
	}
	ctx, cancel := context.WithCancel(s.base)
	job.Start(cancel)
	//rooflint:allow nogoroutine -- job executor; bounded by s.base, joined by job.Wait/terminal state before anyone reads the result
	go s.run(ctx, cancel, job, opts)
	return job
}

// run executes one job: acquire a host-budget lease, build the job's
// session (progress wired to the job's event history, host parallelism
// capped to the lease's share), run it, serialize, cache, finish.
func (s *Server) run(ctx context.Context, cancel context.CancelFunc, job *jobs.Job, opts []rooftune.Option) {
	defer cancel()
	lease := s.budget.Acquire()
	defer lease.Release()
	opts = append(opts,
		rooftune.WithHostParallelism(lease.Share()),
		rooftune.WithProgress(job.Emit),
	)
	sess, err := rooftune.New(opts...)
	if err != nil {
		job.Fail(fmt.Errorf("serve: job %s: %w", job.ID, err))
		return
	}
	res, err := sess.Run(ctx)
	if err != nil {
		job.Fail(fmt.Errorf("serve: job %s: %w", job.ID, err))
		return
	}
	data, err := json.Marshal(res)
	if err != nil {
		job.Fail(fmt.Errorf("serve: job %s: serialize: %w", job.ID, err))
		return
	}
	if err := s.cache.Put(job.Key, data); err != nil {
		// The run still succeeded; an uncacheable result is the job's
		// problem to report, not to hide.
		job.Fail(fmt.Errorf("serve: job %s: cache: %w", job.ID, err))
		return
	}
	job.Finish(data, false)
}

// handleTune is the synchronous path: answer from the cache if the
// fingerprint is stored (bytes verbatim — this is the byte-identity
// guarantee), otherwise run (or join) the campaign and wait. A client
// that disconnects while waiting releases its watch; if it was the last
// watcher, the run is cancelled.
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	key, opts, err := s.resolve(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set(FingerprintHeader, key)
	if data, ok := s.cache.Get(key); ok {
		writeResult(w, data, true)
		return
	}
	job := s.launch(key, opts)
	w.Header().Set(JobHeader, job.ID)
	job.AddWatcher()
	defer job.RemoveWatcher()
	if err := job.Wait(r.Context()); err != nil {
		// The client is gone; nobody will read this, but be well-formed.
		httpError(w, 499, fmt.Errorf("serve: client closed request: %w", err))
		return
	}
	snap := job.Snapshot()
	if snap.State == jobs.StateFailed {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("%s", snap.Err))
		return
	}
	writeResult(w, snap.Result, snap.Cached)
}

// jobStatus is the wire form of GET /v1/jobs/{id} and POST /v1/jobs.
type jobStatus struct {
	ID     string          `json:"id"`
	Key    string          `json:"fingerprint"`
	State  jobs.State      `json:"state"`
	Cached bool            `json:"cached,omitempty"`
	Events int             `json:"events"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func statusOf(snap jobs.Snapshot) jobStatus {
	st := jobStatus{
		ID:     snap.ID,
		Key:    snap.Key,
		State:  snap.State,
		Cached: snap.Cached,
		Events: snap.Events,
		Error:  snap.Err,
	}
	if snap.State == jobs.StateDone {
		st.Result = snap.Result
	}
	return st
}

// handleSubmit is the asynchronous path: the job is pinned (its client
// polls; holding no connection is its normal state) and the response is
// its handle. A cache hit mints an already-done job so clients have one
// uniform flow.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	key, opts, err := s.resolve(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set(FingerprintHeader, key)
	if data, ok := s.cache.Get(key); ok {
		job, created := s.reg.GetOrCreate(key)
		job.Pin()
		if created {
			job.Start(func() {})
			job.Finish(data, true)
		}
		w.Header().Set(JobHeader, job.ID)
		writeJSON(w, http.StatusOK, statusOf(job.Snapshot()))
		return
	}
	job := s.launch(key, opts)
	job.Pin()
	w.Header().Set(JobHeader, job.ID)
	writeJSON(w, http.StatusAccepted, statusOf(job.Snapshot()))
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, statusOf(job.Snapshot()))
}

// handleJobEvents streams the job's progress events as SSE: the full
// recorded history replays first (a late subscriber misses nothing),
// then each new event is pushed as it is emitted, and a final "end"
// event carries the terminal state. The stream counts as a watcher:
// disconnecting the last watcher of an unpinned job cancels it.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("serve: response writer cannot stream"))
		return
	}
	job.AddWatcher()
	defer job.RemoveWatcher()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set(JobHeader, job.ID)
	h.Set(FingerprintHeader, job.Key)
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	cursor := 0
	for {
		evs, terminal, notify := job.EventsSince(cursor)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return // an unencodable event ends the stream, not the job
			}
			fmt.Fprintf(w, "data: %s\n\n", data)
		}
		if len(evs) > 0 {
			cursor += len(evs)
			flusher.Flush()
		}
		if terminal {
			snap := job.Snapshot()
			fmt.Fprintf(w, "event: end\ndata: {\"state\":%q}\n\n", snap.State)
			flusher.Flush()
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")))
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, statusOf(job.Snapshot()))
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"cache": s.cache.Stats(),
		"budget": map[string]int{
			"capacity": s.budget.Capacity(),
			"active":   s.budget.Active(),
		},
		"jobs": map[string]int{
			"total":  s.reg.Len(),
			"active": s.reg.Active(),
		},
	})
}

// writeResult writes serialized Result bytes verbatim, tagging the
// cache disposition in the header. The body is exactly the stored
// bytes on a hit — never re-decoded or re-encoded.
func writeResult(w http.ResponseWriter, data []byte, cached bool) {
	disposition := "miss"
	if cached {
		disposition = "hit"
	}
	w.Header().Set(CacheHeader, disposition)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
