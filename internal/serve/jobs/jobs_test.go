package jobs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"rooftune"
)

const testKey = "0000000000000000000000000000000000000000000000000000000000000001"

func TestLifecycle(t *testing.T) {
	r := NewRegistry()
	j, created := r.GetOrCreate(testKey)
	if !created {
		t.Fatal("first GetOrCreate must create")
	}
	if s := j.Snapshot(); s.State != StateQueued {
		t.Fatalf("state = %s, want queued", s.State)
	}
	j.Start(func() {})
	if s := j.Snapshot(); s.State != StateRunning {
		t.Fatalf("state = %s, want running", s.State)
	}
	j.Emit(rooftune.Event{Kind: rooftune.EventSweepStarted, Sweep: "a", Cases: 3})
	j.Finish([]byte(`{"ok":true}`), false)
	s := j.Snapshot()
	if s.State != StateDone || string(s.Result) != `{"ok":true}` || s.Cached || s.Events != 1 {
		t.Fatalf("snapshot after finish = %+v", s)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// First completion wins: a late failure must not clobber the result.
	j.Fail(errors.New("late cancel"))
	if s := j.Snapshot(); s.State != StateDone || s.Err != "" {
		t.Fatalf("late Fail clobbered a done job: %+v", s)
	}
}

func TestSingleflightIndex(t *testing.T) {
	r := NewRegistry()
	a, created := r.GetOrCreate(testKey)
	if !created {
		t.Fatal("want created")
	}
	b, created := r.GetOrCreate(testKey)
	if created || b != a {
		t.Fatal("concurrent same-key submission must join the in-flight job")
	}
	if r.Active() != 1 {
		t.Fatalf("Active = %d, want 1", r.Active())
	}
	a.Start(func() {})
	a.Finish([]byte("x"), false)
	// Terminal jobs leave the index: a later same-key submission gets a
	// fresh run.
	c, created := r.GetOrCreate(testKey)
	if !created || c == a {
		t.Fatal("post-completion submission must create a fresh job")
	}
	if _, ok := r.Get(a.ID); !ok {
		t.Fatal("finished job forgotten by ID")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

// TestEventCursor pins the replay-then-live contract: a cursor started
// after some events replays them immediately, then observes each new
// append via the notify channel, and sees the full sequence in order.
func TestEventCursor(t *testing.T) {
	r := NewRegistry()
	j, _ := r.GetOrCreate(testKey)
	j.Start(func() {})
	for i := 0; i < 3; i++ {
		j.Emit(rooftune.Event{Kind: rooftune.EventCaseEvaluated, Cases: i})
	}

	var got []rooftune.Event
	cursor := 0
	evs, terminal, _ := j.EventsSince(cursor)
	if len(evs) != 3 || terminal {
		t.Fatalf("replay = %d events, terminal %v; want 3, false", len(evs), terminal)
	}
	got = append(got, evs...)
	cursor += len(evs)

	var wg sync.WaitGroup
	wg.Add(1)
	//rooflint:allow nogoroutine -- test consumer; joined by wg.Wait below
	go func() {
		defer wg.Done()
		for {
			evs, terminal, notify := j.EventsSince(cursor)
			got = append(got, evs...)
			cursor += len(evs)
			if terminal {
				return
			}
			select {
			case <-notify:
			case <-time.After(5 * time.Second):
				t.Error("cursor starved")
				return
			}
		}
	}()
	for i := 3; i < 6; i++ {
		j.Emit(rooftune.Event{Kind: rooftune.EventCaseEvaluated, Cases: i})
	}
	j.Finish([]byte("x"), false)
	wg.Wait()

	if len(got) != 6 {
		t.Fatalf("observed %d events, want 6", len(got))
	}
	for i, ev := range got {
		if ev.Cases != i {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
	}
}

func TestDisconnectCancelsUnpinned(t *testing.T) {
	r := NewRegistry()
	j, _ := r.GetOrCreate(testKey)
	cancelled := make(chan struct{})
	var once sync.Once
	j.Start(func() { once.Do(func() { close(cancelled) }) })

	j.AddWatcher()
	j.AddWatcher()
	j.RemoveWatcher()
	select {
	case <-cancelled:
		t.Fatal("cancelled while a watcher remained")
	default:
	}
	j.RemoveWatcher()
	select {
	case <-cancelled:
	default:
		t.Fatal("last watcher left an unpinned running job uncancelled")
	}
}

func TestPinnedSurvivesDisconnect(t *testing.T) {
	r := NewRegistry()
	j, _ := r.GetOrCreate(testKey)
	cancelled := false
	j.Start(func() { cancelled = true })
	j.Pin()
	j.AddWatcher()
	j.RemoveWatcher()
	if cancelled {
		t.Fatal("pinned job cancelled on disconnect")
	}
}

func TestTerminalJobNotCancelledByDisconnect(t *testing.T) {
	r := NewRegistry()
	j, _ := r.GetOrCreate(testKey)
	cancelled := false
	j.Start(func() { cancelled = true })
	j.AddWatcher()
	j.Finish([]byte("x"), true)
	j.RemoveWatcher()
	if cancelled {
		t.Fatal("disconnect after completion invoked cancel")
	}
}

func TestWaitHonoursContext(t *testing.T) {
	r := NewRegistry()
	j, _ := r.GetOrCreate(testKey)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := j.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
}

func TestIDsAreSequential(t *testing.T) {
	r := NewRegistry()
	a, _ := r.GetOrCreate(testKey)
	b, _ := r.GetOrCreate(strings.Repeat("ab", 32))
	if a.ID == b.ID {
		t.Fatalf("distinct jobs share ID %s", a.ID)
	}
}
