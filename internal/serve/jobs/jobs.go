// Package jobs tracks the serving tier's tuning runs: lifecycle state,
// the recorded progress-event history, and the watcher accounting that
// decides when an abandoned run should be cancelled.
//
// Each Job records every rooftune.Event its session emits. Consumers
// read the stream with a cursor (EventsSince) — history replays
// instantly, then the returned notify channel signals each append — so
// a late SSE subscriber observes exactly the same event sequence a
// WithProgress callback saw, and a slow subscriber never back-pressures
// the run (it only falls behind its own cursor).
//
// Watcher accounting implements disconnect cancellation: synchronous
// requests and SSE streams register as watchers, and when the last
// watcher of an unpinned job disconnects the job's context is cancelled
// — nobody is waiting for the answer. Jobs submitted asynchronously are
// pinned: their clients poll, so no-watchers is their normal state.
package jobs

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rooftune"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle states. Terminal states are StateDone, StateFailed and
// StateShed; cancellation surfaces as StateFailed with a context error
// message, and admission refusals as StateShed with a retry-after hint.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
	StateShed    State = "shed"
)

// isTerminal reports whether a state admits no further transitions.
func isTerminal(s State) bool {
	return s == StateDone || s == StateFailed || s == StateShed
}

// Job is one tuning run under the daemon.
type Job struct {
	// ID is the registry-assigned handle clients poll.
	ID string
	// Key is the session fingerprint the job computes — the cache key
	// its result is stored under and the singleflight identity that
	// collapses concurrent identical submissions onto this job.
	Key string

	mu         sync.Mutex
	state      State
	errMsg     string
	result     []byte
	cached     bool
	retryAfter time.Duration
	events     []rooftune.Event
	notify     chan struct{}
	done       chan struct{}
	cancel     context.CancelFunc
	watchers   int
	pinned     bool

	onTerminal func(*Job)
}

// Snapshot is a point-in-time copy of a job's externally visible state.
type Snapshot struct {
	ID     string
	Key    string
	State  State
	Err    string
	Result []byte
	Cached bool
	Events int
	// RetryAfter is the resubmission hint of a shed job; zero otherwise.
	RetryAfter time.Duration
}

// Snapshot returns the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:         j.ID,
		Key:        j.Key,
		State:      j.state,
		Err:        j.errMsg,
		Result:     j.result,
		Cached:     j.cached,
		Events:     len(j.events),
		RetryAfter: j.retryAfter,
	}
}

// Arm installs the cancel function on a still-queued job so disconnect
// cancellation and explicit Cancel reach it before it holds a run slot
// (a job waiting in the admission queue must still be abortable).
func (j *Job) Arm(cancel context.CancelFunc) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.cancel = cancel
	}
}

// Start moves the job to running and installs the cancel function that
// disconnect cancellation and explicit Cancel invoke.
func (j *Job) Start(cancel context.CancelFunc) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		panic(fmt.Sprintf("jobs: Start on %s job %s", j.state, j.ID))
	}
	j.state = StateRunning
	j.cancel = cancel
	j.broadcast()
}

// Emit appends one progress event to the job's history and wakes every
// cursor blocked on the notify channel. It is safe from any goroutine —
// it is the job's WithProgress callback.
func (j *Job) Emit(ev rooftune.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	j.broadcast()
}

// Finish completes the job with its serialized Result bytes; cached
// records whether they came from the content-addressed cache rather
// than a fresh measurement.
func (j *Job) Finish(result []byte, cached bool) {
	j.terminal(StateDone, "", result, cached)
}

// Fail completes the job with an error.
func (j *Job) Fail(err error) {
	j.terminal(StateFailed, err.Error(), nil, false)
}

// Shed completes the job as refused by admission control: it never held
// a run slot and the client may resubmit after retryAfter. Every
// singleflight joiner of the job observes the same refusal.
func (j *Job) Shed(retryAfter time.Duration) {
	j.mu.Lock()
	j.retryAfter = retryAfter
	j.mu.Unlock()
	j.terminal(StateShed, "admission refused: daemon overloaded", nil, false)
}

func (j *Job) terminal(state State, errMsg string, result []byte, cached bool) {
	j.mu.Lock()
	if isTerminal(j.state) {
		j.mu.Unlock()
		return // first completion wins; a late ctx error must not clobber a result
	}
	j.state = state
	j.errMsg = errMsg
	j.result = result
	j.cached = cached
	close(j.done)
	j.broadcast()
	hook := j.onTerminal
	j.mu.Unlock()
	if hook != nil {
		hook(j)
	}
}

// broadcast wakes every blocked cursor. Callers hold j.mu.
func (j *Job) broadcast() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// EventsSince returns a copy of the events from cursor position i
// onward, whether the job has reached a terminal state, and a channel
// that is closed on the next change. The consumer loop is:
// drain the slice, advance the cursor, and if not terminal wait on
// notify (or the consumer's own context).
func (j *Job) EventsSince(i int) (evs []rooftune.Event, terminal bool, notify <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < 0 {
		i = 0
	}
	if i < len(j.events) {
		evs = append(evs, j.events[i:]...)
	}
	return evs, isTerminal(j.state), j.notify
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Pin marks the job as surviving without watchers (asynchronous
// submissions, whose clients poll instead of holding a connection).
func (j *Job) Pin() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.pinned = true
}

// AddWatcher registers a connected consumer (a synchronous request or
// an SSE stream).
func (j *Job) AddWatcher() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.watchers++
}

// RemoveWatcher deregisters a consumer. When the last watcher of an
// unpinned, still-running job leaves, the job is cancelled: its answer
// has no audience, and the campaign can be re-submitted later — the
// content-addressed cache makes retries cheap.
func (j *Job) RemoveWatcher() {
	j.mu.Lock()
	if j.watchers <= 0 {
		panic(fmt.Sprintf("jobs: watcher underflow on job %s", j.ID))
	}
	j.watchers--
	cancel := j.cancel
	abandoned := j.watchers == 0 && !j.pinned &&
		(j.state == StateQueued || j.state == StateRunning)
	j.mu.Unlock()
	if abandoned && cancel != nil {
		cancel()
	}
}

// Cancel aborts the job explicitly (DELETE from a client). A terminal
// job is unaffected.
func (j *Job) Cancel() {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Registry indexes jobs by ID and, while they are in flight, by
// fingerprint key — the singleflight index that collapses concurrent
// identical submissions onto one run.
type Registry struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	active map[string]*Job
	seq    int
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		jobs:   make(map[string]*Job),
		active: make(map[string]*Job),
	}
}

// GetOrCreate returns the in-flight job for the fingerprint key,
// creating one if none exists. created reports whether this call made
// the job — exactly one caller per key observes true and owns starting
// the run; everyone else joins the existing job.
func (r *Registry) GetOrCreate(key string) (job *Job, created bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.active[key]; ok {
		return j, false
	}
	r.seq++
	j := &Job{
		ID:     fmt.Sprintf("j-%d", r.seq),
		Key:    key,
		state:  StateQueued,
		notify: make(chan struct{}),
		done:   make(chan struct{}),
		onTerminal: func(j *Job) {
			// A finished job leaves the singleflight index: a later
			// same-key submission that misses the cache (eviction)
			// must get a fresh run, not a stale handle.
			r.mu.Lock()
			if r.active[j.Key] == j {
				delete(r.active, j.Key)
			}
			r.mu.Unlock()
		},
	}
	r.jobs[j.ID] = j
	r.active[key] = j
	return j, true
}

// Get returns the job with the given ID.
func (r *Registry) Get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// Len reports how many jobs the registry remembers (all states).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}

// Active reports how many jobs are currently queued or running.
func (r *Registry) Active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}

// StateCounts tallies every remembered job by lifecycle state — the
// jobs-by-state gauge family on /metrics. Job locks nest inside the
// registry lock (the terminal hook runs outside the job lock, so the
// reverse order never occurs).
func (r *Registry) StateCounts() map[State]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	counts := make(map[State]int, 5)
	for _, j := range r.jobs {
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	return counts
}

// Watchers sums the connected consumers (synchronous requests and SSE
// streams) across all jobs — the SSE watcher-count gauge on /metrics.
func (r *Registry) Watchers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for _, j := range r.jobs {
		j.mu.Lock()
		total += j.watchers
		j.mu.Unlock()
	}
	return total
}
