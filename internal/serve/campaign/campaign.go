// Package campaign resolves the versioned rooftune/serve/v1 wire
// campaign into Session options. It is the one place a wire campaign
// becomes executable intent, shared by the serving tier (internal/serve
// resolves whole campaigns) and the distributed tier (internal/dist
// workers resolve the campaign fragment a node spec carries) — both
// must resolve identically, or a worker would measure a different
// session than the coordinator fingerprinted.
package campaign

import (
	"fmt"
	"io"
	"time"

	"rooftune"
	"rooftune/internal/bench"
	"rooftune/internal/core"
	"rooftune/internal/units"
	servev1 "rooftune/serve/v1"
)

// Parse decodes a campaign, rejecting unknown fields — a typoed knob
// must fail the request, not silently run the default campaign and
// cache it under the wrong intent.
func Parse(r io.Reader) (servev1.Campaign, error) {
	return servev1.ParseCampaign(r)
}

// Options resolves a wire campaign into session options. The case-shard
// count is always pinned to one: adaptive sharding may change the
// search-cost accounting run to run, which would break the cache's
// byte-identity guarantee (see rooftune.Session.Fingerprint).
func Options(c servev1.Campaign) ([]rooftune.Option, error) {
	if c.System == "" {
		return nil, fmt.Errorf("serve: campaign has no system: the daemon serves simulated campaigns only")
	}
	opts := []rooftune.Option{
		rooftune.WithSystem(c.System),
		rooftune.WithCaseShards(1),
	}
	if len(c.Workloads) > 0 {
		opts = append(opts, rooftune.WithWorkloads(c.Workloads...))
	}
	if c.Seed != 0 {
		opts = append(opts, rooftune.WithSeed(c.Seed))
	}
	if len(c.Space) > 0 {
		dims := make([]core.Dims, len(c.Space))
		for i, d := range c.Space {
			dims[i] = core.Dims{N: d.N, M: d.M, K: d.K}
		}
		opts = append(opts, rooftune.WithSpace(dims))
	}
	if c.Budget != nil {
		opts = append(opts, rooftune.WithBudget(ResolveBudget(*c.Budget)))
	}
	if c.TriadLoBytes != 0 || c.TriadHiBytes != 0 {
		if c.TriadLoBytes < 0 || c.TriadHiBytes < 0 {
			return nil, fmt.Errorf("serve: negative TRIAD bounds %d..%d", c.TriadLoBytes, c.TriadHiBytes)
		}
		opts = append(opts, rooftune.WithTriadRange(units.ByteSize(c.TriadLoBytes), units.ByteSize(c.TriadHiBytes)))
	}
	if len(c.TriadLevels) > 0 {
		opts = append(opts, rooftune.WithTriadLevels(c.TriadLevels...))
	}
	if c.Chain {
		opts = append(opts, rooftune.WithSweepChaining(true))
	}
	if c.SpMVN != 0 || c.SpMVNNZPerRow != 0 {
		opts = append(opts, rooftune.WithSpMVShape(c.SpMVN, c.SpMVNNZPerRow))
	}
	if c.StencilNX != 0 || c.StencilNY != 0 {
		opts = append(opts, rooftune.WithStencilGrid(c.StencilNX, c.StencilNY))
	}
	if c.Serial {
		opts = append(opts, rooftune.WithSerial())
	}
	return opts, nil
}

// ResolveBudget applies the spec's overrides on top of the session
// default budget (Table I, Confidence+Inner+Outer).
func ResolveBudget(b servev1.BudgetSpec) bench.Budget {
	out := bench.DefaultBudget().WithFlags(true, true, true)
	if b.Invocations > 0 {
		out.Invocations = b.Invocations
	}
	if b.MaxIterations > 0 {
		out.MaxIterations = b.MaxIterations
	}
	if b.MaxTimeMs > 0 {
		out.MaxTime = time.Duration(b.MaxTimeMs) * time.Millisecond
	}
	if b.Confidence != nil {
		out.UseConfidence = *b.Confidence
	}
	if b.InnerBound != nil {
		out.UseInnerBound = *b.InnerBound
	}
	if b.OuterBound != nil {
		out.UseOuterBound = *b.OuterBound
	}
	if b.MinCount > 0 {
		out.MinCount = b.MinCount
	}
	return out
}
