// Package admit is the serving tier's admission controller: it bounds
// how many tuning runs execute concurrently, how many may wait, and how
// much of the wait queue any one client may occupy.
//
// The controller sits in front of the jobs registry, so it only ever
// sees work that is genuinely new: cache hits cost nothing and
// singleflight joins ride an existing admission, which is why an
// identical flood collapses to one slot while a distinct flood is shed.
// Shedding is deterministic — a request is refused if and only if the
// global queue is full or the client's queue quota is exhausted at
// arrival — and every refusal carries the same configured retry-after
// hint, so clients can be tested against exact values.
//
// Fairness is round-robin across clients: grants rotate through the
// clients that have waiters, one waiter per turn, so a client that
// enqueues fifty campaigns cannot starve a client that enqueued one.
// The per-client quota additionally bounds how much of the queue a
// single client may fill.
package admit

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Shed reasons, carried on ShedError and usable as metric labels.
const (
	// ReasonQueueFull: the global wait queue was at QueueDepth.
	ReasonQueueFull = "queue_full"
	// ReasonClientQuota: the client already holds PerClient waiters.
	ReasonClientQuota = "client_quota"
)

// ShedError is a deterministic admission refusal: the request never
// held a slot and may be retried after RetryAfter.
type ShedError struct {
	// Reason is ReasonQueueFull or ReasonClientQuota.
	Reason string
	// RetryAfter is the daemon's resubmission hint.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admit: shed (%s): retry after %s", e.Reason, e.RetryAfter)
}

// Config bounds the controller.
type Config struct {
	// MaxJobs is the number of concurrently running jobs (<=0:
	// unlimited — every Admit grants immediately).
	MaxJobs int
	// QueueDepth bounds the waiters across all clients (<=0: no queue —
	// a request that cannot run immediately is shed).
	QueueDepth int
	// PerClient bounds the waiters any one client may hold (<=0: only
	// the global QueueDepth bounds a client).
	PerClient int
	// RetryAfter is the hint carried on every ShedError (<=0: 1s).
	RetryAfter time.Duration
}

// Stats is a point-in-time controller snapshot.
type Stats struct {
	// Running is the number of slots currently held.
	Running int `json:"running"`
	// Queued is the number of waiters across all clients.
	Queued int `json:"queued"`
	// Clients is the number of distinct clients with waiters.
	Clients int `json:"clients"`
	// Granted counts every admission that obtained a slot (immediate or
	// after queuing).
	Granted uint64 `json:"granted"`
	// ShedQueueFull / ShedClientQuota count refusals by reason.
	ShedQueueFull   uint64 `json:"shedQueueFull"`
	ShedClientQuota uint64 `json:"shedClientQuota"`
}

// waiter is one queued admission.
type waiter struct {
	client   string
	ch       chan struct{}
	enqueued time.Time
	granted  bool
}

// Ticket is one admitted (or queued) request's claim. Wait for the
// grant, then Release exactly once when the run ends. A Wait that
// returns an error consumed the ticket — the waiter left the queue and
// there is nothing to release.
type Ticket struct {
	c *Controller
	w *waiter

	mu       sync.Mutex
	released bool
}

// Controller implements the admission policy. The zero value is not
// usable; construct with New.
type Controller struct {
	cfg Config
	// obs, when non-nil, observes every grant's queue-wait duration
	// (zero for immediate grants). Called outside the controller lock.
	obs func(wait time.Duration)
	now func() time.Time

	mu      sync.Mutex
	running int
	queued  int
	queues  map[string][]*waiter
	ring    []string // clients with waiters, in rotation order
	next    int      // ring cursor: the client whose turn is next

	granted         uint64
	shedQueueFull   uint64
	shedClientQuota uint64
}

// New builds a controller. obs, when non-nil, receives every grant's
// queue-wait duration — the metrics plane's wait-latency histogram.
func New(cfg Config, obs func(wait time.Duration)) *Controller {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	return &Controller{
		cfg:    cfg,
		obs:    obs,
		now:    time.Now,
		queues: make(map[string][]*waiter),
	}
}

// grantedWaiter returns a pre-granted waiter so immediate admissions
// share the queued-grant code path.
func grantedWaiter(client string, at time.Time) *waiter {
	ch := make(chan struct{})
	close(ch)
	return &waiter{client: client, ch: ch, enqueued: at, granted: true}
}

// Admit decides the request's fate at arrival: an immediate grant when
// a slot is free, a queued ticket when the queue has room for this
// client, or a ShedError. It never blocks; block on Ticket.Wait.
func (c *Controller) Admit(client string) (*Ticket, error) {
	c.mu.Lock()
	now := c.now()
	if c.cfg.MaxJobs <= 0 || (c.running < c.cfg.MaxJobs && c.queued == 0) {
		c.running++
		c.granted++
		c.mu.Unlock()
		if c.obs != nil {
			c.obs(0)
		}
		return &Ticket{c: c, w: grantedWaiter(client, now)}, nil
	}
	if c.queued >= c.cfg.QueueDepth {
		c.shedQueueFull++
		c.mu.Unlock()
		return nil, &ShedError{Reason: ReasonQueueFull, RetryAfter: c.cfg.RetryAfter}
	}
	if c.cfg.PerClient > 0 && len(c.queues[client]) >= c.cfg.PerClient {
		c.shedClientQuota++
		c.mu.Unlock()
		return nil, &ShedError{Reason: ReasonClientQuota, RetryAfter: c.cfg.RetryAfter}
	}
	w := &waiter{client: client, ch: make(chan struct{}), enqueued: now}
	if len(c.queues[client]) == 0 {
		c.ring = append(c.ring, client)
	}
	c.queues[client] = append(c.queues[client], w)
	c.queued++
	c.mu.Unlock()
	return &Ticket{c: c, w: w}, nil
}

// promote hands the freed slot to the next waiter, rotating round-robin
// across clients. Caller holds c.mu; the returned waiter's channel is
// closed by the caller after unlocking (no channel ops under the lock).
func (c *Controller) promote() *waiter {
	if c.queued == 0 || c.running >= c.cfg.MaxJobs {
		return nil
	}
	if c.next >= len(c.ring) {
		c.next = 0
	}
	client := c.ring[c.next]
	q := c.queues[client]
	w := q[0]
	if len(q) == 1 {
		delete(c.queues, client)
		c.ring = append(c.ring[:c.next], c.ring[c.next+1:]...)
		// The cursor now indexes the following client; nothing to do.
	} else {
		c.queues[client] = q[1:]
		c.next++
	}
	c.queued--
	c.running++
	c.granted++
	w.granted = true
	return w
}

// release returns a held slot and promotes the next waiter.
func (c *Controller) release() {
	c.mu.Lock()
	c.running--
	if c.running < 0 {
		c.mu.Unlock()
		panic("admit: running count underflow")
	}
	w := c.promote()
	var wait time.Duration
	if w != nil {
		wait = c.now().Sub(w.enqueued)
	}
	c.mu.Unlock()
	if w != nil {
		close(w.ch)
		if c.obs != nil {
			c.obs(wait)
		}
	}
}

// abandon removes a still-queued waiter (its context was cancelled).
// Reports false if the waiter had already been granted — the caller
// then owns a slot after all.
func (c *Controller) abandon(w *waiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.granted {
		return false
	}
	q := c.queues[w.client]
	for i, qw := range q {
		if qw == w {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(c.queues, w.client)
		for i, cl := range c.ring {
			if cl == w.client {
				c.ring = append(c.ring[:i], c.ring[i+1:]...)
				if i < c.next {
					c.next--
				}
				break
			}
		}
	} else {
		c.queues[w.client] = q
	}
	c.queued--
	return true
}

// Wait blocks until the ticket's slot is granted or ctx is done. A nil
// return means the caller holds the slot and must Release it; an error
// means the waiter left the queue and the ticket is dead.
func (t *Ticket) Wait(ctx context.Context) error {
	select {
	case <-t.w.ch:
		return nil
	case <-ctx.Done():
		if !t.c.abandon(t.w) {
			// The grant raced the cancellation and won: the caller owns
			// the slot; its next context check will unwind it normally.
			<-t.w.ch
			return nil
		}
		t.mu.Lock()
		t.released = true // nothing to release; make a late Release loud
		t.mu.Unlock()
		return fmt.Errorf("admit: abandoned while queued: %w", ctx.Err())
	}
}

// Release returns the slot. Releasing twice, or releasing a ticket
// whose Wait failed, is a bug and panics loudly rather than silently
// corrupting the admission accounting.
func (t *Ticket) Release() {
	t.mu.Lock()
	if t.released {
		t.mu.Unlock()
		panic("admit: ticket released twice")
	}
	t.released = true
	t.mu.Unlock()
	t.c.release()
}

// Stats snapshots the controller's counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Running:         c.running,
		Queued:          c.queued,
		Clients:         len(c.queues),
		Granted:         c.granted,
		ShedQueueFull:   c.shedQueueFull,
		ShedClientQuota: c.shedClientQuota,
	}
}
