package admit

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// grant returns a Ticket that must be immediately granted (Wait does
// not block).
func grant(t *testing.T, c *Controller, client string) *Ticket {
	t.Helper()
	tk, err := c.Admit(client)
	if err != nil {
		t.Fatalf("Admit(%s): %v", client, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tk.Wait(ctx); err != nil {
		t.Fatalf("Wait(%s): %v", client, err)
	}
	return tk
}

// queued returns a Ticket that must be admitted into the queue (no
// error) without asserting anything about when it is granted.
func queued(t *testing.T, c *Controller, client string) *Ticket {
	t.Helper()
	tk, err := c.Admit(client)
	if err != nil {
		t.Fatalf("Admit(%s): %v", client, err)
	}
	return tk
}

// shed asserts the admission is refused with the given reason.
func shed(t *testing.T, c *Controller, client, reason string) *ShedError {
	t.Helper()
	_, err := c.Admit(client)
	se, ok := err.(*ShedError)
	if !ok {
		t.Fatalf("Admit(%s): got %v, want *ShedError", client, err)
	}
	if se.Reason != reason {
		t.Fatalf("Admit(%s): shed reason %q, want %q", client, se.Reason, reason)
	}
	return se
}

func TestUnlimitedAlwaysGrants(t *testing.T) {
	c := New(Config{}, nil)
	var tickets []*Ticket
	for i := 0; i < 50; i++ {
		tickets = append(tickets, grant(t, c, "a"))
	}
	if s := c.Stats(); s.Running != 50 || s.Granted != 50 || s.Queued != 0 {
		t.Fatalf("stats after 50 unlimited grants: %+v", s)
	}
	for _, tk := range tickets {
		tk.Release()
	}
	if s := c.Stats(); s.Running != 0 {
		t.Fatalf("running after release: %d", s.Running)
	}
}

func TestQueueGrantsOnRelease(t *testing.T) {
	c := New(Config{MaxJobs: 1, QueueDepth: 4}, nil)
	first := grant(t, c, "a")
	second := queued(t, c, "b")

	done := make(chan error, 1)
	go func() { done <- second.Wait(context.Background()) }()
	select {
	case err := <-done:
		t.Fatalf("queued ticket granted before release: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	first.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued ticket never granted after release")
	}
	second.Release()
	if s := c.Stats(); s.Running != 0 || s.Queued != 0 || s.Granted != 2 {
		t.Fatalf("final stats: %+v", s)
	}
}

// TestShedOrderQueueFullFirst pins the deterministic shed order: the
// global queue bound is checked before the per-client quota, so a
// request that violates both sheds as queue_full.
func TestShedOrderQueueFullFirst(t *testing.T) {
	c := New(Config{MaxJobs: 1, QueueDepth: 1, PerClient: 1}, nil)
	running := grant(t, c, "a")
	waiting := queued(t, c, "a")
	shed(t, c, "a", ReasonQueueFull) // violates both bounds; queue_full wins
	shed(t, c, "b", ReasonQueueFull) // a fresh client is still refused

	if s := c.Stats(); s.ShedQueueFull != 2 || s.ShedClientQuota != 0 {
		t.Fatalf("shed counters: %+v", s)
	}
	running.Release()
	if err := waiting.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	waiting.Release()
}

func TestPerClientQuota(t *testing.T) {
	c := New(Config{MaxJobs: 1, QueueDepth: 4, PerClient: 1}, nil)
	running := grant(t, c, "a")
	aWaiter := queued(t, c, "a")
	shed(t, c, "a", ReasonClientQuota) // a already holds its one slot
	bWaiter := queued(t, c, "b")       // other clients are unaffected
	shed(t, c, "b", ReasonClientQuota)

	if s := c.Stats(); s.Queued != 2 || s.Clients != 2 || s.ShedClientQuota != 2 {
		t.Fatalf("stats: %+v", s)
	}
	running.Release()
	if err := aWaiter.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	aWaiter.Release()
	if err := bWaiter.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	bWaiter.Release()
}

func TestRetryAfterHint(t *testing.T) {
	c := New(Config{MaxJobs: 1, QueueDepth: 0, RetryAfter: 2 * time.Second}, nil)
	running := grant(t, c, "a")
	if se := shed(t, c, "b", ReasonQueueFull); se.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter = %s, want 2s", se.RetryAfter)
	}
	running.Release()

	// The zero config defaults the hint to one second.
	c = New(Config{MaxJobs: 1}, nil)
	running = grant(t, c, "a")
	if se := shed(t, c, "b", ReasonQueueFull); se.RetryAfter != time.Second {
		t.Fatalf("default RetryAfter = %s, want 1s", se.RetryAfter)
	}
	running.Release()
}

// TestRoundRobinFairness pins the grant rotation: with client a holding
// three queue slots and clients b and c one each, grants alternate
// across clients instead of draining a first.
func TestRoundRobinFairness(t *testing.T) {
	c := New(Config{MaxJobs: 1, QueueDepth: 8}, nil)
	running := grant(t, c, "a")

	granted := make(chan string, 8)
	var tickets []*Ticket
	// Enqueue order: a, a, a, b, c. Ring order is first-waiter order.
	for _, client := range []string{"a", "a", "a", "b", "c"} {
		tk := queued(t, c, client)
		tickets = append(tickets, tk)
		client := client
		go func() {
			if err := tk.Wait(context.Background()); err == nil {
				granted <- client
			}
		}()
	}

	// Each release grants exactly one waiter; collect the rotation.
	var order []string
	release := running
	for i := 0; i < 5; i++ {
		release.Release()
		select {
		case client := <-granted:
			order = append(order, client)
		case <-time.After(5 * time.Second):
			t.Fatalf("no grant after release %d (order so far %v)", i, order)
		}
		// The granted ticket is the next to release. Tickets grant in
		// FIFO order within a client, so match by client name.
		for _, tk := range tickets {
			if tk.w.client == order[len(order)-1] && tk.w.granted && !tk.released {
				release = tk
				break
			}
		}
	}
	release.Release()

	want := "a b c a a"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("grant order %q, want %q", got, want)
	}
	if s := c.Stats(); s.Running != 0 || s.Queued != 0 || s.Granted != 6 {
		t.Fatalf("final stats: %+v", s)
	}
}

func TestAbandonWhileQueued(t *testing.T) {
	c := New(Config{MaxJobs: 1, QueueDepth: 4}, nil)
	running := grant(t, c, "a")
	waiting := queued(t, c, "b")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := waiting.Wait(ctx); err == nil {
		t.Fatal("Wait with cancelled context returned nil for a queued ticket")
	}
	if s := c.Stats(); s.Queued != 0 || s.Clients != 0 {
		t.Fatalf("stats after abandon: %+v", s)
	}

	// The abandoned slot must not be granted: releasing the runner leaves
	// the controller idle.
	running.Release()
	if s := c.Stats(); s.Running != 0 || s.Granted != 1 {
		t.Fatalf("stats after release: %+v", s)
	}
}

// TestWaitGrantRace: a ticket granted before its context is cancelled
// owns the slot — Wait returns nil even with a dead context, whichever
// select branch fires first.
func TestWaitGrantRace(t *testing.T) {
	c := New(Config{MaxJobs: 1, QueueDepth: 4}, nil)
	running := grant(t, c, "a")
	waiting := queued(t, c, "b")

	running.Release() // grants b before anyone Waits
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := waiting.Wait(ctx); err != nil {
		t.Fatalf("Wait on granted ticket with cancelled context: %v", err)
	}
	waiting.Release()
}

func TestDoubleReleasePanics(t *testing.T) {
	c := New(Config{MaxJobs: 1}, nil)
	tk := grant(t, c, "a")
	tk.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	tk.Release()
}

// TestObsSeesEveryGrant: the wait observer fires once per grant —
// immediately with zero wait for free-slot admissions, and after the
// queue wait for promoted ones.
func TestObsSeesEveryGrant(t *testing.T) {
	var calls atomic.Uint64
	var zeroWaits atomic.Uint64
	c := New(Config{MaxJobs: 1, QueueDepth: 4}, func(wait time.Duration) {
		calls.Add(1)
		if wait == 0 {
			zeroWaits.Add(1)
		}
	})
	first := grant(t, c, "a")
	second := queued(t, c, "b")
	first.Release()
	if err := second.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	second.Release()
	if calls.Load() != 2 {
		t.Fatalf("obs calls = %d, want 2", calls.Load())
	}
	if zeroWaits.Load() != 1 {
		t.Fatalf("zero-wait grants = %d, want 1 (the immediate admission)", zeroWaits.Load())
	}
}

// TestConcurrentAdmissions hammers the controller from many goroutines
// under -race and checks the accounting reconciles exactly.
func TestConcurrentAdmissions(t *testing.T) {
	c := New(Config{MaxJobs: 4, QueueDepth: 16, PerClient: 8}, nil)
	clients := []string{"a", "b", "c", "d"}
	const perClient = 32

	var granted, shedCount atomic.Uint64
	var wg sync.WaitGroup
	for _, client := range clients {
		client := client
		for i := 0; i < perClient; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tk, err := c.Admit(client)
				if err != nil {
					if _, ok := err.(*ShedError); !ok {
						t.Errorf("unexpected error: %v", err)
					}
					shedCount.Add(1)
					return
				}
				if err := tk.Wait(context.Background()); err != nil {
					t.Errorf("Wait: %v", err)
					return
				}
				granted.Add(1)
				tk.Release()
			}()
		}
	}
	wg.Wait()

	s := c.Stats()
	if s.Running != 0 || s.Queued != 0 || s.Clients != 0 {
		t.Fatalf("controller not drained: %+v", s)
	}
	total := uint64(len(clients) * perClient)
	if granted.Load()+shedCount.Load() != total {
		t.Fatalf("granted %d + shed %d != %d", granted.Load(), shedCount.Load(), total)
	}
	if s.Granted != granted.Load() {
		t.Fatalf("stats granted %d, observed %d", s.Granted, granted.Load())
	}
	if s.ShedQueueFull+s.ShedClientQuota != shedCount.Load() {
		t.Fatalf("stats sheds %d+%d, observed %d", s.ShedQueueFull, s.ShedClientQuota, shedCount.Load())
	}
}
