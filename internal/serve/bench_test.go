package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkServeCacheHit measures the full HTTP round trip of a
// cache-hit tune request: campaign parse, fingerprint, cache lookup,
// stored-bytes response. This is the daemon's steady-state hot path —
// a warm cache answers every repeat campaign through it.
func BenchmarkServeCacheHit(b *testing.B) {
	srv, err := New(nil, Config{CacheEntries: 16})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	campaign := `{"system": "Gold 6148", "workloads": ["counting"], "seed": 97}`

	warm, err := http.Post(ts.URL+"/v1/tune", "application/json", strings.NewReader(campaign))
	if err != nil {
		b.Fatal(err)
	}
	var sink bytes.Buffer
	if _, err := sink.ReadFrom(warm.Body); err != nil {
		b.Fatal(err)
	}
	warm.Body.Close()
	if warm.StatusCode != http.StatusOK {
		b.Fatalf("warm-up status %d: %s", warm.StatusCode, sink.Bytes())
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/tune", "application/json", strings.NewReader(campaign))
		if err != nil {
			b.Fatal(err)
		}
		sink.Reset()
		if _, err := sink.ReadFrom(resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(CacheHeader); got != "hit" {
			b.Fatalf("iteration %d: %s = %q, want hit", i, CacheHeader, got)
		}
	}
}
