package wirecompat_test

import (
	"bytes"
	"os"
	"testing"

	"rooftune/internal/lint"
	"rooftune/internal/lint/analysis"
	"rooftune/internal/lint/golden"
	"rooftune/internal/lint/linttest"
	"rooftune/internal/lint/wirecompat"
)

// TestWireCompat runs the fixture trees: ok matches its golden (both
// sections, no findings), stale exercises the three drift classes, and
// noenv exercises the missing-envelope census check.
func TestWireCompat(t *testing.T) {
	linttest.Run(t, wirecompat.Analyzer, "./testdata/src/wire/...")
}

// TestServeWireCompat runs the serve/v1 fixture trees: ok matches its
// contract golden (struct census and enum census, no findings), stale
// exercises field removal, retype, addition, enum-member removal and
// enum revaluing.
func TestServeWireCompat(t *testing.T) {
	linttest.Run(t, wirecompat.Analyzer, "./testdata/src/servewire/...")
}

// TestDistWireCompat runs the dist/v1 fixture trees: ok matches its
// contract golden, stale exercises field removal, retype, addition,
// enum-member removal and enum revaluing against the distributed-sweep
// contract.
func TestDistWireCompat(t *testing.T) {
	linttest.Run(t, wirecompat.Analyzer, "./testdata/src/distwire/...")
}

// TestWriteGoldensHeals proves the stale fixture checks clean after
// write mode regenerates its golden, and that write mode is idempotent
// on the clean ok fixture (its two-section golden comes back
// byte-identical). Committed fixtures are restored afterwards.
func TestWriteGoldensHeals(t *testing.T) {
	paths := []string{
		"testdata/src/wire/ok/rooftune/api/wire_v1.txt",
		"testdata/src/wire/stale/rooftune/api/wire_v1.txt",
		"testdata/src/servewire/ok/rooftune/api/serve_v1.txt",
		"testdata/src/servewire/stale/rooftune/api/serve_v1.txt",
		"testdata/src/distwire/ok/rooftune/api/dist_v1.txt",
		"testdata/src/distwire/stale/rooftune/api/dist_v1.txt",
	}
	saved := map[string][]byte{}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		saved[p] = b
	}
	defer func() {
		golden.WriteMode = false
		for p, b := range saved {
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Errorf("restoring %s: %v", p, err)
			}
		}
	}()

	pkgs, err := lint.Load(".",
		"./testdata/src/wire/ok/...", "./testdata/src/wire/stale/...",
		"./testdata/src/servewire/ok/...", "./testdata/src/servewire/stale/...",
		"./testdata/src/distwire/ok/...", "./testdata/src/distwire/stale/...")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []lint.Diag {
		diags, err := lint.Run(pkgs, []*analysis.Analyzer{wirecompat.Analyzer})
		if err != nil {
			t.Fatal(err)
		}
		return diags
	}

	if diags := run(); len(diags) == 0 {
		t.Fatal("stale fixture produced no findings before -write-goldens")
	}

	golden.WriteMode = true
	if diags := run(); len(diags) != 0 {
		t.Fatalf("write mode reported findings: %v", diags)
	}
	golden.WriteMode = false

	if diags := run(); len(diags) != 0 {
		t.Errorf("tree still dirty after -write-goldens: %v", diags)
	}
	for _, p := range []string{paths[0], paths[2], paths[4]} {
		now, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(now, saved[p]) {
			t.Errorf("write mode rewrote the clean golden %s differently:\n got: %s\nwant: %s", p, now, saved[p])
		}
	}
}
