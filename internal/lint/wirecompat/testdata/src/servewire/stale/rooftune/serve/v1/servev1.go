// Package servev1 is a fixture whose serve golden is stale in every
// drift class: the golden still lists a deleted field (fingerprint) and
// a deleted enum member (StateRunning), records id with its old type
// and StateDone with its old value, and does not know note yet.
package servev1 // want `serve/v1 contract entry removed: "servev1 JobStatus\.fingerprint = string" \(golden api/serve_v1\.txt\)` `serve/v1 contract entry removed: "enum State\.StateRunning = running" \(golden api/serve_v1\.txt\)`

// State is a job lifecycle phase.
type State string // want `serve/v1 contract entry changed: enum State\.StateDone is now "finished", golden api/serve_v1\.txt has "done"`

const (
	StateQueued State = "queued"
	StateDone   State = "finished"
)

// JobStatus is a wire response shape.
type JobStatus struct { // want `serve/v1 contract entry changed: servev1 JobStatus\.id is now "int", golden api/serve_v1\.txt has "string"` `serve/v1 contract entry "servev1 JobStatus\.note = string" not in the wire golden; declare the addition with rooflint -write-goldens`
	ID    int    `json:"id"`
	Note  string `json:"note"`
	State State  `json:"state"`
}
