// Package servev1 is a fixture mirroring the daemon wire contract:
// request/response structs with json tags plus the named string
// enumerations clients dispatch on. The census must skip unexported
// constants (stateDraining), non-string named types (level) and
// untyped string constants (Version).
package servev1

// State is a job lifecycle phase.
type State string

const (
	StateQueued State = "queued"
	StateDone   State = "done"
)

// stateDraining is unexported: not part of the contract.
const stateDraining State = "draining"

// Code is a structured error code.
type Code string

const CodeOverloaded Code = "overloaded"

// level is a named int type; its exported constant must stay out of the
// string-enum census.
type level int

const LevelHigh level = 3

// Version is an untyped string constant, not a named enumeration.
const Version = "v1"

// JobStatus is a wire response shape.
type JobStatus struct {
	ID      string `json:"id"`
	State   State  `json:"state"`
	Error   string `json:"error,omitempty"`
	Attempt int    `json:"-"`
	hidden  string
}

// ErrorEnvelope wraps the structured error body.
type ErrorEnvelope struct {
	Err ErrorBody `json:"error"`
}

// ErrorBody is the structured error payload.
type ErrorBody struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
}
