// Package distv1 is a fixture mirroring the distributed-sweep wire
// contract: node specs, outcomes, bound updates and the error-code
// enumeration coordinators and workers dispatch on.
package distv1

// ErrorCode classifies a worker refusal.
type ErrorCode string

const (
	CodeBadRequest ErrorCode = "bad_request"
	CodeNodeFailed ErrorCode = "node_failed"
)

// NodeSpec is one dispatched plan-graph node.
type NodeSpec struct {
	Schema      string  `json:"schema"`
	NodeID      string  `json:"nodeId"`
	SeedValue   float64 `json:"seedValue,omitempty"`
	Fingerprint string  `json:"fingerprint"`
}

// NodeOutcome is a completed node's answer.
type NodeOutcome struct {
	Schema string  `json:"schema"`
	NodeID string  `json:"nodeId"`
	Value  float64 `json:"value"`
}

// BoundUpdate pushes a monotone incumbent bound.
type BoundUpdate struct {
	Schema      string  `json:"schema"`
	Fingerprint string  `json:"fingerprint"`
	Value       float64 `json:"value"`
}
