// Package distv1 is a fixture whose dist golden is stale in every
// drift class: the golden still lists a deleted field (worker) and a
// deleted enum member (CodeBadNode), records value with its old type
// and CodeNodeFailed with its old value, and does not know elapsedNs
// yet.
package distv1 // want `dist/v1 contract entry removed: "distv1 NodeOutcome\.worker = string" \(golden api/dist_v1\.txt\)` `dist/v1 contract entry removed: "enum ErrorCode\.CodeBadNode = bad_node" \(golden api/dist_v1\.txt\)`

// ErrorCode classifies a worker refusal.
type ErrorCode string // want `dist/v1 contract entry changed: enum ErrorCode\.CodeNodeFailed is now "exec_failed", golden api/dist_v1\.txt has "node_failed"`

const (
	CodeBadRequest ErrorCode = "bad_request"
	CodeNodeFailed ErrorCode = "exec_failed"
)

// NodeOutcome is a completed node's answer.
type NodeOutcome struct { // want `dist/v1 contract entry changed: distv1 NodeOutcome\.value is now "int64", golden api/dist_v1\.txt has "float64"` `dist/v1 contract entry "distv1 NodeOutcome\.elapsedNs = int64" not in the wire golden; declare the addition with rooflint -write-goldens`
	Schema    string `json:"schema"`
	NodeID    string `json:"nodeId"`
	Value     int64  `json:"value"`
	ElapsedNs int64  `json:"elapsedNs"`
}
