// Package bench is a fixture whose MarshalConfig forgot a variant: the
// census cannot map SpareConfig to an envelope, which is reported
// immediately (a config the wire layer cannot encode can never be
// cached or served).
package bench

import "encoding/json"

type Config interface {
	isConfig()
}

type DGEMMConfig struct {
	M int
}

func (DGEMMConfig) isConfig() {}

// SpareConfig has no arm in MarshalConfig.
type SpareConfig struct {
	K int
}

func (SpareConfig) isConfig() {}

type configWire struct {
	Variant string          `json:"variant"`
	Fields  json.RawMessage `json:"fields"`
}

type dgemmConfigWire struct {
	M int `json:"m"`
}

// MarshalConfig misses SpareConfig.
func MarshalConfig(c Config) ([]byte, error) { // want `bench\.Config variant SpareConfig has no wire envelope in MarshalConfig`
	var (
		variant string
		fields  any
	)
	switch cfg := c.(type) {
	case DGEMMConfig:
		variant = "DGEMMConfig"
		fields = dgemmConfigWire{M: cfg.M}
	}
	raw, err := json.Marshal(fields)
	if err != nil {
		return nil, err
	}
	return json.Marshal(configWire{Variant: variant, Fields: raw})
}
