// Package rooftune is a fixture root wire schema: package-level structs
// with json tags are census roots, and the walk follows field types
// across packages (bench.Outcome below).
package rooftune

import "rooftune/internal/lint/wirecompat/testdata/src/wire/ok/rooftune/internal/bench"

type resultWire struct {
	Schema  string        `json:"schema"`
	Points  []pointWire   `json:"points"`
	Best    bench.Outcome `json:"best,omitempty"`
	private string
}

type pointWire struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Skip  string  `json:"-"`
	NoTag int
}

// plain carries no json tags: not a census root.
type plain struct {
	X int
}
