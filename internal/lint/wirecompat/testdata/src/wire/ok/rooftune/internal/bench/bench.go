// Package bench is a fixture mirroring rooftune/internal/bench's wire
// layer: the closed Config sum, its wire envelopes, and MarshalConfig's
// type switch mapping each variant to its envelope struct.
package bench

import "encoding/json"

// Config is the closed sum.
type Config interface {
	isConfig()
}

// DGEMMConfig is one variant.
type DGEMMConfig struct {
	M int
	N int
}

func (DGEMMConfig) isConfig() {}

// TriadConfig is the other variant.
type TriadConfig struct {
	Elements int
}

func (TriadConfig) isConfig() {}

// Outcome is censused both here and from the root fixture's walk.
type Outcome struct {
	Mean  float64 `json:"mean"`
	Count int     `json:"count"`
}

type configWire struct {
	Variant string          `json:"variant"`
	Fields  json.RawMessage `json:"fields"`
}

type dgemmConfigWire struct {
	M int `json:"m"`
	N int `json:"n"`
}

type triadConfigWire struct {
	Elements int `json:"elements"`
}

// MarshalConfig packs each variant into its wire envelope.
func MarshalConfig(c Config) ([]byte, error) {
	var (
		variant string
		fields  any
	)
	switch cfg := c.(type) {
	case DGEMMConfig:
		variant = "DGEMMConfig"
		fields = dgemmConfigWire{M: cfg.M, N: cfg.N}
	case TriadConfig:
		variant = "TriadConfig"
		fields = triadConfigWire{Elements: cfg.Elements}
	}
	raw, err := json.Marshal(fields)
	if err != nil {
		return nil, err
	}
	return json.Marshal(configWire{Variant: variant, Fields: raw})
}
