// Package rooftune is a fixture whose wire golden is stale in all three
// ways: it still lists a deleted field (removal), it records schema
// with its old type (retype), and it does not know note yet
// (undeclared addition).
package rooftune // want `wire field removed from rooftune/result/v1: "rooftune pointWire\.label = string"`

type resultWire struct { // want `wire field retyped: rooftune resultWire\.schema is now "int", golden api/wire_v1\.txt has "string"` `wire field "rooftune resultWire\.note = string" not in the wire golden; declare the addition with rooflint -write-goldens`
	Schema int         `json:"schema"`
	Note   string      `json:"note"`
	Points []pointWire `json:"points"`
}

type pointWire struct {
	Name string `json:"name"`
}
