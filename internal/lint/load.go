// Package lint is the driver for rooflint, the project's static-analysis
// suite: it loads and type-checks packages with the standard library
// toolchain (the module is dependency-free and builds offline, so
// golang.org/x/tools/go/packages is not available), runs the analyzers
// in internal/lint/* over them, and applies the //rooflint:allow
// annotation protocol for sanctioned exceptions.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis. When
// the package has in-package test files, Files includes them (the
// package is checked as its go-test variant), so the analyzers see the
// same code the test binary compiles.
type Package struct {
	// Path is the package's import path ("rooftune/internal/core");
	// external test packages carry the _test suffix.
	Path string
	// Dir is the package's source directory.
	Dir string
	// Fset is shared by every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed sources, comments included.
	Files []*ast.File
	// Types and Info are the type-checker's results.
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Name       string
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load resolves patterns (as the go tool understands them, e.g. "./...")
// relative to dir and returns every matched package type-checked, with
// in-package test files merged in. Dependencies — including the standard
// library — are imported from compiler export data produced by
// `go list -export`, so loading needs no network and no GOPATH source
// layout, only the toolchain that built the module.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadTags(dir, "", patterns...)
}

// LoadTags is Load with an explicit build-tag list (comma-separated, as
// `go build -tags` takes it). The tags reach `go list`, so a fixture or
// future production file behind a build constraint is selected — and
// type-checked — exactly as the tagged build would compile it.
func LoadTags(dir, tags string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, tags, patterns)
	if err != nil {
		return nil, err
	}

	// Index every listed entry — bracketed test variants included — by
	// its listed import path: that is the key space ImportMap resolves
	// into and export data is filed under.
	index := make(map[string]*listPackage, len(metas))
	for _, m := range metas {
		index[m.ImportPath] = m
	}

	// Pick the analysis targets: explicitly matched, non-stdlib, not the
	// synthetic test-main. A package's in-package test variant
	// ("p [p.test]") supersedes the plain entry so test files are
	// analyzed too; external test packages ("p_test [p.test]") are
	// targets of their own.
	targets := map[string]*listPackage{}
	for _, m := range metas {
		if m.DepOnly || m.Standard || strings.HasSuffix(m.ImportPath, ".test") {
			continue
		}
		path := strippedPath(m.ImportPath)
		if prev, ok := targets[path]; !ok || (prev.ForTest == "" && m.ForTest != "") {
			targets[path] = m
		}
	}
	paths := make([]string, 0, len(targets))
	for path := range targets {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	fset := token.NewFileSet()
	pkgs := make([]*Package, 0, len(targets))
	for _, path := range paths {
		pkg, err := check(fset, path, targets[path], index)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList shells out to `go list -test -deps -export` and decodes the
// JSON stream. A package that fails to build fails the load: linting a
// tree that does not compile would silently skip the broken invariants.
func goList(dir, tags string, patterns []string) ([]*listPackage, error) {
	args := []string{
		"list", "-test", "-deps", "-export",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,ForTest,Name,GoFiles,ImportMap,Error",
	}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var metas []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		m := &listPackage{}
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if m.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", m.ImportPath, m.Error.Err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// strippedPath removes the test-variant bracket from a listed import
// path: "p [p.test]" -> "p", "p_test [p.test]" -> "p_test".
func strippedPath(listed string) string {
	if i := strings.Index(listed, " ["); i >= 0 {
		return listed[:i]
	}
	return listed
}

// check parses and type-checks one target package against export data.
func check(fset *token.FileSet, path string, meta *listPackage, index map[string]*listPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(meta.GoFiles))
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: newExportImporter(fset, meta, index),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: meta.Dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// exportImporter resolves imports during one package's type check: the
// importing package's ImportMap first (so a test variant's dependencies
// land on their in-test builds), then the listed path's export data. A
// fresh gc importer per target keeps its internal cache from conflating
// test variants across different test roots.
type exportImporter struct {
	importMap map[string]string
	gc        types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, meta *listPackage, index map[string]*listPackage) *exportImporter {
	imp := &exportImporter{importMap: meta.ImportMap}
	lookup := func(path string) (io.ReadCloser, error) {
		resolved := path
		if mapped, ok := imp.importMap[path]; ok {
			resolved = mapped
		}
		dep, ok := index[resolved]
		if !ok || dep.Export == "" {
			return nil, fmt.Errorf("lint: no export data for %q", resolved)
		}
		return os.Open(dep.Export)
	}
	imp.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return imp
}

// Import implements types.Importer.
func (imp *exportImporter) Import(path string) (*types.Package, error) {
	return imp.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (imp *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return imp.gc.ImportFrom(path, dir, mode)
}
