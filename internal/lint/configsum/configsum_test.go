package configsum_test

import (
	"testing"

	"rooftune/internal/lint/configsum"
	"rooftune/internal/lint/linttest"
)

func TestConfigSum(t *testing.T) {
	linttest.Run(t, configsum.Analyzer, "./testdata/src/...")
}
