// Package bench is a fixture standing in for rooftune/internal/bench:
// its import path ends in internal/bench, so the configsum analyzer
// treats Config as the closed sum.
package bench

// Config mirrors the real sum type's marker-method shape.
type Config interface {
	benchConfig()
}

type DGEMMConfig struct{ N, M, K int }

func (DGEMMConfig) benchConfig() {}

type TriadConfig struct{ Elements int }

func (TriadConfig) benchConfig() {}

type SpMVConfig struct{ N int }

func (SpMVConfig) benchConfig() {}

// Unrelated does not implement Config and must not count as a variant.
type Unrelated struct{ X int }
