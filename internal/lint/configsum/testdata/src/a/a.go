// Package a exercises the configsum analyzer: switches over the
// fixture bench.Config sum in every shape the invariant distinguishes.
package a

import (
	"fmt"

	"rooftune/internal/lint/configsum/testdata/src/a/internal/bench"
)

// exhaustive names every variant: no finding.
func exhaustive(c bench.Config) string {
	switch c.(type) {
	case bench.DGEMMConfig:
		return "dgemm"
	case bench.TriadConfig:
		return "triad"
	case bench.SpMVConfig:
		return "spmv"
	}
	return ""
}

// loudDefault misses TriadConfig but fails loudly on anything unknown:
// no finding.
func loudDefault(c bench.Config) (string, error) {
	switch cfg := c.(type) {
	case bench.DGEMMConfig:
		return fmt.Sprint(cfg.N), nil
	case bench.SpMVConfig:
		return fmt.Sprint(cfg.N), nil
	default:
		return "", fmt.Errorf("unsupported config %T", c)
	}
}

// missingNoDefault misses two variants with nowhere for them to go.
func missingNoDefault(c bench.Config) string {
	switch c.(type) { // want `misses variant\(s\) SpMVConfig, TriadConfig and has no default`
	case bench.DGEMMConfig:
		return "dgemm"
	}
	return ""
}

// silentDefault hides the missing variant behind an empty default.
func silentDefault(c bench.Config) string {
	switch c.(type) {
	case bench.DGEMMConfig:
		return "dgemm"
	case bench.TriadConfig:
		return "triad"
	default: // want `misses variant\(s\) SpMVConfig behind a silent default`
	}
	return ""
}

// otherSum is a different interface entirely; switches over it are out
// of the analyzer's scope.
type otherSum interface{ other() }

type otherImpl struct{}

func (otherImpl) other() {}

func unrelatedSwitch(o otherSum) string {
	switch o.(type) {
	case otherImpl:
		return "impl"
	}
	return ""
}
