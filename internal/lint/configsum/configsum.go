// Package configsum enforces exhaustive handling of the bench.Config
// sum type.
//
// bench.Config is a closed sum (the benchConfig marker method): every
// type switch over it must either name every declared variant in its
// case clauses or carry a loud default — one whose body actually does
// something, like returning an error naming the unexpected type. A
// missing arm with no default, or a silent empty default, means a new
// workload variant would slip through result assembly unnoticed; this
// analyzer turns that into a build failure. It generalizes — and now
// backs — the root config round-trip test, which used to hand-roll the
// same census with go/parser.
package configsum

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"rooftune/internal/lint/analysis"
	"rooftune/internal/lint/scope"
)

// Analyzer is the configsum invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "configsum",
	Doc: "type switches over bench.Config must handle every variant or have a loud default\n\n" +
		"The bench.Config sum is closed; a switch that neither names all variants nor\n" +
		"fails loudly on unknown ones lets a new workload land mislabelled.",
	Run: run,
}

// benchPackage is the scope suffix identifying the package that
// declares the Config sum (fixtures mirror the suffix).
const benchPackage = "internal/bench"

// sumInterface is the sum type's name within that package.
const sumInterface = "Config"

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			iface, ifacePkg := configInterface(pass, sw)
			if iface == nil {
				return true
			}
			variants := Variants(ifacePkg, iface)
			if len(variants) == 0 {
				return true
			}
			checkSwitch(pass, sw, variants)
			return true
		})
	}
	return nil, nil
}

// configInterface returns the bench.Config interface and its declaring
// package when sw switches over it, or nil otherwise.
func configInterface(pass *analysis.Pass, sw *ast.TypeSwitchStmt) (*types.Interface, *types.Package) {
	var expr ast.Expr
	switch assign := sw.Assign.(type) {
	case *ast.ExprStmt: // switch x.(type)
		expr = assign.X.(*ast.TypeAssertExpr).X
	case *ast.AssignStmt: // switch v := x.(type)
		expr = assign.Rhs[0].(*ast.TypeAssertExpr).X
	default:
		return nil, nil
	}
	t := pass.TypesInfo.Types[expr].Type
	if t == nil {
		return nil, nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	obj := named.Obj()
	if obj.Name() != sumInterface || obj.Pkg() == nil || !scope.Match(obj.Pkg().Path(), benchPackage) {
		return nil, nil
	}
	iface, ok := named.Underlying().(*types.Interface)
	if !ok {
		return nil, nil
	}
	return iface, obj.Pkg()
}

// checkSwitch verifies one switch over the sum.
func checkSwitch(pass *analysis.Pass, sw *ast.TypeSwitchStmt, variants []string) {
	handled := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, texpr := range cc.List {
			t := pass.TypesInfo.Types[texpr].Type
			if t == nil {
				continue
			}
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				handled[named.Obj().Name()] = true
			}
		}
	}
	var missing []string
	for _, v := range variants {
		if !handled[v] {
			missing = append(missing, v)
		}
	}
	if len(missing) == 0 {
		return
	}
	switch {
	case defaultClause == nil:
		pass.Reportf(sw.Switch,
			"type switch over bench.Config misses variant(s) %s and has no default; handle them or fail loudly on unknown configs",
			strings.Join(missing, ", "))
	case len(defaultClause.Body) == 0:
		pass.Reportf(defaultClause.Case,
			"type switch over bench.Config misses variant(s) %s behind a silent default; an unknown config must fail loudly",
			strings.Join(missing, ", "))
	}
}

// Variants returns the sorted names of the sum's concrete variants: the
// named non-interface types in pkg that implement iface. The root
// config round-trip test consumes this census in place of its former
// go/parser walk.
func Variants(pkg *types.Package, iface *types.Interface) []string {
	var names []string
	s := pkg.Scope()
	for _, name := range s.Names() {
		obj, ok := s.Lookup(name).(*types.TypeName)
		if !ok || obj.IsAlias() {
			continue
		}
		t := obj.Type()
		if types.IsInterface(t) {
			continue
		}
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// VariantNames loads the sum interface from a type-checked bench
// package and returns its variant census. It errors when the interface
// is gone — the marker method may have moved, and the caller's
// exhaustiveness check would otherwise silently pass on nothing.
func VariantNames(pkg *types.Package) ([]string, error) {
	obj, ok := pkg.Scope().Lookup(sumInterface).(*types.TypeName)
	if !ok {
		return nil, fmt.Errorf("configsum: %s declares no %s interface — did the sum move?", pkg.Path(), sumInterface)
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil, fmt.Errorf("configsum: %s.%s is not an interface", pkg.Path(), sumInterface)
	}
	variants := Variants(pkg, iface)
	if len(variants) == 0 {
		return nil, fmt.Errorf("configsum: %s.%s has no variants — did the marker method move?", pkg.Path(), sumInterface)
	}
	return variants, nil
}
