// Package hot exercises the noalloc hot-path discipline: only functions
// annotated //rooflint:hotpath are checked, and inside them loops must
// not allocate per iteration.
package hot

import "fmt"

// evaluate appends without preallocating.
//
//rooflint:hotpath
func evaluate(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		out = append(out, x) // want `append to out inside a hot-path loop without preallocation`
	}
	return out
}

// evaluatePrealloc sizes the slice before the loop: clean.
//
//rooflint:hotpath
func evaluatePrealloc(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// format allocates a fresh string per iteration.
//
//rooflint:hotpath
func format(xs []float64) []string {
	out := make([]string, 0, len(xs))
	for i, x := range xs {
		out = append(out, fmt.Sprintf("x%d=%g", i, x)) // want `fmt\.Sprintf inside a hot-path loop`
	}
	return out
}

// join concatenates strings per iteration; the fmt.Errorf on the abort
// path is exempt (errors are the cold path).
//
//rooflint:hotpath
func join(names []string) (string, error) {
	s := ""
	for _, n := range names {
		s = s + n // want `string concatenation inside a hot-path loop`
		if n == "" {
			return "", fmt.Errorf("empty name after %q", s)
		}
	}
	return s, nil
}

// constparts is clean: concatenating constants folds at compile time.
//
//rooflint:hotpath
func constparts(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, "a"+"b")
	}
	return out
}

// callbacks creates one closure per iteration.
//
//rooflint:hotpath
func callbacks(xs []float64) []func() float64 {
	out := make([]func() float64, 0, len(xs))
	for _, x := range xs {
		x := x
		out = append(out, func() float64 { return x }) // want `closure created inside a hot-path loop`
	}
	return out
}

// fieldAppend appends into a struct field without preallocating it.
//
//rooflint:hotpath
func fieldAppend(xs []float64) struct{ Samples []float64 } {
	var acc struct{ Samples []float64 }
	for _, x := range xs {
		acc.Samples = append(acc.Samples, x) // want `append to acc\.Samples inside a hot-path loop without preallocation`
	}
	return acc
}

// fieldPrealloc sizes the struct field before the loop: clean.
//
//rooflint:hotpath
func fieldPrealloc(xs []float64) struct{ Samples []float64 } {
	var acc struct{ Samples []float64 }
	acc.Samples = make([]float64, 0, len(xs))
	for _, x := range xs {
		acc.Samples = append(acc.Samples, x)
	}
	return acc
}

// allowed carries the sanctioned-exception annotation.
//
//rooflint:hotpath
func allowed(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		//rooflint:allow noalloc -- callers bound xs to a handful of entries
		out = append(out, x)
	}
	return out
}

// cold is not annotated: the same patterns produce no findings.
func cold(xs []float64) []string {
	var out []string
	for i, x := range xs {
		out = append(out, fmt.Sprintf("%d=%g", i, x))
	}
	return out
}

var _ = []any{
	evaluate, evaluatePrealloc, format, join, constparts, callbacks,
	fieldAppend, fieldPrealloc, allowed, cold,
}
