package noalloc_test

import (
	"testing"

	"rooftune/internal/lint/linttest"
	"rooftune/internal/lint/noalloc"
)

func TestNoAlloc(t *testing.T) {
	linttest.Run(t, noalloc.Analyzer, "./testdata/src/...")
}
