// Package noalloc flags per-iteration allocation patterns inside
// functions annotated //rooflint:hotpath.
//
// The roofline pipeline's credibility rests on the evaluator's inner
// loops measuring the kernel, not the harness: a per-invocation
// fmt.Sprintf or an append that regrows its backing array injects
// allocator noise straight into the sample stream the confidence
// intervals are computed from (and the inference-sim roofline work in
// SNIPPETS.md shows measured trajectories bending down exactly when hot
// loops allocate). The annotation is opt-in — //rooflint:hotpath on a
// function's doc comment — because a blanket no-allocation rule over
// the whole tree would drown real signal in cold-path noise. Inside an
// annotated function the analyzer reports:
//
//   - append in a loop to a slice that is never preallocated with a
//     3-arg make (capacity) in the function;
//   - fmt.Sprintf / fmt.Sprint / fmt.Sprintln and string concatenation
//     producing a string inside a loop (fmt.Errorf is exempt: error
//     construction is the cold abort path);
//   - function literals created inside a loop (one closure allocation
//     per iteration).
//
// Sanctioned exceptions carry //rooflint:allow noalloc with the reason.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rooftune/internal/lint/analysis"
)

// Analyzer is the hot-path allocation checker.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "no per-iteration allocation patterns in //rooflint:hotpath functions\n\n" +
		"Inside annotated functions: append in a loop needs a capacity-preallocated\n" +
		"slice, fmt string formatting and string concatenation must be hoisted out of\n" +
		"loops, and closures must not be created per iteration.",
	Run: run,
}

// marker is the annotation (on the function's doc comment) opting its
// body into the no-allocation discipline.
const marker = "rooflint:hotpath"

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// isHotpath reports whether the function's doc comment carries the
// //rooflint:hotpath marker.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), marker) {
			return true
		}
	}
	return false
}

// checkFunc scans one annotated function: first collect the slices the
// function preallocates with capacity anywhere in its body (the
// discipline is flow-insensitive on purpose — make with capacity
// before the loop is the idiom being enforced), then walk the body
// flagging allocation patterns inside loops.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	prealloc := preallocated(pass, fd.Body)
	walk(pass, fd.Body, 0, prealloc)
}

// preallocated collects the objects assigned from a make call with an
// explicit capacity (make([]T, n, c) or make([]T, 0, c)'s two- and
// three-arg forms with a capacity argument) anywhere in the body.
func preallocated(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) < 3 {
			return
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "make" {
			return
		}
		if obj := pass.TypesInfo.Uses[fun]; obj != nil && obj.Parent() != types.Universe {
			return // shadowed make
		}
		// The appended target is identified the same way checkAppend does:
		// a local by its object, a struct field (out.Invocations) by the
		// field's object.
		switch l := lhs.(type) {
		case *ast.Ident:
			if obj := objectOf(pass, l); obj != nil {
				out[obj] = true
			}
		case *ast.SelectorExpr:
			if obj := pass.TypesInfo.Uses[l.Sel]; obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i < len(s.Lhs) {
					record(s.Lhs[i], rhs)
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range s.Values {
				if i < len(s.Names) {
					record(s.Names[i], rhs)
				}
			}
		}
		return true
	})
	return out
}

// walk scans stmts tracking loop depth; depth > 0 means "inside a loop
// of the annotated function" and arms the per-iteration checks.
func walk(pass *analysis.Pass, n ast.Node, depth int, prealloc map[types.Object]bool) {
	switch s := n.(type) {
	case *ast.ForStmt:
		walkParts(pass, depth, prealloc, s.Init, s.Cond, s.Post)
		walk(pass, s.Body, depth+1, prealloc)
		return
	case *ast.RangeStmt:
		walkParts(pass, depth, prealloc, s.X)
		walk(pass, s.Body, depth+1, prealloc)
		return
	case *ast.FuncLit:
		if depth > 0 {
			pass.Reportf(s.Pos(),
				"closure created inside a hot-path loop allocates every iteration; hoist it out of the loop or pass a method value")
		}
		// The literal's own body starts a fresh function: loops inside it
		// are its loops.
		walk(pass, s.Body, 0, prealloc)
		return
	case *ast.CallExpr:
		if depth > 0 {
			checkCall(pass, s)
		}
	case *ast.AssignStmt:
		if depth > 0 {
			for i, rhs := range s.Rhs {
				if i < len(s.Lhs) {
					checkAppend(pass, s.Lhs[i], rhs, prealloc)
				}
			}
		}
	case *ast.BinaryExpr:
		if depth > 0 && s.Op == token.ADD && isString(pass, s) && !constantExpr(pass, s) {
			pass.Reportf(s.OpPos,
				"string concatenation inside a hot-path loop allocates; build the string once outside the loop or use a preallocated buffer")
		}
	case nil:
		return
	}
	children(n, func(c ast.Node) {
		walk(pass, c, depth, prealloc)
	})
}

// walkParts scans loop header parts (init/cond/post, range operand) at
// the surrounding depth.
func walkParts(pass *analysis.Pass, depth int, prealloc map[types.Object]bool, parts ...ast.Node) {
	for _, p := range parts {
		if p != nil && !isNilNode(p) {
			walk(pass, p, depth, prealloc)
		}
	}
}

// isNilNode guards against typed-nil ast.Node values from optional
// fields (a nil *ast.ExprStmt boxed in ast.Node is non-nil).
func isNilNode(n ast.Node) bool {
	switch v := n.(type) {
	case ast.Expr:
		return v == nil
	case ast.Stmt:
		return v == nil
	}
	return false
}

// checkCall flags per-iteration fmt string formatting. fmt.Errorf is
// exempt: constructing the error that aborts the measurement is the
// cold path.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return
	}
	switch obj.Name() {
	case "Sprintf", "Sprint", "Sprintln":
		pass.Reportf(call.Pos(),
			"fmt.%s inside a hot-path loop allocates every iteration; hoist the formatting out of the loop",
			obj.Name())
	}
}

// checkAppend flags x = append(x, ...) in a loop when x is never
// preallocated with capacity in this function.
func checkAppend(pass *analysis.Pass, lhs, rhs ast.Expr, prealloc map[types.Object]bool) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return
	}
	if obj := pass.TypesInfo.Uses[fun]; obj != nil && obj.Parent() != types.Universe {
		return // shadowed append
	}
	// Identify the appended slice by the LHS identifier; appends into
	// struct fields (out.Invocations = append(...)) are identified by
	// the field object.
	var obj types.Object
	switch l := lhs.(type) {
	case *ast.Ident:
		obj = objectOf(pass, l)
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[l.Sel]
	}
	if obj == nil || prealloc[obj] {
		return
	}
	pass.Reportf(call.Pos(),
		"append to %s inside a hot-path loop without preallocation; size it with make(T, 0, n) before the loop", appendTarget(lhs))
}

// appendTarget renders the appended slice for the message.
func appendTarget(lhs ast.Expr) string {
	switch l := lhs.(type) {
	case *ast.Ident:
		return l.Name
	case *ast.SelectorExpr:
		if id, ok := l.X.(*ast.Ident); ok {
			return id.Name + "." + l.Sel.Name
		}
		return l.Sel.Name
	}
	return "slice"
}

func objectOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// constantExpr reports a compile-time constant (concatenating string
// literals does not allocate at run time).
func constantExpr(pass *analysis.Pass, e ast.Expr) bool {
	return pass.TypesInfo.Types[e].Value != nil
}

// children visits n's direct AST children (one level, no recursion).
func children(n ast.Node, visit func(ast.Node)) {
	if n == nil {
		return
	}
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}
