package lockorder_test

import (
	"testing"

	"rooftune/internal/lint/linttest"
	"rooftune/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "./testdata/src/...")
}
