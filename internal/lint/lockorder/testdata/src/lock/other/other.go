// Package other is outside the lockorder scope: the same reversed
// acquisitions produce no findings here, proving the analyzer is gated
// to the serving tier and the pool.
package other

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) forward() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) backward() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}
