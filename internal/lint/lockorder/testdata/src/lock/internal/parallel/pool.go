// Package parallel is a fixture standing in for rooftune/internal/parallel:
// a pool whose lifecycle locks must follow one acquisition order and
// must not be held across blocking operations.
package parallel

import "sync"

// Pool carries two mutexes and a task channel, like the real pool.
type Pool struct {
	mu      sync.Mutex
	closeMu sync.Mutex
	tasks   chan func()
	wg      sync.WaitGroup
}

// submitOrdered nests closeMu inside mu. On its own that fixes the
// order; the edge becomes a finding only because closeReversed below
// takes the two locks the other way around.
func (p *Pool) submitOrdered() {
	p.mu.Lock()
	p.closeMu.Lock() // want `lock \(parallel\.Pool\)\.closeMu acquired while holding \(parallel\.Pool\)\.mu, but another path acquires them in the reverse order`
	p.closeMu.Unlock()
	p.mu.Unlock()
}

// closeReversed acquires the same pair in the opposite order: both
// sites of the cycle are reported.
func (p *Pool) closeReversed() {
	p.closeMu.Lock()
	p.mu.Lock() // want `lock \(parallel\.Pool\)\.mu acquired while holding \(parallel\.Pool\)\.closeMu, but another path acquires them in the reverse order`
	p.mu.Unlock()
	p.closeMu.Unlock()
}

// sendUnderLock blocks on a channel send with a lock held.
func (p *Pool) sendUnderLock(v func()) {
	p.closeMu.Lock()
	p.tasks <- v // want `channel send while holding \(parallel\.Pool\)\.closeMu`
	p.closeMu.Unlock()
}

// sendAllowed is the sanctioned exception: the annotation names the
// invariant that makes the send non-blocking in practice.
func (p *Pool) sendAllowed(v func()) {
	p.closeMu.Lock()
	//rooflint:allow lockorder -- a dedicated reader drains tasks until closeMu's holder closes it
	p.tasks <- v
	p.closeMu.Unlock()
}

// receiveUnderLock blocks on a channel receive with a lock held.
func (p *Pool) receiveUnderLock() func() {
	p.mu.Lock()
	v := <-p.tasks // want `channel receive while holding \(parallel\.Pool\)\.mu`
	p.mu.Unlock()
	return v
}

// waitUnderLock joins the worker group with a lock held.
func (p *Pool) waitUnderLock() {
	p.mu.Lock()
	p.wg.Wait() // want `sync\.WaitGroup\.Wait while holding \(parallel\.Pool\)\.mu`
	p.mu.Unlock()
}

// selectUnderLock blocks in a defaultless select with a lock held.
func (p *Pool) selectUnderLock() {
	p.mu.Lock()
	select { // want `select while holding \(parallel\.Pool\)\.mu`
	case t := <-p.tasks:
		_ = t
	}
	p.mu.Unlock()
}

// pollUnderLock is fine: the default clause makes the select a poll.
func (p *Pool) pollUnderLock() {
	p.mu.Lock()
	select {
	case t := <-p.tasks:
		_ = t
	default:
	}
	p.mu.Unlock()
}

// spawn is fine: the goroutine body starts with nothing held, so its
// receive does not run under mu.
func (p *Pool) spawn() {
	p.mu.Lock()
	go func() {
		t := <-p.tasks
		_ = t
	}()
	p.mu.Unlock()
}

// sendAfterUnlock is fine: the lock is released before the send.
func (p *Pool) sendAfterUnlock(v func()) {
	p.mu.Lock()
	p.mu.Unlock()
	p.tasks <- v
}

// deferredHold keeps mu held to function end via the deferred unlock,
// so the send still runs under it.
func (p *Pool) deferredHold(v func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tasks <- v // want `channel send while holding \(parallel\.Pool\)\.mu`
}

// reentrant locks a mutex it already holds.
func (p *Pool) reentrant() {
	p.mu.Lock()
	p.mu.Lock() // want `lock \(parallel\.Pool\)\.mu acquired while already held on this path: self-deadlock`
	p.mu.Unlock()
	p.mu.Unlock()
}
