// Package lockorder machine-checks the serving tier's mutex discipline:
// a consistent intra-package lock acquisition order, and no blocking
// operations while a lock is held.
//
// internal/serve and its subpackages (jobs, cache, budget) each hold
// one or more mutexes, and internal/parallel guards its pool lifecycle
// with another; PR 7 made them all load-bearing under concurrent HTTP
// traffic. Deadlocks need two ingredients: inconsistent acquisition
// order between two locks, or a lock held across an operation that can
// block indefinitely (channel send/receive, select, WaitGroup join).
// This analyzer infers both from the syntax: it records, per package,
// every "lock B acquired while A is held" edge and reports every edge
// that participates in a cycle; and it flags channel operations,
// defaultless selects and WaitGroup joins executed with a lock held.
// The analysis is intraprocedural and linear per function — goroutine
// bodies start with an empty lock set, branches are scanned with a copy
// — which is exactly as clever as the invariant needs: the sanctioned
// exceptions (a send into a drained channel under the close lock) carry
// a //rooflint:allow lockorder annotation with their justification.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"rooftune/internal/lint/analysis"
	"rooftune/internal/lint/scope"
)

// Analyzer is the lockorder invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "consistent mutex acquisition order; no blocking operations while a lock is held\n\n" +
		"In internal/serve/... and internal/parallel, two locks must always be taken in\n" +
		"the same order, and channel ops/selects/WaitGroup joins must not run under a\n" +
		"lock; annotate sanctioned exceptions with //rooflint:allow lockorder.",
	Run: run,
}

// lockedPackages is the analyzer's scope: every package that holds a
// mutex on the serving path (fixtures mirror the suffixes).
var lockedPackages = []string{
	"internal/serve",
	"internal/serve/admit",
	"internal/serve/jobs",
	"internal/serve/cache",
	"internal/serve/budget",
	"internal/serve/metrics",
	"internal/parallel",
	"internal/dist",
}

// acquisition records one "to acquired while from held" observation.
type acquisition struct {
	from, to string
	pos      token.Pos
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Match(pass.Pkg.Path(), lockedPackages...) {
		return nil, nil
	}
	w := &walker{pass: pass}
	for _, f := range pass.Files {
		// Test files are exempt: tests serialize goroutines with ad-hoc
		// channels and mutexes whose ordering is not the production
		// discipline.
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w.block(fd.Body.List, nil)
			}
		}
	}

	// An edge A->B is a finding iff some chain of edges leads from B
	// back to A: the orderings are then inconsistent and two goroutines
	// can deadlock. Every edge on a cycle is reported, at each site.
	adj := map[string]map[string]bool{}
	for _, a := range w.edges {
		if adj[a.from] == nil {
			adj[a.from] = map[string]bool{}
		}
		adj[a.from][a.to] = true
	}
	sort.Slice(w.edges, func(i, j int) bool { return w.edges[i].pos < w.edges[j].pos })
	for _, a := range w.edges {
		if reaches(adj, a.to, a.from, map[string]bool{}) {
			pass.Reportf(a.pos,
				"lock %s acquired while holding %s, but another path acquires them in the reverse order; pick one order (or annotate //rooflint:allow lockorder with the reason it cannot deadlock)",
				a.to, a.from)
		}
	}
	return nil, nil
}

// reaches reports whether "from" can reach "to" along acquisition edges.
func reaches(adj map[string]map[string]bool, from, to string, seen map[string]bool) bool {
	if from == to {
		return true
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	next := make([]string, 0, len(adj[from]))
	for n := range adj[from] {
		next = append(next, n)
	}
	sort.Strings(next)
	for _, n := range next {
		if reaches(adj, n, to, seen) {
			return true
		}
	}
	return false
}

// walker scans statement lists linearly, tracking the ordered set of
// held locks. Branch bodies are scanned with a copy of the held set;
// goroutine bodies and function literals start empty (they run in their
// own context).
type walker struct {
	pass  *analysis.Pass
	edges []acquisition
}

// block scans stmts with the given held set and returns the held set at
// the end of the straight-line path.
func (w *walker) block(stmts []ast.Stmt, held []string) []string {
	for _, stmt := range stmts {
		held = w.stmt(stmt, held)
	}
	return held
}

func (w *walker) stmt(stmt ast.Stmt, held []string) []string {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.expr(e, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.expr(e, held)
		}
		return held
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to function end on this
		// path — exactly what linear scanning already models by not
		// popping it. Deferred calls other than unlocks run after the
		// scan's horizon; skip them.
		return held
	case *ast.GoStmt:
		// The spawned goroutine holds nothing at birth.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.block(fl.Body.List, nil)
		}
		for _, arg := range s.Call.Args {
			held = w.expr(arg, held)
		}
		return held
	case *ast.SendStmt:
		w.blockingOp(s.Arrow, "channel send", held)
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		held = w.expr(s.Cond, held)
		w.block(s.Body.List, append([]string(nil), held...))
		if s.Else != nil {
			w.stmt(s.Else, append([]string(nil), held...))
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			held = w.expr(s.Cond, held)
		}
		w.block(s.Body.List, append([]string(nil), held...))
		return held
	case *ast.RangeStmt:
		held = w.expr(s.X, held)
		w.block(s.Body.List, append([]string(nil), held...))
		return held
	case *ast.BlockStmt:
		return w.block(s.List, held)
	case *ast.SelectStmt:
		blocking := true
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				blocking = false // a default clause makes the select a poll
			}
		}
		if blocking {
			w.blockingOp(s.Select, "select", held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				w.block(cc.Body, append([]string(nil), held...))
			}
		}
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.block(cc.Body, append([]string(nil), held...))
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.block(cc.Body, append([]string(nil), held...))
			}
		}
		return held
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	default:
		return held
	}
}

// expr scans an expression for lock operations, blocking operations and
// nested function literals, returning the updated held set.
func (w *walker) expr(e ast.Expr, held []string) []string {
	switch x := e.(type) {
	case *ast.CallExpr:
		for _, arg := range x.Args {
			held = w.expr(arg, held)
		}
		if id, op, ok := w.mutexOp(x); ok {
			switch op {
			case "Lock", "RLock":
				for _, h := range held {
					if h == id {
						w.pass.Reportf(x.Pos(), "lock %s acquired while already held on this path: self-deadlock", id)
						return held
					}
					w.edges = append(w.edges, acquisition{from: h, to: id, pos: x.Pos()})
				}
				return append(held, id)
			case "Unlock", "RUnlock":
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == id {
						return append(append([]string(nil), held[:i]...), held[i+1:]...)
					}
				}
				return held
			}
		}
		if w.isWaitGroupWait(x) {
			w.blockingOp(x.Pos(), "sync.WaitGroup.Wait", held)
		}
		if fl, ok := x.Fun.(*ast.FuncLit); ok {
			w.block(fl.Body.List, append([]string(nil), held...))
		}
		return held
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			w.blockingOp(x.OpPos, "channel receive", held)
		}
		return w.expr(x.X, held)
	case *ast.BinaryExpr:
		held = w.expr(x.X, held)
		return w.expr(x.Y, held)
	case *ast.ParenExpr:
		return w.expr(x.X, held)
	case *ast.FuncLit:
		// A literal that is stored rather than called runs later, in an
		// unknown context: scan it with nothing held.
		w.block(x.Body.List, nil)
		return held
	default:
		return held
	}
}

// blockingOp reports every held lock at a potentially-blocking
// operation.
func (w *walker) blockingOp(pos token.Pos, what string, held []string) {
	for _, h := range held {
		w.pass.Reportf(pos,
			"%s while holding %s: a blocked holder stalls every other acquirer (annotate //rooflint:allow lockorder if the operation provably cannot block)",
			what, h)
	}
}

// mutexOp classifies a call as a sync.Mutex/RWMutex lock operation and
// returns the lock's identity: the owning named type and field
// ("jobs.Job.mu"), or the package-qualified variable for a free mutex.
func (w *walker) mutexOp(call *ast.CallExpr) (id, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	obj := w.pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := obj.(*types.Func).Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	if named := namedOf(recv.Type()); named == nil ||
		(named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", "", false
	}
	return w.lockID(sel.X), method, true
}

// lockID renders the lock's stable identity from the receiver
// expression of the Lock/Unlock call.
func (w *walker) lockID(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		// j.mu, l.budget.mu, ... : identity is the owning type + field,
		// so every instance of the type shares one ordering node.
		if t := w.pass.TypesInfo.Types[x.X].Type; t != nil {
			if named := namedOf(t); named != nil {
				return fmt.Sprintf("(%s.%s).%s", named.Obj().Pkg().Name(), named.Obj().Name(), x.Sel.Name)
			}
		}
		return x.Sel.Name
	case *ast.Ident:
		// A bare mutex variable; package-level ones get a stable
		// qualified name, locals stay function-scoped by name.
		if obj := w.pass.TypesInfo.Uses[x]; obj != nil && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + x.Name
			}
		}
		return x.Name
	default:
		// An embedded mutex locked through its owner (x.Lock()) or an
		// anonymous expression: fall back to the expression's type.
		if t := w.pass.TypesInfo.Types[e].Type; t != nil {
			if named := namedOf(t); named != nil {
				return fmt.Sprintf("(%s.%s)", named.Obj().Pkg().Name(), named.Obj().Name())
			}
		}
		return "lock"
	}
}

// isWaitGroupWait reports a call of (*sync.WaitGroup).Wait.
func (w *walker) isWaitGroupWait(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	obj := w.pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	recv := obj.(*types.Func).Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named := namedOf(recv.Type())
	return named != nil && named.Obj().Name() == "WaitGroup"
}

// namedOf strips pointers down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	name := fset.Position(pos).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
