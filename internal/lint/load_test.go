package lint

import (
	"strings"
	"testing"
)

// TestLoadTypeChecksWithTests loads a real project package and checks
// the contract the analyzers rely on: the in-package test variant is
// what gets analyzed (test files present), the scope path is the plain
// import path, and type information resolves through export data.
func TestLoadTypeChecksWithTests(t *testing.T) {
	pkgs, err := Load("../..", "./internal/bench")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "rooftune/internal/bench" {
		t.Fatalf("path = %q", pkg.Path)
	}
	var haveTest bool
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			haveTest = true
		}
	}
	if !haveTest {
		t.Error("test files missing: the test variant was not selected")
	}
	if pkg.Types.Scope().Lookup("Config") == nil {
		t.Error("bench.Config not found in type-checked scope")
	}
	if obj := pkg.Types.Scope().Lookup("NewAtomicIncumbent"); obj == nil {
		t.Error("bench.NewAtomicIncumbent not found")
	}
}

// TestLoadMultiplePackages loads a package whose dependencies span the
// module and the standard library, proving export-data importing works
// for both.
func TestLoadMultiplePackages(t *testing.T) {
	pkgs, err := Load("../..", "./internal/sweep", "./internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
}
