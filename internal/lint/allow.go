package lint

import "strings"

// The //rooflint:allow annotation marks a sanctioned exception to one or
// more analyzers:
//
//	start := time.Now() //rooflint:allow nodeterminism -- campaign wall time is reporting metadata
//
// The annotation names the analyzers it silences (space-separated) and
// everything after a "--" is the required human justification. It
// suppresses findings on its own line and on the line directly below,
// so it works both as a trailing comment and as a standalone comment
// line above the sanctioned statement. There is deliberately no file- or
// package-wide form: every exception stays visible at the site it
// excuses.
const allowPrefix = "rooflint:allow"

// allowKey identifies one (analyzer, file, line) suppression.
type allowKey struct {
	analyzer string
	file     string
	line     int
}

// allowedLines collects the package's annotation grants.
func allowedLines(pkg *Package) map[allowKey]bool {
	allowed := map[allowKey]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				text = strings.TrimPrefix(text, allowPrefix)
				if reason := strings.SplitN(text, "--", 2); len(reason) > 0 {
					text = reason[0]
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Fields(text) {
					allowed[allowKey{name, pos.Filename, pos.Line}] = true
					allowed[allowKey{name, pos.Filename, pos.Line + 1}] = true
				}
			}
		}
	}
	return allowed
}
