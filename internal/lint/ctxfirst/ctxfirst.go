// Package ctxfirst enforces the cancellation contract of the engine,
// tuner and sweep packages.
//
// Everything on the measurement path that can block — searches, sweep
// execution, evaluation — is cancellable between kernel executions, and
// the way that contract stays legible is positional: an exported
// function that takes a context.Context takes it first, and an exported
// function that blocks (channel operations, select, WaitGroup joins)
// must take one. A blocking exported API without a context either
// re-introduces unjoinable waits or hides a cancellation gap.
package ctxfirst

import (
	"go/ast"
	"go/types"
	"strings"

	"rooftune/internal/lint/analysis"
	"rooftune/internal/lint/scope"
)

// Analyzer is the ctxfirst invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc: "exported blocking functions in engine/tuner/sweep packages take context.Context first\n\n" +
		"A context parameter anywhere but first position, or an exported function\n" +
		"that blocks without one, breaks the cancellation contract.",
	Run: run,
}

// contractPackages is the scope: the packages forming the cancellable
// measurement path.
var contractPackages = []string{
	"internal/core",
	"internal/sweep",
	"internal/bench",
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Match(pass.Pkg.Path(), contractPackages...) {
		return nil, nil
	}
	for _, f := range pass.Files {
		// Test functions are exported by convention and synchronize on
		// WaitGroups routinely; the contract is about the package's API.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ctxIndex := -1
	index := 0
	for _, field := range fn.Type.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if isContext(pass, field.Type) && ctxIndex < 0 {
			ctxIndex = index
		}
		index += width
	}
	switch {
	case ctxIndex > 0:
		pass.Reportf(fn.Name.Pos(),
			"exported %s takes context.Context at parameter %d; the cancellation contract puts it first",
			fn.Name.Name, ctxIndex)
	case ctxIndex < 0:
		if op := blockingOp(pass, fn.Body); op != "" {
			pass.Reportf(fn.Name.Pos(),
				"exported %s blocks (%s) but takes no context.Context; blocking APIs on the measurement path must be cancellable",
				fn.Name.Name, op)
		}
	}
}

// isContext reports whether a parameter type expression is
// context.Context.
func isContext(pass *analysis.Pass, expr ast.Expr) bool {
	t := pass.TypesInfo.Types[expr].Type
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// blockingOp scans a function body — nested function literals included,
// since they block their caller when invoked synchronously — for the
// first operation that can wait indefinitely: select, channel send or
// receive, ranging over a channel, or joining a sync.WaitGroup.
func blockingOp(pass *analysis.Pass, body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = "select"
		case *ast.SendStmt:
			found = "channel send"
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = "channel receive"
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = "range over channel"
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
					obj.Pkg().Path() == "sync" {
					found = "sync.WaitGroup.Wait"
				}
			}
		}
		return found == ""
	})
	return found
}
