// Package helper is outside the ctxfirst scope; exported blocking
// functions here are not findings.
package helper

func Pump(ch chan int) int {
	return <-ch
}
