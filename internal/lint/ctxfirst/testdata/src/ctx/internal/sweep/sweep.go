// Package sweep is a fixture standing in for rooftune/internal/sweep:
// its import path suffix puts it inside the ctxfirst scope.
package sweep

import (
	"context"
	"sync"
)

// Run honors the contract: it blocks and takes the context first.
func Run(ctx context.Context, work chan int) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-work:
		return nil
	}
}

// Misplaced takes a context, but not first.
func Misplaced(n int, ctx context.Context) error { // want `exported Misplaced takes context.Context at parameter 1; the cancellation contract puts it first`
	return ctx.Err()
}

// Drain blocks on a channel receive with no way to cancel it.
func Drain(ch chan int) int { // want `exported Drain blocks \(channel receive\) but takes no context.Context`
	return <-ch
}

// Join waits on a WaitGroup with no way to cancel it.
func Join(wg *sync.WaitGroup) { // want `exported Join blocks \(sync.WaitGroup.Wait\) but takes no context.Context`
	wg.Wait()
}

// Size neither blocks nor takes a context: nothing to enforce.
func Size(n int) int {
	return n * 2
}

// drain is unexported; the contract covers the package's API only.
func drain(ch chan int) int {
	return <-ch
}

// Flush blocks, but its wait is bounded by construction and the
// annotation on the preceding line documents the exception.
//
//rooflint:allow ctxfirst -- fixture: the send is buffered and never blocks
func Flush(ch chan int) {
	ch <- 0
}
