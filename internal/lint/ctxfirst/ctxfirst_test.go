package ctxfirst_test

import (
	"testing"

	"rooftune/internal/lint/ctxfirst"
	"rooftune/internal/lint/linttest"
)

func TestCtxFirst(t *testing.T) {
	linttest.Run(t, ctxfirst.Analyzer, "./testdata/src/...")
}
