// Package scope decides which packages a rooflint analyzer applies to.
//
// Analyzers name their scope as module-relative package suffixes
// ("internal/core", "internal/bench") or the root package ("rooftune").
// Matching is by path suffix on segment boundaries, which serves two
// masters at once: the real packages match ("rooftune/internal/core"
// ends in "/internal/core"), and analysistest fixture packages stand in
// for them by mirroring the suffix under their testdata tree
// ("rooftune/internal/lint/configsum/testdata/src/a/internal/bench"
// matches "internal/bench"), so scope rules are exercised by fixtures
// without any test-only configuration hooks in the analyzers.
package scope

import "strings"

// Match reports whether path is, or stands in for, one of entries.
func Match(path string, entries ...string) bool {
	for _, entry := range entries {
		if path == entry || strings.HasSuffix(path, "/"+entry) {
			return true
		}
	}
	return false
}
