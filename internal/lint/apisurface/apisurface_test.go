package apisurface_test

import (
	"bytes"
	"os"
	"testing"

	"rooftune/internal/lint"
	"rooftune/internal/lint/analysis"
	"rooftune/internal/lint/apisurface"
	"rooftune/internal/lint/golden"
	"rooftune/internal/lint/linttest"
)

// TestAPISurface runs the fixture tree: the ok package matches its
// golden (no findings), the stale package exercises all three drift
// classes via want comments.
func TestAPISurface(t *testing.T) {
	linttest.Run(t, apisurface.Analyzer, "./testdata/src/api/...")
}

// TestWriteGoldensHeals proves the documented workflow: a stale golden
// fails, rooflint -write-goldens (golden.WriteMode) regenerates it, and
// the same tree then checks clean. The committed fixtures are restored
// afterwards. It also proves write mode is idempotent on a clean tree:
// the ok fixture's golden must come back byte-identical.
func TestWriteGoldensHeals(t *testing.T) {
	paths := []string{
		"testdata/src/api/ok/rooftune/api/rooftune.txt",
		"testdata/src/api/stale/rooftune/api/rooftune.txt",
	}
	saved := map[string][]byte{}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		saved[p] = b
	}
	defer func() {
		golden.WriteMode = false
		for p, b := range saved {
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Errorf("restoring %s: %v", p, err)
			}
		}
	}()

	pkgs, err := lint.Load(".", "./testdata/src/api/...")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []lint.Diag {
		diags, err := lint.Run(pkgs, []*analysis.Analyzer{apisurface.Analyzer})
		if err != nil {
			t.Fatal(err)
		}
		return diags
	}

	if diags := run(); len(diags) == 0 {
		t.Fatal("stale fixture produced no findings before -write-goldens")
	}

	golden.WriteMode = true
	if diags := run(); len(diags) != 0 {
		t.Fatalf("write mode reported findings: %v", diags)
	}
	golden.WriteMode = false

	if diags := run(); len(diags) != 0 {
		t.Errorf("tree still dirty after -write-goldens: %v", diags)
	}
	now, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(now, saved[paths[0]]) {
		t.Errorf("write mode rewrote the clean golden differently:\n got: %s\nwant: %s", now, saved[paths[0]])
	}
}
