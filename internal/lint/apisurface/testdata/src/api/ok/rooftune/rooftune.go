// Package rooftune is a fixture root package whose exported surface
// matches its committed api/rooftune.txt golden exactly: no findings.
package rooftune

// Version pins the fixture contract.
const Version = "v1"

// Limit is an exported var.
var Limit int

// Runner is an exported interface.
type Runner interface {
	Run(n int) error
	stop()
}

// Session is an exported struct with one exported and one unexported
// field; only the exported field is surface.
type Session struct {
	Name   string
	budget int
}

// Run implements Runner.
func (s *Session) Run(n int) error { return nil }

func (s *Session) stop() {}

// New constructs a Session.
func New(name string) *Session { return &Session{Name: name} }

// helper is unexported: not surface.
func helper() {}

var _ = helper
