// Package rooftune is a fixture root package whose golden is stale in
// all three ways: it still lists a deleted func (removal), it records
// Limit with its old type (retype), and it does not know Extra yet
// (undeclared addition).
package rooftune // want `exported symbol removed from the API surface: "func Dropped = \(\) error"`

// Limit changed type since the golden was written.
var Limit string // want `exported symbol changed: var Limit is now "string", golden api/rooftune.txt has "int"`

// Session matches the golden.
type Session struct {
	Name string
}

// New matches the golden.
func New(name string) *Session { return &Session{Name: name} }

// Extra postdates the golden.
func Extra() {} // want `exported symbol "func Extra = \(\)" not in the API golden; declare the addition with rooflint -write-goldens`
