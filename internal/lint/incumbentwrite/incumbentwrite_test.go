package incumbentwrite_test

import (
	"testing"

	"rooftune/internal/lint/incumbentwrite"
	"rooftune/internal/lint/linttest"
)

func TestIncumbentWrite(t *testing.T) {
	linttest.Run(t, incumbentwrite.Analyzer, "./testdata/src/...")
}
