// Package bench is a fixture standing in for rooftune/internal/bench:
// it declares an AtomicIncumbent with the real type's CAS-max shape.
package bench

import (
	"math"
	"sync/atomic"
)

// AtomicIncumbent mirrors the monotone incumbent bound.
type AtomicIncumbent struct {
	bits atomic.Uint64
}

// NewAtomicIncumbent is the sanctioned constructor; its store is the
// one non-method write allowed to touch the state.
func NewAtomicIncumbent(initial float64) *AtomicIncumbent {
	a := &AtomicIncumbent{}
	a.bits.Store(math.Float64bits(initial))
	return a
}

// Bound reads through the type's own method: sanctioned.
func (a *AtomicIncumbent) Bound() float64 {
	return math.Float64frombits(a.bits.Load())
}

// Offer is the CAS-max protocol itself: sanctioned.
func (a *AtomicIncumbent) Offer(v float64) bool {
	for {
		old := a.bits.Load()
		if v <= math.Float64frombits(old) {
			return false
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return true
		}
	}
}

// Rogue writes the state from outside the type's methods; a plain
// Store can lower the bound.
func Rogue(a *AtomicIncumbent) {
	a.bits.Store(0) // want `direct access to AtomicIncumbent.bits outside the type's own methods: mutate the bound only through Offer`
}
