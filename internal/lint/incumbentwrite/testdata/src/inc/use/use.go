// Package use exercises the incumbentwrite analyzer from a consumer's
// side: incumbents are shared by pointer and mutated only via Offer.
package use

import (
	"rooftune/internal/lint/incumbentwrite/testdata/src/inc/internal/bench"
)

type holder struct {
	inc bench.AtomicIncumbent
}

// Probe reads and offers through the protocol: no findings.
func Probe(inc *bench.AtomicIncumbent, v float64) float64 {
	inc.Offer(v)
	return inc.Bound()
}

// Snapshot copies the value, forking the bound.
func Snapshot(inc *bench.AtomicIncumbent) bench.AtomicIncumbent {
	return *inc // want `dereference of \*AtomicIncumbent copies or overwrites the shared bound`
}

// Clobber overwrites the shared value, resetting the bound mid-search.
func Clobber(inc *bench.AtomicIncumbent) {
	*inc = bench.AtomicIncumbent{} // want `dereference of \*AtomicIncumbent copies or overwrites the shared bound`
}

// Reset overwrites an embedded incumbent field wholesale.
func Reset(h *holder) {
	h.inc = bench.AtomicIncumbent{} // want `assignment overwrites an AtomicIncumbent value: the bound must only rise through Offer`
}

// AllowedSnapshot documents an out-of-band copy; the annotation on the
// preceding line suppresses the finding.
func AllowedSnapshot(inc *bench.AtomicIncumbent) bench.AtomicIncumbent {
	//rooflint:allow incumbentwrite -- fixture: snapshot for offline reporting after the search has joined
	return *inc
}
