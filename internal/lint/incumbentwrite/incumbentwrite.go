// Package incumbentwrite protects the monotone incumbent protocol.
//
// Sharded searches stay order-insensitive because the shared incumbent
// bound only ever rises, and only through bench.AtomicIncumbent's
// CAS-max Offer. Two things would silently break that: code inside the
// bench package touching the underlying atomic state from outside the
// type's own methods (a plain Store can lower the bound), and code
// anywhere copying or overwriting an AtomicIncumbent value (a copy
// forks the bound; an overwrite resets it mid-search). This analyzer
// forbids both — incumbent values are shared by pointer and mutated
// only through the Incumbent interface and Offer.
package incumbentwrite

import (
	"go/ast"
	"go/types"

	"rooftune/internal/lint/analysis"
	"rooftune/internal/lint/scope"
)

// Analyzer is the incumbentwrite invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "incumbentwrite",
	Doc: "incumbent bounds are mutated only through the monotone Incumbent protocol\n\n" +
		"AtomicIncumbent state may be touched only by its own methods; the value is\n" +
		"shared by pointer and never copied or overwritten wholesale.",
	Run: run,
}

// incumbentType and its declaring package suffix.
const (
	incumbentType = "AtomicIncumbent"
	benchPackage  = "internal/bench"
)

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			inspectFunc(pass, fn)
		}
	}
	return nil, nil
}

// inspectFunc checks one function body. Field access to the incumbent's
// state is sanctioned only inside the type's own methods and its
// constructor.
func inspectFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	sanctioned := isIncumbentMethod(pass, fn) || fn.Name.Name == "New"+incumbentType
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sanctioned {
				return true
			}
			sel := pass.TypesInfo.Selections[n]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			if isIncumbent(derefNamed(sel.Recv())) {
				pass.Reportf(n.Pos(),
					"direct access to %s.%s outside the type's own methods: mutate the bound only through Offer",
					incumbentType, n.Sel.Name)
			}
		case *ast.StarExpr:
			tv := pass.TypesInfo.Types[n]
			if tv.IsValue() && isIncumbent(namedOf(tv.Type)) {
				pass.Reportf(n.Pos(),
					"dereference of *%s copies or overwrites the shared bound: incumbents are shared by pointer and mutated only via Offer",
					incumbentType)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if _, isStar := lhs.(*ast.StarExpr); isStar {
					continue // already reported as a dereference
				}
				if tv := pass.TypesInfo.Types[lhs]; tv.IsValue() && isIncumbent(namedOf(tv.Type)) {
					pass.Reportf(lhs.Pos(),
						"assignment overwrites an %s value: the bound must only rise through Offer",
						incumbentType)
				}
			}
		}
		return true
	})
}

// isIncumbentMethod reports whether fn is declared on AtomicIncumbent.
func isIncumbentMethod(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return false
	}
	t := pass.TypesInfo.Types[fn.Recv.List[0].Type].Type
	return isIncumbent(derefNamed(t))
}

// derefNamed unwraps one pointer level and returns the named type, if
// any.
func derefNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return namedOf(t)
}

func namedOf(t types.Type) *types.Named {
	named, _ := t.(*types.Named)
	return named
}

// isIncumbent reports whether named is the bench AtomicIncumbent (or a
// fixture standing in for it under the scope suffix rule).
func isIncumbent(named *types.Named) bool {
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == incumbentType && obj.Pkg() != nil && scope.Match(obj.Pkg().Path(), benchPackage)
}
