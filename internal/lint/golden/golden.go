// Package golden is the snapshot regime shared by rooflint's
// contract-stability analyzers (apisurface, wirecompat): committed text
// files under api/ that pin a rendered contract — the exported API
// surface, the wire schema's field census — so any drift is a build
// failure instead of a silent cache invalidation.
//
// A golden file is a sorted list of lines. Each line carries a stable
// identity (its leading fields) and a rendering (the rest); the diff
// classifies drift by identity: an identity present in the golden but
// not in the fresh rendering is a removal (breaking), present in both
// with a different rendering is a change (breaking), and present only
// in the rendering is an addition (allowed, but the golden must be
// regenerated with rooflint -write-goldens so the change is declared in
// the diff the reviewer reads).
package golden

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// WriteMode switches the golden analyzers from checking to writing:
// instead of diffing the rendering against the committed golden they
// rewrite it. cmd/rooflint -write-goldens sets it before the run.
var WriteMode bool

// Line is one golden entry: a stable identity and its rendering.
type Line struct {
	// ID is the entry's identity — what must not disappear or change
	// meaning (e.g. "func New", "bench outcomeWire.mean").
	ID string
	// Rendering is the full contract text for the identity (signature,
	// field type and options, ...).
	Rendering string
}

// String renders the entry as its golden-file line.
func (l Line) String() string {
	if l.Rendering == "" {
		return l.ID
	}
	return l.ID + " = " + l.Rendering
}

// parseLine splits a golden-file line back into identity and rendering.
func parseLine(s string) Line {
	if id, rendering, ok := strings.Cut(s, " = "); ok {
		return Line{ID: id, Rendering: rendering}
	}
	return Line{ID: s}
}

// Sort orders lines by identity (then rendering, for determinism if an
// identity ever repeats).
func Sort(lines []Line) {
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].ID != lines[j].ID {
			return lines[i].ID < lines[j].ID
		}
		return lines[i].Rendering < lines[j].Rendering
	})
}

// Read loads a golden file. A missing file returns (nil, false, nil):
// the caller reports "golden missing" rather than erroring, so a fresh
// checkout fails with an actionable finding instead of a crash.
func Read(path string) (lines []Line, ok bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	for _, raw := range strings.Split(string(data), "\n") {
		raw = strings.TrimRight(raw, "\r")
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		lines = append(lines, parseLine(raw))
	}
	return lines, true, nil
}

// Write renders the lines (sorted, with a generated-file header) to
// path, creating the directory if needed.
func Write(path, header string, lines []Line) error {
	Sort(lines)
	var sb strings.Builder
	for _, h := range strings.Split(strings.TrimSpace(header), "\n") {
		fmt.Fprintf(&sb, "# %s\n", strings.TrimSpace(h))
	}
	for _, l := range lines {
		sb.WriteString(l.String())
		sb.WriteByte('\n')
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// DiffKind classifies one golden drift.
type DiffKind int

// Drift classes.
const (
	// Removed: the identity is in the golden but not in the rendering —
	// a breaking change (a consumer of the contract loses the entry).
	Removed DiffKind = iota
	// Changed: the identity survives but its rendering differs — a
	// retype or signature change, breaking for the same reason.
	Changed
	// Added: the rendering has an identity the golden lacks — additive,
	// but it must be declared by regenerating the golden.
	Added
)

// Diff is one classified drift entry.
type Diff struct {
	Kind   DiffKind
	ID     string
	Golden string // the golden rendering (Removed, Changed)
	Fresh  string // the fresh rendering (Changed, Added)
}

// Compare diffs the fresh rendering against the golden lines and
// returns the classified drift in deterministic (identity) order.
func Compare(goldenLines, fresh []Line) []Diff {
	goldenByID := make(map[string]string, len(goldenLines))
	for _, l := range goldenLines {
		goldenByID[l.ID] = l.Rendering
	}
	freshByID := make(map[string]string, len(fresh))
	for _, l := range fresh {
		freshByID[l.ID] = l.Rendering
	}
	var diffs []Diff
	for id, g := range goldenByID {
		f, ok := freshByID[id]
		switch {
		case !ok:
			diffs = append(diffs, Diff{Kind: Removed, ID: id, Golden: g})
		case f != g:
			diffs = append(diffs, Diff{Kind: Changed, ID: id, Golden: g, Fresh: f})
		}
	}
	for id, f := range freshByID {
		if _, ok := goldenByID[id]; !ok {
			diffs = append(diffs, Diff{Kind: Added, ID: id, Fresh: f})
		}
	}
	sort.Slice(diffs, func(i, j int) bool {
		if diffs[i].ID != diffs[j].ID {
			return diffs[i].ID < diffs[j].ID
		}
		return diffs[i].Kind < diffs[j].Kind
	})
	return diffs
}

// Section filters the golden lines whose identity starts with the given
// section prefix (a word followed by a space). wirecompat's golden
// holds one section per scoped package, each checked by its own pass.
func Section(lines []Line, section string) []Line {
	var out []Line
	prefix := section + " "
	for _, l := range lines {
		if strings.HasPrefix(l.ID, prefix) {
			out = append(out, l)
		}
	}
	return out
}

// ReplaceSection returns the golden lines with the named section
// replaced by fresh. Write mode uses it so one pass rewrites only its
// own slice of a shared golden file.
func ReplaceSection(lines []Line, section string, fresh []Line) []Line {
	prefix := section + " "
	out := make([]Line, 0, len(lines)+len(fresh))
	for _, l := range lines {
		if !strings.HasPrefix(l.ID, prefix) {
			out = append(out, l)
		}
	}
	return append(out, fresh...)
}
