// Package nodeterminism keeps nondeterministic time and randomness out
// of the measurement and tuner packages.
//
// The repository's reproducibility claim — same seed, bit-identical
// sweep results — holds because every simulated measurement flows
// through internal/vclock (virtual time) and internal/xrand (seeded,
// stream-splittable randomness). A stray time.Now or math/rand draw in
// internal/core, internal/sweep, internal/bench, the simulator models
// or the experiment drivers silently re-introduces wall-clock and
// global-RNG state. This analyzer forbids the raw primitives in those
// packages; genuinely out-of-band uses (wall-clock campaign metadata,
// test synchronization against real goroutines) carry a
// //rooflint:allow nodeterminism annotation at the site.
package nodeterminism

import (
	"go/ast"
	"go/types"
	"strconv"

	"rooftune/internal/lint/analysis"
	"rooftune/internal/lint/scope"
)

// Analyzer is the nodeterminism invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterminism",
	Doc: "no raw time.Now/time.Since/math/rand in measurement and tuner packages\n\n" +
		"Deterministic packages must draw time from internal/vclock and randomness\n" +
		"from internal/xrand; annotate genuinely out-of-band sites with\n" +
		"//rooflint:allow nodeterminism.",
	Run: run,
}

// deterministicPackages is the analyzer's scope: the packages whose
// behavior must replay bit-identically from a seed. The sanctioned
// wrappers internal/vclock and internal/xrand are deliberately outside
// it — they are where the raw primitives are allowed to live.
var deterministicPackages = []string{
	"rooftune",
	"internal/core",
	"internal/sweep",
	"internal/bench",
	"internal/simblas",
	"internal/simspmv",
	"internal/simstencil",
	"internal/simstream",
	"internal/experiments",
}

// forbiddenTime are the wall-clock entry points of package time. Types
// and constants (time.Duration, time.Second) stay usable; only the
// functions that read or wait on the real clock are banned.
var forbiddenTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Match(pass.Pkg.Path(), deterministicPackages...) {
		return nil, nil
	}
	for _, f := range pass.Files {
		// A math/rand import is reported once, at the import: its global
		// generator is nondeterministic state however it is reached
		// (including via a dot import), and every use requires it.
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in deterministic package %s: use the seeded, stream-splittable internal/xrand instead",
					path, pass.Pkg.Path())
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Only package-qualified references count: t.After(u) is the
			// deterministic time.Time method, time.After(d) the real timer.
			qual, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if _, isPkg := pass.TypesInfo.Uses[qual].(*types.PkgName); !isPkg {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if obj.Pkg().Path() == "time" && forbiddenTime[obj.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s in deterministic package %s: draw time from internal/vclock (or annotate //rooflint:allow nodeterminism for out-of-band uses)",
					obj.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil, nil
}
