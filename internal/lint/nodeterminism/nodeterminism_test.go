package nodeterminism_test

import (
	"testing"

	"rooftune/internal/lint/linttest"
	"rooftune/internal/lint/nodeterminism"
)

func TestNoDeterminism(t *testing.T) {
	linttest.Run(t, nodeterminism.Analyzer, "./testdata/src/...")
}
