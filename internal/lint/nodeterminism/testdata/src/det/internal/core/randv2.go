package core

import (
	randv2 "math/rand/v2" // want `import of math/rand/v2 in deterministic package .*: use the seeded, stream-splittable internal/xrand instead`
)

// DrawV2 shows the v2 generator is banned the same as the v1 one.
func DrawV2() int {
	return randv2.IntN(10)
}
