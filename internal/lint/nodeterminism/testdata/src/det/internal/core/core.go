// Package core is a fixture standing in for rooftune/internal/core:
// its import path suffix puts it inside the nodeterminism scope.
package core

import (
	"math/rand" // want `import of math/rand in deterministic package .*: use the seeded, stream-splittable internal/xrand instead`
	"time"
)

// Budget uses only the deterministic parts of package time — types and
// constants are fine, it is the clock reads that are banned.
func Budget(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}

// Stamp reads the wall clock twice.
func Stamp() time.Duration {
	start := time.Now()      // want `time.Now in deterministic package .*: draw time from internal/vclock`
	return time.Since(start) // want `time.Since in deterministic package .*: draw time from internal/vclock`
}

// Later calls the time.Time method After, not the timer time.After:
// method calls on values are deterministic and must not be flagged.
func Later(t, u time.Time) bool {
	return t.After(u)
}

// Draw reaches the global generator; the import report above covers it.
func Draw() int {
	return rand.Int()
}

// Annotated documents an out-of-band wall-clock read; the allow
// annotation on the preceding line suppresses the finding.
func Annotated() time.Time {
	//rooflint:allow nodeterminism -- fixture: reporting metadata, never a measured result
	return time.Now()
}
