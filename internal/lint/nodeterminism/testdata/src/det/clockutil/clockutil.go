// Package clockutil is outside the deterministic scope; raw clock
// reads here are not findings.
package clockutil

import "time"

func Wall() time.Time {
	return time.Now()
}
