// Package analysis is the analyzer contract for rooflint, the project's
// static-analysis suite. It deliberately mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic carry the
// same names and roles — so each checker reads like a stock go/analysis
// analyzer and porting the suite onto the real framework, once the
// dependency is available, is a mechanical import swap. The build
// environment is offline and the module is dependency-free, so the
// driver (internal/lint) loads and type-checks packages with the
// standard library instead of go/packages.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rooflint:allow annotations. It must be a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation: a one-line summary, then a
	// blank line, then detail. cmd/rooflint -list prints the first line.
	Doc string
	// Run applies the analyzer to one package. It reports findings via
	// Pass.Report/Reportf; the result value is unused (kept for
	// go/analysis shape compatibility).
	Run func(*Pass) (any, error)
}

// String returns the analyzer's name.
func (a *Analyzer) String() string { return a.Name }

// Pass presents one type-checked package to an analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees, comments included.
	// For packages with in-package test files the trees include them, so
	// invariants hold over tests too unless an analyzer opts out.
	Files []*ast.File
	// Pkg is the type-checked package; Pkg.Path() is the import path the
	// analyzers' scope rules match against.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
