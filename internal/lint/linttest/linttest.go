// Package linttest runs a rooflint analyzer over fixture packages and
// checks its findings against // want comments, mirroring the contract
// of golang.org/x/tools/go/analysis/analysistest: a fixture line that
// should be reported carries a trailing comment with one quoted regular
// expression per expected finding, and any finding on a line without a
// matching want is a test failure — so every fixture encodes positive
// and negative cases in one tree.
//
//	_ = time.Now() // want `time\.Now is forbidden`
//
// Fixtures live under the analyzer package's testdata/src directory and
// are real, compilable packages: the loader type-checks them exactly
// like the production tree, //rooflint:allow annotations included.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rooftune/internal/lint"
	"rooftune/internal/lint/analysis"
)

// want is one expectation: a line that must produce findings matching
// the given regular expressions.
type want struct {
	pos      token.Position
	patterns []*regexp.Regexp
}

// Run loads the fixture packages matched by patterns (relative to the
// calling test's directory, e.g. "./testdata/src/configsum/...") and
// asserts the analyzer's findings equal the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("linttest: no fixture packages matched %v", patterns)
	}
	diags, err := lint.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := map[string][]want{} // file:line -> expectations
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectWants(t, pkg.Fset, f, wants)
		}
	}

	// Every finding must consume one matching expectation on its line...
	for _, d := range diags {
		key := lineKey(d.Pos)
		matched := false
		ws := wants[key]
		for i, w := range ws {
			for j, re := range w.patterns {
				if re.MatchString(d.Message) {
					w.patterns = append(w.patterns[:j], w.patterns[j+1:]...)
					ws[i] = w
					matched = true
					break
				}
			}
			if matched {
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s", d.Pos, d.Message)
		}
	}
	// ...and every expectation must have been consumed.
	for _, ws := range wants {
		for _, w := range ws {
			for _, re := range w.patterns {
				t.Errorf("%s: expected finding matching %q, got none", w.pos, re)
			}
		}
	}
}

func lineKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

// collectWants parses a file's // want comments. The comment's own line
// is the expectation line, so trailing comments annotate the statement
// they share a line with.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, wants map[string][]want) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			w := want{pos: pos}
			for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
				lit, remainder, err := cutQuoted(rest)
				if err != nil {
					t.Fatalf("%s: malformed want comment %q: %v", pos, c.Text, err)
				}
				re, err := regexp.Compile(lit)
				if err != nil {
					t.Fatalf("%s: want pattern %q: %v", pos, lit, err)
				}
				w.patterns = append(w.patterns, re)
				rest = remainder
			}
			if len(w.patterns) == 0 {
				t.Fatalf("%s: want comment carries no quoted pattern", pos)
			}
			key := lineKey(pos)
			wants[key] = append(wants[key], w)
		}
	}
}

// cutQuoted splits one leading Go string literal (double- or back-
// quoted) off s and returns its value and the remainder.
func cutQuoted(s string) (lit, rest string, err error) {
	quote := s[0]
	if quote != '"' && quote != '`' {
		return "", "", fmt.Errorf("expected quoted pattern at %q", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] == quote && (quote == '`' || s[i-1] != '\\') {
			lit, err := strconv.Unquote(s[:i+1])
			return lit, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated pattern at %q", s)
}
