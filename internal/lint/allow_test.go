package lint

import (
	"fmt"
	"go/ast"
	"testing"

	"rooftune/internal/lint/analysis"
)

// fakeAnalyzer reports on every package-level ValueSpec, so the fixture
// can place //rooflint:allow annotations above some and not others.
func fakeAnalyzer(name string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: name,
		Doc:  "test fake: flags every value spec",
		Run: func(pass *analysis.Pass) (any, error) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if vs, ok := n.(*ast.ValueSpec); ok {
						pass.Reportf(vs.Pos(), "flagged by %s", name)
					}
					return true
				})
			}
			return nil, nil
		},
	}
}

// TestAllowMultipleAnalyzers proves one annotation line naming several
// analyzers suppresses each of them — and only them — on the line
// below: alpha and beta are silenced at the sanctioned spec, gamma is
// not, and all three still fire on the unannotated spec.
func TestAllowMultipleAnalyzers(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/allowmulti")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, []*analysis.Analyzer{
		fakeAnalyzer("alpha"), fakeAnalyzer("beta"), fakeAnalyzer("gamma"),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, d := range diags {
		got[fmt.Sprintf("%s:%d", d.Analyzer, d.Pos.Line)] = true
	}
	const sanctionedLine, plainLine = 7, 8
	want := map[string]bool{
		fmt.Sprintf("gamma:%d", sanctionedLine): true, // not named by the annotation
		fmt.Sprintf("alpha:%d", plainLine):      true,
		fmt.Sprintf("beta:%d", plainLine):       true,
		fmt.Sprintf("gamma:%d", plainLine):      true,
	}
	for k := range want {
		if !got[k] {
			t.Errorf("expected finding %s, got none", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected finding %s (suppression leaked or missed)", k)
		}
	}
}

// TestLoadTagsSelectsTaggedFiles proves the -tags plumbing: a package
// whose only file sits behind a build tag fails a plain Load (build
// constraints exclude all files) and loads under LoadTags.
func TestLoadTagsSelectsTaggedFiles(t *testing.T) {
	if _, err := Load(".", "./testdata/src/tagged"); err == nil {
		t.Fatal("untagged load of a fully-tagged package unexpectedly succeeded")
	}
	pkgs, err := LoadTags(".", "rooflinttagged", "./testdata/src/tagged")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	if pkgs[0].Types.Scope().Lookup("Tagged") == nil {
		t.Fatal("tagged file's Tagged const not in scope: -tags did not reach go list")
	}
}
