// Package worker is a fixture outside the exempt set; raw go
// statements here are findings unless annotated.
package worker

import "sync"

func task() {}

// Spawn launches a raw goroutine with no documented join.
func Spawn() {
	go task() // want `raw go statement in .*: route concurrency through internal/parallel`
}

// FanOut documents its join point in-line; the allow annotation on the
// preceding line suppresses the finding.
func FanOut(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		//rooflint:allow nogoroutine -- fixture: joined by wg.Wait below
		go func() {
			defer wg.Done()
			task()
		}()
	}
	wg.Wait()
}
