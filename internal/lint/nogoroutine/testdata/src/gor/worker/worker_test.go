package worker

// Test files are exempt: tests routinely spawn goroutines to exercise
// concurrency, so this raw go statement is not a finding.
func spawnInTest(done chan struct{}) {
	go func() {
		task()
		close(done)
	}()
}
