// Package parallel is a fixture standing in for rooftune/internal/parallel,
// the pooled execution path itself: the one package that may spawn
// goroutines freely.
package parallel

func Launch(f func()) {
	go f()
}
