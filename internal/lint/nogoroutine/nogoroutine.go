// Package nogoroutine keeps raw goroutine creation out of the tree.
//
// All production concurrency is supposed to flow through
// internal/parallel's pooled, cancellable, joined execution path — that
// is what makes cancellation leak-free and the determinism suites
// meaningful. A raw go statement anywhere else is either a missing use
// of the pool or a carefully documented structure (the sweep package's
// plan-graph dispatcher, the session's event drainer, core's shard
// workers), and the documented ones must say so in-line with a
// //rooflint:allow nogoroutine annotation whose justification names the
// join point. Test files are exempt: tests routinely spawn goroutines
// to exercise concurrency.
package nogoroutine

import (
	"go/ast"
	"strings"

	"rooftune/internal/lint/analysis"
	"rooftune/internal/lint/scope"
)

// Analyzer is the nogoroutine invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "nogoroutine",
	Doc: "no raw go statements outside internal/parallel\n\n" +
		"Concurrency flows through the pooled, cancellable path; a sanctioned\n" +
		"exception carries //rooflint:allow nogoroutine naming its join point.",
	Run: run,
}

// exemptPackages may spawn goroutines freely: internal/parallel is the
// pooled path itself.
var exemptPackages = []string{"internal/parallel"}

func run(pass *analysis.Pass) (any, error) {
	if scope.Match(pass.Pkg.Path(), exemptPackages...) {
		return nil, nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Go,
					"raw go statement in %s: route concurrency through internal/parallel, or annotate the documented join with //rooflint:allow nogoroutine",
					pass.Pkg.Path())
			}
			return true
		})
	}
	return nil, nil
}
