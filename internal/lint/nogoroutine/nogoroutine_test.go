package nogoroutine_test

import (
	"testing"

	"rooftune/internal/lint/linttest"
	"rooftune/internal/lint/nogoroutine"
)

func TestNoGoroutine(t *testing.T) {
	linttest.Run(t, nogoroutine.Analyzer, "./testdata/src/...")
}
