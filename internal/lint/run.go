package lint

import (
	"fmt"
	"go/token"
	"sort"

	"rooftune/internal/lint/analysis"
)

// Diag is one finding, positioned and attributed to its analyzer.
type Diag struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (d Diag) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings in deterministic order (position, then analyzer name).
// Findings on a line sanctioned by a //rooflint:allow annotation are
// suppressed; see allowedLines.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Diag, error) {
	var diags []Diag
	for _, pkg := range pkgs {
		allowed := allowedLines(pkg)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if allowed[allowKey{a.Name, pos.Filename, pos.Line}] {
					return
				}
				diags = append(diags, Diag{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
