// Package allowmulti fixtures the //rooflint:allow annotation form that
// names several analyzers on one line.
package allowmulti

var (
	//rooflint:allow alpha beta -- one annotation line sanctions two analyzers
	sanctioned = 1
	plain      = 2
)
