//go:build rooflinttagged

// Package tagged only builds under the rooflinttagged tag: it exists to
// prove LoadTags plumbs -tags through go list.
package tagged

// Tagged proves the tag selected this file.
const Tagged = true
