package roofline

import (
	"fmt"
	"strings"

	"rooftune/internal/units"
)

// RenderGnuplot emits a self-contained gnuplot script that reproduces the
// model as a publication-style log-log roofline figure, for users who
// want the paper's actual plotting toolchain rather than the built-in
// ASCII/SVG renderers. Pipe it to gnuplot:
//
//	rooftool -system "Gold 6148" -format gnuplot | gnuplot > roofline.png
func (m *Model) RenderGnuplot() string {
	loI, hiI := m.intensityRange()
	var sb strings.Builder
	sb.WriteString("set terminal pngcairo size 900,600\n")
	sb.WriteString("set logscale xy\n")
	fmt.Fprintf(&sb, "set xrange [%g:%g]\n", loI, hiI)
	sb.WriteString("set xlabel 'Operational Intensity (FLOP/byte)'\n")
	sb.WriteString("set ylabel 'GFLOP/s'\n")
	if m.Title != "" {
		fmt.Fprintf(&sb, "set title %q\n", m.Title)
	}
	sb.WriteString("set key left top\n")

	mem, comp := m.SortedCeilings()
	var plots []string
	switch {
	case len(comp) > 0:
		// One curve per (memory, top-compute) pair: min(B*I, Fp) in GFLOP/s.
		top := comp[0]
		for _, mc := range mem {
			plots = append(plots, fmt.Sprintf("min(%g*x, %g) title %q",
				mc.Bandwidth.GBps(), top.Flops.GFLOPS(), mc.Name))
		}
		// Flat lines for the remaining compute roofs.
		for _, cc := range comp[1:] {
			plots = append(plots, fmt.Sprintf("%g title %q", cc.Flops.GFLOPS(), cc.Name))
		}
	case len(mem) > 0:
		// No compute roof to cap the diagonals: plot the bandwidth lines.
		for _, mc := range mem {
			plots = append(plots, fmt.Sprintf("%g*x title %q", mc.Bandwidth.GBps(), mc.Name))
		}
	}

	// Application points as labelled markers. A ceiling-free model (an
	// SpMV/stencil-only session) is points-only: labels need a plot
	// command to attach to, so fall back to an invisible curve — and an
	// explicit yrange, because with no defined samples gnuplot's
	// autoscale would abort ("all points y value undefined") before
	// drawing the labels.
	if len(plots) == 0 {
		loF, hiF := m.yRange(loI)
		fmt.Fprintf(&sb, "set yrange [%g:%g]\n", loF/1e9, hiF/1e9)
		plots = append(plots, "1/0 notitle")
	}
	for i, p := range m.Points {
		if p.Intensity <= 0 || p.Flops <= 0 {
			continue
		}
		fmt.Fprintf(&sb, "set label %d %q at %g,%g point pt 7\n",
			i+1, p.Name, float64(p.Intensity), p.Flops.GFLOPS())
	}
	sb.WriteString("min(a,b) = (a < b) ? a : b\n")
	sb.WriteString("plot " + strings.Join(plots, ", \\\n     ") + "\n")
	return sb.String()
}

// Summary returns a text table of the model: each ceiling, every ridge
// point, and each application point's bound classification — the numeric
// companion to the graph.
func (m *Model) Summary() string {
	var sb strings.Builder
	mem, comp := m.SortedCeilings()
	if m.Title != "" {
		sb.WriteString(m.Title + "\n")
	}
	for _, cc := range comp {
		fmt.Fprintf(&sb, "compute ceiling: %-28s %s\n", cc.Name, cc.Flops)
	}
	for _, mc := range mem {
		fmt.Fprintf(&sb, "memory ceiling:  %-28s %s\n", mc.Name, mc.Bandwidth)
	}
	for _, cc := range comp {
		for _, mc := range mem {
			r := Ridge(mc.Bandwidth, cc.Flops)
			fmt.Fprintf(&sb, "ridge %s x %s: I* = %.3f FLOP/B\n", mc.Name, cc.Name, float64(r))
		}
	}
	for _, p := range m.Points {
		att := m.AttainableMax(p.Intensity)
		if att > 0 {
			fmt.Fprintf(&sb, "point %-10s I=%.4g: %s (%.0f%% of attainable, %s)\n",
				p.Name, float64(p.Intensity), p.Flops,
				100*float64(p.Flops)/float64(att), boundAgainstBest(m, p.Intensity))
			continue
		}
		// No ceilings (an SpMV/stencil-only session): there is no
		// attainable bound to compare against, so report the measurement
		// alone instead of a NaN percentage.
		fmt.Fprintf(&sb, "point %-10s I=%.4g: %s\n", p.Name, float64(p.Intensity), p.Flops)
	}
	return sb.String()
}

func boundAgainstBest(m *Model, i units.Intensity) string {
	var bestB units.Bandwidth
	for _, c := range m.Memory {
		if c.Bandwidth > bestB {
			bestB = c.Bandwidth
		}
	}
	var bestF units.Flops
	for _, c := range m.Compute {
		if c.Flops > bestF {
			bestF = c.Flops
		}
	}
	return Bound(bestB, bestF, i)
}
