// Package roofline constructs and renders Roofline models (Williams et
// al.): attainable performance as a function of operational intensity,
// bounded by memory-bandwidth ceilings and compute ceilings (Eq. 2 of the
// paper). The package renders the Fig. 1-style graph as ASCII for
// terminals, as SVG for documents, and exports the model as JSON.
package roofline

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"rooftune/internal/units"
)

// MemoryCeiling is one bandwidth roof (e.g. "DRAM, 1 socket").
type MemoryCeiling struct {
	Name      string
	Bandwidth units.Bandwidth
}

// ComputeCeiling is one flat compute roof (e.g. "DGEMM peak, 2 sockets").
type ComputeCeiling struct {
	Name  string
	Flops units.Flops
}

// Point is a measured or modelled application point on the graph.
type Point struct {
	Name      string
	Intensity units.Intensity
	Flops     units.Flops
}

// Model is a complete roofline: any number of bandwidth and compute
// ceilings, plus optional application points.
type Model struct {
	Title   string
	Memory  []MemoryCeiling
	Compute []ComputeCeiling
	Points  []Point
}

// Add ceilings and points fluently.
func (m *Model) AddMemory(name string, b units.Bandwidth) *Model {
	m.Memory = append(m.Memory, MemoryCeiling{Name: name, Bandwidth: b})
	return m
}

// AddCompute appends a compute ceiling.
func (m *Model) AddCompute(name string, f units.Flops) *Model {
	m.Compute = append(m.Compute, ComputeCeiling{Name: name, Flops: f})
	return m
}

// AddPoint appends an application point.
func (m *Model) AddPoint(name string, i units.Intensity, f units.Flops) *Model {
	m.Points = append(m.Points, Point{Name: name, Intensity: i, Flops: f})
	return m
}

// Validate checks that the model has at least one ceiling of each kind
// and positive values.
func (m *Model) Validate() error {
	if len(m.Memory) == 0 {
		return fmt.Errorf("roofline: no memory ceilings")
	}
	if len(m.Compute) == 0 {
		return fmt.Errorf("roofline: no compute ceilings")
	}
	for _, c := range m.Memory {
		if c.Bandwidth <= 0 {
			return fmt.Errorf("roofline: memory ceiling %q non-positive", c.Name)
		}
	}
	for _, c := range m.Compute {
		if c.Flops <= 0 {
			return fmt.Errorf("roofline: compute ceiling %q non-positive", c.Name)
		}
	}
	return nil
}

// Attainable evaluates Eq. 2 for a given pair of ceilings:
// F(I) = min(B*I, Fp).
func Attainable(b units.Bandwidth, fp units.Flops, i units.Intensity) units.Flops {
	v := float64(b) * float64(i)
	if v > float64(fp) {
		return fp
	}
	return units.Flops(v)
}

// AttainableMax evaluates the model's best attainable performance at
// intensity i: the maximum over bandwidth ceilings capped by the maximum
// compute ceiling.
func (m *Model) AttainableMax(i units.Intensity) units.Flops {
	var bestB units.Bandwidth
	for _, c := range m.Memory {
		if c.Bandwidth > bestB {
			bestB = c.Bandwidth
		}
	}
	var bestF units.Flops
	for _, c := range m.Compute {
		if c.Flops > bestF {
			bestF = c.Flops
		}
	}
	return Attainable(bestB, bestF, i)
}

// Ridge returns the ridge point (the intensity where the memory roof
// meets the compute roof) for a ceiling pair: I* = Fp / B. Below it the
// pair is memory-bound; above, compute-bound.
func Ridge(b units.Bandwidth, fp units.Flops) units.Intensity {
	if b <= 0 {
		return units.Intensity(math.Inf(1))
	}
	return units.Intensity(float64(fp) / float64(b))
}

// Bound classifies intensity i against a ceiling pair.
func Bound(b units.Bandwidth, fp units.Flops, i units.Intensity) string {
	if i < Ridge(b, fp) {
		return "memory-bound"
	}
	return "compute-bound"
}

// intensityRange picks the graph's X range: from well below the smallest
// ridge (and any point) to well above the largest.
func (m *Model) intensityRange() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, mc := range m.Memory {
		for _, cc := range m.Compute {
			r := float64(Ridge(mc.Bandwidth, cc.Flops))
			lo = math.Min(lo, r)
			hi = math.Max(hi, r)
		}
	}
	for _, p := range m.Points {
		lo = math.Min(lo, float64(p.Intensity))
		hi = math.Max(hi, float64(p.Intensity))
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0.01, 100
	}
	lo /= 8
	hi *= 8
	if lo <= 0 {
		lo = 1.0 / 64
	}
	return lo, hi
}

// MarshalJSON exports the model with engineering-friendly field names.
func (m *Model) MarshalJSON() ([]byte, error) {
	type memJSON struct {
		Name string  `json:"name"`
		GBps float64 `json:"gbps"`
	}
	type compJSON struct {
		Name   string  `json:"name"`
		GFLOPS float64 `json:"gflops"`
	}
	type ptJSON struct {
		Name      string  `json:"name"`
		Intensity float64 `json:"flop_per_byte"`
		GFLOPS    float64 `json:"gflops"`
	}
	out := struct {
		Title   string     `json:"title"`
		Memory  []memJSON  `json:"memory_ceilings"`
		Compute []compJSON `json:"compute_ceilings"`
		Points  []ptJSON   `json:"points,omitempty"`
	}{Title: m.Title}
	for _, c := range m.Memory {
		out.Memory = append(out.Memory, memJSON{c.Name, c.Bandwidth.GBps()})
	}
	for _, c := range m.Compute {
		out.Compute = append(out.Compute, compJSON{c.Name, c.Flops.GFLOPS()})
	}
	for _, p := range m.Points {
		out.Points = append(out.Points, ptJSON{p.Name, float64(p.Intensity), p.Flops.GFLOPS()})
	}
	return json.MarshalIndent(out, "", "  ")
}

// SortedCeilings returns memory ceilings by descending bandwidth and
// compute ceilings by descending peak — legend order.
func (m *Model) SortedCeilings() ([]MemoryCeiling, []ComputeCeiling) {
	mem := append([]MemoryCeiling(nil), m.Memory...)
	comp := append([]ComputeCeiling(nil), m.Compute...)
	sort.Slice(mem, func(i, j int) bool { return mem[i].Bandwidth > mem[j].Bandwidth })
	sort.Slice(comp, func(i, j int) bool { return comp[i].Flops > comp[j].Flops })
	return mem, comp
}
