package roofline

import (
	"fmt"
	"math"
	"strings"

	"rooftune/internal/units"
)

// RenderASCII draws the roofline graph as a text plot with logarithmic
// axes: intensity (FLOP/byte) on X, GFLOP/s on Y — the terminal rendition
// of the paper's Fig. 1. width and height are the plot grid dimensions in
// characters (sane minimums are enforced).
func (m *Model) RenderASCII(width, height int) string {
	if width < 40 {
		width = 40
	}
	if height < 12 {
		height = 12
	}
	loI, hiI := m.intensityRange()
	loF, hiF := m.yRange(loI)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	// Map (I, F) in log space to grid coordinates.
	toXY := func(i, f float64) (int, int, bool) {
		if i <= 0 || f <= 0 {
			return 0, 0, false
		}
		x := int(math.Round((math.Log10(i) - math.Log10(loI)) /
			(math.Log10(hiI) - math.Log10(loI)) * float64(width-1)))
		y := int(math.Round((math.Log10(f) - math.Log10(loF)) /
			(math.Log10(hiF) - math.Log10(loF)) * float64(height-1)))
		if x < 0 || x >= width || y < 0 || y >= height {
			return 0, 0, false
		}
		return x, height - 1 - y, true
	}

	mem, comp := m.SortedCeilings()
	marks := "abcdefghij"
	// Draw each memory/compute roofline pair: the diagonal up to the
	// ridge, then the flat roof.
	for mi, mc := range mem {
		for _, cc := range comp {
			for px := 0; px < width; px++ {
				i := math.Pow(10, math.Log10(loI)+
					(math.Log10(hiI)-math.Log10(loI))*float64(px)/float64(width-1))
				f := float64(Attainable(mc.Bandwidth, cc.Flops, units.Intensity(i)))
				if x, y, ok := toXY(i, f); ok {
					ch := byte('-')
					if f < float64(cc.Flops) {
						ch = marks[mi%len(marks)] // diagonal segment labelled per memory roof
					}
					if grid[y][x] == ' ' {
						grid[y][x] = ch
					}
				}
			}
		}
	}
	// Application points.
	for pi, p := range m.Points {
		if x, y, ok := toXY(float64(p.Intensity), float64(p.Flops)); ok {
			grid[y][x] = byte('0' + pi%10)
		}
	}

	var sb strings.Builder
	if m.Title != "" {
		fmt.Fprintf(&sb, "%s\n", m.Title)
	}
	fmt.Fprintf(&sb, "GFLOP/s (log), Y: %.3g .. %.3g\n", loF/1e9, hiF/1e9)
	for _, row := range grid {
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteString("\n")
	}
	sb.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&sb, " I = %.3g .. %.3g FLOP/byte (log)\n", loI, hiI)
	for mi, mc := range mem {
		fmt.Fprintf(&sb, " %c: %s (%s)\n", marks[mi%len(marks)], mc.Name, mc.Bandwidth)
	}
	for _, cc := range comp {
		fmt.Fprintf(&sb, " -: %s (%s)\n", cc.Name, cc.Flops)
	}
	for pi, p := range m.Points {
		fmt.Fprintf(&sb, " %d: %s (I=%.3g, %s)\n", pi%10, p.Name, float64(p.Intensity), p.Flops)
	}
	return sb.String()
}

// RenderSVG draws the graph as a standalone SVG document.
func (m *Model) RenderSVG(width, height int) string {
	if width < 320 {
		width = 320
	}
	if height < 240 {
		height = 240
	}
	const margin = 60
	plotW, plotH := float64(width-2*margin), float64(height-2*margin)

	loI, hiI := m.intensityRange()
	loF, hiF := m.yRange(loI)

	toXY := func(i, f float64) (float64, float64) {
		x := margin + plotW*(math.Log10(i)-math.Log10(loI))/(math.Log10(hiI)-math.Log10(loI))
		y := float64(height) - margin - plotH*(math.Log10(f)-math.Log10(loF))/(math.Log10(hiF)-math.Log10(loF))
		return x, y
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if m.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="24" font-size="16" font-family="sans-serif">%s</text>`+"\n",
			margin, escapeXML(m.Title))
	}
	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, height-margin, width-margin, height-margin)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, margin, margin, height-margin)
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="12" font-family="sans-serif">Operational Intensity (FLOP/byte, log)</text>`+"\n",
		width/2-110, height-16)
	fmt.Fprintf(&sb, `<text x="14" y="%d" font-size="12" font-family="sans-serif" transform="rotate(-90 14 %d)">GFLOP/s (log)</text>`+"\n",
		height/2, height/2)

	colors := []string{"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b"}
	mem, comp := m.SortedCeilings()
	legendY := margin
	for ci, cc := range comp {
		color := colors[(len(mem)+ci)%len(colors)]
		for mi, mc := range mem {
			ridge := float64(Ridge(mc.Bandwidth, cc.Flops))
			x0, y0 := toXY(loI, float64(mc.Bandwidth)*loI)
			xr, yr := toXY(ridge, float64(cc.Flops))
			x1, y1 := toXY(hiI, float64(cc.Flops))
			mcolor := colors[mi%len(colors)]
			fmt.Fprintf(&sb, `<polyline points="%.1f,%.1f %.1f,%.1f" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				x0, y0, xr, yr, mcolor)
			fmt.Fprintf(&sb, `<polyline points="%.1f,%.1f %.1f,%.1f" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				xr, yr, x1, y1, color)
		}
	}
	for mi, mc := range mem {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="11" font-family="sans-serif" fill="%s">%s (%s)</text>`+"\n",
			width-margin-230, legendY+14*mi, colors[mi%len(colors)], escapeXML(mc.Name), mc.Bandwidth)
	}
	for ci, cc := range comp {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="11" font-family="sans-serif" fill="%s">%s (%s)</text>`+"\n",
			width-margin-230, legendY+14*(len(mem)+ci), colors[(len(mem)+ci)%len(colors)], escapeXML(cc.Name), cc.Flops)
	}
	for pi, p := range m.Points {
		x, y := toXY(float64(p.Intensity), float64(p.Flops))
		fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="4" fill="black"/>`+"\n", x, y)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="10" font-family="sans-serif">%s</text>`+"\n",
			x+6, y-4, escapeXML(p.Name))
		_ = pi
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// yRange returns the log-plot Y bounds: from well under the lowest
// roofline start (or lowest application point — a model of measured
// kernels with no ceilings, e.g. an SpMV/stencil-only session, must
// still frame its points) up to above the top roof or point. The bounds
// are always positive and ordered, so the log mapping never degenerates.
func (m *Model) yRange(loI float64) (loF, hiF float64) {
	var topF float64
	for _, c := range m.Compute {
		topF = math.Max(topF, float64(c.Flops))
	}
	for _, p := range m.Points {
		topF = math.Max(topF, float64(p.Flops))
	}
	minB := math.Inf(1)
	for _, c := range m.Memory {
		minB = math.Min(minB, float64(c.Bandwidth))
	}
	loF = minB * loI
	for _, p := range m.Points {
		if f := float64(p.Flops); f > 0 {
			loF = math.Min(loF, f/4)
		}
	}
	hiF = topF * 2
	if loF <= 0 || math.IsInf(loF, 0) {
		loF = 1e9
	}
	if hiF <= loF {
		hiF = loF * 1e3
	}
	return loF, hiF
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
