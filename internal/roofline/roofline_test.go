package roofline

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rooftune/internal/units"
)

func exampleModel() *Model {
	// The paper's Fig. 1 shape: four memory subsystems, two compute
	// configurations (Gold 6148-like numbers).
	m := &Model{Title: "example"}
	m.AddMemory("DRAM S1", units.GBps(74.16))
	m.AddMemory("L3 S1", units.GBps(547.11))
	m.AddMemory("DRAM S2", units.GBps(139.8))
	m.AddMemory("L3 S2", units.GBps(1000.1))
	m.AddCompute("DGEMM S1", units.GFLOPS(1422.24))
	m.AddCompute("DGEMM S2", units.GFLOPS(2407.33))
	m.AddPoint("TRIAD", units.TriadIntensity, units.GFLOPS(139.8/12))
	return m
}

func TestAttainableEq2(t *testing.T) {
	// Eq. 2: F(I) = min(B*I, Fp).
	b := units.GBps(100)
	fp := units.GFLOPS(1000)
	if got := Attainable(b, fp, 1); got.GFLOPS() != 100 {
		t.Fatalf("memory-bound side: %v", got)
	}
	if got := Attainable(b, fp, 100); got.GFLOPS() != 1000 {
		t.Fatalf("compute-bound side: %v", got)
	}
	// At the ridge the two sides meet.
	ridge := Ridge(b, fp)
	if math.Abs(float64(ridge)-10) > 1e-12 {
		t.Fatalf("ridge = %v, want 10 FLOP/B", ridge)
	}
	if got := Attainable(b, fp, ridge); math.Abs(got.GFLOPS()-1000) > 1e-9 {
		t.Fatalf("at ridge: %v", got)
	}
}

func TestAttainableProperties(t *testing.T) {
	f := func(bRaw, fpRaw, iRaw uint16) bool {
		b := units.Bandwidth(float64(bRaw) + 1)
		fp := units.Flops(float64(fpRaw) + 1)
		i := units.Intensity(float64(iRaw)/100 + 0.001)
		got := Attainable(b, fp, i)
		// Never exceeds either bound, always positive.
		return float64(got) <= float64(fp)+1e-9 &&
			float64(got) <= float64(b)*float64(i)+1e-9 &&
			got > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoundClassification(t *testing.T) {
	b := units.GBps(100)
	fp := units.GFLOPS(1000)
	if Bound(b, fp, 1) != "memory-bound" {
		t.Fatal("I=1 < ridge=10 must be memory-bound")
	}
	if Bound(b, fp, 100) != "compute-bound" {
		t.Fatal("I=100 > ridge must be compute-bound")
	}
	// TRIAD (1/12 FLOP/B) is memory-bound on every paper system.
	if Bound(units.GBps(76.8), units.GFLOPS(422.4), units.TriadIntensity) != "memory-bound" {
		t.Fatal("TRIAD must be memory-bound")
	}
}

func TestModelValidate(t *testing.T) {
	m := exampleModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Model{}).Validate(); err == nil {
		t.Fatal("empty model must not validate")
	}
	bad := exampleModel()
	bad.Memory[0].Bandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth must not validate")
	}
	bad2 := exampleModel()
	bad2.Compute[0].Flops = -1
	if err := bad2.Validate(); err == nil {
		t.Fatal("negative compute must not validate")
	}
}

func TestAttainableMax(t *testing.T) {
	m := exampleModel()
	// Far right: the tallest compute roof.
	if got := m.AttainableMax(1e6).GFLOPS(); math.Abs(got-2407.33) > 1e-9 {
		t.Fatalf("AttainableMax high-I = %v", got)
	}
	// Far left: the best bandwidth times I.
	if got := m.AttainableMax(0.01).GFLOPS(); math.Abs(got-1000.1*0.01) > 1e-9 {
		t.Fatalf("AttainableMax low-I = %v", got)
	}
}

func TestSortedCeilings(t *testing.T) {
	m := exampleModel()
	mem, comp := m.SortedCeilings()
	for i := 1; i < len(mem); i++ {
		if mem[i].Bandwidth > mem[i-1].Bandwidth {
			t.Fatal("memory ceilings not descending")
		}
	}
	for i := 1; i < len(comp); i++ {
		if comp[i].Flops > comp[i-1].Flops {
			t.Fatal("compute ceilings not descending")
		}
	}
	// Original model untouched.
	if m.Memory[0].Name != "DRAM S1" {
		t.Fatal("SortedCeilings must not mutate the model")
	}
}

func TestRenderASCII(t *testing.T) {
	out := exampleModel().RenderASCII(72, 18)
	for _, frag := range []string{"example", "GFLOP/s", "a:", "DRAM", "TRIAD"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("ASCII render missing %q:\n%s", frag, out)
		}
	}
	// The diagonal marker of the fastest memory roof and the flat roof
	// marker must both appear in the plot body.
	if !strings.Contains(out, "aaa") || !strings.Contains(out, "---") {
		t.Fatalf("plot body lacks roofline strokes:\n%s", out)
	}
	// Tiny dimensions are clamped, not broken.
	if small := exampleModel().RenderASCII(1, 1); len(small) == 0 {
		t.Fatal("clamped render empty")
	}
}

func TestRenderSVG(t *testing.T) {
	svg := exampleModel().RenderSVG(640, 480)
	for _, frag := range []string{"<svg", "</svg>", "polyline", "Operational Intensity", "DRAM S1"} {
		if !strings.Contains(svg, frag) {
			t.Fatalf("SVG missing %q", frag)
		}
	}
}

func TestSVGEscaping(t *testing.T) {
	m := exampleModel()
	m.Title = `bad <&"> title`
	svg := m.RenderSVG(400, 300)
	if strings.Contains(svg, `bad <&"> title`) {
		t.Fatal("unescaped XML in SVG")
	}
	if !strings.Contains(svg, "bad &lt;&amp;&quot;&gt; title") {
		t.Fatal("expected escaped title")
	}
}

func TestMarshalJSON(t *testing.T) {
	b, err := exampleModel().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Title  string `json:"title"`
		Memory []struct {
			Name string  `json:"name"`
			GBps float64 `json:"gbps"`
		} `json:"memory_ceilings"`
		Compute []struct {
			Name   string  `json:"name"`
			GFLOPS float64 `json:"gflops"`
		} `json:"compute_ceilings"`
		Points []struct {
			Name      string  `json:"name"`
			Intensity float64 `json:"flop_per_byte"`
		} `json:"points"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Title != "example" || len(decoded.Memory) != 4 || len(decoded.Compute) != 2 {
		t.Fatalf("decoded: %+v", decoded)
	}
	if math.Abs(decoded.Memory[0].GBps-74.16) > 1e-9 {
		t.Fatalf("memory[0] = %v", decoded.Memory[0])
	}
	if math.Abs(decoded.Points[0].Intensity-1.0/12) > 1e-9 {
		t.Fatalf("TRIAD point intensity = %v", decoded.Points[0].Intensity)
	}
}

func TestRidgeZeroBandwidth(t *testing.T) {
	if !math.IsInf(float64(Ridge(0, 1000)), 1) {
		t.Fatal("ridge with zero bandwidth must be +Inf")
	}
}

func TestRenderGnuplot(t *testing.T) {
	script := exampleModel().RenderGnuplot()
	for _, frag := range []string{"set logscale xy", "plot ", "min(", "DRAM S1", "set label 1 \"TRIAD\""} {
		if !strings.Contains(script, frag) {
			t.Fatalf("gnuplot script missing %q:\n%s", frag, script)
		}
	}
}

func TestModelSummary(t *testing.T) {
	out := exampleModel().Summary()
	for _, frag := range []string{"compute ceiling", "memory ceiling", "ridge", "TRIAD", "memory-bound"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("summary missing %q:\n%s", frag, out)
		}
	}
	// TRIAD at 1/12 FLOP/B is memory-bound against the best pair.
	if strings.Contains(out, "TRIAD") && !strings.Contains(out, "memory-bound") {
		t.Fatal("TRIAD must classify memory-bound")
	}
}

// TestPerLevelCeilingsRender pins the cache-aware roofline rendering: a
// model with one bandwidth ceiling per residency level draws every level
// as its own slanted roof in the ASCII, gnuplot and SVG output, in
// decreasing-bandwidth legend order.
func TestPerLevelCeilingsRender(t *testing.T) {
	m := &Model{Title: "per-level"}
	m.AddMemory("DRAM, 1 socket(s)", units.GBps(74))
	m.AddMemory("L1, 1 socket(s)", units.GBps(1540))
	m.AddMemory("L3, 1 socket(s)", units.GBps(547))
	m.AddMemory("L2, 1 socket(s)", units.GBps(878))
	m.AddCompute("DGEMM peak, 1 socket(s)", units.GFLOPS(1422))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	ascii := m.RenderASCII(76, 20)
	order := []string{"L1, 1 socket(s)", "L2, 1 socket(s)", "L3, 1 socket(s)", "DRAM, 1 socket(s)"}
	last := -1
	for _, name := range order {
		at := strings.Index(ascii, name)
		if at < 0 {
			t.Fatalf("ASCII legend missing %q:\n%s", name, ascii)
		}
		if at < last {
			t.Fatalf("ASCII legend not in decreasing-bandwidth order:\n%s", ascii)
		}
		last = at
	}

	gnuplot := m.RenderGnuplot()
	if got := strings.Count(gnuplot, "min("); got < len(order)+1 { // one per ceiling + the helper definition
		t.Fatalf("gnuplot plots %d min() curves, want one per memory ceiling:\n%s", got-1, gnuplot)
	}
	for _, name := range order {
		if !strings.Contains(gnuplot, fmt.Sprintf("%q", name)) {
			t.Fatalf("gnuplot missing ceiling %q:\n%s", name, gnuplot)
		}
	}

	svg := m.RenderSVG(800, 560)
	for _, name := range order {
		if !strings.Contains(svg, name) {
			t.Fatalf("SVG missing ceiling %q", name)
		}
	}
}
