package stream

import (
	"testing"

	"rooftune/internal/parallel"
)

func TestKernelMetadata(t *testing.T) {
	// TRIAD's 24 bytes / 2 FLOPs per element give the paper's
	// operational intensity of 1/12 FLOP/byte.
	if Triad.BytesPerElement() != 24 || Triad.FlopsPerElement() != 2 {
		t.Fatalf("TRIAD work: %d B, %d FLOP", Triad.BytesPerElement(), Triad.FlopsPerElement())
	}
	if Copy.BytesPerElement() != 16 || Copy.FlopsPerElement() != 0 {
		t.Fatal("Copy work")
	}
	if Scale.BytesPerElement() != 16 || Scale.FlopsPerElement() != 1 {
		t.Fatal("Scale work")
	}
	if Add.BytesPerElement() != 24 || Add.FlopsPerElement() != 1 {
		t.Fatal("Add work")
	}
	for k, name := range map[Kernel]string{Copy: "Copy", Scale: "Scale", Add: "Add", Triad: "Triad"} {
		if k.String() != name {
			t.Errorf("kernel name %v", k)
		}
	}
}

func TestTriadSemantics(t *testing.T) {
	v := NewVectors(1000)
	v.Run(Triad, 4)
	// a = b + gamma*c = 2 + 3*0 = 2 everywhere.
	if err := TriadCheck(v, 1); err != nil {
		t.Fatal(err)
	}
	v.Run(Triad, 4)
	if err := TriadCheck(v, 2); err != nil {
		t.Fatal(err)
	}
}

func TestAllKernelsSemantics(t *testing.T) {
	v := NewVectors(257) // odd size exercises remainder partitioning
	v.Run(Copy, 3)       // c = a = 1
	for i, x := range v.C {
		if x != 1 {
			t.Fatalf("Copy: c[%d] = %v", i, x)
		}
	}
	v.Run(Scale, 3) // b = 3*c = 3
	for i, x := range v.B {
		if x != 3 {
			t.Fatalf("Scale: b[%d] = %v", i, x)
		}
	}
	v.Run(Add, 3) // c = a + b = 4
	for i, x := range v.C {
		if x != 4 {
			t.Fatalf("Add: c[%d] = %v", i, x)
		}
	}
	v.Run(Triad, 3) // a = b + 3c = 15
	for i, x := range v.A {
		if x != 15 {
			t.Fatalf("Triad: a[%d] = %v", i, x)
		}
	}
}

func TestSerialParallelEquivalence(t *testing.T) {
	v1 := NewVectors(10007)
	v8 := NewVectors(10007)
	for _, k := range []Kernel{Copy, Scale, Add, Triad} {
		v1.Run(k, 1)
		v8.Run(k, 8)
	}
	for i := range v1.A {
		if v1.A[i] != v8.A[i] || v1.B[i] != v8.B[i] || v1.C[i] != v8.C[i] {
			t.Fatalf("parallel result differs at %d", i)
		}
	}
}

func TestRunPoolMatchesRun(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	va := NewVectors(5001)
	vb := NewVectors(5001)
	for i := 0; i < 3; i++ {
		va.Run(Triad, 4)
		vb.RunPool(Triad, pool)
	}
	for i := range va.A {
		if va.A[i] != vb.A[i] {
			t.Fatalf("pool result differs at %d", i)
		}
	}
}

func TestTriadCheckDetectsCorruption(t *testing.T) {
	v := NewVectors(100)
	v.Run(Triad, 2)
	v.A[42] = 0 // corrupt
	if err := TriadCheck(v, 1); err == nil {
		t.Fatal("TriadCheck must detect corruption")
	}
}

func TestUnknownKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kernel must panic")
		}
	}()
	NewVectors(10).Run(Kernel(42), 1)
}

func TestRunPoolClosedPoolPanics(t *testing.T) {
	pool := parallel.NewPool(2)
	pool.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("RunPool on a closed pool must panic, not skip or re-time the work")
		}
	}()
	NewVectors(100).RunPool(Triad, pool)
}
