// Package stream is the native memory substrate: pure-Go implementations
// of the four STREAM kernels (McCalpin), parallelised with a static
// schedule like the paper's OpenMP TRIAD (§III-B). TRIAD is the kernel the
// paper tunes; Copy, Scale and Add are provided for completeness and used
// by the extended L1/L2 sweep.
package stream

import (
	"fmt"

	"rooftune/internal/parallel"
)

// Kernel identifies one of the STREAM operations.
type Kernel int

// The four STREAM kernels.
const (
	Copy  Kernel = iota // c[i] = a[i]
	Scale               // b[i] = gamma*c[i]
	Add                 // c[i] = a[i] + b[i]
	Triad               // a[i] = b[i] + gamma*c[i]
)

// String returns the kernel's STREAM name.
func (k Kernel) String() string {
	switch k {
	case Copy:
		return "Copy"
	case Scale:
		return "Scale"
	case Add:
		return "Add"
	case Triad:
		return "Triad"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// BytesPerElement returns the memory traffic per vector element of the
// kernel, counting one load or store per array touched (double precision):
// Copy/Scale touch 2 arrays, Add/Triad touch 3 — TRIAD's 24 bytes per
// element give its 1/12 FLOP/byte intensity.
func (k Kernel) BytesPerElement() int {
	switch k {
	case Copy, Scale:
		return 16
	default:
		return 24
	}
}

// FlopsPerElement returns the floating-point operations per element:
// 0 for Copy, 1 for Scale and Add, 2 for Triad (multiply + add).
func (k Kernel) FlopsPerElement() int {
	switch k {
	case Copy:
		return 0
	case Scale, Add:
		return 1
	default:
		return 2
	}
}

// Vectors holds the three STREAM arrays. Allocate once per benchmark
// invocation and reuse across iterations, as STREAM does.
type Vectors struct {
	A, B, C []float64
	Gamma   float64
}

// NewVectors allocates three n-element vectors initialised to the STREAM
// convention (a=1, b=2, c=0) with gamma=3.
func NewVectors(n int) *Vectors {
	v := &Vectors{
		A:     make([]float64, n),
		B:     make([]float64, n),
		C:     make([]float64, n),
		Gamma: 3.0,
	}
	for i := range v.A {
		v.A[i] = 1
		v.B[i] = 2
	}
	return v
}

// N returns the vector length.
func (v *Vectors) N() int { return len(v.A) }

// Run executes one pass of the kernel over the vectors using `threads`
// parallel workers with a static partition (0 means DefaultThreads).
func (v *Vectors) Run(k Kernel, threads int) {
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	n := v.N()
	switch k {
	case Copy:
		parallel.For(n, threads, func(lo, hi int) {
			copy(v.C[lo:hi], v.A[lo:hi])
		})
	case Scale:
		parallel.For(n, threads, func(lo, hi int) {
			g := v.Gamma
			b, c := v.B[lo:hi], v.C[lo:hi]
			for i := range b {
				b[i] = g * c[i]
			}
		})
	case Add:
		parallel.For(n, threads, func(lo, hi int) {
			a, b, c := v.A[lo:hi], v.B[lo:hi], v.C[lo:hi]
			for i := range c {
				c[i] = a[i] + b[i]
			}
		})
	case Triad:
		parallel.For(n, threads, func(lo, hi int) {
			g := v.Gamma
			a, b, c := v.A[lo:hi], v.B[lo:hi], v.C[lo:hi]
			for i := range a {
				a[i] = b[i] + g*c[i]
			}
		})
	default:
		panic(fmt.Sprintf("stream: unknown kernel %v", k))
	}
}

// RunPool is Run using a persistent worker pool, avoiding goroutine
// startup in the measured loop. A closed pool panics: silently skipping
// the traversal would record a bandwidth sample over work that never
// happened, and silently re-running it with fresh goroutines would time
// their startup — a measurement site must fail loudly instead.
func (v *Vectors) RunPool(k Kernel, pool *parallel.Pool) {
	n := v.N()
	ran := false
	switch k {
	case Copy:
		ran = pool.Run(n, func(lo, hi int) { copy(v.C[lo:hi], v.A[lo:hi]) })
	case Scale:
		ran = pool.Run(n, func(lo, hi int) {
			g := v.Gamma
			b, c := v.B[lo:hi], v.C[lo:hi]
			for i := range b {
				b[i] = g * c[i]
			}
		})
	case Add:
		ran = pool.Run(n, func(lo, hi int) {
			a, b, c := v.A[lo:hi], v.B[lo:hi], v.C[lo:hi]
			for i := range c {
				c[i] = a[i] + b[i]
			}
		})
	case Triad:
		ran = pool.Run(n, func(lo, hi int) {
			g := v.Gamma
			a, b, c := v.A[lo:hi], v.B[lo:hi], v.C[lo:hi]
			for i := range a {
				a[i] = b[i] + g*c[i]
			}
		})
	default:
		panic(fmt.Sprintf("stream: unknown kernel %v", k))
	}
	if !ran {
		panic("stream: RunPool on a closed pool")
	}
}

// TriadCheck verifies the TRIAD invariant after `iters` passes starting
// from the NewVectors initial state, returning an error on corruption.
// With a(0)=1, b=2, c=0: after the first pass a = b + 3c = 2 and c never
// changes, so a == 2 for every subsequent pass.
func TriadCheck(v *Vectors, iters int) error {
	if iters < 1 {
		return nil
	}
	want := 2.0
	for i, av := range v.A {
		if av != want {
			return fmt.Errorf("stream: triad check failed at [%d]: got %g want %g", i, av, want)
		}
	}
	return nil
}
