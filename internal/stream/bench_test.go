package stream

import (
	"fmt"
	"testing"

	"rooftune/internal/parallel"
	"rooftune/internal/units"
)

// Micro-benchmarks of the native STREAM substrate across working-set
// sizes spanning cache levels, the curve the native TRIAD sweep walks.

func BenchmarkTriadSizes(b *testing.B) {
	for _, kib := range []int{32, 512, 4096, 65536} {
		elems := kib * 1024 / 24
		b.Run(fmt.Sprintf("%dKiB", kib), func(b *testing.B) {
			v := NewVectors(elems)
			pool := parallel.NewPool(parallel.DefaultThreads())
			defer pool.Close()
			v.RunPool(Triad, pool) // warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.RunPool(Triad, pool)
			}
			b.ReportMetric(units.TriadBytes(elems)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GB/s")
		})
	}
}

func BenchmarkAllKernels(b *testing.B) {
	const elems = 1 << 20
	v := NewVectors(elems)
	pool := parallel.NewPool(parallel.DefaultThreads())
	defer pool.Close()
	for _, k := range []Kernel{Copy, Scale, Add, Triad} {
		b.Run(k.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v.RunPool(k, pool)
			}
			bytes := float64(k.BytesPerElement()) * elems
			b.ReportMetric(bytes*float64(b.N)/b.Elapsed().Seconds()/1e9, "GB/s")
		})
	}
}
