package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rooftune"
	distv1 "rooftune/dist/v1"
	"rooftune/internal/serve/budget"
	"rooftune/internal/serve/campaign"
	"rooftune/internal/serve/metrics"
)

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Name identifies this worker on heartbeats and outcome provenance
	// ("" is allowed but unhelpful in a fleet).
	Name string
	// Parallelism is the host-parallelism capacity divided among
	// concurrently running nodes (<=0: GOMAXPROCS) — the same shared
	// budget discipline the serving tier uses.
	Parallelism int
	// CacheEntries bounds the completed-node cache that makes dispatch
	// idempotent (<=0: 256). Entries are small (one wire outcome each);
	// evicting one only costs a re-measure on replay.
	CacheEntries int
}

// runningNode is one node currently executing: duplicate dispatches of
// the same fingerprint join it instead of re-measuring, and bound
// pushes land on its shared incumbent. out/status are written before
// done is closed and read only after it — the close is the
// happens-before edge, no lock needed.
type runningNode struct {
	bound  *rooftune.SharedBound
	done   chan struct{}
	out    []byte
	status int
}

// Worker executes dist/v1 node specs: it rebuilds the session from the
// wire campaign through the same resolution path the coordinator
// fingerprinted (internal/serve/campaign), verifies the node
// fingerprint, and runs the node under the shared host budget.
// Completion is idempotent: a running fingerprint is joined, a
// completed one is answered from the cache — so requeued, duplicated
// or replayed dispatches (including after a coordinator restart) cost
// no extra measurement.
type Worker struct {
	base    context.Context
	name    string
	budget  *budget.Budget
	maxDone int

	mu      sync.Mutex
	running map[string]*runningNode
	done    map[string][]byte // fingerprint -> completed wire outcome
	order   []string          // done-cache FIFO eviction order

	metrics      *metrics.Set
	nodesRun     atomic.Uint64
	dedupeHits   atomic.Uint64
	boundApplied atomic.Uint64
	nodeSeconds  *metrics.Histogram
}

// NewWorker builds a worker bound to base: cancel base on shutdown and
// in-flight nodes abort between kernel executions.
func NewWorker(base context.Context, cfg WorkerConfig) *Worker {
	if base == nil {
		base = context.Background()
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	w := &Worker{
		base:    base,
		name:    cfg.Name,
		budget:  budget.New(cfg.Parallelism),
		maxDone: cfg.CacheEntries,
		running: make(map[string]*runningNode),
		done:    make(map[string][]byte),
		metrics: metrics.NewSet(),
	}
	w.metrics.CounterFunc("roofdist_worker_nodes_total", "",
		"Node specs measured on this worker (cache hits excluded).",
		w.nodesRun.Load)
	w.metrics.CounterFunc("roofdist_worker_dedupe_hits_total", "",
		"Dispatches answered by joining a running node or the completed-node cache.",
		w.dedupeHits.Load)
	w.metrics.CounterFunc("roofdist_worker_bound_updates_total", "",
		"Incumbent bounds applied to running nodes.",
		w.boundApplied.Load)
	w.metrics.GaugeFunc("roofdist_worker_running", "",
		"Nodes currently executing.",
		func() float64 { return float64(w.runningCount()) })
	w.metrics.GaugeFunc("roofdist_worker_capacity", "",
		"Host-parallelism capacity divided among running nodes.",
		func() float64 { return float64(w.budget.Capacity()) })
	w.nodeSeconds = w.metrics.Histogram("roofdist_worker_node_seconds",
		"Wall time measuring one node spec.",
		[]float64{0.01, 0.05, 0.25, 1, 5, 30, 120})
	return w
}

// Handler mounts the worker's routes: the dist/v1 contract plus the
// standard metrics plane.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(distv1.PathRun, w.handleRun)
	mux.HandleFunc(distv1.PathBound, w.handleBound)
	mux.HandleFunc(distv1.PathHealth, w.handleHealth)
	mux.Handle("/metrics", w.metrics)
	return mux
}

func (w *Worker) runningCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.running)
}

// writeError renders the dist/v1 error envelope.
func writeError(rw http.ResponseWriter, status int, code distv1.ErrorCode, format string, args ...any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(distv1.ErrorEnvelope{
		Error: distv1.Error{Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// respond writes a completed outcome's bytes with the worker's
// provenance headers.
func (w *Worker) respond(rw http.ResponseWriter, status int, fp string, dedupe bool, body []byte) {
	rw.Header().Set("Content-Type", "application/json")
	rw.Header().Set(distv1.WorkerHeader, w.name)
	rw.Header().Set(distv1.NodeHeader, fp)
	if dedupe {
		rw.Header().Set(distv1.DedupeHeader, "hit")
	} else {
		rw.Header().Set(distv1.DedupeHeader, "miss")
	}
	rw.WriteHeader(status)
	_, _ = rw.Write(body)
}

// handleRun executes one node spec (POST /dist/v1/run). The run is
// bounded by the worker's base context, not the request's: a
// coordinator that disconnects (lease requeue, coordinator restart)
// must not waste the measurement — the node finishes and lands in the
// completed cache, so the replay answers instantly.
func (w *Worker) handleRun(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, distv1.CodeBadRequest, "POST only")
		return
	}
	spec, err := distv1.ParseNodeSpec(r.Body)
	if err != nil {
		writeError(rw, http.StatusBadRequest, distv1.CodeBadRequest, "%v", err)
		return
	}

	// Resolve the campaign through the shared resolution path and
	// verify the fingerprint: a mismatch means this worker would
	// measure a different session than the coordinator addressed, and
	// running it would poison the sweep with a wrong-but-plausible
	// outcome.
	camp, err := campaign.Parse(bytes.NewReader(spec.Campaign))
	if err != nil {
		writeError(rw, http.StatusBadRequest, distv1.CodeBadNode, "campaign: %v", err)
		return
	}
	opts, err := campaign.Options(camp)
	if err != nil {
		writeError(rw, http.StatusBadRequest, distv1.CodeBadNode, "campaign: %v", err)
		return
	}
	sess, err := rooftune.New(opts...)
	if err != nil {
		writeError(rw, http.StatusBadRequest, distv1.CodeBadNode, "campaign: %v", err)
		return
	}
	campFP, err := sess.Fingerprint()
	if err != nil {
		writeError(rw, http.StatusBadRequest, distv1.CodeBadNode, "fingerprint: %v", err)
		return
	}
	want := distv1.NodeFingerprint(campFP, spec.NodeID, spec.SeedValue)
	if spec.Fingerprint != want {
		writeError(rw, http.StatusBadRequest, distv1.CodeBadNode,
			"node fingerprint mismatch: spec %s, resolved %s — coordinator and worker resolve this campaign differently",
			spec.Fingerprint, want)
		return
	}

	// Idempotent completion: answer from the cache, join a running
	// node, or claim the fingerprint and measure.
	w.mu.Lock()
	if cached, ok := w.done[want]; ok {
		w.mu.Unlock()
		w.dedupeHits.Add(1)
		w.respond(rw, http.StatusOK, want, true, cached)
		return
	}
	if rn, ok := w.running[want]; ok {
		w.mu.Unlock()
		w.dedupeHits.Add(1)
		select {
		case <-rn.done:
			w.respond(rw, rn.status, want, true, rn.out)
		case <-r.Context().Done():
		case <-w.base.Done():
			writeError(rw, http.StatusServiceUnavailable, distv1.CodeNodeFailed, "worker shutting down")
		}
		return
	}
	rn := &runningNode{bound: rooftune.NewSharedBound(), done: make(chan struct{})}
	w.running[want] = rn
	w.mu.Unlock()

	w.execute(rn, sess, spec, want)
	w.respond(rw, rn.status, want, false, rn.out)
}

// execute measures the claimed node and publishes its terminal state:
// out/status filled, the fingerprint moved from running to the
// completed cache (successes only — failures are transient), done
// closed last so joiners observe a fully-written result.
func (w *Worker) execute(rn *runningNode, sess *rooftune.Session, spec distv1.NodeSpec, fp string) {
	// The host budget divides the machine among concurrently running
	// nodes, exactly like concurrent jobs on the serving tier.
	lease := w.budget.Acquire()
	defer lease.Release()
	runSess := sess
	if share := lease.Share(); share > 0 {
		// Rebuild with the leased share; resolution is deterministic,
		// and host parallelism is excluded from the fingerprint.
		camp, err := campaign.Parse(bytes.NewReader(spec.Campaign))
		if err == nil {
			if opts, err := campaign.Options(camp); err == nil {
				opts = append(opts, rooftune.WithHostParallelism(share))
				if s2, err := rooftune.New(opts...); err == nil {
					runSess = s2
				}
			}
		}
	}
	if spec.SeedValue > 0 {
		rn.bound.Offer(spec.SeedValue)
	}
	start := time.Now()
	out, err := runSess.RunNode(w.base, spec.NodeID, spec.SeedValue, rn.bound)
	w.nodeSeconds.Observe(time.Since(start).Seconds())

	var status int
	var body []byte
	if err != nil {
		status = http.StatusInternalServerError
		env := distv1.ErrorEnvelope{Error: distv1.Error{Code: distv1.CodeNodeFailed, Message: err.Error()}}
		body, _ = json.Marshal(env)
	} else {
		out.Worker = w.name
		out.Fingerprint = fp
		body, err = json.Marshal(out)
		if err != nil {
			status = http.StatusInternalServerError
			env := distv1.ErrorEnvelope{Error: distv1.Error{Code: distv1.CodeNodeFailed, Message: err.Error()}}
			body, _ = json.Marshal(env)
		} else {
			status = http.StatusOK
			w.nodesRun.Add(1)
		}
	}
	rn.out = body
	rn.status = status

	w.mu.Lock()
	delete(w.running, fp)
	if status == http.StatusOK {
		w.done[fp] = body
		w.order = append(w.order, fp)
		for len(w.order) > w.maxDone {
			delete(w.done, w.order[0])
			w.order = w.order[1:]
		}
	}
	w.mu.Unlock()
	close(rn.done)
}

// handleBound applies a pushed incumbent bound (POST /dist/v1/bound) to
// the running node it addresses. Applied=false means the node is not
// running here — already completed, not yet dispatched, or evicted —
// which is never an error: the protocol is monotone and a missed push
// costs pruning opportunity only.
func (w *Worker) handleBound(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(rw, http.StatusMethodNotAllowed, distv1.CodeBadRequest, "POST only")
		return
	}
	upd, err := distv1.ParseBoundUpdate(r.Body)
	if err != nil {
		writeError(rw, http.StatusBadRequest, distv1.CodeBadRequest, "%v", err)
		return
	}
	w.mu.Lock()
	rn, ok := w.running[upd.Fingerprint]
	w.mu.Unlock()
	if ok {
		rn.bound.Offer(upd.Value)
		w.boundApplied.Add(1)
	}
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(distv1.BoundAck{Applied: ok})
}

// handleHealth is the enrollment heartbeat (GET /dist/v1/healthz).
func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(rw, http.StatusMethodNotAllowed, distv1.CodeBadRequest, "GET only")
		return
	}
	hb := distv1.Heartbeat{
		Schema:   distv1.Schema,
		Worker:   w.name,
		Running:  w.runningCount(),
		Capacity: w.budget.Capacity(),
		NodesRun: w.nodesRun.Load(),
	}
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(hb)
}
