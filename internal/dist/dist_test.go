package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rooftune"
	distv1 "rooftune/dist/v1"
	"rooftune/internal/serve/campaign"
	"rooftune/internal/serve/metrics"
	servev1 "rooftune/serve/v1"
)

// chainedCampaign is the acceptance campaign: a chained TRIAD
// residency-level sweep, so the plan graph has seed edges (L2 seeds L3
// seeds DRAM) and the distributed schedule must honor the dependency
// order and seed values exactly to stay byte-identical.
const chainedCampaign = `{
	"system": "Gold 6148",
	"workloads": ["triad"],
	"triadLevels": ["L2", "L3", "DRAM"],
	"chain": true,
	"triadLoBytes": 16384,
	"triadHiBytes": 268435456
}`

// parseCampaign resolves the JSON campaign into (wire form, options).
func parseCampaign(t *testing.T, src string) (servev1.Campaign, []rooftune.Option) {
	t.Helper()
	camp, err := campaign.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	opts, err := campaign.Options(camp)
	if err != nil {
		t.Fatal(err)
	}
	return camp, opts
}

// localRun is the reference: the same campaign run in-process.
func localRun(t *testing.T, src string) *rooftune.Result {
	t.Helper()
	_, opts := parseCampaign(t, src)
	sess, err := rooftune.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// testWorker is one in-process roofworkerd: the real Worker behind an
// httptest server, optionally wrapped in a failure-injection shim.
type testWorker struct {
	w  *Worker
	ts *httptest.Server
}

// startWorker launches a worker; shim, when non-nil, wraps the handler
// (failure injection: kill, delay).
func startWorker(t *testing.T, name string, shim func(http.Handler) http.Handler) *testWorker {
	t.Helper()
	w := NewWorker(context.Background(), WorkerConfig{Name: name, Parallelism: 2})
	h := http.Handler(w.Handler())
	if shim != nil {
		h = shim(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return &testWorker{w: w, ts: ts}
}

// newTestCoordinator builds a coordinator over the given workers with a
// fresh probe view established, short heartbeats and the given lease.
func newTestCoordinator(t *testing.T, lease time.Duration, workers ...*testWorker) *Coordinator {
	t.Helper()
	urls := make([]string, len(workers))
	for i, tw := range workers {
		urls[i] = tw.ts.URL
	}
	c := NewCoordinator(Config{
		Workers:   urls,
		Heartbeat: 100 * time.Millisecond,
		Lease:     lease,
		Metrics:   metrics.NewSet(),
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	c.Start(ctx)
	return c
}

// TestDistByteIdenticalToLocal is the tentpole acceptance: a chained
// multi-node campaign through the coordinator and two real HTTP workers
// produces a Result byte-identical to an in-process Run — same Summary,
// same everything.
func TestDistByteIdenticalToLocal(t *testing.T) {
	w1 := startWorker(t, "w1", nil)
	w2 := startWorker(t, "w2", nil)
	c := newTestCoordinator(t, time.Minute, w1, w2)

	camp, opts := parseCampaign(t, chainedCampaign)
	res, err := c.Run(context.Background(), camp, opts)
	if err != nil {
		t.Fatal(err)
	}
	local := localRun(t, chainedCampaign)
	if res.Summary() != local.Summary() {
		t.Fatalf("distributed summary differs from local:\ndist:\n%s\nlocal:\n%s", res.Summary(), local.Summary())
	}
	if !reflect.DeepEqual(*res, *local) {
		t.Fatalf("distributed Result differs from local:\ndist  %+v\nlocal %+v", *res, *local)
	}
	if st := c.Stats(); st.Dispatched == 0 {
		t.Fatal("nothing dispatched — the run did not go through the workers")
	} else if st.LocalFallback != 0 {
		t.Fatalf("%d local fallbacks with a healthy fleet", st.LocalFallback)
	}
	if w1.w.nodesRun.Load()+w2.w.nodesRun.Load() == 0 {
		t.Fatal("no worker measured a node")
	}
}

// killShim simulates a worker killed mid-sweep: it answers normally
// (heartbeats enroll it) until the first node dispatch arrives, then
// drops that connection and every later one with no coherent response.
type killShim struct {
	next   http.Handler
	killed atomic.Bool
}

func (k *killShim) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.killed.Load() {
		panic(http.ErrAbortHandler)
	}
	if r.URL.Path == distv1.PathRun {
		k.killed.Store(true)
		panic(http.ErrAbortHandler)
	}
	k.next.ServeHTTP(w, r)
}

// TestWorkerKillMidSweepRequeues: a worker dies on its first dispatched
// node (connection aborted, no response). The coordinator marks it
// dead, requeues onto the surviving worker, and the final Result is
// byte-identical to an uninterrupted local run.
func TestWorkerKillMidSweepRequeues(t *testing.T) {
	w1 := startWorker(t, "w1", func(next http.Handler) http.Handler {
		return &killShim{next: next}
	})
	w2 := startWorker(t, "w2", nil)
	c := newTestCoordinator(t, time.Minute, w1, w2)

	camp, opts := parseCampaign(t, chainedCampaign)
	res, err := c.Run(context.Background(), camp, opts)
	if err != nil {
		t.Fatal(err)
	}
	local := localRun(t, chainedCampaign)
	if res.Summary() != local.Summary() {
		t.Fatalf("summary after worker kill differs from local:\ndist:\n%s\nlocal:\n%s", res.Summary(), local.Summary())
	}
	if !reflect.DeepEqual(*res, *local) {
		t.Fatal("Result after worker kill differs from uninterrupted local run")
	}
	st := c.Stats()
	if st.Requeued == 0 {
		t.Fatalf("worker died but nothing was requeued: %+v", st)
	}
	if st.WorkerErrors == 0 {
		t.Fatalf("worker died but no worker error recorded: %+v", st)
	}
	if w1.w.nodesRun.Load() != 0 {
		t.Fatalf("the killed worker measured %d nodes", w1.w.nodesRun.Load())
	}
}

// delayShim holds every run request for d before delegating —
// a healthy-but-slow worker that outlives its leases.
type delayShim struct {
	next http.Handler
	d    time.Duration
}

func (s *delayShim) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == distv1.PathRun {
		time.Sleep(s.d)
	}
	s.next.ServeHTTP(w, r)
}

// TestLeaseExpiryDuplicateCompletionDedupe: a slow worker's lease
// expires, the node is requeued to a fast worker (which wins), and the
// slow worker's late completion is deduped — dropped without touching
// the Result, which stays byte-identical to local.
func TestLeaseExpiryDuplicateCompletionDedupe(t *testing.T) {
	slow := startWorker(t, "slow", func(next http.Handler) http.Handler {
		return &delayShim{next: next, d: 400 * time.Millisecond}
	})
	fast := startWorker(t, "fast", nil)
	c := newTestCoordinator(t, 50*time.Millisecond, slow, fast)

	camp, opts := parseCampaign(t, chainedCampaign)
	res, err := c.Run(context.Background(), camp, opts)
	if err != nil {
		t.Fatal(err)
	}
	local := localRun(t, chainedCampaign)
	if res.Summary() != local.Summary() {
		t.Fatalf("summary with duplicate completions differs from local:\ndist:\n%s\nlocal:\n%s", res.Summary(), local.Summary())
	}
	if !reflect.DeepEqual(*res, *local) {
		t.Fatal("Result with duplicate completions differs from local run")
	}
	st := c.Stats()
	if st.LeaseExpired == 0 {
		t.Fatalf("no lease expired against a %v-delayed worker: %+v", 400*time.Millisecond, st)
	}
	if st.Requeued == 0 {
		t.Fatalf("lease expired but nothing requeued: %+v", st)
	}
	// Give the slow attempts time to land so the dedupe path executes.
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Deduped == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if c.Stats().Deduped == 0 {
		t.Fatalf("slow worker's late completions were never deduped: %+v", c.Stats())
	}
}

// TestCoordinatorRestartInFlightLeases: a coordinator dies (context
// cancelled) while nodes are in flight; a fresh coordinator replays the
// sweep against the same fleet. In-flight nodes are joined and
// completed ones answered from the workers' completion caches — the
// replay is correct and byte-identical to local.
func TestCoordinatorRestartInFlightLeases(t *testing.T) {
	w1 := startWorker(t, "w1", nil)
	w2 := startWorker(t, "w2", nil)

	camp, opts := parseCampaign(t, chainedCampaign)

	// First coordinator: cancelled almost immediately, mid-dispatch.
	c1 := newTestCoordinator(t, time.Minute, w1, w2)
	ctx1, cancel1 := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = c1.Run(ctx1, camp, opts)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel1()
	<-done

	// Second coordinator: same fleet, fresh state. Every node the first
	// coordinator managed to start is either still running (joined) or
	// cached (replayed) on the workers.
	c2 := newTestCoordinator(t, time.Minute, w1, w2)
	res, err := c2.Run(context.Background(), camp, opts)
	if err != nil {
		t.Fatal(err)
	}
	local := localRun(t, chainedCampaign)
	if res.Summary() != local.Summary() {
		t.Fatalf("summary after coordinator restart differs from local:\ndist:\n%s\nlocal:\n%s", res.Summary(), local.Summary())
	}
	if !reflect.DeepEqual(*res, *local) {
		t.Fatal("Result after coordinator restart differs from local run")
	}
	// Idempotency: replaying the whole campaign a second time measures
	// nothing — every node answers from the completion caches.
	before := w1.w.nodesRun.Load() + w2.w.nodesRun.Load()
	c3 := newTestCoordinator(t, time.Minute, w1, w2)
	res2, err := c3.Run(context.Background(), camp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res2, *local) {
		t.Fatal("replayed Result differs from local run")
	}
	if after := w1.w.nodesRun.Load() + w2.w.nodesRun.Load(); after != before {
		t.Fatalf("replay re-measured nodes: %d fresh runs", after-before)
	}
}

// TestLocalFallbackNoWorkers: with the whole fleet dead the coordinator
// degrades to local execution — the sweep completes in-process and the
// Result is still byte-identical to a plain Run.
func TestLocalFallbackNoWorkers(t *testing.T) {
	// A worker that is down from the start: reserve a URL, then close.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	c := NewCoordinator(Config{
		Workers:   []string{dead.URL},
		Heartbeat: 50 * time.Millisecond,
		Lease:     time.Minute,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)

	camp, opts := parseCampaign(t, chainedCampaign)
	res, err := c.Run(context.Background(), camp, opts)
	if err != nil {
		t.Fatal(err)
	}
	local := localRun(t, chainedCampaign)
	if res.Summary() != local.Summary() {
		t.Fatalf("fallback summary differs from local:\ndist:\n%s\nlocal:\n%s", res.Summary(), local.Summary())
	}
	if !reflect.DeepEqual(*res, *local) {
		t.Fatal("fallback Result differs from local run")
	}
	if st := c.Stats(); st.LocalFallback == 0 {
		t.Fatalf("dead fleet but no local fallback recorded: %+v", st)
	}
	if live, _ := c.Workers(); live != 0 {
		t.Fatalf("dead fleet reports %d live workers", live)
	}
}

// TestBoundPushUnknownFingerprint: pushing a bound for a node the
// worker is not running acks Applied=false and is harmless — the
// protocol treats missed pushes as lost pruning opportunity only.
func TestBoundPushUnknownFingerprint(t *testing.T) {
	w := startWorker(t, "w", nil)
	body := strings.NewReader(`{"schema":"` + distv1.Schema + `","fingerprint":"nope","value":42}`)
	resp, err := http.Post(w.ts.URL+distv1.PathBound, "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bound push status %d", resp.StatusCode)
	}
	var ack distv1.BoundAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Applied {
		t.Fatal("bound for unknown fingerprint reported Applied=true")
	}
}

// TestFingerprintMismatchRejected: a spec whose fingerprint does not
// match what the worker resolves is refused — running it would poison
// the sweep with a wrong-but-plausible outcome.
func TestFingerprintMismatchRejected(t *testing.T) {
	w := startWorker(t, "w", nil)
	spec := `{"schema":"` + distv1.Schema + `","campaign":` + chainedCampaign + `,"nodeId":"triad/L2","fingerprint":"bogus"}`
	resp, err := http.Post(w.ts.URL+distv1.PathRun, "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched fingerprint: status %d, want 400", resp.StatusCode)
	}
}
