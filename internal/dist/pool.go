// Package dist is the distributed sweep tier: a coordinator that fans a
// campaign's plan-graph nodes out to remote worker processes over the
// versioned rooftune/dist/v1 contract, and the worker server that
// executes them.
//
// The design premise is that RunPlan already has the right shape for
// distribution — a topological schedule with seed edges and
// per-outcome provenance — so the coordinator does not reimplement it:
// it drives Session.RunDist, which executes the normal plan schedule
// and delegates each ready node to the coordinator's dispatch hook with
// exactly the seed a local run would have applied. A dependent node is
// therefore dispatched only after its dependency's measured winner
// arrived, and the merged Result — winners, warnings, search-cost
// accounting, Summary — is byte-identical to a local RunPlan's.
//
// Robustness is structural rather than best-effort:
//
//   - Workers enroll via heartbeat (Pool); a worker that stops
//     answering is marked dead and receives no new nodes.
//   - Every dispatch carries a lease. A node still unanswered when the
//     lease expires is requeued to another live worker without
//     cancelling the first attempt — the slow worker may yet answer.
//   - Dispatch is idempotent by node fingerprint
//     (distv1.NodeFingerprint): workers cache completions, so a
//     requeued or replayed node re-measures nothing, and duplicate
//     completions dedupe on the coordinator (first answer wins, the
//     rest are counted and dropped).
//   - Incumbent bounds are shared asynchronously mid-sweep using the
//     monotone CAS-max protocol (rooftune.SharedBound), which is
//     order-insensitive — late, duplicate or reordered pushes are
//     harmless by construction.
//   - When no live worker remains, nodes fall back to local execution
//     (rooftune.ErrExecLocal), so a coordinator with a dead fleet
//     degrades to exactly the single-process daemon.
package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	distv1 "rooftune/dist/v1"
)

// workerState is a pool member's health as of the last probe.
type workerState int

const (
	// workerUnknown: never successfully probed yet.
	workerUnknown workerState = iota
	// workerLive: the last health probe answered.
	workerLive
	// workerDead: the last health probe (or a dispatch) failed.
	workerDead
)

// workerRef is one enrolled worker. All fields are guarded by Pool.mu.
type workerRef struct {
	url      string
	name     string // self-reported on the last successful probe
	state    workerState
	inflight int // coordinator-side dispatches outstanding
}

// Pool tracks the worker fleet: a fixed URL set enrolled and
// health-checked via the dist/v1 heartbeat. Dispatch picks the
// least-loaded live worker; a failed probe or dispatch marks the worker
// dead until a later probe revives it.
type Pool struct {
	client    *http.Client
	heartbeat time.Duration

	mu      sync.Mutex
	workers []*workerRef
}

// NewPool builds a pool over the worker URLs. heartbeat is the probe
// interval (<=0: 2s); client is the HTTP client probes and dispatches
// share (nil: http.DefaultClient — the pool relies on per-request
// contexts, not a client-wide timeout, because node runs are
// long-polls).
func NewPool(urls []string, heartbeat time.Duration, client *http.Client) *Pool {
	if heartbeat <= 0 {
		heartbeat = 2 * time.Second
	}
	if client == nil {
		client = http.DefaultClient
	}
	p := &Pool{client: client, heartbeat: heartbeat}
	for _, u := range urls {
		p.workers = append(p.workers, &workerRef{url: u})
	}
	return p
}

// Start launches the heartbeat loop: an immediate probe of every
// worker, then one sweep per interval until ctx is cancelled.
func (p *Pool) Start(ctx context.Context) {
	//rooflint:allow nogoroutine -- the pool's heartbeat prober; bounded by ctx (the daemon's base context) and holds no resources needing a join
	go func() {
		p.CheckNow(ctx)
		t := time.NewTicker(p.heartbeat)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.CheckNow(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()
}

// CheckNow probes every worker once, concurrently, and updates the
// pool's view. It returns after every probe resolved, so callers (the
// daemon at startup, tests) can establish a fresh view synchronously.
func (p *Pool) CheckNow(ctx context.Context) {
	p.mu.Lock()
	urls := make([]string, len(p.workers))
	for i, w := range p.workers {
		urls[i] = w.url
	}
	p.mu.Unlock()
	var wg sync.WaitGroup
	for _, u := range urls {
		wg.Add(1)
		//rooflint:allow nogoroutine -- per-worker health probe; joined by wg.Wait below
		go func(u string) {
			defer wg.Done()
			hb, err := p.probe(ctx, u)
			p.mu.Lock()
			defer p.mu.Unlock()
			for _, w := range p.workers {
				if w.url != u {
					continue
				}
				if err != nil {
					w.state = workerDead
				} else {
					w.state = workerLive
					w.name = hb.Worker
				}
			}
		}(u)
	}
	wg.Wait()
}

// probe fetches one worker's heartbeat under a bounded deadline (the
// heartbeat interval), so a hung worker cannot stall the sweep.
func (p *Pool) probe(ctx context.Context, url string) (distv1.Heartbeat, error) {
	var hb distv1.Heartbeat
	ctx, cancel := context.WithTimeout(ctx, p.heartbeat)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+distv1.PathHealth, nil)
	if err != nil {
		return hb, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return hb, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return hb, fmt.Errorf("dist: worker %s health: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		return hb, fmt.Errorf("dist: worker %s health: %w", url, err)
	}
	return hb, nil
}

// pick claims the least-loaded live worker not in exclude, returning
// its URL and bumping its in-flight count. ok is false when no live
// worker remains — the caller falls back to local execution.
func (p *Pool) pick(exclude map[string]bool) (url string, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *workerRef
	for _, w := range p.workers {
		if w.state != workerLive || exclude[w.url] {
			continue
		}
		if best == nil || w.inflight < best.inflight {
			best = w
		}
	}
	if best == nil {
		return "", false
	}
	best.inflight++
	return best.url, true
}

// release returns a claim taken by pick.
func (p *Pool) release(url string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		if w.url == url && w.inflight > 0 {
			w.inflight--
		}
	}
}

// markDead records a dispatch-observed failure: the worker receives no
// new nodes until a heartbeat revives it.
func (p *Pool) markDead(url string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		if w.url == url {
			w.state = workerDead
		}
	}
}

// size is the enrolled fleet size (live or not) — the upper bound on
// attempts any one node can accumulate, since requeue never revisits a
// tried worker.
func (p *Pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// Live counts workers the pool currently considers healthy.
func (p *Pool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if w.state == workerLive {
			n++
		}
	}
	return n
}

// Dead counts workers the pool currently considers failed (unknown,
// never-probed workers are neither live nor dead).
func (p *Pool) Dead() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if w.state == workerDead {
			n++
		}
	}
	return n
}
