package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"rooftune"
	distv1 "rooftune/dist/v1"
	"rooftune/internal/serve/metrics"
	servev1 "rooftune/serve/v1"
)

// Config configures a Coordinator.
type Config struct {
	// Workers lists the worker base URLs (http://host:port). Empty is
	// allowed — every node then falls back to local execution.
	Workers []string
	// Heartbeat is the worker health-probe interval (<=0: 2s).
	Heartbeat time.Duration
	// Lease bounds how long one dispatch may stay unanswered before the
	// node is requeued to another worker (<=0: 60s). The original
	// attempt is not cancelled: completion is idempotent by node
	// fingerprint and first answer wins.
	Lease time.Duration
	// Client is the HTTP client for probes and dispatches (nil:
	// http.DefaultClient). It must not carry a client-wide Timeout —
	// node runs are long-polls bounded by per-request contexts.
	Client *http.Client
	// Metrics, when set, receives the coordinator's roofdist_* series.
	Metrics *metrics.Set
}

// Stats is a snapshot of the coordinator's dispatch accounting.
type Stats struct {
	// Dispatched counts node attempts sent to workers (requeues count
	// again).
	Dispatched uint64
	// Requeued counts nodes re-dispatched after a worker failure or
	// lease expiry.
	Requeued uint64
	// Deduped counts duplicate node completions dropped because another
	// attempt answered first.
	Deduped uint64
	// LeaseExpired counts lease timers that fired on unanswered
	// dispatches.
	LeaseExpired uint64
	// LocalFallback counts nodes executed in-process because no live
	// worker remained.
	LocalFallback uint64
	// BoundPushes counts incumbent-bound updates pushed to workers.
	BoundPushes uint64
	// WorkerErrors counts failed dispatch attempts (connection errors
	// and node-failed responses).
	WorkerErrors uint64
}

// Coordinator fans a campaign's plan-graph nodes out to the worker
// fleet. It owns no scheduling logic of its own: Run drives
// Session.RunDist, which executes the normal topological plan schedule
// and calls back into the coordinator once per ready node; the
// coordinator's job is purely transport and robustness — worker
// selection, leases, requeue, dedupe and the local fallback.
type Coordinator struct {
	pool   *Pool
	lease  time.Duration
	client *http.Client

	roundtrip *metrics.Histogram

	dispatched    atomic.Uint64
	requeued      atomic.Uint64
	deduped       atomic.Uint64
	leaseExpired  atomic.Uint64
	localFallback atomic.Uint64
	boundPushes   atomic.Uint64
	workerErrors  atomic.Uint64
}

// NewCoordinator builds a coordinator over the configured fleet and, if
// cfg.Metrics is set, registers its series. Call Start to begin health
// probing.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.Lease <= 0 {
		cfg.Lease = 60 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	c := &Coordinator{
		pool:   NewPool(cfg.Workers, cfg.Heartbeat, client),
		lease:  cfg.Lease,
		client: client,
	}
	if cfg.Metrics != nil {
		c.register(cfg.Metrics)
	}
	return c
}

// Start launches the fleet's heartbeat loop and blocks for one initial
// probe sweep, so the first dispatch after Start sees a fresh view.
func (c *Coordinator) Start(ctx context.Context) {
	c.pool.CheckNow(ctx)
	c.pool.Start(ctx)
}

// register attaches the coordinator's series to the daemon's metric
// set.
func (c *Coordinator) register(m *metrics.Set) {
	m.GaugeFunc("roofdist_workers", `state="live"`,
		"Workers by health state as of the last probe.",
		func() float64 { return float64(c.pool.Live()) })
	m.GaugeFunc("roofdist_workers", `state="dead"`, "",
		func() float64 { return float64(c.pool.Dead()) })
	m.CounterFunc("roofdist_nodes_dispatched_total", "",
		"Node attempts sent to workers (requeues count again).",
		c.dispatched.Load)
	m.CounterFunc("roofdist_nodes_requeued_total", "",
		"Nodes re-dispatched after a worker failure or lease expiry.",
		c.requeued.Load)
	m.CounterFunc("roofdist_nodes_deduped_total", "",
		"Duplicate node completions dropped (first answer won).",
		c.deduped.Load)
	m.CounterFunc("roofdist_lease_expired_total", "",
		"Lease timers fired on unanswered dispatches.",
		c.leaseExpired.Load)
	m.CounterFunc("roofdist_local_fallback_total", "",
		"Nodes executed in-process because no live worker remained.",
		c.localFallback.Load)
	m.CounterFunc("roofdist_bound_pushes_total", "",
		"Incumbent-bound updates pushed to workers.",
		c.boundPushes.Load)
	m.CounterFunc("roofdist_worker_errors_total", "",
		"Failed dispatch attempts (connection errors, node failures).",
		c.workerErrors.Load)
	c.roundtrip = m.Histogram("roofdist_node_roundtrip_seconds",
		"Wall time from node dispatch to first completed answer.",
		[]float64{0.01, 0.05, 0.25, 1, 5, 30, 120})
}

// Stats snapshots the dispatch accounting.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Dispatched:    c.dispatched.Load(),
		Requeued:      c.requeued.Load(),
		Deduped:       c.deduped.Load(),
		LeaseExpired:  c.leaseExpired.Load(),
		LocalFallback: c.localFallback.Load(),
		BoundPushes:   c.boundPushes.Load(),
		WorkerErrors:  c.workerErrors.Load(),
	}
}

// Workers exposes the fleet view (live, dead) for status surfaces.
func (c *Coordinator) Workers() (live, dead int) {
	return c.pool.Live(), c.pool.Dead()
}

// Run executes the campaign's plan graph across the fleet and returns a
// Result byte-identical to what sess.Run would have produced locally.
// opts must be the resolved options the campaign fingerprints to —
// workers rebuild the session from the wire campaign and verify the
// fingerprint matches before running, so the campaign JSON and the
// options must describe the same session.
func (c *Coordinator) Run(ctx context.Context, camp servev1.Campaign, opts []rooftune.Option) (*rooftune.Result, error) {
	sess, err := rooftune.New(opts...)
	if err != nil {
		return nil, err
	}
	campFP, err := sess.Fingerprint()
	if err != nil {
		return nil, err
	}
	campJSON, err := json.Marshal(camp)
	if err != nil {
		return nil, fmt.Errorf("dist: encode campaign: %w", err)
	}
	exec := func(ctx context.Context, nodeID string, seedValue float64) (*distv1.NodeOutcome, error) {
		return c.execNode(ctx, campJSON, campFP, nodeID, seedValue)
	}
	return sess.RunDist(ctx, exec)
}

// attemptResult is one dispatch attempt's terminal report back to the
// node's dispatch loop.
type attemptResult struct {
	url       string
	out       *distv1.NodeOutcome
	err       error
	retryable bool
	dead      bool // the failure indicts the worker, not the node spec
}

// execNode runs one plan node remotely: dispatch to the least-loaded
// live worker, requeue on failure or lease expiry (without cancelling
// the slow attempt — completion is idempotent by fingerprint and first
// answer wins), dedupe late duplicates, and fall back to local
// execution when the fleet is exhausted.
func (c *Coordinator) execNode(ctx context.Context, campJSON []byte, campFP, nodeID string, seedValue float64) (*distv1.NodeOutcome, error) {
	fp := distv1.NodeFingerprint(campFP, nodeID, seedValue)
	spec := distv1.NodeSpec{
		Schema:      distv1.Schema,
		Campaign:    campJSON,
		NodeID:      nodeID,
		SeedValue:   seedValue,
		Fingerprint: fp,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("dist: encode node %s: %w", nodeID, err)
	}

	var won atomic.Bool
	// Buffered to the fleet size — the most attempts one node can ever
	// accumulate — so a late failing attempt never blocks after the
	// dispatch loop stopped listening.
	results := make(chan attemptResult, c.pool.size())
	tried := make(map[string]bool)
	start := time.Now()

	// launch claims the next untried live worker and starts an attempt;
	// false means the fleet is exhausted for this node.
	launch := func() bool {
		url, ok := c.pool.pick(tried)
		if !ok {
			return false
		}
		tried[url] = true
		c.dispatched.Add(1)
		//rooflint:allow nogoroutine -- one dispatch attempt; delivers its terminal result (or observes ctx.Done) via the results channel, so it cannot outlive the dispatch loop's interest
		go c.attempt(ctx, url, body, fp, &won, results)
		return true
	}

	if !launch() {
		c.localFallback.Add(1)
		return nil, rooftune.ErrExecLocal
	}
	out, err := c.await(ctx, results, launch, seedValue, fp, tried)
	if err != nil {
		return nil, err
	}
	if c.roundtrip != nil {
		c.roundtrip.Observe(time.Since(start).Seconds())
	}
	return out, nil
}

// await is the per-node dispatch loop: it collects attempt results,
// requeues on failure or lease expiry, and returns the first completed
// answer. It allocates nothing per iteration — lease timers are reused
// and requeues reuse the prepared request body.
//
//rooflint:hotpath
func (c *Coordinator) await(ctx context.Context, results chan attemptResult, launch func() bool, seedValue float64, fp string, tried map[string]bool) (*distv1.NodeOutcome, error) {
	outstanding := 1
	timer := time.NewTimer(c.lease)
	defer timer.Stop()
	for {
		select {
		case a := <-results:
			outstanding--
			if a.err == nil {
				return a.out, nil
			}
			c.workerErrors.Add(1)
			if a.dead {
				c.pool.markDead(a.url)
			}
			if !a.retryable {
				return nil, a.err
			}
			if launch() {
				outstanding++
				c.requeued.Add(1)
				continue
			}
			if outstanding == 0 {
				// Fleet exhausted and nothing still in flight: run the
				// node locally rather than fail the sweep.
				c.localFallback.Add(1)
				return nil, rooftune.ErrExecLocal
			}
		case <-timer.C:
			c.leaseExpired.Add(1)
			if launch() {
				outstanding++
				c.requeued.Add(1)
				// Give the fresh attempt the seed incumbent the slow
				// ones already have — monotone, so a no-op there — to
				// keep every attempt's pruning view converged.
				if seedValue > 0 {
					c.pushBound(ctx, fp, seedValue, tried)
				}
			}
			timer.Reset(c.lease)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// attempt runs one node dispatch against one worker and reports the
// terminal result. Late successful completions (another attempt already
// won) are counted as deduped and dropped without a report — the loop
// stopped listening the moment the winner arrived.
func (c *Coordinator) attempt(ctx context.Context, url string, body []byte, fp string, won *atomic.Bool, results chan<- attemptResult) {
	defer c.pool.release(url)
	out, retryable, dead, err := c.postNode(ctx, url, body)
	if err == nil && !won.CompareAndSwap(false, true) {
		c.deduped.Add(1)
		return
	}
	select {
	case results <- attemptResult{url: url, out: out, err: err, retryable: retryable, dead: dead}:
	case <-ctx.Done():
	}
}

// postNode performs the dist/v1 run request. retryable reports whether
// another worker might succeed where this one failed; dead reports
// whether the failure indicts the worker itself (connection-level
// errors) rather than the node.
func (c *Coordinator) postNode(ctx context.Context, url string, body []byte) (out *distv1.NodeOutcome, retryable, dead bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+distv1.PathRun, bytes.NewReader(body))
	if err != nil {
		return nil, false, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		// Connection-level failure: the worker is unreachable or died
		// mid-request. Indict the worker and retry elsewhere.
		return nil, true, true, fmt.Errorf("dist: worker %s: %w", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, true, true, fmt.Errorf("dist: worker %s: read response: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		var env distv1.ErrorEnvelope
		msg := string(data)
		if jerr := json.Unmarshal(data, &env); jerr == nil && env.Error.Message != "" {
			msg = env.Error.Message
		}
		err := fmt.Errorf("dist: worker %s: HTTP %d: %s", url, resp.StatusCode, msg)
		// 4xx means the worker understood us and rejected the spec —
		// another worker would reject it identically, so fail the node.
		// 5xx is a worker-side execution failure worth retrying
		// elsewhere, but the worker answered coherently: not dead.
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, false, false, err
		}
		return nil, true, false, err
	}
	var no distv1.NodeOutcome
	if err := json.Unmarshal(data, &no); err != nil {
		return nil, true, true, fmt.Errorf("dist: worker %s: decode outcome: %w", url, err)
	}
	if no.Schema != distv1.Schema {
		return nil, false, false, fmt.Errorf("dist: worker %s: outcome schema %q, want %q", url, no.Schema, distv1.Schema)
	}
	return &no, false, false, nil
}

// pushBound broadcasts an incumbent bound to every worker this node was
// dispatched to. Fire-and-forget: the bound protocol is monotone, so a
// lost push costs only pruning opportunity, never correctness.
func (c *Coordinator) pushBound(ctx context.Context, fp string, value float64, tried map[string]bool) {
	upd := distv1.BoundUpdate{Schema: distv1.Schema, Fingerprint: fp, Value: value}
	body, err := json.Marshal(upd)
	if err != nil {
		return
	}
	for url := range tried {
		c.boundPushes.Add(1)
		//rooflint:allow nogoroutine -- fire-and-forget monotone bound push, bounded by its own short deadline; losing it affects pruning speed only, never the result
		go func(url string) {
			pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodPost, url+distv1.PathBound, bytes.NewReader(body))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := c.client.Do(req)
			if err != nil {
				return
			}
			resp.Body.Close()
		}(url)
	}
}
