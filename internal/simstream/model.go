// Package simstream models STREAM TRIAD bandwidth on the paper's systems:
// which memory subsystem a working set resides in (L1/L2/L3/DRAM), how
// affinity and socket count change the available channels, and the
// measurement noise of a bandwidth benchmark. It is the memory-side
// counterpart of simblas and the substitute for the Xeon nodes' memory
// hierarchies.
//
// Calibration targets are Table VI of the paper. Two published behaviours
// drive the model's shape:
//
//   - measured DRAM bandwidth *exceeds* the theoretical peak by 5-16%,
//     which the authors attribute to "noise from the L3 cache": part of
//     the working set is still L3-resident. We model that directly with a
//     harmonic blend between DRAM and L3 service rates weighted by an
//     L3 hit fraction h = hitC * L3/W, and solve hitC per system so the
//     DRAM-region maximum equals the published number.
//   - L3 bandwidth peaks for working sets comfortably inside the cache
//     and collapses toward DRAM speed as W approaches capacity.
package simstream

import (
	"fmt"
	"math"
	"time"

	"rooftune/internal/hw"
	"rooftune/internal/units"
	"rooftune/internal/vclock"
	"rooftune/internal/xrand"
)

// Params calibrates one (system, sockets) bandwidth curve.
type Params struct {
	DRAM units.Bandwidth // published DRAM-region peak (Table VI)
	L3   units.Bandwidth // published L3-region peak (Table VI)
	// L2 and L1 peaks for the future-work sweep (§VII); derived from L3
	// when not set explicitly.
	L2, L1 units.Bandwidth

	// Noise model.
	IterSigma, InvSigma   float64
	SpikeProb, SpikeScale float64
}

// Model is a calibrated TRIAD bandwidth model for one system.
type Model struct {
	Sys    hw.System
	params map[int]Params
	hitC   map[int]float64 // solved L3-hit constant per socket count

	// MinMeasuredPass, when positive, batches kernel passes inside each
	// measured step until the timed region lasts at least this long — the
	// standard benchmarking technique for working sets whose single pass
	// is shorter than the timer's resolution. A batched step pays the
	// parallel-region overhead once and moves passes x 24 x N bytes, so
	// L1/L2-resident sweeps recover their plateau bandwidth instead of
	// the microsecond-quantisation artifact. Zero (the default) keeps the
	// paper's one-pass-per-measurement loop bit-identical; the L3/DRAM
	// sweeps never set it.
	MinMeasuredPass time.Duration
}

// DefaultMinMeasuredPass is the timed-region floor the per-level TRIAD
// workload uses for L1/L2 residency sweeps: long enough that microsecond
// quantisation and the parallel-region barrier each distort a measurement
// by well under 3%, short enough to keep virtual sweep cost negligible.
const DefaultMinMeasuredPass = 50 * time.Microsecond

// DRAMRegionFactor is the multiple of aggregate L3 capacity beyond which a
// working set counts as DRAM-resident for reporting purposes; the maximum
// of the blended curve over that region is the model's published DRAM
// number.
const DRAMRegionFactor = 4.0

// L3RegionLow is the multiple of aggregate L2 capacity below which a
// working set is considered L2-resident rather than L3.
const L3RegionLow = 1.5

// NewModel builds the bandwidth model for a system, solving the hit
// constants so the published Table VI numbers are reproduced at the
// DRAM-region boundary.
func NewModel(sys hw.System) *Model {
	m := &Model{Sys: sys, params: map[int]Params{}, hitC: map[int]float64{}}
	calib, ok := streamCalibrations[sys.Name]
	if !ok {
		calib = genericStreamCalibration(sys)
	}
	for s, p := range calib {
		if p.L2 == 0 {
			p.L2 = units.Bandwidth(float64(p.L3) * 1.6)
		}
		if p.L1 == 0 {
			p.L1 = units.Bandwidth(float64(p.L3) * 2.8)
		}
		m.params[s] = p
		m.hitC[s] = m.solveHitC(s, p)
	}
	return m
}

// solveHitC finds c such that the blended bandwidth at the first canonical
// sweep point inside the DRAM region (W >= DRAMRegionFactor * L3) equals
// the published DRAM peak:
//
//	1 / ((1-h)/Bpure + h/BL3) = Bpub,  h = c * L3/W*
//
// where W* is that grid point. Solving at a realizable sweep size makes the
// tuner's reported DRAM maximum land exactly on Table VI.
func (m *Model) solveHitC(sockets int, p Params) float64 {
	bPure := m.pureDRAM(sockets)
	bPub := float64(p.DRAM)
	bL3 := float64(p.L3)
	if bPub <= bPure {
		return 0 // published peak below pure DRAM: no L3 assist needed
	}
	l3 := float64(m.Sys.L3Total(sockets))
	wStar := m.firstDRAMGridPoint(sockets)
	// (1-h)/bPure + h/bL3 = 1/bPub  =>  h = (1/bPure - 1/bPub) / (1/bPure - 1/bL3)
	h := (1/bPure - 1/bPub) / (1/bPure - 1/bL3)
	if h < 0 {
		h = 0
	}
	if h > 0.9 {
		h = 0.9
	}
	return h * wStar / l3
}

// firstDRAMGridPoint returns the smallest canonical sweep working-set size
// that counts as DRAM-resident for this socket count.
func (m *Model) firstDRAMGridPoint(sockets int) float64 {
	l3 := float64(m.Sys.L3Total(sockets))
	for _, w := range units.CanonicalTriadGrid() {
		if float64(w) >= DRAMRegionFactor*l3 {
			return float64(w)
		}
	}
	return DRAMRegionFactor * l3
}

// pureDRAM is the asymptotic DRAM bandwidth for enormous working sets:
// slightly below theoretical (protocol overhead).
func (m *Model) pureDRAM(sockets int) float64 {
	return float64(m.Sys.TheoreticalBandwidth(sockets)) * 0.97
}

// ParamsFor returns the calibration for a socket count.
func (m *Model) ParamsFor(sockets int) Params {
	if sockets < 1 {
		sockets = 1
	}
	if sockets > m.Sys.Sockets {
		sockets = m.Sys.Sockets
	}
	if p, ok := m.params[sockets]; ok {
		return p
	}
	for s := sockets; s >= 1; s-- {
		if p, ok := m.params[s]; ok {
			return p
		}
	}
	panic(fmt.Sprintf("simstream: no calibration for %s", m.Sys.Name))
}

// effectiveSockets returns how many sockets' memory channels serve the
// benchmark: spread affinity engages every requested socket; close packs
// threads and only spills with more than one socket requested when the
// thread count exceeds one socket's cores — the paper always pairs close
// with single-socket runs, so close on s>1 models partially remote access.
func (m *Model) effectiveSockets(aff hw.Affinity, sockets int) float64 {
	if sockets < 1 {
		sockets = 1
	}
	if sockets > m.Sys.Sockets {
		sockets = m.Sys.Sockets
	}
	if sockets == 1 {
		return 1
	}
	if aff == hw.AffinitySpread {
		return float64(sockets)
	}
	// close across sockets: remote accesses throttle scaling (~80%).
	return 1 + 0.8*float64(sockets-1)
}

// SteadyBandwidth returns the deterministic steady-state TRIAD bandwidth
// for a working set of `elems` vector elements (working set = 24*elems
// bytes) under the given affinity and socket count.
func (m *Model) SteadyBandwidth(elems int, aff hw.Affinity, sockets int) units.Bandwidth {
	if elems <= 0 {
		return 0
	}
	return m.SteadyBandwidthBytes(units.TriadBytes(elems), aff, sockets)
}

// SteadyBandwidthBytes is SteadyBandwidth for an arbitrary working set of
// w bytes. It is the residency-curve primitive the derived kernel models
// (simspmv, simstencil) build on: any streaming kernel's service rate is
// this curve evaluated at its working set, scaled by the kernel's own
// access-pattern efficiency.
func (m *Model) SteadyBandwidthBytes(w float64, aff hw.Affinity, sockets int) units.Bandwidth {
	if w <= 0 {
		return 0
	}
	p := m.ParamsFor(sockets)
	sEff := m.effectiveSockets(aff, sockets)
	scale := sEff / float64(clampSockets(sockets, m.Sys.Sockets))
	l1 := float64(m.Sys.L1Total(sockets))
	l2 := float64(m.Sys.L2Total(sockets))
	l3 := float64(m.Sys.L3Total(sockets))

	// Service rates of each level for this affinity (channel scaling only
	// affects DRAM; cache bandwidth scales with engaged sockets/cores).
	bL1 := float64(p.L1) * scale
	bL2 := float64(p.L2) * scale
	bL3 := float64(p.L3) * scale
	bDRAM := m.pureDRAM(sockets) * scale

	// Plateau per residency level; the DRAM region blends in residual L3
	// hits, which is what pushes measured DRAM bandwidth past theoretical
	// peak (Table VI's 105-116%). Plateaus are deliberately flat: the
	// tuner's reported per-region maxima must land on the calibrated
	// (published) values, so capacity-edge structure lives entirely in
	// the DRAM blend and the region classification.
	c := m.hitC[clampSockets(sockets, m.Sys.Sockets)]
	var b float64
	switch {
	case w <= l1:
		b = bL1
	case w <= l2:
		b = bL2
	case w <= l3*0.9:
		b = bL3
	default:
		h := math.Min(0.9, c*l3/w)
		b = 1 / ((1-h)/bDRAM + h/bL3)
	}
	return units.Bandwidth(b)
}

func clampSockets(s, max int) int {
	if s < 1 {
		return 1
	}
	if s > max {
		return max
	}
	return s
}

// Invocation simulates one TRIAD benchmark process invocation.
type Invocation struct {
	model   *Model
	elems   int
	aff     hw.Affinity
	sockets int
	rng     *xrand.Rand
	steadyT float64
	params  Params
	iter    int
	// passes is the number of kernel passes batched into each measured
	// step (1 unless the model's MinMeasuredPass demands more).
	passes int
}

// NewInvocation creates the deterministic per-invocation state. Noise
// streams are derived by hashing (seed, configuration, invocation) so
// evaluation order never changes a sample.
func (m *Model) NewInvocation(elems int, aff hw.Affinity, sockets, inv int, seed uint64) *Invocation {
	p := m.ParamsFor(sockets)
	rng := xrand.New(xrand.Mix(seed, 0x7421ad, uint64(elems), uint64(aff),
		uint64(sockets), uint64(inv)))
	steady := units.TriadBytes(elems) / float64(m.SteadyBandwidth(elems, aff, sockets))
	passes := 1
	if min := m.MinMeasuredPass.Seconds(); min > 0 && steady < min {
		// Batch from the noise-free pass time so the count is a property
		// of the configuration, not of this invocation's noise draw.
		passes = int(math.Ceil(min / steady))
		if passes > 1<<24 {
			passes = 1 << 24
		}
	}
	steady *= rng.LogNormal(0, p.InvSigma)
	return &Invocation{model: m, elems: elems, aff: aff, sockets: sockets,
		rng: rng, steadyT: steady, params: p, passes: passes}
}

// SetupTime models process start plus first-touch allocation of the three
// vectors at half DRAM speed.
func (inv *Invocation) SetupTime() time.Duration {
	const startup = 3 * time.Millisecond
	bytes := units.TriadBytes(inv.elems)
	bw := inv.model.pureDRAM(inv.sockets) * 0.5
	return startup + time.Duration(bytes/bw*float64(time.Second))
}

// WarmupTime is one unmeasured pass (it also warms the cache state).
func (inv *Invocation) WarmupTime() time.Duration { return inv.stepRaw() }

// StepTime returns the next measured pass, at gettimeofday resolution.
func (inv *Invocation) StepTime() time.Duration {
	return vclock.QuantizeMicro(inv.stepRaw())
}

func (inv *Invocation) stepRaw() time.Duration {
	// Short warm-up: the first pass faults pages and populates caches;
	// the unmeasured Warmup call absorbs most of it.
	ramp := 1 - 0.08*math.Exp(-float64(inv.iter+1)/1.2)
	inv.iter++
	t := inv.steadyT * float64(inv.passes) / ramp
	t *= inv.rng.LogNormal(0, inv.params.IterSigma)
	if inv.rng.Bernoulli(inv.params.SpikeProb) {
		t *= 1 + inv.rng.Gamma(2, inv.params.SpikeScale/2)
	}
	// Parallel-region barrier with a persistent spinning team. Small
	// enough that the L1 sweep points stay above the L2 plateau, yet it
	// still dominates sub-L1 working sets (which is why the paper only
	// reports L3 and DRAM).
	const overhead = 3e-7
	d := time.Duration((t + overhead) * float64(time.Second))
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

// Work returns the bytes moved by one measured step: one kernel pass, or
// the whole batch when MinMeasuredPass batched several.
func (inv *Invocation) Work() float64 {
	return units.TriadBytes(inv.elems) * float64(inv.passes)
}

// streamCalibrations pins Table VI: DRAM and L3 peaks per system for
// single- and dual-socket configurations.
var streamCalibrations = map[string]map[int]Params{
	"2650v4": {
		1: {DRAM: units.GBps(40.42), L3: units.GBps(256.07),
			IterSigma: 0.012, InvSigma: 0.005, SpikeProb: 0.006, SpikeScale: 0.10},
		2: {DRAM: units.GBps(80.65), L3: units.GBps(452.05),
			IterSigma: 0.014, InvSigma: 0.006, SpikeProb: 0.006, SpikeScale: 0.10},
	},
	"2695v4": {
		1: {DRAM: units.GBps(43.29), L3: units.GBps(371.41),
			IterSigma: 0.020, InvSigma: 0.008, SpikeProb: 0.010, SpikeScale: 0.15},
		2: {DRAM: units.GBps(76.32), L3: units.GBps(661.68),
			IterSigma: 0.022, InvSigma: 0.009, SpikeProb: 0.010, SpikeScale: 0.15},
	},
	"Gold 6132": {
		1: {DRAM: units.GBps(68.32), L3: units.GBps(422.87),
			IterSigma: 0.013, InvSigma: 0.005, SpikeProb: 0.006, SpikeScale: 0.10},
		2: {DRAM: units.GBps(132.18), L3: units.GBps(814.82),
			IterSigma: 0.015, InvSigma: 0.006, SpikeProb: 0.006, SpikeScale: 0.10},
	},
	"Gold 6148": {
		1: {DRAM: units.GBps(74.16), L3: units.GBps(547.11),
			IterSigma: 0.013, InvSigma: 0.005, SpikeProb: 0.006, SpikeScale: 0.10},
		2: {DRAM: units.GBps(139.80), L3: units.GBps(1000.10),
			IterSigma: 0.015, InvSigma: 0.006, SpikeProb: 0.006, SpikeScale: 0.10},
	},
}

// genericStreamCalibration gives uncalibrated systems plausible STREAM
// efficiencies: DRAM at ~108% of theoretical (the L3-assist effect the
// paper measures) and L3 at ~6.5x a socket's DRAM channel bandwidth.
func genericStreamCalibration(sys hw.System) map[int]Params {
	out := make(map[int]Params, sys.Sockets)
	for s := 1; s <= sys.Sockets; s++ {
		bt := float64(sys.TheoreticalBandwidth(s))
		out[s] = Params{
			DRAM:      units.Bandwidth(bt * 1.08),
			L3:        units.Bandwidth(bt * 6.5),
			IterSigma: 0.013, InvSigma: 0.005,
			SpikeProb: 0.006, SpikeScale: 0.10,
		}
	}
	return out
}
