package simstream

import (
	"math"
	"testing"

	"rooftune/internal/hw"
	"rooftune/internal/units"
)

// regionPeak scans the canonical sweep for the best steady bandwidth in a
// residency region, mirroring what the tuner reports.
func regionPeak(m *Model, sockets int, aff hw.Affinity, lo, hi float64) float64 {
	best := 0.0
	for _, w := range units.CanonicalTriadGrid() {
		wf := float64(w)
		if wf < lo || wf > hi {
			continue
		}
		elems := int(w / 24)
		if elems < 1 {
			continue
		}
		if b := float64(m.SteadyBandwidth(elems, aff, sockets)); b > best {
			best = b
		}
	}
	return best / 1e9
}

func TestTableVICalibration(t *testing.T) {
	// The steady curve's region maxima must reproduce the paper's Table
	// VI within 1% for every system and socket configuration.
	want := map[string]struct{ d1, d2, l1, l2 float64 }{
		"2650v4":    {40.42, 80.65, 256.07, 452.05},
		"2695v4":    {43.29, 76.32, 371.41, 661.68},
		"Gold 6132": {68.32, 132.18, 422.87, 814.82},
		"Gold 6148": {74.16, 139.80, 547.11, 1000.10},
	}
	for _, sys := range hw.IdunSystems() {
		m := NewModel(sys)
		w := want[sys.Name]
		check := func(name string, got, wantV float64) {
			if math.Abs(got-wantV) > wantV*0.01 {
				t.Errorf("%s %s = %.2f GB/s, want %.2f", sys.Name, name, got, wantV)
			}
		}
		l3s1 := float64(sys.L3Total(1))
		l3s2 := float64(sys.L3Total(2))
		l2s1 := float64(sys.L2PerCore) * float64(sys.Cores(1))
		l2s2 := float64(sys.L2PerCore) * float64(sys.Cores(2))
		check("DRAM S1", regionPeak(m, 1, hw.AffinityClose, 4*l3s1, math.Inf(1)), w.d1)
		check("DRAM S2", regionPeak(m, 2, hw.AffinitySpread, 4*l3s2, math.Inf(1)), w.d2)
		check("L3 S1", regionPeak(m, 1, hw.AffinityClose, l2s1*1.0001, 0.9*l3s1), w.l1)
		check("L3 S2", regionPeak(m, 2, hw.AffinitySpread, l2s2*1.0001, 0.9*l3s2), w.l2)
	}
}

func TestDRAMExceedsTheoretical(t *testing.T) {
	// The paper's observation: measured DRAM bandwidth beats Eq. 11's
	// peak because of residual L3 hits.
	for _, sys := range hw.IdunSystems() {
		m := NewModel(sys)
		l3 := float64(sys.L3Total(1))
		peak := regionPeak(m, 1, hw.AffinityClose, 4*l3, math.Inf(1))
		if peak <= sys.TheoreticalBandwidth(1).GBps() {
			t.Errorf("%s: DRAM peak %.2f not above theoretical %.2f",
				sys.Name, peak, sys.TheoreticalBandwidth(1).GBps())
		}
	}
}

func TestBandwidthMonotoneDecreasingInDRAMRegion(t *testing.T) {
	// Past the L3-assist knee, bandwidth must decay toward the pure DRAM
	// rate as the working set grows.
	m := NewModel(hw.IdunE52650v4)
	l3 := float64(hw.IdunE52650v4.L3Total(1))
	prev := math.Inf(1)
	for _, w := range units.CanonicalTriadGrid() {
		if float64(w) < 4*l3 {
			continue
		}
		b := float64(m.SteadyBandwidth(int(w/24), hw.AffinityClose, 1))
		if b > prev+1 {
			t.Fatalf("DRAM-region bandwidth rose at W=%v", w)
		}
		prev = b
	}
}

func TestCacheHierarchyOrdering(t *testing.T) {
	// L1 > L2 > L3 > DRAM plateaus, for every system.
	for _, sys := range hw.IdunSystems() {
		m := NewModel(sys)
		cores := float64(sys.Cores(1))
		l1 := float64(sys.L1PerCore) * cores
		l2 := float64(sys.L2PerCore) * cores
		l3 := float64(sys.L3Total(1))
		bL1 := float64(m.SteadyBandwidth(int(l1*0.5/24), hw.AffinityClose, 1))
		bL2 := float64(m.SteadyBandwidth(int((l1+l2)/2/24), hw.AffinityClose, 1))
		bL3 := float64(m.SteadyBandwidth(int((l2*1.05)/24), hw.AffinityClose, 1))
		bDRAM := float64(m.SteadyBandwidth(int(8*l3/24), hw.AffinityClose, 1))
		if !(bL1 > bL2 && bL2 > bL3 && bL3 > bDRAM) {
			t.Errorf("%s: hierarchy not ordered: L1 %.0f L2 %.0f L3 %.0f DRAM %.0f",
				sys.Name, bL1/1e9, bL2/1e9, bL3/1e9, bDRAM/1e9)
		}
	}
}

func TestSpreadDoublesChannels(t *testing.T) {
	// Dual-socket spread runs see roughly twice the single-socket DRAM
	// bandwidth (the paper's §III-B affinity rationale).
	m := NewModel(hw.IdunGold6148)
	l3s2 := float64(hw.IdunGold6148.L3Total(2))
	elems := int(8 * l3s2 / 24)
	b1 := float64(m.SteadyBandwidth(elems, hw.AffinityClose, 1))
	b2 := float64(m.SteadyBandwidth(elems, hw.AffinitySpread, 2))
	ratio := b2 / b1
	if ratio < 1.7 || ratio > 2.2 {
		t.Fatalf("spread S2/S1 DRAM ratio %.2f, want ~2", ratio)
	}
}

func TestCloseOnTwoSocketsPenalised(t *testing.T) {
	// close across sockets = partially remote accesses: better than one
	// socket, worse than spread.
	m := NewModel(hw.IdunE52650v4)
	l3s2 := float64(hw.IdunE52650v4.L3Total(2))
	elems := int(8 * l3s2 / 24)
	spread := float64(m.SteadyBandwidth(elems, hw.AffinitySpread, 2))
	close2 := float64(m.SteadyBandwidth(elems, hw.AffinityClose, 2))
	single := float64(m.SteadyBandwidth(elems, hw.AffinityClose, 1))
	if !(close2 < spread && close2 > single) {
		t.Fatalf("close-on-2 should sit between: single %.1f, close2 %.1f, spread %.1f",
			single/1e9, close2/1e9, spread/1e9)
	}
}

func TestInvocationDeterminismStream(t *testing.T) {
	m := NewModel(hw.IdunGold6132)
	a := m.NewInvocation(1<<20, hw.AffinitySpread, 2, 4, 99)
	b := m.NewInvocation(1<<20, hw.AffinitySpread, 2, 4, 99)
	if a.SetupTime() != b.SetupTime() {
		t.Fatal("setup must replay")
	}
	a.WarmupTime()
	b.WarmupTime()
	for i := 0; i < 30; i++ {
		if a.StepTime() != b.StepTime() {
			t.Fatalf("step %d diverged", i)
		}
	}
}

func TestStepMetricNearSteady(t *testing.T) {
	// Long-run mean of measured bandwidth must approach the steady curve
	// (within noise and the small warm-up deficit).
	m := NewModel(hw.IdunE52650v4)
	elems := 1 << 22 // ~100 MB: DRAM resident
	inv := m.NewInvocation(elems, hw.AffinityClose, 1, 0, 1234)
	inv.WarmupTime()
	var sum float64
	const n = 300
	for i := 0; i < n; i++ {
		dt := inv.StepTime().Seconds()
		sum += units.TriadBytes(elems) / dt
	}
	mean := sum / n
	steady := float64(m.SteadyBandwidth(elems, hw.AffinityClose, 1))
	if math.Abs(mean-steady)/steady > 0.03 {
		t.Fatalf("measured mean %.2f GB/s vs steady %.2f GB/s", mean/1e9, steady/1e9)
	}
}

func TestGenericStreamCalibration(t *testing.T) {
	sys := hw.IdunGold6148
	sys.Name = "uncalibrated-stream"
	m := NewModel(sys)
	p := m.ParamsFor(1)
	bt := float64(sys.TheoreticalBandwidth(1))
	if float64(p.DRAM) < bt || float64(p.DRAM) > bt*1.2 {
		t.Fatalf("generic DRAM calibration %.1f vs theoretical %.1f", float64(p.DRAM)/1e9, bt/1e9)
	}
	if p.L3 <= p.DRAM {
		t.Fatal("generic L3 must exceed DRAM")
	}
}

func TestZeroElementsBandwidth(t *testing.T) {
	m := NewModel(hw.IdunE52650v4)
	if m.SteadyBandwidth(0, hw.AffinityClose, 1) != 0 {
		t.Fatal("zero elements must give zero bandwidth")
	}
}

// measuredBandwidth runs one invocation's measured steps and returns the
// mean effective bandwidth (work/time), the quantity the evaluator sees.
func measuredBandwidth(m *Model, elems, steps int) float64 {
	inv := m.NewInvocation(elems, hw.AffinityClose, 1, 0, 1021)
	inv.WarmupTime()
	var total, work float64
	for i := 0; i < steps; i++ {
		total += inv.StepTime().Seconds()
		work += inv.Work()
	}
	return work / total
}

func TestMinMeasuredPassRecoversSubL3Plateaus(t *testing.T) {
	// Without batching, a sub-microsecond pass is clamped and quantised
	// into an artifact; with MinMeasuredPass the measured bandwidth of
	// L1/L2-resident working sets lands near the calibrated plateau and
	// the hierarchy stays monotone — the property the per-level TRIAD
	// sweeps report.
	for _, sys := range hw.IdunSystems() {
		m := NewModel(sys)
		m.MinMeasuredPass = DefaultMinMeasuredPass
		p := m.ParamsFor(1)
		l1Elems := int(sys.L1Total(1)) / 24
		l2Elems := int(sys.L2Total(1)) / 24
		bL1 := measuredBandwidth(m, l1Elems, 20)
		bL2 := measuredBandwidth(m, l2Elems, 20)
		if math.Abs(bL1-float64(p.L1)) > 0.05*float64(p.L1) {
			t.Errorf("%s: measured L1 %.1f GB/s, plateau %.1f", sys.Name, bL1/1e9, float64(p.L1)/1e9)
		}
		if math.Abs(bL2-float64(p.L2)) > 0.05*float64(p.L2) {
			t.Errorf("%s: measured L2 %.1f GB/s, plateau %.1f", sys.Name, bL2/1e9, float64(p.L2)/1e9)
		}
		if !(bL1 > bL2 && bL2 > float64(p.L3)) {
			t.Errorf("%s: hierarchy not monotone: L1 %.1f, L2 %.1f, L3 plateau %.1f GB/s",
				sys.Name, bL1/1e9, bL2/1e9, float64(p.L3)/1e9)
		}
	}
}

func TestMinMeasuredPassLeavesLongPassesUntouched(t *testing.T) {
	// A working set whose single pass already exceeds the floor must
	// produce bit-identical samples with and without MinMeasuredPass:
	// the L3/DRAM sweeps that calibrate against Table VI never batch.
	sys := hw.IdunGold6148
	plain := NewModel(sys)
	batched := NewModel(sys)
	batched.MinMeasuredPass = DefaultMinMeasuredPass
	elems := 1 << 22 // 96 MiB: DRAM-resident, pass ~1 ms
	a := plain.NewInvocation(elems, hw.AffinityClose, 1, 0, 1021)
	b := batched.NewInvocation(elems, hw.AffinityClose, 1, 0, 1021)
	if a.SetupTime() != b.SetupTime() || a.WarmupTime() != b.WarmupTime() {
		t.Fatal("setup/warmup diverged")
	}
	for i := 0; i < 10; i++ {
		if sa, sb := a.StepTime(), b.StepTime(); sa != sb {
			t.Fatalf("step %d diverged: %v vs %v", i, sa, sb)
		}
		if a.Work() != b.Work() {
			t.Fatal("work diverged")
		}
	}
}

func TestMinMeasuredPassBatchesDeterministically(t *testing.T) {
	// Batched invocations stay seed-deterministic and move passes x 24N
	// bytes per step.
	sys := hw.IdunGold6148
	m := NewModel(sys)
	m.MinMeasuredPass = DefaultMinMeasuredPass
	elems := 1 << 10
	a := m.NewInvocation(elems, hw.AffinityClose, 1, 3, 99)
	b := m.NewInvocation(elems, hw.AffinityClose, 1, 3, 99)
	if a.passes <= 1 {
		t.Fatalf("tiny working set not batched: passes = %d", a.passes)
	}
	if got, want := a.Work(), units.TriadBytes(elems)*float64(a.passes); got != want {
		t.Fatalf("Work = %v, want %v", got, want)
	}
	for i := 0; i < 5; i++ {
		if sa, sb := a.StepTime(), b.StepTime(); sa != sb {
			t.Fatalf("equal seeds diverged at step %d", i)
		}
	}
}
